//===- bench_table1_specjbb.cpp - Table 1, SPECjbb2005 row ----------------------===//

#include "Table1Common.h"

int main() {
  return jvm::bench::runTable1Suite("specjbb2005", "SPECjbb2005");
}
