//===- bench_figures.cpp - Regenerate the paper's figures -----------------------===//
//
// Prints the IR artifacts behind the paper's figures:
//   Figure 2        Graal IR of getValue after inlining (Listing 5)
//   Figures 4(a-f)  allocation-state transitions on virtual objects,
//                   shown as before/after IR of minimal programs
//   Figure 5        store into an escaped object
//   Figure 6        merge processing (mixed states, phi creation)
//   Figure 7        the loop fixpoint (field phi at the loop header)
//   Figure 8        frame states referencing virtual objects (Listing 8)
//
//===----------------------------------------------------------------------===//

#include "bytecode/CodeBuilder.h"
#include "bytecode/BytecodeVerifier.h"
#include "compiler/Canonicalizer.h"
#include "compiler/DeadCodeElimination.h"
#include "compiler/GVN.h"
#include "compiler/GraphBuilder.h"
#include "compiler/Inliner.h"
#include "ir/Printer.h"
#include "pea/PartialEscapeAnalysis.h"
#include "workloads/StdLib.h"

#include <cstdio>
#include <functional>

using namespace jvm;
using namespace jvm::workloads;

namespace {

/// Builds a one-method program, prints its IR before/after PEA.
void showTransform(const char *Title,
                   const std::function<MethodId(Program &)> &Build) {
  Program P;
  MethodId M = Build(P);
  verifyProgramOrDie(P);
  CompilerOptions CO;
  std::unique_ptr<Graph> G = buildGraph(P, M, nullptr, CO);
  canonicalize(*G, P);
  runGVN(*G);
  eliminateDeadCode(*G);
  std::printf("---- %s ----\nbefore:\n%s", Title, graphToString(*G).c_str());
  PEAStats Stats;
  runPartialEscapeAnalysis(*G, P, CO, &Stats);
  for (int I = 0; I != 3; ++I) {
    canonicalize(*G, P);
    runGVN(*G);
    eliminateDeadCode(*G);
  }
  std::printf("after:\n%s(virtualized=%u, materialize-sites=%u, "
              "scalar-replaced=%u, locks-elided=%u)\n\n",
              graphToString(*G).c_str(), Stats.VirtualizedAllocations,
              Stats.MaterializeSites,
              Stats.ScalarReplacedLoads + Stats.ScalarReplacedStores,
              Stats.ElidedMonitorOps);
}

struct Tiny {
  Program *P = nullptr;
  ClassId T = NoClass;
  FieldIndex Val = -1, Ref = -1;
  StaticIndex Global = -1;
};

Tiny tiny(Program &P) {
  Tiny R;
  R.P = &P;
  R.T = P.addClass("T");
  R.Val = P.addField(R.T, "val", ValueType::Int);
  R.Ref = P.addField(R.T, "ref", ValueType::Ref);
  R.Global = P.addStatic("global", ValueType::Ref);
  return R;
}

} // namespace

int main() {
  std::printf("==== Figure 2 / Listings 5-6: getValue after inlining, then "
              "after PEA ====\n");
  {
    WorkloadProgram W = buildWorkloadProgram();
    CompilerOptions CO;
    CO.Devirtualize = false; // No profiles here; inline equals directly.
    std::unique_ptr<Graph> G = buildGraph(W.P, W.GetValue, nullptr, CO);
    canonicalize(*G, W.P);
    // Force-inline equals and createValue despite the virtual call: the
    // receiver type is statically obvious in this example, so emulate
    // the paper's inlined Listing 5 by devirtualizing by hand.
    for (unsigned Id = 0; Id != G->nodeIdBound(); ++Id)
      if (Node *N = G->nodeAt(Id))
        if (auto *Call = dyn_cast<InvokeNode>(N))
          if (Call->callKind() == CallKind::Virtual)
            Call->setCallKind(CallKind::Static);
    inlineCalls(*G, W.P, nullptr, CO);
    canonicalize(*G, W.P);
    runGVN(*G);
    eliminateDeadCode(*G);
    std::printf("Listing 5 (inlined):\n%s\n", graphToString(*G).c_str());
    PEAStats Stats;
    runPartialEscapeAnalysis(*G, W.P, CO, &Stats);
    for (int I = 0; I != 3; ++I) {
      canonicalize(*G, W.P);
      runGVN(*G);
      eliminateDeadCode(*G);
    }
    std::printf("Listing 6 (after PEA):\n%s\n", graphToString(*G).c_str());
  }

  std::printf("==== Figure 4 (a,b): allocation + stores/loads become state "
              "updates ====\n");
  showTransform("new T; t.val = x; return t.val", [](Program &P) {
    Tiny R = tiny(P);
    MethodId M = P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
    CodeBuilder C(P, M);
    unsigned T = C.newLocal();
    C.newObj(R.T).store(T);
    C.load(T).load(0).putField(R.T, R.Val);
    C.load(T).getField(R.T, R.Val).retInt();
    C.finish();
    return M;
  });

  std::printf("==== Figure 4 (c,d): monitors on virtual objects ====\n");
  showTransform("synchronized (new T) { ... }", [](Program &P) {
    Tiny R = tiny(P);
    MethodId M = P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
    CodeBuilder C(P, M);
    unsigned T = C.newLocal();
    C.newObj(R.T).store(T);
    C.load(T).monEnter();
    C.load(T).load(0).putField(R.T, R.Val);
    C.load(T).monExit();
    C.load(T).getField(R.T, R.Val).retInt();
    C.finish();
    return M;
  });

  std::printf("==== Figure 4 (e,f): virtual objects referencing each other "
              "====\n");
  showTransform("a.ref = b (both virtual)", [](Program &P) {
    Tiny R = tiny(P);
    MethodId M = P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
    CodeBuilder C(P, M);
    unsigned A = C.newLocal(), B = C.newLocal();
    C.newObj(R.T).store(A);
    C.newObj(R.T).store(B);
    C.load(B).load(0).putField(R.T, R.Val);
    C.load(A).load(B).putField(R.T, R.Ref);
    C.load(A).getField(R.T, R.Ref).getField(R.T, R.Val).retInt();
    C.finish();
    return M;
  });

  std::printf("==== Figure 5: store into an escaped object ====\n");
  showTransform("global = t; t.val = x", [](Program &P) {
    Tiny R = tiny(P);
    MethodId M = P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
    CodeBuilder C(P, M);
    unsigned T = C.newLocal();
    C.newObj(R.T).store(T);
    C.load(T).putStatic(R.Global);
    C.load(T).load(0).putField(R.T, R.Val);
    C.load(T).getField(R.T, R.Val).retInt();
    C.finish();
    return M;
  });

  std::printf("==== Figure 6: merge processing (escape in one branch, use "
              "after merge) ====\n");
  showTransform("if (x<0) global = t; return t.val", [](Program &P) {
    Tiny R = tiny(P);
    MethodId M = P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
    CodeBuilder C(P, M);
    unsigned T = C.newLocal();
    Label Skip = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(T).load(0).putField(R.T, R.Val);
    C.load(0).constI(0).ifGe(Skip);
    C.load(T).putStatic(R.Global);
    C.bind(Skip);
    C.load(T).getField(R.T, R.Val).retInt();
    C.finish();
    return M;
  });

  std::printf("==== Figure 7: loop fixpoint — accumulator field becomes a "
              "loop phi ====\n");
  showTransform("for (i<n) acc.val += i", [](Program &P) {
    Tiny R = tiny(P);
    MethodId M = P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
    CodeBuilder C(P, M);
    unsigned Acc = C.newLocal(), I = C.newLocal();
    Label Head = C.newLabel(), Exit = C.newLabel();
    C.newObj(R.T).store(Acc);
    C.constI(0).store(I);
    C.bind(Head);
    C.load(I).load(0).ifGe(Exit);
    C.load(Acc).load(Acc).getField(R.T, R.Val).load(I).add()
        .putField(R.T, R.Val);
    C.load(I).constI(1).add().store(I);
    C.gotoL(Head);
    C.bind(Exit);
    C.load(Acc).getField(R.T, R.Val).retInt();
    C.finish();
    return M;
  });

  std::printf("==== Figure 8 / Listing 8: frame states describing virtual "
              "objects ====\n");
  showTransform("i = new Integer(x); global = null", [](Program &P) {
    Tiny R = tiny(P);
    MethodId M = P.addMethod("foo", NoClass, {ValueType::Int},
                             ValueType::Int);
    CodeBuilder C(P, M);
    unsigned I = C.newLocal();
    C.newObj(R.T).store(I);
    C.load(I).load(0).putField(R.T, R.Val);
    C.constNull().putStatic(R.Global);
    C.load(I).getField(R.T, R.Val).retInt();
    C.finish();
    return M;
  });

  return 0;
}
