//===- bench_comparison_flowins.cpp - Section 6.2 comparison -------------------===//
//
// Regenerates the paper's Section 6.2 comparison: flow-insensitive
// escape analysis (the HotSpot-server-style equi-escape-sets baseline)
// vs. partial escape analysis, as average speedups over the baseline
// without any escape analysis, per suite. Paper: 0.9% vs 2.2% (DaCapo),
// 7.4% vs 10.4% (ScalaDaCapo), 5.4% vs 8.7% (SPECjbb2005) — the
// reproduction target is PEA > flow-insensitive on every suite.
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cstdio>

using namespace jvm;
using namespace jvm::workloads;

int main() {
  std::printf("Section 6.2: flow-insensitive EA vs. partial EA "
              "(average speedup over no-EA)\n\n");
  BenchmarkSet Set = buildBenchmarkSet();
  HarnessOptions Opts = HarnessOptions::fromEnvironment();

  std::printf("%-14s | %20s %20s | %20s %20s\n", "", "flow-insensitive EA",
              "", "partial EA", "");
  std::printf("%-14s | %20s %20s | %20s %20s\n", "suite", "avg speedup",
              "avg alloc delta", "avg speedup", "avg alloc delta");
  std::printf("%s\n", std::string(104, '-').c_str());
  for (const char *Suite : {"dacapo", "scaladacapo", "specjbb2005"}) {
    double SumEes = 0, SumPea = 0, SumEesAllocs = 0, SumPeaAllocs = 0;
    unsigned N = 0;
    for (const BenchmarkRow &Row : Set.Rows) {
      if (Row.Suite != Suite)
        continue;
      RowMeasurement None =
          measureRow(Set, Row, EscapeAnalysisMode::None, Opts);
      RowMeasurement Ees =
          measureRow(Set, Row, EscapeAnalysisMode::FlowInsensitive, Opts);
      RowMeasurement Pea =
          measureRow(Set, Row, EscapeAnalysisMode::Partial, Opts);
      SumEes += percentDelta(None.ItersPerMinute, Ees.ItersPerMinute);
      SumPea += percentDelta(None.ItersPerMinute, Pea.ItersPerMinute);
      SumEesAllocs +=
          percentDelta(None.KAllocsPerIter, Ees.KAllocsPerIter);
      SumPeaAllocs +=
          percentDelta(None.KAllocsPerIter, Pea.KAllocsPerIter);
      ++N;
      std::fprintf(stderr, "  [measured] %-12s done\n", Row.Name.c_str());
    }
    std::printf("%-14s | %+19.1f%% %+19.1f%% | %+19.1f%% %+19.1f%%\n", Suite,
                SumEes / N, SumEesAllocs / N, SumPea / N, SumPeaAllocs / N);
  }
  std::printf("\nExpected shape: partial EA beats the flow-insensitive "
              "baseline on every suite. Wall-clock speedups carry "
              "machine noise; the allocation deltas are deterministic "
              "and always satisfy PEA <= flow-insensitive <= none.\n");
  return 0;
}
