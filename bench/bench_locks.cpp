//===- bench_locks.cpp - Section 6.1 lock-operation reductions ------------------===//
//
// The paper reports small but real monitor-operation reductions: DaCapo
// tomcat -4% and SPECjbb2005 -3.8%, with most other benchmarks
// unaffected. This bench reproduces the shape: rows whose synchronized
// sections run on scalar-replaced objects lose those lock operations,
// while baseline lock traffic on escaped objects stays.
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cstdio>

using namespace jvm;
using namespace jvm::workloads;

int main() {
  std::printf("Section 6.1: monitor operations per iteration, without vs. "
              "with PEA\n\n");
  BenchmarkSet Set = buildBenchmarkSet();
  HarnessOptions Opts = HarnessOptions::fromEnvironment();

  std::vector<RowComparison> Rows;
  for (const char *Name :
       {"tomcat", "specjbb2005", "h2", "eclipse", "tradesoap", "actors"}) {
    const BenchmarkRow *Row = Set.find(Name);
    if (!Row)
      continue;
    RowComparison C;
    C.Row = Row;
    C.Without = measureRow(Set, *Row, EscapeAnalysisMode::None, Opts);
    C.With = measureRow(Set, *Row, EscapeAnalysisMode::Partial, Opts);
    Rows.push_back(C);
    std::fprintf(stderr, "  [measured] %-12s done\n", Name);
  }
  std::printf("%s", formatLockTable(Rows).c_str());
  std::printf("\nExpected shape: modest reductions on tomcat and "
              "specjbb2005 (paper: -4%% and -3.8%%), little change "
              "elsewhere.\n");
  return 0;
}
