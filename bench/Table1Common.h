//===- Table1Common.h - Shared main() body for the Table 1 benches --*- C++ -*-===//
///
/// \file
/// Each Table 1 bench binary regenerates one block of the paper's
/// evaluation table: the same workload suite measured without and with
/// partial escape analysis.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_BENCH_TABLE1COMMON_H
#define JVM_BENCH_TABLE1COMMON_H

#include "workloads/Harness.h"

#include <cstdio>

namespace jvm {
namespace bench {

inline int runTable1Suite(const char *Suite, const char *Title) {
  using namespace jvm::workloads;
  std::printf("Table 1 (%s block): without vs. with partial escape "
              "analysis\n", Suite);
  std::printf("(synthetic workloads per DESIGN.md; compare shapes, not "
              "absolute values)\n");
  BenchmarkSet Set = buildBenchmarkSet();
  HarnessOptions Opts = HarnessOptions::fromEnvironment();
  std::printf("(compiled methods run on the %s tier; JVM_EXEC_MODE "
              "overrides)\n\n", execModeName(Opts.VM.Exec));
  std::vector<RowComparison> Rows =
      runSuite(Set, Suite, EscapeAnalysisMode::None,
               EscapeAnalysisMode::Partial, Opts);
  std::printf("%s", formatTable1Block(Title, Rows).c_str());
  std::printf("\n(averages include the rows omitted from the listing, "
              "as in the paper)\n");

  // Same rows with PEA on every tier: what the linear backend buys over
  // the graph walker, and what the native backend buys over linear.
  std::vector<TierComparison> Tiers =
      runSuiteTiers(Set, Suite, EscapeAnalysisMode::Partial, Opts);
  std::printf("\n%s", formatTierTable(Tiers).c_str());

  // Same rows with PEA on, speculation off vs on: receiver pins and
  // branch prunes feed PEA (fewer materialize sites), OSR covers the
  // loop-heavy rows. Checksums are cross-checked inside the harness.
  std::vector<RowComparison> Spesh =
      runSuiteSpesh(Set, Suite, EscapeAnalysisMode::Partial, Opts);
  std::printf("\n%s", formatSpeshTable(Spesh).c_str());

  appendTable1Json(Suite, Rows, Opts.VM.Exec, Tiers, Spesh);
  std::printf("\nper-row records appended to %s\n",
              table1JsonPath().c_str());
  return 0;
}

} // namespace bench
} // namespace jvm

#endif // JVM_BENCH_TABLE1COMMON_H
