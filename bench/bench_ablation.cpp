//===- bench_ablation.cpp - Which parts of the design matter? -------------------===//
//
// Ablates the design decisions DESIGN.md calls out, on three
// representative rows:
//
//   full            the complete partial escape analysis
//   no-loop-phis    loop-carried field changes materialize at the loop
//                   entry instead of becoming loop phis (Section 5.4)
//   no-liveness     merges materialize dead objects instead of dropping
//                   them (the "common alias" rule of Section 5.3)
//   no-speculation  branch pruning and devirtualization disabled: PEA
//                   sees the escaping branches instead of Deoptimize
//                   sinks — the "partial" wins shrink toward the
//                   all-or-nothing baseline
//   spesh-plan      the PR 10 speculation planner on top of "full":
//                   profile-driven receiver pins, argument constants
//                   and branch prunes as explicit guards before PEA
//   flow-insensitive / none   reference points
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include "compiler/PhasePlan.h"
#include "compiler/StandardPhases.h"
#include "pea/EscapePhases.h"
#include "vm/CompileBroker.h"

#include <cstdio>

using namespace jvm;
using namespace jvm::workloads;

namespace {

struct Variant {
  const char *Name;
  EscapeAnalysisMode Mode;
  bool LoopPhis;
  bool Liveness;
  bool Speculate;
  /// Profile-driven speculation planner (PR 10): receiver pins, argument
  /// constants and branch prunes as explicit guards ahead of PEA.
  bool Spesh;
};

} // namespace

int main() {
  const Variant Variants[] = {
      {"full", EscapeAnalysisMode::Partial, true, true, true, false},
      {"no-loop-phis", EscapeAnalysisMode::Partial, false, true, true, false},
      {"no-liveness", EscapeAnalysisMode::Partial, true, false, true, false},
      {"no-speculation", EscapeAnalysisMode::Partial, true, true, false,
       false},
      {"spesh-plan", EscapeAnalysisMode::Partial, true, true, true, true},
      {"flow-insensitive", EscapeAnalysisMode::FlowInsensitive, true, true,
       true, false},
      {"none", EscapeAnalysisMode::None, true, true, true, false},
  };

  std::printf("Ablation study (see DESIGN.md section 5)\n\n");
  BenchmarkSet Set = buildBenchmarkSet();
  HarnessOptions Base = HarnessOptions::fromEnvironment();

  for (const char *RowName : {"factorie", "tomcat", "specjbb2005"}) {
    const BenchmarkRow *Row = Set.find(RowName);
    if (!Row)
      continue;
    std::printf("%s:\n", RowName);
    std::printf("  %-18s %12s %12s %14s %10s %10s\n", "variant",
                "kAllocs/iter", "KB/iter", "iters/min", "virt", "mater");
    // Escape-analysis work summed over the whole row (PEAStats::operator+=
    // keeps this in lockstep with the VM's own aggregation).
    PEAStats RowTotal;
    for (const Variant &V : Variants) {
      HarnessOptions Opts = Base;
      Opts.VM.Compiler.PeaLoopFieldPhis = V.LoopPhis;
      Opts.VM.Compiler.PeaMergeLivenessPruning = V.Liveness;
      Opts.VM.Compiler.PruneColdBranches = V.Speculate;
      Opts.VM.Compiler.Devirtualize = V.Speculate;
      Opts.VM.Compiler.EnableSpesh = V.Spesh;
      RowMeasurement M = measureRow(Set, *Row, V.Mode, Opts);
      RowTotal += M.Escape;
      std::printf("  %-18s %12.2f %12.1f %14.1f %10u %10u\n", V.Name,
                  M.KAllocsPerIter, M.KBPerIter, M.ItersPerMinute,
                  M.Escape.VirtualizedAllocations, M.Escape.MaterializeSites);
      std::fprintf(stderr, "  [measured] %s/%s\n", RowName, V.Name);
    }
    std::printf("  (all variants: %u allocations virtualized, "
                "%u materialize sites, %u monitor ops elided)\n\n",
                RowTotal.VirtualizedAllocations, RowTotal.MaterializeSites,
                RowTotal.ElidedMonitorOps);
  }
  // --- Phase-plan view -------------------------------------------------
  // The variants above differ only in CompilerOptions; the plan API also
  // lets a study swap whole pipeline shapes. Compile every row's driver
  // method under three plans and show where the time goes per phase:
  // the default partial-EA plan, the flow-insensitive default, and a
  // hand-built frontend-only plan (no escape analysis, no cleanup
  // fixpoint) as the optimization floor.
  std::printf("\nPhase-plan comparison (plans built via the PhasePlan API; "
              "driver methods, empty profiles):\n");
  {
    const Program &P = Set.WP.P;
    ProfileData Prof(P.numMethods());
    ProfileSnapshot Snap(Prof);
    CompilerOptions PartialCO = Base.VM.Compiler;
    PartialCO.EAMode = EscapeAnalysisMode::Partial;
    CompilerOptions FlowInsCO = Base.VM.Compiler;
    FlowInsCO.EAMode = EscapeAnalysisMode::FlowInsensitive;

    PhasePlan Frontend;
    Frontend.append<GraphBuildPhase>();
    Frontend.append<CanonicalizerPhase>();
    Frontend.append<GVNPhase>();
    Frontend.append<DCEPhase>();
    Frontend.append<VerifyPhase>();

    struct PlanRow {
      const char *Name;
      PhasePlan Plan;
      const CompilerOptions *CO;
    };
    PlanRow Plans[] = {
        {"default-partial", makeDefaultPhasePlan(PartialCO), &PartialCO},
        {"default-flowins", makeDefaultPhasePlan(FlowInsCO), &FlowInsCO},
        {"frontend-only", std::move(Frontend), &PartialCO},
    };

    for (PlanRow &PR : Plans) {
      PhaseTimes Times;
      uint64_t TotalNanos = 0;
      for (const BenchmarkRow &Row : Set.Rows) {
        CompileResult R =
            runCompilePipeline(PR.Plan, P, Row.Driver, Snap, *PR.CO);
        Times += R.Phases;
        TotalNanos += R.TotalNanos;
      }
      std::printf("  %-16s %8.2f ms total;", PR.Name, TotalNanos / 1e6);
      for (const PhaseTimes::Entry &E : Times.Entries)
        std::printf(" %s %.2fms/%llux", E.Name.c_str(), E.Nanos / 1e6,
                    (unsigned long long)E.Runs);
      std::printf("\n");
    }
  }

  std::printf("\nExpected shape: every ablation gives back part of the win; "
              "no-speculation hurts rows whose objects escape only on "
              "cold paths.\n");
  return 0;
}
