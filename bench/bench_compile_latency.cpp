//===- bench_compile_latency.cpp - Background vs synchronous compilation -------===//
//
// Measures what the compile broker buys: with workers, the interpreter
// keeps running while compilation happens elsewhere, so the mutator's
// stall time collapses from "every compile pipeline, inline" to
// "snapshot the profile and enqueue". Reported per configuration:
//
//   time-to-peak    wall time from the first warmup call until every
//                   method the warmup made hot has compiled code
//                   installed (warmup loop + waitForCompilerIdle)
//   mutator-stall   nanos of compilation work charged to the calling
//                   thread (the full pipeline when sync, snapshot +
//                   enqueue when backgrounded)
//   compile         total pipeline nanos across all compilations,
//                   wherever they ran
//   queue-hw        queue depth high-water mark (queued + in flight)
//   install avg/max enqueue-to-install latency
//
// Expected shape: mutator-stall is ~the whole compile column for
// sync(0) and orders of magnitude smaller with any workers;
// time-to-peak shrinks with worker count once the queue is deep enough
// to keep several pipelines busy and the machine has cores to spare.
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <chrono>
#include <cstdio>

using namespace jvm;
using namespace jvm::workloads;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ms(uint64_t Nanos) { return Nanos / 1e6; }

struct LatencyMeasurement {
  uint64_t TimeToPeakNanos = 0;
  JitMetrics Jit;
};

/// Warms every row in \p Rows round-robin in one fresh VM. Interleaving
/// the rows makes many methods cross the threshold close together, so
/// with workers the queue actually gets deep instead of draining one
/// compile at a time.
LatencyMeasurement warmupRows(const BenchmarkSet &Set,
                              const std::vector<const BenchmarkRow *> &Rows,
                              unsigned Threads, unsigned WarmupIters) {
  VMOptions VO = HarnessOptions().VM;
  VO.CompilerThreads = Threads;
  VirtualMachine VM(Set.WP.P, VO);
  VM.call(Set.WP.Setup, {});

  LatencyMeasurement M;
  uint64_t Start = nowNanos();
  for (unsigned I = 0; I != WarmupIters; ++I)
    for (const BenchmarkRow *Row : Rows)
      VM.call(Row->Driver, {Value::makeInt(Row->Scale)});
  VM.waitForCompilerIdle();
  M.TimeToPeakNanos = nowNanos() - Start;
  M.Jit = VM.jitMetrics();
  return M;
}

} // namespace

int main() {
  std::printf("Compile latency: synchronous vs background compilation\n");
  std::printf("(fresh VM per configuration; rows warmed round-robin)\n\n");

  BenchmarkSet Set = buildBenchmarkSet();
  HarnessOptions Base = HarnessOptions::fromEnvironment();

  std::vector<const BenchmarkRow *> Rows;
  for (const char *Name : {"factorie", "tomcat", "specjbb2005", "scalac",
                           "pmd", "luindex"})
    if (const BenchmarkRow *Row = Set.find(Name))
      Rows.push_back(Row);

  std::printf("%-8s %14s %15s %12s %9s %9s %12s %12s\n", "threads",
              "time-to-peak", "mutator-stall", "compile", "compiles",
              "queue-hw", "install-avg", "install-max");
  std::printf("%-8s %14s %15s %12s %9s %9s %12s %12s\n", "", "(ms)", "(ms)",
              "(ms)", "", "", "(ms)", "(ms)");

  PhaseTimes Breakdown; // summed across configurations for the table below
  uint64_t BreakdownCompileNanos = 0;
  for (unsigned Threads : {0u, 1u, 2u, 4u}) {
    LatencyMeasurement M =
        warmupRows(Set, Rows, Threads, Base.WarmupIters);
    const JitMetrics &J = M.Jit;
    Breakdown += J.PhaseNanos;
    BreakdownCompileNanos += J.CompileNanos;
    double InstallAvg =
        J.Compilations ? ms(J.EnqueueToInstallNanos) / J.Compilations : 0;
    char Label[16];
    if (Threads == 0)
      std::snprintf(Label, sizeof(Label), "sync(0)");
    else
      std::snprintf(Label, sizeof(Label), "%u", Threads);
    std::printf("%-8s %14.2f %15.3f %12.2f %9llu %9llu %12.2f %12.2f\n",
                Label, ms(M.TimeToPeakNanos), ms(J.MutatorStallNanos),
                ms(J.CompileNanos), (unsigned long long)J.Compilations,
                (unsigned long long)J.QueueDepthHighWater, InstallAvg,
                ms(J.EnqueueToInstallNanosMax));
    std::fprintf(stderr, "  [measured] threads=%u\n", Threads);
  }

  // Where compile time goes, phase by phase (JitMetrics::PhaseNanos,
  // summed over all four configurations). Rows appear in pipeline order.
  std::printf("\nPer-phase compile-time breakdown (all configurations):\n");
  std::printf("  %-16s %10s %8s %7s\n", "phase", "(ms)", "runs", "share");
  for (const PhaseTimes::Entry &E : Breakdown.Entries)
    std::printf("  %-16s %10.2f %8llu %6.1f%%\n", E.Name.c_str(), ms(E.Nanos),
                (unsigned long long)E.Runs,
                BreakdownCompileNanos
                    ? 100.0 * E.Nanos / BreakdownCompileNanos
                    : 0.0);

  std::printf("\nExpected shape: sync(0) charges the whole compile column "
              "to the mutator; with workers the stall column is the cost "
              "of profile snapshots only. Time-to-peak improves with "
              "worker count only when spare cores exist — on a "
              "single-core machine workers timeshare with the "
              "interpreter and time-to-peak stays near sync.\n");
  return 0;
}
