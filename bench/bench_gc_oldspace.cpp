//===- bench_gc_oldspace.cpp - Young-GC pause vs old-space size ---------------===//
//
// The PR 8 claim, measured: with a card-table remembered set, the young
// collection pause depends on the live *young* data and the dirty-card
// count — NOT on how big the old space is. The sweep fixes one churn
// workload (constant allocation rate, constant old->young store rate,
// constant live window) and scales only the live old-space population
// {2, 4, 8, 16} MB — an 8x span. Each point runs twice:
//
//   card_remset  the default collector: scavenge scans dirty cards only
//   full_scan    JVM_GC_SCAN_OLD semantics (MemoryConfig::ScanOldFallback):
//                the PR 5 behavior, every scavenge walks the whole old
//                space looking for old->young references
//
// Pauses are exact per-collection numbers from Heap::gcRecords(), not
// histogram bucket bounds: the point of the bench is the *shape* of the
// p99-vs-old-size curve, which bucketing would flatten. The JSON goes
// to JVM_GC_BENCH_JSON (default BENCH_gc_oldspace.json) and
// scripts/check_gc_oldspace.py asserts the card-mode curve is flat and
// the full-scan curve is not.
//
//   JVM_GC_BENCH_JSON   output path for the sweep records
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/Env.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

using namespace jvm;

namespace {

// One churn workload for every point. 64 KB regions keep the region
// count interesting; 1 MB young space means ~20 scavenges per point at
// this allocation rate; the full-GC threshold is parked far above any
// point's live set so every pause measured is a scavenge.
constexpr size_t RegionBytes = 64 << 10;
constexpr size_t YoungBytes = 1 << 20;
constexpr int ChurnIters = 4000;
constexpr int GarbagePerIter = 6;   // 100-slot arrays, ~1.6 KB each
constexpr unsigned OldMbSweep[] = {2, 4, 8, 16};
/// Old->young stores rotate over this many arrays however large the old
/// population is: the mutator's store locality — and therefore the
/// dirty-card count per scavenge — is a property of the workload, not
/// of the old-space size. (The barrier marks the holder's *header*
/// card, so each distinct dirtied array costs one full-object scan;
/// keeping the target set fixed keeps that cost fixed.)
constexpr size_t StoreTargetArrays = 16;

/// A born-old ref array: 2100 slots = 33,624 bytes, above
/// largeObjectBytes() (32 KB) but below RegionBytes, so the allocator
/// places it directly in the old space — no promotion warm-up needed to
/// build a multi-megabyte old population.
constexpr int64_t OldArraySlots = 2100;
constexpr size_t OldArrayBytes = 24 + 16 * size_t(OldArraySlots);

struct PointResult {
  const char *Mode;
  unsigned OldMb;
  size_t OldBytes;
  uint64_t Scavenges;
  uint64_t PauseP50Ns, PauseP99Ns, PauseMaxNs;
  uint64_t CardsDirtied, CardsScanned;
  unsigned WorkersMax;
  uint64_t CopiedBytes;
};

/// Nearest-rank-below percentile: with ~40 samples per point, p99 is
/// the second-largest pause, so one stray OS scheduling hiccup cannot
/// dominate the flatness comparison (the exact max is reported too).
uint64_t percentile(std::vector<uint64_t> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * double(Sorted.size() - 1));
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

PointResult runPoint(unsigned OldMb, bool FullScan) {
  Program P;
  ClassId Node = P.addClass("Node");
  P.addField(Node, "val", ValueType::Int);
  P.addField(Node, "next", ValueType::Ref);

  memory::MemoryConfig C;
  C.RegionBytes = RegionBytes;
  C.YoungBytes = YoungBytes;
  C.FullGcThresholdBytes = size_t(1) << 30;
  C.ScanOldFallback = FullScan;
  Runtime RT(P, C);

  // Build the old population: enough born-old arrays for OldMb MB,
  // rooted for the whole run through a RootScope vector.
  std::vector<Value> OldRoots;
  const size_t NumArrays = (size_t(OldMb) << 20) / OldArrayBytes;
  OldRoots.reserve(NumArrays);
  Runtime::RootScope Scope(RT, &OldRoots);
  for (size_t I = 0; I != NumArrays; ++I)
    OldRoots.push_back(
        Value::makeRef(RT.heap().allocateArray(ValueType::Ref, OldArraySlots)));
  const size_t OldBytes = RT.heap().oldBytes();

  // Only the churn is measured.
  RT.heap().resetMetrics();

  // Constant-rate churn, identical at every point: one young node
  // stored into a rotating slot of a *fixed-size* target set (the
  // old->young edges the remembered set exists for), then pure young
  // garbage to drive scavenges. Everything outside the target set is
  // old ballast the card-mode scavenge must never look at.
  const size_t Targets = std::min(StoreTargetArrays, NumArrays);
  for (int I = 0; I != ChurnIters; ++I) {
    HeapObject *N = RT.allocateInstance(Node);
    N->setSlot(0, Value::makeInt(I));
    HeapObject *Arr = OldRoots[size_t(I) % Targets].asRef();
    RT.heap().write(Arr, unsigned(I / 7) % unsigned(OldArraySlots),
                    Value::makeRef(N));
    for (int G = 0; G != GarbagePerIter; ++G)
      RT.heap().allocateArray(ValueType::Int, 100);
  }

  PointResult R{};
  R.Mode = FullScan ? "full_scan" : "card_remset";
  R.OldMb = OldMb;
  R.OldBytes = OldBytes;
  std::vector<uint64_t> Pauses;
  for (const memory::MemoryManager::GcRecord &Rec : RT.heap().gcRecords()) {
    if (Rec.Full)
      continue;
    Pauses.push_back(Rec.PauseNanos);
    R.WorkersMax = std::max(R.WorkersMax, Rec.Workers);
  }
  std::sort(Pauses.begin(), Pauses.end());
  R.Scavenges = Pauses.size();
  R.PauseP50Ns = percentile(Pauses, 0.5);
  R.PauseP99Ns = percentile(Pauses, 0.99);
  R.PauseMaxNs = Pauses.empty() ? 0 : Pauses.back();
  R.CardsDirtied = RT.heap().cardsDirtied();
  R.CardsScanned = RT.heap().cardsScanned();
  R.CopiedBytes = RT.heap().bytesCopied() + RT.heap().bytesPromoted();
  return R;
}

} // namespace

int main() {
  const EnvSnapshot &Env = EnvSnapshot::process();
  const char *JsonPath = EnvSnapshot::isSet(Env.GcBenchJson)
                             ? Env.GcBenchJson
                             : "BENCH_gc_oldspace.json";

  std::string J = "{\n  \"bench\": \"gc_oldspace\",\n";
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "  \"region_bytes\": %zu,\n  \"young_bytes\": %zu,\n"
                "  \"churn_iters\": %d,\n  \"points\": [\n",
                RegionBytes, YoungBytes, ChurnIters);
  J += Buf;

  bool First = true;
  for (bool FullScan : {false, true}) {
    for (unsigned OldMb : OldMbSweep) {
      PointResult R = runPoint(OldMb, FullScan);
      std::printf("%-11s old=%2u MB  scavenges=%3llu  p50=%8llu ns  "
                  "p99=%8llu ns  cards_scanned=%llu  workers<=%u\n",
                  R.Mode, R.OldMb,
                  static_cast<unsigned long long>(R.Scavenges),
                  static_cast<unsigned long long>(R.PauseP50Ns),
                  static_cast<unsigned long long>(R.PauseP99Ns),
                  static_cast<unsigned long long>(R.CardsScanned),
                  R.WorkersMax);
      std::snprintf(
          Buf, sizeof(Buf),
          "%s    {\"mode\": \"%s\", \"old_mb\": %u, \"old_bytes\": %zu, "
          "\"scavenges\": %llu, \"pause_p50_ns\": %llu, "
          "\"pause_p99_ns\": %llu, \"pause_max_ns\": %llu, "
          "\"cards_dirtied\": %llu, \"cards_scanned\": %llu, "
          "\"workers_max\": %u, \"copied_bytes\": %llu}",
          First ? "" : ",\n", R.Mode, R.OldMb, R.OldBytes,
          static_cast<unsigned long long>(R.Scavenges),
          static_cast<unsigned long long>(R.PauseP50Ns),
          static_cast<unsigned long long>(R.PauseP99Ns),
          static_cast<unsigned long long>(R.PauseMaxNs),
          static_cast<unsigned long long>(R.CardsDirtied),
          static_cast<unsigned long long>(R.CardsScanned), R.WorkersMax,
          static_cast<unsigned long long>(R.CopiedBytes));
      J += Buf;
      First = false;
    }
  }
  J += "\n  ]\n}\n";

  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fwrite(J.data(), 1, J.size(), F);
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  } else {
    std::fprintf(stderr, "bench_gc_oldspace: cannot write %s\n", JsonPath);
    return 1;
  }
  return 0;
}
