//===- bench_table1_scaladacapo.cpp - Table 1, ScalaDaCapo block ---------------===//

#include "Table1Common.h"

int main() {
  return jvm::bench::runTable1Suite("scaladacapo", "ScalaDaCapo");
}
