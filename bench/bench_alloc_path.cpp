//===- bench_alloc_path.cpp - TLAB bump vs the seed malloc path -----------------===//
//
// Two comparisons PR 5 cares about:
//
//  1. BM_SeedMallocPath vs BM_TlabBumpPath: the allocation fast path
//     itself. The seed heap made two C++ heap allocations per object
//     (the HeapObject node plus its out-of-line std::vector<Value> slot
//     buffer) and reclaimed with per-object delete; the region manager
//     bump-allocates header+slots inline from a TLAB and reclaims dead
//     young regions wholesale in a scavenge.
//
//  2. The PEA angle (run after the google-benchmark table): allocation
//     *rate* on an allocation-heavy Table 1 row with escape analysis
//     off vs on — scalar replacement removes allocations entirely,
//     which no allocator fast path can match.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "workloads/Harness.h"
#include "workloads/Suites.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

using namespace jvm;

namespace {

/// The seed object model, reconstructed for comparison: slot storage
/// lives in a separate C++ heap block owned by a vector.
struct SeedObject {
  ClassId Cls;
  uint8_t IsArray = 0;
  ValueType ElemTy = ValueType::Int;
  int32_t LockCount = 0;
  std::vector<Value> Slots;

  SeedObject(ClassId Cls, unsigned NumSlots)
      : Cls(Cls), Slots(NumSlots, Value::makeInt(0)) {}
};

/// 2-slot objects, like the churn workloads allocate. Batched so the
/// per-iteration work is identical across the two benchmarks: allocate
/// Batch objects, initialize one slot, let them die.
constexpr unsigned Batch = 1024;
constexpr unsigned ObjSlots = 2;

void BM_SeedMallocPath(benchmark::State &State) {
  std::vector<SeedObject *> Live;
  Live.reserve(Batch);
  for (auto _ : State) {
    for (unsigned I = 0; I != Batch; ++I) {
      SeedObject *O = new SeedObject(0, ObjSlots);
      O->Slots[0] = Value::makeInt(int64_t(I));
      benchmark::DoNotOptimize(O);
      Live.push_back(O);
    }
    // The seed collector freed dead objects one delete at a time.
    for (SeedObject *O : Live)
      delete O;
    Live.clear();
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Batch);
}
BENCHMARK(BM_SeedMallocPath);

void BM_TlabBumpPath(benchmark::State &State) {
  Program P;
  ClassId A = P.addClass("A");
  P.addField(A, "x", ValueType::Int);
  P.addField(A, "y", ValueType::Int);
  Runtime RT(P); // default young space; dead batches recycle via scavenge
  for (auto _ : State) {
    for (unsigned I = 0; I != Batch; ++I) {
      HeapObject *O = RT.allocateInstance(A);
      O->setSlot(0, Value::makeInt(int64_t(I)));
      benchmark::DoNotOptimize(O);
    }
    // Nothing is rooted: the periodic scavenges inside allocateInstance
    // reclaim the dead batches wholesale (that cost is part of the
    // path being measured, exactly as delete is part of the seed's).
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Batch);
}
BENCHMARK(BM_TlabBumpPath);

/// Allocation rate with escape analysis off vs on, on the most
/// allocation-heavy DaCapo row. Scalar replacement beats any allocator:
/// the fastest allocation is the one that never happens.
void printPeaAllocationComparison() {
  using namespace jvm::workloads;
  BenchmarkSet Set = buildBenchmarkSet();
  const BenchmarkRow *Row = Set.find("fop");
  if (!Row) {
    std::fprintf(stderr, "bench_alloc_path: dacapo row 'fop' missing\n");
    return;
  }
  HarnessOptions Opts = HarnessOptions::fromEnvironment();
  RowMeasurement Off = measureRow(Set, *Row, EscapeAnalysisMode::None, Opts);
  RowMeasurement On = measureRow(Set, *Row, EscapeAnalysisMode::Partial, Opts);
  std::printf("\nAllocation rate, %s/%s (escape analysis off vs on):\n",
              Row->Suite.c_str(), Row->Name.c_str());
  std::printf("  %-8s %14s %14s %14s\n", "mode", "allocs/iter", "KB/iter",
              "iters/min");
  std::printf("  %-8s %14.1f %14.2f %14.2f\n", "EA off",
              Off.KAllocsPerIter * 1000.0, Off.KBPerIter, Off.ItersPerMinute);
  std::printf("  %-8s %14.1f %14.2f %14.2f\n", "EA on",
              On.KAllocsPerIter * 1000.0, On.KBPerIter, On.ItersPerMinute);
  std::printf("  allocations removed: %.1f%%\n",
              -workloads::percentDelta(Off.KAllocsPerIter, On.KAllocsPerIter));
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printPeaAllocationComparison();
  return 0;
}
