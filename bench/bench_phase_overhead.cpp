//===- bench_phase_overhead.cpp - Compile-time cost of the analysis -------------===//
//
// google-benchmark microbenchmarks for the compiler phases, supporting
// the paper's Section 7 discussion (the analysis runs as a regular IR
// phase; its cost scales with graph size) and the jython observation
// (compilation cost is the flip side of the optimization).
//
// Graphs are generated: chains of K "allocate, store, branch-on-escape,
// load" blocks, so PEA's work (object states, merges, frame-state
// rewrites) grows linearly with K.
//
//===----------------------------------------------------------------------===//

#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"
#include "compiler/Canonicalizer.h"
#include "compiler/DeadCodeElimination.h"
#include "compiler/GVN.h"
#include "compiler/GraphBuilder.h"
#include "pea/PartialEscapeAnalysis.h"

#include <benchmark/benchmark.h>

using namespace jvm;

namespace {

/// A program whose method consists of \p Blocks repetitions of:
///   t = new T; t.val = x; if (x < 0) global = t; x += t.val;
struct GeneratedProgram {
  Program P;
  MethodId M = NoMethod;
};

GeneratedProgram makeProgram(int Blocks) {
  GeneratedProgram R;
  ClassId T = R.P.addClass("T");
  FieldIndex Val = R.P.addField(T, "val", ValueType::Int);
  StaticIndex Global = R.P.addStatic("global", ValueType::Ref);
  R.M = R.P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
  CodeBuilder C(R.P, R.M);
  unsigned X = 0;
  unsigned Tl = C.newLocal();
  for (int I = 0; I != Blocks; ++I) {
    Label Skip = C.newLabel();
    C.newObj(T).store(Tl);
    C.load(Tl).load(X).putField(T, Val);
    C.load(X).constI(0).ifGe(Skip);
    C.load(Tl).putStatic(Global);
    C.bind(Skip);
    C.load(X).load(Tl).getField(T, Val).add().store(X);
  }
  C.load(X).retInt();
  C.finish();
  verifyProgramOrDie(R.P);
  return R;
}

void BM_GraphBuilding(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    benchmark::DoNotOptimize(Graph->numLiveNodes());
  }
  State.SetComplexityN(State.range(0));
}

void BM_Canonicalizer(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    State.ResumeTiming();
    canonicalize(*Graph, G.P);
  }
  State.SetComplexityN(State.range(0));
}

void BM_GVN(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    State.ResumeTiming();
    runGVN(*Graph);
  }
  State.SetComplexityN(State.range(0));
}

void BM_PartialEscapeAnalysis(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    canonicalize(*Graph, G.P);
    State.ResumeTiming();
    PEAStats Stats;
    runPartialEscapeAnalysis(*Graph, G.P, CO, &Stats);
    benchmark::DoNotOptimize(Stats.VirtualizedAllocations);
  }
  State.SetComplexityN(State.range(0));
}

void BM_FlowInsensitiveEscapeAnalysis(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    canonicalize(*Graph, G.P);
    State.ResumeTiming();
    PEAStats Stats;
    runFlowInsensitiveEscapeAnalysis(*Graph, G.P, CO, &Stats);
    benchmark::DoNotOptimize(Stats.VirtualizedAllocations);
  }
  State.SetComplexityN(State.range(0));
}

void BM_FullPipelineWithPea(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    canonicalize(*Graph, G.P);
    runGVN(*Graph);
    PEAStats Stats;
    runPartialEscapeAnalysis(*Graph, G.P, CO, &Stats);
    canonicalize(*Graph, G.P);
    runGVN(*Graph);
    eliminateDeadCode(*Graph);
    benchmark::DoNotOptimize(Graph->numLiveNodes());
  }
  State.SetComplexityN(State.range(0));
}

} // namespace

BENCHMARK(BM_GraphBuilding)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Canonicalizer)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity();
BENCHMARK(BM_GVN)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_PartialEscapeAnalysis)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_FlowInsensitiveEscapeAnalysis)->RangeMultiplier(4)
    ->Range(4, 256)->Complexity(benchmark::oN);
BENCHMARK(BM_FullPipelineWithPea)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity(benchmark::oN);

BENCHMARK_MAIN();
