//===- bench_phase_overhead.cpp - Compile-time cost of the analysis -------------===//
//
// google-benchmark microbenchmarks for the compiler phases, supporting
// the paper's Section 7 discussion (the analysis runs as a regular IR
// phase; its cost scales with graph size) and the jython observation
// (compilation cost is the flip side of the optimization).
//
// Graphs are generated: chains of K "allocate, store, branch-on-escape,
// load" blocks, so PEA's work (object states, merges, frame-state
// rewrites) grows linearly with K.
//
//===----------------------------------------------------------------------===//

#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"
#include "compiler/Canonicalizer.h"
#include "compiler/DeadCodeElimination.h"
#include "compiler/GVN.h"
#include "compiler/GraphBuilder.h"
#include "observability/Profiler.h"
#include "observability/Trace.h"
#include "pea/PartialEscapeAnalysis.h"

#include <benchmark/benchmark.h>

using namespace jvm;

namespace {

/// A program whose method consists of \p Blocks repetitions of:
///   t = new T; t.val = x; if (x < 0) global = t; x += t.val;
struct GeneratedProgram {
  Program P;
  MethodId M = NoMethod;
};

GeneratedProgram makeProgram(int Blocks) {
  GeneratedProgram R;
  ClassId T = R.P.addClass("T");
  FieldIndex Val = R.P.addField(T, "val", ValueType::Int);
  StaticIndex Global = R.P.addStatic("global", ValueType::Ref);
  R.M = R.P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
  CodeBuilder C(R.P, R.M);
  unsigned X = 0;
  unsigned Tl = C.newLocal();
  for (int I = 0; I != Blocks; ++I) {
    Label Skip = C.newLabel();
    C.newObj(T).store(Tl);
    C.load(Tl).load(X).putField(T, Val);
    C.load(X).constI(0).ifGe(Skip);
    C.load(Tl).putStatic(Global);
    C.bind(Skip);
    C.load(X).load(Tl).getField(T, Val).add().store(X);
  }
  C.load(X).retInt();
  C.finish();
  verifyProgramOrDie(R.P);
  return R;
}

void BM_GraphBuilding(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    benchmark::DoNotOptimize(Graph->numLiveNodes());
  }
  State.SetComplexityN(State.range(0));
}

void BM_Canonicalizer(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    State.ResumeTiming();
    canonicalize(*Graph, G.P);
  }
  State.SetComplexityN(State.range(0));
}

void BM_GVN(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    State.ResumeTiming();
    runGVN(*Graph);
  }
  State.SetComplexityN(State.range(0));
}

void BM_PartialEscapeAnalysis(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    canonicalize(*Graph, G.P);
    State.ResumeTiming();
    PEAStats Stats;
    runPartialEscapeAnalysis(*Graph, G.P, CO, &Stats);
    benchmark::DoNotOptimize(Stats.VirtualizedAllocations);
  }
  State.SetComplexityN(State.range(0));
}

void BM_FlowInsensitiveEscapeAnalysis(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    canonicalize(*Graph, G.P);
    State.ResumeTiming();
    PEAStats Stats;
    runFlowInsensitiveEscapeAnalysis(*Graph, G.P, CO, &Stats);
    benchmark::DoNotOptimize(Stats.VirtualizedAllocations);
  }
  State.SetComplexityN(State.range(0));
}

void BM_FullPipelineWithPea(benchmark::State &State) {
  GeneratedProgram G = makeProgram(State.range(0));
  CompilerOptions CO;
  for (auto _ : State) {
    std::unique_ptr<Graph> Graph = buildGraph(G.P, G.M, nullptr, CO);
    canonicalize(*Graph, G.P);
    runGVN(*Graph);
    PEAStats Stats;
    runPartialEscapeAnalysis(*Graph, G.P, CO, &Stats);
    canonicalize(*Graph, G.P);
    runGVN(*Graph);
    eliminateDeadCode(*Graph);
    benchmark::DoNotOptimize(Graph->numLiveNodes());
  }
  State.SetComplexityN(State.range(0));
}

//===----------------------------------------------------------------------===//
// Tracer overhead. The observability contract (DESIGN.md §9) is that the
// disabled fast path is one relaxed atomic load: an instrumentation site
// that tracing is off for must cost nanoseconds, so instrumenting a
// phase or the deopt path costs nothing in the common case. The enabled
// variants quantify the per-event recording cost for comparison.
//===----------------------------------------------------------------------===//

void BM_TracerDisabledCheck(benchmark::State &State) {
  Tracer::get().setEnabled(false);
  for (auto _ : State) {
    // The exact shape of every disabled instrumentation site in the VM.
    if (traceWants(TracePea))
      Tracer::get().instant(TracePea, "never");
    benchmark::DoNotOptimize(&trace_detail::ActiveMask);
  }
}

void BM_TracerDisabledScope(benchmark::State &State) {
  Tracer::get().setEnabled(false);
  for (auto _ : State) {
    TraceScope Span(TraceCompile, "never");
    benchmark::DoNotOptimize(&Span);
  }
}

// The profiler makes the same promise (DESIGN.md §14): a tier entry
// point or TLAB allocation site gated on profWantsSamples() /
// profWantsAllocSamples() costs one relaxed atomic load while the
// profiler is off. These are the exact shapes of the gates in the four
// tier entry points and MemoryManager::initObject.

void BM_ProfilerDisabledCheck(benchmark::State &State) {
  Profiler::get().stop();
  for (auto _ : State) {
    if (profWantsSamples())
      profSetCurrentIsolate(0);
    if (profWantsAllocSamples())
      profNoteAllocation(-1, 16);
    benchmark::DoNotOptimize(&prof_detail::Active);
  }
}

void BM_ProfilerDisabledScope(benchmark::State &State) {
  Profiler::get().stop();
  for (auto _ : State) {
    ProfScope Frame(ProfTierLinear, 0);
    benchmark::DoNotOptimize(&Frame);
  }
}

// The enabled variants run a fixed iteration count (set at registration
// below): the ring never wraps, so the combined event count must stay
// under the default per-thread capacity (1<<16) or the later iterations
// would measure the drop path instead of recording.

void BM_TracerEnabledInstant(benchmark::State &State) {
  Tracer::get().setEnabled(true);
  Tracer::get().setCategories(TracePea);
  for (auto _ : State)
    if (traceWants(TracePea))
      Tracer::get().instant(TracePea, "bench", "arg", 1);
  Tracer::get().setEnabled(false);
  Tracer::get().setCategories(TraceDefaultCategories);
  Tracer::get().clear();
}

void BM_TracerEnabledScope(benchmark::State &State) {
  Tracer::get().setEnabled(true);
  Tracer::get().setCategories(TraceCompile);
  for (auto _ : State) {
    TraceScope Span(TraceCompile, "bench");
    benchmark::DoNotOptimize(&Span);
  }
  Tracer::get().setEnabled(false);
  Tracer::get().setCategories(TraceDefaultCategories);
  Tracer::get().clear();
}

} // namespace

BENCHMARK(BM_GraphBuilding)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Canonicalizer)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity();
BENCHMARK(BM_GVN)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_PartialEscapeAnalysis)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_FlowInsensitiveEscapeAnalysis)->RangeMultiplier(4)
    ->Range(4, 256)->Complexity(benchmark::oN);
BENCHMARK(BM_FullPipelineWithPea)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity(benchmark::oN);

BENCHMARK(BM_TracerDisabledCheck);
BENCHMARK(BM_TracerDisabledScope);
BENCHMARK(BM_ProfilerDisabledCheck);
BENCHMARK(BM_ProfilerDisabledScope);
// 20000 + 2*20000 events < the 1<<16 default ring (see the comment at
// the benchmark definitions).
BENCHMARK(BM_TracerEnabledInstant)->Iterations(20000);
BENCHMARK(BM_TracerEnabledScope)->Iterations(20000);

BENCHMARK_MAIN();
