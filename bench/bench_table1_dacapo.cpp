//===- bench_table1_dacapo.cpp - Table 1, DaCapo block -------------------------===//

#include "Table1Common.h"

int main() { return jvm::bench::runTable1Suite("dacapo", "DaCapo"); }
