//===- bench_multitenant.cpp - Isolates × threads throughput sweep -------------===//
//
// Demonstrates the isolate refactor's headline property: N tenants in
// ONE process, each with its own heap/profiles/code tables, all
// compiling through the single process-wide CompileBroker. Sweeps a
// grid of (isolates × app threads) points over a mixed Table 1
// workload and reports, per point:
//
//   ops/s        aggregate throughput (all isolates, all threads)
//   p50/p99      per-op latency percentiles as seen by app threads
//   broker       process broker worker count — the column that must
//                NOT grow as isolates scale (shared substrate, not
//                per-tenant pools)
//   queue-hw     process compile queue high water over the point
//
// Correctness gates (exit 1 on failure, so perf_smoke_multitenant
// notices):
//   - every isolate's checksum equals expectedChecksum(), the same op
//     multiset replayed on a plain single-tenant VirtualMachine — the
//     acceptance criterion that multi-tenant plumbing does not change
//     single-tenant behavior;
//   - broker worker count is identical across all points.
//
// Environment (see src/support/Env.h):
//   JVM_MT_ISOLATES  comma grid of isolate counts   (default 1,2,4)
//   JVM_MT_THREADS   comma grid of threads/isolate  (default 1,2)
//   JVM_MT_OPS       ops per thread per point       (default 64)
//   JVM_MT_JSON      output path for the JSON array (default
//                    BENCH_multitenant.json in the CWD)
//
//===----------------------------------------------------------------------===//

#include "support/Env.h"
#include "workloads/MultiTenant.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace jvm;
using namespace jvm::workloads;

namespace {

/// Parses "1,2,4" into {1,2,4}; unset/empty/garbage falls back to
/// \p Default. Values are clamped to [1, 64] — a grid point is a full
/// set of OS threads, not something to launch thousands of.
std::vector<unsigned> parseGrid(const char *Raw,
                                std::vector<unsigned> Default) {
  if (!EnvSnapshot::isSet(Raw))
    return Default;
  std::vector<unsigned> Grid;
  const char *P = Raw;
  while (*P) {
    char *End = nullptr;
    long V = std::strtol(P, &End, 10);
    if (End == P)
      break;
    if (V < 1)
      V = 1;
    if (V > 64)
      V = 64;
    Grid.push_back(unsigned(V));
    P = *End == ',' ? End + 1 : End;
    if (End == P && *End)
      break;
  }
  return Grid.empty() ? Default : Grid;
}

uint64_t parseOps(const char *Raw, uint64_t Default) {
  if (!EnvSnapshot::isSet(Raw))
    return Default;
  char *End = nullptr;
  long V = std::strtol(Raw, &End, 10);
  return (End != Raw && V > 0) ? uint64_t(V) : Default;
}

double ms(uint64_t Nanos) { return Nanos / 1e6; }

} // namespace

int main() {
  const EnvSnapshot &Env = EnvSnapshot::process();
  std::vector<unsigned> IsolateGrid = parseGrid(Env.MtIsolates, {1, 2, 4});
  std::vector<unsigned> ThreadGrid = parseGrid(Env.MtThreads, {1, 2});
  uint64_t OpsPerThread = parseOps(Env.MtOps, 64);
  const char *JsonPath = EnvSnapshot::isSet(Env.MtJson)
                             ? Env.MtJson
                             : "BENCH_multitenant.json";

  BenchmarkSet Set = buildBenchmarkSet();

  std::printf("Multi-tenant throughput: isolates x app threads, one "
              "process, one compile broker\n");
  {
    std::string Mix;
    for (const std::string &N : defaultRowMix())
      Mix += (Mix.empty() ? "" : ",") + N;
    std::printf("(row mix: %s; %llu ops/thread/point)\n\n", Mix.c_str(),
                (unsigned long long)OpsPerThread);
  }

  std::printf("%-10s %8s %12s %10s %10s %10s %8s %9s\n", "isolates",
              "threads", "total-ops", "ops/s", "p50", "p99", "broker",
              "queue-hw");
  std::printf("%-10s %8s %12s %10s %10s %10s %8s %9s\n", "", "(per-iso)", "",
              "", "(ms)", "(ms)", "", "");

  // expectedChecksum depends only on (threads, ops), not isolate count:
  // compute once per thread-grid entry and hold EVERY isolate of every
  // point to it.
  std::vector<int64_t> Expected(ThreadGrid.size());
  for (size_t T = 0; T != ThreadGrid.size(); ++T) {
    MultiTenantOptions Opts;
    Opts.ThreadsPerIsolate = ThreadGrid[T];
    Opts.OpsPerThread = OpsPerThread;
    Expected[T] = expectedChecksum(Set, Opts);
  }

  std::vector<std::string> Records;
  bool Ok = true;
  unsigned FirstBrokerThreads = 0;
  bool HaveBroker = false;
  for (unsigned Isolates : IsolateGrid) {
    for (size_t T = 0; T != ThreadGrid.size(); ++T) {
      MultiTenantOptions Opts;
      Opts.Isolates = Isolates;
      Opts.ThreadsPerIsolate = ThreadGrid[T];
      Opts.OpsPerThread = OpsPerThread;
      MultiTenantResult R = runMultiTenant(Set, Opts);

      std::printf("%-10u %8u %12llu %10.0f %10.3f %10.3f %8u %9llu\n",
                  R.Isolates, R.ThreadsPerIsolate,
                  (unsigned long long)R.TotalOps, R.OpsPerSecond,
                  ms(R.OpLatencyP50Ns), ms(R.OpLatencyP99Ns),
                  R.BrokerThreads,
                  (unsigned long long)R.QueueDepthHighWater);
      std::fprintf(stderr, "  [measured] isolates=%u threads=%u\n",
                   R.Isolates, R.ThreadsPerIsolate);

      for (const MultiTenantResult::IsolateStats &S : R.PerIsolate)
        if (S.Checksum != Expected[T]) {
          std::fprintf(stderr,
                       "FAIL: isolate %u checksum %lld != single-tenant "
                       "expected %lld (isolates=%u threads=%u)\n",
                       S.Id, (long long)S.Checksum,
                       (long long)Expected[T], Isolates, ThreadGrid[T]);
          Ok = false;
        }

      if (!HaveBroker) {
        FirstBrokerThreads = R.BrokerThreads;
        HaveBroker = true;
      } else if (R.BrokerThreads != FirstBrokerThreads) {
        std::fprintf(stderr,
                     "FAIL: broker worker count changed across points "
                     "(%u -> %u) — the pool must be process-wide, not "
                     "per-isolate\n",
                     FirstBrokerThreads, R.BrokerThreads);
        Ok = false;
      }

      Records.push_back(multiTenantJson(R));
    }
  }

  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fputs("[\n", F);
    for (size_t I = 0; I != Records.size(); ++I)
      std::fprintf(F, "  %s%s\n", Records[I].c_str(),
                   I + 1 != Records.size() ? "," : "");
    std::fputs("]\n", F);
    std::fclose(F);
    std::printf("\nwrote %zu records to %s\n", Records.size(), JsonPath);
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", JsonPath);
    Ok = false;
  }

  if (Ok)
    std::printf("checksums match single-tenant replay; broker pool "
                "constant at %u worker(s) across %zu points\n",
                FirstBrokerThreads, Records.size());
  return Ok ? 0 : 1;
}
