#!/usr/bin/env python3
"""Lint for the native tier's code dumps against the compile log.

After a run with JVM_EXEC_MODE=native, JVM_DUMP_NATIVE=<dir> and
JVM_COMPILE_LOG=<file>, validates that the dumped machine code and the
log agree 1:1:

  * every *installed* compile-log record carrying a "native" line has a
    dump file m<method>.c<seq>.bin that exists, is non-empty, and whose
    size equals the record's bytes= value,
  * every dump file in the directory is claimed by exactly one such
    record (no orphans, no double-claims),
  * at least one native record was logged at all — an empty intersection
    would make the whole check vacuous (e.g. the tier silently fell back
    everywhere, which is exactly the regression this exists to catch).

Records that are DISCARDED (a stale compile losing the version race)
may carry a native line without a dump: the dump happens at install.

Exit status 0 on success, 1 with a diagnostic on the first failure.
Usage: check_native.py <dump-dir> <compile-log>
"""

import os
import re
import sys

METHOD_RE = re.compile(r"^method m(\d+): ")
COMPILE_RE = re.compile(r"^  compile #(\d+) hotness=\d+ (installed|DISCARDED) ")
NATIVE_RE = re.compile(r"^    native emit=(\d+)us bytes=(\d+)$")


def fail(msg):
    print(f"check_native: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_log(path):
    """Yields (method, seq, installed, bytes) for records with a native
    line. The log may contain many VM renderings appended back to back;
    method headers simply restart."""
    records = []
    method = None
    current = None  # (method, seq, installed) awaiting a native line
    try:
        with open(path) as f:
            for line in f:
                m = METHOD_RE.match(line)
                if m:
                    method = int(m.group(1))
                    current = None
                    continue
                m = COMPILE_RE.match(line)
                if m:
                    if method is None:
                        fail("compile record before any method header")
                    current = (method, int(m.group(1)), m.group(2) == "installed")
                    continue
                m = NATIVE_RE.match(line)
                if m:
                    if current is None:
                        fail("native line outside a compile record")
                    records.append((*current, int(m.group(2))))
                    current = None
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    return records


def main():
    if len(sys.argv) != 3:
        fail("usage: check_native.py <dump-dir> <compile-log>")
    dump_dir, log_path = sys.argv[1], sys.argv[2]

    records = parse_log(log_path)
    installed = [(m, s, b) for (m, s, ok, b) in records if ok]
    if not installed:
        fail(f"no installed native records in {log_path}: the native "
             "tier fell back (or emitted nothing) on every compile")

    try:
        on_disk = {f for f in os.listdir(dump_dir) if f.endswith(".bin")}
    except OSError as e:
        fail(f"cannot list {dump_dir}: {e}")

    claimed = set()
    for method, seq, nbytes in installed:
        name = f"m{method}.c{seq}.bin"
        if name in claimed:
            fail(f"two installed records claim {name}: compile seq reuse")
        claimed.add(name)
        path = os.path.join(dump_dir, name)
        if name not in on_disk:
            fail(f"log has installed native compile #{seq} of m{method} "
                 f"({nbytes} bytes) but {name} was not dumped")
        size = os.path.getsize(path)
        if size == 0:
            fail(f"{name} is empty")
        if size != nbytes:
            fail(f"{name} is {size} bytes on disk but the compile log "
                 f"says {nbytes}")

    orphans = on_disk - claimed
    if orphans:
        fail(f"{len(orphans)} dump file(s) not matched by any installed "
             f"log record, e.g. {sorted(orphans)[0]}")

    total = sum(b for (_, _, b) in installed)
    print(f"check_native: OK: {len(installed)} methods, {total} code bytes, "
          f"dumps and log agree 1:1")


if __name__ == "__main__":
    main()
