#!/usr/bin/env python3
"""Lint for the speculation subsystem's compile-log records and trace.

After a run with JVM_SPESH=1, JVM_COMPILE_LOG=<file> and
JVM_TRACE=<json>, validates that the planner, the guard machinery and
the despecialization path agree with each other:

  * guard ids are well-formed: every "deopt ... guard=N" line belongs
    to a compile record with more than N "spesh guard=" lines (the
    guard id space IS the record's speculation list),
  * every "guard-fail" trace instant matches a logged guard: the
    instant's method has an installed record whose speculation list
    covers the instant's guard id,
  * despecialized speculations never come back: once a speculation's
    guard-failure count crosses the threshold (--threshold, matching
    JVM_SPESH_THRESHOLD of the run), no later record of that method
    plans the same (kind, site) again — the blocklist converges, so a
    blocklisted speculation triggers at most the one recompile that
    removed it,
  * "despecialize" trace instants are unique per (method, kind, site):
    a duplicate would mean the same speculation invalidated the method
    twice,
  * at least one record carries speculations at all — an empty
    intersection would make every check above vacuous (e.g. the planner
    silently never ran, which is exactly the regression this catches).

Exit status 0 on success, 1 with a diagnostic on the first failure.
Usage: check_spesh.py <compile-log> <trace.json> [--threshold=N]
"""

import json
import re
import sys

METHOD_RE = re.compile(r"^method m(\d+): ")
COMPILE_RE = re.compile(r"^  compile #(\d+) hotness=\d+ (installed|DISCARDED) ")
SPESH_RE = re.compile(r"^    spesh guard=(\d+) kind=(\S+) site=(-?\d+)")
DEOPT_RE = re.compile(r"^    deopt reason=(\S+) rematerialized=\d+ guard=(\d+)$")


def fail(msg):
    print(f"check_spesh: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_log(path):
    """Per-method ordered compile records: (seq, installed, specs, deopts)
    where specs is {guard_id: (kind, site)} and deopts is [guard_id]."""
    methods = {}
    method = None
    record = None
    with open(path) as f:
        for line in f:
            m = METHOD_RE.match(line)
            if m:
                method = int(m.group(1))
                methods.setdefault(method, [])
                record = None
                continue
            m = COMPILE_RE.match(line)
            if m:
                if method is None:
                    fail(f"compile record outside a method block: {line!r}")
                record = {
                    "seq": int(m.group(1)),
                    "installed": m.group(2) == "installed",
                    "specs": {},
                    "deopts": [],
                }
                methods[method].append(record)
                continue
            m = SPESH_RE.match(line)
            if m:
                if record is None:
                    fail(f"spesh line outside a compile record: {line!r}")
                record["specs"][int(m.group(1))] = (m.group(2), int(m.group(3)))
                continue
            m = DEOPT_RE.match(line)
            if m and record is not None:
                record["deopts"].append(int(m.group(2)))
    return methods


def load_instants(path, name):
    """All 'I'-phase trace events with the given name."""
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents list")
    return [e for e in events if e.get("ph") == "I" and e.get("name") == name]


def main():
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 1
    log_path, trace_path = sys.argv[1], sys.argv[2]
    threshold = 1
    for arg in sys.argv[3:]:
        if arg.startswith("--threshold="):
            threshold = int(arg.split("=", 1)[1])
        else:
            fail(f"unknown argument {arg!r}")

    methods = parse_log(log_path)

    # Non-vacuity: the planner must have committed to something.
    total_specs = sum(
        len(r["specs"]) for recs in methods.values() for r in recs
    )
    if total_specs == 0:
        fail(f"{log_path}: no speculation records at all "
             "(was the run missing JVM_SPESH=1?)")

    # Guard ids well-formed within their record, and despecialized
    # (kind, site) pairs never re-planned by a later compile.
    for method, recs in sorted(methods.items()):
        fails_per_site = {}
        blocked = set()
        for idx, rec in enumerate(recs):
            for guard, (kind, site) in sorted(rec["specs"].items()):
                if (kind, site) in blocked:
                    fail(f"m{method} compile #{rec['seq']}: speculation "
                         f"kind={kind} site={site} re-planned after "
                         f"despecialization")
            for guard in rec["deopts"]:
                if guard not in rec["specs"]:
                    fail(f"m{method} compile #{rec['seq']}: deopt guard={guard} "
                         f"has no matching spesh record "
                         f"(plan size {len(rec['specs'])})")
                key = rec["specs"][guard]
                fails_per_site[key] = fails_per_site.get(key, 0) + 1
                if fails_per_site[key] >= threshold:
                    blocked.add(key)

    # Every guard-fail instant matches a logged guard of its method.
    for ev in load_instants(trace_path, "guard-fail"):
        args = ev.get("args", {})
        method, guard = args.get("method"), args.get("guard")
        if not isinstance(method, int) or not isinstance(guard, int):
            fail(f"guard-fail instant without integer method/guard: {ev!r}")
        recs = methods.get(method, [])
        if not any(r["installed"] and guard in r["specs"] for r in recs):
            fail(f"guard-fail instant for m{method} guard={guard} matches no "
                 f"installed compile record with that guard")

    # Despecialize instants: at most one per (method, kind, site).
    seen = set()
    for ev in load_instants(trace_path, "despecialize"):
        args = ev.get("args", {})
        method, guard = args.get("method"), args.get("guard")
        kind = args.get("kind")
        if not isinstance(method, int) or not isinstance(guard, int):
            fail(f"despecialize instant without integer method/guard: {ev!r}")
        site = None
        for r in methods.get(method, []):
            if guard in r["specs"] and r["specs"][guard][0] == kind:
                site = r["specs"][guard][1]
        if site is None:
            fail(f"despecialize instant for m{method} guard={guard} "
                 f"kind={kind} matches no logged speculation")
        key = (method, kind, site)
        if key in seen:
            fail(f"m{method} kind={kind} site={site} despecialized twice")
        seen.add(key)

    n_methods = sum(1 for recs in methods.values()
                    if any(r["specs"] for r in recs))
    print(f"check_spesh: OK: {total_specs} speculations across "
          f"{n_methods} methods, "
          f"{len(seen)} despecializations, threshold {threshold}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
