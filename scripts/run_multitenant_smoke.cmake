# Runs bench_multitenant at a single small grid point (2 isolates x
# 2 app threads, few ops) and lints the JSON it writes with
# check_multitenant.py. Invoked by ctest (perf-smoke / isolate labels):
#
#   cmake -DBENCH=<binary> -DPYTHON=<python3>
#         -DCHECK=<check_multitenant.py> -DJSON=<out.json>
#         -P run_multitenant_smoke.cmake
#
# The bench itself exits nonzero if any isolate's checksum diverges from
# the single-tenant replay or the broker pool size changes between
# points, so this smoke covers the correctness gates too, not just the
# schema.

foreach(Var BENCH PYTHON CHECK JSON)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "run_multitenant_smoke.cmake: ${Var} not set")
  endif()
endforeach()

file(REMOVE ${JSON})

# The smoke runs with the sampling profiler armed (JVM_PROF=1: sample,
# no report file) and a generous alloc-sampling period, so the
# per-isolate prof_samples_* / prof_alloc_samples JSON fields carry real
# attribution data and the checker can insist on it.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "JVM_MT_ISOLATES=2" "JVM_MT_THREADS=2" "JVM_MT_OPS=24"
          "JVM_MT_JSON=${JSON}"
          "JVM_PROF=1" "JVM_PROF_HZ=4000" "JVM_PROF_ALLOC_BYTES=8192"
          ${BENCH}
  RESULT_VARIABLE BenchResult)
if(BenchResult)
  message(FATAL_ERROR "multitenant smoke bench run failed: ${BenchResult}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECK} ${JSON} --expect-prof-samples
  RESULT_VARIABLE CheckResult)
if(CheckResult)
  message(FATAL_ERROR "multitenant schema check failed: ${CheckResult}")
endif()
