#!/usr/bin/env python3
"""GC-behavior check for the Table 1 bench JSON output.

Validates the BENCH_table1 JSON array written via JVM_BENCH_JSON after a
run with a deliberately small young space (perf_smoke_gc):

  * every record carries the PR 5 GC fields (scavenges, full_gcs,
    bytes_promoted, gc_pause_p50_ns, gc_pause_p99_ns) as non-negative
    integers,
  * the run scavenged: sum(scavenges) > 0 — a young space this small
    must collect, so zero means the trigger is broken,
  * no measured window fell back to a full collection:
    sum(full_gcs) == 0 — churn workloads' live sets fit the old-space
    threshold, so a full GC here means promotion is leaking,
  * pause percentiles are ordered: p50 <= p99 per record.

Exit status 0 on success, 1 with a diagnostic on the first failure.
Usage: check_gc.py <BENCH_table1.json>
"""

import json
import sys

GC_FIELDS = ("scavenges", "full_gcs", "bytes_promoted",
             "gc_pause_p50_ns", "gc_pause_p99_ns")


def fail(msg):
    print(f"check_gc: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_gc.py <BENCH_table1.json>")
    try:
        with open(sys.argv[1]) as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")
    if not isinstance(records, list) or not records:
        fail("expected a non-empty JSON array of bench records")

    total_scavenges = 0
    total_full = 0
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            fail(f"record #{i} is not an object")
        for field in GC_FIELDS:
            v = rec.get(field)
            if not isinstance(v, int) or v < 0:
                fail(f"record #{i} ({rec.get('benchmark')}): "
                     f"field {field!r} missing or invalid: {v!r}")
        if rec["gc_pause_p50_ns"] > rec["gc_pause_p99_ns"]:
            fail(f"record #{i} ({rec.get('benchmark')}): "
                 f"p50 {rec['gc_pause_p50_ns']} > p99 {rec['gc_pause_p99_ns']}")
        total_scavenges += rec["scavenges"]
        total_full += rec["full_gcs"]

    if total_scavenges == 0:
        fail("no scavenges across the whole run despite the small "
             "young space: the collection trigger is broken")
    if total_full != 0:
        fail(f"{total_full} full GCs in the measured windows: churn "
             "live sets should never grow the old space to its threshold")
    print(f"check_gc: OK: {len(records)} records, "
          f"{total_scavenges} scavenges, 0 full GCs")


if __name__ == "__main__":
    main()
