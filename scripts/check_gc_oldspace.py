#!/usr/bin/env python3
"""Lint BENCH_gc_oldspace.json: the card-table flatness claim, checked.

The bench sweeps the live old-space population over an >=8x span while
holding the churn workload fixed, once per mode:

  card_remset  scavenge scans dirty cards only (the PR 8 collector)
  full_scan    the legacy whole-old-space scan (JVM_GC_SCAN_OLD=1)

This checker asserts the shape of the two curves, not absolute speed:

  * schema: both modes cover the same old_mb sweep, counters sane,
    p50 <= p99 <= max per point, old-space span really is >= 8x;
  * card_remset p99 is flat: the largest point is within 4x of the
    smallest OR within an absolute 300us — a slack band that absorbs
    scheduler noise on tiny pauses but fails any O(old-size) term;
  * card_remset work is constant: cards_scanned identical at every
    old size (the dirty-card count is a property of the workload);
  * full_scan p50 grows with old size (>= 1.3x from the smallest to
    the largest point) — proving the sweep is actually big enough
    that a non-flat collector shows through.

Usage: check_gc_oldspace.py BENCH_gc_oldspace.json
Exit 0 when every check passes, 1 with a diagnostic otherwise.
"""

import json
import sys

INT_FIELDS = (
    "old_mb",
    "old_bytes",
    "scavenges",
    "pause_p50_ns",
    "pause_p99_ns",
    "pause_max_ns",
    "cards_dirtied",
    "cards_scanned",
    "workers_max",
    "copied_bytes",
)

FLAT_RATIO = 4.0  # card p99: largest point within 4x of smallest ...
FLAT_SLACK_NS = 300_000  # ... or within 300us absolute, whichever is looser
GROWTH_RATIO = 1.3  # full_scan p50 must grow at least this much
SPAN_RATIO = 8.0  # required old-space size span, largest/smallest


def fail(msg):
    print(f"check_gc_oldspace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_gc_oldspace.json")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")

    if doc.get("bench") != "gc_oldspace":
        fail(f"unexpected bench id {doc.get('bench')!r}")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        fail("no points[] in JSON")

    by_mode = {"card_remset": [], "full_scan": []}
    for p in points:
        mode = p.get("mode")
        if mode not in by_mode:
            fail(f"unknown mode {mode!r}")
        for field in INT_FIELDS:
            v = p.get(field)
            if not isinstance(v, int) or v < 0:
                fail(f"{mode} old_mb={p.get('old_mb')}: bad {field}={v!r}")
        if not p["pause_p50_ns"] <= p["pause_p99_ns"] <= p["pause_max_ns"]:
            fail(
                f"{mode} old_mb={p['old_mb']}: percentile order violated "
                f"(p50={p['pause_p50_ns']} p99={p['pause_p99_ns']} "
                f"max={p['pause_max_ns']})"
            )
        if p["scavenges"] < 10:
            fail(
                f"{mode} old_mb={p['old_mb']}: only {p['scavenges']} "
                "scavenges — too few samples for percentiles"
            )
        by_mode[mode].append(p)

    sweeps = {m: sorted(p["old_mb"] for p in pts) for m, pts in by_mode.items()}
    if sweeps["card_remset"] != sweeps["full_scan"]:
        fail(f"modes sweep different old sizes: {sweeps}")
    if len(sweeps["card_remset"]) < 3:
        fail(f"sweep too short: {sweeps['card_remset']}")

    for mode, pts in by_mode.items():
        pts.sort(key=lambda p: p["old_bytes"])
        span = pts[-1]["old_bytes"] / pts[0]["old_bytes"]
        if span < SPAN_RATIO:
            fail(
                f"{mode}: old-space span {span:.2f}x < required "
                f"{SPAN_RATIO}x ({pts[0]['old_bytes']} .. "
                f"{pts[-1]['old_bytes']} bytes)"
            )

    card = by_mode["card_remset"]
    full = by_mode["full_scan"]

    # The headline: card-mode p99 does not scale with old-space size.
    p99s = [p["pause_p99_ns"] for p in card]
    limit = max(FLAT_RATIO * min(p99s), min(p99s) + FLAT_SLACK_NS)
    if max(p99s) > limit:
        fail(
            f"card_remset p99 not flat: max {max(p99s)} ns > limit "
            f"{limit:.0f} ns (min {min(p99s)} ns over an "
            f"{card[-1]['old_bytes'] / card[0]['old_bytes']:.1f}x "
            "old-space span)"
        )

    # Scavenge work must be card-driven and constant across the sweep.
    scanned = {p["cards_scanned"] for p in card}
    if 0 in scanned:
        fail("card_remset point scanned zero cards — barrier not firing?")
    if len(scanned) != 1:
        fail(
            f"card_remset cards_scanned varies with old size: {sorted(scanned)}"
            " — dirty-card volume should be workload-determined"
        )
    if any(p["cards_scanned"] != 0 for p in full):
        fail("full_scan point reports scanned cards — fallback not engaged?")

    # And the control: the legacy scan does get slower as old space grows,
    # so the flat card curve is a property of the collector, not the sweep.
    growth = full[-1]["pause_p50_ns"] / max(1, full[0]["pause_p50_ns"])
    if growth < GROWTH_RATIO:
        fail(
            f"full_scan p50 grew only {growth:.2f}x over the sweep "
            f"(expected >= {GROWTH_RATIO}x) — old-space sweep too small "
            "to distinguish the collectors"
        )

    print(
        "check_gc_oldspace: OK "
        f"(card p99 {min(p99s)}..{max(p99s)} ns over "
        f"{card[-1]['old_bytes'] / card[0]['old_bytes']:.1f}x old span, "
        f"full_scan p50 grew {growth:.1f}x)"
    )


if __name__ == "__main__":
    main()
