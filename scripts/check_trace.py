#!/usr/bin/env python3
"""Schema lint for the VM's Chrome trace_event JSON output.

Validates a trace file written via JVM_TRACE= (or Tracer::writeJson):

  * the file is valid JSON with the expected top-level shape
    (traceEvents list, displayTimeUnit, otherData with drop accounting),
  * every event carries the required keys with the right types and a
    known phase ('B', 'E', 'I' or 'M'),
  * per (pid, tid), 'B'/'E' events nest LIFO with matching names and no
    span left open,
  * timestamps are non-decreasing per thread (events are appended to
    per-thread ring buffers in record order),
  * with --expect-no-drops, otherData.droppedEvents is zero (the
    perf-smoke run must fit in the default ring).

Exit status 0 on success, 1 with a diagnostic on the first failure.
Usage: check_trace.py <trace.json> [--expect-no-drops]
"""

import json
import sys

VALID_PHASES = {"B", "E", "I", "M"}
REQUIRED_OTHER_DATA = ("droppedEvents", "highWater", "ringCapacity")


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event_shape(ev, idx):
    if not isinstance(ev, dict):
        fail(f"event #{idx} is not an object: {ev!r}")
    name = ev.get("name")
    if not isinstance(name, str) or not name:
        fail(f"event #{idx} has no name: {ev!r}")
    ph = ev.get("ph")
    if ph not in VALID_PHASES:
        fail(f"event #{idx} ({name}) has invalid ph {ph!r}")
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int):
            fail(f"event #{idx} ({name}) missing integer {key!r}")
    if ph != "M":
        if not isinstance(ev.get("ts"), (int, float)):
            fail(f"event #{idx} ({name}) missing numeric ts")
        if not isinstance(ev.get("cat"), str):
            fail(f"event #{idx} ({name}) missing cat")
    if "args" in ev and not isinstance(ev["args"], dict):
        fail(f"event #{idx} ({name}) has non-object args")


def check_spans(events):
    """Per-(pid,tid) LIFO matching of B/E pairs and ts monotonicity."""
    open_spans = {}
    last_ts = {}
    for idx, ev in enumerate(events):
        if ev["ph"] == "M":
            continue
        key = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if ts < last_ts.get(key, 0):
            fail(
                f"event #{idx} ({ev['name']}) goes back in time on "
                f"pid/tid {key}: {ts} < {last_ts[key]}"
            )
        last_ts[key] = ts
        if ev["ph"] == "B":
            open_spans.setdefault(key, []).append(ev["name"])
        elif ev["ph"] == "E":
            stack = open_spans.get(key, [])
            if not stack:
                fail(
                    f"event #{idx}: 'E' for {ev['name']!r} with no open "
                    f"span on pid/tid {key}"
                )
            top = stack.pop()
            if top != ev["name"]:
                fail(
                    f"event #{idx}: 'E' for {ev['name']!r} closes "
                    f"{top!r} on pid/tid {key}"
                )
    for key, stack in open_spans.items():
        if stack:
            fail(f"unclosed span(s) {stack!r} on pid/tid {key}")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    expect_no_drops = "--expect-no-drops" in argv[2:]

    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(trace, dict):
        fail("top level is not an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    if trace.get("displayTimeUnit") not in ("ms", "ns"):
        fail(f"bad displayTimeUnit: {trace.get('displayTimeUnit')!r}")
    other = trace.get("otherData")
    if not isinstance(other, dict):
        fail("missing otherData object")
    for key in REQUIRED_OTHER_DATA:
        if not isinstance(other.get(key), int):
            fail(f"otherData missing integer {key!r}")

    for idx, ev in enumerate(events):
        check_event_shape(ev, idx)
    check_spans(events)

    dropped = other["droppedEvents"]
    if expect_no_drops and dropped != 0:
        fail(
            f"{dropped} events dropped (ring capacity "
            f"{other['ringCapacity']}); raise JVM_TRACE_RING or reduce "
            f"the traced workload"
        )

    spans = sum(1 for ev in events if ev["ph"] == "B")
    instants = sum(1 for ev in events if ev["ph"] == "I")
    tids = {(ev["pid"], ev["tid"]) for ev in events}
    print(
        f"check_trace: OK: {len(events)} events ({spans} spans, "
        f"{instants} instants) across {len(tids)} thread(s), "
        f"{dropped} dropped"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
