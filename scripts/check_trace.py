#!/usr/bin/env python3
"""Schema lint for the VM's Chrome trace_event JSON output.

Validates a trace file written via JVM_TRACE= (or Tracer::writeJson):

  * the file is valid JSON with the expected top-level shape
    (traceEvents list, displayTimeUnit, otherData with drop accounting),
  * every event carries the required keys with the right types and a
    known phase ('B', 'E', 'I' or 'M'),
  * per (pid, tid), 'B'/'E' events nest LIFO with matching names and no
    span left open,
  * timestamps are non-decreasing per thread (events are appended to
    per-thread ring buffers in record order),
  * profiler sample events (cat "prof": prof-sample / prof-alloc
    instants drained from the sampling profiler) carry integer isolate,
    method and tier args with tier in the known range,
  * native-tier profiler samples with no method attribution stay under a
    small threshold (--max-unattributed-native, default 5% — the
    CodeCache PC index plus the shadow stack should catch nearly all),
  * with --expect-no-drops, otherData.droppedEvents is zero (the
    perf-smoke run must fit in the default ring).

Exit status 0 on success, 1 with a diagnostic on the first failure.
Usage: check_trace.py <trace.json> [--expect-no-drops]
                      [--max-unattributed-native=FRACTION]
"""

import json
import sys

VALID_PHASES = {"B", "E", "I", "M"}
REQUIRED_OTHER_DATA = ("droppedEvents", "highWater", "ringCapacity")

# Profiler sample schema: tier values 0..3 are the execution tiers,
# 4 is the runtime pseudo-tier (no shadow frame / non-mutator thread).
PROF_EVENT_NAMES = {"prof-sample", "prof-alloc"}
PROF_REQUIRED_ARGS = ("isolate", "method", "tier")
PROF_TIER_NATIVE = 3
PROF_MAX_TIER = 4


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event_shape(ev, idx):
    if not isinstance(ev, dict):
        fail(f"event #{idx} is not an object: {ev!r}")
    name = ev.get("name")
    if not isinstance(name, str) or not name:
        fail(f"event #{idx} has no name: {ev!r}")
    ph = ev.get("ph")
    if ph not in VALID_PHASES:
        fail(f"event #{idx} ({name}) has invalid ph {ph!r}")
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int):
            fail(f"event #{idx} ({name}) missing integer {key!r}")
    if ph != "M":
        if not isinstance(ev.get("ts"), (int, float)):
            fail(f"event #{idx} ({name}) missing numeric ts")
        if not isinstance(ev.get("cat"), str):
            fail(f"event #{idx} ({name}) missing cat")
    if "args" in ev and not isinstance(ev["args"], dict):
        fail(f"event #{idx} ({name}) has non-object args")


def check_prof_samples(events, max_unattributed_native):
    """Validates profiler sample instants and native-PC attribution.

    Returns (total_prof_events, native_samples, unattributed_native).
    """
    total = native = unattributed = 0
    for idx, ev in enumerate(events):
        if ev.get("cat") != "prof":
            continue
        name = ev["name"]
        if name not in PROF_EVENT_NAMES:
            fail(f"event #{idx}: unknown prof-category event {name!r}")
        if ev["ph"] != "I":
            fail(f"event #{idx} ({name}): prof events must be instants")
        args = ev.get("args")
        if not isinstance(args, dict):
            fail(f"event #{idx} ({name}): prof event without args")
        for key in PROF_REQUIRED_ARGS:
            if not isinstance(args.get(key), int):
                fail(f"event #{idx} ({name}): missing integer arg {key!r}")
        tier = args["tier"]
        if not 0 <= tier <= PROF_MAX_TIER:
            fail(f"event #{idx} ({name}): tier {tier} out of range")
        total += 1
        if name == "prof-sample" and tier == PROF_TIER_NATIVE:
            native += 1
            if args["method"] < 0:
                unattributed += 1
    if native and unattributed / native > max_unattributed_native:
        fail(
            f"{unattributed}/{native} native-tier samples lack method "
            f"attribution (> {max_unattributed_native:.0%}); the CodeCache "
            f"PC index or the native tier's shadow frames are broken"
        )
    return total, native, unattributed


def check_spans(events):
    """Per-(pid,tid) LIFO matching of B/E pairs and ts monotonicity."""
    open_spans = {}
    last_ts = {}
    for idx, ev in enumerate(events):
        if ev["ph"] == "M":
            continue
        key = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if ts < last_ts.get(key, 0):
            fail(
                f"event #{idx} ({ev['name']}) goes back in time on "
                f"pid/tid {key}: {ts} < {last_ts[key]}"
            )
        last_ts[key] = ts
        if ev["ph"] == "B":
            open_spans.setdefault(key, []).append(ev["name"])
        elif ev["ph"] == "E":
            stack = open_spans.get(key, [])
            if not stack:
                fail(
                    f"event #{idx}: 'E' for {ev['name']!r} with no open "
                    f"span on pid/tid {key}"
                )
            top = stack.pop()
            if top != ev["name"]:
                fail(
                    f"event #{idx}: 'E' for {ev['name']!r} closes "
                    f"{top!r} on pid/tid {key}"
                )
    for key, stack in open_spans.items():
        if stack:
            fail(f"unclosed span(s) {stack!r} on pid/tid {key}")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    expect_no_drops = "--expect-no-drops" in argv[2:]
    max_unattributed_native = 0.05
    for arg in argv[2:]:
        if arg.startswith("--max-unattributed-native="):
            max_unattributed_native = float(arg.split("=", 1)[1])

    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(trace, dict):
        fail("top level is not an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    if trace.get("displayTimeUnit") not in ("ms", "ns"):
        fail(f"bad displayTimeUnit: {trace.get('displayTimeUnit')!r}")
    other = trace.get("otherData")
    if not isinstance(other, dict):
        fail("missing otherData object")
    for key in REQUIRED_OTHER_DATA:
        if not isinstance(other.get(key), int):
            fail(f"otherData missing integer {key!r}")

    for idx, ev in enumerate(events):
        check_event_shape(ev, idx)
    check_spans(events)
    prof_total, prof_native, prof_unattr = check_prof_samples(
        events, max_unattributed_native
    )

    dropped = other["droppedEvents"]
    if expect_no_drops and dropped != 0:
        fail(
            f"{dropped} events dropped (ring capacity "
            f"{other['ringCapacity']}); raise JVM_TRACE_RING or reduce "
            f"the traced workload"
        )

    spans = sum(1 for ev in events if ev["ph"] == "B")
    instants = sum(1 for ev in events if ev["ph"] == "I")
    tids = {(ev["pid"], ev["tid"]) for ev in events}
    prof_note = ""
    if prof_total:
        prof_note = (
            f", {prof_total} prof samples ({prof_native} native, "
            f"{prof_unattr} unattributed)"
        )
    print(
        f"check_trace: OK: {len(events)} events ({spans} spans, "
        f"{instants} instants) across {len(tids)} thread(s), "
        f"{dropped} dropped{prof_note}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
