# Runs a bench binary on the native tier with code dumping and the
# compile log enabled, then lints dumps-vs-log 1:1 with check_native.py.
# Invoked by ctest (perf-smoke / native labels) via:
#
#   cmake -DBENCH=<binary> -DPYTHON=<python3> -DCHECK=<check_native.py>
#         -DOUT=<workdir> -P run_native_smoke.cmake
#
# The dump directory and the (append-mode) compile log are recreated
# from scratch each run so a stale file can never satisfy the check.

foreach(Var BENCH PYTHON CHECK OUT)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "run_native_smoke.cmake: ${Var} not set")
  endif()
endforeach()

set(DumpDir "${OUT}/native_dump")
set(LogFile "${OUT}/native_compile.log")
file(REMOVE_RECURSE "${DumpDir}")
file(REMOVE "${LogFile}")
file(MAKE_DIRECTORY "${DumpDir}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "JVM_EXEC_MODE=native"
          "JVM_DUMP_NATIVE=${DumpDir}"
          "JVM_COMPILE_LOG=${LogFile}"
          "JVM_BENCH_WARMUP=4" "JVM_BENCH_MEASURE=3" "JVM_BENCH_REPEATS=1"
          "JVM_BENCH_JSON=${OUT}/BENCH_table1_native_smoke.json"
          ${BENCH}
  RESULT_VARIABLE BenchResult)
if(BenchResult)
  message(FATAL_ERROR "native bench run failed: ${BenchResult}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECK} ${DumpDir} ${LogFile}
  RESULT_VARIABLE CheckResult)
if(CheckResult)
  message(FATAL_ERROR "native dump lint failed: ${CheckResult}")
endif()
