# Runs a bench binary with the sampling profiler armed (high tick rate,
# small allocation-sampling period so a short smoke run still gathers
# sites), then lints the folded flamegraph output and the residual-
# allocation report with check_profile.py. Invoked by ctest
# (perf-smoke / observability labels) via:
#
#   cmake -DBENCH=<binary> -DPYTHON=<python3> -DCHECK=<check_profile.py>
#         -DFOLDED=<folded.txt> -DREPORT=<report.txt>
#         -P run_profile_smoke.cmake
#
# The report file is append-mode (one block per destroyed isolate), so
# both outputs are removed up front — a stale file from a previous run
# must not be able to satisfy the checker.

foreach(Var BENCH PYTHON CHECK FOLDED REPORT)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "run_profile_smoke.cmake: ${Var} not set")
  endif()
endforeach()

file(REMOVE ${FOLDED} ${REPORT})

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "JVM_PROF=${REPORT}"
          "JVM_PROF_FOLDED=${FOLDED}"
          "JVM_PROF_HZ=4000"
          "JVM_PROF_ALLOC_BYTES=16384"
          "JVM_PROF_SEED=42"
          "JVM_BENCH_WARMUP=4" "JVM_BENCH_MEASURE=3" "JVM_BENCH_REPEATS=1"
          "JVM_EXEC_MODE=linear"
          "JVM_BENCH_JSON=${FOLDED}.bench.json"
          ${BENCH}
  RESULT_VARIABLE BenchResult)
if(BenchResult)
  message(FATAL_ERROR "profiled bench run failed: ${BenchResult}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECK} ${FOLDED} ${REPORT}
  RESULT_VARIABLE CheckResult)
if(CheckResult)
  message(FATAL_ERROR "profile lint failed: ${CheckResult}")
endif()
