# Runs a bench binary with speculation on, the compile log and the
# tracer armed, then lints the speculation records with check_spesh.py:
# guard ids match logged speculations, guard-fail instants match logged
# guards, and despecialized speculations never get re-planned. Invoked
# by ctest (perf-smoke / spesh labels) via:
#
#   cmake -DBENCH=<binary> -DPYTHON=<python3> -DCHECK=<check_spesh.py>
#         -DOUT=<workdir> -P run_spesh_smoke.cmake
#
# JVM_SPESH_THRESHOLD=1 makes the convergence check exact: any guard
# failure despecializes immediately, so a re-planned speculation in a
# later record is unambiguously a blocklist bug. The log and trace are
# removed first so a stale file can never satisfy the check.

foreach(Var BENCH PYTHON CHECK OUT)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "run_spesh_smoke.cmake: ${Var} not set")
  endif()
endforeach()

set(LogFile "${OUT}/spesh_compile.log")
set(TraceFile "${OUT}/spesh_trace.json")
file(REMOVE "${LogFile}")
file(REMOVE "${TraceFile}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "JVM_SPESH=1"
          "JVM_SPESH_THRESHOLD=1"
          "JVM_EXEC_MODE=linear"
          "JVM_COMPILE_LOG=${LogFile}"
          "JVM_TRACE=${TraceFile}"
          "JVM_BENCH_WARMUP=4" "JVM_BENCH_MEASURE=3" "JVM_BENCH_REPEATS=1"
          "JVM_BENCH_JSON=${OUT}/BENCH_table1_spesh_smoke.json"
          ${BENCH}
  RESULT_VARIABLE BenchResult)
if(BenchResult)
  message(FATAL_ERROR "speculation bench run failed: ${BenchResult}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECK} ${LogFile} ${TraceFile} --threshold=1
  RESULT_VARIABLE CheckResult)
if(CheckResult)
  message(FATAL_ERROR "speculation record lint failed: ${CheckResult}")
endif()
