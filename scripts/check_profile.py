#!/usr/bin/env python3
"""Lint for the sampling profiler's folded-stack and residual reports.

Validates the two files a profiled bench run produces:

  * the JVM_PROF_FOLDED file is well-formed flamegraph.pl input — every
    line is "frame;frame;... count" with a positive integer count, every
    stack is rooted at an "isolate-<id>" frame (or is the bare "runtime"
    pseudo-stack for tierless samples), and every non-root frame carries
    a tier suffix (_[i], _[g], _[l], _[n]),
  * at least --min-attributed (default 95%) of all samples are tier- and
    method-attributed — samples on the "runtime" pseudo-stack count as
    attributed (they are deliberately tierless: broker workers, GC
    threads, driver code), unknown-method frames (m<id> with no name) do
    not,
  * the JVM_PROF residual-allocation report is non-empty: at least one
    "== residual-allocations" block for an isolate running escape
    analysis (ea= not "none") with sites > 0, and every listed site
    carries a PEA join line ("pea: seq=..." or the interpreter-resident
    marker) so the report actually connects sampled sites to compile-log
    decisions.

Exit status 0 on success, 1 with a diagnostic on the first failure.
Usage: check_profile.py <folded.txt> <report.txt>
                        [--min-attributed=FRACTION]
"""

import re
import sys

TIER_SUFFIXES = ("_[i]", "_[g]", "_[l]", "_[n]")
SITE_RE = re.compile(
    r"^  site method=(\S+) bci=(-?\d+) class=(\S+) samples=(\d+) "
    r"est_bytes=(\d+) avg_object_bytes=(\d+)$"
)
HEADER_RE = re.compile(
    r"^== residual-allocations isolate=(\d+) exec=(\S+) ea=(\S+) "
    r"sites=(\d+) ==$"
)


def fail(msg):
    print(f"check_profile: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_folded(path, min_attributed):
    """Parses the folded file; returns (total, attributed, stacks)."""
    total = attributed = stacks = 0
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
    if not lines:
        fail(f"{path}: folded output is empty (profiler recorded nothing)")
    for lineno, line in enumerate(lines, 1):
        pos = line.rfind(" ")
        if pos <= 0:
            fail(f"{path}:{lineno}: no count field: {line!r}")
        stack, count = line[:pos], line[pos + 1 :]
        if not count.isdigit() or int(count) <= 0:
            fail(f"{path}:{lineno}: bad count {count!r}")
        n = int(count)
        total += n
        stacks += 1
        frames = stack.split(";")
        if frames == ["runtime"]:
            # Tierless pseudo-stack: non-mutator threads and ticks with
            # no shadow frame. Deliberate, and counts as attributed.
            attributed += n
            continue
        if not frames[0].startswith("isolate-"):
            fail(f"{path}:{lineno}: stack not rooted at an isolate: {line!r}")
        if len(frames) < 2:
            fail(f"{path}:{lineno}: isolate root with no frames: {line!r}")
        ok = True
        for frame in frames[1:]:
            if not frame.endswith(TIER_SUFFIXES):
                fail(
                    f"{path}:{lineno}: frame {frame!r} lacks a tier "
                    f"suffix {TIER_SUFFIXES}"
                )
            # m<id> is the symbolizer's "no registered name" fallback.
            if re.fullmatch(r"m\d+", frame[: -len("_[x]")]):
                ok = False
        if ok:
            attributed += n
    frac = attributed / total
    if frac < min_attributed:
        fail(
            f"only {attributed}/{total} samples ({frac:.1%}) are tier- and "
            f"method-attributed (need >= {min_attributed:.0%})"
        )
    return total, attributed, stacks


def check_report(path):
    """Validates the residual-allocation report; returns (blocks, sites)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")

    blocks = sites = 0
    ea_blocks_with_sites = 0
    pending_site = None  # site line awaiting its pea: join line
    current_ea = None
    for lineno, line in enumerate(lines, 1):
        header = HEADER_RE.match(line)
        if header:
            if pending_site is not None:
                fail(f"{path}: site at line {pending_site} has no pea: line")
            blocks += 1
            current_ea = header.group(3)
            if current_ea != "none" and int(header.group(4)) > 0:
                ea_blocks_with_sites += 1
            continue
        if SITE_RE.match(line):
            if pending_site is not None:
                fail(f"{path}: site at line {pending_site} has no pea: line")
            if current_ea is None:
                fail(f"{path}:{lineno}: site line outside any block")
            pending_site = lineno
            sites += 1
            continue
        if line.startswith("    pea: "):
            if pending_site is None:
                fail(f"{path}:{lineno}: pea: line without a site line")
            pending_site = None
    if pending_site is not None:
        fail(f"{path}: site at line {pending_site} has no pea: line")
    if blocks == 0:
        fail(f"{path}: no residual-allocations blocks (report is empty)")
    if sites == 0:
        fail(f"{path}: no sampled allocation sites in any block")
    if ea_blocks_with_sites == 0:
        fail(
            f"{path}: no escape-analysis isolate reported residual sites; "
            f"either alloc sampling or the PEA join is broken"
        )
    return blocks, sites


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    folded_path, report_path = argv[1], argv[2]
    min_attributed = 0.95
    for arg in argv[3:]:
        if arg.startswith("--min-attributed="):
            min_attributed = float(arg.split("=", 1)[1])

    total, attributed, stacks = check_folded(folded_path, min_attributed)
    blocks, sites = check_report(report_path)
    print(
        f"check_profile: OK: {total} samples in {stacks} stacks "
        f"({attributed / total:.1%} attributed), {blocks} residual "
        f"report blocks with {sites} sites"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
