# Runs a Table 1 bench with a deliberately small young space so the
# measured windows must scavenge, then checks the GC fields of the bench
# JSON with check_gc.py. Invoked by ctest (perf-smoke / memory labels):
#
#   cmake -DBENCH=<binary> -DPYTHON=<python3> -DCHECK=<check_gc.py>
#         -DJSON=<out.json> -P run_gc_smoke.cmake
#
# 64 KB regions / 256 KB young: every churn row allocates a multiple of
# that per iteration, so scavenges are guaranteed; live sets stay far
# below the full-GC threshold, so full collections mean a promotion leak.

foreach(Var BENCH PYTHON CHECK JSON)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "run_gc_smoke.cmake: ${Var} not set")
  endif()
endforeach()

file(REMOVE ${JSON})

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "JVM_HEAP_REGION=64k" "JVM_HEAP_YOUNG=256k"
          "JVM_BENCH_WARMUP=4" "JVM_BENCH_MEASURE=3" "JVM_BENCH_REPEATS=1"
          "JVM_EXEC_MODE=linear"
          "JVM_BENCH_JSON=${JSON}"
          ${BENCH}
  RESULT_VARIABLE BenchResult)
if(BenchResult)
  message(FATAL_ERROR "gc smoke bench run failed: ${BenchResult}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECK} ${JSON}
  RESULT_VARIABLE CheckResult)
if(CheckResult)
  message(FATAL_ERROR "gc behavior check failed: ${CheckResult}")
endif()
