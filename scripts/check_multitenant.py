#!/usr/bin/env python3
"""Schema check for the bench_multitenant JSON output.

Validates the array written via JVM_MT_JSON (perf_smoke_multitenant):

  * non-empty JSON array; every record carries the full schema
    (configuration, throughput, latency percentiles, broker stats and a
    per_isolate array) with the right types,
  * per-record invariants: total_ops == isolates * threads_per_isolate
    * per-thread ops implied by per_isolate[i].ops; p50 <= p99 <= max;
    per_isolate has exactly `isolates` entries with process-unique ids,
  * isolate independence: every isolate in a record reports the same
    checksum (same op multiset => same commutative sum) and nonzero ops,
  * the shared-broker property: broker_threads is identical across all
    records — the worker pool must not grow with isolate count.

Exit status 0 on success, 1 with a diagnostic on the first failure.
Usage: check_multitenant.py <BENCH_multitenant.json>
"""

import json
import sys

INT_FIELDS = ("threads_per_isolate", "total_ops", "wall_nanos",
              "op_p50_ns", "op_p99_ns", "op_max_ns", "broker_threads",
              "queue_depth_high_water")
NUM_FIELDS = ("isolates", "ops_per_sec")
ISO_INT_FIELDS = ("id", "ops", "checksum", "compilations",
                  "compiles_discarded", "heap_allocations", "gc_runs",
                  "deopts", "gc_pause_p50_ns", "gc_pause_p99_ns",
                  "prof_samples_interp", "prof_samples_graph",
                  "prof_samples_linear", "prof_samples_native",
                  "prof_alloc_samples")


def fail(msg):
    print(f"check_multitenant: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_multitenant.py <BENCH_multitenant.json> "
             "[--expect-prof-samples]")
    expect_prof = "--expect-prof-samples" in sys.argv[2:]
    try:
        with open(sys.argv[1]) as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")
    if not isinstance(records, list) or not records:
        fail("expected a non-empty JSON array of sweep records")

    broker_threads = set()
    seen_ids = set()
    prof_samples = 0
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            fail(f"record #{i} is not an object")
        for field in INT_FIELDS:
            v = rec.get(field)
            if not isinstance(v, int) or v < 0:
                fail(f"record #{i}: field {field!r} missing or invalid: {v!r}")
        for field in NUM_FIELDS:
            v = rec.get(field)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"record #{i}: field {field!r} missing or invalid: {v!r}")
        if not (rec["op_p50_ns"] <= rec["op_p99_ns"] <= rec["op_max_ns"]):
            fail(f"record #{i}: latency percentiles out of order: "
                 f"p50={rec['op_p50_ns']} p99={rec['op_p99_ns']} "
                 f"max={rec['op_max_ns']}")

        isolates = int(rec["isolates"])
        per = rec.get("per_isolate")
        if not isinstance(per, list) or len(per) != isolates:
            fail(f"record #{i}: per_isolate should have {isolates} "
                 f"entries, got {per!r}")
        checksums = set()
        ops_sum = 0
        for j, iso in enumerate(per):
            if not isinstance(iso, dict):
                fail(f"record #{i} isolate #{j} is not an object")
            for field in ISO_INT_FIELDS:
                v = iso.get(field)
                if not isinstance(v, int) or (field != "checksum" and v < 0):
                    fail(f"record #{i} isolate #{j}: field {field!r} "
                         f"missing or invalid: {v!r}")
            if iso["id"] in seen_ids:
                fail(f"record #{i} isolate #{j}: id {iso['id']} reused — "
                     "isolate ids must be process-unique")
            seen_ids.add(iso["id"])
            if iso["ops"] == 0:
                fail(f"record #{i} isolate #{j}: zero ops retired")
            if iso["gc_pause_p50_ns"] > iso["gc_pause_p99_ns"]:
                fail(f"record #{i} isolate #{j}: gc pause percentiles out "
                     f"of order: p50={iso['gc_pause_p50_ns']} "
                     f"p99={iso['gc_pause_p99_ns']}")
            checksums.add(iso["checksum"])
            ops_sum += iso["ops"]
            prof_samples += (iso["prof_samples_interp"]
                             + iso["prof_samples_graph"]
                             + iso["prof_samples_linear"]
                             + iso["prof_samples_native"]
                             + iso["prof_alloc_samples"])
        if len(checksums) != 1:
            fail(f"record #{i}: isolates disagree on the checksum "
                 f"({sorted(checksums)}) — per-tenant state is leaking")
        if ops_sum != rec["total_ops"]:
            fail(f"record #{i}: per_isolate ops sum {ops_sum} != "
                 f"total_ops {rec['total_ops']}")
        broker_threads.add(rec["broker_threads"])

    if len(broker_threads) != 1:
        fail(f"broker_threads varies across records ({sorted(broker_threads)})"
             " — the compile worker pool must be process-wide")
    if expect_prof and prof_samples == 0:
        fail("the run was profiled (--expect-prof-samples) but no isolate "
             "reported any sampled self-time — per-isolate attribution "
             "is broken")
    prof_note = f", {prof_samples} prof samples" if prof_samples else ""
    print(f"check_multitenant: OK: {len(records)} records, "
          f"{len(seen_ids)} isolates, broker pool constant at "
          f"{broker_threads.pop()} worker(s){prof_note}")


if __name__ == "__main__":
    main()
