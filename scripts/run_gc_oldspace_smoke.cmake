# Runs the old-space sweep bench (card_remset vs full_scan over an 8x
# old-space span) and lints the JSON with check_gc_oldspace.py: schema,
# card-mode p99 flat, constant cards_scanned, full_scan p50 growing.
# Invoked by ctest (perf-smoke / memory labels):
#
#   cmake -DBENCH=<bench_gc_oldspace> -DPYTHON=<python3>
#         -DCHECK=<check_gc_oldspace.py> -DJSON=<out.json>
#         -P run_gc_oldspace_smoke.cmake
#
# The bench fixes its own heap geometry (64 KB regions / 1 MB young);
# the only knob that matters here is where the JSON lands.

foreach(Var BENCH PYTHON CHECK JSON)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "run_gc_oldspace_smoke.cmake: ${Var} not set")
  endif()
endforeach()

file(REMOVE ${JSON})

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "JVM_GC_BENCH_JSON=${JSON}"
          ${BENCH}
  RESULT_VARIABLE BenchResult)
if(BenchResult)
  message(FATAL_ERROR "gc old-space bench run failed: ${BenchResult}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECK} ${JSON}
  RESULT_VARIABLE CheckResult)
if(CheckResult)
  message(FATAL_ERROR "gc old-space flatness check failed: ${CheckResult}")
endif()
