# Runs a bench binary with JVM_TRACE enabled, then lints the resulting
# Chrome trace JSON with check_trace.py. Invoked by ctest (perf-smoke /
# observability labels) via:
#
#   cmake -DBENCH=<binary> -DPYTHON=<python3> -DCHECK=<check_trace.py>
#         -DTRACE=<out.json> -P run_trace_smoke.cmake
#
# The smoke run traces the default categories (compile/code/tier/deopt —
# the per-operation "pea"/"monitor" categories are disabled-by-default
# precisely because they flood the ring) and must fit in the default ring
# without drops: check_trace runs with --expect-no-drops so a silent-loss
# regression fails the test.

foreach(Var BENCH PYTHON CHECK TRACE)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "run_trace_smoke.cmake: ${Var} not set")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "JVM_TRACE=${TRACE}"
          "JVM_BENCH_WARMUP=4" "JVM_BENCH_MEASURE=3" "JVM_BENCH_REPEATS=1"
          "JVM_EXEC_MODE=linear"
          "JVM_BENCH_JSON=${TRACE}.bench.json"
          ${BENCH}
  RESULT_VARIABLE BenchResult)
if(BenchResult)
  message(FATAL_ERROR "traced bench run failed: ${BenchResult}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECK} ${TRACE} --expect-no-drops
  RESULT_VARIABLE CheckResult)
if(CheckResult)
  message(FATAL_ERROR "trace schema lint failed: ${CheckResult}")
endif()
