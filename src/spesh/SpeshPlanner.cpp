//===- SpeshPlanner.cpp - Profile-driven specialization planning --------------===//

#include "spesh/SpeshPlanner.h"

#include "bytecode/Program.h"

using namespace jvm;

SpeshPlan jvm::planSpeculations(const SpeshSnapshot &S, const Program &P,
                                MethodId Method) {
  SpeshPlan Plan;
  if (!S.Enabled || S.IsOsr)
    return Plan;
  const MethodInfo &M = P.methodAt(Method);

  auto Admit = [&](Speculation Spec) {
    if (S.Blocklist.count(speculationSiteKey(Spec)))
      return;
    Plan.Specs.push_back(Spec);
  };

  // Observed-constant integer arguments. Entry guards come first in the
  // plan so their ids are stable across recompiles of the same shape.
  for (const auto &[Index, Obs] : S.Args) {
    if (!Obs.Stable || Obs.Count < S.MinProfile)
      continue;
    if (Index < 0 || Index >= static_cast<int>(M.ParamTypes.size()) ||
        M.ParamTypes[Index] != ValueType::Int)
      continue;
    Speculation Spec;
    Spec.Kind = SpeculationKind::ArgConst;
    Spec.Index = Index;
    Spec.IntValue = Obs.Value;
    Admit(Spec);
  }

  // Monomorphic receiver pinning at virtual callsites.
  for (const auto &[Bci, Classes] : S.Receivers) {
    if (Bci < 0 || Bci >= static_cast<int>(M.Code.size()) ||
        M.Code[Bci].Op != Opcode::InvokeVirtual)
      continue;
    if (Classes.size() != 1)
      continue;
    const auto &[Cls, Count] = *Classes.begin();
    if (Count < S.MinProfile)
      continue;
    Speculation Spec;
    Spec.Kind = SpeculationKind::ReceiverPin;
    Spec.Bci = Bci;
    Spec.Receiver = Cls;
    Admit(Spec);
  }

  // Never-observed branch directions.
  for (const auto &[Bci, Outcomes] : S.Branches) {
    if (Bci < 0 || Bci >= static_cast<int>(M.Code.size()) ||
        !isConditionalBranch(M.Code[Bci].Op))
      continue;
    auto [Taken, NotTaken] = Outcomes;
    if (Taken + NotTaken < S.MinProfile)
      continue;
    if (Taken != 0 && NotTaken != 0)
      continue;
    Speculation Spec;
    Spec.Kind = SpeculationKind::BranchPrune;
    Spec.Bci = Bci;
    Spec.TakenIsHot = NotTaken == 0;
    Admit(Spec);
  }

  return Plan;
}
