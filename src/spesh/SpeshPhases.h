//===- SpeshPhases.h - Speculation pipeline phases ------------------*- C++ -*-===//
///
/// \file
/// The speculation subsystem's two pipeline stages:
///
///  - SpeshPlanPhase ("spesh"): the broker pre-pass. Runs before graph
///    building, converts the compilation's SpeshSnapshot into the
///    SpeshPlan the builder consumes (PhaseContext::SpeshOut). Leaves the
///    graph untouched.
///
///  - LowerGuardsPhase ("lower-guards"): runs after escape analysis and
///    expands every GuardNode into the explicit If / Begin / Deoptimize
///    diamond the execution tiers understand. Keeping guards as single
///    straight-line nodes until this point is what lets PEA see the
///    speculated method as branch-free: the pruned paths simply do not
///    exist while allocations are being virtualized.
///
/// Like the escape phases (pea/EscapePhases.h), these implement the
/// compiler's header-only Phase interface from below it in the link
/// order: jvm_compiler links jvm_spesh, never the reverse.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_SPESH_SPESHPHASES_H
#define JVM_SPESH_SPESHPHASES_H

#include "compiler/Phase.h"

namespace jvm {

/// Snapshot -> plan. Must run before the graph-building phase.
class SpeshPlanPhase : public Phase {
public:
  const char *name() const override { return "spesh"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

/// Guard -> If/Begin/Deoptimize expansion. Must run after the escape
/// phase (guards are why PEA sees straight-line code) and before
/// scheduling (the backends have no Guard lowering of their own).
class LowerGuardsPhase : public Phase {
public:
  const char *name() const override { return "lower-guards"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

} // namespace jvm

#endif // JVM_SPESH_SPESHPHASES_H
