//===- SpeshPlanner.h - Profile-driven specialization planning ------*- C++ -*-===//
///
/// \file
/// Turns a SpeshSnapshot into a SpeshPlan: the pure decision procedure
/// that selects which profile-justified assumptions a compilation commits
/// to. Runs inside the pipeline (SpeshPlanPhase) on broker workers, so it
/// consults only the immutable snapshot — no VM state.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_SPESH_SPESHPLANNER_H
#define JVM_SPESH_SPESHPLANNER_H

#include "spesh/SpeshPlan.h"

namespace jvm {

class Program;

/// Selects speculations for \p Method from \p S:
///  - ReceiverPin for every virtual callsite whose observed receivers are
///    monomorphic with at least MinProfile weight,
///  - ArgConst for every integer parameter that held one value across at
///    least MinProfile observed calls,
///  - BranchPrune for every branch with at least MinProfile outcomes that
///    all went the same way.
/// Sites on the snapshot's blocklist are skipped, so despecialized
/// assumptions never come back. Returns an empty plan when speculation
/// is disabled or this is an OSR compile.
SpeshPlan planSpeculations(const SpeshSnapshot &S, const Program &P,
                           MethodId Method);

} // namespace jvm

#endif // JVM_SPESH_SPESHPLANNER_H
