//===- SpeshStats.cpp - Durable per-callsite speculation statistics ----------===//

#include "spesh/SpeshStats.h"

#include "interp/Profile.h"
#include "support/ErrorHandling.h"

using namespace jvm;

const char *jvm::speculationKindName(SpeculationKind K) {
  switch (K) {
  case SpeculationKind::ReceiverPin:
    return "receiver-pin";
  case SpeculationKind::ArgConst:
    return "arg-const";
  case SpeculationKind::BranchPrune:
    return "branch-prune";
  }
  jvm_unreachable("unknown speculation kind");
}

void SpeshStats::foldProfile(MethodId Method, const MethodProfile &Prof) {
  MethodEntry &E = PerMethod[Method];
  // Interpreter counters are cumulative over the method's lifetime, so a
  // later fold supersedes an earlier one: max-merge, never add (adding
  // would double-count every observation made before the previous fold).
  for (const auto &[Bci, BP] : Prof.Branches) {
    auto &Slot = E.Branches[Bci];
    if (BP.Taken > Slot.first)
      Slot.first = BP.Taken;
    if (BP.NotTaken > Slot.second)
      Slot.second = BP.NotTaken;
  }
  for (const auto &[Bci, TP] : Prof.Receivers)
    for (const auto &[Cls, Count] : TP.Counts) {
      uint64_t &Slot = E.InterpReceivers[Bci][Cls];
      if (Count > Slot)
        Slot = Count;
    }
}

SpeshSnapshot SpeshStats::snapshot(MethodId Method) const {
  const MethodEntry &E = PerMethod[Method];
  SpeshSnapshot S;
  S.Receivers = E.InterpReceivers;
  // Compiled-tier observations stack on top of the interpreter's: a
  // callsite that went polymorphic only after compilation still shows
  // both classes here.
  for (const auto &[Bci, Classes] : E.CompiledReceivers)
    for (const auto &[Cls, Count] : Classes)
      S.Receivers[Bci][Cls] += Count;
  S.Branches = E.Branches;
  S.Args = E.Args;
  S.Blocklist = E.Blocklist;
  return S;
}
