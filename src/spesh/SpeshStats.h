//===- SpeshStats.h - Durable per-callsite speculation statistics ---*- C++ -*-===//
///
/// \file
/// The speculation subsystem's memory: per-method receiver, branch and
/// argument-value statistics that *outlive* individual compilations. The
/// interpreter's MethodProfile is folded in at every compile enqueue, the
/// linear/native tiers feed virtual-call receivers through a callback
/// (compiled code keeps profiling, so a phase change after compilation is
/// still observed), and guard failures accumulate here until a
/// speculation crosses the despecialization threshold and lands on the
/// method's blocklist — at which point the planner never proposes it
/// again, so repeated recompilation converges.
///
/// Threading: owned by one isolate and touched only by its single
/// mutator thread (fold-at-enqueue, argument recording, guard-failure
/// accounting all happen on call/deopt paths). Broker workers see this
/// data only through the immutable SpeshSnapshot taken at enqueue.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_SPESH_SPESHSTATS_H
#define JVM_SPESH_SPESHSTATS_H

#include "spesh/SpeshPlan.h"

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace jvm {

struct MethodProfile;

class SpeshStats {
public:
  explicit SpeshStats(unsigned NumMethods) : PerMethod(NumMethods) {}

  /// Folds \p Prof's branch and receiver histograms into \p Method's
  /// durable statistics. Interpreter profiles are cumulative, so folding
  /// replaces (max-merges) rather than adds; the compiled-tier receiver
  /// feed below adds on top.
  void foldProfile(MethodId Method, const MethodProfile &Prof);

  /// One virtual-call receiver observed by a compiled tier (the linear
  /// executor's Invoke dispatch). \p Bci is the callsite's bytecode index.
  void recordReceiver(MethodId Method, int Bci, ClassId Receiver) {
    ++PerMethod[Method].CompiledReceivers[Bci][Receiver];
  }

  /// One integer argument vector observed at a (still interpreted) call.
  /// Collapses each parameter to "always this value" or "divergent".
  void recordIntArg(MethodId Method, int Index, int64_t V) {
    auto &Obs = PerMethod[Method].Args[Index];
    if (Obs.Count == 0)
      Obs.Value = V;
    else if (Obs.Value != V)
      Obs.Stable = false;
    ++Obs.Count;
  }

  /// One guard failure for \p Site (speculationSiteKey of the failed
  /// speculation). Returns the new failure count.
  uint64_t recordGuardFailure(MethodId Method, uint64_t Site) {
    return ++PerMethod[Method].GuardFailures[Site];
  }

  /// Blocklists \p Site for \p Method. Returns true if the site was not
  /// already blocklisted (i.e. this call despecialized it) — the caller
  /// invalidates the method's code exactly when this returns true, so a
  /// blocklisted speculation triggers at most one recompile.
  bool blocklist(MethodId Method, uint64_t Site) {
    return PerMethod[Method].Blocklist.insert(Site).second;
  }

  bool isBlocklisted(MethodId Method, uint64_t Site) const {
    return PerMethod[Method].Blocklist.count(Site) != 0;
  }

  /// True if any speculation of \p Method was ever despecialized.
  bool wasDespecialized(MethodId Method) const {
    return !PerMethod[Method].Blocklist.empty();
  }

  /// Builds the immutable per-compilation view for \p Method (everything
  /// except the Enabled/MinProfile/OSR fields, which the isolate fills).
  SpeshSnapshot snapshot(MethodId Method) const;

private:
  struct MethodEntry {
    /// From the interpreter profile (cumulative; max-merged on fold).
    std::map<int, std::map<ClassId, uint64_t>> InterpReceivers;
    std::map<int, std::pair<uint64_t, uint64_t>> Branches;
    /// From compiled-tier dispatch (additive).
    std::map<int, std::map<ClassId, uint64_t>> CompiledReceivers;
    std::map<int, SpeshSnapshot::ArgObs> Args;
    std::map<uint64_t, uint64_t> GuardFailures; ///< site key -> failures
    std::set<uint64_t> Blocklist;               ///< site keys
  };

  std::vector<MethodEntry> PerMethod;
};

} // namespace jvm

#endif // JVM_SPESH_SPESHSTATS_H
