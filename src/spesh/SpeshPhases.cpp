//===- SpeshPhases.cpp - Speculation pipeline phases --------------------------===//

#include "spesh/SpeshPhases.h"

#include "ir/Graph.h"
#include "spesh/SpeshPlanner.h"
#include "support/Casting.h"

using namespace jvm;

bool SpeshPlanPhase::run(Graph &, PhaseContext &Ctx) const {
  if (!Ctx.Spesh)
    return false;
  Ctx.SpeshOut = planSpeculations(*Ctx.Spesh, Ctx.P, Ctx.Method);
  return false; // The graph (still Start + parameters) is untouched.
}

bool LowerGuardsPhase::run(Graph &G, PhaseContext &Ctx) const {
  (void)Ctx;
  // Collect first: expansion allocates nodes, which would invalidate a
  // live iteration over the id space.
  std::vector<GuardNode *> Guards;
  for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id)
    if (auto *Gd = dyn_cast_or_null<GuardNode>(G.nodeAt(Id)))
      Guards.push_back(Gd);

  for (GuardNode *Gd : Guards) {
    Node *Cond = Gd->condition();
    FrameStateNode *State = Gd->state();
    DeoptReason Reason = Gd->reason();
    uint32_t SpecId = Gd->speculationId();

    FixedNode *Next = Gd->next();
    auto *Pred = cast<FixedWithNextNode>(Gd->predecessor());
    Gd->setNext(nullptr);
    Pred->setNext(nullptr);

    auto *If = G.create<IfNode>(Cond);
    // A guard exists because the profile never saw it fail.
    If->setTrueProbability(1.0);
    auto *TrueBegin = G.create<BeginNode>();
    auto *FalseBegin = G.create<BeginNode>();
    If->setTrueSuccessor(TrueBegin);
    If->setFalseSuccessor(FalseBegin);
    TrueBegin->setNext(Next);
    FalseBegin->setNext(G.create<DeoptimizeNode>(Reason, State, SpecId));
    Pred->setNext(If);

    G.deleteNode(Gd); // Clears the condition/state inputs.
  }
  return !Guards.empty();
}
