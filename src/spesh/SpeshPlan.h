//===- SpeshPlan.h - Speculation plans and profile snapshots --------*- C++ -*-===//
///
/// \file
/// The value types the speculation subsystem exchanges with the
/// compilation pipeline:
///
///  - Speculation / SpeshPlan: the planner's output — an ordered list of
///    profile-justified assumptions the graph builder turns into explicit
///    GuardNodes. A speculation's index in the plan IS its guard id: the
///    GuardNode carries it, the lowered Deoptimize carries it, and a
///    failing guard reports it back so the isolate can attribute the
///    failure to exactly one planner decision.
///
///  - SpeshSnapshot: the immutable per-compilation view of the durable
///    speculation statistics (SpeshStats), taken on the mutator thread at
///    enqueue time — the same snapshot-at-enqueue discipline as
///    ProfileSnapshot, so broker workers never race the mutator's profile
///    updates. It also carries the on-stack-replacement request for OSR
///    compiles (entry bci + the runtime types of the live locals, which
///    become the OSR graph's parameters).
///
/// Header-only and dependency-light (ir/Ids.h) so both the compiler layer
/// (PhaseContext) and the VM layer (broker tasks, install records) can
/// hold these by value.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_SPESH_SPESHPLAN_H
#define JVM_SPESH_SPESHPLAN_H

#include "ir/Ids.h"

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace jvm {

/// What a single speculation asserts about the method's behavior.
enum class SpeculationKind : uint8_t {
  /// "The virtual call at Bci always sees receiver class Receiver."
  /// Pins the callsite to the resolved target behind an exact type
  /// guard — straight-line code where the builder's profile-driven
  /// devirtualization would emit an If diamond with a slow path.
  ReceiverPin,
  /// "Parameter Index is always the integer IntValue." Guarded at
  /// entry; the parameter becomes a constant for the whole compile,
  /// feeding constant folding and branch pruning downstream.
  ArgConst,
  /// "The branch at Bci always goes one way (TakenIsHot)." Replaces the
  /// two-way If with a straight-line guard on the hot direction — the
  /// pruned path is dead before partial escape analysis runs, so
  /// allocations that only escaped there scalar-replace.
  BranchPrune,
};

const char *speculationKindName(SpeculationKind K);

/// One planner decision. Which fields are meaningful depends on Kind.
struct Speculation {
  SpeculationKind Kind = SpeculationKind::BranchPrune;
  int Bci = 0;                ///< callsite / branch bci (not ArgConst)
  int Index = 0;              ///< parameter index (ArgConst)
  ClassId Receiver = NoClass; ///< pinned receiver class (ReceiverPin)
  int64_t IntValue = 0;       ///< asserted constant (ArgConst)
  bool TakenIsHot = false;    ///< observed direction (BranchPrune)
};

/// Stable identity of the *site* a speculation covers, independent of the
/// speculated value: a failed receiver pin at bci 7 blocklists every
/// future receiver pin at bci 7, whatever class the next plan would pick.
inline uint64_t speculationSiteKey(const Speculation &S) {
  uint64_t Site = S.Kind == SpeculationKind::ArgConst
                      ? static_cast<uint32_t>(S.Index)
                      : static_cast<uint32_t>(S.Bci);
  return (static_cast<uint64_t>(S.Kind) << 32) | Site;
}

/// The specializations one compilation commits to. Index == guard id.
struct SpeshPlan {
  std::vector<Speculation> Specs;

  bool empty() const { return Specs.empty(); }
  unsigned size() const { return static_cast<unsigned>(Specs.size()); }
};

/// Immutable per-compilation view of the durable speculation statistics,
/// plus the OSR request (if this is an OSR compile). Built on the mutator
/// thread; consumed by the planner phase on a broker worker.
struct SpeshSnapshot {
  /// False: the planner phase is a no-op and the builder receives an
  /// empty plan (speculation disabled, or stats still immature).
  bool Enabled = false;
  /// Minimum observation weight before a statistic justifies a guard
  /// (CompilerOptions::SpeshMinProfile at snapshot time).
  uint64_t MinProfile = 20;

  /// Virtual-callsite receiver histograms: bci -> class -> count.
  std::map<int, std::map<ClassId, uint64_t>> Receivers;
  /// Branch outcomes: bci -> (taken, not-taken).
  std::map<int, std::pair<uint64_t, uint64_t>> Branches;

  /// Integer-argument stability: observed value and whether every
  /// observation agreed.
  struct ArgObs {
    uint64_t Count = 0;
    bool Stable = true;
    int64_t Value = 0;
  };
  std::map<int, ArgObs> Args; ///< parameter index -> observations

  /// Site keys (speculationSiteKey) of speculations that failed past the
  /// despecialization threshold; the planner never re-plans them.
  std::set<uint64_t> Blocklist;

  // On-stack replacement -------------------------------------------------
  /// True: compile an OSR entry version — the graph's parameters are the
  /// loop frame's locals and control enters at OsrEntryBci. The planner
  /// phase no-ops for OSR compiles (guards assume method-entry profiles;
  /// an OSR activation is already mid-flight).
  bool IsOsr = false;
  int OsrEntryBci = 0;
  /// Runtime types of the locals at the OSR point, in local-slot order;
  /// these become the OSR graph's parameter types.
  std::vector<ValueType> OsrLocalTypes;
};

} // namespace jvm

#endif // JVM_SPESH_SPESHPLAN_H
