//===- Profile.h - Interpreter profiling data ----------------------*- C++ -*-===//
///
/// \file
/// Profiles collected while interpreting: invocation counts (JIT
/// threshold), per-branch taken counts (speculative branch pruning) and
/// per-call-site receiver class distributions (devirtualization). The
/// compiler consumes these; deoptimizations feed corrections back in.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_INTERP_PROFILE_H
#define JVM_INTERP_PROFILE_H

#include "ir/Ids.h"

#include <cstdint>
#include <map>
#include <vector>

namespace jvm {

struct BranchProfile {
  uint64_t Taken = 0;
  uint64_t NotTaken = 0;

  uint64_t total() const { return Taken + NotTaken; }

  /// Probability of the branch being taken; 0.5 with no data.
  double takenProbability() const {
    return total() == 0 ? 0.5 : static_cast<double>(Taken) / total();
  }
};

/// Receiver class histogram of one virtual call site.
struct TypeProfile {
  std::map<ClassId, uint64_t> Counts;

  uint64_t total() const {
    uint64_t Sum = 0;
    for (const auto &[Cls, N] : Counts)
      Sum += N;
    return Sum;
  }

  /// The only observed receiver class, or NoClass if none/multiple.
  ClassId monomorphicClass() const {
    return Counts.size() == 1 ? Counts.begin()->first : NoClass;
  }
};

struct MethodProfile {
  uint64_t InvocationCount = 0;
  /// Taken backward branches; drives hotness so that loop-heavy methods
  /// compile quickly while call-heavy methods first collect enough
  /// receiver/branch samples (a stand-in for HotSpot's OSR counters).
  uint64_t BackedgeCount = 0;

  uint64_t hotness() const { return InvocationCount + BackedgeCount / 8; }
  std::map<int, BranchProfile> Branches;
  std::map<int, TypeProfile> Receivers;

  const BranchProfile *branchAt(int Bci) const {
    auto It = Branches.find(Bci);
    return It == Branches.end() ? nullptr : &It->second;
  }

  const TypeProfile *receiversAt(int Bci) const {
    auto It = Receivers.find(Bci);
    return It == Receivers.end() ? nullptr : &It->second;
  }
};

/// All per-method profiles of a program.
class ProfileData {
public:
  explicit ProfileData(unsigned NumMethods) : Profiles(NumMethods) {}

  MethodProfile &of(MethodId M) { return Profiles[M]; }
  const MethodProfile &of(MethodId M) const { return Profiles[M]; }

  /// Drops branch/receiver data of \p M (used when a speculation failed
  /// and the method is about to re-profile).
  void resetMethod(MethodId M) { Profiles[M] = MethodProfile(); }

private:
  std::vector<MethodProfile> Profiles;
};

} // namespace jvm

#endif // JVM_INTERP_PROFILE_H
