//===- Profile.h - Interpreter profiling data ----------------------*- C++ -*-===//
///
/// \file
/// Profiles collected while interpreting: invocation counts (JIT
/// threshold), per-branch taken counts (speculative branch pruning) and
/// per-call-site receiver class distributions (devirtualization). The
/// compiler consumes these; deoptimizations feed corrections back in.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_INTERP_PROFILE_H
#define JVM_INTERP_PROFILE_H

#include "ir/Ids.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace jvm {

/// Sorted flat map for profile sites. A method has only a handful of
/// branch/call sites, so a contiguous vector wins on lookup locality
/// and — critically for ProfileSnapshot, which is taken on the mutator
/// thread per compile request — on copy cost: copying is one
/// allocation, not one per site as with a node-based map.
template <typename KeyT, typename ValueT> class FlatProfileMap {
  using Entry = std::pair<KeyT, ValueT>;

public:
  /// Returns the value at \p K, default-inserting it if absent.
  ValueT &operator[](KeyT K) {
    auto It = lowerBound(K);
    if (It == Entries.end() || It->first != K)
      It = Entries.insert(It, Entry(K, ValueT()));
    return It->second;
  }

  const ValueT *find(KeyT K) const {
    auto It = lowerBound(K);
    return It != Entries.end() && It->first == K ? &It->second : nullptr;
  }

  const ValueT &at(KeyT K) const {
    const ValueT *V = find(K);
    assert(V && "key not present");
    return *V;
  }

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  typename std::vector<Entry>::const_iterator begin() const {
    return Entries.begin();
  }
  typename std::vector<Entry>::const_iterator end() const {
    return Entries.end();
  }

private:
  typename std::vector<Entry>::iterator lowerBound(KeyT K) {
    return std::lower_bound(
        Entries.begin(), Entries.end(), K,
        [](const Entry &E, KeyT Key) { return E.first < Key; });
  }
  typename std::vector<Entry>::const_iterator lowerBound(KeyT K) const {
    return std::lower_bound(
        Entries.begin(), Entries.end(), K,
        [](const Entry &E, KeyT Key) { return E.first < Key; });
  }

  std::vector<Entry> Entries;
};

struct BranchProfile {
  uint64_t Taken = 0;
  uint64_t NotTaken = 0;

  uint64_t total() const { return Taken + NotTaken; }

  /// Probability of the branch being taken; 0.5 with no data.
  double takenProbability() const {
    return total() == 0 ? 0.5 : static_cast<double>(Taken) / total();
  }
};

/// Receiver class histogram of one virtual call site.
struct TypeProfile {
  FlatProfileMap<ClassId, uint64_t> Counts;

  uint64_t total() const {
    uint64_t Sum = 0;
    for (const auto &[Cls, N] : Counts)
      Sum += N;
    return Sum;
  }

  /// The only observed receiver class, or NoClass if none/multiple.
  ClassId monomorphicClass() const {
    return Counts.size() == 1 ? Counts.begin()->first : NoClass;
  }
};

struct MethodProfile {
  uint64_t InvocationCount = 0;
  /// Taken backward branches; drives hotness so that loop-heavy methods
  /// compile quickly while call-heavy methods first collect enough
  /// receiver/branch samples (a stand-in for HotSpot's OSR counters).
  uint64_t BackedgeCount = 0;

  uint64_t hotness() const { return InvocationCount + BackedgeCount / 8; }
  FlatProfileMap<int, BranchProfile> Branches;
  FlatProfileMap<int, TypeProfile> Receivers;

  const BranchProfile *branchAt(int Bci) const { return Branches.find(Bci); }

  const TypeProfile *receiversAt(int Bci) const {
    return Receivers.find(Bci);
  }
};

class Program;

/// All per-method profiles of a program.
class ProfileData {
public:
  explicit ProfileData(unsigned NumMethods) : Profiles(NumMethods) {}

  unsigned numMethods() const { return Profiles.size(); }

  MethodProfile &of(MethodId M) { return Profiles[M]; }
  const MethodProfile &of(MethodId M) const { return Profiles[M]; }

  /// Drops branch/receiver data of \p M (used when a speculation failed
  /// and the method is about to re-profile).
  void resetMethod(MethodId M) { Profiles[M] = MethodProfile(); }

private:
  std::vector<MethodProfile> Profiles;
};

/// An immutable copy of all profiles, taken on the mutator thread when a
/// compilation is requested. Background compiler threads read only the
/// snapshot, so the interpreter can keep mutating the live ProfileData
/// while the method compiles — and a compilation's input is fixed at
/// enqueue time, making synchronous and background compilation produce
/// identical graphs.
class ProfileSnapshot {
public:
  /// Copies everything. Cost grows with the whole program's profile
  /// volume; prefer the scoped constructor on the compile request path.
  explicit ProfileSnapshot(const ProfileData &Live) : Copy(Live) {}

  /// Copies only the profiles the compilation of \p Root can consult:
  /// \p Root itself plus its transitive call closure (static targets
  /// and, for virtual sites, every target resolvable from the receiver
  /// classes profiled so far). Methods outside the closure read as
  /// unprofiled, which the pipeline never observes.
  ProfileSnapshot(const ProfileData &Live, const Program &P, MethodId Root);

  const MethodProfile &of(MethodId M) const { return Copy.of(M); }

  /// The whole snapshot, for consumers that walk callee profiles (the
  /// inliner takes a ProfileData).
  const ProfileData &data() const { return Copy; }

private:
  ProfileData Copy;
};

} // namespace jvm

#endif // JVM_INTERP_PROFILE_H
