//===- Profile.cpp - Interpreter profiling data --------------------------------===//

#include "interp/Profile.h"

#include "bytecode/Program.h"

using namespace jvm;

ProfileSnapshot::ProfileSnapshot(const ProfileData &Live, const Program &P,
                                 MethodId Root)
    : Copy(Live.numMethods()) {
  // The graph builder reads the root's profile; the inliner reads the
  // profile of every callee it builds a graph for, recursively. Walk
  // that closure: static call targets from the bytecode, plus — for
  // virtual sites — each target the profiled receiver classes resolve
  // to (devirtualization can only pick classes the profile contains).
  std::vector<MethodId> Worklist{Root};
  std::vector<uint8_t> Seen(Live.numMethods(), 0);
  Seen[Root] = 1;
  while (!Worklist.empty()) {
    MethodId M = Worklist.back();
    Worklist.pop_back();
    const MethodProfile &Prof = Live.of(M);
    Copy.of(M) = Prof;

    const std::vector<Instr> &Code = P.methodAt(M).Code;
    auto Visit = [&](MethodId Callee) {
      if (Callee != NoMethod && !Seen[Callee]) {
        Seen[Callee] = 1;
        Worklist.push_back(Callee);
      }
    };
    for (int Bci = 0, E = static_cast<int>(Code.size()); Bci != E; ++Bci) {
      const Instr &I = Code[Bci];
      if (I.Op == Opcode::InvokeStatic) {
        Visit(I.A);
      } else if (I.Op == Opcode::InvokeVirtual) {
        Visit(I.A);
        if (const TypeProfile *TP = Prof.receiversAt(Bci))
          for (const auto &[Cls, Count] : TP->Counts)
            Visit(P.resolveVirtual(I.A, Cls));
      }
    }
  }
}
