//===- Interpreter.cpp - Profiling bytecode interpreter -----------------------===//

#include "interp/Interpreter.h"

#include "observability/Profiler.h"
#include "support/ErrorHandling.h"

using namespace jvm;

Interpreter::Interpreter(Runtime &RT, ProfileData &Profiles)
    : RT(RT), P(RT.program()), Profiles(Profiles) {
  RootToken = RT.heap().addRootProvider([this](const RootVisitor &Visit) {
    for (Frame *F : ActiveFrames) {
      for (Value &V : F->Locals)
        Visit(V);
      for (Value &V : F->Stack)
        Visit(V);
    }
    for (std::vector<ResumeFrame> *Frames : PendingResumes)
      for (ResumeFrame &RF : *Frames) {
        for (Value &V : RF.Locals)
          Visit(V);
        for (Value &V : RF.Stack)
          Visit(V);
      }
  });
}

Interpreter::~Interpreter() { RT.heap().removeRootProvider(RootToken); }

Value Interpreter::dispatchCall(MethodId Target, std::vector<Value> &&Args) {
  if (Callback)
    return Callback(Target, std::move(Args));
  return call(Target, std::move(Args));
}

Value Interpreter::call(MethodId Method, std::vector<Value> Args) {
  const MethodInfo &M = P.methodAt(Method);
  assert(Args.size() == M.ParamTypes.size() && "argument count mismatch");
  ++Profiles.of(Method).InvocationCount;
  ++RT.metrics().InterpretedCalls;

  Frame F;
  F.M = &M;
  F.Locals.resize(M.NumLocals);
  for (unsigned I = 0, E = Args.size(); I != E; ++I)
    F.Locals[I] = Args[I];
  return execute(F, /*EntryBci=*/0);
}

Value Interpreter::resume(std::vector<ResumeFrame> Frames) {
  assert(!Frames.empty() && "resume without frames");
  // While the innermost activation executes, the outer frames' values
  // exist only in this vector: root it (updating) for the duration.
  PendingResumes.push_back(&Frames);
  Value Result = Value::makeVoid();
  for (unsigned I = 0, E = Frames.size(); I != E; ++I) {
    ResumeFrame &RF = Frames[I];
    const MethodInfo &M = P.methodAt(RF.Method);
    Frame F;
    F.M = &M;
    F.Locals = std::move(RF.Locals);
    F.Locals.resize(M.NumLocals);
    F.Stack = std::move(RF.Stack);
    int Entry = RF.Bci;
    if (!RF.Reexecute) {
      // The frame was suspended at an invoke; feed the callee result in
      // and continue with the next instruction.
      const Instr &Call = M.Code[RF.Bci];
      assert((Call.Op == Opcode::InvokeStatic ||
              Call.Op == Opcode::InvokeVirtual) &&
             "continue-after frame not at an invoke");
      if (P.methodAt(Call.A).RetTy != ValueType::Void)
        F.Stack.push_back(Result);
      Entry = RF.Bci + 1;
    }
    Result = execute(F, Entry);
  }
  PendingResumes.pop_back();
  return Result;
}

Value Interpreter::execute(Frame &F, int EntryBci) {
  ActiveFrames.push_back(&F);
  const MethodInfo &M = *F.M;
  // Profiler shadow frame for this activation; the loop below keeps its
  // bytecode index current so samples carry interpreter-precise sites.
  ProfScope ProfFrame(ProfTierInterp, M.Id);
  MethodProfile &Prof = Profiles.of(M.Id);
  RuntimeMetrics &Metrics = RT.metrics();
  std::vector<Value> &Stack = F.Stack;
  std::vector<Value> &Locals = F.Locals;

  auto PopInt = [&Stack]() {
    assert(!Stack.empty() && "stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V.asInt();
  };
  auto PopRef = [&Stack]() {
    assert(!Stack.empty() && "stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V.asRef();
  };
  auto PopValue = [&Stack]() {
    assert(!Stack.empty() && "stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };
  auto Ret = [this](Value V) {
    ActiveFrames.pop_back();
    return V;
  };

  int Pc = EntryBci;
  for (;;) {
    assert(Pc >= 0 && Pc < static_cast<int>(M.Code.size()) &&
           "pc out of range");
    const Instr &I = M.Code[Pc];
    ++Metrics.InterpretedOps;
    ProfFrame.setBci(Pc);
    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::Const:
      Stack.push_back(Value::makeInt(I.A));
      break;
    case Opcode::ConstNull:
      Stack.push_back(Value::makeRef(nullptr));
      break;
    case Opcode::Load:
      Stack.push_back(Locals[I.A]);
      break;
    case Opcode::Store:
      Locals[I.A] = PopValue();
      break;
    case Opcode::Pop:
      PopValue();
      break;
    case Opcode::Dup:
      Stack.push_back(Stack.back());
      break;

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr: {
      int64_t Y = PopInt();
      int64_t X = PopInt();
      int64_t R = 0;
      switch (I.Op) {
      case Opcode::Add:
        R = static_cast<int64_t>(static_cast<uint64_t>(X) +
                                 static_cast<uint64_t>(Y));
        break;
      case Opcode::Sub:
        R = static_cast<int64_t>(static_cast<uint64_t>(X) -
                                 static_cast<uint64_t>(Y));
        break;
      case Opcode::Mul:
        R = static_cast<int64_t>(static_cast<uint64_t>(X) *
                                 static_cast<uint64_t>(Y));
        break;
      case Opcode::Div:
        R = Y == 0 ? 0 : X / Y;
        break;
      case Opcode::Rem:
        R = Y == 0 ? 0 : X % Y;
        break;
      case Opcode::And:
        R = X & Y;
        break;
      case Opcode::Or:
        R = X | Y;
        break;
      case Opcode::Xor:
        R = X ^ Y;
        break;
      case Opcode::Shl:
        R = static_cast<int64_t>(static_cast<uint64_t>(X) << (Y & 63));
        break;
      case Opcode::Shr:
        R = X >> (Y & 63);
        break;
      default:
        jvm_unreachable("not an arithmetic opcode");
      }
      Stack.push_back(Value::makeInt(R));
      break;
    }

    case Opcode::Goto:
      if (I.A <= Pc) {
        ++Prof.BackedgeCount;
        // OSR attempt: the frame stays in ActiveFrames while the hook
        // (and any compiled code it enters) runs, so Locals remain
        // rooted and GC-updated throughout.
        if (Osr && Stack.empty()) {
          Value OsrResult;
          if (Osr(M.Id, I.A, Locals, OsrResult))
            return Ret(OsrResult);
        }
      }
      Pc = I.A;
      continue;

    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfLe:
    case Opcode::IfGt:
    case Opcode::IfGe: {
      int64_t Y = PopInt();
      int64_t X = PopInt();
      bool Taken = false;
      switch (I.Op) {
      case Opcode::IfEq:
        Taken = X == Y;
        break;
      case Opcode::IfNe:
        Taken = X != Y;
        break;
      case Opcode::IfLt:
        Taken = X < Y;
        break;
      case Opcode::IfLe:
        Taken = X <= Y;
        break;
      case Opcode::IfGt:
        Taken = X > Y;
        break;
      case Opcode::IfGe:
        Taken = X >= Y;
        break;
      default:
        jvm_unreachable("not a comparison branch");
      }
      BranchProfile &BP = Prof.Branches[Pc];
      (Taken ? BP.Taken : BP.NotTaken)++;
      if (Taken && I.A <= Pc) {
        ++Prof.BackedgeCount;
        if (Osr && Stack.empty()) {
          Value OsrResult;
          if (Osr(M.Id, I.A, Locals, OsrResult))
            return Ret(OsrResult);
        }
      }
      Pc = Taken ? I.A : Pc + 1;
      continue;
    }

    case Opcode::IfNull:
    case Opcode::IfNonNull: {
      HeapObject *O = PopRef();
      bool Taken = (I.Op == Opcode::IfNull) == (O == nullptr);
      BranchProfile &BP = Prof.Branches[Pc];
      (Taken ? BP.Taken : BP.NotTaken)++;
      Pc = Taken ? I.A : Pc + 1;
      continue;
    }

    case Opcode::IfRefEq:
    case Opcode::IfRefNe: {
      HeapObject *B = PopRef();
      HeapObject *A = PopRef();
      bool Taken = (I.Op == Opcode::IfRefEq) == (A == B);
      BranchProfile &BP = Prof.Branches[Pc];
      (Taken ? BP.Taken : BP.NotTaken)++;
      Pc = Taken ? I.A : Pc + 1;
      continue;
    }

    case Opcode::New:
      Stack.push_back(Value::makeRef(RT.allocateInstance(I.A)));
      break;

    case Opcode::GetField: {
      HeapObject *O = PopRef();
      assert(O && "null dereference in getfield");
      Stack.push_back(O->slot(I.B));
      break;
    }
    case Opcode::PutField: {
      Value V = PopValue();
      HeapObject *O = PopRef();
      assert(O && "null dereference in putfield");
      RT.heap().write(O, I.B, V);
      break;
    }
    case Opcode::InstanceOf: {
      HeapObject *O = PopRef();
      bool Is = O && !O->isArray() && P.isSubclassOf(O->objectClass(), I.A);
      Stack.push_back(Value::makeInt(Is ? 1 : 0));
      break;
    }

    case Opcode::GetStatic:
      Stack.push_back(RT.getStatic(I.A));
      break;
    case Opcode::PutStatic:
      RT.setStatic(I.A, PopValue());
      break;

    case Opcode::NewArrayInt:
    case Opcode::NewArrayRef: {
      int64_t Len = PopInt();
      ValueType ElemTy =
          I.Op == Opcode::NewArrayInt ? ValueType::Int : ValueType::Ref;
      Stack.push_back(Value::makeRef(RT.heap().allocateArray(ElemTy, Len)));
      break;
    }
    case Opcode::ArrLoadInt:
    case Opcode::ArrLoadRef: {
      int64_t Idx = PopInt();
      HeapObject *A = PopRef();
      assert(A && A->isArray() && "bad array load");
      assert(Idx >= 0 && Idx < A->length() && "array index out of bounds");
      Stack.push_back(A->slot(static_cast<unsigned>(Idx)));
      break;
    }
    case Opcode::ArrStoreInt:
    case Opcode::ArrStoreRef: {
      Value V = PopValue();
      int64_t Idx = PopInt();
      HeapObject *A = PopRef();
      assert(A && A->isArray() && "bad array store");
      assert(Idx >= 0 && Idx < A->length() && "array index out of bounds");
      RT.heap().write(A, static_cast<unsigned>(Idx), V);
      break;
    }
    case Opcode::ArrLen: {
      HeapObject *A = PopRef();
      assert(A && A->isArray() && "arrlen of a non-array");
      Stack.push_back(Value::makeInt(A->length()));
      break;
    }

    case Opcode::InvokeStatic:
    case Opcode::InvokeVirtual: {
      const MethodInfo &Callee = P.methodAt(I.A);
      std::vector<Value> Args(Callee.ParamTypes.size());
      for (unsigned A = Args.size(); A-- > 0;)
        Args[A] = PopValue();
      MethodId Target = I.A;
      if (I.Op == Opcode::InvokeVirtual) {
        HeapObject *Receiver = Args[0].asRef();
        assert(Receiver && "null receiver");
        ++Prof.Receivers[Pc].Counts[Receiver->objectClass()];
        Target = P.resolveVirtual(I.A, Receiver->objectClass());
      }
      Value Result = dispatchCall(Target, std::move(Args));
      if (Callee.RetTy != ValueType::Void)
        Stack.push_back(Result);
      break;
    }

    case Opcode::MonEnter:
      RT.monitorEnter(PopRef());
      break;
    case Opcode::MonExit:
      RT.monitorExit(PopRef());
      break;

    case Opcode::RetVoid:
      return Ret(Value::makeVoid());
    case Opcode::RetInt:
      return Ret(Value::makeInt(PopInt()));
    case Opcode::RetRef:
      return Ret(Value::makeRef(PopRef()));

    case Opcode::Trap:
      jvm_unreachable("trap instruction executed");
    }
    ++Pc;
  }
}
