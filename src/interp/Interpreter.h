//===- Interpreter.h - Profiling bytecode interpreter ---------------*- C++ -*-===//
///
/// \file
/// The bytecode interpreter: the VM's first tier and the continuation
/// target of deoptimization. It records invocation counts, branch
/// profiles and receiver-type profiles while executing.
///
/// Out-calls go through a pluggable CallHandler so the VM can interpose
/// tiered dispatch (interpret vs run compiled code); by default the
/// interpreter calls itself recursively.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_INTERP_INTERPRETER_H
#define JVM_INTERP_INTERPRETER_H

#include "interp/Profile.h"
#include "runtime/Runtime.h"

#include <functional>

namespace jvm {

/// One interpreter activation to resume after deoptimization.
/// `Reexecute` selects the resume semantics: start at Bci, or (for outer
/// frames of inlined calls) continue after the invoke at Bci, first
/// pushing the callee result if any.
struct ResumeFrame {
  MethodId Method = NoMethod;
  int Bci = 0;
  bool Reexecute = true;
  std::vector<Value> Locals;
  std::vector<Value> Stack;
};

/// Dispatches a call to \p Target (already devirtualized) with \p Args.
using CallHandler = std::function<Value(MethodId Target, std::vector<Value> &&Args)>;

/// On-stack replacement hook, consulted at counted loop back edges when
/// the operand stack is empty. \p Locals is the live frame (rooted and
/// GC-updated for the duration of the call). Returning true means
/// compiled code finished the activation: \p Result carries the method's
/// return value and the interpreter abandons the frame. Returning false
/// continues interpreting at \p TargetBci.
using OsrHandler = std::function<bool(MethodId Method, int TargetBci,
                                      std::vector<Value> &Locals,
                                      Value &Result)>;

class Interpreter {
public:
  Interpreter(Runtime &RT, ProfileData &Profiles);
  ~Interpreter();

  /// Invokes \p Method with \p Args, counting the invocation.
  Value call(MethodId Method, std::vector<Value> Args);

  /// Resumes execution after a deoptimization. \p Frames lists the
  /// activations innermost-first; each outer frame receives the inner
  /// result according to its resume semantics.
  Value resume(std::vector<ResumeFrame> Frames);

  /// Installs the tiered-dispatch hook. Default: recursive interpretation.
  void setCallHandler(CallHandler Handler) { Callback = std::move(Handler); }

  /// Installs the on-stack-replacement hook. Default: none (loops run to
  /// completion in the interpreter and only whole-method entries tier up).
  void setOsrHandler(OsrHandler Handler) { Osr = std::move(Handler); }

  Runtime &runtime() { return RT; }

private:
  struct Frame {
    const MethodInfo *M = nullptr;
    std::vector<Value> Locals;
    std::vector<Value> Stack;
  };

  Value execute(Frame &F, int EntryBci);
  Value dispatchCall(MethodId Target, std::vector<Value> &&Args);

  Runtime &RT;
  const Program &P;
  ProfileData &Profiles;
  CallHandler Callback;
  OsrHandler Osr;
  /// Active frames, registered as GC roots.
  std::vector<Frame *> ActiveFrames;
  /// Resume-frame vectors currently being worked through by resume():
  /// while the innermost activation runs, the outer frames' locals and
  /// stacks live only here — a moving GC must see (and update) them.
  /// A stack because deopts can nest (resumed code re-enters compiled
  /// code, which may deoptimize again).
  std::vector<std::vector<ResumeFrame> *> PendingResumes;
  uint64_t RootToken = 0;
};

} // namespace jvm

#endif // JVM_INTERP_INTERPRETER_H
