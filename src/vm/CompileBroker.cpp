//===- CompileBroker.cpp - Background JIT compilation --------------------------===//

#include "vm/CompileBroker.h"

#include "bytecode/Program.h"
#include "compiler/Schedule.h"
#include "ir/Graph.h"
#include "observability/Trace.h"
#include "support/Debug.h"
#include "vm/LinearCode.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace jvm;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// JVM_DUMP_PHASES=1 prints the IR after each phase that changed the
/// graph. JVM_DUMP_GRAPH_DIR=<dir> additionally writes one IR snapshot
/// file per (method, phase). Both resolved once at startup: the hot
/// compile path (and concurrent workers) must not call getenv per
/// compilation.
const bool DumpPhases = std::getenv("JVM_DUMP_PHASES") != nullptr;
const char *const DumpGraphDir = std::getenv("JVM_DUMP_GRAPH_DIR");

/// Distinguishes recompilations of the same method in dump file names.
std::atomic<uint64_t> NextCompileSeq{0};

} // namespace

CompileResult::CompileResult() = default;
CompileResult::CompileResult(CompileResult &&) noexcept = default;
CompileResult &CompileResult::operator=(CompileResult &&) noexcept = default;
CompileResult::~CompileResult() = default;

CompileResult jvm::runCompilePipeline(const PhasePlan &Plan, const Program &P,
                                      MethodId Method,
                                      const ProfileSnapshot &Profiles,
                                      const CompilerOptions &CO) {
  CompileResult R;
  PhaseContext Ctx(P, Profiles, CO, Method);
  Ctx.CompileSeq = NextCompileSeq.fetch_add(1, std::memory_order_relaxed);
  R.CompileSeq = Ctx.CompileSeq;
  // The trail is always collected: one vector of plain structs per
  // compile is noise next to the pipeline itself, and the compilation
  // log wants complete histories, not histories since it was enabled.
  Ctx.Trail = &R.Trail;
  if (DumpGraphDir)
    Ctx.DumpDir = DumpGraphDir;
  TraceScope Span(TraceCompile, "compile", "method",
                  static_cast<int64_t>(Method));

  // Dumps accumulate in a per-compile buffer and are flushed below in a
  // single write, so compiles on concurrent broker workers never
  // interleave their phase trails.
  std::string DumpText;
  if (DumpPhases) {
    Ctx.DumpText = &DumpText;
    DumpText += "=== compiling m" + std::to_string(Method) + " (compile #" +
                std::to_string(Ctx.CompileSeq) + ") ===\n";
  }

  auto G = std::make_unique<Graph>(Method, P.methodAt(Method).ParamTypes);
  {
    ScopedNanoTimer Total(R.TotalNanos);
    Plan.run(*G, Ctx);
    if (CO.EmitLinearCode) {
      // Translate to the linear tier inside the timed window: emission
      // is part of producing installable code. Custom plans that skipped
      // the schedule phase get one computed here.
      TraceScope EmitSpan(TraceCompile, "emit", "method",
                          static_cast<int64_t>(Method));
      uint64_t EmitStart = nowNanos();
      PhaseTimer Timer(Ctx.Times, "emit");
      R.Code = Ctx.Schedule ? translateGraph(*G, *Ctx.Schedule)
                            : translateGraph(*G);
      R.Trail.push_back(PhaseTrailEntry{"emit", nowNanos() - EmitStart,
                                        G->numLiveNodes(), G->numLiveNodes(),
                                        true});
    }
  }

  if (DumpPhases)
    std::fwrite(DumpText.data(), 1, DumpText.size(), stderr);

  R.Stats = Ctx.Stats;
  R.Phases = std::move(Ctx.Times);
  R.FixpointCapHits = Ctx.FixpointCapHits;
  R.G = std::move(G);
  return R;
}

CompileResult jvm::runCompilePipeline(const Program &P, MethodId Method,
                                      const ProfileSnapshot &Profiles,
                                      const CompilerOptions &CO) {
  return runCompilePipeline(makeDefaultPhasePlan(CO), P, Method, Profiles, CO);
}

CompileBroker::CompileBroker(const Program &P, CompilerOptions Options,
                             unsigned Threads, InstallFn Install)
    : P(P), Options(Options), Plan(makeDefaultPhasePlan(Options)),
      NumThreads(Threads ? Threads : 1), Install(std::move(Install)),
      Pending(P.numMethods(), 0) {
  // Spawn the pool up front: thread creation is hundreds of
  // microseconds and must not land on the mutator's first enqueue.
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileBroker::~CompileBroker() {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Stopping = true;
    // Queued-but-unstarted tasks die with the broker; their Pending
    // flags are irrelevant once the owner is shutting down too.
    while (!Queue.empty())
      Queue.pop();
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

bool CompileBroker::enqueue(MethodId M, uint64_t Hotness, uint64_t Version,
                            ProfileSnapshot Snapshot) {
  {
    std::lock_guard<std::mutex> L(Mutex);
    if (Stopping || Pending[M])
      return false;
    Pending[M] = 1;
    Queue.push(QueueEntry{Hotness, NextSeq++,
                          std::make_shared<Task>(M, Hotness, Version,
                                                 nowNanos(),
                                                 std::move(Snapshot))});
    uint64_t Depth = Queue.size() + InFlight;
    if (Depth > HighWater)
      HighWater = Depth;
  }
  return true;
}

void CompileBroker::kick() { WorkAvailable.notify_one(); }

void CompileBroker::workerLoop() {
  // Name the thread in exported traces. Harmless when tracing is off
  // (once per worker lifetime); spans recorded here land under this tid.
  if (Tracer::get().enabled())
    Tracer::get().setCurrentThreadName("compiler-worker");
  for (;;) {
    std::shared_ptr<Task> T;
    {
      std::unique_lock<std::mutex> L(Mutex);
      WorkAvailable.wait(L, [this] { return Stopping || !Queue.empty(); });
      if (Stopping)
        return;
      T = Queue.top().T;
      Queue.pop();
      ++InFlight;
    }

    JVM_DEBUG("broker: compiling m" << T->Method << " (hotness "
                                    << T->Hotness << ")");
    CompileResult R =
        runCompilePipeline(Plan, P, T->Method, T->Snapshot, Options);
    MethodId M = T->Method;
    Install(std::move(*T), std::move(R));

    {
      std::lock_guard<std::mutex> L(Mutex);
      Pending[M] = 0;
      --InFlight;
    }
    Idle.notify_all();
  }
}

void CompileBroker::waitIdle() {
  std::unique_lock<std::mutex> L(Mutex);
  Idle.wait(L, [this] { return Queue.empty() && InFlight == 0; });
}

uint64_t CompileBroker::queueDepthHighWater() const {
  std::lock_guard<std::mutex> L(Mutex);
  return HighWater;
}
