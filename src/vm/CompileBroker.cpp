//===- CompileBroker.cpp - Process-wide background JIT service ----------------===//

#include "vm/CompileBroker.h"

#include "bytecode/Program.h"
#include "compiler/Schedule.h"
#include "ir/Graph.h"
#include "observability/Trace.h"
#include "support/Debug.h"
#include "support/Env.h"
#include "vm/LinearCode.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace jvm;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// JVM_DUMP_PHASES=1 prints the IR after each phase that changed the
/// graph. JVM_DUMP_GRAPH_DIR=<dir> additionally writes one IR snapshot
/// file per (method, phase). Both resolved once at startup via the
/// process env snapshot: the hot compile path (and concurrent workers)
/// must not call getenv per compilation.
bool dumpPhases() { return EnvSnapshot::process().DumpPhases != nullptr; }
const char *dumpGraphDir() { return EnvSnapshot::process().DumpGraphDir; }

/// Distinguishes recompilations of the same method in dump file names.
/// Process-wide on purpose: with one broker serving many isolates, the
/// compile ordinal is the only total order compiles have.
std::atomic<uint64_t> NextCompileSeq{0};

} // namespace

CompileResult::CompileResult() = default;
CompileResult::CompileResult(CompileResult &&) noexcept = default;
CompileResult &CompileResult::operator=(CompileResult &&) noexcept = default;
CompileResult::~CompileResult() = default;

CompileResult jvm::runCompilePipeline(const PhasePlan &Plan, const Program &P,
                                      MethodId Method,
                                      const ProfileSnapshot &Profiles,
                                      const CompilerOptions &CO,
                                      uint32_t IsolateId,
                                      const SpeshSnapshot *Spesh) {
  CompileResult R;
  PhaseContext Ctx(P, Profiles, CO, Method);
  Ctx.Spesh = Spesh;
  Ctx.CompileSeq = NextCompileSeq.fetch_add(1, std::memory_order_relaxed);
  R.CompileSeq = Ctx.CompileSeq;
  // The trail is always collected: one vector of plain structs per
  // compile is noise next to the pipeline itself, and the compilation
  // log wants complete histories, not histories since it was enabled.
  Ctx.Trail = &R.Trail;
  if (dumpGraphDir())
    Ctx.DumpDir = dumpGraphDir();
  TraceScope Span(TraceCompile, "compile", "method",
                  static_cast<int64_t>(Method), "isolate",
                  static_cast<int64_t>(IsolateId));

  // Dumps accumulate in a per-compile buffer and are flushed below in a
  // single write, so compiles on concurrent broker workers never
  // interleave their phase trails.
  std::string DumpText;
  if (dumpPhases()) {
    Ctx.DumpText = &DumpText;
    DumpText += "=== compiling m" + std::to_string(Method) + " (compile #" +
                std::to_string(Ctx.CompileSeq) + ") ===\n";
  }

  // An OSR compile's graph takes the loop frame's live locals as its
  // parameters (one per local, typed from the runtime values captured at
  // the triggering back edge) instead of the method's signature.
  auto G = std::make_unique<Graph>(Method, Spesh && Spesh->IsOsr
                                               ? Spesh->OsrLocalTypes
                                               : P.methodAt(Method).ParamTypes);
  {
    ScopedNanoTimer Total(R.TotalNanos);
    Plan.run(*G, Ctx);
    if (CO.EmitLinearCode) {
      // Translate to the linear tier inside the timed window: emission
      // is part of producing installable code. Custom plans that skipped
      // the schedule phase get one computed here.
      TraceScope EmitSpan(TraceCompile, "emit", "method",
                          static_cast<int64_t>(Method));
      uint64_t EmitStart = nowNanos();
      PhaseTimer Timer(Ctx.Times, "emit");
      R.Code = Ctx.Schedule ? translateGraph(*G, *Ctx.Schedule)
                            : translateGraph(*G);
      R.Trail.push_back(PhaseTrailEntry{"emit", nowNanos() - EmitStart,
                                        G->numLiveNodes(), G->numLiveNodes(),
                                        true});
    }
  }

  if (dumpPhases())
    std::fwrite(DumpText.data(), 1, DumpText.size(), stderr);

  R.Stats = Ctx.Stats;
  R.Phases = std::move(Ctx.Times);
  R.FixpointCapHits = Ctx.FixpointCapHits;
  R.Spesh = std::move(Ctx.SpeshOut);
  R.G = std::move(G);
  return R;
}

CompileResult jvm::runCompilePipeline(const Program &P, MethodId Method,
                                      const ProfileSnapshot &Profiles,
                                      const CompilerOptions &CO,
                                      uint32_t IsolateId,
                                      const SpeshSnapshot *Spesh) {
  return runCompilePipeline(makeDefaultPhasePlan(CO), P, Method, Profiles, CO,
                            IsolateId, Spesh);
}

CompileBroker::CompileBroker(unsigned Threads)
    : NumThreads(Threads ? Threads : 1) {
  // Spawn the pool up front: thread creation is hundreds of
  // microseconds and must not land on the mutator's first enqueue.
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileBroker::~CompileBroker() {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Stopping = true;
    // Queued-but-unstarted tasks die with the broker; their Pending
    // flags are irrelevant once everything is shutting down.
    while (!Queue.empty())
      Queue.pop();
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

CompileBroker &CompileBroker::process() {
  // Meyers static, NOT a leaked new: the pool must join (and its clients
  // must already be gone) before exit so leak checkers stay quiet and
  // exit-time trace export sees no half-written spans.
  static CompileBroker B([] {
    if (const char *V = EnvSnapshot::process().CompilerThreads) {
      long N = std::strtol(V, nullptr, 10);
      if (N > 0)
        return static_cast<unsigned>(N);
    }
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1u;
  }());
  return B;
}

CompileBroker::Client *CompileBroker::findLocked(ClientId Id) {
  auto It = Clients.find(Id);
  return It == Clients.end() ? nullptr : It->second.get();
}

void CompileBroker::registerClient(ClientId Id, const Program &P,
                                   CompilerOptions Options, InstallFn Install) {
  assert(Id != 0 && "client id 0 is reserved");
  std::lock_guard<std::mutex> L(Mutex);
  assert(!Clients.count(Id) && "client id already registered");
  auto C = std::make_unique<Client>();
  C->P = &P;
  C->Options = Options;
  C->Plan = makeDefaultPhasePlan(Options);
  C->Install = std::move(Install);
  C->Pending.assign(P.numMethods(), 0);
  Clients.emplace(Id, std::move(C));
}

void CompileBroker::unregisterClient(ClientId Id) {
  std::unique_lock<std::mutex> L(Mutex);
  Client *C = findLocked(Id);
  if (!C)
    return;
  C->Unregistering = true;
  if (C->Queued) {
    // Drop this client's queued entries now rather than lazily at pop:
    // with idle workers asleep, lazy dropping would leave the entries
    // (and their Program/snapshot references) alive indefinitely.
    std::priority_queue<QueueEntry> Kept;
    while (!Queue.empty()) {
      if (Queue.top().T->Client != Id)
        Kept.push(Queue.top());
      Queue.pop();
    }
    Queue = std::move(Kept);
    C->Queued = 0;
  }
  // In-flight compiles still hold a raw Client* and will run the install
  // callback; wait them out before the record (and the isolate behind
  // it) goes away.
  Idle.wait(L, [C] { return C->InFlight == 0; });
  Clients.erase(Id);
}

bool CompileBroker::enqueue(ClientId Id, MethodId M, uint64_t Hotness,
                            uint64_t Version, ProfileSnapshot Snapshot,
                            SpeshSnapshot Spesh) {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Client *C = findLocked(Id);
    if (!C || C->Unregistering || Stopping || C->Pending[M])
      return false;
    C->Pending[M] = 1;
    ++C->Queued;
    Queue.push(QueueEntry{Hotness, NextSeq++,
                          std::make_shared<Task>(Id, M, Hotness, Version,
                                                 nowNanos(),
                                                 std::move(Snapshot),
                                                 std::move(Spesh))});
    uint64_t Depth = Queue.size() + InFlightTotal;
    if (Depth > HighWater)
      HighWater = Depth;
  }
  return true;
}

void CompileBroker::kick() { WorkAvailable.notify_one(); }

void CompileBroker::workerLoop() {
  // Name the thread in exported traces. Harmless when tracing is off
  // (once per worker lifetime); spans recorded here land under this tid.
  if (Tracer::get().enabled())
    Tracer::get().setCurrentThreadName("compiler-worker");
  for (;;) {
    std::shared_ptr<Task> T;
    Client *C = nullptr;
    {
      std::unique_lock<std::mutex> L(Mutex);
      WorkAvailable.wait(L, [this] { return Stopping || !Queue.empty(); });
      if (Stopping)
        return;
      T = Queue.top().T;
      Queue.pop();
      C = findLocked(T->Client);
      assert(C && !C->Unregistering &&
             "queued task for missing client: unregister drains the queue");
      --C->Queued;
      ++C->InFlight;
      ++InFlightTotal;
    }

    JVM_DEBUG("broker: compiling m" << T->Method << " for isolate "
                                    << T->Client << " (hotness " << T->Hotness
                                    << ")");
    // C stays valid without the lock: unregisterClient blocks on
    // InFlight == 0 before erasing, and we bumped InFlight above.
    CompileResult R =
        runCompilePipeline(C->Plan, *C->P, T->Method, T->Snapshot, C->Options,
                           T->Client, T->Spesh.Enabled ? &T->Spesh : nullptr);
    MethodId M = T->Method;
    C->Install(std::move(*T), std::move(R));

    {
      std::lock_guard<std::mutex> L(Mutex);
      C->Pending[M] = 0;
      --C->InFlight;
      --InFlightTotal;
    }
    Idle.notify_all();
  }
}

void CompileBroker::waitIdle(ClientId Id) {
  std::unique_lock<std::mutex> L(Mutex);
  Idle.wait(L, [this, Id] {
    // An unknown id is idle by definition (already unregistered).
    const Client *C = findLocked(Id);
    return !C || (C->Queued == 0 && C->InFlight == 0);
  });
}

uint64_t CompileBroker::queueDepthHighWater() const {
  std::lock_guard<std::mutex> L(Mutex);
  return HighWater;
}

size_t CompileBroker::numClients() const {
  std::lock_guard<std::mutex> L(Mutex);
  return Clients.size();
}
