//===- CompileBroker.cpp - Background JIT compilation --------------------------===//

#include "vm/CompileBroker.h"

#include "bytecode/Program.h"
#include "compiler/Canonicalizer.h"
#include "compiler/DeadCodeElimination.h"
#include "compiler/GVN.h"
#include "compiler/GraphBuilder.h"
#include "compiler/Inliner.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Debug.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace jvm;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// JVM_DUMP_PHASES=1 prints the IR after each pipeline stage. Resolved
/// once at startup: the hot compile path (and concurrent workers) must
/// not call getenv per compilation.
const bool DumpPhases = std::getenv("JVM_DUMP_PHASES") != nullptr;

void dumpPhase(const char *Phase, const Graph &G) {
  if (DumpPhases)
    std::fprintf(stderr, "== after %s ==\n%s\n", Phase,
                 graphToString(G).c_str());
}

} // namespace

CompileResult jvm::runCompilePipeline(const Program &P, MethodId Method,
                                      const ProfileSnapshot &Profiles,
                                      const CompilerOptions &CO) {
  CompileResult R;
  uint64_t Start = nowNanos();

  std::unique_ptr<Graph> G = buildGraph(P, Method, &Profiles.of(Method), CO);
  dumpPhase("build", *G);
  canonicalize(*G, P);
  dumpPhase("canon", *G);
  uint64_t AfterBuild = nowNanos();
  R.Phases.BuildNanos = AfterBuild - Start;

  if (CO.EnableInlining) {
    inlineCalls(*G, P, &Profiles.data(), CO);
    canonicalize(*G, P);
  }
  uint64_t AfterInline = nowNanos();
  R.Phases.InlineNanos = AfterInline - AfterBuild;

  runGVN(*G);
  eliminateDeadCode(*G);
  dumpPhase("gvn+dce", *G);
  uint64_t AfterGvn = nowNanos();
  R.Phases.GvnDceNanos = AfterGvn - AfterInline;

  switch (CO.EAMode) {
  case EscapeAnalysisMode::None:
    break;
  case EscapeAnalysisMode::FlowInsensitive:
    runFlowInsensitiveEscapeAnalysis(*G, P, CO, &R.Stats);
    break;
  case EscapeAnalysisMode::Partial:
    runPartialEscapeAnalysis(*G, P, CO, &R.Stats);
    break;
  }
  uint64_t AfterEa = nowNanos();
  R.Phases.EscapeNanos = AfterEa - AfterGvn;

  for (int Round = 0; Round != 4; ++Round) {
    bool Changed = canonicalize(*G, P);
    Changed |= runGVN(*G);
    Changed |= eliminateDeadCode(*G);
    if (!Changed)
      break;
  }
  verifyGraphOrDie(*G);
  uint64_t End = nowNanos();
  R.Phases.CleanupNanos = End - AfterEa;
  R.Phases.TotalNanos = End - Start;

  R.G = std::move(G);
  return R;
}

CompileBroker::CompileBroker(const Program &P, CompilerOptions Options,
                             unsigned Threads, InstallFn Install)
    : P(P), Options(Options), NumThreads(Threads ? Threads : 1),
      Install(std::move(Install)), Pending(P.numMethods(), 0) {
  // Spawn the pool up front: thread creation is hundreds of
  // microseconds and must not land on the mutator's first enqueue.
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileBroker::~CompileBroker() {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Stopping = true;
    // Queued-but-unstarted tasks die with the broker; their Pending
    // flags are irrelevant once the owner is shutting down too.
    while (!Queue.empty())
      Queue.pop();
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

bool CompileBroker::enqueue(MethodId M, uint64_t Hotness, uint64_t Version,
                            ProfileSnapshot Snapshot) {
  {
    std::lock_guard<std::mutex> L(Mutex);
    if (Stopping || Pending[M])
      return false;
    Pending[M] = 1;
    Queue.push(QueueEntry{Hotness, NextSeq++,
                          std::make_shared<Task>(M, Hotness, Version,
                                                 nowNanos(),
                                                 std::move(Snapshot))});
    uint64_t Depth = Queue.size() + InFlight;
    if (Depth > HighWater)
      HighWater = Depth;
  }
  return true;
}

void CompileBroker::kick() { WorkAvailable.notify_one(); }

void CompileBroker::workerLoop() {
  for (;;) {
    std::shared_ptr<Task> T;
    {
      std::unique_lock<std::mutex> L(Mutex);
      WorkAvailable.wait(L, [this] { return Stopping || !Queue.empty(); });
      if (Stopping)
        return;
      T = Queue.top().T;
      Queue.pop();
      ++InFlight;
    }

    JVM_DEBUG("broker: compiling m" << T->Method << " (hotness "
                                    << T->Hotness << ")");
    CompileResult R =
        runCompilePipeline(P, T->Method, T->Snapshot, Options);
    MethodId M = T->Method;
    Install(std::move(*T), std::move(R));

    {
      std::lock_guard<std::mutex> L(Mutex);
      Pending[M] = 0;
      --InFlight;
    }
    Idle.notify_all();
  }
}

void CompileBroker::waitIdle() {
  std::unique_lock<std::mutex> L(Mutex);
  Idle.wait(L, [this] { return Queue.empty() && InFlight == 0; });
}

uint64_t CompileBroker::queueDepthHighWater() const {
  std::lock_guard<std::mutex> L(Mutex);
  return HighWater;
}
