//===- LinearCode.h - Register-based linear code backend ------------*- C++ -*-===//
///
/// \file
/// The default execution tier for compiled methods: at install time the
/// optimized sea-of-nodes graph is translated ONCE into a flat stream of
/// register-based instructions (virtual registers = slot indices into a
/// preallocated frame), and every call afterwards is a tight dispatch
/// loop — computed-goto threaded where the compiler supports it, dense
/// switch otherwise. Compared to the GraphExecutor walk this removes the
/// per-call nodeIdBound-sized environments, the recursive on-demand
/// expression evaluation, the map-based phi cache and the re-evaluation
/// churn after every merge: phi transfers become precomputed parallel
/// move lists, and every floating expression is emitted exactly once in
/// the block the scheduler chose (compiler/Schedule.h).
///
/// The paper's deopt contract survives translation intact: Deopt
/// instructions carry compact frame-state descriptors — including the
/// virtual-object field maps of Section 5.5 — and reconstruct the same
/// DeoptRequest (same allocation order, lock re-acquisition and frame
/// layout) the graph walker would have produced.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_VM_LINEARCODE_H
#define JVM_VM_LINEARCODE_H

#include "ir/Graph.h"
#include "runtime/Runtime.h"
#include "support/ErrorHandling.h"
#include "vm/GraphExecutor.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace jvm {

struct BlockSchedule;

/// Opcodes of the linear instruction set. One instruction per executed
/// graph node; structural nodes (Begin, Merge, ...) emit nothing.
enum class LOp : uint8_t {
  ConstInt,    ///< Dst = IntPool[A]
  ConstNull,   ///< Dst = null
  Arith,       ///< Dst = R[A] <Sub:ArithKind> R[B]
  Compare,     ///< Dst = R[A] <Sub:CmpKind> R[B] (IsNull: R[A] only)
  InstanceOf,  ///< Dst = R[A] instanceof class B (Sub = exact)
  Branch,      ///< pc = R[A] != 0 ? B : C
  Jump,        ///< parallel moves MoveLists[B], then pc = A
  Ret,         ///< return R[A]
  RetVoid,     ///< return void
  NewInstance, ///< Dst = new instance of class A
  NewArray,    ///< Dst = new array, elem type Sub, length R[A]
  LoadField,   ///< Dst = R[A].field[B]
  StoreField,  ///< R[A].field[B] = R[C]
  LoadIndexed, ///< Dst = R[A][R[B]]
  StoreIndexed,///< R[A][R[B]] = R[C]
  ArrayLength, ///< Dst = R[A].length
  LoadStatic,  ///< Dst = statics[A]
  StoreStatic, ///< statics[A] = R[B]
  MonitorEnter,///< lock R[A]
  MonitorExit, ///< unlock R[A]
  Invoke,      ///< Dst = call Calls[A]
  Materialize, ///< commit Mats[A] to the heap
  Deopt,       ///< reconstruct Deopts[A] and bail to the interpreter
  Trap,        ///< verifier-provably-dead path was reached: VM bug
};

constexpr unsigned NumLOps = static_cast<unsigned>(LOp::Trap) + 1;

/// One fixed-size instruction. Operands A/B/C/Dst are virtual register
/// indices, pc targets or side-table indices depending on the opcode.
struct LInst {
  LOp Op;
  uint8_t Sub = 0; ///< ArithKind / CmpKind / exactness / element type
  uint32_t Dst = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
};

/// A value reference inside a materialize/deopt descriptor.
struct LSlotRef {
  enum Kind : uint8_t {
    Reg,     ///< live value in register Index
    Virtual, ///< the Index-th object of the same descriptor
    Dead,    ///< dead slot; reconstructs as Int(0)
  };
  Kind K = Dead;
  uint32_t Index = 0;
};

/// The translated form of one method's optimized graph.
class LinearCode {
public:
  /// Per-merge parallel phi assignment, pre-resolved to register moves.
  struct PhiMove {
    uint32_t Dst;
    uint32_t Src;
  };
  struct MoveList {
    uint32_t First; ///< index into Moves
    uint32_t Count;
  };

  struct CallDesc {
    MethodId Callee;
    CallKind Kind;
    uint32_t FirstArg; ///< index into CallArgRegs
    uint32_t NumArgs;
    /// Bytecode index of the callsite in the ROOT method, or -1 for
    /// invokes inlined from callees — the compiled-tier receiver feed
    /// (speculation statistics) only profiles root-attributable sites.
    int32_t Bci = -1;
  };

  /// One virtual object to (re)allocate, shared by materialize and deopt
  /// descriptors. Entries index into Slots.
  struct ObjTemplate {
    ClassId Cls;
    bool IsArray;
    ValueType ElemTy;
    int32_t LockDepth; ///< elided monitor acquisitions to replay
    uint32_t FirstEntry;
    uint32_t NumEntries;
  };

  /// AllocatedObject projection of a materialize: after the commit,
  /// register DstReg holds the ObjIndex-th fresh object.
  struct Projection {
    uint32_t ObjIndex;
    uint32_t DstReg;
  };

  struct MatDesc {
    uint32_t FirstObj; ///< index into Objects
    uint32_t NumObjs;
    uint32_t FirstProj; ///< index into Projections
    uint32_t NumProjs;
  };

  /// One interpreter frame to reconstruct (innermost first within a
  /// DeoptDesc). Locals and stack slots index into Slots.
  struct FrameDesc {
    MethodId Method;
    int32_t Bci;
    bool Reexecute;
    uint32_t FirstLocal;
    uint32_t NumLocals;
    uint32_t FirstStack;
    uint32_t NumStack;
  };

  struct DeoptDesc {
    DeoptReason Reason;
    /// Speculation-plan index of the failing guard (NoSpeculationId for
    /// builder-inserted deopts) — carried into the DeoptRequest.
    uint32_t GuardId = NoSpeculationId;
    /// Virtual objects mapped anywhere in the state chain, in the graph
    /// walker's discovery order (innermost state outwards, first mapping
    /// wins) — allocation order and lock replay are bit-for-bit the same.
    uint32_t FirstObj; ///< index into Objects
    uint32_t NumObjs;
    uint32_t FirstFrame; ///< index into Frames
    uint32_t NumFrames;
  };

  MethodId method() const { return Method; }
  unsigned numRegs() const { return NumRegs; }
  unsigned numParams() const { return NumParams; }
  unsigned numInsts() const { return Insts.size(); }
  /// True when executing the code can touch VM state beyond its own
  /// registers (calls, stores, allocation, monitors, deopt). Pure code
  /// may be re-run for differential checking.
  bool hasEffects() const { return HasEffects; }
  /// Largest phi move list; executors size their scratch once per call.
  unsigned maxMoves() const { return MaxMoves; }

  // The tables are plain data filled by the translator and read by the
  // executor; both live in this file's .cpp.
  std::vector<LInst> Insts;
  std::vector<int64_t> IntPool;
  std::vector<PhiMove> Moves;
  std::vector<MoveList> MoveLists;
  std::vector<CallDesc> Calls;
  std::vector<uint32_t> CallArgRegs;
  std::vector<LSlotRef> Slots;
  std::vector<ObjTemplate> Objects;
  std::vector<Projection> Projections;
  std::vector<MatDesc> Mats;
  std::vector<FrameDesc> Frames;
  std::vector<DeoptDesc> Deopts;
  MethodId Method = NoMethod;
  unsigned NumRegs = 0;
  unsigned NumParams = 0;
  unsigned MaxMoves = 0;
  bool HasEffects = false;
};

/// Allocates the heap shape (instance or array) described by one
/// side-table object template. Shared by every compiled tier.
HeapObject *allocateSideTableObject(Runtime &RT,
                                    const LinearCode::ObjTemplate &T);

/// Commits materialize descriptor \p M against register frame \p R:
/// allocate every object, then per object fill entries and replay
/// elided locks — the same observable order as the graph walker.
/// \p MatScratch is caller-owned reusable storage (rooted internally
/// while the fresh objects are being wired up).
void runMaterialize(Runtime &RT, const LinearCode &L,
                    const LinearCode::MatDesc &M, Value *R,
                    std::vector<Value> &MatScratch);

/// Rebuilds the DeoptRequest of descriptor \p D from register frame
/// \p R — rematerializing the scalar-replaced virtual objects in the
/// graph walker's discovery order, replaying lock depths, resolving
/// dead slots to Int(0) — and hands it to \p Deopt. This is the one
/// deopt path shared by the linear and native tiers, so the paper's
/// Section 5.5 contract is implemented exactly once.
Value runDeopt(Runtime &RT, const LinearCode &L,
               const LinearCode::DeoptDesc &D, const Value *R,
               const DeoptHandlerFn &Deopt);

/// Translates \p G (with its block schedule \p S) into linear code.
/// Deterministic: node ids and usage-list order fully define the output.
std::unique_ptr<LinearCode> translateGraph(const Graph &G,
                                           const BlockSchedule &S);

/// Convenience overload computing the schedule itself (used by custom
/// plans that did not run the "schedule" phase).
std::unique_ptr<LinearCode> translateGraph(const Graph &G);

/// One virtual-dispatch receiver observed by a compiled tier, attributed
/// to callsite \p Bci of root method \p Root. The speculation subsystem
/// installs this on both the linear and native executors so receiver
/// statistics keep maturing after compilation (a phase change is still
/// observed and can trigger despecialization-quality replans).
using ReceiverProfileFn =
    std::function<void(MethodId Root, int Bci, ClassId Receiver)>;

/// Executes LinearCode against the runtime. One instance per VM; frames
/// are pooled per recursion depth (Invokes re-enter the executor through
/// the VM) and registered as GC roots for the lifetime of the executor.
class LinearExecutor {
public:
  LinearExecutor(Runtime &RT, CallHandler CallFn, DeoptHandlerFn DeoptFn);
  ~LinearExecutor();

  /// Executes \p L with \p Args; returns the method result.
  Value execute(const LinearCode &L, const std::vector<Value> &Args);

  /// Installs the virtual-dispatch receiver feed. Default: none.
  void setReceiverProfile(ReceiverProfileFn Fn) {
    ProfileReceiver = std::move(Fn);
  }

private:
  Value run(const LinearCode &L, std::vector<Value> &R);

  Runtime &RT;
  CallHandler Call;
  DeoptHandlerFn Deopt;
  ReceiverProfileFn ProfileReceiver;
  /// Register frames by recursion depth; entries stay allocated between
  /// calls (cleared on reuse) so steady-state execution never mallocs.
  std::vector<std::unique_ptr<std::vector<Value>>> FramePool;
  unsigned Depth = 0;
  /// Reusable scratch for parallel phi moves (no allocation mid-move, so
  /// it needs no GC rooting) and for materialized objects (rooted via a
  /// RootScope while in use; materializes never nest).
  std::vector<Value> MoveScratch;
  std::vector<Value> MatScratch;
  uint64_t RootToken = 0;
};

/// Shared arithmetic semantics of every tier: two's-complement
/// wraparound, division/remainder by zero produce zero (no exceptions),
/// INT64_MIN / -1 wraps to INT64_MIN with remainder zero. The -1 cases
/// are pinned down explicitly because the native tier lowers Div/Rem to
/// x86 idiv, which faults on the overflowing quotient — both tiers guard
/// the same way so results stay bit-identical.
inline int64_t applyArith(ArithKind Op, int64_t X, int64_t Y) {
  switch (Op) {
  case ArithKind::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(X) +
                                static_cast<uint64_t>(Y));
  case ArithKind::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(X) -
                                static_cast<uint64_t>(Y));
  case ArithKind::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(X) *
                                static_cast<uint64_t>(Y));
  case ArithKind::Div:
    if (Y == 0)
      return 0;
    if (Y == -1)
      return static_cast<int64_t>(0 - static_cast<uint64_t>(X));
    return X / Y;
  case ArithKind::Rem:
    if (Y == 0 || Y == -1)
      return 0;
    return X % Y;
  case ArithKind::And:
    return X & Y;
  case ArithKind::Or:
    return X | Y;
  case ArithKind::Xor:
    return X ^ Y;
  case ArithKind::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(X) << (Y & 63));
  case ArithKind::Shr:
    return X >> (Y & 63);
  }
  jvm_unreachable("unknown arithmetic kind");
}

/// Traps raised by compiled code on conditions our mini-Java has no
/// exception model for. Fatal in every build type.
[[noreturn]] void reportCompiledTrap(MethodId Method, const char *What);

} // namespace jvm

#endif // JVM_VM_LINEARCODE_H
