//===- CompileBroker.h - Background JIT compilation -----------------*- C++ -*-===//
///
/// \file
/// The compile broker takes JIT compilation off the mutator thread, the
/// way HotSpot's and Graal's compile brokers do: the VM enqueues a hot
/// method together with an immutable ProfileSnapshot, a pool of worker
/// threads drains a hotness-prioritized queue, and the finished graph is
/// handed back for atomic installation. The interpreter keeps running
/// the method until its code is ready, so compilation never stalls the
/// application.
///
/// Key properties:
///  - **Snapshot isolation.** Workers read only the ProfileSnapshot taken
///    at enqueue time; the interpreter's live profile writes never race a
///    compilation, and a compilation's input — hence its output graph —
///    is identical to what a synchronous compile at the same trigger
///    point would have produced.
///  - **Hotness priority.** The queue is a max-heap on the hotness at
///    enqueue time (FIFO among equals), so under load the methods that
///    burn the most interpreter cycles compile first.
///  - **In-flight dedup.** A method is queued at most once; re-requests
///    while a compile is pending are dropped.
///  - **Versioned installation.** Each task carries the method's code
///    version at enqueue time. Installation (done by the owner through
///    the install callback) compares versions, so an in-flight compile of
///    a just-invalidated method is discarded instead of installed.
///
/// The broker also owns the compile pipeline itself (runCompilePipeline),
/// which both the workers and the legacy synchronous path
/// (CompilerThreads = 0) run — one pipeline, two schedulers.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_VM_COMPILEBROKER_H
#define JVM_VM_COMPILEBROKER_H

#include "compiler/CompilerOptions.h"
#include "compiler/PhasePlan.h"
#include "interp/Profile.h"
#include "pea/PartialEscapeAnalysis.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jvm {

class Graph;
class LinearCode;
class Program;

/// Everything one pipeline run produces.
struct CompileResult {
  CompileResult();
  CompileResult(CompileResult &&) noexcept;
  CompileResult &operator=(CompileResult &&) noexcept;
  ~CompileResult(); // out of line: LinearCode is incomplete here

  std::unique_ptr<Graph> G;
  /// The graph translated to register-based linear code (the default
  /// execution tier); null when Options.EmitLinearCode is off.
  std::unique_ptr<LinearCode> Code;
  PEAStats Stats;
  /// Wall-clock nanoseconds and run counts keyed by phase name ("build",
  /// "canon", "gvn", ... — whatever the plan scheduled).
  PhaseTimes Phases;
  /// Every phase execution in pipeline order, with node counts — the raw
  /// material for the per-method compilation log.
  std::vector<PhaseTrailEntry> Trail;
  uint64_t TotalNanos = 0; ///< whole pipeline, including plan overhead
  /// Process-wide compile ordinal assigned to this pipeline run.
  uint64_t CompileSeq = 0;
  /// Fixpoint phases that hit their round cap without converging.
  uint64_t FixpointCapHits = 0;
};

/// Runs \p Plan for \p Method against \p Profiles: allocates the empty
/// graph, executes every phase under the manager (timing, optional
/// inter-phase verification, dump capture), and flushes any buffered
/// JVM_DUMP_PHASES text in one write so concurrent compiles never
/// interleave. Pure with respect to VM state: reads only \p P and the
/// snapshot, so any number of pipelines may run concurrently on
/// different threads.
CompileResult runCompilePipeline(const PhasePlan &Plan, const Program &P,
                                 MethodId Method,
                                 const ProfileSnapshot &Profiles,
                                 const CompilerOptions &Options);

/// Convenience overload for one-shot (synchronous) compiles: builds the
/// default plan from \p Options and runs it.
CompileResult runCompilePipeline(const Program &P, MethodId Method,
                                 const ProfileSnapshot &Profiles,
                                 const CompilerOptions &Options);

class CompileBroker {
public:
  /// One queued compilation request.
  struct Task {
    MethodId Method = NoMethod;
    uint64_t Hotness = 0;      ///< priority at enqueue time
    uint64_t Version = 0;      ///< method code version at enqueue time
    uint64_t EnqueueNanos = 0; ///< for enqueue-to-install latency
    ProfileSnapshot Snapshot;

    Task(MethodId M, uint64_t Hotness, uint64_t Version,
         uint64_t EnqueueNanos, ProfileSnapshot Snap)
        : Method(M), Hotness(Hotness), Version(Version),
          EnqueueNanos(EnqueueNanos), Snapshot(std::move(Snap)) {}
  };

  /// Called on a worker thread with a finished compilation. The owner
  /// decides whether to install or discard (version check) — the broker
  /// itself never touches method state.
  using InstallFn = std::function<void(Task &&, CompileResult &&)>;

  /// \p Threads must be >= 1; the worker pool starts immediately so
  /// thread creation is never charged to a mutator's enqueue.
  CompileBroker(const Program &P, CompilerOptions Options, unsigned Threads,
                InstallFn Install);

  /// Drains nothing: pending queue entries are dropped, in-flight
  /// compilations finish (and install/discard) before workers join.
  ~CompileBroker();

  CompileBroker(const CompileBroker &) = delete;
  CompileBroker &operator=(const CompileBroker &) = delete;

  /// Requests compilation of \p M. Returns false if a request for \p M
  /// is already queued or in flight (the request is dropped). Does NOT
  /// wake a worker: call kick() afterwards, outside any stall-accounting
  /// window — on a saturated machine the woken worker may preempt the
  /// caller immediately, and that compile time is not mutator stall.
  bool enqueue(MethodId M, uint64_t Hotness, uint64_t Version,
               ProfileSnapshot Snapshot);

  /// Wakes a worker to pick up queued work.
  void kick();

  /// Blocks until the queue is empty and no compilation is in flight.
  /// Establishes happens-before with all completed installations.
  void waitIdle();

  /// Largest queue depth ever observed (including in-flight tasks).
  uint64_t queueDepthHighWater() const;

  unsigned numThreads() const { return NumThreads; }

private:
  void workerLoop();

  const Program &P;
  const CompilerOptions Options;
  /// Built once from Options; shared read-only by all workers (phases
  /// are stateless, so concurrent Plan.run calls are safe).
  const PhasePlan Plan;
  const unsigned NumThreads;
  InstallFn Install;

  /// Max-heap on hotness; ties broken FIFO by sequence number so equal
  /// priorities keep their request order (determinism under one worker).
  struct QueueEntry {
    uint64_t Hotness;
    uint64_t Seq;
    std::shared_ptr<Task> T;
    bool operator<(const QueueEntry &O) const {
      if (Hotness != O.Hotness)
        return Hotness < O.Hotness;
      return Seq > O.Seq; // earlier sequence = higher priority
    }
  };

  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable Idle;
  std::priority_queue<QueueEntry> Queue;
  std::vector<uint8_t> Pending; ///< per-method queued-or-in-flight flag
  std::vector<std::thread> Workers;
  uint64_t NextSeq = 0;
  uint64_t HighWater = 0;
  unsigned InFlight = 0;
  bool Stopping = false;
};

} // namespace jvm

#endif // JVM_VM_COMPILEBROKER_H
