//===- CompileBroker.h - Process-wide background JIT service --------*- C++ -*-===//
///
/// \file
/// The compile broker takes JIT compilation off the mutator thread, the
/// way HotSpot's and Graal's compile brokers do — and, since the isolate
/// refactor, it is a **process-wide service**: one worker pool compiles
/// on behalf of every isolate in the process. An isolate registers as a
/// client (carrying its Program, CompilerOptions, prebuilt PhasePlan and
/// install callback), enqueues hot methods together with immutable
/// ProfileSnapshots, and the pool drains one hotness-prioritized queue
/// shared by all tenants. Worker count is fixed at process startup
/// (JVM_COMPILER_THREADS, default hardware concurrency) and does NOT
/// grow with the number of isolates — that is the point: compilation
/// capacity is a shared substrate, per-tenant state is not.
///
/// Key properties:
///  - **Snapshot isolation.** Workers read only the ProfileSnapshot taken
///    at enqueue time; the interpreter's live profile writes never race a
///    compilation, and a compilation's input — hence its output graph —
///    is identical to what a synchronous compile at the same trigger
///    point would have produced.
///  - **Hotness priority.** The queue is a max-heap on the hotness at
///    enqueue time (FIFO among equals), across all isolates: under load
///    the methods that burn the most interpreter cycles compile first,
///    whoever owns them.
///  - **In-flight dedup.** A (client, method) pair is queued at most
///    once; re-requests while a compile is pending are dropped.
///  - **Versioned installation.** Each task carries the method's code
///    version at enqueue time. Installation (done by the owning isolate
///    through its install callback) compares versions, so an in-flight
///    compile of a just-invalidated method is discarded instead of
///    installed.
///  - **Safe unregistration.** unregisterClient() drops the client's
///    queued tasks and blocks until its in-flight compilations have
///    installed or discarded — after it returns, no worker can touch the
///    (about to be destroyed) isolate again.
///
/// The broker also owns the compile pipeline itself (runCompilePipeline),
/// which both the workers and the legacy synchronous path
/// (CompilerThreads = 0, which never touches the broker at all) run —
/// one pipeline, two schedulers.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_VM_COMPILEBROKER_H
#define JVM_VM_COMPILEBROKER_H

#include "compiler/CompilerOptions.h"
#include "compiler/PhasePlan.h"
#include "interp/Profile.h"
#include "pea/PartialEscapeAnalysis.h"
#include "spesh/SpeshPlan.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jvm {

class Graph;
class LinearCode;
class Program;

/// Everything one pipeline run produces.
struct CompileResult {
  CompileResult();
  CompileResult(CompileResult &&) noexcept;
  CompileResult &operator=(CompileResult &&) noexcept;
  ~CompileResult(); // out of line: LinearCode is incomplete here

  std::unique_ptr<Graph> G;
  /// The graph translated to register-based linear code (the default
  /// execution tier); null when Options.EmitLinearCode is off.
  std::unique_ptr<LinearCode> Code;
  PEAStats Stats;
  /// Wall-clock nanoseconds and run counts keyed by phase name ("build",
  /// "canon", "gvn", ... — whatever the plan scheduled).
  PhaseTimes Phases;
  /// Every phase execution in pipeline order, with node counts — the raw
  /// material for the per-method compilation log.
  std::vector<PhaseTrailEntry> Trail;
  uint64_t TotalNanos = 0; ///< whole pipeline, including plan overhead
  /// Process-wide compile ordinal assigned to this pipeline run.
  uint64_t CompileSeq = 0;
  /// Fixpoint phases that hit their round cap without converging.
  uint64_t FixpointCapHits = 0;
  /// Speculations the "spesh" planner committed to in this compile (the
  /// guard id space of the installed code: guard i ↔ Spesh.Specs[i]).
  /// Empty when speculation is off or the planner found nothing.
  SpeshPlan Spesh;
};

/// Runs \p Plan for \p Method against \p Profiles: allocates the empty
/// graph, executes every phase under the manager (timing, optional
/// inter-phase verification, dump capture), and flushes any buffered
/// JVM_DUMP_PHASES text in one write so concurrent compiles never
/// interleave. Pure with respect to VM state: reads only \p P and the
/// snapshot, so any number of pipelines may run concurrently on
/// different threads. \p IsolateId tags the compile span in exported
/// traces (0 = unattributed, e.g. direct pipeline tests).
/// \p Spesh, when non-null, is the speculation-statistics snapshot the
/// "spesh" planner phase reads (and, for OSR compiles, the entry spec
/// the graph builder honors); null compiles without speculation.
CompileResult runCompilePipeline(const PhasePlan &Plan, const Program &P,
                                 MethodId Method,
                                 const ProfileSnapshot &Profiles,
                                 const CompilerOptions &Options,
                                 uint32_t IsolateId = 0,
                                 const SpeshSnapshot *Spesh = nullptr);

/// Convenience overload for one-shot (synchronous) compiles: builds the
/// default plan from \p Options and runs it.
CompileResult runCompilePipeline(const Program &P, MethodId Method,
                                 const ProfileSnapshot &Profiles,
                                 const CompilerOptions &Options,
                                 uint32_t IsolateId = 0,
                                 const SpeshSnapshot *Spesh = nullptr);

class CompileBroker {
public:
  /// Identifies a registered isolate. Chosen by the caller (isolates
  /// pass their process-wide isolate id) so queue entries, traces and
  /// logs all speak the same id space. Id 0 is reserved/invalid.
  using ClientId = uint32_t;

  /// One queued compilation request, tagged with the isolate it
  /// compiles for.
  struct Task {
    ClientId Client = 0;
    MethodId Method = NoMethod;
    uint64_t Hotness = 0;      ///< priority at enqueue time
    uint64_t Version = 0;      ///< method code version at enqueue time
    uint64_t EnqueueNanos = 0; ///< for enqueue-to-install latency
    ProfileSnapshot Snapshot;
    /// Speculation statistics frozen at enqueue time, same snapshot
    /// discipline as the profile: workers never read live spesh state.
    SpeshSnapshot Spesh;

    Task(ClientId C, MethodId M, uint64_t Hotness, uint64_t Version,
         uint64_t EnqueueNanos, ProfileSnapshot Snap, SpeshSnapshot Spesh)
        : Client(C), Method(M), Hotness(Hotness), Version(Version),
          EnqueueNanos(EnqueueNanos), Snapshot(std::move(Snap)),
          Spesh(std::move(Spesh)) {}
  };

  /// Called on a worker thread with a finished compilation. The owning
  /// isolate decides whether to install or discard (version check) —
  /// the broker itself never touches method state.
  using InstallFn = std::function<void(Task &&, CompileResult &&)>;

  /// A private broker with its own pool (tests). Production isolates
  /// use process() instead. \p Threads is clamped to >= 1; the worker
  /// pool starts immediately so thread creation is never charged to a
  /// mutator's enqueue.
  explicit CompileBroker(unsigned Threads);

  /// Pending queue entries are dropped, in-flight compilations finish
  /// (and install/discard) before workers join. All clients must have
  /// been unregistered — except at process exit, where remaining
  /// registrations would be a caller bug anyway.
  ~CompileBroker();

  CompileBroker(const CompileBroker &) = delete;
  CompileBroker &operator=(const CompileBroker &) = delete;

  /// The process-wide broker, created on first use with
  /// JVM_COMPILER_THREADS workers (default: hardware concurrency).
  /// Worker count never changes afterwards, however many isolates
  /// register — scale-out adds tenants, not compiler threads.
  static CompileBroker &process();

  /// Registers an isolate: \p Id must be nonzero and not currently
  /// registered. The broker builds the client's PhasePlan from
  /// \p Options once, here, so workers share one read-only plan per
  /// isolate. \p Install runs on worker threads; it must stay callable
  /// until unregisterClient(Id) returns.
  void registerClient(ClientId Id, const Program &P, CompilerOptions Options,
                      InstallFn Install);

  /// Removes \p Id: queued tasks are dropped, then the call blocks until
  /// every in-flight compilation for \p Id has finished installing or
  /// discarding. After return the broker holds no reference to the
  /// client and will never invoke its callback again.
  void unregisterClient(ClientId Id);

  /// Requests compilation of \p M for client \p Id. Returns false if a
  /// request for (Id, M) is already queued or in flight (the request is
  /// dropped) or \p Id is not registered. Does NOT wake a worker: call
  /// kick() afterwards, outside any stall-accounting window — on a
  /// saturated machine the woken worker may preempt the caller
  /// immediately, and that compile time is not mutator stall.
  bool enqueue(ClientId Id, MethodId M, uint64_t Hotness, uint64_t Version,
               ProfileSnapshot Snapshot, SpeshSnapshot Spesh = {});

  /// Wakes a worker to pick up queued work.
  void kick();

  /// Blocks until client \p Id has nothing queued and nothing in flight.
  /// Establishes happens-before with all of that client's completed
  /// installations. Other isolates' work may still be running — one
  /// tenant quiescing must not wait on its neighbors.
  void waitIdle(ClientId Id);

  /// Largest queue depth ever observed (including in-flight tasks),
  /// process-wide across all clients.
  uint64_t queueDepthHighWater() const;

  /// Number of clients currently registered (diagnostics/tests).
  size_t numClients() const;

  unsigned numThreads() const { return NumThreads; }

private:
  /// Per-isolate registration record. Stable address while registered:
  /// workers hold a raw pointer across a compile, and unregisterClient
  /// waits for InFlight to drain before erasing.
  struct Client {
    const Program *P = nullptr;
    CompilerOptions Options;
    /// Built once at registration; shared read-only by all workers
    /// (phases are stateless, so concurrent Plan.run calls are safe).
    PhasePlan Plan;
    InstallFn Install;
    std::vector<uint8_t> Pending; ///< per-method queued-or-in-flight
    uint64_t Queued = 0;          ///< entries currently in the queue
    unsigned InFlight = 0;        ///< workers compiling for this client
    bool Unregistering = false;   ///< drop this client's queued tasks
  };

  void workerLoop();
  Client *findLocked(ClientId Id);

  const unsigned NumThreads;

  /// Max-heap on hotness; ties broken FIFO by sequence number so equal
  /// priorities keep their request order (determinism under one worker),
  /// across isolates.
  struct QueueEntry {
    uint64_t Hotness;
    uint64_t Seq;
    std::shared_ptr<Task> T;
    bool operator<(const QueueEntry &O) const {
      if (Hotness != O.Hotness)
        return Hotness < O.Hotness;
      return Seq > O.Seq; // earlier sequence = higher priority
    }
  };

  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable Idle;
  std::priority_queue<QueueEntry> Queue;
  std::map<ClientId, std::unique_ptr<Client>> Clients;
  std::vector<std::thread> Workers;
  uint64_t NextSeq = 0;
  uint64_t HighWater = 0;
  unsigned InFlightTotal = 0;
  bool Stopping = false;
};

} // namespace jvm

#endif // JVM_VM_COMPILEBROKER_H
