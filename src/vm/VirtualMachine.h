//===- VirtualMachine.h - Tiered execution ---------------------------*- C++ -*-===//
///
/// \file
/// The top-level VM: methods start in the profiling interpreter and are
/// JIT-compiled once hot. The optimization pipeline mirrors the paper's
/// setting (Figure 1 context): graph building with speculative branch
/// pruning and devirtualization, inlining, canonicalization, global value
/// numbering, the configured escape analysis, and cleanup. Compiled code
/// runs through the GraphExecutor; deoptimizations resume in the
/// interpreter, and methods that deoptimize repeatedly are invalidated
/// and re-profiled (so failed speculations heal, as in HotSpot/Graal).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_VM_VIRTUALMACHINE_H
#define JVM_VM_VIRTUALMACHINE_H

#include "compiler/CompilerOptions.h"
#include "interp/Interpreter.h"
#include "pea/PartialEscapeAnalysis.h"
#include "runtime/Runtime.h"
#include "vm/GraphExecutor.h"

#include <memory>

namespace jvm {

struct VMOptions {
  CompilerOptions Compiler;
  bool EnableJit = true;
  /// Hotness (invocations + back edges / 8) before a method compiles.
  /// High enough that branch and receiver profiles mature first — a
  /// method compiled with immature profiles misses devirtualization and,
  /// since it never deoptimizes, would stay pessimal forever.
  uint64_t CompileThreshold = 200;
  /// Deoptimizations of one compiled method before it is thrown away and
  /// re-profiled.
  uint64_t MaxDeoptsPerMethod = 3;
};

/// Counters describing the VM's compilation activity.
struct JitMetrics {
  uint64_t Compilations = 0;
  uint64_t Invalidations = 0;
  uint64_t CompileNanos = 0;   ///< total pipeline time
  uint64_t EscapeNanos = 0;    ///< time spent inside escape analysis
  PEAStats EscapeStats;        ///< aggregated over all compilations
};

class VirtualMachine {
public:
  VirtualMachine(const Program &P, VMOptions Options);

  /// Tiered call: runs compiled code when available, otherwise
  /// interprets (and compiles once the threshold is crossed).
  Value call(MethodId Method, std::vector<Value> Args);

  /// Convenience for tests/benchmarks: call with no profiling threshold
  /// games — just dispatch.
  Value call(MethodId Method, std::initializer_list<Value> Args) {
    return call(Method, std::vector<Value>(Args));
  }

  Runtime &runtime() { return RT; }
  const Runtime &runtime() const { return RT; }
  ProfileData &profiles() { return Profiles; }
  const VMOptions &options() const { return Options; }
  JitMetrics &jitMetrics() { return Jit; }

  /// The compiled graph of \p Method, or null.
  const Graph *compiledGraph(MethodId Method) const {
    return States[Method].Compiled.get();
  }

  /// Forces compilation of \p Method now (benchmark warmup control).
  void compileNow(MethodId Method);

  /// Drops compiled code for \p Method.
  void invalidate(MethodId Method);

private:
  Value executeCompiled(MethodId Method, std::vector<Value> &Args);
  void compile(MethodId Method);
  Value handleDeopt(DeoptRequest &&Req);

  struct MethodState {
    std::unique_ptr<Graph> Compiled;
    /// Invalidated graphs are retired, not destroyed: activations of the
    /// old code may still be on the native stack (an invalidation is
    /// triggered from a deoptimization *inside* that very code).
    std::vector<std::unique_ptr<Graph>> Retired;
    uint64_t DeoptCount = 0;
    uint64_t Recompiles = 0;
  };

  const Program &P;
  VMOptions Options;
  Runtime RT;
  ProfileData Profiles;
  Interpreter Interp;
  GraphExecutor Executor;
  std::vector<MethodState> States;
  JitMetrics Jit;
};

} // namespace jvm

#endif // JVM_VM_VIRTUALMACHINE_H
