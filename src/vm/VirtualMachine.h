//===- VirtualMachine.h - Single-tenant view over an Isolate --------*- C++ -*-===//
///
/// \file
/// The classic single-tenant entry point, now a thin view over an
/// Isolate (vm/Isolate.h): construction creates one isolate, every
/// method forwards, destruction tears it down. All tiered-execution
/// semantics — profiling interpreter, background compilation through
/// the process-wide broker, graph/linear/native execution tiers,
/// deoptimization and invalidation — live in the Isolate; this class
/// exists so the large single-VM surface (tests, benchmarks, the Table 1
/// harness) keeps compiling unchanged while multi-tenant embedders hold
/// Isolates directly.
///
/// One process may contain any number of VirtualMachines/Isolates; they
/// share the compile broker's worker pool, the native code cache and
/// the tracer, and nothing else.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_VM_VIRTUALMACHINE_H
#define JVM_VM_VIRTUALMACHINE_H

#include "vm/Isolate.h"

namespace jvm {

class VirtualMachine {
public:
  VirtualMachine(const Program &P, VMOptions Options)
      : Iso(P, std::move(Options)) {}

  /// The isolate behind this view, for callers that need the tenant id
  /// or want to hand the isolate to multi-tenant plumbing.
  Isolate &isolate() { return Iso; }
  const Isolate &isolate() const { return Iso; }

  /// See Isolate::call.
  Value call(MethodId Method, std::vector<Value> Args) {
    return Iso.call(Method, std::move(Args));
  }
  Value call(MethodId Method, std::initializer_list<Value> Args) {
    return Iso.call(Method, Args);
  }

  Runtime &runtime() { return Iso.runtime(); }
  const Runtime &runtime() const { return Iso.runtime(); }
  ProfileData &profiles() { return Iso.profiles(); }
  const VMOptions &options() const { return Iso.options(); }
  JitMetrics &jitMetrics() { return Iso.jitMetrics(); }
  MetricsRegistry &metricsRegistry() { return Iso.metricsRegistry(); }
  CompileLog &compileLog() { return Iso.compileLog(); }

  std::string dumpMetricsText() { return Iso.dumpMetricsText(); }
  std::string dumpMetricsJson() { return Iso.dumpMetricsJson(); }
  void resetMetrics() { Iso.resetMetrics(); }

  const Graph *compiledGraph(MethodId Method) const {
    return Iso.compiledGraph(Method);
  }
  const LinearCode *compiledLinear(MethodId Method) const {
    return Iso.compiledLinear(Method);
  }
  const NativeCode *compiledNative(MethodId Method) const {
    return Iso.compiledNative(Method);
  }
  /// The process-shared code cache (see Isolate::codeCache).
  const CodeCache &codeCache() const { return Iso.codeCache(); }

  void compileNow(MethodId Method) { Iso.compileNow(Method); }
  void invalidate(MethodId Method) { Iso.invalidate(Method); }
  void waitForCompilerIdle() { Iso.waitForCompilerIdle(); }

private:
  Isolate Iso;
};

} // namespace jvm

#endif // JVM_VM_VIRTUALMACHINE_H
