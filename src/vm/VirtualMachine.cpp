//===- VirtualMachine.cpp - Tiered execution -----------------------------------===//

#include "vm/VirtualMachine.h"

#include "ir/Graph.h"
#include "support/Debug.h"
#include "vm/CompileBroker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace jvm;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

unsigned jvm::defaultCompilerThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ExecMode jvm::defaultExecMode() {
  static const ExecMode Mode = [] {
    const char *E = std::getenv("JVM_EXEC_MODE");
    if (!E || !*E || std::strcmp(E, "linear") == 0)
      return ExecMode::Linear;
    if (std::strcmp(E, "graph") == 0)
      return ExecMode::Graph;
    if (std::strcmp(E, "differential") == 0 || std::strcmp(E, "both") == 0)
      return ExecMode::Differential;
    std::fprintf(stderr,
                 "warning: unknown JVM_EXEC_MODE '%s' "
                 "(graph|linear|differential); using linear\n",
                 E);
    return ExecMode::Linear;
  }();
  return Mode;
}

const char *jvm::execModeName(ExecMode M) {
  switch (M) {
  case ExecMode::Graph:
    return "graph";
  case ExecMode::Linear:
    return "linear";
  case ExecMode::Differential:
    return "differential";
  }
  return "unknown";
}

VirtualMachine::VirtualMachine(const Program &P, VMOptions Options)
    : P(P), Options(Options), RT(P), Profiles(P.numMethods()),
      Interp(RT, Profiles),
      Executor(
          RT,
          [this](MethodId Target, std::vector<Value> &&Args) {
            return call(Target, std::move(Args));
          },
          [this](DeoptRequest &&Req) { return handleDeopt(std::move(Req)); }),
      LinExecutor(
          RT,
          [this](MethodId Target, std::vector<Value> &&Args) {
            return call(Target, std::move(Args));
          },
          [this](DeoptRequest &&Req) { return handleDeopt(std::move(Req)); }),
      States(P.numMethods()) {
  Interp.setCallHandler([this](MethodId Target, std::vector<Value> &&Args) {
    return call(Target, std::move(Args));
  });
  if (Options.EnableJit && Options.CompilerThreads > 0)
    Broker = std::make_unique<CompileBroker>(
        P, Options.Compiler, Options.CompilerThreads,
        [this](CompileBroker::Task &&T, CompileResult &&R) {
          installCode(T.Method, T.Version, std::move(R), T.EnqueueNanos);
          // Clear the dedup flag last: once visible, the mutator may
          // request a fresh compile of this method.
          States[T.Method].CompilePending.store(false,
                                                std::memory_order_release);
        });
}

VirtualMachine::~VirtualMachine() = default;

Value VirtualMachine::call(MethodId Method, std::vector<Value> Args) {
  // Safe point: no compiled activation is on the stack, so code retired
  // by earlier invalidations can be freed.
  if (CompiledDepth == 0 && HasRetired.load(std::memory_order_relaxed))
    reclaimRetired();

  MethodState &MS = States[Method];
  if (const Graph *G = MS.Code.load(std::memory_order_acquire))
    return executeCompiled(Method, *G, Args);
  if (Options.EnableJit &&
      !MS.CompilePending.load(std::memory_order_acquire) &&
      Profiles.of(Method).hotness() >= Options.CompileThreshold) {
    // The acquire above pairs with the worker's release store that
    // clears the flag *after* installing: code may have landed between
    // the Code load up top and the flag load, and requesting now would
    // compile the method a second time.
    if (const Graph *G = MS.Code.load(std::memory_order_acquire))
      return executeCompiled(Method, *G, Args);
    requestCompile(Method);
    // Synchronous mode installs before returning; run the fresh code.
    if (const Graph *G = MS.Code.load(std::memory_order_acquire))
      return executeCompiled(Method, *G, Args);
  }
  return Interp.call(Method, std::move(Args));
}

Value VirtualMachine::executeCompiled(MethodId Method, const Graph &G,
                                      std::vector<Value> &Args) {
  Runtime::RootScope ArgRoots(RT, &Args);
  ++CompiledDepth;
  const LinearCode *L =
      Options.Exec == ExecMode::Graph
          ? nullptr
          : States[Method].Linear.load(std::memory_order_acquire);
  Value Result;
  if (!L) {
    // Graph mode, or the method compiled without EmitLinearCode.
    Result = Executor.execute(G, Args);
  } else if (Options.Exec == ExecMode::Differential && !L->hasEffects()) {
    // Effect-free code can run twice without observable consequences;
    // the two tiers must agree on the result exactly.
    Value Walked = Executor.execute(G, Args);
    Result = LinExecutor.execute(*L, Args);
    if (!(Result == Walked))
      reportFatalError("differential execution mismatch between graph "
                       "and linear tiers",
                       __FILE__, __LINE__);
  } else {
    Result = LinExecutor.execute(*L, Args);
  }
  --CompiledDepth;
  return Result;
}

void VirtualMachine::requestCompile(MethodId Method) {
  if (!Broker) {
    compileSync(Method);
    return;
  }
  uint64_t Start = nowNanos();
  uint64_t Version;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    Version = States[Method].Version;
  }
  MethodState &MS = States[Method];
  MS.CompilePending.store(true, std::memory_order_relaxed);
  if (!Broker->enqueue(Method, Profiles.of(Method).hotness(), Version,
                       ProfileSnapshot(Profiles, P, Method))) {
    MS.CompilePending.store(false, std::memory_order_relaxed);
    return;
  }
  uint64_t HighWater = Broker->queueDepthHighWater();
  {
    std::lock_guard<std::mutex> L(StateMutex);
    Jit.QueueDepthHighWater = std::max(Jit.QueueDepthHighWater, HighWater);
    // With a broker the only mutator cost is the snapshot + enqueue.
    Jit.MutatorStallNanos += nowNanos() - Start;
  }
  // Wake a worker only after the stall window closed: on a saturated
  // machine the worker may preempt this thread the moment it is woken,
  // and its compile time must not be billed as mutator stall.
  Broker->kick();
}

void VirtualMachine::compileNow(MethodId Method) { compileSync(Method); }

void VirtualMachine::compileSync(MethodId Method) {
  uint64_t Start = nowNanos();
  uint64_t Version;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    // Bumping the version discards any in-flight background compile in
    // favor of this (fresher-profiled) one.
    Version = ++States[Method].Version;
  }
  CompileResult R = runCompilePipeline(
      P, Method, ProfileSnapshot(Profiles, P, Method), Options.Compiler);
  installCode(Method, Version, std::move(R), Start);
  std::lock_guard<std::mutex> L(StateMutex);
  Jit.MutatorStallNanos += nowNanos() - Start;
}

bool VirtualMachine::installCode(MethodId Method, uint64_t Version,
                                 CompileResult &&R, uint64_t EnqueueNanos) {
  uint64_t Now = nowNanos();
  std::lock_guard<std::mutex> L(StateMutex);
  // Pipeline cost is real whether or not the result installs.
  Jit.CompileNanos += R.TotalNanos;
  Jit.PhaseNanos += R.Phases;
  Jit.FixpointCapHits += R.FixpointCapHits;
  Jit.EscapeStats += R.Stats;

  MethodState &MS = States[Method];
  if (MS.Version != Version) {
    // The method was invalidated (or force-recompiled) after this
    // compile was enqueued: its speculations are based on a retracted
    // profile, drop it.
    ++Jit.CompilesDiscarded;
    JVM_DEBUG("discarded stale compile of m" << Method);
    return false;
  }
  if (MS.Owned) {
    MS.Retired.push_back(std::move(MS.Owned));
    if (MS.OwnedLinear)
      MS.RetiredLinear.push_back(std::move(MS.OwnedLinear));
    HasRetired.store(true, std::memory_order_relaxed);
  }
  MS.Owned = std::move(R.G);
  MS.OwnedLinear = std::move(R.Code);
  // Linear first: a mutator that sees the new graph must also see its
  // linear translation (the inverse interleaving is benign, see
  // MethodState::Linear).
  MS.Linear.store(MS.OwnedLinear.get(), std::memory_order_release);
  MS.Code.store(MS.Owned.get(), std::memory_order_release);
  ++Jit.Compilations;
  uint64_t Latency = Now - EnqueueNanos;
  Jit.EnqueueToInstallNanos += Latency;
  Jit.EnqueueToInstallNanosMax =
      std::max(Jit.EnqueueToInstallNanosMax, Latency);
  JVM_DEBUG("compiled m" << Method << " ("
                         << escapeAnalysisModeName(Options.Compiler.EAMode)
                         << ")");
  return true;
}

void VirtualMachine::invalidate(MethodId Method) {
  std::lock_guard<std::mutex> L(StateMutex);
  MethodState &MS = States[Method];
  if (!MS.Owned)
    return;
  ++MS.Version; // Discards any compile in flight for the old profile.
  MS.Code.store(nullptr, std::memory_order_release);
  MS.Linear.store(nullptr, std::memory_order_release);
  MS.Retired.push_back(std::move(MS.Owned));
  if (MS.OwnedLinear)
    MS.RetiredLinear.push_back(std::move(MS.OwnedLinear));
  HasRetired.store(true, std::memory_order_relaxed);
  MS.DeoptCount = 0;
  ++MS.Recompiles;
  ++Jit.Invalidations;
  JVM_DEBUG("invalidated m" << Method);
}

void VirtualMachine::reclaimRetired() {
  // Destroy outside the lock; workers only need the lists unlinked.
  std::vector<std::unique_ptr<Graph>> Doomed;
  std::vector<std::unique_ptr<LinearCode>> DoomedLinear;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    for (MethodState &MS : States) {
      for (std::unique_ptr<Graph> &G : MS.Retired) {
        Doomed.push_back(std::move(G));
        ++Jit.RetiredReclaimed;
      }
      for (std::unique_ptr<LinearCode> &LC : MS.RetiredLinear)
        DoomedLinear.push_back(std::move(LC));
    }
    for (MethodState &MS : States) {
      MS.Retired.clear();
      MS.RetiredLinear.clear();
    }
    HasRetired.store(false, std::memory_order_relaxed);
  }
}

void VirtualMachine::waitForCompilerIdle() {
  if (!Broker)
    return;
  Broker->waitIdle();
  uint64_t HighWater = Broker->queueDepthHighWater();
  std::lock_guard<std::mutex> L(StateMutex);
  Jit.QueueDepthHighWater = std::max(Jit.QueueDepthHighWater, HighWater);
}

Value VirtualMachine::handleDeopt(DeoptRequest &&Req) {
  MethodState &MS = States[Req.Root];
  ++MS.DeoptCount;
  if (MS.DeoptCount > Options.MaxDeoptsPerMethod) {
    // The speculation keeps failing: throw the code away. Interpreted
    // re-runs update the branch/receiver profiles, so the next
    // compilation no longer contains the failing guard.
    invalidate(Req.Root);
  }
  return Interp.resume(std::move(Req.Frames));
}
