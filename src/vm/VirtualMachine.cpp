//===- VirtualMachine.cpp - Tiered execution -----------------------------------===//

#include "vm/VirtualMachine.h"

#include "compiler/Canonicalizer.h"
#include "compiler/DeadCodeElimination.h"
#include "compiler/GVN.h"
#include "compiler/GraphBuilder.h"
#include "compiler/Inliner.h"
#include "ir/Verifier.h"
#include "support/Debug.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include "ir/Printer.h"

using namespace jvm;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

VirtualMachine::VirtualMachine(const Program &P, VMOptions Options)
    : P(P), Options(Options), RT(P), Profiles(P.numMethods()),
      Interp(RT, Profiles),
      Executor(
          RT,
          [this](MethodId Target, std::vector<Value> &&Args) {
            return call(Target, std::move(Args));
          },
          [this](DeoptRequest &&Req) { return handleDeopt(std::move(Req)); }),
      States(P.numMethods()) {
  Interp.setCallHandler([this](MethodId Target, std::vector<Value> &&Args) {
    return call(Target, std::move(Args));
  });
}

Value VirtualMachine::call(MethodId Method, std::vector<Value> Args) {
  MethodState &MS = States[Method];
  if (MS.Compiled)
    return executeCompiled(Method, Args);
  if (Options.EnableJit &&
      Profiles.of(Method).hotness() >= Options.CompileThreshold) {
    compile(Method);
    if (MS.Compiled)
      return executeCompiled(Method, Args);
  }
  return Interp.call(Method, std::move(Args));
}

Value VirtualMachine::executeCompiled(MethodId Method,
                                      std::vector<Value> &Args) {
  Runtime::RootScope ArgRoots(RT, &Args);
  return Executor.execute(*States[Method].Compiled, Args);
}

void VirtualMachine::compileNow(MethodId Method) { compile(Method); }

void VirtualMachine::invalidate(MethodId Method) {
  MethodState &MS = States[Method];
  if (!MS.Compiled)
    return;
  MS.Retired.push_back(std::move(MS.Compiled));
  MS.DeoptCount = 0;
  ++MS.Recompiles;
  ++Jit.Invalidations;
  JVM_DEBUG("invalidated m" << Method);
}

void VirtualMachine::compile(MethodId Method) {
  uint64_t Start = nowNanos();
  const CompilerOptions &CO = Options.Compiler;
  // JVM_DUMP_PHASES=1 prints the IR after each pipeline stage.
  bool Dump = std::getenv("JVM_DUMP_PHASES") != nullptr;
  std::unique_ptr<Graph> G = buildGraph(P, Method, &Profiles.of(Method), CO);
  if (Dump) std::fprintf(stderr, "== after build ==\n%s\n", graphToString(*G).c_str());
  canonicalize(*G, P);
  if (Dump) std::fprintf(stderr, "== after canon ==\n%s\n", graphToString(*G).c_str());
  if (CO.EnableInlining) {
    inlineCalls(*G, P, &Profiles, CO);
    canonicalize(*G, P);
  }
  runGVN(*G);
  eliminateDeadCode(*G);
  if (Dump) std::fprintf(stderr, "== after gvn+dce ==\n%s\n", graphToString(*G).c_str());

  uint64_t EaStart = nowNanos();
  PEAStats Stats;
  switch (CO.EAMode) {
  case EscapeAnalysisMode::None:
    break;
  case EscapeAnalysisMode::FlowInsensitive:
    runFlowInsensitiveEscapeAnalysis(*G, P, CO, &Stats);
    break;
  case EscapeAnalysisMode::Partial:
    runPartialEscapeAnalysis(*G, P, CO, &Stats);
    break;
  }
  Jit.EscapeNanos += nowNanos() - EaStart;
  Jit.EscapeStats.VirtualizedAllocations += Stats.VirtualizedAllocations;
  Jit.EscapeStats.MaterializeSites += Stats.MaterializeSites;
  Jit.EscapeStats.ScalarReplacedLoads += Stats.ScalarReplacedLoads;
  Jit.EscapeStats.ScalarReplacedStores += Stats.ScalarReplacedStores;
  Jit.EscapeStats.ElidedMonitorOps += Stats.ElidedMonitorOps;
  Jit.EscapeStats.FoldedChecks += Stats.FoldedChecks;
  Jit.EscapeStats.LoopIterations += Stats.LoopIterations;
  Jit.EscapeStats.VirtualizedStates += Stats.VirtualizedStates;

  for (int Round = 0; Round != 4; ++Round) {
    bool Changed = canonicalize(*G, P);
    Changed |= runGVN(*G);
    Changed |= eliminateDeadCode(*G);
    if (!Changed)
      break;
  }
  verifyGraphOrDie(*G);

  States[Method].Compiled = std::move(G);
  ++Jit.Compilations;
  Jit.CompileNanos += nowNanos() - Start;
  JVM_DEBUG("compiled m" << Method << " ("
                         << escapeAnalysisModeName(CO.EAMode) << ")");
}

Value VirtualMachine::handleDeopt(DeoptRequest &&Req) {
  MethodState &MS = States[Req.Root];
  ++MS.DeoptCount;
  if (MS.DeoptCount > Options.MaxDeoptsPerMethod) {
    // The speculation keeps failing: throw the code away. Interpreted
    // re-runs update the branch/receiver profiles, so the next
    // compilation no longer contains the failing guard.
    invalidate(Req.Root);
  }
  return Interp.resume(std::move(Req.Frames));
}
