//===- LinearCode.cpp - Graph -> linear code translation and execution ---------===//

#include "vm/LinearCode.h"

#include "compiler/Schedule.h"
#include "observability/Profiler.h"
#include "observability/Trace.h"
#include "support/Casting.h"

#include <cstdio>
#include <map>

using namespace jvm;

void jvm::reportCompiledTrap(MethodId Method, const char *What) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "compiled code trap in m%d: %s",
                static_cast<int>(Method), What);
  reportFatalError(Buf, __FILE__, __LINE__);
}

//===----------------------------------------------------------------------===//
// Translation
//===----------------------------------------------------------------------===//

namespace {

/// Emits one graph as linear code, block by block in reverse post order.
/// Because dominators precede the blocks they dominate in that order,
/// every expression is emitted (once, in its scheduled block) before any
/// instruction that reads its register.
class Translator {
public:
  Translator(const Graph &G, const BlockSchedule &S, LinearCode &L)
      : G(G), S(S), L(L) {}

  void run() {
    unsigned Bound = G.nodeIdBound();
    RegOf.assign(Bound, -1);
    Emitted.assign(Bound, 0);
    L.Method = G.method();
    L.NumParams = G.numParams();
    NextReg = L.NumParams;
    // All parameter nodes of index I share register I; the executor
    // preloads those registers from the argument vector.
    for (unsigned Id = 0; Id != Bound; ++Id)
      if (const Node *N = G.nodeAt(Id))
        if (const auto *Par = dyn_cast<ParameterNode>(N)) {
          assert(Par->index() < L.NumParams && "parameter index out of range");
          RegOf[Id] = static_cast<int>(Par->index());
        }
    // Group scheduled expressions by block (ascending node id: the
    // emission order within a block's flush is deterministic).
    FloatsIn.assign(S.Blocks.size(), {});
    for (unsigned Id = 0; Id != Bound; ++Id)
      if (S.FloatBlock[Id] >= 0)
        FloatsIn[S.FloatBlock[Id]].push_back(G.nodeAt(Id));

    BlockPc.assign(S.Blocks.size(), 0);
    for (unsigned B : S.RPO)
      emitBlock(B);
    for (const Patch &Pt : Patches) {
      uint32_t Pc = BlockPc[Pt.Target];
      LInst &I = L.Insts[Pt.Inst];
      (Pt.Field == 0 ? I.A : Pt.Field == 1 ? I.B : I.C) = Pc;
    }
    L.NumRegs = NextReg;
    for (const LinearCode::MoveList &ML : L.MoveLists)
      L.MaxMoves = std::max(L.MaxMoves, ML.Count);
  }

private:
  struct Patch {
    uint32_t Inst;
    uint8_t Field; ///< 0 = A, 1 = B, 2 = C
    unsigned Target;
  };

  uint32_t append(LInst I) {
    L.Insts.push_back(I);
    return static_cast<uint32_t>(L.Insts.size() - 1);
  }

  void patchTo(uint32_t Inst, uint8_t Field, unsigned TargetBlock) {
    Patches.push_back({Inst, Field, TargetBlock});
  }

  uint32_t ensureReg(const Node *N) {
    int &Reg = RegOf[N->id()];
    if (Reg < 0)
      Reg = static_cast<int>(NextReg++);
    return static_cast<uint32_t>(Reg);
  }

  uint32_t intPoolIndex(int64_t V) {
    auto [It, Inserted] = IntPoolIndex.try_emplace(V, L.IntPool.size());
    if (Inserted)
      L.IntPool.push_back(V);
    return It->second;
  }

  /// Register holding \p N's value at the current emission point,
  /// emitting \p N first if it is an expression scheduled in the current
  /// block that has not been emitted yet.
  uint32_t useVal(const Node *N) {
    assert(N && "using a null value");
    if (isSchedulableExpression(N) && !Emitted[N->id()])
      emitExpr(N);
    return ensureReg(N);
  }

  void emitExpr(const Node *N) {
    unsigned Id = N->id();
    assert(S.FloatBlock[Id] == static_cast<int>(CurBlock) &&
           "expression used outside the blocks its scheduled block "
           "dominates");
    Emitted[Id] = 1;
    switch (N->kind()) {
    case NodeKind::ConstantInt: {
      uint32_t Pool = intPoolIndex(cast<ConstantIntNode>(N)->value());
      append({LOp::ConstInt, 0, ensureReg(N), Pool, 0, 0});
      break;
    }
    case NodeKind::ConstantNull:
      append({LOp::ConstNull, 0, ensureReg(N), 0, 0, 0});
      break;
    case NodeKind::Arith: {
      const auto *A = cast<ArithNode>(N);
      uint32_t X = useVal(A->x()), Y = useVal(A->y());
      append({LOp::Arith, static_cast<uint8_t>(A->op()), ensureReg(N), X, Y,
              0});
      break;
    }
    case NodeKind::Compare: {
      const auto *C = cast<CompareNode>(N);
      uint32_t X = useVal(C->x());
      uint32_t Y = C->op() == CmpKind::IsNull ? 0 : useVal(C->y());
      append({LOp::Compare, static_cast<uint8_t>(C->op()), ensureReg(N), X, Y,
              0});
      break;
    }
    case NodeKind::InstanceOf: {
      const auto *IO = cast<InstanceOfNode>(N);
      uint32_t O = useVal(IO->object());
      append({LOp::InstanceOf, static_cast<uint8_t>(IO->isExact()),
              ensureReg(N), O, static_cast<uint32_t>(IO->testedClass()), 0});
      break;
    }
    default:
      jvm_unreachable("emitExpr on a non-expression node");
    }
  }

  /// Emits every not-yet-emitted expression scheduled in the current
  /// block. Needed before branches: an expression placed here may be
  /// consumed only in dominated blocks.
  void flushFloats() {
    for (const Node *N : FloatsIn[CurBlock])
      if (!Emitted[N->id()])
        emitExpr(N);
  }

  LSlotRef slotRefFor(const Node *V,
                      const std::vector<const VirtualObjectNode *> &VOs) {
    if (!V)
      return {LSlotRef::Dead, 0};
    if (const auto *VO = dyn_cast<VirtualObjectNode>(V)) {
      for (unsigned K = 0, E = VOs.size(); K != E; ++K)
        if (VOs[K] == VO)
          return {LSlotRef::Virtual, K};
      jvm_unreachable("unmapped virtual object in a frame state");
    }
    return {LSlotRef::Reg, useVal(V)};
  }

  void emitMaterialize(const MaterializeNode *Commit) {
    L.HasEffects = true;
    LinearCode::MatDesc D;
    D.FirstObj = L.Objects.size();
    D.NumObjs = Commit->numObjects();
    for (unsigned K = 0; K != D.NumObjs; ++K) {
      const VirtualObjectNode *VO = Commit->objectAt(K);
      LinearCode::ObjTemplate T{
          VO->objectClass(),    VO->isArray(),
          VO->elementType(),    Commit->lockDepthOf(K),
          static_cast<uint32_t>(L.Slots.size()), VO->numEntries()};
      for (unsigned E = 0; E != VO->numEntries(); ++E) {
        const Node *Entry = Commit->entryOf(K, E);
        if (const auto *Sibling = dyn_cast<VirtualObjectNode>(Entry)) {
          // Entries referencing sibling objects of the same commit
          // (cyclic structures) resolve to the fresh cells at runtime.
          uint32_t Idx = ~0u;
          for (unsigned J = 0; J != D.NumObjs; ++J)
            if (Commit->objectAt(J) == Sibling)
              Idx = J;
          assert(Idx != ~0u && "entry references a foreign virtual object");
          L.Slots.push_back({LSlotRef::Virtual, Idx});
        } else {
          L.Slots.push_back({LSlotRef::Reg, useVal(Entry)});
        }
      }
      L.Objects.push_back(T);
    }
    D.FirstProj = L.Projections.size();
    for (const Node *U : Commit->usages())
      if (const auto *AO = dyn_cast<AllocatedObjectNode>(U))
        if (AO->commit() == Commit)
          L.Projections.push_back({AO->objectIndex(), ensureReg(AO)});
    D.NumProjs = L.Projections.size() - D.FirstProj;
    uint32_t Idx = static_cast<uint32_t>(L.Mats.size());
    L.Mats.push_back(D);
    append({LOp::Materialize, 0, 0, Idx, 0, 0});
  }

  void emitDeopt(const DeoptimizeNode *N) {
    L.HasEffects = true;
    LinearCode::DeoptDesc D;
    D.Reason = N->reason();
    D.GuardId = N->speculationId();
    D.FirstObj = L.Objects.size();
    D.FirstFrame = L.Frames.size();
    // Pass 1: discover the virtual objects in exactly the graph walker's
    // order — state chain innermost outwards, first mapping of each
    // object wins (it provides entries and lock depth).
    std::vector<const VirtualObjectNode *> VOs;
    std::vector<std::pair<const FrameStateNode *, unsigned>> FirstMap;
    for (const FrameStateNode *FS = N->state(); FS; FS = FS->outer())
      for (unsigned K = 0, E = FS->numVirtualMappings(); K != E; ++K) {
        const VirtualObjectNode *VO = FS->mappedObject(K);
        bool Seen = false;
        for (const VirtualObjectNode *Existing : VOs)
          Seen |= Existing == VO;
        if (!Seen) {
          VOs.push_back(VO);
          FirstMap.emplace_back(FS, K);
        }
      }
    D.NumObjs = VOs.size();
    // Pass 2: templates. Entries may reference objects discovered later,
    // so the full VOs list must exist before any entry resolves.
    for (unsigned K = 0; K != VOs.size(); ++K) {
      const VirtualObjectNode *VO = VOs[K];
      auto [FS, MI] = FirstMap[K];
      const FrameStateNode::VirtualMapping &M = FS->virtualMapping(MI);
      LinearCode::ObjTemplate T{
          VO->objectClass(), VO->isArray(), VO->elementType(), M.LockDepth,
          static_cast<uint32_t>(L.Slots.size()), M.NumEntries};
      for (unsigned E = 0; E != M.NumEntries; ++E)
        L.Slots.push_back(slotRefFor(FS->mappedEntry(MI, E), VOs));
      L.Objects.push_back(T);
    }
    // Frames, innermost first.
    unsigned NumFrames = 0;
    for (const FrameStateNode *FS = N->state(); FS; FS = FS->outer()) {
      LinearCode::FrameDesc F;
      F.Method = FS->method();
      F.Bci = FS->bci();
      F.Reexecute = FS->isReexecute();
      F.FirstLocal = L.Slots.size();
      F.NumLocals = FS->numLocals();
      for (unsigned K = 0; K != F.NumLocals; ++K)
        L.Slots.push_back(slotRefFor(FS->localAt(K), VOs));
      F.FirstStack = L.Slots.size();
      F.NumStack = FS->numStack();
      for (unsigned K = 0; K != F.NumStack; ++K)
        L.Slots.push_back(slotRefFor(FS->stackAt(K), VOs));
      L.Frames.push_back(F);
      ++NumFrames;
    }
    D.NumFrames = NumFrames;
    uint32_t Idx = static_cast<uint32_t>(L.Deopts.size());
    L.Deopts.push_back(D);
    append({LOp::Deopt, 0, 0, Idx, 0, 0});
  }

  void emitJump(const MergeNode *M, int EndIndex) {
    assert(EndIndex >= 0 && "control entered a merge through a foreign end");
    M->phis(PhiScratch);
    uint32_t First = static_cast<uint32_t>(L.Moves.size());
    for (const PhiNode *Phi : PhiScratch) {
      uint32_t Src = useVal(Phi->valueAt(EndIndex));
      uint32_t Dst = ensureReg(Phi);
      if (Dst != Src)
        L.Moves.push_back({Dst, Src});
    }
    flushFloats();
    uint32_t ListIdx = static_cast<uint32_t>(L.MoveLists.size());
    L.MoveLists.push_back(
        {First, static_cast<uint32_t>(L.Moves.size()) - First});
    uint32_t Inst = append({LOp::Jump, 0, 0, 0, ListIdx, 0});
    patchTo(Inst, 0, static_cast<unsigned>(S.BlockOf[M->id()]));
  }

  void emitFixed(const FixedNode *F) {
    switch (F->kind()) {
    case NodeKind::Start:
    case NodeKind::Begin:
    case NodeKind::LoopExit:
    case NodeKind::Merge:
    case NodeKind::LoopBegin:
      break; // structural: no instruction

    case NodeKind::If: {
      const auto *If = cast<IfNode>(F);
      uint32_t Cond = useVal(If->condition());
      flushFloats();
      uint32_t Inst = append({LOp::Branch, 0, 0, Cond, 0, 0});
      patchTo(Inst, 1,
              static_cast<unsigned>(S.BlockOf[If->trueSuccessor()->id()]));
      patchTo(Inst, 2,
              static_cast<unsigned>(S.BlockOf[If->falseSuccessor()->id()]));
      break;
    }
    case NodeKind::End: {
      const auto *End = cast<EndNode>(F);
      const MergeNode *M = End->merge();
      emitJump(M, M->indexOfEnd(End));
      break;
    }
    case NodeKind::LoopEnd: {
      const auto *End = cast<LoopEndNode>(F);
      const LoopBeginNode *M = End->loopBegin();
      emitJump(M, M->indexOfEnd(End));
      break;
    }
    case NodeKind::Return: {
      const auto *Ret = cast<ReturnNode>(F);
      if (Ret->hasValue())
        append({LOp::Ret, 0, 0, useVal(Ret->value()), 0, 0});
      else
        append({LOp::RetVoid, 0, 0, 0, 0, 0});
      break;
    }
    case NodeKind::Deoptimize:
      emitDeopt(cast<DeoptimizeNode>(F));
      break;
    case NodeKind::Unreachable:
      append({LOp::Trap, 0, 0, 0, 0, 0});
      break;

    case NodeKind::NewInstance: {
      L.HasEffects = true;
      const auto *New = cast<NewInstanceNode>(F);
      append({LOp::NewInstance, 0, ensureReg(New),
              static_cast<uint32_t>(New->instanceClass()), 0, 0});
      break;
    }
    case NodeKind::NewArray: {
      L.HasEffects = true;
      const auto *New = cast<NewArrayNode>(F);
      uint32_t Len = useVal(New->length());
      append({LOp::NewArray, static_cast<uint8_t>(New->elementType()),
              ensureReg(New), Len, 0, 0});
      break;
    }
    case NodeKind::LoadField: {
      const auto *Load = cast<LoadFieldNode>(F);
      uint32_t Obj = useVal(Load->object());
      append({LOp::LoadField, 0, ensureReg(Load), Obj,
              static_cast<uint32_t>(Load->field()), 0});
      break;
    }
    case NodeKind::StoreField: {
      L.HasEffects = true;
      const auto *Store = cast<StoreFieldNode>(F);
      uint32_t Obj = useVal(Store->object());
      uint32_t Val = useVal(Store->value());
      append({LOp::StoreField, 0, 0, Obj,
              static_cast<uint32_t>(Store->field()), Val});
      break;
    }
    case NodeKind::LoadIndexed: {
      const auto *Load = cast<LoadIndexedNode>(F);
      uint32_t Arr = useVal(Load->array());
      uint32_t Idx = useVal(Load->index());
      append({LOp::LoadIndexed, 0, ensureReg(Load), Arr, Idx, 0});
      break;
    }
    case NodeKind::StoreIndexed: {
      L.HasEffects = true;
      const auto *Store = cast<StoreIndexedNode>(F);
      uint32_t Arr = useVal(Store->array());
      uint32_t Idx = useVal(Store->index());
      uint32_t Val = useVal(Store->value());
      append({LOp::StoreIndexed, 0, 0, Arr, Idx, Val});
      break;
    }
    case NodeKind::ArrayLength: {
      const auto *Len = cast<ArrayLengthNode>(F);
      uint32_t Arr = useVal(Len->array());
      append({LOp::ArrayLength, 0, ensureReg(Len), Arr, 0, 0});
      break;
    }
    case NodeKind::LoadStatic: {
      const auto *Load = cast<LoadStaticNode>(F);
      append({LOp::LoadStatic, 0, ensureReg(Load),
              static_cast<uint32_t>(Load->index()), 0, 0});
      break;
    }
    case NodeKind::StoreStatic: {
      L.HasEffects = true;
      const auto *Store = cast<StoreStaticNode>(F);
      uint32_t Val = useVal(Store->value());
      append({LOp::StoreStatic, 0, 0,
              static_cast<uint32_t>(Store->index()), Val, 0});
      break;
    }
    case NodeKind::MonitorEnter: {
      L.HasEffects = true;
      const auto *Mon = cast<MonitorEnterNode>(F);
      append({LOp::MonitorEnter, 0, 0, useVal(Mon->object()), 0, 0});
      break;
    }
    case NodeKind::MonitorExit: {
      L.HasEffects = true;
      const auto *Mon = cast<MonitorExitNode>(F);
      append({LOp::MonitorExit, 0, 0, useVal(Mon->object()), 0, 0});
      break;
    }
    case NodeKind::Invoke: {
      L.HasEffects = true;
      const auto *Inv = cast<InvokeNode>(F);
      LinearCode::CallDesc D;
      D.Callee = Inv->callee();
      D.Kind = Inv->callKind();
      D.FirstArg = static_cast<uint32_t>(L.CallArgRegs.size());
      D.NumArgs = Inv->numArgs();
      // Root-method callsites feed the speculation receiver statistics;
      // inlined invokes carry a callee-relative bci and stay unprofiled.
      if (const FrameStateNode *FS = Inv->state())
        if (FS->method() == G.method() && !FS->outer())
          D.Bci = FS->bci();
      for (unsigned K = 0; K != D.NumArgs; ++K)
        L.CallArgRegs.push_back(useVal(Inv->argAt(K)));
      uint32_t Idx = static_cast<uint32_t>(L.Calls.size());
      L.Calls.push_back(D);
      append({LOp::Invoke, 0, ensureReg(Inv), Idx, 0, 0});
      break;
    }
    case NodeKind::Materialize:
      emitMaterialize(cast<MaterializeNode>(F));
      break;

    default:
      jvm_unreachable("floating node in a basic block's fixed chain");
    }
  }

  void emitBlock(unsigned B) {
    CurBlock = B;
    BlockPc[B] = static_cast<uint32_t>(L.Insts.size());
    for (const FixedNode *F : S.Blocks[B].Nodes)
      emitFixed(F);
  }

  const Graph &G;
  const BlockSchedule &S;
  LinearCode &L;
  std::vector<int> RegOf;
  std::vector<uint8_t> Emitted;
  std::vector<std::vector<const Node *>> FloatsIn;
  std::vector<uint32_t> BlockPc;
  std::vector<Patch> Patches;
  std::map<int64_t, uint32_t> IntPoolIndex;
  std::vector<PhiNode *> PhiScratch;
  unsigned NextReg = 0;
  unsigned CurBlock = 0;
};

} // namespace

std::unique_ptr<LinearCode> jvm::translateGraph(const Graph &G,
                                                const BlockSchedule &S) {
  auto L = std::make_unique<LinearCode>();
  Translator(G, S, *L).run();
  return L;
}

std::unique_ptr<LinearCode> jvm::translateGraph(const Graph &G) {
  std::unique_ptr<BlockSchedule> S = computeBlockSchedule(G);
  return translateGraph(G, *S);
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

#if defined(__GNUC__) || defined(__clang__)
#define JVM_THREADED_DISPATCH 1
#else
#define JVM_THREADED_DISPATCH 0
#endif

LinearExecutor::LinearExecutor(Runtime &RT, CallHandler CallFn,
                               DeoptHandlerFn DeoptFn)
    : RT(RT), Call(std::move(CallFn)), Deopt(std::move(DeoptFn)) {
  // The pooled register frames of all active activations are GC roots
  // for the lifetime of the executor (frames above Depth are stale and
  // cleared before reuse, so they are deliberately not visited). The
  // visitor updates registers in place when a collection moves objects.
  RootToken = RT.heap().addRootProvider([this](const RootVisitor &Visit) {
    for (unsigned D = 0; D != Depth; ++D)
      for (Value &V : *FramePool[D])
        Visit(V);
  });
}

LinearExecutor::~LinearExecutor() { RT.heap().removeRootProvider(RootToken); }

HeapObject *jvm::allocateSideTableObject(Runtime &RT,
                                         const LinearCode::ObjTemplate &T) {
  if (T.IsArray)
    return RT.heap().allocateArray(T.ElemTy, T.NumEntries);
  return RT.allocateInstance(T.Cls);
}

void jvm::runMaterialize(Runtime &RT, const LinearCode &L,
                         const LinearCode::MatDesc &M, Value *R,
                         std::vector<Value> &MatScratch) {
  if (traceWants(TracePea))
    Tracer::get().instant(TracePea, "materialize", "method",
                          static_cast<int64_t>(L.method()), "objects",
                          static_cast<int64_t>(M.NumObjs));
  // Same observable order as the graph walker: allocate every object,
  // then per object fill its entries and replay its elided locks.
  MatScratch.clear();
  Runtime::RootScope Scope(RT, &MatScratch);
  for (uint32_t K = 0; K != M.NumObjs; ++K)
    MatScratch.push_back(
        Value::makeRef(allocateSideTableObject(RT, L.Objects[M.FirstObj + K])));
  for (uint32_t K = 0; K != M.NumObjs; ++K) {
    const LinearCode::ObjTemplate &T = L.Objects[M.FirstObj + K];
    HeapObject *O = MatScratch[K].asRef();
    for (uint32_t E = 0; E != T.NumEntries; ++E) {
      const LSlotRef &Slot = L.Slots[T.FirstEntry + E];
      // write (not raw setSlot): a large materialized object can be
      // born old, so its fill stores need the generational barrier.
      RT.heap().write(O, E,
                      Slot.K == LSlotRef::Reg ? R[Slot.Index]
                                              : MatScratch[Slot.Index]);
    }
    for (int32_t Lock = 0; Lock != T.LockDepth; ++Lock)
      RT.monitorEnter(O);
  }
  const LinearCode::Projection *Pr = L.Projections.data() + M.FirstProj;
  for (uint32_t K = 0; K != M.NumProjs; ++K)
    R[Pr[K].DstReg] = MatScratch[Pr[K].ObjIndex];
}

Value jvm::runDeopt(Runtime &RT, const LinearCode &L,
                    const LinearCode::DeoptDesc &D, const Value *R,
                    const DeoptHandlerFn &Deopt) {
  ++RT.metrics().Deopts;
  DeoptRequest Req;
  Req.Root = L.method();
  Req.Reason = D.Reason;
  Req.GuardId = D.GuardId;
  Req.Rematerialized = D.NumObjs;
  // Materialize the scalar-replaced objects in recorded (= walker
  // discovery) order; the scope keeps them rooted through the handler.
  std::vector<Value> Fresh;
  Fresh.reserve(D.NumObjs);
  Runtime::RootScope Scope(RT, &Fresh);
  for (uint32_t K = 0; K != D.NumObjs; ++K)
    Fresh.push_back(
        Value::makeRef(allocateSideTableObject(RT, L.Objects[D.FirstObj + K])));
  auto Resolve = [&](const LSlotRef &Slot) -> Value {
    switch (Slot.K) {
    case LSlotRef::Reg:
      return R[Slot.Index];
    case LSlotRef::Virtual:
      return Fresh[Slot.Index];
    case LSlotRef::Dead:
      return Value::makeInt(0);
    }
    jvm_unreachable("unknown slot reference kind");
  };
  for (uint32_t K = 0; K != D.NumObjs; ++K) {
    const LinearCode::ObjTemplate &T = L.Objects[D.FirstObj + K];
    HeapObject *O = Fresh[K].asRef();
    for (uint32_t E = 0; E != T.NumEntries; ++E)
      RT.heap().write(O, E, Resolve(L.Slots[T.FirstEntry + E]));
  }
  for (uint32_t K = 0; K != D.NumObjs; ++K) {
    const LinearCode::ObjTemplate &T = L.Objects[D.FirstObj + K];
    HeapObject *O = Fresh[K].asRef();
    for (int32_t Lock = 0; Lock != T.LockDepth; ++Lock)
      RT.monitorEnter(O);
  }
  for (uint32_t K = 0; K != D.NumFrames; ++K) {
    const LinearCode::FrameDesc &F = L.Frames[D.FirstFrame + K];
    ResumeFrame RF;
    RF.Method = F.Method;
    RF.Bci = F.Bci;
    RF.Reexecute = F.Reexecute;
    RF.Locals.reserve(F.NumLocals);
    for (uint32_t S = 0; S != F.NumLocals; ++S)
      RF.Locals.push_back(Resolve(L.Slots[F.FirstLocal + S]));
    RF.Stack.reserve(F.NumStack);
    for (uint32_t S = 0; S != F.NumStack; ++S)
      RF.Stack.push_back(Resolve(L.Slots[F.FirstStack + S]));
    Req.Frames.push_back(std::move(RF));
  }
  return Deopt(std::move(Req));
}

Value LinearExecutor::execute(const LinearCode &L,
                              const std::vector<Value> &Args) {
  ProfScope ProfFrame(ProfTierLinear, L.method());
  ++RT.metrics().CompiledCalls;
  assert(Args.size() == L.numParams() && "argument count mismatch");
  if (Depth == FramePool.size())
    FramePool.push_back(std::make_unique<std::vector<Value>>());
  std::vector<Value> &R = *FramePool[Depth];
  // Clearing drops stale references from the frame's previous use; the
  // assign never allocates once the frame reached this code's size.
  R.assign(L.numRegs(), Value());
  for (unsigned I = 0, E = L.numParams(); I != E; ++I)
    R[I] = Args[I];
  if (MoveScratch.size() < L.maxMoves())
    MoveScratch.resize(L.maxMoves());
  ++Depth;
  Value Result = run(L, R);
  --Depth;
  return Result;
}

Value LinearExecutor::run(const LinearCode &L, std::vector<Value> &R) {
  const Program &P = RT.program();
  RuntimeMetrics &RM = RT.metrics();
  const LInst *const Code = L.Insts.data();
  const LInst *IP = Code;
  const LInst *I = nullptr;
  // Per-op work accumulates locally and is flushed once on exit: the
  // metrics block is shared with broker workers' caches, and a per-op
  // shared-counter write in the hot loop costs real throughput.
  uint64_t Ops = 0;

  auto RefNonNull = [&](uint32_t Reg) -> HeapObject * {
    HeapObject *O = R[Reg].asRef();
    if (!O)
      reportCompiledTrap(L.method(), "null dereference");
    return O;
  };
  auto CheckedIndex = [&](const HeapObject *Arr, int64_t Idx) -> unsigned {
    if (Idx < 0 || Idx >= Arr->length())
      reportCompiledTrap(L.method(), "array index out of bounds");
    return static_cast<unsigned>(Idx);
  };

#if JVM_THREADED_DISPATCH
  // Label table indexed by LOp; order must match the enum exactly.
  static const void *const Table[NumLOps] = {
      &&L_ConstInt,     &&L_ConstNull,   &&L_Arith,       &&L_Compare,
      &&L_InstanceOf,   &&L_Branch,      &&L_Jump,        &&L_Ret,
      &&L_RetVoid,      &&L_NewInstance, &&L_NewArray,    &&L_LoadField,
      &&L_StoreField,   &&L_LoadIndexed, &&L_StoreIndexed, &&L_ArrayLength,
      &&L_LoadStatic,   &&L_StoreStatic, &&L_MonitorEnter, &&L_MonitorExit,
      &&L_Invoke,       &&L_Materialize, &&L_Deopt,       &&L_Trap};
#define JVM_CASE(Name) L_##Name:
#define JVM_NEXT()                                                            \
  do {                                                                        \
    ++Ops;                                                                    \
    I = IP++;                                                                 \
    goto *Table[static_cast<unsigned>(I->Op)];                                \
  } while (0)
  JVM_NEXT();
#else
#define JVM_CASE(Name) case LOp::Name:
#define JVM_NEXT() continue
  for (;;) {
    ++Ops;
    I = IP++;
    switch (I->Op) {
#endif

  JVM_CASE(ConstInt) {
    R[I->Dst] = Value::makeInt(L.IntPool[I->A]);
    JVM_NEXT();
  }
  JVM_CASE(ConstNull) {
    R[I->Dst] = Value::makeRef(nullptr);
    JVM_NEXT();
  }
  JVM_CASE(Arith) {
    R[I->Dst] = Value::makeInt(applyArith(static_cast<ArithKind>(I->Sub),
                                          R[I->A].asInt(), R[I->B].asInt()));
    JVM_NEXT();
  }
  JVM_CASE(Compare) {
    bool V;
    switch (static_cast<CmpKind>(I->Sub)) {
    case CmpKind::IntEq:
      V = R[I->A].asInt() == R[I->B].asInt();
      break;
    case CmpKind::IntLt:
      V = R[I->A].asInt() < R[I->B].asInt();
      break;
    case CmpKind::IntLe:
      V = R[I->A].asInt() <= R[I->B].asInt();
      break;
    case CmpKind::RefEq:
      V = R[I->A].asRef() == R[I->B].asRef();
      break;
    case CmpKind::IsNull:
      V = R[I->A].asRef() == nullptr;
      break;
    default:
      jvm_unreachable("unknown compare kind");
    }
    R[I->Dst] = Value::makeInt(V ? 1 : 0);
    JVM_NEXT();
  }
  JVM_CASE(InstanceOf) {
    HeapObject *O = R[I->A].asRef();
    ClassId Cls = static_cast<ClassId>(I->B);
    bool Is = O && !O->isArray() &&
              (I->Sub ? O->objectClass() == Cls
                      : P.isSubclassOf(O->objectClass(), Cls));
    R[I->Dst] = Value::makeInt(Is ? 1 : 0);
    JVM_NEXT();
  }
  JVM_CASE(Branch) {
    IP = Code + (R[I->A].asInt() != 0 ? I->B : I->C);
    JVM_NEXT();
  }
  JVM_CASE(Jump) {
    const LinearCode::MoveList &ML = L.MoveLists[I->B];
    const LinearCode::PhiMove *Mv = L.Moves.data() + ML.First;
    // Parallel semantics: all sources read before any destination is
    // written (phis may permute each other).
    for (uint32_t K = 0; K != ML.Count; ++K)
      MoveScratch[K] = R[Mv[K].Src];
    for (uint32_t K = 0; K != ML.Count; ++K)
      R[Mv[K].Dst] = MoveScratch[K];
    IP = Code + I->A;
    JVM_NEXT();
  }
  JVM_CASE(Ret) {
    RM.CompiledOps += Ops;
    return R[I->A];
  }
  JVM_CASE(RetVoid) {
    RM.CompiledOps += Ops;
    return Value::makeVoid();
  }
  JVM_CASE(NewInstance) {
    R[I->Dst] = Value::makeRef(
        RT.allocateInstance(static_cast<ClassId>(I->A)));
    JVM_NEXT();
  }
  JVM_CASE(NewArray) {
    R[I->Dst] = Value::makeRef(RT.heap().allocateArray(
        static_cast<ValueType>(I->Sub), R[I->A].asInt()));
    JVM_NEXT();
  }
  JVM_CASE(LoadField) {
    R[I->Dst] = RefNonNull(I->A)->slot(I->B);
    JVM_NEXT();
  }
  JVM_CASE(StoreField) {
    RT.heap().write(RefNonNull(I->A), I->B, R[I->C]);
    JVM_NEXT();
  }
  JVM_CASE(LoadIndexed) {
    HeapObject *Arr = RefNonNull(I->A);
    R[I->Dst] = Arr->slot(CheckedIndex(Arr, R[I->B].asInt()));
    JVM_NEXT();
  }
  JVM_CASE(StoreIndexed) {
    HeapObject *Arr = RefNonNull(I->A);
    RT.heap().write(Arr, CheckedIndex(Arr, R[I->B].asInt()), R[I->C]);
    JVM_NEXT();
  }
  JVM_CASE(ArrayLength) {
    R[I->Dst] = Value::makeInt(RefNonNull(I->A)->length());
    JVM_NEXT();
  }
  JVM_CASE(LoadStatic) {
    R[I->Dst] = RT.getStatic(static_cast<StaticIndex>(I->A));
    JVM_NEXT();
  }
  JVM_CASE(StoreStatic) {
    RT.setStatic(static_cast<StaticIndex>(I->A), R[I->B]);
    JVM_NEXT();
  }
  JVM_CASE(MonitorEnter) {
    RT.monitorEnter(RefNonNull(I->A));
    JVM_NEXT();
  }
  JVM_CASE(MonitorExit) {
    RT.monitorExit(RefNonNull(I->A));
    JVM_NEXT();
  }
  JVM_CASE(Invoke) {
    const LinearCode::CallDesc &D = L.Calls[I->A];
    std::vector<Value> CallArgs(D.NumArgs);
    const uint32_t *AR = L.CallArgRegs.data() + D.FirstArg;
    for (uint32_t K = 0; K != D.NumArgs; ++K)
      CallArgs[K] = R[AR[K]];
    MethodId Target = D.Callee;
    if (D.Kind == CallKind::Virtual) {
      HeapObject *Receiver = CallArgs[0].asRef();
      if (!Receiver)
        reportCompiledTrap(L.method(), "null receiver");
      Target = P.resolveVirtual(D.Callee, Receiver->objectClass());
      if (ProfileReceiver && D.Bci >= 0)
        ProfileReceiver(L.method(), D.Bci, Receiver->objectClass());
    }
    R[I->Dst] = Call(Target, std::move(CallArgs));
    JVM_NEXT();
  }
  JVM_CASE(Materialize) {
    runMaterialize(RT, L, L.Mats[I->A], R.data(), MatScratch);
    JVM_NEXT();
  }
  JVM_CASE(Deopt) {
    RM.CompiledOps += Ops;
    return runDeopt(RT, L, L.Deopts[I->A], R.data(), Deopt);
  }
  JVM_CASE(Trap) {
    RM.CompiledOps += Ops;
    reportCompiledTrap(L.method(), "unreachable code executed");
  }

#if !JVM_THREADED_DISPATCH
    }
    jvm_unreachable("invalid linear opcode");
  }
#endif
#undef JVM_CASE
#undef JVM_NEXT
}
