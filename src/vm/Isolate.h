//===- Isolate.h - Per-tenant VM state ------------------------------*- C++ -*-===//
///
/// \file
/// An Isolate is one tenant's worth of virtual machine: its heap
/// (region-based generational GC with TLABs), profiles, interpreter and
/// executor tiers, installed-code tables, metrics registry and compile
/// log, and the options snapshot it was created with. Everything a
/// guest program can observe lives here; nothing a guest program can
/// observe is shared with other isolates.
///
/// What IS shared — deliberately — are the process-wide services:
///
///  - the **CompileBroker** (vm/CompileBroker.h): one worker pool
///    compiles for every isolate. An isolate registers as a broker
///    client under its isolate id at construction and unregisters
///    (draining its queued and in-flight compiles) at destruction.
///    Worker count is fixed per process, so adding tenants adds zero
///    compiler threads.
///  - the **CodeCache** (jit/CodeCache.h): executable spans for all
///    isolates' native code come from one cache; each isolate's
///    method-indexed tables point into it, and spans are returned when
///    that isolate retires/reclaims the owning NativeCode.
///  - the **Tracer** (observability/Trace.h): one event stream for the
///    process; isolate-attributable events carry an "isolate" arg.
///
/// Execution semantics are unchanged from the single-VM design: methods
/// start in the profiling interpreter and are JIT-compiled once hot,
/// through graph building with speculative branch pruning and
/// devirtualization, inlining, canonicalization, GVN, the configured
/// escape analysis, and cleanup (the paper's Figure 1 context).
/// Compiled code runs as register-based linear code by default, as
/// copy-and-patch machine code under JVM_EXEC_MODE=native, or through
/// the graph walker; differential mode cross-checks the tiers.
/// Deoptimizations resume in the interpreter and repeatedly failing
/// methods are invalidated and re-profiled.
///
/// Threading model: ONE mutator thread calls into each isolate
/// (call/invalidate/compileNow); any number of broker workers compile
/// and install concurrently, into any number of isolates. Retired code
/// (old graphs that may still have activations on the native stack) is
/// reclaimed at the owning isolate's safe points. Multi-tenant drivers
/// that want several app threads per isolate serialize them externally
/// (see workloads/MultiTenant.h) — cross-isolate concurrency needs no
/// locks beyond the shared services' own.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_VM_ISOLATE_H
#define JVM_VM_ISOLATE_H

#include "compiler/CompilerOptions.h"
#include "compiler/Phase.h"
#include "interp/Interpreter.h"
#include "jit/CodeCache.h"
#include "jit/NativeCode.h"
#include "jit/NativeExecutor.h"
#include "memory/MemoryConfig.h"
#include "observability/CompileLog.h"
#include "observability/Metrics.h"
#include "observability/Trace.h"
#include "pea/PartialEscapeAnalysis.h"
#include "runtime/Runtime.h"
#include "spesh/SpeshStats.h"
#include "vm/GraphExecutor.h"
#include "vm/LinearCode.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace jvm {

class CompileBroker;
struct CompileResult;

/// Number of compiler threads the process-wide broker starts by default:
/// the hardware concurrency (at least 1). JVM_COMPILER_THREADS overrides.
unsigned defaultCompilerThreads();

/// The default CompilerOptions with the environment applied: JVM_SPESH=1
/// turns the speculation planner on (anything other than 0/1 is a fatal
/// configuration error, matching JVM_EXEC_MODE).
CompilerOptions defaultCompilerOptions();

/// Guard failures of one speculation before it is despecialized
/// (blocklisted + recompiled without it). JVM_SPESH_THRESHOLD overrides;
/// must parse as a positive integer or startup is a fatal error.
uint64_t defaultSpeshFailThreshold();

/// Loop back edges (per method x loop-header bci, counted while
/// interpreted) before an on-stack-replacement compile triggers.
/// JVM_OSR_THRESHOLD overrides; 0 disables OSR. Must parse as a
/// non-negative integer or startup is a fatal error. OSR is only active
/// when speculation is enabled (JVM_SPESH=1).
uint64_t defaultOsrThreshold();

/// Which tier executes compiled methods.
enum class ExecMode : uint8_t {
  /// Walk the installed graph directly (GraphExecutor). Debug aid and
  /// the baseline the linear tier is benchmarked against.
  Graph,
  /// Run the register-based linear translation (LinearExecutor). The
  /// default; falls back to the walker for methods without linear code
  /// (Compiler.EmitLinearCode off).
  Linear,
  /// Run the copy-and-patch machine code (NativeExecutor); falls back
  /// to linear for methods the emitter declined, then to the walker.
  Native,
  /// Cross-check the tiers against each other: calls whose compiled
  /// code is effect-free run under every available tier and the results
  /// must match exactly (re-running effectful code would double its
  /// side effects; such calls run the best single tier). Mismatch is a
  /// fatal VM bug.
  Differential,
};

/// Parses an exec-mode name ("graph", "linear", "native",
/// "differential"/"both"). Returns false on anything else.
bool execModeFromName(const char *Name, ExecMode &M);

/// The mode a JVM_EXEC_MODE value selects: empty/unset means Linear,
/// anything unrecognized is a hard configuration error (fatal) naming
/// the valid modes — a bench run silently falling back to the wrong
/// tier would corrupt its comparison.
ExecMode execModeFromEnvironment(const char *Text);

/// execModeFromEnvironment applied to the process env snapshot's
/// JVM_EXEC_MODE, resolved once.
ExecMode defaultExecMode();

/// Short lower-case name for \p M ("graph", "linear", "native",
/// "differential").
const char *execModeName(ExecMode M);

/// The setting a JVM_SPESH value selects: empty/unset means off,
/// anything other than "0"/"1" is a hard configuration error (fatal)
/// naming the valid settings — same contract as JVM_EXEC_MODE.
bool speshFromEnvironment(const char *Text);

/// Shared parser for the integer speculation knobs (JVM_SPESH_THRESHOLD,
/// JVM_OSR_THRESHOLD): unset/empty selects \p Default; anything that is
/// not a whole base-10 integer in the allowed range is fatal, listing
/// the valid settings. \p Var names the variable in the error.
uint64_t speshCountFromEnvironment(const char *Var, const char *Text,
                                   uint64_t Default, bool ZeroAllowed);

struct VMOptions {
  CompilerOptions Compiler = defaultCompilerOptions();
  bool EnableJit = true;
  /// Guard failures of one speculation site before despecialization:
  /// the site is blocklisted in the durable SpeshStats and the method
  /// recompiles without it (at most once per blocklisted site).
  uint64_t SpeshFailThreshold = defaultSpeshFailThreshold();
  /// Loop back edges before an OSR compile of that loop triggers
  /// (0 = OSR off). Only consulted when Compiler.EnableSpesh is on.
  uint64_t OsrThreshold = defaultOsrThreshold();
  /// Hotness (invocations + back edges / 8) before a method compiles.
  /// High enough that branch and receiver profiles mature first — a
  /// method compiled with immature profiles misses devirtualization and,
  /// since it never deoptimizes, would stay pessimal forever.
  uint64_t CompileThreshold = 200;
  /// Deoptimizations of one compiled method before it is thrown away and
  /// re-profiled.
  uint64_t MaxDeoptsPerMethod = 3;
  /// 0 = legacy synchronous mode: compile on the caller thread at the
  /// threshold crossing (every compilation is a mutator stall; never
  /// touches the broker). Any nonzero value = asynchronous compilation
  /// through the process-wide CompileBroker; the value no longer sizes
  /// a private pool — pool size is a process decision
  /// (JVM_COMPILER_THREADS / defaultCompilerThreads()), constant however
  /// many isolates exist.
  unsigned CompilerThreads = defaultCompilerThreads();
  /// Which tier runs compiled methods (see ExecMode).
  ExecMode Exec = defaultExecMode();
  /// Emit machine code for every installed method (when the backend
  /// supports the host). Off = the native tier never exists, whatever
  /// Exec says; useful for isolating the emitter in tests.
  bool EnableNativeTier = true;
  /// Heap sizing/policy (region size, young capacity, promotion age,
  /// GC stress). Defaults read JVM_HEAP_YOUNG / JVM_HEAP_REGION /
  /// JVM_GC_STRESS from the process env snapshot; tests override fields
  /// directly.
  memory::MemoryConfig Memory = memory::MemoryConfig::fromEnvironment();
};

/// Counters describing one isolate's compilation activity. Written under
/// the isolate's state lock (workers and mutator); read them from the
/// mutator after waitForCompilerIdle() for a consistent snapshot.
struct JitMetrics {
  uint64_t Compilations = 0;      ///< graphs actually installed
  uint64_t Invalidations = 0;
  uint64_t CompilesDiscarded = 0; ///< finished after invalidation; dropped
  uint64_t RetiredReclaimed = 0;  ///< retired graphs freed at safe points
  uint64_t CompileNanos = 0;      ///< total pipeline time (all threads)
  /// Mutator-thread time spent blocked on compilation: the whole
  /// pipeline in synchronous mode, just snapshot + enqueue with a
  /// background broker. The number bench_compile_latency reports.
  uint64_t MutatorStallNanos = 0;
  /// Per-phase pipeline time and run counts, keyed by phase name
  /// ("build", "canon", "inline", "gvn", "dce", "escape-partial", ...).
  /// Sums to ~CompileNanos; one row per phase the plans actually ran.
  PhaseTimes PhaseNanos;
  /// Cleanup fixpoints that hit their round cap without converging.
  uint64_t FixpointCapHits = 0;
  // Native tier ---------------------------------------------------------
  uint64_t NativeMethods = 0;   ///< native bodies this isolate installed
  uint64_t NativeFallbacks = 0; ///< emissions declined; linear served
  uint64_t NativeEmitNanos = 0; ///< total emission time (all threads)
  // Broker queue behavior ----------------------------------------------
  /// Process-wide queue high water observed from this isolate (the
  /// queue is shared; per-isolate depth is not a defined quantity).
  uint64_t QueueDepthHighWater = 0;
  uint64_t EnqueueToInstallNanos = 0;    ///< summed over installed graphs
  uint64_t EnqueueToInstallNanosMax = 0;
  PEAStats EscapeStats; ///< aggregated over all compilations
};

/// Counters describing one isolate's speculation activity. Same locking
/// discipline as JitMetrics: written under the state lock, read from the
/// mutator after waitForCompilerIdle().
struct SpeshMetrics {
  uint64_t Plans = 0;             ///< installed compiles w/ non-empty plan
  uint64_t GuardsPlanted = 0;     ///< speculations across installed plans
  uint64_t GuardFailures = 0;     ///< guard-attributed deopts taken
  uint64_t Despecializations = 0; ///< sites blocklisted past the threshold
  uint64_t OsrCompiles = 0;       ///< loop entry versions compiled
  uint64_t OsrEntries = 0;        ///< interpreter frames transferred mid-loop
  /// Escape-analysis work of the OSR loop versions alone. OSR compiles
  /// are *extra* compilations a speculation-off run never performs, so
  /// comparisons of PEA work across spesh on/off subtract this share
  /// from JitMetrics::EscapeStats (which keeps aggregating everything).
  PEAStats OsrEscapeStats;
};

class Isolate {
public:
  Isolate(const Program &P, VMOptions Options);
  /// Unregisters from the process broker first — queued compiles are
  /// dropped, in-flight ones finish installing or discarding — so no
  /// worker can touch this isolate once teardown proceeds. Then appends
  /// the JVM_METRICS_JSON / JVM_COMPILE_LOG records (one per isolate,
  /// tagged with the isolate id).
  ~Isolate();

  Isolate(const Isolate &) = delete;
  Isolate &operator=(const Isolate &) = delete;

  /// Process-unique tenant id, assigned at construction (starts at 1;
  /// never reused). Doubles as the broker client id and the "isolate"
  /// arg on trace events and metrics records.
  uint32_t id() const { return Id; }

  /// Tiered call: runs compiled code when available, otherwise
  /// interprets (and requests compilation once the threshold is crossed).
  Value call(MethodId Method, std::vector<Value> Args);

  /// Convenience for tests/benchmarks: call with no profiling threshold
  /// games — just dispatch.
  Value call(MethodId Method, std::initializer_list<Value> Args) {
    return call(Method, std::vector<Value>(Args));
  }

  Runtime &runtime() { return RT; }
  const Runtime &runtime() const { return RT; }
  ProfileData &profiles() { return Profiles; }
  const VMOptions &options() const { return Options; }
  JitMetrics &jitMetrics() { return Jit; }
  SpeshMetrics &speshMetrics() { return SpeshM; }

  /// The durable speculation statistics (receiver/branch/argument
  /// histograms, guard-failure counts, blocklists). Mutator-thread only.
  SpeshStats &speshStats() { return Spesh; }

  /// The per-isolate metrics registry: every RuntimeMetrics/JitMetrics/
  /// PEAStats field is registered here (as a dump-time gauge), plus the
  /// live histograms (enqueue-to-install and mutator-stall latency), the
  /// isolate id, and the process tracer's drop/high-water counters.
  /// Dump from the mutator after waitForCompilerIdle() for a consistent
  /// snapshot.
  MetricsRegistry &metricsRegistry() { return Registry; }

  /// The per-method compilation log (phases, PEA decisions, installs,
  /// deopts). Populated on every pipeline run; always on.
  CompileLog &compileLog() { return CLog; }

  /// One coherent text table of every registered metric.
  std::string dumpMetricsText() { return Registry.dumpText(); }

  /// The same as one flat JSON object (what JVM_METRICS_JSON appends).
  /// Contains "isolate.id", so records from different isolates in one
  /// process never collide.
  std::string dumpMetricsJson() { return Registry.dumpJson(); }

  /// The "top residual allocation sites PEA did not remove" report:
  /// the profiler's sampled allocation sites for this isolate, joined
  /// against the compile log's PEA decisions per method. Empty-bodied
  /// (header only) when allocation sampling never ran. The ~Isolate
  /// JVM_PROF=<path> hook appends this, one block per isolate.
  std::string renderResidualAllocationReport();

  /// Resets every measurement-window metric: RuntimeMetrics (including
  /// heap allocation counters and the per-call compiled/interpreted op
  /// counts), JitMetrics, and the registry's owned counters/histograms.
  /// Waits for this isolate's broker work first so no in-flight install
  /// writes into the cleared window. The bench harness calls this
  /// between warmup and measured iterations; see Harness::measureRow.
  void resetMetrics();

  /// The compiled graph of \p Method, or null. Lock-free: one acquire
  /// load, safe to call from the mutator at any time.
  const Graph *compiledGraph(MethodId Method) const {
    return States[Method].Code.load(std::memory_order_acquire);
  }

  /// The linear translation of \p Method's compiled code, or null (not
  /// compiled, or compiled without EmitLinearCode). Lock-free.
  const LinearCode *compiledLinear(MethodId Method) const {
    return States[Method].Linear.load(std::memory_order_acquire);
  }

  /// The installed machine code of \p Method, or null (not compiled,
  /// native tier disabled, or the emitter fell back). Lock-free.
  const NativeCode *compiledNative(MethodId Method) const {
    return States[Method].Native.load(std::memory_order_acquire);
  }

  /// The process-shared executable-memory cache backing the native tier.
  /// Its counters cover every isolate; this isolate's share is
  /// jitMetrics().NativeMethods and the method-indexed tables.
  const CodeCache &codeCache() const;

  /// Forces compilation of \p Method now, on the caller thread
  /// (benchmark warmup control). Any in-flight background compile of the
  /// method is discarded in favor of this one.
  void compileNow(MethodId Method);

  /// Drops compiled code for \p Method. An in-flight background compile
  /// enqueued against the old code is discarded instead of installed.
  void invalidate(MethodId Method);

  /// Blocks until the process broker has nothing queued or in flight
  /// *for this isolate* (other tenants' compiles may still be running).
  /// No-op in synchronous mode. Establishes the happens-before edge that
  /// makes reading jitMetrics()/compiledGraph() race-free afterwards.
  void waitForCompilerIdle();

private:
  Value executeCompiled(MethodId Method, const Graph &G,
                        std::vector<Value> &Args);
  /// Threshold crossing: enqueue on the broker, or compile inline in
  /// synchronous mode.
  void requestCompile(MethodId Method);
  void compileSync(MethodId Method);
  /// Publishes \p R for \p Method if its code version still matches
  /// \p Version; discards otherwise. Called from workers and the
  /// synchronous path alike. Returns true if installed. \p Hotness is
  /// the trigger hotness, recorded in the compilation log.
  bool installCode(MethodId Method, uint64_t Version, CompileResult &&R,
                   uint64_t EnqueueNanos, uint64_t Hotness);
  /// Registers every isolate metric into the registry (constructor).
  void registerMetrics();
  /// Frees all retired graphs. Only called at a safe point: the mutator
  /// has no compiled activation on its stack.
  void reclaimRetired();
  Value handleDeopt(DeoptRequest &&Req);
  /// Folds the live interpreter profile into the durable speculation
  /// statistics and snapshots them for one compile of \p Method.
  /// Mutator thread only (same discipline as ProfileSnapshot).
  SpeshSnapshot makeSpeshSnapshot(MethodId Method);
  /// The interpreter's back-edge hook: counts (method, loop-header bci)
  /// hotness, triggers a synchronous OSR compile at the threshold, and
  /// transfers the frame into the compiled loop version. Returns true
  /// with \p Out holding the method result if compiled code finished the
  /// activation.
  bool handleOsr(MethodId Method, int TargetBci, std::vector<Value> &Locals,
                 Value &Out);

  struct MethodState {
    /// The published code pointer — the only thing the mutator's fast
    /// path reads. Owned by `Owned` below.
    std::atomic<const Graph *> Code{nullptr};
    /// The linear translation of `Code`, published before it (both with
    /// release stores). The mutator may briefly observe the old graph
    /// with the new linear code — benign: both are correct translations
    /// of the method, and retired code outlives the activation.
    std::atomic<const LinearCode *> Linear{nullptr};
    /// The machine code emitted from `Linear`, published before both
    /// (same release-store ordering argument). Null when the emitter
    /// fell back or the tier is disabled.
    std::atomic<const NativeCode *> Native{nullptr};
    /// True while a compile request for this method is queued or in
    /// flight (mutator sets, worker clears): the dedup fast path that
    /// keeps the mutator from re-snapshotting profiles on every call
    /// while a compile is pending.
    std::atomic<bool> CompilePending{false};
    // Fields below are guarded by StateMutex. --------------------------
    std::unique_ptr<Graph> Owned;
    std::unique_ptr<LinearCode> OwnedLinear;
    /// References OwnedLinear's tables; retired and reclaimed together
    /// with it (the NativeCode destructor returns the executable span
    /// to the process CodeCache).
    std::unique_ptr<NativeCode> OwnedNative;
    /// Invalidated graphs are retired, not destroyed: activations of the
    /// old code may still be on the native stack (an invalidation is
    /// triggered from a deoptimization *inside* that very code). They
    /// are reclaimed at the next safe point.
    std::vector<std::unique_ptr<Graph>> Retired;
    std::vector<std::unique_ptr<LinearCode>> RetiredLinear;
    std::vector<std::unique_ptr<NativeCode>> RetiredNative;
    /// Bumped on every invalidation (and forced compile); in-flight
    /// compiles carry the version they were enqueued against and are
    /// discarded on mismatch.
    uint64_t Version = 0;
    uint64_t DeoptCount = 0;
    uint64_t Recompiles = 0;
    /// The speculation plan the installed code was built with: guard id
    /// i of the running code is Spesh.Specs[i]. Failing guards report
    /// their id through the deopt path and are attributed here. Guarded
    /// by StateMutex (installed by workers, read on the deopt path).
    SpeshPlan Spesh;
    /// Last tier this method was observed executing in, for tier-
    /// transition trace instants (0 = interpreter, 1 = graph walker,
    /// 2 = linear, 3 = native). Mutator-only; maintained only while
    /// tracing.
    uint8_t TracedTier = 0;
  };

  const uint32_t Id;
  const Program &P;
  VMOptions Options;
  Runtime RT;
  ProfileData Profiles;
  Interpreter Interp;
  GraphExecutor Executor;
  LinearExecutor LinExecutor;
  NativeExecutor NatExecutor;
  std::vector<MethodState> States;
  JitMetrics Jit;
  SpeshMetrics SpeshM; ///< guarded by StateMutex, like Jit
  MetricsRegistry Registry;
  CompileLog CLog;
  /// Durable speculation statistics (outlive individual compilations).
  /// Mutator-thread only; workers see them via SpeshSnapshot at enqueue.
  SpeshStats Spesh;

  // On-stack replacement state. All mutator-only: OSR compiles run
  // synchronously on the mutator thread and entries happen from the
  // interpreter loop, so none of this needs the state lock. ------------
  /// One compiled loop-entry version, keyed by (method, entry bci).
  struct OsrCode {
    std::unique_ptr<Graph> G;
    std::unique_ptr<LinearCode> Linear;
    std::unique_ptr<NativeCode> Native; ///< declared last: unmapped first
    uint64_t Version = 0; ///< method code version when compiled
  };
  std::map<std::pair<MethodId, int>, OsrCode> OsrTable;
  /// Invalidation retires OSR code here (an activation may be live on
  /// the stack — the invalidating deopt came from inside it); freed with
  /// the regular retired lists at the next safe point.
  std::vector<OsrCode> RetiredOsr;
  /// Back edges taken at each (method, target bci) while interpreted.
  std::map<std::pair<MethodId, int>, uint64_t> OsrBackedges;
  /// Cache of osrEntrySupported(): the structural test walks the
  /// bytecode, so its verdict is computed once per site.
  std::map<std::pair<MethodId, int>, bool> OsrSupport;
  /// Cached registry histograms (stable addresses; recording is
  /// lock-free, so hot paths never touch the registry mutex).
  MetricHistogram *EnqueueToInstallHist = nullptr;
  MetricHistogram *MutatorStallHist = nullptr;
  /// Guards MethodState's non-atomic fields and Jit. Never held while
  /// calling into the broker, so the two locks never nest.
  std::mutex StateMutex;
  /// Depth of compiled-code activations on the mutator stack; retired
  /// graphs are reclaimed only at depth 0.
  unsigned CompiledDepth = 0;
  std::atomic<bool> HasRetired{false};
  /// The process-wide broker this isolate is registered with, or null
  /// in synchronous mode (CompilerThreads = 0 / EnableJit off). Not
  /// owned; registration is released in the destructor.
  CompileBroker *Broker = nullptr;
};

} // namespace jvm

#endif // JVM_VM_ISOLATE_H
