//===- GraphExecutor.h - Direct execution of optimized IR -----------*- C++ -*-===//
///
/// \file
/// Runs an optimized graph against the runtime: walks the fixed-node
/// control flow, evaluates floating expressions on demand, performs
/// allocations/field accesses/monitor operations for real, dispatches
/// Invokes through the VM and — on reaching a Deoptimize sink — converts
/// the attached frame state (including its scalar-replaced virtual
/// objects, paper Section 5.5) back into interpreter frames.
///
/// This is our stand-in for Graal's machine-code backend; see DESIGN.md
/// ("what we substitute") for why direct IR execution preserves the
/// paper's measurable effects.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_VM_GRAPHEXECUTOR_H
#define JVM_VM_GRAPHEXECUTOR_H

#include "interp/Interpreter.h"
#include "ir/Graph.h"
#include "runtime/Runtime.h"

#include <functional>
#include <memory>

namespace jvm {

/// Everything the VM needs to continue execution in the interpreter
/// after compiled code bailed out.
struct DeoptRequest {
  MethodId Root = NoMethod; ///< Method whose compiled code deoptimized.
  DeoptReason Reason = DeoptReason::BranchNeverTaken;
  /// Scalar-replaced virtual objects rebuilt on the heap for this deopt
  /// (Section 5.5 rematerialization) — surfaced in traces and the
  /// compilation log.
  unsigned Rematerialized = 0;
  /// Index into the installed code's speculation plan when a planner
  /// guard failed; NoSpeculationId (the default) for builder-inserted
  /// pruning/devirtualization deopts. Drives despecialization.
  uint32_t GuardId = NoSpeculationId;
  std::vector<ResumeFrame> Frames; ///< Innermost first.
};

/// Handles a deoptimization (typically: bookkeeping + Interpreter::resume).
using DeoptHandlerFn = std::function<Value(DeoptRequest &&)>;

class GraphExecutor {
public:
  /// Reusable per-activation storage: the node-indexed environment the
  /// walk evaluates into plus the scratch vectors of phi transfers and
  /// materializes. Pooled per recursion depth (Invokes re-enter the
  /// executor through the VM) so steady-state calls never allocate
  /// nodeIdBound-sized vectors.
  struct FrameStorage {
    std::vector<Value> Env;
    /// Rooted copy of the activation's arguments (the caller's vector
    /// may be an unrooted temporary; parameters must survive a moving
    /// collection mid-call).
    std::vector<Value> ArgCopy;
    std::vector<uint8_t> Pinned;
    std::vector<uint64_t> CachedAt;
    std::vector<PhiNode *> PhiScratch;
    std::vector<Value> ScratchValues;
    std::vector<Value> MatScratch;
  };

  GraphExecutor(Runtime &RT, CallHandler CallFn, DeoptHandlerFn DeoptFn)
      : RT(RT), Call(std::move(CallFn)), Deopt(std::move(DeoptFn)) {}

  /// Executes \p G with \p Args; returns the method result.
  Value execute(const Graph &G, const std::vector<Value> &Args);

private:
  Runtime &RT;
  CallHandler Call;
  DeoptHandlerFn Deopt;
  std::vector<std::unique_ptr<FrameStorage>> FramePool;
  unsigned Depth = 0;
};

} // namespace jvm

#endif // JVM_VM_GRAPHEXECUTOR_H
