//===- GraphExecutor.cpp - Direct execution of optimized IR -------------------===//

#include "vm/GraphExecutor.h"

#include "ir/Printer.h"
#include "observability/Profiler.h"
#include "observability/Trace.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"
#include "vm/LinearCode.h"

#include <cstdio>

using namespace jvm;

namespace {

class ExecutionContext {
public:
  ExecutionContext(Runtime &RT, const Graph &G,
                   const std::vector<Value> &Args, const CallHandler &Call,
                   const DeoptHandlerFn &Deopt,
                   GraphExecutor::FrameStorage &S)
      : RT(RT), P(RT.program()), G(G), Args(S.ArgCopy), Call(Call),
        Deopt(Deopt), S(S), Env(S.Env), Pinned(S.Pinned),
        CachedAt(S.CachedAt), EnvRoots(RT, &Env), ArgRoots(RT, &S.ArgCopy) {
    // Copy the arguments into pooled, *rooted* storage: the caller's
    // vector may be an unrooted temporary, and objects now move — a
    // collection mid-call must be able to update the parameter slots.
    S.ArgCopy.assign(Args.begin(), Args.end());
    // The assigns clear the frame's previous activation (the environment
    // is a GC root, so stale references must go) and never allocate once
    // the pooled frame has grown to this graph's size.
    unsigned Bound = G.nodeIdBound();
    Env.assign(Bound, Value());
    Pinned.assign(Bound, 0);
    CachedAt.assign(Bound, 0);
  }

  Value run() {
    ++RT.metrics().CompiledCalls;
    RuntimeMetrics &RM = RT.metrics();
    // Per-op work accumulates locally and is flushed once on exit; a
    // shared-counter increment per walked node is measurable overhead.
    uint64_t Ops = 0;
    const FixedNode *N = G.start();
    for (;;) {
      ++Ops;
      switch (N->kind()) {
      case NodeKind::Start:
      case NodeKind::Begin:
      case NodeKind::LoopExit:
      case NodeKind::Merge:
      case NodeKind::LoopBegin:
        N = cast<FixedWithNextNode>(N)->next();
        break;

      case NodeKind::If: {
        const auto *If = cast<IfNode>(N);
        N = evalInt(If->condition()) != 0 ? If->trueSuccessor()
                                          : If->falseSuccessor();
        break;
      }

      case NodeKind::End: {
        const auto *End = cast<EndNode>(N);
        MergeNode *M = End->merge();
        transferPhis(M, M->indexOfEnd(End));
        N = M;
        break;
      }
      case NodeKind::LoopEnd: {
        const auto *End = cast<LoopEndNode>(N);
        LoopBeginNode *M = End->loopBegin();
        transferPhis(M, M->indexOfEnd(End));
        N = M;
        break;
      }

      case NodeKind::Return: {
        const auto *Ret = cast<ReturnNode>(N);
        RM.CompiledOps += Ops;
        return Ret->hasValue() ? eval(Ret->value()) : Value::makeVoid();
      }

      case NodeKind::Deoptimize:
        RM.CompiledOps += Ops;
        return deoptimize(cast<DeoptimizeNode>(N));

      case NodeKind::Unreachable:
        RM.CompiledOps += Ops;
        reportCompiledTrap(G.method(), "unreachable code executed");

      case NodeKind::NewInstance: {
        const auto *New = cast<NewInstanceNode>(N);
        pin(New, Value::makeRef(RT.allocateInstance(New->instanceClass())));
        N = New->next();
        break;
      }
      case NodeKind::NewArray: {
        const auto *New = cast<NewArrayNode>(N);
        int64_t Len = evalInt(New->length());
        pin(New, Value::makeRef(RT.heap().allocateArray(New->elementType(),
                                                        Len)));
        N = New->next();
        break;
      }

      case NodeKind::LoadField: {
        const auto *Load = cast<LoadFieldNode>(N);
        HeapObject *Obj = evalRefNonNull(Load->object());
        pin(Load, Obj->slot(Load->field()));
        N = Load->next();
        break;
      }
      case NodeKind::StoreField: {
        const auto *Store = cast<StoreFieldNode>(N);
        HeapObject *Obj = evalRefNonNull(Store->object());
        RT.heap().write(Obj, Store->field(), eval(Store->value()));
        N = Store->next();
        break;
      }

      case NodeKind::LoadIndexed: {
        const auto *Load = cast<LoadIndexedNode>(N);
        HeapObject *Arr = evalRefNonNull(Load->array());
        pin(Load, Arr->slot(checkedIndex(Arr, evalInt(Load->index()))));
        N = Load->next();
        break;
      }
      case NodeKind::StoreIndexed: {
        const auto *Store = cast<StoreIndexedNode>(N);
        HeapObject *Arr = evalRefNonNull(Store->array());
        unsigned Idx = checkedIndex(Arr, evalInt(Store->index()));
        RT.heap().write(Arr, Idx, eval(Store->value()));
        N = Store->next();
        break;
      }
      case NodeKind::ArrayLength: {
        const auto *Len = cast<ArrayLengthNode>(N);
        pin(Len, Value::makeInt(evalRefNonNull(Len->array())->length()));
        N = Len->next();
        break;
      }

      case NodeKind::LoadStatic: {
        const auto *Load = cast<LoadStaticNode>(N);
        pin(Load, RT.getStatic(Load->index()));
        N = Load->next();
        break;
      }
      case NodeKind::StoreStatic: {
        const auto *Store = cast<StoreStaticNode>(N);
        RT.setStatic(Store->index(), eval(Store->value()));
        N = Store->next();
        break;
      }

      case NodeKind::MonitorEnter: {
        const auto *Mon = cast<MonitorEnterNode>(N);
        RT.monitorEnter(evalRefNonNull(Mon->object()));
        N = Mon->next();
        break;
      }
      case NodeKind::MonitorExit: {
        const auto *Mon = cast<MonitorExitNode>(N);
        RT.monitorExit(evalRefNonNull(Mon->object()));
        N = Mon->next();
        break;
      }

      case NodeKind::Invoke: {
        const auto *Inv = cast<InvokeNode>(N);
        std::vector<Value> CallArgs(Inv->numArgs());
        for (unsigned I = 0, E = Inv->numArgs(); I != E; ++I)
          CallArgs[I] = eval(Inv->argAt(I));
        MethodId Target = Inv->callee();
        if (Inv->callKind() == CallKind::Virtual) {
          HeapObject *Receiver = CallArgs[0].asRef();
          if (!Receiver)
            reportCompiledTrap(G.method(), "null receiver");
          Target = P.resolveVirtual(Inv->callee(), Receiver->objectClass());
        }
        pin(Inv, Call(Target, std::move(CallArgs)));
        N = Inv->next();
        break;
      }

      case NodeKind::Materialize:
        executeMaterialize(cast<MaterializeNode>(N));
        N = cast<MaterializeNode>(N)->next();
        break;

      default:
        jvm_unreachable("floating node in the fixed control flow walk");
      }
    }
  }

private:
  //===------------------------------------------------------------------===//
  // Expression evaluation
  //===------------------------------------------------------------------===//

  /// Pure floating expressions are memoized per "phi version": results
  /// stay valid until any phi is reassigned (loop back edges, merges).
  /// Without this, scalar-replaced arithmetic would be re-evaluated at
  /// every use — penalizing exactly the graphs escape analysis produces
  /// (a real backend keeps these values in registers).
  Value eval(const Node *N) {
    assert(N && "evaluating a null value");
    unsigned Id = N->id();
    if (Pinned[Id])
      return Env[Id]; // Fixed results, phis, allocated objects.
    switch (N->kind()) {
    case NodeKind::ConstantInt:
      return Value::makeInt(cast<ConstantIntNode>(N)->value());
    case NodeKind::ConstantNull:
      return Value::makeRef(nullptr);
    case NodeKind::Parameter:
      return Args[cast<ParameterNode>(N)->index()];
    default:
      break;
    }
    if (CachedAt[Id] == Version)
      return Env[Id];
    Value Result;
    switch (N->kind()) {
    case NodeKind::Arith: {
      const auto *A = cast<ArithNode>(N);
      Result = Value::makeInt(
          applyArith(A->op(), evalInt(A->x()), evalInt(A->y())));
      break;
    }
    case NodeKind::Compare:
      Result = Value::makeInt(evalCompare(cast<CompareNode>(N)) ? 1 : 0);
      break;
    case NodeKind::InstanceOf: {
      const auto *IO = cast<InstanceOfNode>(N);
      HeapObject *O = eval(IO->object()).asRef();
      bool Is = O && !O->isArray() &&
                (IO->isExact()
                     ? O->objectClass() == IO->testedClass()
                     : P.isSubclassOf(O->objectClass(), IO->testedClass()));
      Result = Value::makeInt(Is ? 1 : 0);
      break;
    }
    default:
      std::fprintf(stderr, "eval: unexpected node kind %s (id %u) in:\n%s\n",
                   nodeKindName(N->kind()), Id, graphToString(G).c_str());
      jvm_unreachable("unexpected node kind in eval");
    }
    Env[Id] = Result;
    CachedAt[Id] = Version;
    return Result;
  }

  void pin(const Node *N, Value V) {
    Env[N->id()] = V;
    Pinned[N->id()] = 1;
  }

  int64_t evalInt(const Node *N) { return eval(N).asInt(); }

  HeapObject *evalRefNonNull(const Node *N) {
    HeapObject *O = eval(N).asRef();
    if (!O)
      reportCompiledTrap(G.method(), "null dereference");
    return O;
  }

  unsigned checkedIndex(const HeapObject *Arr, int64_t Idx) {
    if (Idx < 0 || Idx >= Arr->length())
      reportCompiledTrap(G.method(), "array index out of bounds");
    return static_cast<unsigned>(Idx);
  }

  bool evalCompare(const CompareNode *C) {
    switch (C->op()) {
    case CmpKind::IntEq:
      return evalInt(C->x()) == evalInt(C->y());
    case CmpKind::IntLt:
      return evalInt(C->x()) < evalInt(C->y());
    case CmpKind::IntLe:
      return evalInt(C->x()) <= evalInt(C->y());
    case CmpKind::RefEq:
      return eval(C->x()).asRef() == eval(C->y()).asRef();
    case CmpKind::IsNull:
      return eval(C->x()).asRef() == nullptr;
    }
    jvm_unreachable("unknown compare kind");
  }

  /// Simultaneous phi assignment when entering \p M through end \p Index.
  void transferPhis(MergeNode *M, int Index) {
    assert(Index >= 0 && "control entered a merge through a foreign end");
    M->phis(S.PhiScratch);
    const std::vector<PhiNode *> &Phis = S.PhiScratch;
    S.ScratchValues.resize(Phis.size());
    for (unsigned I = 0, E = Phis.size(); I != E; ++I)
      S.ScratchValues[I] = eval(Phis[I]->valueAt(Index));
    for (unsigned I = 0, E = Phis.size(); I != E; ++I)
      pin(Phis[I], S.ScratchValues[I]);
    ++Version; // Pure expressions over phis must be recomputed.
  }

  //===------------------------------------------------------------------===//
  // Materialization and deoptimization
  //===------------------------------------------------------------------===//

  HeapObject *allocateForVirtual(const VirtualObjectNode *VO) {
    if (VO->isArray())
      return RT.heap().allocateArray(VO->elementType(), VO->numEntries());
    return RT.allocateInstance(VO->objectClass());
  }

  void executeMaterialize(const MaterializeNode *Commit) {
    unsigned NumObjs = Commit->numObjects();
    if (traceWants(TracePea))
      Tracer::get().instant(TracePea, "materialize", "method",
                            static_cast<int64_t>(G.method()), "objects",
                            static_cast<int64_t>(NumObjs));
    if (NumObjs == 1) {
      // Fast path: no sibling resolution, no scratch state. Entry
      // evaluation is pure (it cannot allocate), so the fresh object
      // needs no GC root while its fields are filled.
      const VirtualObjectNode *VO = Commit->objectAt(0);
      HeapObject *O = allocateForVirtual(VO);
      for (unsigned E = 0, EE = VO->numEntries(); E != EE; ++E) {
        const Node *Entry = Commit->entryOf(0, E);
        // write (not raw setSlot): a large materialized object can be
        // born old, so its fill stores need the generational barrier.
        RT.heap().write(O, E, Entry == VO ? Value::makeRef(O) : eval(Entry));
      }
      for (int L = 0; L != Commit->lockDepthOf(0); ++L)
        RT.monitorEnter(O);
      for (const Node *U : Commit->usages())
        if (const auto *AO = dyn_cast<AllocatedObjectNode>(U))
          if (AO->commit() == Commit)
            pin(AO, Value::makeRef(O));
      return;
    }
    // Entry evaluation is pure, so the scratch cannot be clobbered by a
    // nested materialize; the scope roots the fresh objects while their
    // siblings allocate.
    std::vector<Value> &Fresh = S.MatScratch;
    Fresh.assign(NumObjs, Value());
    Runtime::RootScope Scope(RT, &Fresh);

    for (unsigned I = 0; I != NumObjs; ++I)
      Fresh[I] = Value::makeRef(allocateForVirtual(Commit->objectAt(I)));
    auto indexOf = [&](const VirtualObjectNode *VO) -> unsigned {
      for (unsigned I = 0; I != NumObjs; ++I)
        if (Commit->objectAt(I) == VO)
          return I;
      jvm_unreachable("entry references a foreign virtual object");
    };
    // Fill entries; entries referencing sibling virtual objects resolve
    // to the freshly allocated cells (cyclic structures).
    for (unsigned I = 0; I != NumObjs; ++I) {
      const VirtualObjectNode *VO = Commit->objectAt(I);
      HeapObject *O = Fresh[I].asRef();
      for (unsigned E = 0; E != VO->numEntries(); ++E) {
        const Node *Entry = Commit->entryOf(I, E);
        Value V;
        if (const auto *Sibling = dyn_cast<VirtualObjectNode>(Entry))
          V = Fresh[indexOf(Sibling)];
        else
          V = eval(Entry);
        RT.heap().write(O, E, V);
      }
      // Re-acquire elided locks on the now-real object.
      for (int L = 0; L != Commit->lockDepthOf(I); ++L)
        RT.monitorEnter(O);
    }
    // Publish the projections.
    for (const Node *U : Commit->usages())
      if (const auto *AO = dyn_cast<AllocatedObjectNode>(U))
        if (AO->commit() == Commit)
          pin(AO, Fresh[AO->objectIndex()]);
  }

  Value deoptimize(const DeoptimizeNode *N) {
    ++RT.metrics().Deopts;
    DeoptRequest Req;
    Req.Root = G.method();
    Req.Reason = N->reason();
    Req.GuardId = N->speculationId();

    // Materialize every virtual object mapped anywhere in the state
    // chain. Local vectors, not executor scratch: the deopt handler runs
    // the interpreter, which may re-enter compiled code while Fresh is
    // still rooted.
    std::vector<Value> Fresh;
    Runtime::RootScope Scope(RT, &Fresh);
    std::vector<const VirtualObjectNode *> Virtuals;
    auto indexOf = [&](const VirtualObjectNode *VO) -> int {
      for (unsigned I = 0, E = Virtuals.size(); I != E; ++I)
        if (Virtuals[I] == VO)
          return static_cast<int>(I);
      return -1;
    };
    for (const FrameStateNode *FS = N->state(); FS; FS = FS->outer()) {
      for (unsigned I = 0, E = FS->numVirtualMappings(); I != E; ++I) {
        const VirtualObjectNode *VO = FS->mappedObject(I);
        if (indexOf(VO) >= 0)
          continue;
        Virtuals.push_back(VO);
        Fresh.push_back(Value::makeRef(allocateForVirtual(VO)));
      }
    }
    auto Resolve = [&](const Node *V) -> Value {
      if (!V)
        return Value::makeInt(0); // Dead slot.
      if (const auto *VO = dyn_cast<VirtualObjectNode>(V)) {
        int Idx = indexOf(VO);
        assert(Idx >= 0 && "unmapped virtual object in state");
        return Fresh[Idx];
      }
      return eval(V);
    };
    // Fill fields and re-acquire elided locks.
    for (const FrameStateNode *FS = N->state(); FS; FS = FS->outer()) {
      for (unsigned I = 0, E = FS->numVirtualMappings(); I != E; ++I) {
        const VirtualObjectNode *VO = FS->mappedObject(I);
        const auto &M = FS->virtualMapping(I);
        HeapObject *O = Fresh[indexOf(VO)].asRef();
        // The same object may be mapped by several states in the chain;
        // the snapshots are identical, so filling twice is harmless.
        for (unsigned EI = 0; EI != M.NumEntries; ++EI)
          RT.heap().write(O, EI, Resolve(FS->mappedEntry(I, EI)));
      }
    }
    std::vector<uint8_t> Locked(Virtuals.size(), 0);
    for (const FrameStateNode *FS = N->state(); FS; FS = FS->outer()) {
      for (unsigned I = 0, E = FS->numVirtualMappings(); I != E; ++I) {
        int Idx = indexOf(FS->mappedObject(I));
        if (Locked[Idx])
          continue;
        Locked[Idx] = 1;
        HeapObject *O = Fresh[Idx].asRef();
        for (int L = 0; L != FS->virtualMapping(I).LockDepth; ++L)
          RT.monitorEnter(O);
      }
    }

    Req.Rematerialized = static_cast<unsigned>(Virtuals.size());

    // Build the interpreter frames, innermost first.
    for (const FrameStateNode *FS = N->state(); FS; FS = FS->outer()) {
      ResumeFrame RF;
      RF.Method = FS->method();
      RF.Bci = FS->bci();
      RF.Reexecute = FS->isReexecute();
      for (unsigned I = 0, E = FS->numLocals(); I != E; ++I)
        RF.Locals.push_back(Resolve(FS->localAt(I)));
      for (unsigned I = 0, E = FS->numStack(); I != E; ++I)
        RF.Stack.push_back(Resolve(FS->stackAt(I)));
      Req.Frames.push_back(std::move(RF));
    }
    return Deopt(std::move(Req));
  }

  Runtime &RT;
  const Program &P;
  const Graph &G;
  const std::vector<Value> &Args;
  const CallHandler &Call;
  const DeoptHandlerFn &Deopt;
  GraphExecutor::FrameStorage &S;
  std::vector<Value> &Env;
  std::vector<uint8_t> &Pinned;
  std::vector<uint64_t> &CachedAt;
  uint64_t Version = 1;
  Runtime::RootScope EnvRoots;
  Runtime::RootScope ArgRoots;
};

} // namespace

Value GraphExecutor::execute(const Graph &G, const std::vector<Value> &Args) {
  ProfScope ProfFrame(ProfTierGraph, G.method());
  if (Depth == FramePool.size())
    FramePool.push_back(std::make_unique<FrameStorage>());
  FrameStorage &S = *FramePool[Depth];
  ++Depth;
  Value Result = ExecutionContext(RT, G, Args, Call, Deopt, S).run();
  --Depth;
  return Result;
}
