//===- Isolate.cpp - Per-tenant VM state ---------------------------------------===//

#include "vm/Isolate.h"

#include "ir/Graph.h"
#include "observability/Profiler.h"
#include "support/Debug.h"
#include "support/Env.h"
#include "vm/CompileBroker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

using namespace jvm;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Tenant ids, process-unique and never reused: the broker, the tracer
/// and the metrics records all key on them, and a reused id could stitch
/// a dead tenant's events onto a live one in post-processed output.
std::atomic<uint32_t> NextIsolateId{1};

} // namespace

unsigned jvm::defaultCompilerThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

bool jvm::execModeFromName(const char *Name, ExecMode &M) {
  if (!Name)
    return false;
  if (std::strcmp(Name, "linear") == 0)
    M = ExecMode::Linear;
  else if (std::strcmp(Name, "graph") == 0)
    M = ExecMode::Graph;
  else if (std::strcmp(Name, "native") == 0)
    M = ExecMode::Native;
  else if (std::strcmp(Name, "differential") == 0 ||
           std::strcmp(Name, "both") == 0)
    M = ExecMode::Differential;
  else
    return false;
  return true;
}

ExecMode jvm::execModeFromEnvironment(const char *Text) {
  if (!Text || !*Text)
    return ExecMode::Linear;
  ExecMode M;
  if (execModeFromName(Text, M))
    return M;
  // A typo here must not silently select a different tier: a benchmark
  // or differential run would happily produce numbers for the wrong
  // configuration.
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "unknown JVM_EXEC_MODE '%s' "
                "(valid: graph, linear, native, differential)",
                Text);
  reportFatalError(Buf, __FILE__, __LINE__);
}

ExecMode jvm::defaultExecMode() {
  static const ExecMode Mode =
      execModeFromEnvironment(EnvSnapshot::process().ExecMode);
  return Mode;
}

const char *jvm::execModeName(ExecMode M) {
  switch (M) {
  case ExecMode::Graph:
    return "graph";
  case ExecMode::Linear:
    return "linear";
  case ExecMode::Native:
    return "native";
  case ExecMode::Differential:
    return "differential";
  }
  return "unknown";
}

Isolate::Isolate(const Program &P, VMOptions Options)
    : Id(NextIsolateId.fetch_add(1, std::memory_order_relaxed)), P(P),
      Options(Options), RT(P, Options.Memory), Profiles(P.numMethods()),
      Interp(RT, Profiles),
      Executor(
          RT,
          [this](MethodId Target, std::vector<Value> &&Args) {
            return call(Target, std::move(Args));
          },
          [this](DeoptRequest &&Req) { return handleDeopt(std::move(Req)); }),
      LinExecutor(
          RT,
          [this](MethodId Target, std::vector<Value> &&Args) {
            return call(Target, std::move(Args));
          },
          [this](DeoptRequest &&Req) { return handleDeopt(std::move(Req)); }),
      NatExecutor(
          RT,
          [this](MethodId Target, std::vector<Value> &&Args) {
            return call(Target, std::move(Args));
          },
          [this](DeoptRequest &&Req) { return handleDeopt(std::move(Req)); }),
      States(P.numMethods()), CLog(P.numMethods()) {
  Interp.setCallHandler([this](MethodId Target, std::vector<Value> &&Args) {
    return call(Target, std::move(Args));
  });
  RT.heap().setTraceIsolateId(Id);
  registerMetrics();
  // Snapshot method names for the profiler: it sits below the bytecode
  // layer in the link order and must symbolize samples (folded stacks,
  // reports) after this isolate is gone. Ids are never reused.
  {
    std::vector<std::string> Names(P.numMethods());
    for (unsigned M = 0; M != P.numMethods(); ++M)
      Names[M] = P.methodAt(M).Name;
    Profiler::get().registerIsolate(Id, std::move(Names));
  }
  if (Options.EnableJit && Options.CompilerThreads > 0) {
    // Asynchronous mode: become a client of the process-wide broker.
    // The pool (sized once, from JVM_COMPILER_THREADS) is shared by all
    // isolates — registering adds a queue tenant, not threads.
    Broker = &CompileBroker::process();
    Broker->registerClient(
        Id, P, Options.Compiler,
        [this](CompileBroker::Task &&T, CompileResult &&R) {
          installCode(T.Method, T.Version, std::move(R), T.EnqueueNanos,
                      T.Hotness);
          // Clear the dedup flag last: once visible, the mutator may
          // request a fresh compile of this method.
          States[T.Method].CompilePending.store(false,
                                                std::memory_order_release);
        });
  }
}

Isolate::~Isolate() {
  // Sever the broker link before anything else: queued compiles for
  // this isolate are dropped, in-flight ones finish installing or
  // discarding, and after this returns no worker holds a reference to
  // us — the rest of teardown can proceed single-threaded.
  if (Broker)
    Broker->unregisterClient(Id);

  // Environment-driven end-of-isolate dumps. Both append — one
  // block/object per isolate — so multi-isolate processes (and the test
  // binaries, which create many short-lived isolates) leave every
  // tenant's data in the file, each tagged with its isolate id.
  const EnvSnapshot &Env = EnvSnapshot::process();
  if (EnvSnapshot::isSet(Env.MetricsJson)) {
    if (std::FILE *F = std::fopen(Env.MetricsJson, "a")) {
      std::string Json = dumpMetricsJson() + "\n";
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
    }
  }
  if (EnvSnapshot::isSet(Env.CompileLog)) {
    if (std::FILE *F = std::fopen(Env.CompileLog, "a")) {
      std::string Text = CLog.renderText();
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    }
  }
  // JVM_PROF=<path> (any value other than "1") appends the residual-
  // allocation report: the sampled sites PEA did *not* remove, joined
  // against this isolate's compile-log PEA decisions. Rendered here —
  // the profiler has the samples, but only the isolate can reach the
  // Program (class names) and the CompileLog.
  if (EnvSnapshot::isSet(Env.Prof) && std::strcmp(Env.Prof, "1") != 0) {
    if (std::FILE *F = std::fopen(Env.Prof, "a")) {
      std::string Text = renderResidualAllocationReport();
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    }
  }
}

const CodeCache &Isolate::codeCache() const { return CodeCache::process(); }

std::string Isolate::renderResidualAllocationReport() {
  Profiler &Prof = Profiler::get();
  std::vector<Profiler::AllocSite> Sites = Prof.allocSites(Id);
  std::string Out;
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "== residual-allocations isolate=%u exec=%s ea=%s sites=%zu ==\n",
      Id, execModeName(Options.Exec),
      escapeAnalysisModeName(Options.Compiler.EAMode), Sites.size());
  Out += Buf;
  // Sites arrive sorted by estimated bytes, heaviest first — the "top
  // residual allocation sites PEA did not remove" per Table 1 row.
  constexpr size_t MaxShown = 10;
  size_t Shown = 0;
  for (const Profiler::AllocSite &S : Sites) {
    if (Shown == MaxShown) {
      std::snprintf(Buf, sizeof(Buf), "  ... %zu more sites\n",
                    Sites.size() - Shown);
      Out += Buf;
      break;
    }
    ++Shown;
    std::string MName = (S.Method >= 0 && unsigned(S.Method) < P.numMethods())
                            ? P.methodAt(MethodId(S.Method)).Name
                            : Prof.methodName(Id, S.Method);
    std::string CName = (S.Class >= 0 && unsigned(S.Class) < P.numClasses())
                            ? P.classAt(ClassId(S.Class)).Name
                            : std::string("array");
    std::snprintf(Buf, sizeof(Buf),
                  "  site method=%s bci=%d class=%s samples=%llu "
                  "est_bytes=%llu avg_object_bytes=%llu\n",
                  MName.c_str(), S.Bci, CName.c_str(),
                  static_cast<unsigned long long>(S.Count),
                  static_cast<unsigned long long>(S.Bytes),
                  static_cast<unsigned long long>(
                      S.Count ? S.SizeSum / S.Count : 0));
    Out += Buf;
    // The compile-log PEA decision this site survived: prefer the last
    // installed compile (what actually ran); fall back to the last
    // attempt; "never compiled" marks interpreter-resident sites.
    if (S.Method >= 0 && unsigned(S.Method) < P.numMethods()) {
      std::vector<CompileLog::Record> Recs =
          CLog.recordsFor(unsigned(S.Method));
      const CompileLog::Record *Best = nullptr;
      for (const CompileLog::Record &R : Recs)
        if (R.Installed)
          Best = &R;
      if (!Best && !Recs.empty())
        Best = &Recs.back();
      if (Best) {
        std::snprintf(
            Buf, sizeof(Buf),
            "    pea: seq=%llu installed=%d virtualized_allocations=%u "
            "materialize_sites=%u\n",
            static_cast<unsigned long long>(Best->CompileSeq),
            Best->Installed ? 1 : 0, Best->Escape.VirtualizedAllocations,
            Best->Escape.MaterializeSites);
        Out += Buf;
      } else {
        Out += "    pea: never compiled (interpreter-resident site)\n";
      }
    } else {
      Out += "    pea: no method attribution\n";
    }
  }
  if (Sites.empty())
    Out += "  (no allocation samples recorded)\n";
  return Out;
}

void Isolate::registerMetrics() {
  // Identity first: every dumped record (JVM_METRICS_JSON appends one
  // object per isolate) must say which tenant it describes.
  Registry.gauge("isolate.id", [this] { return uint64_t(Id); });

  // RuntimeMetrics + heap: live sources, read at dump time.
  Registry.gauge("runtime.interpreted_ops",
                 [this] { return RT.metrics().InterpretedOps; });
  Registry.gauge("runtime.interpreted_calls",
                 [this] { return RT.metrics().InterpretedCalls; });
  Registry.gauge("runtime.compiled_ops",
                 [this] { return RT.metrics().CompiledOps; });
  Registry.gauge("runtime.compiled_calls",
                 [this] { return RT.metrics().CompiledCalls; });
  Registry.gauge("runtime.monitor_ops",
                 [this] { return RT.metrics().MonitorOps; });
  Registry.gauge("runtime.deopts", [this] { return RT.metrics().Deopts; });
  Registry.gauge("heap.allocations",
                 [this] { return RT.heap().allocationCount(); });
  Registry.gauge("heap.allocated_bytes",
                 [this] { return RT.heap().allocatedBytes(); });
  Registry.gauge("heap.gc_runs", [this] { return RT.heap().gcRuns(); });
  Registry.gauge("heap.live_objects",
                 [this] { return RT.heap().liveObjects(); });
  // Generational-collector behaviour (PR 5): collection counts, copy
  // volume, occupancy, and pause-time percentiles from the heap-owned
  // log2 histograms.
  Registry.gauge("heap.scavenges", [this] { return RT.heap().scavenges(); });
  Registry.gauge("heap.full_gcs", [this] { return RT.heap().fullGcs(); });
  Registry.gauge("heap.bytes_copied",
                 [this] { return RT.heap().bytesCopied(); });
  Registry.gauge("heap.bytes_promoted",
                 [this] { return RT.heap().bytesPromoted(); });
  Registry.gauge("heap.young_bytes",
                 [this] { return uint64_t(RT.heap().youngBytes()); });
  Registry.gauge("heap.old_bytes",
                 [this] { return uint64_t(RT.heap().oldBytes()); });
  Registry.gauge("heap.scavenge_pause_p50_ns", [this] {
    return RT.heap().scavengePauses().percentileUpperBound(0.5);
  });
  Registry.gauge("heap.scavenge_pause_p99_ns", [this] {
    return RT.heap().scavengePauses().percentileUpperBound(0.99);
  });
  Registry.gauge("heap.full_gc_pause_p99_ns", [this] {
    return RT.heap().fullGcPauses().percentileUpperBound(0.99);
  });
  // Card-table remembered set + parallel scavenge (PR 8): barrier and
  // card-scan volume, copy-phase fan-out, and the adaptive young cap
  // the pause-budget controller settled on.
  Registry.gauge("gc.cards_dirtied",
                 [this] { return RT.heap().cardsDirtied(); });
  Registry.gauge("gc.cards_scanned",
                 [this] { return RT.heap().cardsScanned(); });
  Registry.gauge("gc.workers",
                 [this] { return uint64_t(RT.heap().lastGcWorkers()); });
  Registry.gauge("gc.young_capacity_bytes", [this] {
    return uint64_t(RT.heap().youngCapacityBytes());
  });
  // Per-worker copy volume: worker count is runtime-dependent, so a
  // provider emits one entry per worker that ever ran.
  Registry.provider(
      [this](const std::function<void(const std::string &, uint64_t)> &Emit) {
        std::vector<uint64_t> Copied = RT.heap().workerCopiedBytes();
        for (size_t I = 0; I != Copied.size(); ++I)
          Emit("gc.worker." + std::to_string(I) + ".copied_bytes", Copied[I]);
      });

  // JitMetrics (and the PEAStats it aggregates): guarded by StateMutex,
  // so each gauge takes it — dump-time only cost.
  auto JitGauge = [this](const char *Name, uint64_t JitMetrics::*Field) {
    Registry.gauge(Name, [this, Field] {
      std::lock_guard<std::mutex> L(StateMutex);
      return Jit.*Field;
    });
  };
  JitGauge("jit.compilations", &JitMetrics::Compilations);
  JitGauge("jit.invalidations", &JitMetrics::Invalidations);
  JitGauge("jit.compiles_discarded", &JitMetrics::CompilesDiscarded);
  JitGauge("jit.retired_reclaimed", &JitMetrics::RetiredReclaimed);
  JitGauge("jit.compile_nanos", &JitMetrics::CompileNanos);
  JitGauge("jit.mutator_stall_nanos", &JitMetrics::MutatorStallNanos);
  JitGauge("jit.fixpoint_cap_hits", &JitMetrics::FixpointCapHits);
  JitGauge("jit.queue_depth_high_water", &JitMetrics::QueueDepthHighWater);
  JitGauge("jit.enqueue_to_install_nanos", &JitMetrics::EnqueueToInstallNanos);
  JitGauge("jit.enqueue_to_install_nanos_max",
           &JitMetrics::EnqueueToInstallNanosMax);
  // Native tier: this isolate's emission activity, plus the *process*
  // code cache's live footprint (spans from every isolate — per-tenant
  // share is jit.native_methods and the method tables).
  JitGauge("jit.native_methods", &JitMetrics::NativeMethods);
  JitGauge("jit.native_fallbacks", &JitMetrics::NativeFallbacks);
  JitGauge("jit.native_emit_nanos", &JitMetrics::NativeEmitNanos);
  Registry.gauge("code.cache_reserved_bytes",
                 [] { return CodeCache::process().reservedBytes(); });
  Registry.gauge("code.cache_code_bytes",
                 [] { return CodeCache::process().codeBytes(); });
  Registry.gauge("code.cache_methods",
                 [] { return CodeCache::process().methods(); });
  auto PeaGauge = [this](const char *Name, unsigned PEAStats::*Field) {
    Registry.gauge(Name, [this, Field] {
      std::lock_guard<std::mutex> L(StateMutex);
      return uint64_t(Jit.EscapeStats.*Field);
    });
  };
  PeaGauge("pea.virtualized_allocations", &PEAStats::VirtualizedAllocations);
  PeaGauge("pea.materialize_sites", &PEAStats::MaterializeSites);
  PeaGauge("pea.scalar_replaced_loads", &PEAStats::ScalarReplacedLoads);
  PeaGauge("pea.scalar_replaced_stores", &PEAStats::ScalarReplacedStores);
  PeaGauge("pea.elided_monitor_ops", &PEAStats::ElidedMonitorOps);
  PeaGauge("pea.folded_checks", &PEAStats::FoldedChecks);
  PeaGauge("pea.loop_iterations", &PEAStats::LoopIterations);
  PeaGauge("pea.virtualized_states", &PEAStats::VirtualizedStates);

  // Per-phase pipeline time: names are dynamic (whatever the plans ran),
  // so a provider emits them at dump time.
  Registry.provider(
      [this](const std::function<void(const std::string &, uint64_t)> &Emit) {
        std::lock_guard<std::mutex> L(StateMutex);
        for (const PhaseTimes::Entry &E : Jit.PhaseNanos.Entries) {
          Emit("jit.phase." + E.Name + ".nanos", E.Nanos);
          Emit("jit.phase." + E.Name + ".runs", E.Runs);
        }
      });

  // Tracer health: ring overflow must never be silent. The perf-smoke
  // trace run asserts dropped_events == 0 at the default ring size.
  // Process-wide source (the tracer is shared), same as code.cache_*.
  Registry.gauge("trace.dropped_events",
                 [] { return Tracer::get().droppedEvents(); });
  Registry.gauge("trace.ring_high_water",
                 [] { return Tracer::get().highWater(); });
  Registry.gauge("trace.ring_capacity",
                 [] { return uint64_t(Tracer::get().ringCapacity()); });

  // Sampling profiler: per-tier self-time for THIS isolate, plus the
  // same never-silent ring health counters as the tracer's. All zero
  // (and one map lookup each at dump time) when JVM_PROF is unset.
  // Like trace.*, the prof.* sources are process-lifetime: resetMetrics
  // does not clear them.
  Registry.gauge("prof.samples", [this] {
    Profiler &P = Profiler::get();
    uint64_t N = 0;
    for (unsigned T = 0; T != ProfNumTiers; ++T)
      N += P.samplesForIsolate(Id, ProfTier(T));
    return N;
  });
  auto TierGauge = [this](const char *Name, ProfTier T) {
    Registry.gauge(Name,
                   [this, T] { return Profiler::get().samplesForIsolate(Id, T); });
  };
  TierGauge("prof.samples_interp", ProfTierInterp);
  TierGauge("prof.samples_graph", ProfTierGraph);
  TierGauge("prof.samples_linear", ProfTierLinear);
  TierGauge("prof.samples_native", ProfTierNative);
  TierGauge("prof.samples_runtime", ProfTierRuntime);
  Registry.gauge("prof.alloc_samples",
                 [this] { return Profiler::get().allocSamplesForIsolate(Id); });
  Registry.gauge("prof.dropped_samples",
                 [] { return Profiler::get().droppedSamples(); });
  Registry.gauge("prof.ring_high_water",
                 [] { return Profiler::get().highWater(); });
  Registry.gauge("prof.ring_capacity",
                 [] { return uint64_t(Profiler::get().ringCapacity()); });
  Registry.gauge("prof.other_thread_samples",
                 [] { return Profiler::get().otherThreadSamples(); });
  Registry.gauge("prof.native_pc_resolved",
                 [] { return Profiler::get().pcResolved(); });
  Registry.gauge("prof.native_pc_miss",
                 [] { return Profiler::get().pcMisses(); });
  Registry.gauge("prof.truncated_frames",
                 [] { return Profiler::get().truncatedPushes(); });
  Registry.gauge("prof.unattributed",
                 [] { return Profiler::get().unattributedSamples(); });
  // Top-10 self-time methods (leaf attribution), symbolized: the
  // per-tier summary block of dumpMetricsText/dumpMetricsJson.
  Registry.provider(
      [this](const std::function<void(const std::string &, uint64_t)> &Emit) {
        Profiler &P = Profiler::get();
        for (const Profiler::MethodSamples &M : P.topMethods(Id, 10))
          Emit("prof.top." + P.methodName(Id, M.Method) + ".samples",
               M.Count);
      });

  // Live histograms, recorded on the install/stall paths (lock-free).
  EnqueueToInstallHist = &Registry.histogram("jit.enqueue_to_install_latency_ns");
  MutatorStallHist = &Registry.histogram("jit.mutator_stall_latency_ns");
}

void Isolate::resetMetrics() {
  // Drain our broker work first: an install racing the reset would
  // charge a warmup compile to the measured window (or worse, split it).
  waitForCompilerIdle();
  RT.resetMetrics();
  {
    std::lock_guard<std::mutex> L(StateMutex);
    Jit = JitMetrics();
  }
  Registry.reset();
}

Value Isolate::call(MethodId Method, std::vector<Value> Args) {
  // Tag this thread's profiler state with the executing tenant so ticks
  // and allocation samples attribute per-isolate. One relaxed load when
  // the profiler is off; a TLS store when it is on.
  if (profWantsSamples())
    profSetCurrentIsolate(Id);

  // Safe point: no compiled activation is on the stack, so code retired
  // by earlier invalidations can be freed.
  if (CompiledDepth == 0 && HasRetired.load(std::memory_order_relaxed))
    reclaimRetired();

  MethodState &MS = States[Method];
  if (const Graph *G = MS.Code.load(std::memory_order_acquire))
    return executeCompiled(Method, *G, Args);
  if (Options.EnableJit &&
      !MS.CompilePending.load(std::memory_order_acquire) &&
      Profiles.of(Method).hotness() >= Options.CompileThreshold) {
    // The acquire above pairs with the worker's release store that
    // clears the flag *after* installing: code may have landed between
    // the Code load up top and the flag load, and requesting now would
    // compile the method a second time.
    if (const Graph *G = MS.Code.load(std::memory_order_acquire))
      return executeCompiled(Method, *G, Args);
    requestCompile(Method);
    // Synchronous mode installs before returning; run the fresh code.
    if (const Graph *G = MS.Code.load(std::memory_order_acquire))
      return executeCompiled(Method, *G, Args);
  }
  return Interp.call(Method, std::move(Args));
}

Value Isolate::executeCompiled(MethodId Method, const Graph &G,
                               std::vector<Value> &Args) {
  Runtime::RootScope ArgRoots(RT, &Args);
  ++CompiledDepth;
  const LinearCode *L =
      Options.Exec == ExecMode::Graph
          ? nullptr
          : States[Method].Linear.load(std::memory_order_acquire);
  // The machine-code tier only dispatches in Native and Differential
  // modes; Linear mode must measure the linear dispatcher itself.
  const NativeCode *N = (Options.Exec == ExecMode::Native ||
                         Options.Exec == ExecMode::Differential) &&
                                L
                            ? States[Method].Native.load(
                                  std::memory_order_acquire)
                            : nullptr;
  if (traceWants(TraceTier)) {
    // Mutator-only bookkeeping: emit one instant per tier *change*, not
    // per call (interpreter -> compiled on the first compiled entry,
    // tier <-> tier when the mode or available code flips).
    MethodState &MS = States[Method];
    uint8_t Tier = N ? 3 : L ? 2 : 1;
    if (MS.TracedTier != Tier) {
      Tracer::get().instant(TraceTier, "tier-transition", "method",
                            static_cast<int64_t>(Method), "from",
                            MS.TracedTier, "to",
                            N ? "native" : L ? "linear" : "graph", "isolate",
                            static_cast<int64_t>(Id));
      MS.TracedTier = Tier;
    }
  }
  Value Result;
  if (!L) {
    // Graph mode, or the method compiled without EmitLinearCode.
    Result = Executor.execute(G, Args);
  } else if (Options.Exec == ExecMode::Differential && !L->hasEffects()) {
    // Effect-free code can run repeatedly without observable
    // consequences; every available tier must agree on the result
    // exactly.
    Value Walked = Executor.execute(G, Args);
    Result = LinExecutor.execute(*L, Args);
    if (!(Result == Walked))
      reportFatalError("differential execution mismatch between graph "
                       "and linear tiers",
                       __FILE__, __LINE__);
    if (N) {
      Value Native = NatExecutor.execute(*N, Args);
      if (!(Native == Result))
        reportFatalError("differential execution mismatch between linear "
                         "and native tiers",
                         __FILE__, __LINE__);
    }
  } else if (N) {
    // Native mode, or the effectful leg of differential mode (which
    // runs the best tier once — still full native coverage).
    Result = NatExecutor.execute(*N, Args);
  } else {
    Result = LinExecutor.execute(*L, Args);
  }
  --CompiledDepth;
  return Result;
}

void Isolate::requestCompile(MethodId Method) {
  if (!Broker) {
    compileSync(Method);
    return;
  }
  uint64_t Start = nowNanos();
  uint64_t Version;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    Version = States[Method].Version;
  }
  MethodState &MS = States[Method];
  MS.CompilePending.store(true, std::memory_order_relaxed);
  uint64_t Hotness = Profiles.of(Method).hotness();
  if (!Broker->enqueue(Id, Method, Hotness, Version,
                       ProfileSnapshot(Profiles, P, Method))) {
    MS.CompilePending.store(false, std::memory_order_relaxed);
    return;
  }
  if (traceWants(TraceCompile))
    Tracer::get().instant(TraceCompile, "enqueue", "method",
                          static_cast<int64_t>(Method), "hotness",
                          static_cast<int64_t>(Hotness), nullptr, nullptr,
                          "isolate", static_cast<int64_t>(Id));
  uint64_t HighWater = Broker->queueDepthHighWater();
  uint64_t Stall = nowNanos() - Start;
  MutatorStallHist->record(Stall);
  {
    std::lock_guard<std::mutex> L(StateMutex);
    Jit.QueueDepthHighWater = std::max(Jit.QueueDepthHighWater, HighWater);
    // With a broker the only mutator cost is the snapshot + enqueue.
    Jit.MutatorStallNanos += Stall;
  }
  // Wake a worker only after the stall window closed: on a saturated
  // machine the worker may preempt this thread the moment it is woken,
  // and its compile time must not be billed as mutator stall.
  Broker->kick();
}

void Isolate::compileNow(MethodId Method) { compileSync(Method); }

void Isolate::compileSync(MethodId Method) {
  uint64_t Start = nowNanos();
  uint64_t Version;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    // Bumping the version discards any in-flight background compile in
    // favor of this (fresher-profiled) one.
    Version = ++States[Method].Version;
  }
  uint64_t Hotness = Profiles.of(Method).hotness();
  CompileResult R = runCompilePipeline(
      P, Method, ProfileSnapshot(Profiles, P, Method), Options.Compiler, Id);
  installCode(Method, Version, std::move(R), Start, Hotness);
  uint64_t Stall = nowNanos() - Start;
  MutatorStallHist->record(Stall);
  std::lock_guard<std::mutex> L(StateMutex);
  Jit.MutatorStallNanos += Stall;
}

bool Isolate::installCode(MethodId Method, uint64_t Version, CompileResult &&R,
                          uint64_t EnqueueNanos, uint64_t Hotness) {
  // Lower the linear stream to machine code before taking the state
  // lock: emission is pure (it reads only the immutable LinearCode) and
  // runs on the compiling thread, so workers emit concurrently — for
  // this isolate or any other; the process CodeCache install path is
  // atomic-counter-only. A null result is the documented fallback — the
  // method keeps running on the linear tier.
  std::unique_ptr<NativeCode> Native;
  const bool TriedNative = R.Code != nullptr && Options.EnableNativeTier;
  if (TriedNative) {
    TraceScope EmitSpan(TraceCompile, "native-emit", "method",
                        static_cast<int64_t>(Method), "isolate",
                        static_cast<int64_t>(Id));
    Native = emitNativeCode(*R.Code, CodeCache::process());
  }

  uint64_t Now = nowNanos();

  // The log record is assembled outside the state lock (string copies);
  // whether it says "installed" is decided under it below.
  CompileLog::Record Rec;
  Rec.CompileSeq = R.CompileSeq;
  Rec.Hotness = Hotness;
  Rec.TotalNanos = R.TotalNanos;
  Rec.FinalNodes = R.G ? R.G->numLiveNodes() : 0;
  if (Native) {
    Rec.NativeEmitNanos = Native->emitNanos();
    Rec.NativeBytes = Native->codeSize();
  }
  Rec.Escape.VirtualizedAllocations = R.Stats.VirtualizedAllocations;
  Rec.Escape.MaterializeSites = R.Stats.MaterializeSites;
  Rec.Escape.ElidedMonitorOps = R.Stats.ElidedMonitorOps;
  Rec.Escape.VirtualizedStates = R.Stats.VirtualizedStates;
  Rec.Phases.reserve(R.Trail.size());
  for (const PhaseTrailEntry &T : R.Trail)
    Rec.Phases.push_back(CompileLog::PhaseRec{T.Name, T.Nanos, T.NodesBefore,
                                              T.NodesAfter, T.Changed});

  bool Installed = false;
  uint64_t Latency = Now - EnqueueNanos;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    // Pipeline cost is real whether or not the result installs.
    Jit.CompileNanos += R.TotalNanos;
    Jit.PhaseNanos += R.Phases;
    Jit.FixpointCapHits += R.FixpointCapHits;
    Jit.EscapeStats += R.Stats;

    MethodState &MS = States[Method];
    if (MS.Version != Version) {
      // The method was invalidated (or force-recompiled) after this
      // compile was enqueued: its speculations are based on a retracted
      // profile, drop it.
      ++Jit.CompilesDiscarded;
      JVM_DEBUG("discarded stale compile of m" << Method);
    } else {
      if (MS.Owned) {
        MS.Retired.push_back(std::move(MS.Owned));
        if (MS.OwnedLinear)
          MS.RetiredLinear.push_back(std::move(MS.OwnedLinear));
        if (MS.OwnedNative)
          MS.RetiredNative.push_back(std::move(MS.OwnedNative));
        HasRetired.store(true, std::memory_order_relaxed);
      }
      MS.Owned = std::move(R.G);
      MS.OwnedLinear = std::move(R.Code);
      MS.OwnedNative = std::move(Native);
      // Most-derived first: a mutator that sees the new graph must also
      // see its linear translation, and one that sees the linear code
      // must see its machine code (the inverse interleavings are benign,
      // see MethodState::Linear).
      MS.Native.store(MS.OwnedNative.get(), std::memory_order_release);
      MS.Linear.store(MS.OwnedLinear.get(), std::memory_order_release);
      MS.Code.store(MS.Owned.get(), std::memory_order_release);
      ++Jit.Compilations;
      if (MS.OwnedNative) {
        ++Jit.NativeMethods;
        Jit.NativeEmitNanos += MS.OwnedNative->emitNanos();
        // Publish the span into the signal-safe PC index (and the perf
        // map) now that its method identity is decided. The cache's
        // slot mutex never takes isolate locks, so ordering under
        // StateMutex is safe; the matching unregister is automatic in
        // CodeCache::release when the NativeCode is reclaimed.
        CodeCache::process().describe(MS.OwnedNative->span(), Method, Id,
                                      P.methodAt(Method).Name.c_str());
        // Env-gated debug dump, named so scripts/check_native.py can
        // match files 1:1 against compile-log records. Written under
        // the lock on purpose: the NativeCode must not be retired by a
        // concurrent install while we read its bytes, and the path is
        // debug-only.
        const char *DumpDir = EnvSnapshot::process().DumpNative;
        if (DumpDir && *DumpDir) {
          char Path[512];
          std::snprintf(Path, sizeof(Path), "%s/m%d.c%llu.bin", DumpDir,
                        static_cast<int>(Method),
                        static_cast<unsigned long long>(Rec.CompileSeq));
          if (std::FILE *F = std::fopen(Path, "wb")) {
            std::fwrite(MS.OwnedNative->codeBytes(), 1,
                        MS.OwnedNative->codeSize(), F);
            std::fclose(F);
          }
        }
      } else if (TriedNative) {
        ++Jit.NativeFallbacks;
      }
      Jit.EnqueueToInstallNanos += Latency;
      Jit.EnqueueToInstallNanosMax =
          std::max(Jit.EnqueueToInstallNanosMax, Latency);
      Rec.Installed = true;
      Rec.Version = MS.Version;
      Rec.EnqueueToInstallNanos = Latency;
      Installed = true;
      JVM_DEBUG("compiled m" << Method << " ("
                             << escapeAnalysisModeName(Options.Compiler.EAMode)
                             << ")");
    }
  }
  if (Installed)
    EnqueueToInstallHist->record(Latency);
  if (traceWants(TraceCode))
    Tracer::get().instant(TraceCode, Installed ? "install" : "discard-stale",
                          "method", static_cast<int64_t>(Method), "version",
                          static_cast<int64_t>(Rec.Version), nullptr, nullptr,
                          "isolate", static_cast<int64_t>(Id));
  CLog.addRecord(Method, std::move(Rec));
  return Installed;
}

void Isolate::invalidate(MethodId Method) {
  std::lock_guard<std::mutex> L(StateMutex);
  MethodState &MS = States[Method];
  if (!MS.Owned)
    return;
  ++MS.Version; // Discards any compile in flight for the old profile.
  MS.Code.store(nullptr, std::memory_order_release);
  MS.Linear.store(nullptr, std::memory_order_release);
  MS.Native.store(nullptr, std::memory_order_release);
  MS.Retired.push_back(std::move(MS.Owned));
  if (MS.OwnedLinear)
    MS.RetiredLinear.push_back(std::move(MS.OwnedLinear));
  if (MS.OwnedNative)
    MS.RetiredNative.push_back(std::move(MS.OwnedNative));
  HasRetired.store(true, std::memory_order_relaxed);
  MS.DeoptCount = 0;
  ++MS.Recompiles;
  ++Jit.Invalidations;
  // Back to the interpreter until recompiled; the next compiled entry is
  // a fresh tier transition.
  MS.TracedTier = 0;
  if (traceWants(TraceCode))
    Tracer::get().instant(TraceCode, "invalidate", "method",
                          static_cast<int64_t>(Method), "version",
                          static_cast<int64_t>(MS.Version), nullptr, nullptr,
                          "isolate", static_cast<int64_t>(Id));
  JVM_DEBUG("invalidated m" << Method);
}

void Isolate::reclaimRetired() {
  // Destroy outside the lock; workers only need the lists unlinked.
  // Native bodies precede their linear code in the doomed lists (the
  // NativeCode destructor unmaps while its LinearCode is still alive;
  // vector destruction order makes that hold regardless).
  std::vector<std::unique_ptr<Graph>> Doomed;
  std::vector<std::unique_ptr<LinearCode>> DoomedLinear;
  std::vector<std::unique_ptr<NativeCode>> DoomedNative;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    for (MethodState &MS : States) {
      for (std::unique_ptr<Graph> &G : MS.Retired) {
        Doomed.push_back(std::move(G));
        ++Jit.RetiredReclaimed;
      }
      for (std::unique_ptr<LinearCode> &LC : MS.RetiredLinear)
        DoomedLinear.push_back(std::move(LC));
      for (std::unique_ptr<NativeCode> &NC : MS.RetiredNative)
        DoomedNative.push_back(std::move(NC));
    }
    for (MethodState &MS : States) {
      MS.Retired.clear();
      MS.RetiredLinear.clear();
      MS.RetiredNative.clear();
    }
    HasRetired.store(false, std::memory_order_relaxed);
  }
  DoomedNative.clear(); // unmap before the LinearCode tables go away
}

void Isolate::waitForCompilerIdle() {
  if (!Broker)
    return;
  Broker->waitIdle(Id);
  uint64_t HighWater = Broker->queueDepthHighWater();
  std::lock_guard<std::mutex> L(StateMutex);
  Jit.QueueDepthHighWater = std::max(Jit.QueueDepthHighWater, HighWater);
}

Value Isolate::handleDeopt(DeoptRequest &&Req) {
  const char *Reason = deoptReasonName(Req.Reason);
  if (traceWants(TraceDeopt))
    Tracer::get().instant(TraceDeopt, "deopt", "method",
                          static_cast<int64_t>(Req.Root), "rematerialized",
                          static_cast<int64_t>(Req.Rematerialized), "reason",
                          Reason, "isolate", static_cast<int64_t>(Id));
  // Attribute the deopt to the installed code's log record (with the
  // Section 5.5 rematerialization payload) before a possible
  // invalidation retires that record's code.
  CLog.addDeopt(Req.Root, Reason, Req.Rematerialized);
  MethodState &MS = States[Req.Root];
  ++MS.DeoptCount;
  if (MS.DeoptCount > Options.MaxDeoptsPerMethod) {
    // The speculation keeps failing: throw the code away. Interpreted
    // re-runs update the branch/receiver profiles, so the next
    // compilation no longer contains the failing guard.
    invalidate(Req.Root);
  }
  return Interp.resume(std::move(Req.Frames));
}
