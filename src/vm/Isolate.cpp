//===- Isolate.cpp - Per-tenant VM state ---------------------------------------===//

#include "vm/Isolate.h"

#include "compiler/GraphBuilder.h"
#include "ir/Graph.h"
#include "observability/Profiler.h"
#include "support/Debug.h"
#include "support/Env.h"
#include "vm/CompileBroker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace jvm;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Tenant ids, process-unique and never reused: the broker, the tracer
/// and the metrics records all key on them, and a reused id could stitch
/// a dead tenant's events onto a live one in post-processed output.
std::atomic<uint32_t> NextIsolateId{1};

} // namespace

unsigned jvm::defaultCompilerThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

/// JVM_SPESH accepts exactly "0" or "1" (unset/empty = off). Anything
/// else is a hard configuration error, same contract as JVM_EXEC_MODE —
/// a bench run silently comparing "speculation on" against a typo would
/// produce numbers for the wrong configuration.
bool jvm::speshFromEnvironment(const char *Text) {
  if (!Text || !*Text)
    return false;
  if (std::strcmp(Text, "0") == 0)
    return false;
  if (std::strcmp(Text, "1") == 0)
    return true;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "unknown JVM_SPESH '%s' (valid: 0, 1)",
                Text);
  reportFatalError(Buf, __FILE__, __LINE__);
}

/// Shared parser for the integer speculation knobs: unset/empty =
/// \p Default; anything that is not a whole base-10 integer in the
/// allowed range is fatal, listing the valid settings.
uint64_t jvm::speshCountFromEnvironment(const char *Var, const char *Text,
                                        uint64_t Default, bool ZeroAllowed) {
  if (!Text || !*Text)
    return Default;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End != Text && *End == '\0' && (ZeroAllowed || V > 0))
    return V;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "invalid %s '%s' (valid: %s)", Var, Text,
                ZeroAllowed ? "a non-negative integer; 0 = off"
                            : "a positive integer");
  reportFatalError(Buf, __FILE__, __LINE__);
}

CompilerOptions jvm::defaultCompilerOptions() {
  static const CompilerOptions Opts = [] {
    CompilerOptions O;
    O.EnableSpesh = speshFromEnvironment(EnvSnapshot::process().Spesh);
    return O;
  }();
  return Opts;
}

uint64_t jvm::defaultSpeshFailThreshold() {
  static const uint64_t T = speshCountFromEnvironment(
      "JVM_SPESH_THRESHOLD", EnvSnapshot::process().SpeshThreshold,
      /*Default=*/2, /*ZeroAllowed=*/false);
  return T;
}

uint64_t jvm::defaultOsrThreshold() {
  static const uint64_t T = speshCountFromEnvironment(
      "JVM_OSR_THRESHOLD", EnvSnapshot::process().OsrThreshold,
      /*Default=*/2000, /*ZeroAllowed=*/true);
  return T;
}

bool jvm::execModeFromName(const char *Name, ExecMode &M) {
  if (!Name)
    return false;
  if (std::strcmp(Name, "linear") == 0)
    M = ExecMode::Linear;
  else if (std::strcmp(Name, "graph") == 0)
    M = ExecMode::Graph;
  else if (std::strcmp(Name, "native") == 0)
    M = ExecMode::Native;
  else if (std::strcmp(Name, "differential") == 0 ||
           std::strcmp(Name, "both") == 0)
    M = ExecMode::Differential;
  else
    return false;
  return true;
}

ExecMode jvm::execModeFromEnvironment(const char *Text) {
  if (!Text || !*Text)
    return ExecMode::Linear;
  ExecMode M;
  if (execModeFromName(Text, M))
    return M;
  // A typo here must not silently select a different tier: a benchmark
  // or differential run would happily produce numbers for the wrong
  // configuration.
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "unknown JVM_EXEC_MODE '%s' "
                "(valid: graph, linear, native, differential)",
                Text);
  reportFatalError(Buf, __FILE__, __LINE__);
}

ExecMode jvm::defaultExecMode() {
  static const ExecMode Mode =
      execModeFromEnvironment(EnvSnapshot::process().ExecMode);
  return Mode;
}

const char *jvm::execModeName(ExecMode M) {
  switch (M) {
  case ExecMode::Graph:
    return "graph";
  case ExecMode::Linear:
    return "linear";
  case ExecMode::Native:
    return "native";
  case ExecMode::Differential:
    return "differential";
  }
  return "unknown";
}

Isolate::Isolate(const Program &P, VMOptions Options)
    : Id(NextIsolateId.fetch_add(1, std::memory_order_relaxed)), P(P),
      Options(Options), RT(P, Options.Memory), Profiles(P.numMethods()),
      Interp(RT, Profiles),
      Executor(
          RT,
          [this](MethodId Target, std::vector<Value> &&Args) {
            return call(Target, std::move(Args));
          },
          [this](DeoptRequest &&Req) { return handleDeopt(std::move(Req)); }),
      LinExecutor(
          RT,
          [this](MethodId Target, std::vector<Value> &&Args) {
            return call(Target, std::move(Args));
          },
          [this](DeoptRequest &&Req) { return handleDeopt(std::move(Req)); }),
      NatExecutor(
          RT,
          [this](MethodId Target, std::vector<Value> &&Args) {
            return call(Target, std::move(Args));
          },
          [this](DeoptRequest &&Req) { return handleDeopt(std::move(Req)); }),
      States(P.numMethods()), CLog(P.numMethods()), Spesh(P.numMethods()) {
  Interp.setCallHandler([this](MethodId Target, std::vector<Value> &&Args) {
    return call(Target, std::move(Args));
  });
  if (Options.Compiler.EnableSpesh) {
    // Compiled code keeps feeding receiver statistics: a callsite that
    // turns megamorphic after compilation is still observed, so a failed
    // receiver pin despecializes from real post-compile data.
    ReceiverProfileFn Feed = [this](MethodId Root, int Bci, ClassId Receiver) {
      Spesh.recordReceiver(Root, Bci, Receiver);
    };
    LinExecutor.setReceiverProfile(Feed);
    NatExecutor.setReceiverProfile(std::move(Feed));
    if (Options.EnableJit && Options.OsrThreshold > 0)
      Interp.setOsrHandler(
          [this](MethodId M, int Bci, std::vector<Value> &Locals, Value &Out) {
            return handleOsr(M, Bci, Locals, Out);
          });
  }
  RT.heap().setTraceIsolateId(Id);
  registerMetrics();
  // Snapshot method names for the profiler: it sits below the bytecode
  // layer in the link order and must symbolize samples (folded stacks,
  // reports) after this isolate is gone. Ids are never reused.
  {
    std::vector<std::string> Names(P.numMethods());
    for (unsigned M = 0; M != P.numMethods(); ++M)
      Names[M] = P.methodAt(M).Name;
    Profiler::get().registerIsolate(Id, std::move(Names));
  }
  if (Options.EnableJit && Options.CompilerThreads > 0) {
    // Asynchronous mode: become a client of the process-wide broker.
    // The pool (sized once, from JVM_COMPILER_THREADS) is shared by all
    // isolates — registering adds a queue tenant, not threads.
    Broker = &CompileBroker::process();
    Broker->registerClient(
        Id, P, Options.Compiler,
        [this](CompileBroker::Task &&T, CompileResult &&R) {
          installCode(T.Method, T.Version, std::move(R), T.EnqueueNanos,
                      T.Hotness);
          // Clear the dedup flag last: once visible, the mutator may
          // request a fresh compile of this method.
          States[T.Method].CompilePending.store(false,
                                                std::memory_order_release);
        });
  }
}

Isolate::~Isolate() {
  // Sever the broker link before anything else: queued compiles for
  // this isolate are dropped, in-flight ones finish installing or
  // discarding, and after this returns no worker holds a reference to
  // us — the rest of teardown can proceed single-threaded.
  if (Broker)
    Broker->unregisterClient(Id);

  // Environment-driven end-of-isolate dumps. Both append — one
  // block/object per isolate — so multi-isolate processes (and the test
  // binaries, which create many short-lived isolates) leave every
  // tenant's data in the file, each tagged with its isolate id.
  const EnvSnapshot &Env = EnvSnapshot::process();
  if (EnvSnapshot::isSet(Env.MetricsJson)) {
    if (std::FILE *F = std::fopen(Env.MetricsJson, "a")) {
      std::string Json = dumpMetricsJson() + "\n";
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
    }
  }
  if (EnvSnapshot::isSet(Env.CompileLog)) {
    if (std::FILE *F = std::fopen(Env.CompileLog, "a")) {
      std::string Text = CLog.renderText();
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    }
  }
  // JVM_PROF=<path> (any value other than "1") appends the residual-
  // allocation report: the sampled sites PEA did *not* remove, joined
  // against this isolate's compile-log PEA decisions. Rendered here —
  // the profiler has the samples, but only the isolate can reach the
  // Program (class names) and the CompileLog.
  if (EnvSnapshot::isSet(Env.Prof) && std::strcmp(Env.Prof, "1") != 0) {
    if (std::FILE *F = std::fopen(Env.Prof, "a")) {
      std::string Text = renderResidualAllocationReport();
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    }
  }
}

const CodeCache &Isolate::codeCache() const { return CodeCache::process(); }

std::string Isolate::renderResidualAllocationReport() {
  Profiler &Prof = Profiler::get();
  std::vector<Profiler::AllocSite> Sites = Prof.allocSites(Id);
  std::string Out;
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "== residual-allocations isolate=%u exec=%s ea=%s sites=%zu ==\n",
      Id, execModeName(Options.Exec),
      escapeAnalysisModeName(Options.Compiler.EAMode), Sites.size());
  Out += Buf;
  // Sites arrive sorted by estimated bytes, heaviest first — the "top
  // residual allocation sites PEA did not remove" per Table 1 row.
  constexpr size_t MaxShown = 10;
  size_t Shown = 0;
  size_t SkippedDespecialized = 0;
  for (const Profiler::AllocSite &S : Sites) {
    // A despecialization after sampling retired the code these samples
    // came from; the site's profile describes a speculation mix that no
    // longer runs, so reporting it would mislead the PEA join.
    if (S.Method >= 0 && unsigned(S.Method) < P.numMethods() &&
        Spesh.wasDespecialized(MethodId(S.Method))) {
      ++SkippedDespecialized;
      continue;
    }
    if (Shown == MaxShown) {
      std::snprintf(Buf, sizeof(Buf), "  ... %zu more sites\n",
                    Sites.size() - Shown - SkippedDespecialized);
      Out += Buf;
      break;
    }
    ++Shown;
    std::string MName = (S.Method >= 0 && unsigned(S.Method) < P.numMethods())
                            ? P.methodAt(MethodId(S.Method)).Name
                            : Prof.methodName(Id, S.Method);
    std::string CName = (S.Class >= 0 && unsigned(S.Class) < P.numClasses())
                            ? P.classAt(ClassId(S.Class)).Name
                            : std::string("array");
    std::snprintf(Buf, sizeof(Buf),
                  "  site method=%s bci=%d class=%s samples=%llu "
                  "est_bytes=%llu avg_object_bytes=%llu\n",
                  MName.c_str(), S.Bci, CName.c_str(),
                  static_cast<unsigned long long>(S.Count),
                  static_cast<unsigned long long>(S.Bytes),
                  static_cast<unsigned long long>(
                      S.Count ? S.SizeSum / S.Count : 0));
    Out += Buf;
    // The compile-log PEA decision this site survived: prefer the last
    // installed compile (what actually ran); fall back to the last
    // attempt; "never compiled" marks interpreter-resident sites.
    if (S.Method >= 0 && unsigned(S.Method) < P.numMethods()) {
      std::vector<CompileLog::Record> Recs =
          CLog.recordsFor(unsigned(S.Method));
      const CompileLog::Record *Best = nullptr;
      for (const CompileLog::Record &R : Recs)
        if (R.Installed)
          Best = &R;
      if (!Best && !Recs.empty())
        Best = &Recs.back();
      if (Best) {
        // The speculation verdict for a residual site: the planner
        // either speculated in this method and PEA still could not
        // remove the allocation, or it never found anything to assert
        // here (so the site survives on profile grounds, not guards).
        const char *Spec = !Options.Compiler.EnableSpesh ? "off"
                           : Best->Speculations.empty()
                               ? "planner never speculated here"
                               : "PEA failed despite speculation";
        std::snprintf(
            Buf, sizeof(Buf),
            "    pea: seq=%llu installed=%d virtualized_allocations=%u "
            "materialize_sites=%u speculation=\"%s\"\n",
            static_cast<unsigned long long>(Best->CompileSeq),
            Best->Installed ? 1 : 0, Best->Escape.VirtualizedAllocations,
            Best->Escape.MaterializeSites, Spec);
        Out += Buf;
      } else {
        Out += "    pea: never compiled (interpreter-resident site)\n";
      }
    } else {
      Out += "    pea: no method attribution\n";
    }
  }
  if (SkippedDespecialized) {
    std::snprintf(Buf, sizeof(Buf),
                  "  (%zu sites skipped: method despecialized after "
                  "sampling)\n",
                  SkippedDespecialized);
    Out += Buf;
  }
  if (Sites.empty())
    Out += "  (no allocation samples recorded)\n";
  return Out;
}

void Isolate::registerMetrics() {
  // Identity first: every dumped record (JVM_METRICS_JSON appends one
  // object per isolate) must say which tenant it describes.
  Registry.gauge("isolate.id", [this] { return uint64_t(Id); });

  // RuntimeMetrics + heap: live sources, read at dump time.
  Registry.gauge("runtime.interpreted_ops",
                 [this] { return RT.metrics().InterpretedOps; });
  Registry.gauge("runtime.interpreted_calls",
                 [this] { return RT.metrics().InterpretedCalls; });
  Registry.gauge("runtime.compiled_ops",
                 [this] { return RT.metrics().CompiledOps; });
  Registry.gauge("runtime.compiled_calls",
                 [this] { return RT.metrics().CompiledCalls; });
  Registry.gauge("runtime.monitor_ops",
                 [this] { return RT.metrics().MonitorOps; });
  Registry.gauge("runtime.deopts", [this] { return RT.metrics().Deopts; });
  Registry.gauge("heap.allocations",
                 [this] { return RT.heap().allocationCount(); });
  Registry.gauge("heap.allocated_bytes",
                 [this] { return RT.heap().allocatedBytes(); });
  Registry.gauge("heap.gc_runs", [this] { return RT.heap().gcRuns(); });
  Registry.gauge("heap.live_objects",
                 [this] { return RT.heap().liveObjects(); });
  // Generational-collector behaviour (PR 5): collection counts, copy
  // volume, occupancy, and pause-time percentiles from the heap-owned
  // log2 histograms.
  Registry.gauge("heap.scavenges", [this] { return RT.heap().scavenges(); });
  Registry.gauge("heap.full_gcs", [this] { return RT.heap().fullGcs(); });
  Registry.gauge("heap.bytes_copied",
                 [this] { return RT.heap().bytesCopied(); });
  Registry.gauge("heap.bytes_promoted",
                 [this] { return RT.heap().bytesPromoted(); });
  Registry.gauge("heap.young_bytes",
                 [this] { return uint64_t(RT.heap().youngBytes()); });
  Registry.gauge("heap.old_bytes",
                 [this] { return uint64_t(RT.heap().oldBytes()); });
  Registry.gauge("heap.scavenge_pause_p50_ns", [this] {
    return RT.heap().scavengePauses().percentileUpperBound(0.5);
  });
  Registry.gauge("heap.scavenge_pause_p99_ns", [this] {
    return RT.heap().scavengePauses().percentileUpperBound(0.99);
  });
  Registry.gauge("heap.full_gc_pause_p99_ns", [this] {
    return RT.heap().fullGcPauses().percentileUpperBound(0.99);
  });
  // Card-table remembered set + parallel scavenge (PR 8): barrier and
  // card-scan volume, copy-phase fan-out, and the adaptive young cap
  // the pause-budget controller settled on.
  Registry.gauge("gc.cards_dirtied",
                 [this] { return RT.heap().cardsDirtied(); });
  Registry.gauge("gc.cards_scanned",
                 [this] { return RT.heap().cardsScanned(); });
  Registry.gauge("gc.workers",
                 [this] { return uint64_t(RT.heap().lastGcWorkers()); });
  Registry.gauge("gc.young_capacity_bytes", [this] {
    return uint64_t(RT.heap().youngCapacityBytes());
  });
  // Per-worker copy volume: worker count is runtime-dependent, so a
  // provider emits one entry per worker that ever ran.
  Registry.provider(
      [this](const std::function<void(const std::string &, uint64_t)> &Emit) {
        std::vector<uint64_t> Copied = RT.heap().workerCopiedBytes();
        for (size_t I = 0; I != Copied.size(); ++I)
          Emit("gc.worker." + std::to_string(I) + ".copied_bytes", Copied[I]);
      });

  // JitMetrics (and the PEAStats it aggregates): guarded by StateMutex,
  // so each gauge takes it — dump-time only cost.
  auto JitGauge = [this](const char *Name, uint64_t JitMetrics::*Field) {
    Registry.gauge(Name, [this, Field] {
      std::lock_guard<std::mutex> L(StateMutex);
      return Jit.*Field;
    });
  };
  JitGauge("jit.compilations", &JitMetrics::Compilations);
  JitGauge("jit.invalidations", &JitMetrics::Invalidations);
  JitGauge("jit.compiles_discarded", &JitMetrics::CompilesDiscarded);
  JitGauge("jit.retired_reclaimed", &JitMetrics::RetiredReclaimed);
  JitGauge("jit.compile_nanos", &JitMetrics::CompileNanos);
  JitGauge("jit.mutator_stall_nanos", &JitMetrics::MutatorStallNanos);
  JitGauge("jit.fixpoint_cap_hits", &JitMetrics::FixpointCapHits);
  JitGauge("jit.queue_depth_high_water", &JitMetrics::QueueDepthHighWater);
  JitGauge("jit.enqueue_to_install_nanos", &JitMetrics::EnqueueToInstallNanos);
  JitGauge("jit.enqueue_to_install_nanos_max",
           &JitMetrics::EnqueueToInstallNanosMax);
  // Native tier: this isolate's emission activity, plus the *process*
  // code cache's live footprint (spans from every isolate — per-tenant
  // share is jit.native_methods and the method tables).
  JitGauge("jit.native_methods", &JitMetrics::NativeMethods);
  JitGauge("jit.native_fallbacks", &JitMetrics::NativeFallbacks);
  JitGauge("jit.native_emit_nanos", &JitMetrics::NativeEmitNanos);
  Registry.gauge("code.cache_reserved_bytes",
                 [] { return CodeCache::process().reservedBytes(); });
  Registry.gauge("code.cache_code_bytes",
                 [] { return CodeCache::process().codeBytes(); });
  Registry.gauge("code.cache_methods",
                 [] { return CodeCache::process().methods(); });
  auto PeaGauge = [this](const char *Name, unsigned PEAStats::*Field) {
    Registry.gauge(Name, [this, Field] {
      std::lock_guard<std::mutex> L(StateMutex);
      return uint64_t(Jit.EscapeStats.*Field);
    });
  };
  PeaGauge("pea.virtualized_allocations", &PEAStats::VirtualizedAllocations);
  PeaGauge("pea.materialize_sites", &PEAStats::MaterializeSites);
  PeaGauge("pea.scalar_replaced_loads", &PEAStats::ScalarReplacedLoads);
  PeaGauge("pea.scalar_replaced_stores", &PEAStats::ScalarReplacedStores);
  PeaGauge("pea.elided_monitor_ops", &PEAStats::ElidedMonitorOps);
  PeaGauge("pea.folded_checks", &PEAStats::FoldedChecks);
  PeaGauge("pea.loop_iterations", &PEAStats::LoopIterations);
  PeaGauge("pea.virtualized_states", &PEAStats::VirtualizedStates);

  // Speculation subsystem: planner output, guard economics and OSR
  // activity. All zero when JVM_SPESH is off.
  auto SpeshGauge = [this](const char *Name, uint64_t SpeshMetrics::*Field) {
    Registry.gauge(Name, [this, Field] {
      std::lock_guard<std::mutex> L(StateMutex);
      return SpeshM.*Field;
    });
  };
  SpeshGauge("spesh.plans", &SpeshMetrics::Plans);
  SpeshGauge("spesh.guards_planted", &SpeshMetrics::GuardsPlanted);
  SpeshGauge("spesh.guard_failures", &SpeshMetrics::GuardFailures);
  SpeshGauge("spesh.despecializations", &SpeshMetrics::Despecializations);
  SpeshGauge("spesh.osr_compiles", &SpeshMetrics::OsrCompiles);
  SpeshGauge("spesh.osr_entries", &SpeshMetrics::OsrEntries);

  // Per-phase pipeline time: names are dynamic (whatever the plans ran),
  // so a provider emits them at dump time.
  Registry.provider(
      [this](const std::function<void(const std::string &, uint64_t)> &Emit) {
        std::lock_guard<std::mutex> L(StateMutex);
        for (const PhaseTimes::Entry &E : Jit.PhaseNanos.Entries) {
          Emit("jit.phase." + E.Name + ".nanos", E.Nanos);
          Emit("jit.phase." + E.Name + ".runs", E.Runs);
        }
      });

  // Tracer health: ring overflow must never be silent. The perf-smoke
  // trace run asserts dropped_events == 0 at the default ring size.
  // Process-wide source (the tracer is shared), same as code.cache_*.
  Registry.gauge("trace.dropped_events",
                 [] { return Tracer::get().droppedEvents(); });
  Registry.gauge("trace.ring_high_water",
                 [] { return Tracer::get().highWater(); });
  Registry.gauge("trace.ring_capacity",
                 [] { return uint64_t(Tracer::get().ringCapacity()); });

  // Sampling profiler: per-tier self-time for THIS isolate, plus the
  // same never-silent ring health counters as the tracer's. All zero
  // (and one map lookup each at dump time) when JVM_PROF is unset.
  // Like trace.*, the prof.* sources are process-lifetime: resetMetrics
  // does not clear them.
  Registry.gauge("prof.samples", [this] {
    Profiler &P = Profiler::get();
    uint64_t N = 0;
    for (unsigned T = 0; T != ProfNumTiers; ++T)
      N += P.samplesForIsolate(Id, ProfTier(T));
    return N;
  });
  auto TierGauge = [this](const char *Name, ProfTier T) {
    Registry.gauge(Name,
                   [this, T] { return Profiler::get().samplesForIsolate(Id, T); });
  };
  TierGauge("prof.samples_interp", ProfTierInterp);
  TierGauge("prof.samples_graph", ProfTierGraph);
  TierGauge("prof.samples_linear", ProfTierLinear);
  TierGauge("prof.samples_native", ProfTierNative);
  TierGauge("prof.samples_runtime", ProfTierRuntime);
  Registry.gauge("prof.alloc_samples",
                 [this] { return Profiler::get().allocSamplesForIsolate(Id); });
  Registry.gauge("prof.dropped_samples",
                 [] { return Profiler::get().droppedSamples(); });
  Registry.gauge("prof.ring_high_water",
                 [] { return Profiler::get().highWater(); });
  Registry.gauge("prof.ring_capacity",
                 [] { return uint64_t(Profiler::get().ringCapacity()); });
  Registry.gauge("prof.other_thread_samples",
                 [] { return Profiler::get().otherThreadSamples(); });
  Registry.gauge("prof.native_pc_resolved",
                 [] { return Profiler::get().pcResolved(); });
  Registry.gauge("prof.native_pc_miss",
                 [] { return Profiler::get().pcMisses(); });
  Registry.gauge("prof.truncated_frames",
                 [] { return Profiler::get().truncatedPushes(); });
  Registry.gauge("prof.unattributed",
                 [] { return Profiler::get().unattributedSamples(); });
  // Top-10 self-time methods (leaf attribution), symbolized: the
  // per-tier summary block of dumpMetricsText/dumpMetricsJson.
  Registry.provider(
      [this](const std::function<void(const std::string &, uint64_t)> &Emit) {
        Profiler &P = Profiler::get();
        for (const Profiler::MethodSamples &M : P.topMethods(Id, 10))
          Emit("prof.top." + P.methodName(Id, M.Method) + ".samples",
               M.Count);
      });

  // Live histograms, recorded on the install/stall paths (lock-free).
  EnqueueToInstallHist = &Registry.histogram("jit.enqueue_to_install_latency_ns");
  MutatorStallHist = &Registry.histogram("jit.mutator_stall_latency_ns");
}

void Isolate::resetMetrics() {
  // Drain our broker work first: an install racing the reset would
  // charge a warmup compile to the measured window (or worse, split it).
  waitForCompilerIdle();
  RT.resetMetrics();
  {
    std::lock_guard<std::mutex> L(StateMutex);
    Jit = JitMetrics();
    SpeshM = SpeshMetrics();
  }
  Registry.reset();
}

Value Isolate::call(MethodId Method, std::vector<Value> Args) {
  // Tag this thread's profiler state with the executing tenant so ticks
  // and allocation samples attribute per-isolate. One relaxed load when
  // the profiler is off; a TLS store when it is on.
  if (profWantsSamples())
    profSetCurrentIsolate(Id);

  // Safe point: no compiled activation is on the stack, so code retired
  // by earlier invalidations can be freed.
  if (CompiledDepth == 0 && HasRetired.load(std::memory_order_relaxed))
    reclaimRetired();

  MethodState &MS = States[Method];
  if (const Graph *G = MS.Code.load(std::memory_order_acquire))
    return executeCompiled(Method, *G, Args);
  if (Options.EnableJit &&
      !MS.CompilePending.load(std::memory_order_acquire) &&
      Profiles.of(Method).hotness() >= Options.CompileThreshold) {
    // The acquire above pairs with the worker's release store that
    // clears the flag *after* installing: code may have landed between
    // the Code load up top and the flag load, and requesting now would
    // compile the method a second time.
    if (const Graph *G = MS.Code.load(std::memory_order_acquire))
      return executeCompiled(Method, *G, Args);
    requestCompile(Method);
    // Synchronous mode installs before returning; run the fresh code.
    if (const Graph *G = MS.Code.load(std::memory_order_acquire))
      return executeCompiled(Method, *G, Args);
  }
  // Interpreted entry: feed the argument-value statistics so the planner
  // can assert observed-constant parameters (guarded at entry).
  if (Options.Compiler.EnableSpesh)
    for (unsigned I = 0, E = Args.size(); I != E; ++I)
      if (Args[I].isInt())
        Spesh.recordIntArg(Method, static_cast<int>(I), Args[I].asInt());
  return Interp.call(Method, std::move(Args));
}

SpeshSnapshot Isolate::makeSpeshSnapshot(MethodId Method) {
  // Fold the cumulative interpreter histograms in now (max-merge), then
  // freeze: the worker sees exactly what a synchronous compile at this
  // trigger point would have seen.
  Spesh.foldProfile(Method, Profiles.of(Method));
  SpeshSnapshot S = Spesh.snapshot(Method);
  S.Enabled = Options.Compiler.EnableSpesh;
  S.MinProfile = Options.Compiler.SpeshMinProfile;
  return S;
}

Value Isolate::executeCompiled(MethodId Method, const Graph &G,
                               std::vector<Value> &Args) {
  Runtime::RootScope ArgRoots(RT, &Args);
  ++CompiledDepth;
  const LinearCode *L =
      Options.Exec == ExecMode::Graph
          ? nullptr
          : States[Method].Linear.load(std::memory_order_acquire);
  // The machine-code tier only dispatches in Native and Differential
  // modes; Linear mode must measure the linear dispatcher itself.
  const NativeCode *N = (Options.Exec == ExecMode::Native ||
                         Options.Exec == ExecMode::Differential) &&
                                L
                            ? States[Method].Native.load(
                                  std::memory_order_acquire)
                            : nullptr;
  if (traceWants(TraceTier)) {
    // Mutator-only bookkeeping: emit one instant per tier *change*, not
    // per call (interpreter -> compiled on the first compiled entry,
    // tier <-> tier when the mode or available code flips).
    MethodState &MS = States[Method];
    uint8_t Tier = N ? 3 : L ? 2 : 1;
    if (MS.TracedTier != Tier) {
      Tracer::get().instant(TraceTier, "tier-transition", "method",
                            static_cast<int64_t>(Method), "from",
                            MS.TracedTier, "to",
                            N ? "native" : L ? "linear" : "graph", "isolate",
                            static_cast<int64_t>(Id));
      MS.TracedTier = Tier;
    }
  }
  Value Result;
  if (!L) {
    // Graph mode, or the method compiled without EmitLinearCode.
    Result = Executor.execute(G, Args);
  } else if (Options.Exec == ExecMode::Differential && !L->hasEffects()) {
    // Effect-free code can run repeatedly without observable
    // consequences; every available tier must agree on the result
    // exactly.
    Value Walked = Executor.execute(G, Args);
    Result = LinExecutor.execute(*L, Args);
    if (!(Result == Walked))
      reportFatalError("differential execution mismatch between graph "
                       "and linear tiers",
                       __FILE__, __LINE__);
    if (N) {
      Value Native = NatExecutor.execute(*N, Args);
      if (!(Native == Result))
        reportFatalError("differential execution mismatch between linear "
                         "and native tiers",
                         __FILE__, __LINE__);
    }
  } else if (N) {
    // Native mode, or the effectful leg of differential mode (which
    // runs the best tier once — still full native coverage).
    Result = NatExecutor.execute(*N, Args);
  } else {
    Result = LinExecutor.execute(*L, Args);
  }
  --CompiledDepth;
  return Result;
}

void Isolate::requestCompile(MethodId Method) {
  if (!Broker) {
    compileSync(Method);
    return;
  }
  uint64_t Start = nowNanos();
  uint64_t Version;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    Version = States[Method].Version;
  }
  MethodState &MS = States[Method];
  MS.CompilePending.store(true, std::memory_order_relaxed);
  uint64_t Hotness = Profiles.of(Method).hotness();
  SpeshSnapshot Snap;
  if (Options.Compiler.EnableSpesh)
    Snap = makeSpeshSnapshot(Method);
  if (!Broker->enqueue(Id, Method, Hotness, Version,
                       ProfileSnapshot(Profiles, P, Method),
                       std::move(Snap))) {
    MS.CompilePending.store(false, std::memory_order_relaxed);
    return;
  }
  if (traceWants(TraceCompile))
    Tracer::get().instant(TraceCompile, "enqueue", "method",
                          static_cast<int64_t>(Method), "hotness",
                          static_cast<int64_t>(Hotness), nullptr, nullptr,
                          "isolate", static_cast<int64_t>(Id));
  uint64_t HighWater = Broker->queueDepthHighWater();
  uint64_t Stall = nowNanos() - Start;
  MutatorStallHist->record(Stall);
  {
    std::lock_guard<std::mutex> L(StateMutex);
    Jit.QueueDepthHighWater = std::max(Jit.QueueDepthHighWater, HighWater);
    // With a broker the only mutator cost is the snapshot + enqueue.
    Jit.MutatorStallNanos += Stall;
  }
  // Wake a worker only after the stall window closed: on a saturated
  // machine the worker may preempt this thread the moment it is woken,
  // and its compile time must not be billed as mutator stall.
  Broker->kick();
}

void Isolate::compileNow(MethodId Method) { compileSync(Method); }

void Isolate::compileSync(MethodId Method) {
  uint64_t Start = nowNanos();
  uint64_t Version;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    // Bumping the version discards any in-flight background compile in
    // favor of this (fresher-profiled) one.
    Version = ++States[Method].Version;
  }
  uint64_t Hotness = Profiles.of(Method).hotness();
  SpeshSnapshot Snap;
  if (Options.Compiler.EnableSpesh)
    Snap = makeSpeshSnapshot(Method);
  CompileResult R = runCompilePipeline(
      P, Method, ProfileSnapshot(Profiles, P, Method), Options.Compiler, Id,
      Snap.Enabled ? &Snap : nullptr);
  installCode(Method, Version, std::move(R), Start, Hotness);
  uint64_t Stall = nowNanos() - Start;
  MutatorStallHist->record(Stall);
  std::lock_guard<std::mutex> L(StateMutex);
  Jit.MutatorStallNanos += Stall;
}

bool Isolate::installCode(MethodId Method, uint64_t Version, CompileResult &&R,
                          uint64_t EnqueueNanos, uint64_t Hotness) {
  // Lower the linear stream to machine code before taking the state
  // lock: emission is pure (it reads only the immutable LinearCode) and
  // runs on the compiling thread, so workers emit concurrently — for
  // this isolate or any other; the process CodeCache install path is
  // atomic-counter-only. A null result is the documented fallback — the
  // method keeps running on the linear tier.
  std::unique_ptr<NativeCode> Native;
  const bool TriedNative = R.Code != nullptr && Options.EnableNativeTier;
  if (TriedNative) {
    TraceScope EmitSpan(TraceCompile, "native-emit", "method",
                        static_cast<int64_t>(Method), "isolate",
                        static_cast<int64_t>(Id));
    Native = emitNativeCode(*R.Code, CodeCache::process());
  }

  uint64_t Now = nowNanos();

  // The log record is assembled outside the state lock (string copies);
  // whether it says "installed" is decided under it below.
  CompileLog::Record Rec;
  Rec.CompileSeq = R.CompileSeq;
  Rec.Hotness = Hotness;
  Rec.TotalNanos = R.TotalNanos;
  Rec.FinalNodes = R.G ? R.G->numLiveNodes() : 0;
  if (Native) {
    Rec.NativeEmitNanos = Native->emitNanos();
    Rec.NativeBytes = Native->codeSize();
  }
  Rec.Escape.VirtualizedAllocations = R.Stats.VirtualizedAllocations;
  Rec.Escape.MaterializeSites = R.Stats.MaterializeSites;
  Rec.Escape.ElidedMonitorOps = R.Stats.ElidedMonitorOps;
  Rec.Escape.VirtualizedStates = R.Stats.VirtualizedStates;
  Rec.Speculations.reserve(R.Spesh.size());
  for (const Speculation &S : R.Spesh.Specs) {
    CompileLog::SpeshRec SR;
    SR.Kind = speculationKindName(S.Kind);
    char Detail[128];
    switch (S.Kind) {
    case SpeculationKind::ReceiverPin:
      SR.Site = S.Bci;
      std::snprintf(Detail, sizeof(Detail), "class=%s",
                    P.classAt(S.Receiver).Name.c_str());
      break;
    case SpeculationKind::ArgConst:
      SR.Site = S.Index;
      std::snprintf(Detail, sizeof(Detail), "value=%lld",
                    static_cast<long long>(S.IntValue));
      break;
    case SpeculationKind::BranchPrune:
      SR.Site = S.Bci;
      std::snprintf(Detail, sizeof(Detail), "direction=%s",
                    S.TakenIsHot ? "taken" : "not-taken");
      break;
    }
    SR.Detail = Detail;
    Rec.Speculations.push_back(std::move(SR));
  }
  Rec.Phases.reserve(R.Trail.size());
  for (const PhaseTrailEntry &T : R.Trail)
    Rec.Phases.push_back(CompileLog::PhaseRec{T.Name, T.Nanos, T.NodesBefore,
                                              T.NodesAfter, T.Changed});

  bool Installed = false;
  uint64_t Latency = Now - EnqueueNanos;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    // Pipeline cost is real whether or not the result installs.
    Jit.CompileNanos += R.TotalNanos;
    Jit.PhaseNanos += R.Phases;
    Jit.FixpointCapHits += R.FixpointCapHits;
    Jit.EscapeStats += R.Stats;

    MethodState &MS = States[Method];
    if (MS.Version != Version) {
      // The method was invalidated (or force-recompiled) after this
      // compile was enqueued: its speculations are based on a retracted
      // profile, drop it.
      ++Jit.CompilesDiscarded;
      JVM_DEBUG("discarded stale compile of m" << Method);
    } else {
      if (MS.Owned) {
        MS.Retired.push_back(std::move(MS.Owned));
        if (MS.OwnedLinear)
          MS.RetiredLinear.push_back(std::move(MS.OwnedLinear));
        if (MS.OwnedNative)
          MS.RetiredNative.push_back(std::move(MS.OwnedNative));
        HasRetired.store(true, std::memory_order_relaxed);
      }
      MS.Owned = std::move(R.G);
      MS.OwnedLinear = std::move(R.Code);
      MS.OwnedNative = std::move(Native);
      // The guard id space of the code going live: a failing guard's id
      // indexes this plan on the deopt path.
      MS.Spesh = std::move(R.Spesh);
      if (!MS.Spesh.empty()) {
        ++SpeshM.Plans;
        SpeshM.GuardsPlanted += MS.Spesh.size();
      }
      // Most-derived first: a mutator that sees the new graph must also
      // see its linear translation, and one that sees the linear code
      // must see its machine code (the inverse interleavings are benign,
      // see MethodState::Linear).
      MS.Native.store(MS.OwnedNative.get(), std::memory_order_release);
      MS.Linear.store(MS.OwnedLinear.get(), std::memory_order_release);
      MS.Code.store(MS.Owned.get(), std::memory_order_release);
      ++Jit.Compilations;
      if (MS.OwnedNative) {
        ++Jit.NativeMethods;
        Jit.NativeEmitNanos += MS.OwnedNative->emitNanos();
        // Publish the span into the signal-safe PC index (and the perf
        // map) now that its method identity is decided. The cache's
        // slot mutex never takes isolate locks, so ordering under
        // StateMutex is safe; the matching unregister is automatic in
        // CodeCache::release when the NativeCode is reclaimed.
        CodeCache::process().describe(MS.OwnedNative->span(), Method, Id,
                                      P.methodAt(Method).Name.c_str());
        // Env-gated debug dump, named so scripts/check_native.py can
        // match files 1:1 against compile-log records. Written under
        // the lock on purpose: the NativeCode must not be retired by a
        // concurrent install while we read its bytes, and the path is
        // debug-only.
        const char *DumpDir = EnvSnapshot::process().DumpNative;
        if (DumpDir && *DumpDir) {
          char Path[512];
          std::snprintf(Path, sizeof(Path), "%s/m%d.c%llu.bin", DumpDir,
                        static_cast<int>(Method),
                        static_cast<unsigned long long>(Rec.CompileSeq));
          if (std::FILE *F = std::fopen(Path, "wb")) {
            std::fwrite(MS.OwnedNative->codeBytes(), 1,
                        MS.OwnedNative->codeSize(), F);
            std::fclose(F);
          }
        }
      } else if (TriedNative) {
        ++Jit.NativeFallbacks;
      }
      Jit.EnqueueToInstallNanos += Latency;
      Jit.EnqueueToInstallNanosMax =
          std::max(Jit.EnqueueToInstallNanosMax, Latency);
      Rec.Installed = true;
      Rec.Version = MS.Version;
      Rec.EnqueueToInstallNanos = Latency;
      Installed = true;
      JVM_DEBUG("compiled m" << Method << " ("
                             << escapeAnalysisModeName(Options.Compiler.EAMode)
                             << ")");
    }
  }
  if (Installed)
    EnqueueToInstallHist->record(Latency);
  if (traceWants(TraceCode))
    Tracer::get().instant(TraceCode, Installed ? "install" : "discard-stale",
                          "method", static_cast<int64_t>(Method), "version",
                          static_cast<int64_t>(Rec.Version), nullptr, nullptr,
                          "isolate", static_cast<int64_t>(Id));
  if (Installed && !Rec.Speculations.empty() && traceWants(TraceCompile))
    Tracer::get().instant(TraceCompile, "spesh-plan", "method",
                          static_cast<int64_t>(Method), "guards",
                          static_cast<int64_t>(Rec.Speculations.size()),
                          nullptr, nullptr, "isolate",
                          static_cast<int64_t>(Id));
  CLog.addRecord(Method, std::move(Rec));
  return Installed;
}

void Isolate::invalidate(MethodId Method) {
  // Retire the method's OSR loop versions first (mutator-only state; no
  // lock needed): they were compiled against the same statistics the
  // invalidation just retracted, and the invalidating deopt may have
  // come from inside one — so retire, don't destroy.
  for (auto It = OsrTable.begin(); It != OsrTable.end();) {
    if (It->first.first == Method) {
      RetiredOsr.push_back(std::move(It->second));
      It = OsrTable.erase(It);
      HasRetired.store(true, std::memory_order_relaxed);
    } else {
      ++It;
    }
  }
  std::lock_guard<std::mutex> L(StateMutex);
  MethodState &MS = States[Method];
  if (!MS.Owned)
    return;
  ++MS.Version; // Discards any compile in flight for the old profile.
  MS.Code.store(nullptr, std::memory_order_release);
  MS.Linear.store(nullptr, std::memory_order_release);
  MS.Native.store(nullptr, std::memory_order_release);
  MS.Retired.push_back(std::move(MS.Owned));
  if (MS.OwnedLinear)
    MS.RetiredLinear.push_back(std::move(MS.OwnedLinear));
  if (MS.OwnedNative)
    MS.RetiredNative.push_back(std::move(MS.OwnedNative));
  HasRetired.store(true, std::memory_order_relaxed);
  MS.DeoptCount = 0;
  ++MS.Recompiles;
  ++Jit.Invalidations;
  // Back to the interpreter until recompiled; the next compiled entry is
  // a fresh tier transition.
  MS.TracedTier = 0;
  if (traceWants(TraceCode))
    Tracer::get().instant(TraceCode, "invalidate", "method",
                          static_cast<int64_t>(Method), "version",
                          static_cast<int64_t>(MS.Version), nullptr, nullptr,
                          "isolate", static_cast<int64_t>(Id));
  JVM_DEBUG("invalidated m" << Method);
}

void Isolate::reclaimRetired() {
  // Destroy outside the lock; workers only need the lists unlinked.
  // Native bodies precede their linear code in the doomed lists (the
  // NativeCode destructor unmaps while its LinearCode is still alive;
  // vector destruction order makes that hold regardless).
  std::vector<std::unique_ptr<Graph>> Doomed;
  std::vector<std::unique_ptr<LinearCode>> DoomedLinear;
  std::vector<std::unique_ptr<NativeCode>> DoomedNative;
  // Retired OSR loop versions (mutator-only state): each OsrCode
  // destroys its NativeCode before its LinearCode by member order.
  std::vector<OsrCode> DoomedOsr;
  DoomedOsr.swap(RetiredOsr);
  {
    std::lock_guard<std::mutex> L(StateMutex);
    for (MethodState &MS : States) {
      for (std::unique_ptr<Graph> &G : MS.Retired) {
        Doomed.push_back(std::move(G));
        ++Jit.RetiredReclaimed;
      }
      for (std::unique_ptr<LinearCode> &LC : MS.RetiredLinear)
        DoomedLinear.push_back(std::move(LC));
      for (std::unique_ptr<NativeCode> &NC : MS.RetiredNative)
        DoomedNative.push_back(std::move(NC));
    }
    for (MethodState &MS : States) {
      MS.Retired.clear();
      MS.RetiredLinear.clear();
      MS.RetiredNative.clear();
    }
    HasRetired.store(false, std::memory_order_relaxed);
  }
  DoomedNative.clear(); // unmap before the LinearCode tables go away
}

void Isolate::waitForCompilerIdle() {
  if (!Broker)
    return;
  Broker->waitIdle(Id);
  uint64_t HighWater = Broker->queueDepthHighWater();
  std::lock_guard<std::mutex> L(StateMutex);
  Jit.QueueDepthHighWater = std::max(Jit.QueueDepthHighWater, HighWater);
}

bool Isolate::handleOsr(MethodId Method, int TargetBci,
                        std::vector<Value> &Locals, Value &Out) {
  auto Key = std::make_pair(Method, TargetBci);
  auto It = OsrTable.find(Key);
  if (It == OsrTable.end()) {
    if (++OsrBackedges[Key] < Options.OsrThreshold)
      return false;
    // Structural admission (loop header, not nested, no monitors) is a
    // bytecode walk; compute it once per site.
    auto SIt = OsrSupport.find(Key);
    if (SIt == OsrSupport.end())
      SIt = OsrSupport.emplace(Key, osrEntrySupported(P, Method, TargetBci))
                .first;
    if (!SIt->second)
      return false;
    // Per-attempt runtime condition: every local must carry a typed
    // value (a Void local has no parameter type to compile against).
    // Retry at a later back edge — the interpreter keeps running.
    for (const Value &V : Locals)
      if (V.isVoid())
        return false;

    // Compile the loop version synchronously on the mutator: the frame
    // waiting to transfer IS the request, so queueing it behind the
    // broker would let the loop finish interpreted first.
    uint64_t Version;
    {
      std::lock_guard<std::mutex> L(StateMutex);
      Version = States[Method].Version;
    }
    SpeshSnapshot Snap = makeSpeshSnapshot(Method);
    Snap.IsOsr = true;
    Snap.OsrEntryBci = TargetBci;
    Snap.OsrLocalTypes.reserve(Locals.size());
    for (const Value &V : Locals)
      Snap.OsrLocalTypes.push_back(V.type());
    CompileResult R = runCompilePipeline(P, Method,
                                         ProfileSnapshot(Profiles, P, Method),
                                         Options.Compiler, Id, &Snap);
    OsrCode OC;
    OC.G = std::move(R.G);
    OC.Linear = std::move(R.Code);
    OC.Version = Version;
    // Mirror executeCompiled's tier gating: machine code only dispatches
    // in Native and Differential modes, so only those emit it.
    if (OC.Linear && Options.EnableNativeTier &&
        (Options.Exec == ExecMode::Native ||
         Options.Exec == ExecMode::Differential))
      OC.Native = emitNativeCode(*OC.Linear, CodeCache::process());
    {
      std::lock_guard<std::mutex> L(StateMutex);
      ++SpeshM.OsrCompiles;
      SpeshM.OsrEscapeStats += R.Stats;
      Jit.CompileNanos += R.TotalNanos;
      Jit.PhaseNanos += R.Phases;
      Jit.FixpointCapHits += R.FixpointCapHits;
      Jit.EscapeStats += R.Stats;
    }
    if (traceWants(TraceCompile))
      Tracer::get().instant(TraceCompile, "osr-compile", "method",
                            static_cast<int64_t>(Method), "bci",
                            static_cast<int64_t>(TargetBci), nullptr, nullptr,
                            "isolate", static_cast<int64_t>(Id));
    It = OsrTable.emplace(Key, std::move(OC)).first;
    OsrBackedges.erase(Key);
    JVM_DEBUG("osr-compiled m" << Method << " @bci " << TargetBci);
  }

  // Transfer: the loop frame's locals are the OSR graph's parameters.
  // The interpreter frame stays registered in ActiveFrames for the
  // duration (rooting Locals); the executors root their own copies.
  OsrCode &OC = It->second;
  ++CompiledDepth;
  if (OC.Native)
    Out = NatExecutor.execute(*OC.Native, Locals);
  else if (OC.Linear && Options.Exec != ExecMode::Graph)
    Out = LinExecutor.execute(*OC.Linear, Locals);
  else
    Out = Executor.execute(*OC.G, Locals);
  --CompiledDepth;
  {
    std::lock_guard<std::mutex> L(StateMutex);
    ++SpeshM.OsrEntries;
  }
  if (traceWants(TraceCompile))
    Tracer::get().instant(TraceCompile, "osr-entry", "method",
                          static_cast<int64_t>(Method), "bci",
                          static_cast<int64_t>(TargetBci), nullptr, nullptr,
                          "isolate", static_cast<int64_t>(Id));
  return true;
}

Value Isolate::handleDeopt(DeoptRequest &&Req) {
  const char *Reason = deoptReasonName(Req.Reason);
  if (traceWants(TraceDeopt))
    Tracer::get().instant(TraceDeopt, "deopt", "method",
                          static_cast<int64_t>(Req.Root), "rematerialized",
                          static_cast<int64_t>(Req.Rematerialized), "reason",
                          Reason, "isolate", static_cast<int64_t>(Id));
  // Attribute the deopt to the installed code's log record (with the
  // Section 5.5 rematerialization payload) before a possible
  // invalidation retires that record's code.
  CLog.addDeopt(Req.Root, Reason, Req.Rematerialized, Req.GuardId);
  // Guard-attributed failures feed the despecialization loop: the guard
  // id indexes the installed plan, the failing speculation's SITE is
  // charged in the durable statistics, and past the threshold the site
  // is blocklisted — blocklist() returns true exactly once, so each
  // despecialized speculation triggers at most one recompile and the
  // planner converges.
  bool Despecialized = false;
  if (Req.GuardId != NoSpeculationId) {
    Speculation Failed;
    bool Attributed = false;
    {
      std::lock_guard<std::mutex> L(StateMutex);
      ++SpeshM.GuardFailures;
      const SpeshPlan &Plan = States[Req.Root].Spesh;
      if (Req.GuardId < Plan.size()) {
        Failed = Plan.Specs[Req.GuardId];
        Attributed = true;
      }
    }
    if (Attributed) {
      uint64_t Site = speculationSiteKey(Failed);
      uint64_t Fails = Spesh.recordGuardFailure(Req.Root, Site);
      if (traceWants(TraceDeopt))
        Tracer::get().instant(TraceDeopt, "guard-fail", "method",
                              static_cast<int64_t>(Req.Root), "guard",
                              static_cast<int64_t>(Req.GuardId), "kind",
                              speculationKindName(Failed.Kind), "isolate",
                              static_cast<int64_t>(Id));
      if (Fails >= Options.SpeshFailThreshold &&
          Spesh.blocklist(Req.Root, Site)) {
        {
          std::lock_guard<std::mutex> L(StateMutex);
          ++SpeshM.Despecializations;
        }
        if (traceWants(TraceDeopt))
          Tracer::get().instant(TraceDeopt, "despecialize", "method",
                                static_cast<int64_t>(Req.Root), "guard",
                                static_cast<int64_t>(Req.GuardId), "kind",
                                speculationKindName(Failed.Kind), "isolate",
                                static_cast<int64_t>(Id));
        invalidate(Req.Root);
        Despecialized = true;
      }
    }
  }
  MethodState &MS = States[Req.Root];
  ++MS.DeoptCount;
  if (!Despecialized && MS.DeoptCount > Options.MaxDeoptsPerMethod) {
    // The speculation keeps failing: throw the code away. Interpreted
    // re-runs update the branch/receiver profiles, so the next
    // compilation no longer contains the failing guard.
    invalidate(Req.Root);
  }
  return Interp.resume(std::move(Req.Frames));
}
