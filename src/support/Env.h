//===- Env.h - Process environment snapshot -------------------------*- C++ -*-===//
///
/// \file
/// One snapshot of every JVM_* environment variable the VM reads,
/// captured exactly once per process (EnvSnapshot::process()) before any
/// subsystem consumes it. This replaces the ~20 scattered std::getenv
/// calls — and in particular the function-local `static const char *X =
/// getenv(...)` first-call-wins pattern — with a single, auditable
/// surface:
///
///  - every variable is listed here, so `grep JVM_ Env.h` is the
///    authoritative inventory of the environment interface;
///  - capture happens at one point in time, so two subsystems can never
///    observe different values of the same variable;
///  - isolates carry a reference to the snapshot they were configured
///    from, so per-tenant option derivation is explicit instead of
///    ambient.
///
/// Fields keep the raw C-string values (pointers into the process
/// environment, stable for the process lifetime; nullptr = unset) and
/// each consumer keeps its own parsing/clamping rules — the snapshot
/// centralizes *when* the environment is read, not every component's
/// interpretation of it.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_SUPPORT_ENV_H
#define JVM_SUPPORT_ENV_H

namespace jvm {

struct EnvSnapshot {
  // Diagnostics ---------------------------------------------------------
  const char *Debug = nullptr;        ///< JVM_DEBUG: set = debug lines on
  const char *DumpPhases = nullptr;   ///< JVM_DUMP_PHASES: set = dump IR
  const char *DumpGraphDir = nullptr; ///< JVM_DUMP_GRAPH_DIR: snapshot dir
  const char *DumpNative = nullptr;   ///< JVM_DUMP_NATIVE: raw code dir

  // Execution -----------------------------------------------------------
  const char *ExecMode = nullptr;        ///< JVM_EXEC_MODE: tier selection
  const char *CompilerThreads = nullptr; ///< JVM_COMPILER_THREADS: shared
                                         ///< broker pool size (process-wide)
  const char *Spesh = nullptr;          ///< JVM_SPESH: 1 = speculation on
  const char *SpeshThreshold = nullptr; ///< JVM_SPESH_THRESHOLD: guard
                                        ///< failures before despecialize
  const char *OsrThreshold = nullptr;   ///< JVM_OSR_THRESHOLD: loop
                                        ///< back edges before OSR (0 = off)

  // Observability -------------------------------------------------------
  const char *MetricsJson = nullptr;     ///< JVM_METRICS_JSON: append path
  const char *CompileLog = nullptr;      ///< JVM_COMPILE_LOG: append path
  const char *Trace = nullptr;           ///< JVM_TRACE: export path
  const char *TraceCategories = nullptr; ///< JVM_TRACE_CATEGORIES
  const char *TraceRing = nullptr;       ///< JVM_TRACE_RING: events/thread
  const char *Prof = nullptr;        ///< JVM_PROF: enable sampling profiler
                                     ///< ("1", or a report append path)
  const char *ProfHz = nullptr;      ///< JVM_PROF_HZ: tick rate (default 1000)
  const char *ProfAllocBytes = nullptr; ///< JVM_PROF_ALLOC_BYTES: allocation
                                        ///< sample period (0 = off)
  const char *ProfFolded = nullptr;  ///< JVM_PROF_FOLDED: folded-stack path
  const char *ProfSeed = nullptr;    ///< JVM_PROF_SEED: alloc-sample jitter
  const char *ProfRing = nullptr;    ///< JVM_PROF_RING: samples/thread
  const char *PerfMap = nullptr;     ///< JVM_PERF_MAP: write /tmp/perf-PID.map

  // Memory --------------------------------------------------------------
  const char *HeapRegion = nullptr; ///< JVM_HEAP_REGION: region bytes
  const char *HeapYoung = nullptr;  ///< JVM_HEAP_YOUNG: young capacity
  const char *GcStress = nullptr;   ///< JVM_GC_STRESS: scavenge per alloc
  const char *GcLog = nullptr;      ///< JVM_GC_LOG: append path
  const char *GcCard = nullptr;     ///< JVM_GC_CARD: card bytes (pow2)
  const char *GcWorkers = nullptr;  ///< JVM_GC_WORKERS: scavenge copy
                                    ///< threads (0 = adaptive)
  const char *GcPauseBudget = nullptr; ///< JVM_GC_PAUSE_BUDGET_US: young
                                       ///< gen auto-sized to this pause
  const char *GcScanOld = nullptr;  ///< JVM_GC_SCAN_OLD: 1 = legacy full
                                    ///< old-space scan (no remembered set)
  const char *VerifyHeap = nullptr; ///< JVM_VERIFY_HEAP: post-GC verifier
  const char *GcBenchJson = nullptr; ///< JVM_GC_BENCH_JSON: bench_gc_oldspace
                                     ///< records path

  // Benchmark harness ---------------------------------------------------
  const char *BenchWarmup = nullptr;  ///< JVM_BENCH_WARMUP
  const char *BenchMeasure = nullptr; ///< JVM_BENCH_MEASURE
  const char *BenchRepeats = nullptr; ///< JVM_BENCH_REPEATS
  const char *BenchJson = nullptr;    ///< JVM_BENCH_JSON: Table 1 records
  const char *BenchDiag = nullptr;    ///< JVM_BENCH_DIAG: dump registry

  // Multi-tenant driver -------------------------------------------------
  const char *MtIsolates = nullptr; ///< JVM_MT_ISOLATES: comma grid
  const char *MtThreads = nullptr;  ///< JVM_MT_THREADS: comma grid
  const char *MtOps = nullptr;      ///< JVM_MT_OPS: ops/thread/point
  const char *MtJson = nullptr;     ///< JVM_MT_JSON: records path

  /// Reads the environment now. Tests that need a divergent view build
  /// their own snapshot; production code uses process().
  static EnvSnapshot capture();

  /// The process-wide snapshot, captured on first use and immutable
  /// afterwards. Every subsystem reads this one.
  static const EnvSnapshot &process();

  /// True if \p V is set and non-empty (the usual "is this path/value
  /// configured" test).
  static bool isSet(const char *V) { return V && *V; }

  /// True if \p V is set, non-empty and not "0" (boolean knobs like
  /// JVM_GC_STRESS that treat an explicit 0 as off).
  static bool isOn(const char *V) { return V && *V && *V != '0'; }
};

} // namespace jvm

#endif // JVM_SUPPORT_ENV_H
