//===- Debug.cpp ----------------------------------------------------------===//

#include "support/Debug.h"

#include "support/Env.h"

#include <cstdio>

namespace {

bool &debugFlag() {
  // Seeded from the process env snapshot (not a private getenv): every
  // subsystem observes the same JVM_DEBUG value, captured once.
  static bool Enabled = jvm::EnvSnapshot::process().Debug != nullptr;
  return Enabled;
}

} // namespace

bool jvm::isDebugEnabled() { return debugFlag(); }

void jvm::setDebugEnabled(bool Enabled) { debugFlag() = Enabled; }

void jvm::printDebugLine(const std::string &Text) {
  std::fprintf(stderr, "[jvm] %s\n", Text.c_str());
}
