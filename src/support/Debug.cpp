//===- Debug.cpp ----------------------------------------------------------===//

#include "support/Debug.h"

#include <cstdio>
#include <cstdlib>

namespace {

bool &debugFlag() {
  static bool Enabled = std::getenv("JVM_DEBUG") != nullptr;
  return Enabled;
}

} // namespace

bool jvm::isDebugEnabled() { return debugFlag(); }

void jvm::setDebugEnabled(bool Enabled) { debugFlag() = Enabled; }

void jvm::printDebugLine(const std::string &Text) {
  std::fprintf(stderr, "[jvm] %s\n", Text.c_str());
}
