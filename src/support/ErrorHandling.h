//===- ErrorHandling.h - Fatal errors and unreachable markers ---*- C++ -*-===//
///
/// \file
/// Helpers for programmatic errors: `jvm_unreachable` marks control flow
/// that must never execute, `reportFatalError` aborts with a message even
/// in builds without assertions.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_SUPPORT_ERRORHANDLING_H
#define JVM_SUPPORT_ERRORHANDLING_H

namespace jvm {

/// Prints \p Msg (with source location) to stderr and aborts.
[[noreturn]] void reportFatalError(const char *Msg, const char *File,
                                   unsigned Line);

} // namespace jvm

/// Marks a point in code that should never be reached. Always fatal, even
/// with assertions disabled, because continuing would corrupt VM state.
#define jvm_unreachable(MSG) ::jvm::reportFatalError(MSG, __FILE__, __LINE__)

#endif // JVM_SUPPORT_ERRORHANDLING_H
