//===- Debug.h - Optional debug output ---------------------------*- C++ -*-===//
///
/// \file
/// A tiny analog of LLVM_DEBUG: debug output is compiled in but only
/// emitted when enabled at runtime (via setDebugEnabled or the
/// JVM_DEBUG environment variable).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_SUPPORT_DEBUG_H
#define JVM_SUPPORT_DEBUG_H

#include <sstream>

namespace jvm {

/// Returns true if debug output is currently enabled.
bool isDebugEnabled();

/// Enables or disables debug output for the whole process.
void setDebugEnabled(bool Enabled);

/// Writes \p Text to stderr immediately (used by the JVM_DEBUG macro).
void printDebugLine(const std::string &Text);

} // namespace jvm

/// Emits a debug line when debugging is enabled. Usage:
///   JVM_DEBUG("merging state at node " << Node->id());
#define JVM_DEBUG(STREAM_EXPR)                                                 \
  do {                                                                         \
    if (::jvm::isDebugEnabled()) {                                             \
      std::ostringstream DebugOS;                                              \
      DebugOS << STREAM_EXPR;                                                  \
      ::jvm::printDebugLine(DebugOS.str());                                    \
    }                                                                          \
  } while (false)

#endif // JVM_SUPPORT_DEBUG_H
