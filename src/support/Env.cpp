//===- Env.cpp - Process environment snapshot ----------------------------------===//

#include "support/Env.h"

#include <cstdlib>

using namespace jvm;

EnvSnapshot EnvSnapshot::capture() {
  EnvSnapshot S;
  S.Debug = std::getenv("JVM_DEBUG");
  S.DumpPhases = std::getenv("JVM_DUMP_PHASES");
  S.DumpGraphDir = std::getenv("JVM_DUMP_GRAPH_DIR");
  S.DumpNative = std::getenv("JVM_DUMP_NATIVE");
  S.ExecMode = std::getenv("JVM_EXEC_MODE");
  S.CompilerThreads = std::getenv("JVM_COMPILER_THREADS");
  S.Spesh = std::getenv("JVM_SPESH");
  S.SpeshThreshold = std::getenv("JVM_SPESH_THRESHOLD");
  S.OsrThreshold = std::getenv("JVM_OSR_THRESHOLD");
  S.MetricsJson = std::getenv("JVM_METRICS_JSON");
  S.CompileLog = std::getenv("JVM_COMPILE_LOG");
  S.Trace = std::getenv("JVM_TRACE");
  S.TraceCategories = std::getenv("JVM_TRACE_CATEGORIES");
  S.TraceRing = std::getenv("JVM_TRACE_RING");
  S.Prof = std::getenv("JVM_PROF");
  S.ProfHz = std::getenv("JVM_PROF_HZ");
  S.ProfAllocBytes = std::getenv("JVM_PROF_ALLOC_BYTES");
  S.ProfFolded = std::getenv("JVM_PROF_FOLDED");
  S.ProfSeed = std::getenv("JVM_PROF_SEED");
  S.ProfRing = std::getenv("JVM_PROF_RING");
  S.PerfMap = std::getenv("JVM_PERF_MAP");
  S.HeapRegion = std::getenv("JVM_HEAP_REGION");
  S.HeapYoung = std::getenv("JVM_HEAP_YOUNG");
  S.GcStress = std::getenv("JVM_GC_STRESS");
  S.GcLog = std::getenv("JVM_GC_LOG");
  S.GcCard = std::getenv("JVM_GC_CARD");
  S.GcWorkers = std::getenv("JVM_GC_WORKERS");
  S.GcPauseBudget = std::getenv("JVM_GC_PAUSE_BUDGET_US");
  S.GcScanOld = std::getenv("JVM_GC_SCAN_OLD");
  S.VerifyHeap = std::getenv("JVM_VERIFY_HEAP");
  S.GcBenchJson = std::getenv("JVM_GC_BENCH_JSON");
  S.BenchWarmup = std::getenv("JVM_BENCH_WARMUP");
  S.BenchMeasure = std::getenv("JVM_BENCH_MEASURE");
  S.BenchRepeats = std::getenv("JVM_BENCH_REPEATS");
  S.BenchJson = std::getenv("JVM_BENCH_JSON");
  S.BenchDiag = std::getenv("JVM_BENCH_DIAG");
  S.MtIsolates = std::getenv("JVM_MT_ISOLATES");
  S.MtThreads = std::getenv("JVM_MT_THREADS");
  S.MtOps = std::getenv("JVM_MT_OPS");
  S.MtJson = std::getenv("JVM_MT_JSON");
  return S;
}

const EnvSnapshot &EnvSnapshot::process() {
  static const EnvSnapshot S = capture();
  return S;
}
