//===- ErrorHandling.cpp --------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

void jvm::reportFatalError(const char *Msg, const char *File, unsigned Line) {
  std::fprintf(stderr, "fatal error: %s (at %s:%u)\n", Msg, File, Line);
  std::fflush(stderr);
  std::abort();
}
