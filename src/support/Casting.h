//===- Casting.h - LLVM-style isa/cast/dyn_cast templates -------*- C++ -*-===//
///
/// \file
/// Hand-rolled RTTI in the style of llvm/Support/Casting.h. Classes opt in
/// by providing a static `classof(const Base *)` predicate; `isa<>`,
/// `cast<>` and `dyn_cast<>` then work without compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_SUPPORT_CASTING_H
#define JVM_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace jvm {

/// Returns true if \p Val is an instance of any of the types \p To....
/// \p Val must be non-null.
template <typename To, typename... Tos, typename From>
bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  if constexpr (std::is_base_of_v<To, From>)
    return true;
  else if (To::classof(Val))
    return true;
  if constexpr (sizeof...(Tos) > 0)
    return isa<Tos...>(Val);
  else
    return false;
}

/// Like isa<>, but tolerates a null pointer (returning false).
template <typename To, typename... Tos, typename From>
bool isa_and_nonnull(const From *Val) {
  return Val && isa<To, Tos...>(Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<>, but tolerates a null pointer (propagating it).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return isa_and_nonnull<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return isa_and_nonnull<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace jvm

#endif // JVM_SUPPORT_CASTING_H
