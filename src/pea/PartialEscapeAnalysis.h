//===- PartialEscapeAnalysis.h - The paper's core algorithm ---------*- C++ -*-===//
///
/// \file
/// Control-flow-sensitive partial escape analysis with scalar replacement
/// and lock elision (Stadler, Würthinger, Mössenböck: "Partial Escape
/// Analysis and Scalar Replacement for Java", CGO 2014).
///
/// The analysis walks the fixed-node control flow from Start, maintaining
/// for every tracked allocation an ObjectState: *virtual* (field values
/// and lock depth known; no allocation exists) or *escaped* (a
/// materialized value stands for the object). Operations on virtual
/// objects are replaced by state updates (scalar replacement, lock
/// elision, reference-equality folding); operations that let an object
/// escape insert a Materialize (CommitAllocation) node right before the
/// escape point — so allocation moves into exactly the branches that
/// need it. Merges run the MergeProcessor (Section 5.3), loops iterate
/// to a fixpoint with effect rollback (Section 5.4), and frame states
/// are rewritten to describe virtual objects symbolically so that
/// deoptimization can rebuild them (Section 5.5).
///
/// The same machinery restricted by a flow-insensitive pre-pass
/// (EquiEscapeSets) yields the all-or-nothing baseline of Section 6.2.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_PEA_PARTIALESCAPEANALYSIS_H
#define JVM_PEA_PARTIALESCAPEANALYSIS_H

#include "compiler/CompilerOptions.h"

namespace jvm {

class Graph;
class Program;

/// Counters describing what one analysis run did.
struct PEAStats {
  unsigned VirtualizedAllocations = 0; ///< allocation sites made virtual
  unsigned MaterializeSites = 0;       ///< Materialize nodes inserted
  unsigned ScalarReplacedLoads = 0;
  unsigned ScalarReplacedStores = 0;
  unsigned ElidedMonitorOps = 0; ///< MonitorEnter/Exit nodes removed
  unsigned FoldedChecks = 0;     ///< ref-equality / type checks folded
  unsigned LoopIterations = 0;   ///< extra loop fixpoint passes
  unsigned VirtualizedStates = 0;///< frame states rewritten (Section 5.5)

  /// Accumulates \p RHS field by field. The single aggregation point for
  /// the VM's JitMetrics and the benchmark harness — new counters added
  /// here cannot be silently dropped from per-run sums.
  PEAStats &operator+=(const PEAStats &RHS) {
    VirtualizedAllocations += RHS.VirtualizedAllocations;
    MaterializeSites += RHS.MaterializeSites;
    ScalarReplacedLoads += RHS.ScalarReplacedLoads;
    ScalarReplacedStores += RHS.ScalarReplacedStores;
    ElidedMonitorOps += RHS.ElidedMonitorOps;
    FoldedChecks += RHS.FoldedChecks;
    LoopIterations += RHS.LoopIterations;
    VirtualizedStates += RHS.VirtualizedStates;
    return *this;
  }
};

/// Runs partial escape analysis on \p G. Returns true if the graph
/// changed. Run canonicalize + DCE afterwards to reap folded branches
/// and detached nodes.
bool runPartialEscapeAnalysis(Graph &G, const Program &P,
                              const CompilerOptions &Opts,
                              PEAStats *Stats = nullptr);

/// The flow-insensitive baseline: identical machinery, but allocations
/// that escape *anywhere* (per EquiEscapeSets) are never virtualized.
bool runFlowInsensitiveEscapeAnalysis(Graph &G, const Program &P,
                                      const CompilerOptions &Opts,
                                      PEAStats *Stats = nullptr);

} // namespace jvm

#endif // JVM_PEA_PARTIALESCAPEANALYSIS_H
