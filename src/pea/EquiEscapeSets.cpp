//===- EquiEscapeSets.cpp - Flow-insensitive escape analysis ------------------===//

#include "pea/EquiEscapeSets.h"

#include "ir/Graph.h"
#include "support/Casting.h"

#include <map>

using namespace jvm;

namespace {

/// Union-find over nodes participating in escape sets (allocations and
/// the phis/loads that alias them).
class EquiEscapeSetsImpl {
public:
  explicit EquiEscapeSetsImpl(const Graph &G) : G(G) {}

  std::set<const Node *> run() {
    // Seed: every allocation is its own set.
    forEachLive([&](const Node *N) {
      if (isa<NewInstanceNode, NewArrayNode>(N))
        makeSet(N);
    });

    // Phis and loads can alias allocations; give them set identities too
    // so that merging works transitively. (A phi over references joins
    // the sets of all its inputs; a load from a tracked object joins the
    // target's set, because whatever was stored there is in that set.)
    forEachLive([&](const Node *N) {
      if (N->type() != ValueType::Ref)
        return;
      if (isa<PhiNode, LoadFieldNode, LoadIndexedNode>(N))
        makeSet(N);
    });

    bool Changed = true;
    while (Changed) {
      Changed = false;
      forEachLive([&](const Node *N) { Changed |= visit(N); });
    }

    std::set<const Node *> Result;
    forEachLive([&](const Node *N) {
      if (isa<NewInstanceNode, NewArrayNode>(N) && escaped(N))
        Result.insert(N);
    });
    return Result;
  }

private:
  template <typename Fn> void forEachLive(Fn F) {
    for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id)
      if (const Node *N = G.nodeAt(Id))
        F(N);
  }

  void makeSet(const Node *N) { Parent.emplace(N, N); }

  bool tracked(const Node *N) const { return N && Parent.count(N); }

  const Node *find(const Node *N) {
    const Node *Root = N;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    while (Parent[N] != Root) {
      const Node *Next = Parent[N];
      Parent[N] = Root;
      N = Next;
    }
    return Root;
  }

  /// Returns true if the merge changed anything.
  bool merge(const Node *A, const Node *B) {
    const Node *RA = find(A);
    const Node *RB = find(B);
    if (RA == RB)
      return false;
    Parent[RA] = RB;
    Escaped[RB] = Escaped[RB] || Escaped[RA];
    return true;
  }

  bool markEscaped(const Node *N) {
    const Node *R = find(N);
    if (Escaped[R])
      return false;
    Escaped[R] = true;
    return true;
  }

  bool escaped(const Node *N) { return Escaped[find(N)]; }

  bool visit(const Node *N) {
    bool Changed = false;
    switch (N->kind()) {
    case NodeKind::Phi: {
      if (!tracked(N))
        return false;
      const auto *Phi = cast<PhiNode>(N);
      for (unsigned I = 0, E = Phi->numValues(); I != E; ++I)
        if (tracked(Phi->valueAt(I)))
          Changed |= merge(N, Phi->valueAt(I));
      return Changed;
    }
    case NodeKind::StoreField: {
      const auto *Store = cast<StoreFieldNode>(N);
      if (!tracked(Store->value()))
        return false;
      if (tracked(Store->object()))
        return merge(Store->value(), Store->object());
      return markEscaped(Store->value());
    }
    case NodeKind::StoreIndexed: {
      const auto *Store = cast<StoreIndexedNode>(N);
      if (!tracked(Store->value()))
        return false;
      if (tracked(Store->array()))
        return merge(Store->value(), Store->array());
      return markEscaped(Store->value());
    }
    case NodeKind::LoadField: {
      const auto *Load = cast<LoadFieldNode>(N);
      if (tracked(Load) && tracked(Load->object()))
        return merge(Load, Load->object());
      return false;
    }
    case NodeKind::LoadIndexed: {
      const auto *Load = cast<LoadIndexedNode>(N);
      if (tracked(Load) && tracked(Load->array()))
        return merge(Load, Load->array());
      return false;
    }
    case NodeKind::StoreStatic: {
      const auto *Store = cast<StoreStaticNode>(N);
      if (tracked(Store->value()))
        return markEscaped(Store->value());
      return false;
    }
    case NodeKind::Return: {
      const auto *Ret = cast<ReturnNode>(N);
      if (Ret->hasValue() && tracked(Ret->value()))
        return markEscaped(Ret->value());
      return false;
    }
    case NodeKind::Invoke: {
      const auto *Call = cast<InvokeNode>(N);
      for (unsigned I = 0, E = Call->numArgs(); I != E; ++I)
        if (tracked(Call->argAt(I)))
          Changed |= markEscaped(Call->argAt(I));
      return Changed;
    }
    default:
      return false;
    }
  }

  const Graph &G;
  std::map<const Node *, const Node *> Parent;
  std::map<const Node *, bool> Escaped;
};

} // namespace

std::set<const Node *> jvm::computeEscapingAllocations(const Graph &G) {
  return EquiEscapeSetsImpl(G).run();
}
