//===- EquiEscapeSets.h - Flow-insensitive escape analysis ----------*- C++ -*-===//
///
/// \file
/// The equi-escape-sets algorithm (Kotzmann & Mössenböck, VEE'05): a
/// union-find over allocations where operations either merge sets (an
/// allocation flows into another tracked object or a phi) or mark a set
/// escaping (passed to a call, returned, stored to a static or into an
/// untracked object). The verdict is all-or-nothing per allocation —
/// exactly the baseline the paper's Partial Escape Analysis improves on
/// (Sections 3 and 8.1), standing in for the HotSpot server compiler's
/// escape analysis in the Section 6.2 comparison.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_PEA_EQUIESCAPESETS_H
#define JVM_PEA_EQUIESCAPESETS_H

#include <set>

namespace jvm {

class Graph;
class Node;

/// Returns the allocations (NewInstance/NewArray nodes) of \p G that
/// escape according to the flow-insensitive equi-escape-sets analysis.
/// Allocations *not* in the result never escape on any path and are safe
/// to scalar-replace unconditionally.
std::set<const Node *> computeEscapingAllocations(const Graph &G);

} // namespace jvm

#endif // JVM_PEA_EQUIESCAPESETS_H
