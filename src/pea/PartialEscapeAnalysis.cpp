//===- PartialEscapeAnalysis.cpp - The paper's core algorithm ------------------===//
//
// Implementation notes
// --------------------
// The analysis is effect-based: while walking the control flow it never
// mutates existing graph structure directly. Graph edits are queued as
// closures ("effects") and applied only after the whole analysis
// finished. New nodes (VirtualObject, Materialize, AllocatedObject,
// phis) *are* created eagerly — the analysis needs their identities —
// and are tracked so that a discarded loop iteration (Section 5.4) can
// roll back both its effects and its nodes.
//
//===----------------------------------------------------------------------===//

#include "pea/PartialEscapeAnalysis.h"

#include "bytecode/Program.h"
#include "ir/Graph.h"
#include "ir/Printer.h"
#include "pea/EquiEscapeSets.h"
#include "support/Casting.h"
#include "support/Debug.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace jvm;

namespace {

/// Maximum constant array length the analysis is willing to virtualize.
constexpr int64_t MaxVirtualArrayLength = 64;

/// The paper's ObjectState (Listing 7): what is known about one tracked
/// allocation at one point in the control flow.
struct ObjState {
  bool Virtual = true;
  /// Field/element values while virtual. Entries referencing other
  /// tracked allocations hold the VirtualObjectNode itself.
  std::vector<Node *> Entries;
  int LockDepth = 0;
  /// The runtime value standing for the object once escaped.
  Node *Materialized = nullptr;

  bool operator==(const ObjState &O) const = default;
};

/// The paper's State (Listing 7): object states plus the alias map.
struct PeaState {
  std::map<VirtualObjectNode *, ObjState> Objects;
  std::map<Node *, VirtualObjectNode *> Aliases;
};

class PartialEscapeClosure {
public:
  PartialEscapeClosure(Graph &G, const Program &P,
                       const CompilerOptions &Opts,
                       std::set<const Node *> DoNotVirtualize, PEAStats *Out)
      : G(G), P(P), Opts(Opts), DoNotVirtualize(std::move(DoNotVirtualize)),
        Out(Out) {}

  bool run() {
    PeaState Entry;
    RegionResult Res =
        processRegion(G.start(), std::move(Entry), /*Boundary=*/nullptr);
    assert(Res.BackedgeStates.empty() && Res.ExitStates.empty() &&
           "loop boundaries leaked out of the top-level region");
    (void)Res;
    bool Changed = !Effects.empty();
    applyEffects();
    if (Out)
      *Out = Stats;
    return Changed;
  }

private:
  //===------------------------------------------------------------------===//
  // Effects and node tracking
  //===------------------------------------------------------------------===//

  struct Checkpoint {
    size_t NumEffects;
    size_t NumCreated;
    size_t NumRemovals;
    size_t NumReplacements;
  };

  Checkpoint checkpoint() const {
    return {Effects.size(), Created.size(), RemovalVec.size(),
            ReplacedVec.size()};
  }

  void rollback(Checkpoint CP) {
    Effects.resize(CP.NumEffects);
    if (RemovalVec.size() != CP.NumRemovals) {
      RemovalVec.resize(CP.NumRemovals);
      RemovalSet.clear();
      RemovalSet.insert(RemovalVec.begin(), RemovalVec.end());
    }
    while (ReplacedVec.size() > CP.NumReplacements) {
      Replaced.erase(ReplacedVec.back());
      ReplacedVec.pop_back();
    }
    for (size_t I = Created.size(); I-- > CP.NumCreated;) {
      Node *N = Created[I];
      if (N->isDeleted())
        continue;
      while (N->numInputs() > 0)
        N->removeInput(N->numInputs() - 1);
    }
    for (size_t I = Created.size(); I-- > CP.NumCreated;) {
      Node *N = Created[I];
      if (N->isDeleted())
        continue;
      assert(!N->hasUsages() && "rolled-back node escaped into live code");
      G.deleteNode(N);
    }
    Created.resize(CP.NumCreated);
  }

  template <typename T, typename... Args> T *createNode(Args &&...A) {
    T *N = G.create<T>(std::forward<Args>(A)...);
    Created.push_back(N);
    return N;
  }

  void addEffect(std::function<void()> Fn) { Effects.push_back(std::move(Fn)); }

  void applyEffects() {
    for (const std::function<void()> &Fn : Effects)
      Fn();
    // Remove nodes that were unlinked from control flow and whose values
    // were fully redirected.
    for (Node *N : Unlinked) {
      if (N->isDeleted())
        continue;
      if (!N->hasUsages()) {
        G.deleteNode(N);
        continue;
      }
      // Remaining usages must come from now-dead metadata (orphaned frame
      // states of removed side effects); dead-code elimination deletes
      // them and then the node itself.
    }
  }

  //===------------------------------------------------------------------===//
  // State helpers
  //===------------------------------------------------------------------===//

  /// Scalar-replaced loads are replaced at their usages when effects
  /// apply; any value the *analysis* captures (object entries, rebuilt
  /// compares) must be resolved through those replacements first, or a
  /// later effect would re-install a reference to the dead load.
  Node *resolveReplaced(Node *V) const {
    for (auto It = Replaced.find(V); It != Replaced.end();
         It = Replaced.find(V))
      V = It->second;
    return V;
  }

  VirtualObjectNode *aliasOf(const PeaState &S, Node *V) const {
    if (!V)
      return nullptr;
    if (auto *VO = dyn_cast<VirtualObjectNode>(V))
      return VO;
    auto It = S.Aliases.find(V);
    return It == S.Aliases.end() ? nullptr : It->second;
  }

  /// The value to record in a tracked object's entry for \p V.
  Node *canonicalEntry(const PeaState &S, Node *V) const {
    if (VirtualObjectNode *VO = aliasOf(S, V)) {
      const ObjState &OS = S.Objects.at(VO);
      return OS.Virtual ? static_cast<Node *>(VO) : OS.Materialized;
    }
    return resolveReplaced(V);
  }

  void recordReplacement(Node *Old, Node *New) {
    ReplacedVec.push_back(Old);
    Replaced[Old] = resolveReplaced(New);
  }

  /// Resolves an entry for use as a runtime value; the caller must have
  /// ensured that no virtual object remains behind it.
  Node *resolveEntry(const PeaState &S, Node *E) const {
    if (auto *VO = dyn_cast<VirtualObjectNode>(E)) {
      const ObjState &OS = S.Objects.at(VO);
      assert(!OS.Virtual && "resolving an entry that is still virtual");
      return OS.Materialized;
    }
    return E;
  }

  Node *defaultValueFor(ValueType Ty) {
    return Ty == ValueType::Ref ? static_cast<Node *>(G.nullConstant())
                                : G.intConstant(0);
  }

  //===------------------------------------------------------------------===//
  // Materialization (Section 4: "In order for it to escape, it needs to
  // exist").
  //===------------------------------------------------------------------===//

  /// Materializes \p VO (and every virtual object transitively reachable
  /// from its entries) immediately before \p Before.
  void materialize(PeaState &S, VirtualObjectNode *VO, FixedNode *Before) {
    ObjState &Root = S.Objects.at(VO);
    if (!Root.Virtual)
      return;
    // Group: closure over virtual entries (cyclic structures commit
    // together).
    std::vector<VirtualObjectNode *> Group;
    std::set<VirtualObjectNode *> InGroup;
    std::vector<VirtualObjectNode *> Work{VO};
    InGroup.insert(VO);
    while (!Work.empty()) {
      VirtualObjectNode *Cur = Work.back();
      Work.pop_back();
      Group.push_back(Cur);
      for (Node *E : S.Objects.at(Cur).Entries)
        if (auto *Ref = dyn_cast<VirtualObjectNode>(E))
          if (S.Objects.at(Ref).Virtual && InGroup.insert(Ref).second)
            Work.push_back(Ref);
    }

    auto *Commit = createNode<MaterializeNode>(nullptr);
    // First pass: register objects (entries may name group members).
    std::vector<AllocatedObjectNode *> Projections;
    for (unsigned I = 0, E = Group.size(); I != E; ++I) {
      VirtualObjectNode *Member = Group[I];
      ObjState &OS = S.Objects.at(Member);
      std::vector<Node *> Entries;
      Entries.reserve(OS.Entries.size());
      for (Node *En : OS.Entries) {
        if (auto *Ref = dyn_cast<VirtualObjectNode>(En)) {
          if (InGroup.count(Ref)) {
            Entries.push_back(Ref); // Same-commit reference.
            continue;
          }
          assert(!S.Objects.at(Ref).Virtual &&
                 "virtual entry outside the materialization group");
          Entries.push_back(S.Objects.at(Ref).Materialized);
          continue;
        }
        Entries.push_back(En);
      }
      Commit->addObject(Member, Entries, OS.LockDepth);
      Projections.push_back(createNode<AllocatedObjectNode>(Commit, I));
    }
    // Second pass: flip the states.
    for (unsigned I = 0, E = Group.size(); I != E; ++I) {
      ObjState &OS = S.Objects.at(Group[I]);
      OS.Virtual = false;
      OS.Materialized = Projections[I];
      OS.Entries.clear();
      OS.LockDepth = 0;
    }
    addEffect([this, Commit, Before] { G.insertBefore(Commit, Before); });
    ++Stats.MaterializeSites;
    JVM_DEBUG("materialize group of " << Group.size() << " before "
                                      << nodeLabel(Before));
  }

  /// Ensures input \p Index of \p N holds a real runtime value, inserting
  /// a materialization before \p N if the value is a virtual object.
  void escapeInput(PeaState &S, FixedNode *N, unsigned Index) {
    Node *V = N->input(Index);
    VirtualObjectNode *VO = aliasOf(S, V);
    if (!VO)
      return;
    if (S.Objects.at(VO).Virtual)
      materialize(S, VO, N);
    Node *Mat = S.Objects.at(VO).Materialized;
    addEffect([N, Index, Mat] { N->setInput(Index, Mat); });
  }

  //===------------------------------------------------------------------===//
  // Floating check folding (ref equality, null checks, type checks)
  //===------------------------------------------------------------------===//

  /// Folds a Compare/InstanceOf input of \p User if escape-analysis state
  /// decides it, replacing only this user's input (the floating node may
  /// be shared across positions with different states).
  void foldCheckInput(PeaState &S, Node *User, unsigned Index) {
    Node *V = User->input(Index);
    if (!V)
      return;
    Node *Folded = nullptr;
    if (auto *Cmp = dyn_cast<CompareNode>(V))
      Folded = foldCompare(S, Cmp);
    else if (auto *IO = dyn_cast<InstanceOfNode>(V))
      Folded = foldInstanceOf(S, IO);
    if (!Folded || Folded == V)
      return;
    ++Stats.FoldedChecks;
    addEffect([User, Index, Folded] { User->setInput(Index, Folded); });
  }

  Node *foldCompare(PeaState &S, CompareNode *Cmp) {
    if (Cmp->op() == CmpKind::IsNull) {
      VirtualObjectNode *VO = aliasOf(S, Cmp->x());
      if (!VO)
        return nullptr;
      if (S.Objects.at(VO).Virtual)
        return G.intConstant(0); // Virtual objects are never null.
      return rebuildCompare(S, Cmp);
    }
    if (Cmp->op() != CmpKind::RefEq)
      return nullptr;
    VirtualObjectNode *VX = aliasOf(S, Cmp->x());
    VirtualObjectNode *VY = aliasOf(S, Cmp->y());
    if (!VX && !VY)
      return nullptr;
    bool XVirtual = VX && S.Objects.at(VX).Virtual;
    bool YVirtual = VY && S.Objects.at(VY).Virtual;
    if (XVirtual && YVirtual)
      return G.intConstant(VX == VY ? 1 : 0);
    if (XVirtual || YVirtual)
      return G.intConstant(0); // Exactly one side is virtual (Section 5.2).
    return rebuildCompare(S, Cmp);
  }

  /// Both sides are real values but reference escaped aliases: rebuild
  /// the compare against the materialized values.
  Node *rebuildCompare(PeaState &S, CompareNode *Cmp) {
    Node *X = canonicalEntry(S, Cmp->x());
    Node *Y = Cmp->op() == CmpKind::IsNull ? nullptr
                                           : canonicalEntry(S, Cmp->y());
    return createNode<CompareNode>(Cmp->op(), X, Y);
  }

  Node *foldInstanceOf(PeaState &S, InstanceOfNode *IO) {
    VirtualObjectNode *VO = aliasOf(S, IO->object());
    if (!VO)
      return nullptr;
    const ObjState &OS = S.Objects.at(VO);
    if (!OS.Virtual)
      return createNode<InstanceOfNode>(IO->testedClass(), IO->isExact(),
                                        OS.Materialized);
    if (VO->isArray())
      return G.intConstant(0);
    bool Result = IO->isExact()
                      ? VO->objectClass() == IO->testedClass()
                      : P.isSubclassOf(VO->objectClass(), IO->testedClass());
    return G.intConstant(Result ? 1 : 0);
  }

  //===------------------------------------------------------------------===//
  // Frame state virtualization (Section 5.5)
  //===------------------------------------------------------------------===//

  /// Rewrites the frame-state chain of \p User so that references to
  /// virtual objects become VirtualObjectNode references with attached
  /// field snapshots, and references to escaped objects become their
  /// materialized values. The chain is duplicated because outer states
  /// are shared across positions with different object states.
  void processStateOn(FixedNode *User, FrameStateNode *FS, PeaState &S) {
    if (!FS)
      return;
    struct StateRewrite {
      FrameStateNode *Orig;
      std::vector<std::pair<unsigned, Node *>> Replacements;
    };
    std::vector<StateRewrite> Chain;
    std::set<VirtualObjectNode *> Referenced;
    bool Any = false;
    for (FrameStateNode *Cur = FS; Cur; Cur = Cur->outer()) {
      assert(Cur->numVirtualMappings() == 0 &&
             "escape analysis runs once per compilation");
      StateRewrite R{Cur, {}};
      unsigned Total =
          1 + Cur->numLocals() + Cur->numStack() + Cur->numLocks();
      for (unsigned I = 1; I != Total; ++I) {
        VirtualObjectNode *VO = aliasOf(S, Cur->input(I));
        if (!VO)
          continue;
        Any = true;
        const ObjState &OS = S.Objects.at(VO);
        if (OS.Virtual) {
          R.Replacements.push_back({I, VO});
          collectVirtualClosure(S, VO, Referenced);
        } else {
          R.Replacements.push_back({I, OS.Materialized});
        }
      }
      Chain.push_back(std::move(R));
    }
    if (!Any)
      return;
    ++Stats.VirtualizedStates;

    struct MappingSnapshot {
      VirtualObjectNode *VO;
      std::vector<Node *> Entries;
      int LockDepth;
    };
    std::vector<MappingSnapshot> Mappings;
    for (VirtualObjectNode *VO : Referenced) {
      const ObjState &OS = S.Objects.at(VO);
      MappingSnapshot M{VO, {}, OS.LockDepth};
      for (Node *E : OS.Entries) {
        if (auto *Ref = dyn_cast<VirtualObjectNode>(E)) {
          if (S.Objects.at(Ref).Virtual) {
            assert(Referenced.count(Ref) && "closure missed a virtual ref");
            M.Entries.push_back(Ref);
          } else {
            M.Entries.push_back(S.Objects.at(Ref).Materialized);
          }
          continue;
        }
        M.Entries.push_back(E);
      }
      Mappings.push_back(std::move(M));
    }

    addEffect([this, User, Chain, Mappings] {
      FrameStateNode *Outer = nullptr;
      FrameStateNode *Inner = nullptr;
      for (auto It = Chain.rbegin(), E = Chain.rend(); It != E; ++It) {
        FrameStateNode *Src = It->Orig;
        auto *Dup = G.create<FrameStateNode>(
            Src->method(), Src->bci(), Src->isReexecute(), Src->numLocals(),
            Src->numStack(), Src->numLocks());
        unsigned Total =
            1 + Src->numLocals() + Src->numStack() + Src->numLocks();
        for (unsigned I = 1; I != Total; ++I)
          Dup->setInput(I, Src->input(I));
        for (const auto &[Index, Repl] : It->Replacements)
          Dup->setInput(Index, Repl);
        Dup->setOuter(Outer);
        Outer = Dup;
        Inner = Dup;
      }
      for (const MappingSnapshot &M : Mappings)
        Inner->addVirtualMapping(M.VO, M.Entries, M.LockDepth);
      if (auto *SN = dyn_cast<StatefulNode>(User))
        SN->setState(Inner);
      else if (auto *D = dyn_cast<DeoptimizeNode>(User))
        D->setInput(0, Inner);
      else
        jvm_unreachable("frame state on an unexpected node kind");
    });
  }

  void collectVirtualClosure(const PeaState &S, VirtualObjectNode *VO,
                             std::set<VirtualObjectNode *> &Set) const {
    if (!Set.insert(VO).second)
      return;
    for (Node *E : S.Objects.at(VO).Entries)
      if (auto *Ref = dyn_cast<VirtualObjectNode>(E))
        if (S.Objects.at(Ref).Virtual)
          collectVirtualClosure(S, Ref, Set);
  }

  //===------------------------------------------------------------------===//
  // Per-node transfer functions (Section 5.2)
  //===------------------------------------------------------------------===//

  /// Schedules \p N for removal from control flow and remembers the
  /// decision so that merge-time liveness checks can ignore it.
  void unlink(FixedWithNextNode *N) {
    recordRemoval(N);
    addEffect([this, N] {
      G.unlinkFixed(N);
      Unlinked.push_back(N);
    });
  }

  void recordRemoval(Node *N) {
    if (RemovalSet.insert(N).second)
      RemovalVec.push_back(N);
  }

  /// True if some unprocessed (i.e. downstream on the current walk) part
  /// of the graph can still observe the value of \p N. Floating users
  /// (phis, frame states, compares) are observers only if their own
  /// users are.
  bool isObservedDownstream(Node *N, std::set<Node *> &Visited) {
    for (Node *U : N->usages()) {
      if (RemovalSet.count(U))
        continue;
      if (!Visited.insert(U).second)
        continue;
      if (U->isFixed()) {
        auto It = ProcessedEpoch.find(U);
        if (It == ProcessedEpoch.end() || It->second != Epoch)
          return true;
        continue;
      }
      if (isObservedDownstream(U, Visited))
        return true;
    }
    return false;
  }

  void processNode(FixedWithNextNode *N, PeaState &S) {
    switch (N->kind()) {
    case NodeKind::NewInstance: {
      auto *New = cast<NewInstanceNode>(N);
      if (DoNotVirtualize.count(New))
        return;
      auto *VO = createNode<VirtualObjectNode>(
          New->instanceClass(), /*IsArray=*/false, ValueType::Void,
          New->numFields());
      ObjState OS;
      const ClassInfo &C = P.classAt(New->instanceClass());
      for (unsigned I = 0, E = New->numFields(); I != E; ++I)
        OS.Entries.push_back(defaultValueFor(C.Fields[I].Ty));
      S.Objects[VO] = std::move(OS);
      S.Aliases[New] = VO;
      unlink(New);
      ++Stats.VirtualizedAllocations;
      return;
    }
    case NodeKind::NewArray: {
      auto *New = cast<NewArrayNode>(N);
      auto *Len = dyn_cast<ConstantIntNode>(New->length());
      if (DoNotVirtualize.count(New) || !Len || Len->value() < 0 ||
          Len->value() > MaxVirtualArrayLength)
        return;
      auto *VO = createNode<VirtualObjectNode>(
          NoClass, /*IsArray=*/true, New->elementType(),
          static_cast<unsigned>(Len->value()));
      ObjState OS;
      for (int64_t I = 0, E = Len->value(); I != E; ++I)
        OS.Entries.push_back(defaultValueFor(New->elementType()));
      S.Objects[VO] = std::move(OS);
      S.Aliases[New] = VO;
      unlink(New);
      ++Stats.VirtualizedAllocations;
      return;
    }

    case NodeKind::LoadField: {
      auto *Load = cast<LoadFieldNode>(N);
      VirtualObjectNode *VO = aliasOf(S, Load->object());
      if (!VO)
        return;
      const ObjState &OS = S.Objects.at(VO);
      if (!OS.Virtual) {
        addEffect([Load, Mat = OS.Materialized] { Load->setInput(0, Mat); });
        return;
      }
      Node *Entry = OS.Entries[Load->field()];
      replaceLoadedValue(S, Load, Entry);
      return;
    }
    case NodeKind::StoreField: {
      auto *Store = cast<StoreFieldNode>(N);
      foldCheckInput(S, Store, 1);
      VirtualObjectNode *VO = aliasOf(S, Store->object());
      if (VO && S.Objects.at(VO).Virtual) {
        S.Objects.at(VO).Entries[Store->field()] =
            canonicalEntry(S, Store->value());
        unlink(Store);
        ++Stats.ScalarReplacedStores;
        return;
      }
      if (VO)
        addEffect([Store, Mat = S.Objects.at(VO).Materialized] {
          Store->setInput(0, Mat);
        });
      escapeInput(S, Store, 1); // The stored value escapes into the heap.
      processStateOn(Store, Store->state(), S);
      return;
    }

    case NodeKind::LoadIndexed: {
      auto *Load = cast<LoadIndexedNode>(N);
      VirtualObjectNode *VO = aliasOf(S, Load->array());
      if (!VO)
        return;
      if (S.Objects.at(VO).Virtual) {
        auto *Idx = dyn_cast<ConstantIntNode>(Load->index());
        if (Idx && Idx->value() >= 0 &&
            Idx->value() <
                static_cast<int64_t>(S.Objects.at(VO).Entries.size())) {
          Node *Entry = S.Objects.at(VO).Entries[Idx->value()];
          replaceLoadedValue(S, Load, Entry);
          return;
        }
        // Unknown index: the array must exist.
        materialize(S, VO, Load);
      }
      addEffect([Load, Mat = S.Objects.at(VO).Materialized] {
        Load->setInput(0, Mat);
      });
      return;
    }
    case NodeKind::StoreIndexed: {
      auto *Store = cast<StoreIndexedNode>(N);
      foldCheckInput(S, Store, 2);
      VirtualObjectNode *VO = aliasOf(S, Store->array());
      if (VO && S.Objects.at(VO).Virtual) {
        auto *Idx = dyn_cast<ConstantIntNode>(Store->index());
        if (Idx && Idx->value() >= 0 &&
            Idx->value() <
                static_cast<int64_t>(S.Objects.at(VO).Entries.size())) {
          S.Objects.at(VO).Entries[Idx->value()] =
              canonicalEntry(S, Store->value());
          unlink(Store);
          ++Stats.ScalarReplacedStores;
          return;
        }
        materialize(S, VO, Store);
      }
      if (VO)
        addEffect([Store, Mat = S.Objects.at(VO).Materialized] {
          Store->setInput(0, Mat);
        });
      escapeInput(S, Store, 2);
      processStateOn(Store, Store->state(), S);
      return;
    }
    case NodeKind::ArrayLength: {
      auto *Len = cast<ArrayLengthNode>(N);
      VirtualObjectNode *VO = aliasOf(S, Len->array());
      if (!VO)
        return;
      const ObjState &OS = S.Objects.at(VO);
      if (OS.Virtual) {
        Node *C = G.intConstant(VO->numEntries());
        recordReplacement(Len, C);
        addEffect([this, Len, C] {
          Len->replaceAtAllUsages(C);
          G.unlinkFixed(Len);
          Unlinked.push_back(Len);
        });
        ++Stats.ScalarReplacedLoads;
        return;
      }
      addEffect([Len, Mat = OS.Materialized] { Len->setInput(0, Mat); });
      return;
    }

    case NodeKind::MonitorEnter: {
      auto *Mon = cast<MonitorEnterNode>(N);
      VirtualObjectNode *VO = aliasOf(S, Mon->object());
      if (VO && S.Objects.at(VO).Virtual) {
        ++S.Objects.at(VO).LockDepth;
        unlink(Mon);
        ++Stats.ElidedMonitorOps;
        return;
      }
      if (VO)
        addEffect([Mon, Mat = S.Objects.at(VO).Materialized] {
          Mon->setInput(0, Mat);
        });
      processStateOn(Mon, Mon->state(), S);
      return;
    }
    case NodeKind::MonitorExit: {
      auto *Mon = cast<MonitorExitNode>(N);
      VirtualObjectNode *VO = aliasOf(S, Mon->object());
      if (VO && S.Objects.at(VO).Virtual) {
        assert(S.Objects.at(VO).LockDepth > 0 &&
               "monitor exit on an unlocked virtual object");
        --S.Objects.at(VO).LockDepth;
        unlink(Mon);
        ++Stats.ElidedMonitorOps;
        return;
      }
      if (VO)
        addEffect([Mon, Mat = S.Objects.at(VO).Materialized] {
          Mon->setInput(0, Mat);
        });
      processStateOn(Mon, Mon->state(), S);
      return;
    }

    case NodeKind::Invoke: {
      auto *Call = cast<InvokeNode>(N);
      for (unsigned I = 0, E = Call->numArgs(); I != E; ++I) {
        foldCheckInput(S, Call, I);
        escapeInput(S, Call, I); // Arguments escape the compilation scope.
      }
      processStateOn(Call, Call->state(), S);
      return;
    }

    case NodeKind::StoreStatic: {
      auto *Store = cast<StoreStaticNode>(N);
      foldCheckInput(S, Store, 0);
      escapeInput(S, Store, 0); // Globals escape (the paper's Listing 4).
      processStateOn(Store, Store->state(), S);
      return;
    }

    case NodeKind::Guard: {
      // The speculated condition may test a virtual object (e.g. a pinned
      // receiver type check); fold it like any floating check and
      // virtualize the attached deopt state so guarded regions do not
      // force materialization.
      auto *Gd = cast<GuardNode>(N);
      foldCheckInput(S, Gd, 0);
      processStateOn(Gd, Gd->state(), S);
      return;
    }

    case NodeKind::LoadStatic:
    case NodeKind::Materialize:
      return;

    default:
      jvm_unreachable("unhandled fixed node in escape analysis");
    }
  }

  /// Redirects the users of a scalar-replaced load: plain entry values
  /// replace the load everywhere; entries naming virtual objects make the
  /// load an alias instead (resolved as its users are processed).
  void replaceLoadedValue(PeaState &S, FixedWithNextNode *Load, Node *Entry) {
    ++Stats.ScalarReplacedLoads;
    if (auto *Ref = dyn_cast<VirtualObjectNode>(Entry)) {
      if (S.Objects.at(Ref).Virtual) {
        S.Aliases[Load] = Ref;
        unlink(Load);
        return;
      }
      Entry = S.Objects.at(Ref).Materialized;
    }
    Entry = resolveReplaced(Entry);
    recordReplacement(Load, Entry);
    addEffect([this, Load, Entry] {
      Load->replaceAtAllUsages(Entry);
      G.unlinkFixed(Load);
      Unlinked.push_back(Load);
    });
  }

  //===------------------------------------------------------------------===//
  // Control-flow driver
  //===------------------------------------------------------------------===//

  struct RegionResult {
    std::map<LoopEndNode *, PeaState> BackedgeStates;
    std::map<LoopExitNode *, PeaState> ExitStates;
  };

  RegionResult processRegion(FixedNode *Entry, PeaState EntryState,
                             LoopBeginNode *Boundary) {
    RegionResult Res;
    std::vector<std::pair<FixedNode *, PeaState>> Work;
    std::map<MergeNode *, std::map<int, PeaState>> Pending;
    Work.emplace_back(Entry, std::move(EntryState));

    while (!Work.empty()) {
      FixedNode *N = Work.back().first;
      PeaState S = std::move(Work.back().second);
      Work.pop_back();
      for (;;) {
        ProcessedEpoch[N] = Epoch;
        switch (N->kind()) {
        case NodeKind::Start:
        case NodeKind::Begin:
        case NodeKind::Merge:
        case NodeKind::LoopBegin:
          N = cast<FixedWithNextNode>(N)->next();
          continue;

        case NodeKind::LoopExit: {
          auto *X = cast<LoopExitNode>(N);
          if (X->loopBegin() == Boundary) {
            Res.ExitStates[X] = std::move(S);
            break;
          }
          // Exits of enclosing loops are recorded by the enclosing
          // region once control reaches them there.
          N = X->next();
          continue;
        }

        case NodeKind::End: {
          auto *End = cast<EndNode>(N);
          MergeNode *M = End->merge();
          assert(M && "end without a merge");
          if (auto *L = dyn_cast<LoopBeginNode>(M)) {
            assert(M->indexOfEnd(End) == 0 && "loop entered via back edge");
            std::map<LoopExitNode *, PeaState> Exits =
                processLoop(L, std::move(S));
            for (auto &[X, XS] : Exits)
              Work.emplace_back(X->next(), std::move(XS));
            break;
          }
          int Idx = M->indexOfEnd(End);
          Pending[M][Idx] = std::move(S);
          if (Pending[M].size() == M->numEnds()) {
            PeaState Merged = mergeAt(M, Pending[M]);
            Pending.erase(M);
            Work.emplace_back(M->next(), std::move(Merged));
          }
          break;
        }

        case NodeKind::LoopEnd: {
          auto *LE = cast<LoopEndNode>(N);
          assert(LE->loopBegin() == Boundary &&
                 "back edge of a foreign loop inside this region");
          Res.BackedgeStates[LE] = std::move(S);
          break;
        }

        case NodeKind::If: {
          auto *If = cast<IfNode>(N);
          foldCheckInput(S, If, 0);
          Work.emplace_back(If->falseSuccessor(), S);
          N = If->trueSuccessor();
          continue;
        }

        case NodeKind::Return: {
          auto *Ret = cast<ReturnNode>(N);
          if (Ret->hasValue()) {
            foldCheckInput(S, Ret, 0);
            escapeInput(S, Ret, 0); // Returned objects escape.
          }
          break;
        }

        case NodeKind::Deoptimize:
          processStateOn(cast<DeoptimizeNode>(N),
                         cast<DeoptimizeNode>(N)->state(), S);
          break;

        case NodeKind::Unreachable:
          break;

        default:
          processNode(cast<FixedWithNextNode>(N), S);
          N = cast<FixedWithNextNode>(N)->next();
          continue;
        }
        break; // The inner chain ended.
      }
    }
    assert(Pending.empty() && "merge with unreached predecessor ends");
    return Res;
  }

  //===------------------------------------------------------------------===//
  // MergeProcessor (Section 5.3)
  //===------------------------------------------------------------------===//

  PeaState mergeAt(MergeNode *M, std::map<int, PeaState> &PredMap) {
    unsigned NumPreds = M->numEnds();
    std::vector<PeaState *> Preds;
    for (unsigned I = 0; I != NumPreds; ++I)
      Preds.push_back(&PredMap.at(static_cast<int>(I)));

    std::set<PhiNode *> CreatedPhis;
    // Materializations during merging can invalidate earlier decisions;
    // iterate until no further materialization happens (Section 5.3).
    for (;;) {
      bool Redo = false;
      PeaState Out;

      // Kept objects: known in every predecessor AND still observable by
      // unprocessed code through some alias (the paper's "at least one
      // common alias" intersection rule, sharpened by liveness): objects
      // nobody can see after the merge are dropped instead of
      // materialized.
      std::vector<VirtualObjectNode *> Kept;
      std::set<VirtualObjectNode *> KeptSet;
      std::map<VirtualObjectNode *, std::vector<Node *>> AliasesOf;
      for (unsigned K = 0; K != NumPreds; ++K)
        for (const auto &[N2, VO2] : Preds[K]->Aliases)
          AliasesOf[VO2].push_back(N2);
      for (const auto &[VO, OS0] : Preds[0]->Objects) {
        bool Everywhere = true;
        for (unsigned K = 1; K != NumPreds && Everywhere; ++K)
          Everywhere = Preds[K]->Objects.count(VO) != 0;
        if (!Everywhere)
          continue;
        bool Observable = !Opts.PeaMergeLivenessPruning;
        for (Node *Alias : AliasesOf[VO]) {
          if (Observable)
            break;
          std::set<Node *> Visited;
          Observable = isObservedDownstream(Alias, Visited);
        }
        if (Observable) {
          Kept.push_back(VO);
          KeptSet.insert(VO);
        }
      }
      // An object referenced from a kept virtual object's entries must be
      // kept as well (it materializes or maps together with its parent).
      for (bool Grew = true; Grew;) {
        Grew = false;
        for (VirtualObjectNode *VO : Kept) {
          for (unsigned K = 0; K != NumPreds; ++K) {
            const ObjState &OS = Preds[K]->Objects.at(VO);
            if (!OS.Virtual)
              continue;
            for (Node *E : OS.Entries)
              if (auto *Ref = dyn_cast<VirtualObjectNode>(E))
                if (Preds[K]->Objects.count(Ref) && KeptSet.insert(Ref).second) {
                  Kept.push_back(Ref);
                  Grew = true;
                }
          }
          if (Grew)
            break;
        }
      }

      for (VirtualObjectNode *VO : Kept) {
        bool Everywhere = true;
        for (unsigned K = 0; K != NumPreds; ++K)
          Everywhere &= Preds[K]->Objects.count(VO) != 0;
        if (!Everywhere) {
          // Entry-closure pulled in an object missing from some path;
          // materialize it where it exists so the parent sees a value.
          for (unsigned K = 0; K != NumPreds; ++K)
            if (Preds[K]->Objects.count(VO) &&
                Preds[K]->Objects.at(VO).Virtual)
              materialize(*Preds[K], VO, M->endAt(K));
          Redo = true;
          break;
        }
        bool AllVirtual = true, AllEscaped = true;
        for (unsigned K = 0; K != NumPreds; ++K) {
          bool V = Preds[K]->Objects.at(VO).Virtual;
          AllVirtual &= V;
          AllEscaped &= !V;
        }
        if (!AllVirtual && !AllEscaped) {
          // Mixed: materialize in the virtual predecessors and retry.
          for (unsigned K = 0; K != NumPreds; ++K)
            if (Preds[K]->Objects.at(VO).Virtual)
              materialize(*Preds[K], VO, M->endAt(K));
          Redo = true;
          break;
        }
        if (AllEscaped) {
          ObjState OS;
          OS.Virtual = false;
          Node *First = Preds[0]->Objects.at(VO).Materialized;
          bool Same = true;
          for (unsigned K = 1; K != NumPreds; ++K)
            Same &= Preds[K]->Objects.at(VO).Materialized == First;
          if (Same) {
            OS.Materialized = First;
          } else {
            auto *Phi = createNode<PhiNode>(M, ValueType::Ref);
            for (unsigned K = 0; K != NumPreds; ++K)
              Phi->appendValue(Preds[K]->Objects.at(VO).Materialized);
            CreatedPhis.insert(Phi);
            OS.Materialized = Phi;
          }
          Out.Objects[VO] = std::move(OS);
          continue;
        }
        // All virtual: merge lock depths and field states.
        int Depth = Preds[0]->Objects.at(VO).LockDepth;
        bool DepthsMatch = true;
        for (unsigned K = 1; K != NumPreds; ++K)
          DepthsMatch &= Preds[K]->Objects.at(VO).LockDepth == Depth;
        if (!DepthsMatch) {
          for (unsigned K = 0; K != NumPreds; ++K)
            materialize(*Preds[K], VO, M->endAt(K));
          Redo = true;
          break;
        }
        ObjState OS;
        OS.LockDepth = Depth;
        unsigned NumEntries = Preds[0]->Objects.at(VO).Entries.size();
        for (unsigned J = 0; J != NumEntries && !Redo; ++J) {
          Node *First = Preds[0]->Objects.at(VO).Entries[J];
          bool Same = true;
          for (unsigned K = 1; K != NumPreds; ++K)
            Same &= Preds[K]->Objects.at(VO).Entries[J] == First;
          if (Same) {
            OS.Entries.push_back(First);
            continue;
          }
          // Differing values need a phi; phi inputs must be real values,
          // so virtual entries force materialization first.
          for (unsigned K = 0; K != NumPreds; ++K) {
            Node *E = Preds[K]->Objects.at(VO).Entries[J];
            if (auto *Ref = dyn_cast<VirtualObjectNode>(E))
              if (Preds[K]->Objects.at(Ref).Virtual) {
                materialize(*Preds[K], Ref, M->endAt(K));
                Redo = true;
              }
          }
          if (Redo)
            break;
          ValueType Ty =
              resolveEntry(*Preds[0], First)->type() == ValueType::Ref
                  ? ValueType::Ref
                  : ValueType::Int;
          auto *Phi = createNode<PhiNode>(M, Ty);
          for (unsigned K = 0; K != NumPreds; ++K)
            Phi->appendValue(
                resolveEntry(*Preds[K], Preds[K]->Objects.at(VO).Entries[J]));
          CreatedPhis.insert(Phi);
          OS.Entries.push_back(Phi);
        }
        if (Redo)
          break;
        Out.Objects[VO] = std::move(OS);
      }
      if (Redo)
        continue;

      // Alias intersection.
      for (const auto &[NodePtr, VO] : Preds[0]->Aliases) {
        if (!Out.Objects.count(VO))
          continue;
        bool SameEverywhere = true;
        for (unsigned K = 1; K != NumPreds && SameEverywhere; ++K) {
          auto It = Preds[K]->Aliases.find(NodePtr);
          SameEverywhere =
              It != Preds[K]->Aliases.end() && It->second == VO;
        }
        if (SameEverywhere)
          Out.Aliases[NodePtr] = VO;
      }

      // Pre-existing phis at this merge (Section 5.3, Figure 6 (c)).
      for (PhiNode *Phi : M->phis()) {
        if (CreatedPhis.count(Phi))
          continue;
        std::vector<VirtualObjectNode *> InputAliases(NumPreds, nullptr);
        bool AnyAlias = false;
        for (unsigned K = 0; K != NumPreds; ++K) {
          InputAliases[K] = aliasOf(*Preds[K], Phi->valueAt(K));
          AnyAlias |= InputAliases[K] != nullptr;
        }
        if (!AnyAlias)
          continue;
        bool AllSameKeptVirtual = Out.Objects.count(InputAliases[0]) &&
                                  Out.Objects.at(InputAliases[0]).Virtual;
        for (unsigned K = 0; K != NumPreds; ++K)
          AllSameKeptVirtual &= InputAliases[K] == InputAliases[0];
        if (AllSameKeptVirtual) {
          Out.Aliases[Phi] = InputAliases[0];
          continue;
        }
        // Otherwise every aliased input becomes a real value.
        for (unsigned K = 0; K != NumPreds; ++K) {
          VirtualObjectNode *VO = InputAliases[K];
          if (!VO)
            continue;
          if (Preds[K]->Objects.at(VO).Virtual) {
            materialize(*Preds[K], VO, M->endAt(K));
            Redo = true;
          } else {
            Node *Mat = Preds[K]->Objects.at(VO).Materialized;
            addEffect([Phi, K, Mat] { Phi->setValueAt(K, Mat); });
          }
        }
        if (Redo)
          break;
      }
      if (Redo)
        continue;
      return Out;
    }
  }

  //===------------------------------------------------------------------===//
  // Loop fixpoint (Section 5.4)
  //===------------------------------------------------------------------===//

  struct PendingLoopPhi {
    PhiNode *Phi;
    VirtualObjectNode *VO;
    unsigned Entry;
    Node *ForwardValue;
    bool Dead = false;
  };

  std::map<LoopExitNode *, PeaState> processLoop(LoopBeginNode *L,
                                                 PeaState EntryState) {
    PeaState Spec = std::move(EntryState);
    std::vector<PendingLoopPhi> LoopPhis;
    EndNode *FwdEnd = L->forwardEnd();
    uint64_t ParentEpoch = Epoch;

    // Pre-existing phis at the loop header: an object flowing through a
    // loop phi must be a real value (trivial loop phis were canonicalized
    // away before the analysis, so this does not affect objects that are
    // merely live across the loop). Forward inputs are handled here;
    // back-edge inputs after each body pass below.
    std::vector<PhiNode *> HeaderPhis = L->phis();
    for (PhiNode *Phi : HeaderPhis) {
      VirtualObjectNode *VO = aliasOf(Spec, Phi->valueAt(0));
      if (!VO)
        continue;
      if (Spec.Objects.at(VO).Virtual)
        materialize(Spec, VO, FwdEnd);
      Node *Mat = Spec.Objects.at(VO).Materialized;
      addEffect([Phi, Mat] { Phi->setValueAt(0, Mat); });
    }

    auto IsPendingPhi = [&LoopPhis](Node *N) {
      for (const PendingLoopPhi &PLP : LoopPhis)
        if (!PLP.Dead && PLP.Phi == N)
          return true;
      return false;
    };

    for (unsigned Attempt = 0;; ++Attempt) {
      Checkpoint CP = checkpoint();
      // Nodes processed in this attempt get a fresh epoch, so that
      // merge-time liveness sees usages from *previous* attempts (which
      // are structurally downstream again) as unprocessed.
      Epoch = NextEpoch++;
      RegionResult R = processRegion(L->next(), Spec, L);

      // Gather the back-edge states in phi-operand order.
      std::vector<PeaState *> BackStates;
      for (unsigned K = 0, E = L->numBackEdges(); K != E; ++K) {
        auto It = R.BackedgeStates.find(L->backEdgeAt(K));
        assert(It != R.BackedgeStates.end() &&
               "loop back edge was not reached during iteration");
        BackStates.push_back(&It->second);
      }

      // Back-edge inputs of pre-existing header phis become real values.
      for (PhiNode *Phi : HeaderPhis) {
        for (unsigned K = 0, E = L->numBackEdges(); K != E; ++K) {
          PeaState *BS = BackStates[K];
          VirtualObjectNode *VO = aliasOf(*BS, Phi->valueAt(1 + K));
          if (!VO)
            continue;
          if (BS->Objects.at(VO).Virtual)
            materialize(*BS, VO, L->backEdgeAt(K));
          Node *Mat = BS->Objects.at(VO).Materialized;
          addEffect([Phi, Slot = 1 + K, Mat] { Phi->setValueAt(Slot, Mat); });
        }
      }

      // Compare the speculative entry state against every back edge.
      std::set<VirtualObjectNode *> MustMaterialize;
      std::vector<std::pair<VirtualObjectNode *, unsigned>> FieldChanges;
      for (auto &[VO, OS] : Spec.Objects) {
        if (!OS.Virtual)
          continue;
        for (PeaState *BS : BackStates) {
          auto BIt = BS->Objects.find(VO);
          if (BIt == BS->Objects.end())
            continue; // Dropped as unobservable inside the body: dead.
          const ObjState &BO = BIt->second;
          if (!BO.Virtual || BO.LockDepth != OS.LockDepth) {
            MustMaterialize.insert(VO);
            break;
          }
          for (unsigned J = 0, E = OS.Entries.size(); J != E; ++J) {
            if (IsPendingPhi(OS.Entries[J]))
              continue; // Absorbed by the loop phi; filled on acceptance.
            if (BO.Entries[J] == OS.Entries[J])
              continue;
            bool Plain = Opts.PeaLoopFieldPhis &&
                         !isa<VirtualObjectNode>(BO.Entries[J]) &&
                         !isa<VirtualObjectNode>(OS.Entries[J]);
            if (Plain)
              FieldChanges.push_back({VO, J});
            else
              MustMaterialize.insert(VO);
          }
          if (MustMaterialize.count(VO))
            break;
        }
      }
      // A field change on a materialization candidate is subsumed.
      FieldChanges.erase(
          std::remove_if(FieldChanges.begin(), FieldChanges.end(),
                         [&](const auto &FC) {
                           return MustMaterialize.count(FC.first) != 0;
                         }),
          FieldChanges.end());

      if (MustMaterialize.empty() && FieldChanges.empty()) {
        // Stable: fill the loop phis from the final back-edge states.
        for (PendingLoopPhi &PLP : LoopPhis) {
          if (PLP.Dead)
            continue;
          bool Dropped = false;
          for (PeaState *BS : BackStates)
            Dropped |= BS->Objects.count(PLP.VO) == 0;
          if (Dropped) {
            // The containing object died inside the body; the phi can
            // only be referenced from dead analysis state.
            assert(!PLP.Phi->hasUsages() && "pending loop phi leaked");
            G.deleteNode(PLP.Phi);
            PLP.Dead = true;
            continue;
          }
          for (PeaState *BS : BackStates) {
            Node *V = BS->Objects.at(PLP.VO).Entries[PLP.Entry];
            assert(!isa<VirtualObjectNode>(V) &&
                   "loop phi over a virtual entry");
            PLP.Phi->appendValue(V);
          }
        }
        Stats.LoopIterations += Attempt;
        // Re-anchor this loop's marks at the parent's epoch so post-loop
        // merges treat the accepted body as processed.
        for (auto &[N2, E2] : ProcessedEpoch)
          if (E2 > ParentEpoch)
            E2 = ParentEpoch;
        Epoch = ParentEpoch;
        return std::move(R.ExitStates);
      }

      rollback(CP);

      if (Attempt + 1 >= Opts.PeaMaxLoopIterations) {
        // Give up: materialize everything still virtual at the entry.
        for (auto &[VO, OS] : Spec.Objects)
          if (OS.Virtual)
            MustMaterialize.insert(VO);
        FieldChanges.clear();
      }

      // Materialization closure: members referenced from a materialized
      // object are materialized with it, so substitute their pending
      // phis as well.
      std::set<VirtualObjectNode *> Closure;
      for (VirtualObjectNode *VO : MustMaterialize)
        if (Spec.Objects.at(VO).Virtual)
          collectVirtualClosure(Spec, VO, Closure);
      if (!Closure.empty()) {
        for (PendingLoopPhi &PLP : LoopPhis) {
          if (PLP.Dead || !Closure.count(PLP.VO))
            continue;
          // Replace the phi with its forward value inside entries and
          // delete it: the commit executes before the loop, where the
          // phi has no defined value yet.
          for (auto &[VO2, OS2] : Spec.Objects)
            for (Node *&E : OS2.Entries)
              if (E == PLP.Phi)
                E = PLP.ForwardValue;
          PLP.Dead = true;
          assert(!PLP.Phi->hasUsages() && "pending loop phi leaked");
          G.deleteNode(PLP.Phi);
          // The node stays in Created; rollback tolerates deleted nodes.
        }
        for (VirtualObjectNode *VO : MustMaterialize)
          materialize(Spec, VO, FwdEnd);
      }

      for (const auto &[VO, J] : FieldChanges) {
        Node *Fwd = Spec.Objects.at(VO).Entries[J];
        if (IsPendingPhi(Fwd))
          continue; // Already speculated in an earlier attempt.
        auto *Phi = createNode<PhiNode>(L, Fwd->type());
        Phi->appendValue(Fwd);
        Spec.Objects.at(VO).Entries[J] = Phi;
        LoopPhis.push_back({Phi, VO, J, Fwd, false});
      }
      JVM_DEBUG("loop at " << nodeLabel(L) << ": attempt " << Attempt
                           << " unstable (" << MustMaterialize.size()
                           << " materialized, " << FieldChanges.size()
                           << " loop phis)");
    }
  }

  //===------------------------------------------------------------------===//
  // Members
  //===------------------------------------------------------------------===//

  Graph &G;
  const Program &P;
  const CompilerOptions &Opts;
  std::set<const Node *> DoNotVirtualize;
  PEAStats *Out;
  PEAStats Stats;

  std::vector<std::function<void()>> Effects;
  std::vector<Node *> Created;
  std::vector<Node *> Unlinked;
  std::vector<Node *> RemovalVec;
  std::set<Node *> RemovalSet;
  std::vector<Node *> ReplacedVec;
  std::map<Node *, Node *> Replaced;
  std::map<const Node *, uint64_t> ProcessedEpoch;
  uint64_t Epoch = 1;
  uint64_t NextEpoch = 2;
};

} // namespace

bool jvm::runPartialEscapeAnalysis(Graph &G, const Program &P,
                                   const CompilerOptions &Opts,
                                   PEAStats *Stats) {
  return PartialEscapeClosure(G, P, Opts, {}, Stats).run();
}

bool jvm::runFlowInsensitiveEscapeAnalysis(Graph &G, const Program &P,
                                           const CompilerOptions &Opts,
                                           PEAStats *Stats) {
  std::set<const Node *> Escaping = computeEscapingAllocations(G);
  return PartialEscapeClosure(G, P, Opts, std::move(Escaping), Stats).run();
}
