//===- EscapePhases.h - The paper's analyses as Phase objects -------*- C++ -*-===//
///
/// \file
/// Phase adapters for the two escape analyses, so a PhasePlan can
/// schedule them like any other stage. makeDefaultPhasePlan() picks one
/// (or neither) from CompilerOptions::EAMode; ablation benchmarks mix
/// them into custom plans directly. Both accumulate their work into
/// PhaseContext::Stats, which the pipeline driver hands to JitMetrics.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_PEA_ESCAPEPHASES_H
#define JVM_PEA_ESCAPEPHASES_H

#include "compiler/Phase.h"

namespace jvm {

/// The paper's control-flow-sensitive partial escape analysis
/// (EscapeAnalysisMode::Partial).
class PartialEscapePhase : public Phase {
public:
  const char *name() const override { return "escape-partial"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

/// The flow-insensitive equi-escape-sets baseline of Section 6.2
/// (EscapeAnalysisMode::FlowInsensitive).
class FlowInsensitiveEscapePhase : public Phase {
public:
  const char *name() const override { return "escape-flowins"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

} // namespace jvm

#endif // JVM_PEA_ESCAPEPHASES_H
