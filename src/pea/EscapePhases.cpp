//===- EscapePhases.cpp - Escape analyses behind the Phase interface -----------===//

#include "pea/EscapePhases.h"

#include "pea/PartialEscapeAnalysis.h"

using namespace jvm;

bool PartialEscapePhase::run(Graph &G, PhaseContext &Ctx) const {
  return runPartialEscapeAnalysis(G, Ctx.P, Ctx.Options, &Ctx.Stats);
}

bool FlowInsensitiveEscapePhase::run(Graph &G, PhaseContext &Ctx) const {
  return runFlowInsensitiveEscapeAnalysis(G, Ctx.P, Ctx.Options, &Ctx.Stats);
}
