//===- Runtime.cpp - VM runtime state -----------------------------------------===//

#include "runtime/Runtime.h"

using namespace jvm;

HeapObject *Runtime::allocateInstance(ClassId Cls) {
  const ClassInfo &C = Prog.classAt(Cls);
  std::vector<ValueType> Types;
  Types.reserve(C.Fields.size());
  for (const FieldInfo &F : C.Fields)
    Types.push_back(F.Ty);
  return TheHeap.allocateInstance(Cls, Types);
}
