//===- Heap.cpp - Object model and garbage-collected heap -------------------===//

#include "runtime/Heap.h"

#include "support/Debug.h"

#include <algorithm>

using namespace jvm;

Heap::~Heap() {
  for (HeapObject *O : Objects)
    delete O;
}

HeapObject *Heap::allocateInstance(ClassId Cls,
                                   const std::vector<ValueType> &FieldTypes) {
  maybeCollect();
  auto *O = new HeapObject(Cls, /*IsArray=*/false, ValueType::Void,
                           FieldTypes.size(), ValueType::Int);
  for (unsigned I = 0, E = FieldTypes.size(); I != E; ++I)
    O->setSlot(I, Value::defaultOf(FieldTypes[I]));
  accountAllocation(O);
  return O;
}

HeapObject *Heap::allocateArray(ValueType ElemTy, int64_t Length) {
  assert(Length >= 0 && "negative array length");
  maybeCollect();
  auto *O = new HeapObject(NoClass, /*IsArray=*/true, ElemTy,
                           static_cast<unsigned>(Length), ElemTy);
  accountAllocation(O);
  return O;
}

void Heap::accountAllocation(HeapObject *O) {
  Objects.push_back(O);
  ++AllocCount;
  AllocBytes += O->sizeInBytes();
  BytesSinceGc += O->sizeInBytes();
}

void Heap::maybeCollect() {
  if (BytesSinceGc >= GcThresholdBytes)
    collect();
}

void Heap::collect() {
  ++GcRuns;
  BytesSinceGc = 0;

  // Mark.
  std::vector<HeapObject *> Worklist;
  auto Visit = [&Worklist](Value V) {
    if (!V.isRef())
      return;
    HeapObject *O = V.asRef();
    if (O && !O->Marked) {
      O->Marked = true;
      Worklist.push_back(O);
    }
  };
  for (const RootProvider &Provider : RootProviders)
    Provider(Visit);
  while (!Worklist.empty()) {
    HeapObject *O = Worklist.back();
    Worklist.pop_back();
    for (unsigned I = 0, E = O->numSlots(); I != E; ++I)
      Visit(O->slot(I));
  }

  // Sweep.
  size_t Before = Objects.size();
  auto IsDead = [](HeapObject *O) {
    if (O->Marked) {
      O->Marked = false;
      return false;
    }
    delete O;
    return true;
  };
  Objects.erase(std::remove_if(Objects.begin(), Objects.end(), IsDead),
                Objects.end());
  JVM_DEBUG("gc: " << Before << " -> " << Objects.size() << " objects");
}
