//===- Heap.h - Object model and garbage-collected heap ------------*- C++ -*-===//
///
/// \file
/// The garbage-collected heap, now a facade over the region-based
/// memory manager (src/memory): TLAB bump allocation over fixed-size
/// regions, a Cheney-style copying scavenge for the young generation
/// with survival-count promotion, and a compacting full collection.
/// Objects MOVE: components holding references in C++ storage register
/// updating RootProviders (see memory/Object.h) so collections can
/// rewrite their slots in place.
///
/// The heap also owns the allocation metrics the paper's evaluation
/// reports (allocation count and allocated bytes) plus the GC metrics
/// PR 5 adds: scavenge/full-GC counts, bytes copied/promoted, occupancy
/// and pause-time histograms.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_RUNTIME_HEAP_H
#define JVM_RUNTIME_HEAP_H

#include "memory/MemoryConfig.h"
#include "memory/MemoryManager.h"
#include "memory/Object.h"
#include "runtime/Value.h"

#include <cstddef>
#include <string>
#include <vector>

namespace jvm {

class Heap {
public:
  explicit Heap(const memory::MemoryConfig &Config =
                    memory::MemoryConfig::fromEnvironment())
      : M(Config) {}

  /// Allocates a class instance with \p FieldTypes.size() slots, each
  /// typed by \p FieldTypes (missing entries default to Int).
  HeapObject *allocateInstance(ClassId Cls,
                               const std::vector<ValueType> &FieldTypes) {
    return M.allocateInstance(Cls, FieldTypes);
  }

  /// Allocates an array of \p Length elements of \p ElemTy.
  HeapObject *allocateArray(ValueType ElemTy, int64_t Length) {
    return M.allocateArray(ElemTy, Length);
  }

  // Mutator stores ----------------------------------------------------------
  /// THE reference-store API for every execution tier: writes slot \p I
  /// of \p O and runs the generational write barrier, so a later
  /// scavenge can find an old→young reference through the card table
  /// instead of scanning the old space. Raw HeapObject::setSlot is for
  /// object initialization (freshly allocated objects are young) and
  /// GC-internal fixups only.
  void write(HeapObject *O, unsigned I, const Value &V) {
    O->setSlot(I, V);
    M.writeBarrier(O, V);
  }

  /// The barrier alone, for call sites that already performed the store
  /// (the native tier's templates store inline, then call this).
  void writeBarrier(HeapObject *O, const Value &V) { M.writeBarrier(O, V); }

  /// Whether the card covering \p O's header is dirty (tests assert the
  /// per-tier barriers actually fire).
  bool cardIsDirty(const HeapObject *O) const { return M.cardIsDirty(O); }

  /// Registers an updating root enumerator. The token deregisters it
  /// again — mandatory for components shorter-lived than the heap.
  uint64_t addRootProvider(RootProvider Provider) {
    return M.addRootProvider(std::move(Provider));
  }
  void removeRootProvider(uint64_t Token) { M.removeRootProvider(Token); }

  /// Runs a full collection (young + old copying compaction).
  void collect() { M.collectFull(); }

  /// Runs a young collection only.
  void scavenge() { M.scavenge(); }

  // Metrics ------------------------------------------------------------------
  uint64_t allocationCount() const { return M.allocationCount(); }
  uint64_t allocatedBytes() const { return M.allocatedBytes(); }
  uint64_t gcRuns() const { return M.gcRuns(); }
  uint64_t scavenges() const { return M.scavenges(); }
  uint64_t fullGcs() const { return M.fullGcs(); }
  uint64_t bytesCopied() const { return M.bytesCopied(); }
  uint64_t bytesPromoted() const { return M.bytesPromoted(); }
  uint64_t liveObjects() const { return M.liveObjects(); }
  size_t youngBytes() const { return M.youngOccupancyBytes(); }
  size_t oldBytes() const { return M.oldOccupancyBytes(); }
  uint64_t cardsDirtied() const { return M.cardsDirtied(); }
  uint64_t cardsScanned() const { return M.cardsScanned(); }
  unsigned lastGcWorkers() const { return M.lastGcWorkers(); }
  size_t youngCapacityBytes() const { return M.youngCapacityBytes(); }
  const MetricHistogram &scavengePauses() const { return M.scavengePauses(); }
  std::vector<uint64_t> workerCopiedBytes() const {
    return M.workerCopiedBytes();
  }
  const MetricHistogram &fullGcPauses() const { return M.fullGcPauses(); }
  /// Exact per-collection records (see MemoryManager::gcRecords).
  const std::vector<memory::MemoryManager::GcRecord> &gcRecords() const {
    return M.gcRecords();
  }

  /// Clears the full GC metric window — allocation counters, collection
  /// counts, copied/promoted bytes and the pause histograms — so bench
  /// measurement windows start clean (VirtualMachine::resetMetrics).
  void resetMetrics() { M.resetMetrics(); }

  /// The per-collection log (also appended to $JVM_GC_LOG at exit).
  std::string renderGcLog() const { return M.renderGcLog(); }

  /// See memory::MemoryManager::setTraceIsolateId.
  void setTraceIsolateId(uint32_t Id) { M.setTraceIsolateId(Id); }

  memory::MemoryManager &manager() { return M; }
  const memory::MemoryConfig &config() const { return M.config(); }

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

private:
  memory::MemoryManager M;
};

} // namespace jvm

#endif // JVM_RUNTIME_HEAP_H
