//===- Heap.h - Object model and garbage-collected heap ------------*- C++ -*-===//
///
/// \file
/// The garbage-collected heap. Objects are class instances (typed field
/// slots) or arrays. Allocation is bump-style bookkeeping over the C++
/// heap plus an exact, non-moving mark-sweep collector; roots are
/// enumerated through RootProvider callbacks registered by the
/// interpreter, the compiled-graph executor and the statics table.
///
/// The heap also owns the allocation metrics the paper's evaluation
/// reports (allocation count and allocated bytes).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_RUNTIME_HEAP_H
#define JVM_RUNTIME_HEAP_H

#include "runtime/Value.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace jvm {

/// A heap cell: class instance or array.
class HeapObject {
public:
  ClassId objectClass() const { return Cls; }
  bool isArray() const { return IsArray; }
  ValueType elementType() const { return ElemTy; }

  unsigned numSlots() const { return Slots.size(); }
  int64_t length() const {
    assert(IsArray && "length of a non-array");
    return static_cast<int64_t>(Slots.size());
  }

  const Value &slot(unsigned I) const {
    assert(I < Slots.size() && "slot index out of range");
    return Slots[I];
  }

  void setSlot(unsigned I, const Value &V) {
    assert(I < Slots.size() && "slot index out of range");
    Slots[I] = V;
  }

  /// Recursive monitor state (single-threaded VM: a counter).
  int lockCount() const { return LockCount; }

  /// Object header + 8 bytes per slot; matches what the allocation-bytes
  /// metric accounts.
  size_t sizeInBytes() const { return 16 + 8 * Slots.size(); }

private:
  friend class Heap;

  HeapObject(ClassId Cls, bool IsArray, ValueType ElemTy, unsigned NumSlots,
             ValueType SlotDefault)
      : Cls(Cls), IsArray(IsArray), ElemTy(ElemTy) {
    Slots.assign(NumSlots, Value::defaultOf(SlotDefault));
  }

  ClassId Cls;
  bool IsArray;
  ValueType ElemTy;
  int LockCount = 0;
  bool Marked = false;
  std::vector<Value> Slots;

public:
  // Monitor transitions are counted by the Runtime, which owns the
  // metrics; see Runtime::monitorEnter/monitorExit.
  void rawLock() { ++LockCount; }
  void rawUnlock() {
    assert(LockCount > 0 && "monitor exit without matching enter");
    --LockCount;
  }
};

/// Enumerates GC roots by invoking the visitor on every root value.
using RootProvider = std::function<void(const std::function<void(Value)> &)>;

class Heap {
public:
  /// \p GcThresholdBytes: a collection runs when this many bytes were
  /// allocated since the last one.
  explicit Heap(size_t GcThresholdBytes = 64 << 20)
      : GcThresholdBytes(GcThresholdBytes) {}
  ~Heap();

  /// Allocates a class instance with \p NumFields slots, each typed by
  /// \p FieldTypes (may be shorter; missing entries default to Int).
  HeapObject *allocateInstance(ClassId Cls,
                               const std::vector<ValueType> &FieldTypes);

  /// Allocates an array of \p Length elements of \p ElemTy.
  HeapObject *allocateArray(ValueType ElemTy, int64_t Length);

  /// Registers a root enumerator for the lifetime of the heap.
  void addRootProvider(RootProvider Provider) {
    RootProviders.push_back(std::move(Provider));
  }

  /// Runs a full mark-sweep collection.
  void collect();

  // Metrics ------------------------------------------------------------------
  uint64_t allocationCount() const { return AllocCount; }
  uint64_t allocatedBytes() const { return AllocBytes; }
  uint64_t gcRuns() const { return GcRuns; }
  uint64_t liveObjects() const { return Objects.size(); }

  void resetMetrics() {
    AllocCount = 0;
    AllocBytes = 0;
  }

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

private:
  void maybeCollect();
  void accountAllocation(HeapObject *O);

  size_t GcThresholdBytes;
  size_t BytesSinceGc = 0;
  std::vector<HeapObject *> Objects;
  std::vector<RootProvider> RootProviders;
  uint64_t AllocCount = 0;
  uint64_t AllocBytes = 0;
  uint64_t GcRuns = 0;
};

} // namespace jvm

#endif // JVM_RUNTIME_HEAP_H
