//===- Value.h - Runtime values ------------------------------------*- C++ -*-===//
///
/// \file
/// The tagged runtime value: a 64-bit integer or an object reference
/// (possibly null). Void is used for the result of void calls.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_RUNTIME_VALUE_H
#define JVM_RUNTIME_VALUE_H

#include "ir/Ids.h"

#include <cassert>
#include <cstdint>

namespace jvm {

class HeapObject;

class Value {
public:
  Value() : Ty(ValueType::Void), I(0) {}

  static Value makeVoid() { return Value(); }

  static Value makeInt(int64_t V) {
    Value R;
    R.Ty = ValueType::Int;
    R.I = V;
    return R;
  }

  static Value makeRef(HeapObject *O) {
    Value R;
    R.Ty = ValueType::Ref;
    R.R = O;
    return R;
  }

  /// The zero/null value of \p Ty (Java default field value).
  static Value defaultOf(ValueType Ty) {
    return Ty == ValueType::Int ? makeInt(0) : makeRef(nullptr);
  }

  ValueType type() const { return Ty; }
  bool isVoid() const { return Ty == ValueType::Void; }
  bool isInt() const { return Ty == ValueType::Int; }
  bool isRef() const { return Ty == ValueType::Ref; }

  int64_t asInt() const {
    assert(isInt() && "value is not an int");
    return I;
  }

  HeapObject *asRef() const {
    assert(isRef() && "value is not a reference");
    return R;
  }

  /// Structural equality (same tag; same integer or same object identity).
  bool operator==(const Value &O) const {
    if (Ty != O.Ty)
      return false;
    return Ty == ValueType::Ref ? R == O.R : I == O.I;
  }

private:
  /// The native tier's emitter bakes this layout (tag byte + payload
  /// word) into machine-code templates; jit/NativeLayout.h asserts the
  /// offsets it assumes.
  friend struct NativeLayout;

  ValueType Ty;
  union {
    int64_t I;
    HeapObject *R;
  };
};

} // namespace jvm

#endif // JVM_RUNTIME_VALUE_H
