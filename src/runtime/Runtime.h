//===- Runtime.h - VM runtime state ---------------------------------*- C++ -*-===//
///
/// \file
/// Ties together the pieces of mutable VM state shared by the interpreter
/// and the compiled-code executor: the heap, the statics table, monitor
/// accounting and the execution metrics reported by the benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_RUNTIME_RUNTIME_H
#define JVM_RUNTIME_RUNTIME_H

#include "bytecode/Program.h"
#include "observability/Trace.h"
#include "runtime/Heap.h"

#include <vector>

namespace jvm {

/// Execution counters beyond the heap's allocation metrics.
struct RuntimeMetrics {
  uint64_t MonitorOps = 0;      ///< monitor enters + exits performed
  uint64_t Deopts = 0;          ///< deoptimizations taken
  uint64_t InterpretedOps = 0;  ///< bytecodes interpreted
  /// Work done in compiled code: fixed IR nodes walked (graph tier) or
  /// linear instructions dispatched (linear tier). Executors accumulate
  /// locally and flush once per call, so mid-call reads see stale values.
  uint64_t CompiledOps = 0;
  uint64_t CompiledCalls = 0;   ///< method entries through compiled code
  uint64_t InterpretedCalls = 0;///< method entries through the interpreter
};

/// Mutable program state: heap, statics, metrics.
class Runtime {
public:
  explicit Runtime(const Program &P, const memory::MemoryConfig &Memory =
                                         memory::MemoryConfig::fromEnvironment())
      : Prog(P), TheHeap(Memory) {
    Statics.resize(P.numStatics());
    for (unsigned I = 0, E = P.numStatics(); I != E; ++I)
      Statics[I] = Value::defaultOf(P.staticAt(I).Ty);
    TheHeap.addRootProvider([this](const RootVisitor &Visit) {
      for (Value &V : Statics)
        Visit(V);
      for (std::vector<Value> *Vec : ExtraRootVectors)
        for (Value &V : *Vec)
          Visit(V);
    });
  }

  /// RAII registration of a Value vector as GC roots; used by components
  /// that hold references in C++ temporaries across allocation points
  /// (call argument vectors, executor environments, the deoptimizer's
  /// scratch state). The vector is visited as *updating* storage: a
  /// moving collection rewrites its elements in place.
  class RootScope {
  public:
    RootScope(Runtime &RT, std::vector<Value> *Vec) : RT(RT) {
      RT.ExtraRootVectors.push_back(Vec);
    }
    ~RootScope() { RT.ExtraRootVectors.pop_back(); }
    RootScope(const RootScope &) = delete;
    RootScope &operator=(const RootScope &) = delete;

  private:
    Runtime &RT;
  };

  const Program &program() const { return Prog; }
  Heap &heap() { return TheHeap; }
  const Heap &heap() const { return TheHeap; }

  // Statics -------------------------------------------------------------------
  Value getStatic(StaticIndex I) const { return Statics[I]; }
  void setStatic(StaticIndex I, Value V) { Statics[I] = V; }

  /// Resets all statics to their default values (benchmark harness use).
  void resetStatics() {
    for (unsigned I = 0, E = Statics.size(); I != E; ++I)
      Statics[I] = Value::defaultOf(Prog.staticAt(I).Ty);
  }

  // Object helpers --------------------------------------------------------------
  /// Allocates an instance of \p Cls with properly typed default fields.
  HeapObject *allocateInstance(ClassId Cls);

  // Monitors -----------------------------------------------------------------
  void monitorEnter(HeapObject *O) {
    assert(O && "monitor enter on null");
    O->rawLock();
    ++Metrics.MonitorOps;
    if (traceWants(TraceMonitor))
      Tracer::get().instant(TraceMonitor, "monitor-enter");
  }

  void monitorExit(HeapObject *O) {
    assert(O && "monitor exit on null");
    O->rawUnlock();
    ++Metrics.MonitorOps;
    if (traceWants(TraceMonitor))
      Tracer::get().instant(TraceMonitor, "monitor-exit");
  }

  RuntimeMetrics &metrics() { return Metrics; }
  const RuntimeMetrics &metrics() const { return Metrics; }

  void resetMetrics() {
    Metrics = RuntimeMetrics();
    TheHeap.resetMetrics();
  }

private:
  const Program &Prog;
  Heap TheHeap;
  std::vector<Value> Statics;
  std::vector<std::vector<Value> *> ExtraRootVectors;
  RuntimeMetrics Metrics;
};

} // namespace jvm

#endif // JVM_RUNTIME_RUNTIME_H
