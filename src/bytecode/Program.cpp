//===- Program.cpp - Classes, methods and statics ---------------------------===//

#include "bytecode/Program.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace jvm;

FieldIndex ClassInfo::findField(const std::string &Name) const {
  for (unsigned I = 0, E = Fields.size(); I != E; ++I)
    if (Fields[I].Name == Name)
      return static_cast<FieldIndex>(I);
  return -1;
}

ClassId Program::addClass(const std::string &Name, ClassId Super) {
  assert(Super == NoClass || Super < static_cast<ClassId>(Classes.size()));
  ClassInfo C;
  C.Name = Name;
  C.Id = static_cast<ClassId>(Classes.size());
  C.Super = Super;
  Classes.push_back(std::move(C));
  return Classes.back().Id;
}

FieldIndex Program::addField(ClassId Cls, const std::string &Name,
                             ValueType Ty) {
  ClassInfo &C = classAt(Cls);
  assert(C.findField(Name) < 0 && "duplicate field name");
  C.Fields.push_back({Name, Ty});
  return static_cast<FieldIndex>(C.Fields.size() - 1);
}

StaticIndex Program::addStatic(const std::string &Name, ValueType Ty) {
  Statics.push_back({Name, Ty});
  return static_cast<StaticIndex>(Statics.size() - 1);
}

MethodId Program::addMethod(const std::string &Name, ClassId Owner,
                            std::vector<ValueType> ParamTypes,
                            ValueType RetTy) {
  MethodInfo M;
  M.Name = Name;
  M.Id = static_cast<MethodId>(Methods.size());
  M.Owner = Owner;
  M.ParamTypes = std::move(ParamTypes);
  M.RetTy = RetTy;
  M.NumLocals = M.ParamTypes.size();
  if (Owner != NoClass) {
    assert(!M.ParamTypes.empty() && M.ParamTypes[0] == ValueType::Ref &&
           "instance methods take the receiver as parameter 0");
    ClassInfo &C = classAt(Owner);
    assert(!C.Methods.count(Name) && "duplicate method name in class");
    C.Methods[Name] = M.Id;
  }
  Methods.push_back(std::move(M));
  return Methods.back().Id;
}

ClassId Program::findClass(const std::string &Name) const {
  for (const ClassInfo &C : Classes)
    if (C.Name == Name)
      return C.Id;
  return NoClass;
}

MethodId Program::findMethod(const std::string &Name) const {
  for (const MethodInfo &M : Methods)
    if (M.Name == Name)
      return M.Id;
  return NoMethod;
}

bool Program::isSubclassOf(ClassId Sub, ClassId Super) const {
  for (ClassId C = Sub; C != NoClass; C = classAt(C).Super)
    if (C == Super)
      return true;
  return false;
}

MethodId Program::resolveVirtual(MethodId Declared,
                                 ClassId ReceiverClass) const {
  const std::string &Name = methodAt(Declared).Name;
  for (ClassId C = ReceiverClass; C != NoClass; C = classAt(C).Super) {
    auto It = classAt(C).Methods.find(Name);
    if (It != classAt(C).Methods.end())
      return It->second;
  }
  jvm_unreachable("virtual dispatch failed to resolve a method");
}
