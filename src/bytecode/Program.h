//===- Program.h - Classes, methods and statics --------------------*- C++ -*-===//
///
/// \file
/// The static program model: classes with typed fields and a method table,
/// methods with bytecode, and static (global) variables. A Program is the
/// unit loaded into a VirtualMachine.
///
/// Simplifications relative to Java, documented here once:
///  - Single inheritance is supported for dispatch and `instanceof`, but
///    fields are not inherited; every class declares its full field list.
///  - Methods are identified globally by MethodId; virtual dispatch
///    resolves the declared method's name against the receiver's class
///    chain.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_BYTECODE_PROGRAM_H
#define JVM_BYTECODE_PROGRAM_H

#include "bytecode/Bytecode.h"

#include <map>
#include <string>
#include <vector>

namespace jvm {

struct FieldInfo {
  std::string Name;
  ValueType Ty = ValueType::Int;
};

struct ClassInfo {
  std::string Name;
  ClassId Id = NoClass;
  ClassId Super = NoClass;
  std::vector<FieldInfo> Fields;
  /// Method-name -> global method id, for virtual dispatch.
  std::map<std::string, MethodId> Methods;

  /// Returns the field index for \p Name, or -1.
  FieldIndex findField(const std::string &Name) const;
};

struct MethodInfo {
  std::string Name;
  MethodId Id = NoMethod;
  /// Declaring class for instance methods, NoClass for static ones.
  ClassId Owner = NoClass;
  /// Parameter types; for instance methods parameter 0 is the receiver.
  std::vector<ValueType> ParamTypes;
  ValueType RetTy = ValueType::Void;
  /// Total local-variable slots (parameters occupy slots 0..N-1).
  unsigned NumLocals = 0;
  std::vector<Instr> Code;

  bool isInstanceMethod() const { return Owner != NoClass; }
};

struct StaticInfo {
  std::string Name;
  ValueType Ty = ValueType::Int;
};

/// A complete mini-Java program.
class Program {
public:
  ClassId addClass(const std::string &Name, ClassId Super = NoClass);
  FieldIndex addField(ClassId Cls, const std::string &Name, ValueType Ty);
  StaticIndex addStatic(const std::string &Name, ValueType Ty);

  /// Creates an empty method; fill in code via MethodInfo or CodeBuilder.
  MethodId addMethod(const std::string &Name, ClassId Owner,
                     std::vector<ValueType> ParamTypes, ValueType RetTy);

  unsigned numClasses() const { return Classes.size(); }
  unsigned numMethods() const { return Methods.size(); }
  unsigned numStatics() const { return Statics.size(); }

  const ClassInfo &classAt(ClassId Id) const { return Classes[Id]; }
  ClassInfo &classAt(ClassId Id) { return Classes[Id]; }
  const MethodInfo &methodAt(MethodId Id) const { return Methods[Id]; }
  MethodInfo &methodAt(MethodId Id) { return Methods[Id]; }
  const StaticInfo &staticAt(StaticIndex Id) const { return Statics[Id]; }

  /// Looks up entities by name (linear; for tests and tools).
  ClassId findClass(const std::string &Name) const;
  MethodId findMethod(const std::string &Name) const;

  /// True if \p Sub is \p Super or a transitive subclass of it.
  bool isSubclassOf(ClassId Sub, ClassId Super) const;

  /// Resolves a virtual call: the method named like \p Declared found in
  /// \p ReceiverClass or its closest ancestor. Fatal if unresolvable.
  MethodId resolveVirtual(MethodId Declared, ClassId ReceiverClass) const;

private:
  std::vector<ClassInfo> Classes;
  std::vector<MethodInfo> Methods;
  std::vector<StaticInfo> Statics;
};

} // namespace jvm

#endif // JVM_BYTECODE_PROGRAM_H
