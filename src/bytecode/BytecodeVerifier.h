//===- BytecodeVerifier.h - Static checks on method bytecode -------*- C++ -*-===//
///
/// \file
/// Abstract interpretation over a method's bytecode that checks the
/// structural contract the interpreter and the graph builder rely on:
/// consistent stack depth and slot types at every merge point, valid
/// branch targets, in-range local/class/method/static ids, and a return
/// type matching the method signature.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_BYTECODE_BYTECODEVERIFIER_H
#define JVM_BYTECODE_BYTECODEVERIFIER_H

#include "bytecode/Program.h"

#include <string>
#include <vector>

namespace jvm {

/// Returns human-readable problems; empty means the method verifies.
std::vector<std::string> verifyMethod(const Program &P, MethodId Method);

/// Verifies every method of \p P.
std::vector<std::string> verifyProgram(const Program &P);

/// Aborts with diagnostics if \p P does not verify.
void verifyProgramOrDie(const Program &P);

} // namespace jvm

#endif // JVM_BYTECODE_BYTECODEVERIFIER_H
