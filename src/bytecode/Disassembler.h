//===- Disassembler.h - Bytecode pretty-printer --------------------*- C++ -*-===//
///
/// \file
/// Renders methods and whole programs as readable assembly listings.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_BYTECODE_DISASSEMBLER_H
#define JVM_BYTECODE_DISASSEMBLER_H

#include "bytecode/Program.h"

#include <string>

namespace jvm {

/// Renders one instruction, resolving names against \p P.
std::string instrToString(const Program &P, const Instr &I);

/// Renders \p Method with bci prefixes.
std::string methodToString(const Program &P, MethodId Method);

/// Renders every class, static and method of \p P.
std::string programToString(const Program &P);

} // namespace jvm

#endif // JVM_BYTECODE_DISASSEMBLER_H
