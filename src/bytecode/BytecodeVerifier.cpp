//===- BytecodeVerifier.cpp - Static checks on method bytecode ---------------===//

#include "bytecode/BytecodeVerifier.h"

#include "bytecode/Disassembler.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>

using namespace jvm;

namespace {

/// Abstract slot type: the two value types plus lattice top/bottom.
enum class Slot : uint8_t { Unset, Int, Ref, Conflict };

Slot slotOf(ValueType Ty) {
  return Ty == ValueType::Int ? Slot::Int : Slot::Ref;
}

Slot mergeSlots(Slot A, Slot B) {
  if (A == B)
    return A;
  if (A == Slot::Unset || B == Slot::Unset)
    return Slot::Conflict;
  return Slot::Conflict;
}

struct AbstractState {
  std::vector<Slot> Locals;
  std::vector<Slot> Stack;

  bool operator==(const AbstractState &O) const = default;
};

class MethodVerifier {
public:
  MethodVerifier(const Program &P, MethodId Method)
      : P(P), M(P.methodAt(Method)) {}

  std::vector<std::string> run() {
    if (M.Code.empty()) {
      problem(0, "method has no code");
      return std::move(Problems);
    }
    AbstractState Entry;
    Entry.Locals.assign(M.NumLocals, Slot::Unset);
    if (M.ParamTypes.size() > M.NumLocals) {
      problem(0, "more parameters than local slots");
      return std::move(Problems);
    }
    for (unsigned I = 0, E = M.ParamTypes.size(); I != E; ++I)
      Entry.Locals[I] = slotOf(M.ParamTypes[I]);

    InStates.assign(M.Code.size(), std::nullopt);
    flowTo(0, Entry, /*FromBci=*/-1);
    while (!Worklist.empty() && Problems.empty()) {
      unsigned Bci = Worklist.back();
      Worklist.pop_back();
      interpret(Bci);
    }
    return std::move(Problems);
  }

private:
  void problem(int Bci, const std::string &Msg) {
    std::ostringstream OS;
    OS << M.Name << "@" << Bci << ": " << Msg;
    Problems.push_back(OS.str());
  }

  void flowTo(int Bci, const AbstractState &S, int FromBci) {
    if (Bci < 0 || Bci >= static_cast<int>(M.Code.size())) {
      problem(FromBci, "branch target out of range");
      return;
    }
    std::optional<AbstractState> &In = InStates[Bci];
    if (!In) {
      In = S;
      Worklist.push_back(Bci);
      return;
    }
    if (In->Stack.size() != S.Stack.size()) {
      problem(Bci, "inconsistent stack depth at merge point");
      return;
    }
    AbstractState Merged = *In;
    for (unsigned I = 0, E = S.Stack.size(); I != E; ++I) {
      Merged.Stack[I] = mergeSlots(Merged.Stack[I], S.Stack[I]);
      if (Merged.Stack[I] == Slot::Conflict) {
        problem(Bci, "inconsistent stack slot type at merge point");
        return;
      }
    }
    for (unsigned I = 0, E = S.Locals.size(); I != E; ++I)
      Merged.Locals[I] = mergeSlots(Merged.Locals[I], S.Locals[I]);
    if (Merged != *In) {
      In = Merged;
      Worklist.push_back(Bci);
    }
  }

  Slot pop(AbstractState &S, int Bci, Slot Want) {
    if (S.Stack.empty()) {
      problem(Bci, "pop from empty stack");
      return Slot::Conflict;
    }
    Slot Got = S.Stack.back();
    S.Stack.pop_back();
    if (Want != Slot::Conflict && Got != Want)
      problem(Bci, std::string("expected ") +
                       (Want == Slot::Int ? "int" : "ref") + " on stack");
    return Got;
  }

  void checkLocal(int Bci, int32_t Idx) {
    if (Idx < 0 || Idx >= static_cast<int32_t>(M.NumLocals))
      problem(Bci, "local index out of range");
  }

  void checkClass(int Bci, int32_t Id) {
    if (Id < 0 || Id >= static_cast<int32_t>(P.numClasses()))
      problem(Bci, "class id out of range");
  }

  void interpret(unsigned Bci) {
    AbstractState S = *InStates[Bci];
    const Instr &I = M.Code[Bci];
    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::Const:
      S.Stack.push_back(Slot::Int);
      break;
    case Opcode::ConstNull:
      S.Stack.push_back(Slot::Ref);
      break;
    case Opcode::Load: {
      checkLocal(Bci, I.A);
      if (!Problems.empty())
        return;
      Slot L = S.Locals[I.A];
      if (L == Slot::Unset || L == Slot::Conflict) {
        problem(Bci, "load from uninitialized or conflicting local");
        return;
      }
      S.Stack.push_back(L);
      break;
    }
    case Opcode::Store: {
      checkLocal(Bci, I.A);
      if (!Problems.empty())
        return;
      Slot V = pop(S, Bci, Slot::Conflict);
      S.Locals[I.A] = V;
      break;
    }
    case Opcode::Pop:
      pop(S, Bci, Slot::Conflict);
      break;
    case Opcode::Dup: {
      if (S.Stack.empty()) {
        problem(Bci, "dup on empty stack");
        return;
      }
      S.Stack.push_back(S.Stack.back());
      break;
    }
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
      pop(S, Bci, Slot::Int);
      pop(S, Bci, Slot::Int);
      S.Stack.push_back(Slot::Int);
      break;
    case Opcode::Goto:
      flowTo(I.A, S, Bci);
      return;
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfLe:
    case Opcode::IfGt:
    case Opcode::IfGe:
      pop(S, Bci, Slot::Int);
      pop(S, Bci, Slot::Int);
      flowTo(I.A, S, Bci);
      flowTo(Bci + 1, S, Bci);
      return;
    case Opcode::IfNull:
    case Opcode::IfNonNull:
      pop(S, Bci, Slot::Ref);
      flowTo(I.A, S, Bci);
      flowTo(Bci + 1, S, Bci);
      return;
    case Opcode::IfRefEq:
    case Opcode::IfRefNe:
      pop(S, Bci, Slot::Ref);
      pop(S, Bci, Slot::Ref);
      flowTo(I.A, S, Bci);
      flowTo(Bci + 1, S, Bci);
      return;
    case Opcode::New:
      checkClass(Bci, I.A);
      S.Stack.push_back(Slot::Ref);
      break;
    case Opcode::GetField: {
      checkClass(Bci, I.A);
      if (!Problems.empty())
        return;
      const ClassInfo &C = P.classAt(I.A);
      if (I.B < 0 || I.B >= static_cast<int32_t>(C.Fields.size())) {
        problem(Bci, "field index out of range");
        return;
      }
      pop(S, Bci, Slot::Ref);
      S.Stack.push_back(slotOf(C.Fields[I.B].Ty));
      break;
    }
    case Opcode::PutField: {
      checkClass(Bci, I.A);
      if (!Problems.empty())
        return;
      const ClassInfo &C = P.classAt(I.A);
      if (I.B < 0 || I.B >= static_cast<int32_t>(C.Fields.size())) {
        problem(Bci, "field index out of range");
        return;
      }
      pop(S, Bci, slotOf(C.Fields[I.B].Ty));
      pop(S, Bci, Slot::Ref);
      break;
    }
    case Opcode::InstanceOf:
      checkClass(Bci, I.A);
      pop(S, Bci, Slot::Ref);
      S.Stack.push_back(Slot::Int);
      break;
    case Opcode::GetStatic:
    case Opcode::PutStatic: {
      if (I.A < 0 || I.A >= static_cast<int32_t>(P.numStatics())) {
        problem(Bci, "static index out of range");
        return;
      }
      Slot Ty = slotOf(P.staticAt(I.A).Ty);
      if (I.Op == Opcode::GetStatic)
        S.Stack.push_back(Ty);
      else
        pop(S, Bci, Ty);
      break;
    }
    case Opcode::NewArrayInt:
    case Opcode::NewArrayRef:
      pop(S, Bci, Slot::Int);
      S.Stack.push_back(Slot::Ref);
      break;
    case Opcode::ArrLoadInt:
    case Opcode::ArrLoadRef:
      pop(S, Bci, Slot::Int);
      pop(S, Bci, Slot::Ref);
      S.Stack.push_back(I.Op == Opcode::ArrLoadInt ? Slot::Int : Slot::Ref);
      break;
    case Opcode::ArrStoreInt:
    case Opcode::ArrStoreRef:
      pop(S, Bci, I.Op == Opcode::ArrStoreInt ? Slot::Int : Slot::Ref);
      pop(S, Bci, Slot::Int);
      pop(S, Bci, Slot::Ref);
      break;
    case Opcode::ArrLen:
      pop(S, Bci, Slot::Ref);
      S.Stack.push_back(Slot::Int);
      break;
    case Opcode::InvokeStatic:
    case Opcode::InvokeVirtual: {
      if (I.A < 0 || I.A >= static_cast<int32_t>(P.numMethods())) {
        problem(Bci, "method id out of range");
        return;
      }
      const MethodInfo &Callee = P.methodAt(I.A);
      if (I.Op == Opcode::InvokeVirtual && !Callee.isInstanceMethod()) {
        problem(Bci, "invokevirtual of a static method");
        return;
      }
      for (unsigned A = Callee.ParamTypes.size(); A-- > 0;)
        pop(S, Bci, slotOf(Callee.ParamTypes[A]));
      if (Callee.RetTy != ValueType::Void)
        S.Stack.push_back(slotOf(Callee.RetTy));
      break;
    }
    case Opcode::MonEnter:
    case Opcode::MonExit:
      pop(S, Bci, Slot::Ref);
      break;
    case Opcode::RetVoid:
      if (M.RetTy != ValueType::Void)
        problem(Bci, "ret in a non-void method");
      return;
    case Opcode::RetInt:
      if (M.RetTy != ValueType::Int)
        problem(Bci, "ret_i in a non-int method");
      pop(S, Bci, Slot::Int);
      return;
    case Opcode::RetRef:
      if (M.RetTy != ValueType::Ref)
        problem(Bci, "ret_r in a non-ref method");
      pop(S, Bci, Slot::Ref);
      return;
    case Opcode::Trap:
      return;
    }
    if (!Problems.empty())
      return;
    if (Bci + 1 >= M.Code.size()) {
      problem(Bci, "control flow falls off the end of the method");
      return;
    }
    flowTo(Bci + 1, S, Bci);
  }

  const Program &P;
  const MethodInfo &M;
  std::vector<std::optional<AbstractState>> InStates;
  std::vector<unsigned> Worklist;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> jvm::verifyMethod(const Program &P, MethodId Method) {
  return MethodVerifier(P, Method).run();
}

std::vector<std::string> jvm::verifyProgram(const Program &P) {
  std::vector<std::string> All;
  for (unsigned M = 0; M != P.numMethods(); ++M) {
    std::vector<std::string> Ps = verifyMethod(P, M);
    All.insert(All.end(), Ps.begin(), Ps.end());
  }
  return All;
}

void jvm::verifyProgramOrDie(const Program &P) {
  std::vector<std::string> Problems = verifyProgram(P);
  if (Problems.empty())
    return;
  std::fprintf(stderr, "program does not verify:\n");
  for (const std::string &S : Problems)
    std::fprintf(stderr, "  %s\n", S.c_str());
  std::fprintf(stderr, "%s\n", programToString(P).c_str());
  std::abort();
}
