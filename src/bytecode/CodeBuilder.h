//===- CodeBuilder.h - Fluent bytecode assembler -------------------*- C++ -*-===//
///
/// \file
/// A small fluent assembler for method bodies, with forward-label support.
/// Used by tests, examples and the synthetic benchmark workloads:
///
/// \code
///   CodeBuilder C(Prog, M);
///   Label Else = C.newLabel();
///   C.load(0).constI(0).ifLt(Else)
///    .load(0).retInt();
///   C.bind(Else);
///   C.constI(0).load(0).sub().retInt();
///   C.finish();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef JVM_BYTECODE_CODEBUILDER_H
#define JVM_BYTECODE_CODEBUILDER_H

#include "bytecode/Program.h"

#include <cassert>

namespace jvm {

/// An assembler label; create with CodeBuilder::newLabel, place with bind.
struct Label {
  int Index = -1;
};

class CodeBuilder {
public:
  /// \note Safe against Program growth: the method is re-resolved on each
  /// access, so more classes/methods may be added while building.
  CodeBuilder(Program &P, MethodId Method) : P(P), Id(Method) {}

  /// Allocates a fresh local slot and returns its index.
  unsigned newLocal() { return method().NumLocals++; }

  Label newLabel() {
    Labels.push_back(-1);
    return Label{static_cast<int>(Labels.size() - 1)};
  }

  /// Places \p L at the next emitted instruction.
  CodeBuilder &bind(Label L) {
    assert(Labels[L.Index] < 0 && "label bound twice");
    Labels[L.Index] = static_cast<int>(method().Code.size());
    return *this;
  }

  int currentBci() const { return static_cast<int>(method().Code.size()); }

  // Stack and locals -------------------------------------------------------
  CodeBuilder &constI(int64_t V) {
    assert(V >= INT32_MIN && V <= INT32_MAX && "immediate out of range");
    return emit(Opcode::Const, static_cast<int32_t>(V));
  }
  CodeBuilder &constNull() { return emit(Opcode::ConstNull); }
  CodeBuilder &load(unsigned Slot) { return emit(Opcode::Load, Slot); }
  CodeBuilder &store(unsigned Slot) { return emit(Opcode::Store, Slot); }
  CodeBuilder &pop() { return emit(Opcode::Pop); }
  CodeBuilder &dup() { return emit(Opcode::Dup); }

  // Arithmetic --------------------------------------------------------------
  CodeBuilder &add() { return emit(Opcode::Add); }
  CodeBuilder &sub() { return emit(Opcode::Sub); }
  CodeBuilder &mul() { return emit(Opcode::Mul); }
  CodeBuilder &div() { return emit(Opcode::Div); }
  CodeBuilder &rem() { return emit(Opcode::Rem); }
  CodeBuilder &bitAnd() { return emit(Opcode::And); }
  CodeBuilder &bitOr() { return emit(Opcode::Or); }
  CodeBuilder &bitXor() { return emit(Opcode::Xor); }
  CodeBuilder &shl() { return emit(Opcode::Shl); }
  CodeBuilder &shr() { return emit(Opcode::Shr); }

  // Control flow -------------------------------------------------------------
  CodeBuilder &gotoL(Label L) { return emitBranch(Opcode::Goto, L); }
  CodeBuilder &ifEq(Label L) { return emitBranch(Opcode::IfEq, L); }
  CodeBuilder &ifNe(Label L) { return emitBranch(Opcode::IfNe, L); }
  CodeBuilder &ifLt(Label L) { return emitBranch(Opcode::IfLt, L); }
  CodeBuilder &ifLe(Label L) { return emitBranch(Opcode::IfLe, L); }
  CodeBuilder &ifGt(Label L) { return emitBranch(Opcode::IfGt, L); }
  CodeBuilder &ifGe(Label L) { return emitBranch(Opcode::IfGe, L); }
  CodeBuilder &ifNull(Label L) { return emitBranch(Opcode::IfNull, L); }
  CodeBuilder &ifNonNull(Label L) { return emitBranch(Opcode::IfNonNull, L); }
  CodeBuilder &ifRefEq(Label L) { return emitBranch(Opcode::IfRefEq, L); }
  CodeBuilder &ifRefNe(Label L) { return emitBranch(Opcode::IfRefNe, L); }

  // Objects, arrays, statics --------------------------------------------------
  CodeBuilder &newObj(ClassId Cls) { return emit(Opcode::New, Cls); }
  CodeBuilder &getField(ClassId Cls, FieldIndex F) {
    return emit(Opcode::GetField, Cls, F);
  }
  CodeBuilder &putField(ClassId Cls, FieldIndex F) {
    return emit(Opcode::PutField, Cls, F);
  }
  CodeBuilder &instanceOf(ClassId Cls) {
    return emit(Opcode::InstanceOf, Cls);
  }
  CodeBuilder &getStatic(StaticIndex S) { return emit(Opcode::GetStatic, S); }
  CodeBuilder &putStatic(StaticIndex S) { return emit(Opcode::PutStatic, S); }
  CodeBuilder &newArrayInt() { return emit(Opcode::NewArrayInt); }
  CodeBuilder &newArrayRef() { return emit(Opcode::NewArrayRef); }
  CodeBuilder &arrLoadInt() { return emit(Opcode::ArrLoadInt); }
  CodeBuilder &arrLoadRef() { return emit(Opcode::ArrLoadRef); }
  CodeBuilder &arrStoreInt() { return emit(Opcode::ArrStoreInt); }
  CodeBuilder &arrStoreRef() { return emit(Opcode::ArrStoreRef); }
  CodeBuilder &arrLen() { return emit(Opcode::ArrLen); }

  // Calls and monitors ---------------------------------------------------------
  CodeBuilder &invokeStatic(MethodId Callee) {
    return emit(Opcode::InvokeStatic, Callee);
  }
  CodeBuilder &invokeVirtual(MethodId Declared) {
    return emit(Opcode::InvokeVirtual, Declared);
  }
  CodeBuilder &monEnter() { return emit(Opcode::MonEnter); }
  CodeBuilder &monExit() { return emit(Opcode::MonExit); }

  // Returns ---------------------------------------------------------------------
  CodeBuilder &retVoid() { return emit(Opcode::RetVoid); }
  CodeBuilder &retInt() { return emit(Opcode::RetInt); }
  CodeBuilder &retRef() { return emit(Opcode::RetRef); }
  CodeBuilder &trap() { return emit(Opcode::Trap); }

  /// Patches all forward branches. Must be called exactly once.
  void finish();

private:
  MethodInfo &method() { return P.methodAt(Id); }
  const MethodInfo &method() const { return P.methodAt(Id); }

  CodeBuilder &emit(Opcode Op, int32_t A = 0, int32_t B = 0) {
    method().Code.push_back({Op, A, B});
    return *this;
  }

  CodeBuilder &emitBranch(Opcode Op, Label L) {
    Fixups.push_back({static_cast<int>(method().Code.size()), L.Index});
    return emit(Op, -1);
  }

  struct Fixup {
    int InstrIndex;
    int LabelIndex;
  };

  Program &P;
  MethodId Id;
  std::vector<int> Labels;
  std::vector<Fixup> Fixups;
};

} // namespace jvm

#endif // JVM_BYTECODE_CODEBUILDER_H
