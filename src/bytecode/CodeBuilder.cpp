//===- CodeBuilder.cpp - Fluent bytecode assembler ----------------------------===//

#include "bytecode/CodeBuilder.h"

using namespace jvm;

void CodeBuilder::finish() {
  for (const Fixup &F : Fixups) {
    int Target = Labels[F.LabelIndex];
    assert(Target >= 0 && "unbound label at finish()");
    method().Code[F.InstrIndex].A = Target;
  }
  Fixups.clear();
}
