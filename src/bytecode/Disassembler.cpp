//===- Disassembler.cpp - Bytecode pretty-printer ------------------------------===//

#include "bytecode/Disassembler.h"

#include <sstream>

using namespace jvm;

std::string jvm::instrToString(const Program &P, const Instr &I) {
  std::ostringstream OS;
  OS << opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::Const:
  case Opcode::Load:
  case Opcode::Store:
    OS << ' ' << I.A;
    break;
  case Opcode::Goto:
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfLe:
  case Opcode::IfGt:
  case Opcode::IfGe:
  case Opcode::IfNull:
  case Opcode::IfNonNull:
  case Opcode::IfRefEq:
  case Opcode::IfRefNe:
    OS << " ->" << I.A;
    break;
  case Opcode::New:
  case Opcode::InstanceOf:
    OS << ' ' << P.classAt(I.A).Name;
    break;
  case Opcode::GetField:
  case Opcode::PutField:
    OS << ' ' << P.classAt(I.A).Name << '.'
       << P.classAt(I.A).Fields[I.B].Name;
    break;
  case Opcode::GetStatic:
  case Opcode::PutStatic:
    OS << ' ' << P.staticAt(I.A).Name;
    break;
  case Opcode::InvokeStatic:
  case Opcode::InvokeVirtual:
    OS << ' ' << P.methodAt(I.A).Name;
    break;
  default:
    break;
  }
  return OS.str();
}

std::string jvm::methodToString(const Program &P, MethodId Method) {
  const MethodInfo &M = P.methodAt(Method);
  std::ostringstream OS;
  OS << (M.isInstanceMethod() ? P.classAt(M.Owner).Name + "." : "") << M.Name
     << '(';
  for (unsigned I = 0, E = M.ParamTypes.size(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << valueTypeName(M.ParamTypes[I]);
  }
  OS << ") : " << valueTypeName(M.RetTy) << "  locals=" << M.NumLocals
     << '\n';
  for (unsigned Bci = 0, E = M.Code.size(); Bci != E; ++Bci)
    OS << "  " << Bci << ": " << instrToString(P, M.Code[Bci]) << '\n';
  return OS.str();
}

std::string jvm::programToString(const Program &P) {
  std::ostringstream OS;
  for (unsigned C = 0; C != P.numClasses(); ++C) {
    const ClassInfo &CI = P.classAt(C);
    OS << "class " << CI.Name;
    if (CI.Super != NoClass)
      OS << " extends " << P.classAt(CI.Super).Name;
    OS << " {";
    for (const FieldInfo &F : CI.Fields)
      OS << ' ' << valueTypeName(F.Ty) << ' ' << F.Name << ';';
    OS << " }\n";
  }
  for (unsigned S = 0; S != P.numStatics(); ++S)
    OS << "static " << valueTypeName(P.staticAt(S).Ty) << ' '
       << P.staticAt(S).Name << ";\n";
  for (unsigned M = 0; M != P.numMethods(); ++M)
    OS << methodToString(P, M);
  return OS.str();
}
