//===- Bytecode.h - Mini-Java bytecode instruction set ------------*- C++ -*-===//
///
/// \file
/// The stack-machine bytecode our VM executes and compiles. It is a
/// deliberately Java-shaped subset: typed locals and stack slots (Int =
/// 64-bit integer, Ref = object reference), objects with fields, arrays,
/// static/virtual calls, monitors, and static (global) variables.
///
/// There is no exception model: out-of-bounds accesses and null
/// dereferences are VM traps, and integer division by zero yields zero.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_BYTECODE_BYTECODE_H
#define JVM_BYTECODE_BYTECODE_H

#include "ir/Ids.h"

#include <cstdint>

namespace jvm {

enum class Opcode : uint8_t {
  Nop,
  // Stack and locals.
  Const,     ///< push A (sign-extended 32-bit immediate)
  ConstNull, ///< push null
  Load,      ///< push local[A]
  Store,     ///< local[A] = pop
  Pop,       ///< drop top of stack
  Dup,       ///< duplicate top of stack
  // Integer arithmetic: pop Y, pop X, push X op Y.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Control flow. A is the target bytecode index.
  Goto,
  IfEq, ///< pop Y, pop X, branch if X == Y
  IfNe,
  IfLt,
  IfLe,
  IfGt,
  IfGe,
  IfNull,    ///< pop ref, branch if null
  IfNonNull, ///< pop ref, branch if non-null
  IfRefEq,   ///< pop B, pop A, branch if same object
  IfRefNe,
  // Objects. A = class id, B = field index where applicable.
  New,        ///< push new instance of class A (fields zero/null)
  GetField,   ///< pop obj, push obj.field[B] (A = class id)
  PutField,   ///< pop value, pop obj, obj.field[B] = value
  InstanceOf, ///< pop ref, push 1 if instance of class A (or subclass)
  // Statics. A = static index.
  GetStatic,
  PutStatic,
  // Arrays.
  NewArrayInt, ///< pop length, push new int array
  NewArrayRef,
  ArrLoadInt, ///< pop index, pop array, push element
  ArrLoadRef,
  ArrStoreInt, ///< pop value, pop index, pop array
  ArrStoreRef,
  ArrLen, ///< pop array, push length
  // Calls. A = method id; arguments are popped right-to-left.
  InvokeStatic,
  InvokeVirtual, ///< dispatch on the dynamic class of the receiver (arg 0)
  // Monitors.
  MonEnter, ///< pop ref, acquire its monitor
  MonExit,  ///< pop ref, release its monitor
  // Returns.
  RetVoid,
  RetInt,
  RetRef,
  // Verifier-provable dead code; executing it is a VM bug.
  Trap,
};

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// One bytecode instruction. The meaning of A and B depends on the opcode
/// (immediate, local index, branch target, class/method/static id, field
/// index). Branch targets are instruction indices ("bci").
struct Instr {
  Opcode Op = Opcode::Nop;
  int32_t A = 0;
  int32_t B = 0;
};

/// True if \p Op unconditionally ends the instruction's basic block.
bool isBlockEnd(Opcode Op);

/// True for the conditional two-way branches.
bool isConditionalBranch(Opcode Op);

/// True for opcodes that terminate the method.
bool isReturn(Opcode Op);

} // namespace jvm

#endif // JVM_BYTECODE_BYTECODE_H
