//===- Bytecode.cpp - Opcode metadata ----------------------------------------===//

#include "bytecode/Bytecode.h"

#include "support/ErrorHandling.h"

using namespace jvm;

const char *jvm::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Const:
    return "const";
  case Opcode::ConstNull:
    return "constnull";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Pop:
    return "pop";
  case Opcode::Dup:
    return "dup";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Goto:
    return "goto";
  case Opcode::IfEq:
    return "ifeq";
  case Opcode::IfNe:
    return "ifne";
  case Opcode::IfLt:
    return "iflt";
  case Opcode::IfLe:
    return "ifle";
  case Opcode::IfGt:
    return "ifgt";
  case Opcode::IfGe:
    return "ifge";
  case Opcode::IfNull:
    return "ifnull";
  case Opcode::IfNonNull:
    return "ifnonnull";
  case Opcode::IfRefEq:
    return "ifrefeq";
  case Opcode::IfRefNe:
    return "ifrefne";
  case Opcode::New:
    return "new";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::InstanceOf:
    return "instanceof";
  case Opcode::GetStatic:
    return "getstatic";
  case Opcode::PutStatic:
    return "putstatic";
  case Opcode::NewArrayInt:
    return "newarray_i";
  case Opcode::NewArrayRef:
    return "newarray_r";
  case Opcode::ArrLoadInt:
    return "arrload_i";
  case Opcode::ArrLoadRef:
    return "arrload_r";
  case Opcode::ArrStoreInt:
    return "arrstore_i";
  case Opcode::ArrStoreRef:
    return "arrstore_r";
  case Opcode::ArrLen:
    return "arrlen";
  case Opcode::InvokeStatic:
    return "invokestatic";
  case Opcode::InvokeVirtual:
    return "invokevirtual";
  case Opcode::MonEnter:
    return "monenter";
  case Opcode::MonExit:
    return "monexit";
  case Opcode::RetVoid:
    return "ret";
  case Opcode::RetInt:
    return "ret_i";
  case Opcode::RetRef:
    return "ret_r";
  case Opcode::Trap:
    return "trap";
  }
  jvm_unreachable("unknown opcode");
}

bool jvm::isConditionalBranch(Opcode Op) {
  switch (Op) {
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfLe:
  case Opcode::IfGt:
  case Opcode::IfGe:
  case Opcode::IfNull:
  case Opcode::IfNonNull:
  case Opcode::IfRefEq:
  case Opcode::IfRefNe:
    return true;
  default:
    return false;
  }
}

bool jvm::isReturn(Opcode Op) {
  return Op == Opcode::RetVoid || Op == Opcode::RetInt ||
         Op == Opcode::RetRef;
}

bool jvm::isBlockEnd(Opcode Op) {
  return Op == Opcode::Goto || Op == Opcode::Trap || isReturn(Op) ||
         isConditionalBranch(Op);
}
