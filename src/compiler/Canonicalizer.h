//===- Canonicalizer.h - Constant folding and local simplification --*- C++ -*-===//
///
/// \file
/// Iterative local simplification: arithmetic/compare constant folding and
/// identities, type-check folding on allocations, trivial-phi removal, and
/// folding of Ifs with constant conditions (including the control-flow
/// cleanup that makes speculative type guards disappear after inlining).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_CANONICALIZER_H
#define JVM_COMPILER_CANONICALIZER_H

namespace jvm {

class Graph;
class Program;

/// Runs to a fixpoint; returns true if the graph changed.
bool canonicalize(Graph &G, const Program &P);

} // namespace jvm

#endif // JVM_COMPILER_CANONICALIZER_H
