//===- Inliner.h - Call-site inlining -------------------------------*- C++ -*-===//
///
/// \file
/// Splices callee graphs into their callers. Direct (static or
/// devirtualized) calls are inlined breadth-first under size/depth/budget
/// limits; callee frame states are chained to the caller state at the
/// call site (paper Section 2 / Figure 8), so deoptimization inside
/// inlined code reconstructs the full stack of interpreter frames.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_INLINER_H
#define JVM_COMPILER_INLINER_H

#include "compiler/CompilerOptions.h"
#include "interp/Profile.h"
#include "bytecode/Program.h"

namespace jvm {

class Graph;

/// Inlines direct calls in \p G; returns the number of call sites inlined.
/// \p Profiles may be null (callees are then built without speculation).
unsigned inlineCalls(Graph &G, const Program &P, const ProfileData *Profiles,
                     const CompilerOptions &Opts);

} // namespace jvm

#endif // JVM_COMPILER_INLINER_H
