//===- StandardPhases.cpp - Phase adapters for the classic stages --------------===//

#include "compiler/StandardPhases.h"

#include "compiler/Canonicalizer.h"
#include "compiler/DeadCodeElimination.h"
#include "compiler/GVN.h"
#include "compiler/GraphBuilder.h"
#include "compiler/Inliner.h"
#include "ir/Graph.h"
#include "ir/Verifier.h"

using namespace jvm;

bool GraphBuildPhase::run(Graph &G, PhaseContext &Ctx) const {
  buildGraphInto(G, Ctx.P, Ctx.Method, &Ctx.Profiles.of(Ctx.Method),
                 Ctx.Options, Ctx.SpeshOut.empty() ? nullptr : &Ctx.SpeshOut,
                 Ctx.Spesh);
  return true;
}

bool CanonicalizerPhase::run(Graph &G, PhaseContext &Ctx) const {
  return canonicalize(G, Ctx.P);
}

bool InlinerPhase::run(Graph &G, PhaseContext &Ctx) const {
  return inlineCalls(G, Ctx.P, &Ctx.Profiles.data(), Ctx.Options) != 0;
}

bool GVNPhase::run(Graph &G, PhaseContext &) const { return runGVN(G); }

bool DCEPhase::run(Graph &G, PhaseContext &) const {
  return eliminateDeadCode(G);
}

bool VerifyPhase::run(Graph &G, PhaseContext &) const {
  verifyGraphOrDie(G);
  return false;
}
