//===- DeadCodeElimination.cpp - Remove unused nodes ---------------------------===//

#include "compiler/DeadCodeElimination.h"

#include "ir/Graph.h"
#include "support/Casting.h"

#include <set>
#include <vector>

using namespace jvm;

namespace {

/// Fixed nodes whose only observable behaviour is their result value.
/// (No exception model: loads cannot trap in a way the program can see,
/// and allocation is re-executable.)
bool isRemovableWhenUnused(const Node *N) {
  switch (N->kind()) {
  case NodeKind::NewInstance:
  case NodeKind::NewArray:
  case NodeKind::LoadField:
  case NodeKind::LoadIndexed:
  case NodeKind::LoadStatic:
  case NodeKind::ArrayLength:
    return true;
  default:
    return false;
  }
}

} // namespace

namespace {

/// Usage-count collection cannot free cyclic floating islands (loop phis
/// and their increment expressions keep each other alive after their
/// loop was deleted). Mark everything reachable from fixed nodes, then
/// break and delete the rest.
bool collectFloatingCycles(Graph &G) {
  std::set<const Node *> Marked;
  std::vector<Node *> Work;
  for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id) {
    Node *N = G.nodeAt(Id);
    if (N && N->isFixed())
      for (Node *In : N->inputs())
        if (In)
          Work.push_back(In);
  }
  while (!Work.empty()) {
    Node *N = Work.back();
    Work.pop_back();
    if (N->isFixed() || !Marked.insert(N).second)
      continue;
    for (Node *In : N->inputs())
      if (In)
        Work.push_back(In);
  }
  std::vector<Node *> Dead;
  for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id) {
    Node *N = G.nodeAt(Id);
    if (!N || N->isFixed() || Marked.count(N) || isa<ParameterNode>(N))
      continue;
    Dead.push_back(N);
  }
  if (Dead.empty())
    return false;
  for (Node *N : Dead)
    while (N->numInputs() > 0)
      N->removeInput(N->numInputs() - 1);
  for (Node *N : Dead) {
    assert(!N->hasUsages() && "dead floating island referenced live code");
    G.deleteNode(N);
  }
  return true;
}

} // namespace

bool jvm::eliminateDeadCode(Graph &G) {
  bool EverChanged = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id) {
      Node *N = G.nodeAt(Id);
      if (!N || N->hasUsages())
        continue;
      if (!N->isFixed()) {
        // Parameters are anchored by the graph's parameter table even
        // when currently unused (the inliner maps them to arguments).
        if (isa<ParameterNode>(N))
          continue;
        G.deleteNode(N);
        Changed = true;
        continue;
      }
      auto *FN = dyn_cast<FixedWithNextNode>(N);
      if (!FN)
        continue;
      if (!FN->predecessor() && !FN->next() && !isa<StartNode>(FN)) {
        // Unlinked from control flow (escape analysis removes stores,
        // monitor operations and allocations this way); once the last
        // metadata reference died the node itself can go.
        G.deleteNode(FN);
        Changed = true;
      } else if (isRemovableWhenUnused(FN) && FN->predecessor()) {
        G.removeFixed(FN);
        Changed = true;
      }
    }
    EverChanged |= Changed;
  }
  EverChanged |= collectFloatingCycles(G);
  return EverChanged;
}
