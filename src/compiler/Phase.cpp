//===- Phase.cpp - Phase timing table and timers -------------------------------===//

#include "compiler/Phase.h"

#include <algorithm>
#include <chrono>

using namespace jvm;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

PhaseTimes::Entry &PhaseTimes::entryFor(std::string_view Name) {
  for (Entry &E : Entries)
    if (E.Name == Name)
      return E;
  Entries.push_back(Entry{std::string(Name), 0, 0});
  return Entries.back();
}

uint64_t PhaseTimes::nanosFor(std::string_view Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return E.Nanos;
  return 0;
}

uint64_t PhaseTimes::runsFor(std::string_view Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return E.Runs;
  return 0;
}

uint64_t PhaseTimes::totalNanos() const {
  uint64_t Sum = 0;
  for (const Entry &E : Entries)
    Sum += E.Nanos;
  return Sum;
}

PhaseTimes &PhaseTimes::operator+=(const PhaseTimes &RHS) {
  for (const Entry &E : RHS.Entries) {
    Entry &Mine = entryFor(E.Name);
    Mine.Nanos += E.Nanos;
    Mine.Runs += E.Runs;
  }
  return *this;
}

ScopedNanoTimer::ScopedNanoTimer(uint64_t &Sink)
    : Sink(Sink), StartNanos(nowNanos()) {}

ScopedNanoTimer::~ScopedNanoTimer() { Sink += nowNanos() - StartNanos; }

PhaseTimer::PhaseTimer(PhaseTimes &Times, const char *Name)
    : Times(Times), Name(Name), StartNanos(nowNanos()) {}

PhaseTimer::~PhaseTimer() {
  PhaseTimes::Entry &E = Times.entryFor(Name);
  E.Nanos += nowNanos() - StartNanos;
  ++E.Runs;
}
