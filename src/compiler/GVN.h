//===- GVN.h - Global value numbering -------------------------------*- C++ -*-===//
///
/// \file
/// Deduplicates pure floating nodes (arithmetic, compares, type checks)
/// with identical operations and inputs. Constants are already unique by
/// construction (Graph::intConstant).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_GVN_H
#define JVM_COMPILER_GVN_H

namespace jvm {

class Graph;

/// Returns true if any node was deduplicated.
bool runGVN(Graph &G);

} // namespace jvm

#endif // JVM_COMPILER_GVN_H
