//===- StandardPhases.h - The built-in stages as Phase objects ------*- C++ -*-===//
///
/// \file
/// Phase adapters for the classic pipeline stages (graph building,
/// canonicalization, inlining, GVN, DCE, final verification). The escape
/// analyses live in pea/EscapePhases.h; makeDefaultPhasePlan() wires
/// everything together in the standard order.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_STANDARDPHASES_H
#define JVM_COMPILER_STANDARDPHASES_H

#include "compiler/Phase.h"

namespace jvm {

/// Bytecode -> SSA front end. Must be the first phase of a plan: it
/// populates the freshly constructed (Start + parameters only) graph,
/// consulting the method's profile snapshot for speculative branch
/// pruning and devirtualization.
class GraphBuildPhase : public Phase {
public:
  const char *name() const override { return "build"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

/// Iterative local simplification (constant folding, identities,
/// trivial-phi removal, constant-If folding).
class CanonicalizerPhase : public Phase {
public:
  const char *name() const override { return "canon"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

/// Splices callee graphs into direct (static or devirtualized) calls.
class InlinerPhase : public Phase {
public:
  const char *name() const override { return "inline"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

/// Global value numbering over pure floating nodes.
class GVNPhase : public Phase {
public:
  const char *name() const override { return "gvn"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

/// Dead code elimination.
class DCEPhase : public Phase {
public:
  const char *name() const override { return "dce"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

/// Unconditional pipeline-end verification (verifyGraphOrDie). Kept in
/// every default plan so a compile is checked at least once even when
/// CompilerOptions::VerifyAfterEachPhase is off. Never reports a change.
class VerifyPhase : public Phase {
public:
  const char *name() const override { return "verify"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

} // namespace jvm

#endif // JVM_COMPILER_STANDARDPHASES_H
