//===- GVN.cpp - Global value numbering ----------------------------------------===//

#include "compiler/GVN.h"

#include "ir/Graph.h"
#include "support/Casting.h"

#include <map>
#include <vector>

using namespace jvm;

namespace {

/// Structural key of a pure node: kind, operation attributes, input ids.
using ValueKey = std::vector<uint64_t>;

bool makeKey(const Node *N, ValueKey &Key) {
  Key.clear();
  Key.push_back(static_cast<uint64_t>(N->kind()));
  switch (N->kind()) {
  case NodeKind::Arith:
    Key.push_back(static_cast<uint64_t>(cast<ArithNode>(N)->op()));
    break;
  case NodeKind::Compare:
    Key.push_back(static_cast<uint64_t>(cast<CompareNode>(N)->op()));
    break;
  case NodeKind::InstanceOf: {
    const auto *IO = cast<InstanceOfNode>(N);
    Key.push_back(static_cast<uint64_t>(IO->testedClass()));
    Key.push_back(IO->isExact());
    break;
  }
  default:
    return false; // Not value-numberable.
  }
  for (const Node *In : N->inputs())
    Key.push_back(In ? In->id() + 1 : 0);
  return true;
}

} // namespace

bool jvm::runGVN(Graph &G) {
  bool EverChanged = false;
  bool Changed = true;
  // Replacements change input ids of users, enabling further merges, so
  // iterate to a fixpoint (bounded by expression depth).
  while (Changed) {
    Changed = false;
    std::map<ValueKey, Node *> Table;
    ValueKey Key;
    for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id) {
      Node *N = G.nodeAt(Id);
      if (!N || !makeKey(N, Key))
        continue;
      auto [It, Inserted] = Table.insert({Key, N});
      if (Inserted)
        continue;
      N->replaceAtAllUsages(It->second);
      G.deleteNode(N);
      Changed = true;
      EverChanged = true;
    }
  }
  return EverChanged;
}
