//===- Schedule.cpp - Basic blocks and global code motion ----------------------===//

#include "compiler/Schedule.h"

#include "support/Casting.h"
#include "support/ErrorHandling.h"

using namespace jvm;

bool BlockSchedule::dominates(unsigned A, unsigned B) const {
  while (Blocks[B].DomDepth > Blocks[A].DomDepth)
    B = Blocks[B].IDom;
  return A == B;
}

bool jvm::isSchedulableExpression(const Node *N) {
  switch (N->kind()) {
  case NodeKind::ConstantInt:
  case NodeKind::ConstantNull:
  case NodeKind::Arith:
  case NodeKind::Compare:
  case NodeKind::InstanceOf:
    return true;
  default:
    return false;
  }
}

namespace {

/// Builds one BlockSchedule; lives only for the duration of the analysis.
class Scheduler {
public:
  Scheduler(const Graph &G, BlockSchedule &S) : G(G), S(S) {}

  void run() {
    buildBlocks();
    computeRPO();
    computeDominators();
    computeLoopDepths();
    placeExpressions();
  }

private:
  //===------------------------------------------------------------------===//
  // Block formation
  //===------------------------------------------------------------------===//

  /// Successor fixed nodes of the terminator \p T (block leaders).
  void appendLeaders(const FixedNode *T, std::vector<const FixedNode *> &Out) {
    switch (T->kind()) {
    case NodeKind::If: {
      const auto *If = cast<IfNode>(T);
      Out.push_back(If->trueSuccessor());
      Out.push_back(If->falseSuccessor());
      break;
    }
    case NodeKind::End:
      Out.push_back(cast<EndNode>(T)->merge());
      break;
    case NodeKind::LoopEnd:
      Out.push_back(cast<LoopEndNode>(T)->loopBegin());
      break;
    case NodeKind::Return:
    case NodeKind::Deoptimize:
    case NodeKind::Unreachable:
      break;
    default:
      jvm_unreachable("block ended on a non-terminator");
    }
  }

  void buildBlocks() {
    S.BlockOf.assign(G.nodeIdBound(), -1);
    S.FloatBlock.assign(G.nodeIdBound(), -1);
    std::vector<const FixedNode *> Work{G.start()};
    std::vector<const FixedNode *> Leaders;
    while (!Work.empty()) {
      const FixedNode *Leader = Work.back();
      Work.pop_back();
      assert(Leader && "control flow edge to null");
      if (S.BlockOf[Leader->id()] != -1)
        continue;
      unsigned Index = S.Blocks.size();
      S.Blocks.emplace_back();
      BasicBlock &B = S.Blocks.back();
      B.Index = Index;
      const FixedNode *N = Leader;
      for (;;) {
        B.Nodes.push_back(N);
        S.BlockOf[N->id()] = static_cast<int>(Index);
        const auto *FWN = dyn_cast<FixedWithNextNode>(N);
        if (!FWN)
          break; // If/End/LoopEnd/Return/Deoptimize/Unreachable terminate.
        const FixedNode *Next = FWN->next();
        assert(Next && "fixed chain ended without a terminator");
        assert(!isa<MergeNode>(Next) &&
               "merge entered through `next` instead of an End");
        N = Next;
      }
      Leaders.clear();
      appendLeaders(B.Nodes.back(), Leaders);
      for (const FixedNode *L : Leaders)
        Work.push_back(L);
    }
    // Successor/predecessor edges, now that every leader has its block.
    std::vector<const FixedNode *> Succs;
    for (BasicBlock &B : S.Blocks) {
      Succs.clear();
      appendLeaders(B.Nodes.back(), Succs);
      for (const FixedNode *L : Succs) {
        int T = S.BlockOf[L->id()];
        assert(T >= 0 && "successor block was never built");
        B.Succs.push_back(static_cast<unsigned>(T));
        S.Blocks[T].Preds.push_back(B.Index);
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Dominators and loops
  //===------------------------------------------------------------------===//

  void computeRPO() {
    unsigned N = S.Blocks.size();
    std::vector<uint8_t> State(N, 0); // 0 new, 1 on stack, 2 done
    std::vector<std::pair<unsigned, unsigned>> Stack; // (block, next succ)
    std::vector<unsigned> Post;
    Post.reserve(N);
    Stack.emplace_back(0, 0);
    State[0] = 1;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      if (NextSucc < S.Blocks[B].Succs.size()) {
        unsigned T = S.Blocks[B].Succs[NextSucc++];
        if (!State[T]) {
          State[T] = 1;
          Stack.emplace_back(T, 0);
        }
      } else {
        State[B] = 2;
        Post.push_back(B);
        Stack.pop_back();
      }
    }
    S.RPO.assign(Post.rbegin(), Post.rend());
    RPONum.assign(N, 0);
    for (unsigned I = 0; I != S.RPO.size(); ++I)
      RPONum[S.RPO[I]] = I;
  }

  unsigned intersect(unsigned A, unsigned B) const {
    while (A != B) {
      while (RPONum[A] > RPONum[B])
        A = S.Blocks[A].IDom;
      while (RPONum[B] > RPONum[A])
        B = S.Blocks[B].IDom;
    }
    return A;
  }

  void computeDominators() {
    // Cooper/Harvey/Kennedy iterative algorithm over RPO.
    constexpr unsigned Undef = ~0u;
    for (BasicBlock &B : S.Blocks)
      B.IDom = Undef;
    S.Blocks[0].IDom = 0;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned B : S.RPO) {
        if (B == 0)
          continue;
        unsigned NewIdom = Undef;
        for (unsigned P : S.Blocks[B].Preds) {
          if (S.Blocks[P].IDom == Undef)
            continue;
          NewIdom = NewIdom == Undef ? P : intersect(P, NewIdom);
        }
        assert(NewIdom != Undef && "reachable block with no processed pred");
        if (S.Blocks[B].IDom != NewIdom) {
          S.Blocks[B].IDom = NewIdom;
          Changed = true;
        }
      }
    }
    for (unsigned B : S.RPO)
      S.Blocks[B].DomDepth =
          B == 0 ? 0 : S.Blocks[S.Blocks[B].IDom].DomDepth + 1;
  }

  void computeLoopDepths() {
    // Natural loop of each back edge (LoopEnd block -> header), flooded
    // backwards over predecessors.
    std::vector<uint8_t> InLoop;
    std::vector<unsigned> Stack;
    for (BasicBlock &T : S.Blocks) {
      if (T.terminator()->kind() != NodeKind::LoopEnd)
        continue;
      unsigned Header = T.Succs.front();
      InLoop.assign(S.Blocks.size(), 0);
      InLoop[Header] = 1;
      Stack.clear();
      Stack.push_back(T.Index);
      while (!Stack.empty()) {
        unsigned B = Stack.back();
        Stack.pop_back();
        if (InLoop[B])
          continue;
        InLoop[B] = 1;
        for (unsigned P : S.Blocks[B].Preds)
          Stack.push_back(P);
      }
      for (unsigned B = 0; B != S.Blocks.size(); ++B)
        if (InLoop[B])
          ++S.Blocks[B].LoopDepth;
    }
  }

  //===------------------------------------------------------------------===//
  // Global code motion for floating expressions
  //===------------------------------------------------------------------===//

  int lca(int A, int B) const {
    if (A < 0)
      return B;
    if (B < 0)
      return A;
    unsigned X = A, Y = B;
    while (S.Blocks[X].DomDepth > S.Blocks[Y].DomDepth)
      X = S.Blocks[X].IDom;
    while (S.Blocks[Y].DomDepth > S.Blocks[X].DomDepth)
      Y = S.Blocks[Y].IDom;
    while (X != Y) {
      X = S.Blocks[X].IDom;
      Y = S.Blocks[Y].IDom;
    }
    return static_cast<int>(X);
  }

  /// Block defining the value of \p In, as seen by a (reachable) user:
  /// the earliest block a use of \p In may be placed in.
  int defBlockEarly(const Node *In) {
    switch (In->kind()) {
    case NodeKind::Parameter:
      return 0;
    case NodeKind::Phi:
      return S.BlockOf[cast<PhiNode>(In)->merge()->id()];
    case NodeKind::AllocatedObject:
      return S.BlockOf[cast<AllocatedObjectNode>(In)->commit()->id()];
    default:
      if (isSchedulableExpression(In))
        return earlyOf(In);
      assert(In->isFixed() && "unexpected value input kind");
      return S.BlockOf[In->id()];
    }
  }

  /// Earliest legal block for the expression \p N: the deepest (in the
  /// dominator tree) of its inputs' definition blocks.
  int earlyOf(const Node *N) {
    unsigned Id = N->id();
    if (EarlyBlock[Id] >= 0)
      return EarlyBlock[Id];
    int Early = 0;
    for (const Node *In : N->inputs()) {
      int D = defBlockEarly(In);
      assert(D >= 0 && "live expression uses a value from unreachable code");
      if (S.Blocks[D].DomDepth > S.Blocks[Early].DomDepth)
        Early = D;
    }
    EarlyBlock[Id] = Early;
    return Early;
  }

  /// Blocks in which the user \p U consumes the expression \p N, merged
  /// into \p Late via LCA. Users in unreachable code contribute nothing.
  void mergeUseBlocks(const Node *U, const Node *N, int &Late) {
    if (const auto *Phi = dyn_cast<PhiNode>(U)) {
      const MergeNode *M = Phi->merge();
      if (S.BlockOf[M->id()] < 0)
        return; // phi of an unreachable merge
      // A phi use is a use at the jump feeding the matching operand.
      for (unsigned I = 0, E = Phi->numValues(); I != E; ++I)
        if (Phi->valueAt(I) == N)
          Late = lca(Late, S.BlockOf[M->input(I)->id()]);
      return;
    }
    if (const auto *FS = dyn_cast<FrameStateNode>(U)) {
      // Frame states are metadata: only the ones reachable from a
      // Deoptimize sink are ever evaluated, in the sink's block. States
      // on stateful nodes (Invoke, stores, ...) contribute no uses.
      for (unsigned B : StateDeoptBlocks[FS->id()])
        Late = lca(Late, static_cast<int>(B));
      return;
    }
    if (isSchedulableExpression(U)) {
      Late = lca(Late, finalOf(U));
      return;
    }
    if (U->isFixed()) {
      int B = S.BlockOf[U->id()];
      if (B >= 0)
        Late = lca(Late, B);
      return;
    }
    // Remaining user kinds (VirtualObject has no inputs; AllocatedObject
    // only uses its commit) cannot consume an expression.
    assert(!isa<VirtualObjectNode>(U) && !isa<AllocatedObjectNode>(U) &&
           "unexpected expression user");
  }

  /// Final placement for the expression \p N: between its earliest legal
  /// block and the latest common dominator of its uses, at the smallest
  /// loop depth (ties broken latest). -1 when no emitted code uses it.
  int finalOf(const Node *N) {
    unsigned Id = N->id();
    if (FinalState[Id] == 2)
      return S.FloatBlock[Id];
    assert(FinalState[Id] == 0 && "cycle in the pure expression DAG");
    FinalState[Id] = 1;
    int Late = -1;
    for (const Node *U : N->usages())
      mergeUseBlocks(U, N, Late);
    int Final = Late;
    if (Late >= 0) {
      int Early = earlyOf(N);
      // Walk the dominator chain from the latest block up to the
      // earliest, picking the smallest loop depth (out of loops when
      // possible; later among equals, to shorten live ranges).
      unsigned B = Late;
      for (;;) {
        if (S.Blocks[B].LoopDepth <
            S.Blocks[static_cast<unsigned>(Final)].LoopDepth)
          Final = static_cast<int>(B);
        if (static_cast<int>(B) == Early)
          break;
        unsigned D = S.Blocks[B].IDom;
        assert(D != B && "expression's early block does not dominate its "
                         "late block");
        B = D;
      }
    }
    S.FloatBlock[Id] = Final;
    FinalState[Id] = 2;
    return Final;
  }

  void placeExpressions() {
    unsigned Bound = G.nodeIdBound();
    EarlyBlock.assign(Bound, -1);
    FinalState.assign(Bound, 0);
    StateDeoptBlocks.assign(Bound, {});
    for (unsigned Id = 0; Id != Bound; ++Id) {
      const Node *N = G.nodeAt(Id);
      if (!N || N->kind() != NodeKind::Deoptimize)
        continue;
      int B = S.BlockOf[Id];
      if (B < 0)
        continue;
      for (const FrameStateNode *FS = cast<DeoptimizeNode>(N)->state(); FS;
           FS = FS->outer())
        StateDeoptBlocks[FS->id()].push_back(static_cast<unsigned>(B));
    }
    for (unsigned Id = 0; Id != Bound; ++Id) {
      const Node *N = G.nodeAt(Id);
      if (N && isSchedulableExpression(N))
        finalOf(N);
    }
  }

  const Graph &G;
  BlockSchedule &S;
  std::vector<unsigned> RPONum;
  std::vector<int> EarlyBlock;
  std::vector<uint8_t> FinalState; // 0 unvisited, 1 visiting, 2 done
  std::vector<std::vector<unsigned>> StateDeoptBlocks;
};

} // namespace

std::unique_ptr<BlockSchedule> jvm::computeBlockSchedule(const Graph &G) {
  auto S = std::make_unique<BlockSchedule>();
  Scheduler(G, *S).run();
  return S;
}

bool SchedulePhase::run(Graph &G, PhaseContext &Ctx) const {
  Ctx.Schedule = computeBlockSchedule(G);
  return false;
}
