//===- Inliner.cpp - Call-site inlining ----------------------------------------===//

#include "compiler/Inliner.h"

#include "compiler/GraphBuilder.h"
#include "ir/Cloning.h"
#include "ir/Graph.h"
#include "support/Casting.h"
#include "support/Debug.h"

#include <algorithm>
#include <deque>

using namespace jvm;

namespace {

class InlinerImpl {
public:
  InlinerImpl(Graph &G, const Program &P, const ProfileData *Profiles,
              const CompilerOptions &Opts)
      : G(G), P(P), Profiles(Profiles), Opts(Opts) {}

  unsigned run() {
    for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id)
      if (Node *N = G.nodeAt(Id))
        if (auto *Call = dyn_cast<InvokeNode>(N))
          Queue.push_back({Call, 0});

    unsigned NumInlined = 0;
    while (!Queue.empty()) {
      auto [Call, Depth] = Queue.front();
      Queue.pop_front();
      if (Call->isDeleted())
        continue;
      if (!shouldInline(Call, Depth))
        continue;
      inlineOne(Call, Depth);
      ++NumInlined;
    }
    return NumInlined;
  }

private:
  bool shouldInline(InvokeNode *Call, unsigned Depth) const {
    if (Call->callKind() != CallKind::Static)
      return false; // Still polymorphic; the executor dispatches.
    if (Depth >= Opts.InlineMaxDepth)
      return false;
    const MethodInfo &Callee = P.methodAt(Call->callee());
    if (Callee.Code.size() > Opts.InlineMaxCalleeCodeSize)
      return false;
    if (G.numLiveNodes() > Opts.InlineBudgetNodes)
      return false;
    return true;
  }

  void inlineOne(InvokeNode *Call, unsigned Depth) {
    const MethodProfile *CalleeProf =
        Profiles ? &Profiles->of(Call->callee()) : nullptr;
    std::unique_ptr<Graph> CalleeG =
        buildGraph(P, Call->callee(), CalleeProf, Opts);
    JVM_DEBUG("inlining m" << Call->callee() << " into m" << G.method()
                           << " at depth " << Depth);

    std::vector<Node *> Args;
    for (unsigned I = 0, E = Call->numArgs(); I != E; ++I)
      Args.push_back(Call->argAt(I));
    FrameStateNode *CallerState = Call->state();

    std::map<const Node *, Node *> Map = cloneGraphInto(G, *CalleeG, Args);

    // The map is keyed on callee-node *pointers*; iterating it directly
    // would make merge end order, phi operand order and the inlining
    // queue depend on heap addresses. Walk the clones in clone-id order
    // (assigned deterministically by cloneGraphInto) instead.
    std::vector<std::pair<const Node *, Node *>> Clones(Map.begin(),
                                                       Map.end());
    std::sort(Clones.begin(), Clones.end(), [](const auto &A, const auto &B) {
      return A.second->id() < B.second->id();
    });

    // Chain callee frame states to the caller state at this call site.
    for (const auto &[Old, New] : Clones) {
      if (Old->isDeleted())
        continue;
      if (auto *FS = dyn_cast<FrameStateNode>(New))
        if (!FS->outer() && FS != CallerState)
          FS->setOuter(CallerState);
    }

    // Splice control flow: caller pred -> callee entry.
    auto *Entry = cast<BeginNode>(Map.at(CalleeG->start()));
    auto *Pred = cast<FixedWithNextNode>(Call->predecessor());
    FixedNode *After = Call->next();
    assert(After && "invoke without successor");
    Call->setNext(nullptr);
    Pred->setNext(nullptr);
    Pred->setNext(Entry);

    // Collect the callee's returns (clones).
    std::vector<ReturnNode *> Returns;
    for (const auto &[Old, New] : Clones)
      if (auto *Ret = dyn_cast<ReturnNode>(New))
        Returns.push_back(Ret);

    Node *Result = nullptr;
    if (Returns.empty()) {
      // The callee never returns (it always deoptimizes or traps); the
      // code after the call is unreachable and swept below.
    } else if (Returns.size() == 1) {
      ReturnNode *Ret = Returns.front();
      Result = Ret->hasValue() ? Ret->value() : nullptr;
      auto *RetPred = cast<FixedWithNextNode>(Ret->predecessor());
      RetPred->setNext(nullptr);
      while (Ret->numInputs() > 0)
        Ret->removeInput(0);
      G.deleteNode(Ret);
      RetPred->setNext(After);
    } else {
      auto *Merge = G.create<MergeNode>();
      PhiNode *Phi = Call->type() != ValueType::Void
                         ? G.create<PhiNode>(Merge, Call->type())
                         : nullptr;
      for (ReturnNode *Ret : Returns) {
        if (Phi)
          Phi->appendValue(Ret->value());
        auto *End = G.create<EndNode>();
        auto *RetPred = cast<FixedWithNextNode>(Ret->predecessor());
        RetPred->setNext(nullptr);
        while (Ret->numInputs() > 0)
          Ret->removeInput(0);
        G.deleteNode(Ret);
        RetPred->setNext(End);
        Merge->addEnd(End);
      }
      Merge->setNext(After);
      Result = Phi;
    }

    // Replace the invoke's value and delete it.
    if (Result) {
      Call->replaceAtAllUsages(Result);
    } else {
      while (Call->hasUsages())
        Call->usages().back()->replaceAllInputs(Call, nullptr);
    }
    G.deleteNode(Call);

    if (Returns.empty())
      G.sweepUnreachable();

    // Newly imported direct calls are themselves candidates.
    for (const auto &[Old, New] : Clones)
      if (!New->isDeleted())
        if (auto *Inner = dyn_cast<InvokeNode>(New))
          Queue.push_back({Inner, Depth + 1});
  }

  Graph &G;
  const Program &P;
  const ProfileData *Profiles;
  const CompilerOptions &Opts;
  std::deque<std::pair<InvokeNode *, unsigned>> Queue;
};

} // namespace

unsigned jvm::inlineCalls(Graph &G, const Program &P,
                          const ProfileData *Profiles,
                          const CompilerOptions &Opts) {
  return InlinerImpl(G, P, Profiles, Opts).run();
}
