//===- Schedule.h - Basic blocks and global code motion -------------*- C++ -*-===//
///
/// \file
/// Turns the sea-of-nodes graph back into a conventional CFG for code
/// generation: basic blocks over the fixed-node chains, a dominator tree,
/// loop depths, and a global-code-motion placement (Click-style) that
/// assigns every live floating expression to the block where the linear
/// code generator will emit it — out of loops when possible, as late as
/// legal otherwise.
///
/// The schedule is a read-only analysis result: it never mutates the
/// graph. It is computed by the "schedule" phase at the end of the
/// default plan and consumed by the LinearCode translator in src/vm.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_SCHEDULE_H
#define JVM_COMPILER_SCHEDULE_H

#include "compiler/Phase.h"
#include "ir/Graph.h"

#include <memory>
#include <vector>

namespace jvm {

/// One basic block: a maximal run of fixed nodes ending in a terminator
/// (If, End, LoopEnd, Return, Deoptimize, Unreachable).
struct BasicBlock {
  unsigned Index = 0;
  /// The fixed nodes in control-flow order; the last one terminates the
  /// block (there is no fallthrough in this IR).
  std::vector<const FixedNode *> Nodes;
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
  /// Immediate dominator (the entry block dominates itself).
  unsigned IDom = 0;
  /// Depth in the dominator tree; entry = 0.
  unsigned DomDepth = 0;
  /// Natural-loop nesting depth; 0 outside all loops.
  unsigned LoopDepth = 0;

  const FixedNode *terminator() const { return Nodes.back(); }
};

/// The block structure of one graph plus the chosen placement for every
/// live floating expression.
struct BlockSchedule {
  /// Blocks[0] is the entry block (contains Start).
  std::vector<BasicBlock> Blocks;
  /// Reverse post order over Blocks indices; dominators precede the
  /// blocks they dominate (the CFG is reducible by construction).
  std::vector<unsigned> RPO;
  /// Node id -> block index for fixed nodes; -1 for floating nodes and
  /// fixed nodes unreachable from Start.
  std::vector<int> BlockOf;
  /// Node id -> chosen block for schedulable floating expressions
  /// (constants, arithmetic, compares, instanceof); -1 when the node is
  /// not an expression or has no uses that survive into emitted code.
  std::vector<int> FloatBlock;

  int blockOf(const Node *N) const { return BlockOf[N->id()]; }
  bool dominates(unsigned A, unsigned B) const;
};

/// Computes blocks, dominators, loop depths and the floating-node
/// placement for \p G. The graph must verify (every merge entered through
/// its ends, every path ending in a terminator).
std::unique_ptr<BlockSchedule> computeBlockSchedule(const Graph &G);

/// True for node kinds the scheduler places (pure floating expressions
/// the linear code generator emits as instructions).
bool isSchedulableExpression(const Node *N);

/// Pipeline phase that records the schedule of the final graph in
/// PhaseContext::Schedule for the backend. Pure analysis: never reports
/// the graph as changed.
class SchedulePhase : public Phase {
public:
  const char *name() const override { return "schedule"; }
  bool run(Graph &G, PhaseContext &Ctx) const override;
};

} // namespace jvm

#endif // JVM_COMPILER_SCHEDULE_H
