//===- GraphBuilder.cpp - Bytecode to sea-of-nodes SSA -----------------------===//

#include "compiler/GraphBuilder.h"

#include "support/Casting.h"
#include "support/Debug.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <map>
#include <set>

using namespace jvm;

namespace {

/// The abstract machine state during translation: IR values for locals,
/// operand stack and the monitor stack.
struct BuilderState {
  std::vector<Node *> Locals;
  std::vector<Node *> Stack;
  std::vector<Node *> Locks;
};

/// A control edge whose target block has not been materialized yet.
/// `From` is a fixed node with a free next().
struct PendingEdge {
  FixedWithNextNode *From = nullptr;
  BuilderState State;
};

class GraphBuilderImpl {
public:
  GraphBuilderImpl(Graph &G, const Program &P, MethodId Method,
                   const MethodProfile *Prof, const CompilerOptions &Opts,
                   const SpeshPlan *Plan = nullptr,
                   const SpeshSnapshot *Spesh = nullptr)
      : G(&G), P(P), M(P.methodAt(Method)), Prof(Prof), Opts(Opts),
        Plan(Plan && !Plan->empty() ? Plan : nullptr), Spesh(Spesh) {}

  void run() {
    discoverBlocks();
    findLoops();
    computeRpo();

    if (Spesh && Spesh->IsOsr) {
      // OSR construction: the frame's locals arrive as graph parameters
      // and execution enters at the loop header, not bci 0. Blocks only
      // reachable from the skipped preamble never get an incoming edge
      // and stay unbuilt.
      BuilderState Entry;
      Entry.Locals.assign(M.NumLocals, nullptr);
      for (unsigned I = 0, E = Entry.Locals.size(); I != E; ++I)
        Entry.Locals[I] = G->param(I);
      Incoming[blockOf(Spesh->OsrEntryBci)].push_back(
          {G->start(), std::move(Entry)});
    } else {
      // Seed the entry edge: Start flows into the block at bci 0,
      // through any argument-constant guards the plan requests.
      BuilderState Entry;
      Entry.Locals.assign(M.NumLocals, nullptr);
      for (unsigned I = 0, E = M.ParamTypes.size(); I != E; ++I)
        Entry.Locals[I] = G->param(I);
      FixedWithNextNode *EntryTail = G->start();
      if (Plan)
        for (unsigned Id = 0, E = Plan->Specs.size(); Id != E; ++Id) {
          const Speculation &S = Plan->Specs[Id];
          if (S.Kind != SpeculationKind::ArgConst)
            continue;
          Node *Param = Entry.Locals[S.Index];
          auto *Cmp = G->create<CompareNode>(CmpKind::IntEq, Param,
                                             G->intConstant(S.IntValue));
          auto *FS = makeState(Entry, 0, /*Reexecute=*/true);
          auto *Gd =
              G->create<GuardNode>(DeoptReason::ValueGuardFailed, Cmp, FS, Id);
          EntryTail->setNext(Gd);
          EntryTail = Gd;
          // Downstream code sees the proven constant, not the parameter
          // — that is what makes the speculation productive.
          Entry.Locals[S.Index] = G->intConstant(S.IntValue);
        }
      Incoming[0].push_back({EntryTail, std::move(Entry)});
    }

    for (int B : Rpo)
      processBlock(B);

    // Branch pruning can leave unreachable regions and loops without
    // back edges; normalize before handing the graph to the phases.
    G->sweepUnreachable();
  }

  /// Structural half of the OSR-entry check (see osrEntrySupported):
  /// \p Bci leads a loop header that no other loop's body contains.
  bool osrHeaderAt(int Bci) {
    discoverBlocks();
    findLoops();
    if (Bci < 0 || Bci >= static_cast<int>(BlockIndexOf.size()) ||
        BlockIndexOf[Bci] < 0)
      return false;
    int H = BlockIndexOf[Bci];
    if (!LoopBody.count(H))
      return false;
    // A header nested in an outer loop is out: the outer loop's
    // LoopBegin never materializes in an OSR graph entered here, so its
    // back edge would have nothing to attach to.
    for (const auto &[Header, Body] : LoopBody)
      if (Header != H && Body.count(H))
        return false;
    return true;
  }

private:
  //===------------------------------------------------------------------===//
  // Block structure
  //===------------------------------------------------------------------===//

  struct Block {
    int Start = 0;
    int End = 0; ///< exclusive
    std::vector<int> Succs;
  };

  int blockOf(int Bci) const {
    int B = BlockIndexOf[Bci];
    assert(B >= 0 && "bci is not a block leader");
    return B;
  }

  void discoverBlocks() {
    unsigned N = M.Code.size();
    std::vector<bool> Leader(N, false);
    Leader[0] = true;
    for (unsigned Bci = 0; Bci != N; ++Bci) {
      const Instr &I = M.Code[Bci];
      if (I.Op == Opcode::Goto || isConditionalBranch(I.Op)) {
        assert(I.A >= 0 && I.A < static_cast<int>(N));
        Leader[I.A] = true;
      }
      if (isBlockEnd(I.Op) && Bci + 1 < N)
        Leader[Bci + 1] = true;
    }
    BlockIndexOf.assign(N, -1);
    for (unsigned Bci = 0; Bci != N; ++Bci) {
      if (!Leader[Bci])
        continue;
      Block B;
      B.Start = Bci;
      BlockIndexOf[Bci] = Blocks.size();
      Blocks.push_back(B);
    }
    for (unsigned I = 0, E = Blocks.size(); I != E; ++I)
      Blocks[I].End = I + 1 < E ? Blocks[I + 1].Start : static_cast<int>(N);
    for (Block &B : Blocks) {
      const Instr &Last = M.Code[B.End - 1];
      if (isConditionalBranch(Last.Op)) {
        B.Succs.push_back(blockOf(Last.A));
        B.Succs.push_back(blockOf(B.End));
      } else if (Last.Op == Opcode::Goto) {
        B.Succs.push_back(blockOf(Last.A));
      } else if (!isBlockEnd(Last.Op)) {
        B.Succs.push_back(blockOf(B.End));
      }
    }
  }

  void findLoops() {
    // Iterative DFS; an edge to a block on the DFS stack is a back edge.
    enum { White, Grey, Black };
    std::vector<int> Color(Blocks.size(), White);
    std::vector<std::pair<int, unsigned>> Stack;
    Stack.push_back({0, 0});
    Color[0] = Grey;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      if (NextSucc == Blocks[B].Succs.size()) {
        Color[B] = Black;
        Postorder.push_back(B);
        Stack.pop_back();
        continue;
      }
      int Succ = Blocks[B].Succs[NextSucc++];
      if (Color[Succ] == Grey) {
        BackEdges.insert({B, Succ});
      } else if (Color[Succ] == White) {
        Color[Succ] = Grey;
        Stack.push_back({Succ, 0});
      }
    }

    // Predecessor lists over reachable blocks, for natural loops.
    std::map<int, std::vector<int>> Preds;
    for (unsigned B = 0; B != Blocks.size(); ++B) {
      if (Color[B] != Black)
        continue;
      for (int S : Blocks[B].Succs)
        Preds[S].push_back(B);
    }
    for (const auto &[From, Header] : BackEdges) {
      std::set<int> &Body = LoopBody[Header];
      Body.insert(Header);
      std::vector<int> Work{From};
      while (!Work.empty()) {
        int B = Work.back();
        Work.pop_back();
        if (!Body.insert(B).second)
          continue;
        for (int Pred : Preds[B])
          Work.push_back(Pred);
      }
    }
  }

  void computeRpo() {
    Rpo.assign(Postorder.rbegin(), Postorder.rend());
    assert(!Rpo.empty() && Rpo.front() == 0 && "entry must lead the RPO");
  }

  bool isBackEdge(int From, int To) const {
    return BackEdges.count({From, To}) != 0;
  }

  //===------------------------------------------------------------------===//
  // State plumbing: merges, loop headers, frame states
  //===------------------------------------------------------------------===//

  FrameStateNode *makeState(const BuilderState &S, int Bci, bool Reexecute) {
    auto *FS = G->create<FrameStateNode>(M.Id, Bci, Reexecute,
                                         S.Locals.size(), S.Stack.size(),
                                         S.Locks.size());
    for (unsigned I = 0, E = S.Locals.size(); I != E; ++I)
      FS->setLocalAt(I, S.Locals[I]);
    for (unsigned I = 0, E = S.Stack.size(); I != E; ++I)
      FS->setStackAt(I, S.Stack[I]);
    for (unsigned I = 0, E = S.Locks.size(); I != E; ++I)
      FS->setLockAt(I, S.Locks[I]);
    return FS;
  }

  /// Merges several forward edges into one (Merge node + phis).
  PendingEdge mergeForwardEdges(std::vector<PendingEdge> Edges) {
    assert(Edges.size() > 1 && "nothing to merge");
    auto *Merge = G->create<MergeNode>();
    for (PendingEdge &E : Edges) {
      auto *End = G->create<EndNode>();
      E.From->setNext(End);
      Merge->addEnd(End);
    }
    BuilderState Out;
    const BuilderState &First = Edges[0].State;
    auto MergeSlot = [&](auto Get) -> Node * {
      Node *V0 = Get(Edges[0].State);
      bool AnyNull = !V0;
      bool AllEqual = true;
      for (unsigned K = 1; K != Edges.size(); ++K) {
        Node *Vk = Get(Edges[K].State);
        AnyNull |= !Vk;
        AllEqual &= Vk == V0;
      }
      if (AnyNull)
        return nullptr; // Dead along some path.
      if (AllEqual)
        return V0;
      auto *Phi = G->create<PhiNode>(Merge, V0->type());
      for (PendingEdge &E : Edges)
        Phi->appendValue(Get(E.State));
      return Phi;
    };
    Out.Locals.resize(First.Locals.size());
    for (unsigned I = 0, E = First.Locals.size(); I != E; ++I)
      Out.Locals[I] =
          MergeSlot([I](const BuilderState &S) { return S.Locals[I]; });
    Out.Stack.resize(First.Stack.size());
    for (unsigned I = 0, E = First.Stack.size(); I != E; ++I)
      Out.Stack[I] =
          MergeSlot([I](const BuilderState &S) { return S.Stack[I]; });
    // Monitors must be structured: identical lock stacks on every path.
    Out.Locks = First.Locks;
    for (const PendingEdge &E : Edges)
      assert(E.State.Locks == Out.Locks &&
             "inconsistent monitor stacks at a merge");
    return {Merge, std::move(Out)};
  }

  struct LoopInfo {
    LoopBeginNode *Begin = nullptr;
    /// Phi per local/stack slot; null for slots without one.
    std::vector<PhiNode *> LocalPhis;
    std::vector<PhiNode *> StackPhis;
    std::vector<Node *> Locks;
  };

  /// Creates the LoopBegin with phis for every live slot; returns the
  /// state inside the loop.
  void enterLoopHeader(int Header, std::vector<PendingEdge> Edges) {
    PendingEdge Fwd = Edges.size() == 1 ? std::move(Edges[0])
                                        : mergeForwardEdges(std::move(Edges));
    auto *End = G->create<EndNode>();
    Fwd.From->setNext(End);
    auto *Loop = G->create<LoopBeginNode>();
    Loop->addEnd(End);

    LoopInfo LI;
    LI.Begin = Loop;
    BuilderState S = std::move(Fwd.State);
    LI.LocalPhis.assign(S.Locals.size(), nullptr);
    for (unsigned I = 0, E = S.Locals.size(); I != E; ++I) {
      if (!S.Locals[I])
        continue;
      auto *Phi = G->create<PhiNode>(Loop, S.Locals[I]->type());
      Phi->appendValue(S.Locals[I]);
      LI.LocalPhis[I] = Phi;
      S.Locals[I] = Phi;
    }
    LI.StackPhis.assign(S.Stack.size(), nullptr);
    for (unsigned I = 0, E = S.Stack.size(); I != E; ++I) {
      assert(S.Stack[I] && "dead stack slot at a loop header");
      auto *Phi = G->create<PhiNode>(Loop, S.Stack[I]->type());
      Phi->appendValue(S.Stack[I]);
      LI.StackPhis[I] = Phi;
      S.Stack[I] = Phi;
    }
    LI.Locks = S.Locks;
    Loops[Header] = LI;
    Tail = Loop;
    Cur = std::move(S);
  }

  /// Routes a finished control edge to \p ToBlock, inserting LoopExit
  /// nodes for every loop left and wiring loop back edges in place.
  void emitEdge(int FromBlock, int ToBlock, FixedWithNextNode *From,
                BuilderState State) {
    // Loops containing the source but not the target are being exited,
    // innermost (smallest body) first.
    std::vector<std::pair<size_t, int>> Exited;
    for (const auto &[Header, Body] : LoopBody)
      if (Body.count(FromBlock) && !Body.count(ToBlock))
        Exited.push_back({Body.size(), Header});
    std::sort(Exited.begin(), Exited.end());
    for (const auto &[Size, Header] : Exited) {
      auto It = Loops.find(Header);
      if (It == Loops.end())
        continue; // Loop never materialized (unreachable).
      auto *Exit = G->create<LoopExitNode>(It->second.Begin);
      From->setNext(Exit);
      From = Exit;
    }

    if (isBackEdge(FromBlock, ToBlock)) {
      LoopInfo &LI = Loops.at(ToBlock);
      auto *End = G->create<LoopEndNode>(LI.Begin);
      From->setNext(End);
      LI.Begin->addBackEdge(End);
      for (unsigned I = 0, E = LI.LocalPhis.size(); I != E; ++I)
        if (LI.LocalPhis[I]) {
          assert(State.Locals[I] && "live loop phi fed by a dead slot");
          LI.LocalPhis[I]->appendValue(State.Locals[I]);
        }
      for (unsigned I = 0, E = LI.StackPhis.size(); I != E; ++I)
        if (LI.StackPhis[I])
          LI.StackPhis[I]->appendValue(State.Stack[I]);
      assert(State.Locks == LI.Locks &&
             "inconsistent monitor stacks around a loop");
      return;
    }
    Incoming[ToBlock].push_back({From, std::move(State)});
  }

  //===------------------------------------------------------------------===//
  // Instruction translation
  //===------------------------------------------------------------------===//

  Node *pop() {
    assert(!Cur.Stack.empty() && "operand stack underflow");
    Node *N = Cur.Stack.back();
    Cur.Stack.pop_back();
    assert(N && "dead value on the operand stack");
    return N;
  }

  void push(Node *N) { Cur.Stack.push_back(N); }

  void appendFixed(FixedWithNextNode *N) {
    Tail->setNext(N);
    Tail = N;
  }

  /// Attaches a Deoptimize sink behind a fresh Begin and returns the Begin.
  BeginNode *makeDeoptBranch(DeoptReason Reason, const BuilderState &Pre,
                             int Bci) {
    auto *Begin = G->create<BeginNode>();
    auto *FS = makeState(Pre, Bci, /*Reexecute=*/true);
    auto *Deopt = G->create<DeoptimizeNode>(Reason, FS);
    Begin->setNext(Deopt);
    return Begin;
  }

  void processBlock(int B) {
    auto In = Incoming.find(B);
    if (In == Incoming.end() || In->second.empty())
      return; // Unreachable (e.g. everything into it was pruned).
    std::vector<PendingEdge> Edges = std::move(In->second);

    if (LoopBody.count(B)) {
      enterLoopHeader(B, std::move(Edges));
    } else if (Edges.size() == 1) {
      Tail = Edges[0].From;
      Cur = std::move(Edges[0].State);
    } else {
      PendingEdge Merged = mergeForwardEdges(std::move(Edges));
      Tail = Merged.From;
      Cur = std::move(Merged.State);
    }

    for (int Bci = Blocks[B].Start, End = Blocks[B].End; Bci != End; ++Bci) {
      const Instr &I = M.Code[Bci];
      if (translate(B, Bci, I))
        return; // Block ended with an explicit transfer.
    }
    // Fall-through into the next block.
    emitEdge(B, blockOf(Blocks[B].End), Tail, std::move(Cur));
  }

  /// Translates one instruction; returns true if it ended the block.
  bool translate(int B, int Bci, const Instr &I) {
    switch (I.Op) {
    case Opcode::Nop:
      return false;
    case Opcode::Const:
      push(G->intConstant(I.A));
      return false;
    case Opcode::ConstNull:
      push(G->nullConstant());
      return false;
    case Opcode::Load:
      assert(Cur.Locals[I.A] && "load from a dead local");
      push(Cur.Locals[I.A]);
      return false;
    case Opcode::Store:
      Cur.Locals[I.A] = pop();
      return false;
    case Opcode::Pop:
      pop();
      return false;
    case Opcode::Dup:
      push(Cur.Stack.back());
      return false;

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr: {
      Node *Y = pop();
      Node *X = pop();
      push(G->create<ArithNode>(arithKindFor(I.Op), X, Y));
      return false;
    }

    case Opcode::Goto:
      emitEdge(B, blockOf(I.A), Tail, std::move(Cur));
      return true;

    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfLe:
    case Opcode::IfGt:
    case Opcode::IfGe:
    case Opcode::IfNull:
    case Opcode::IfNonNull:
    case Opcode::IfRefEq:
    case Opcode::IfRefNe:
      translateBranch(B, Bci, I);
      return true;

    case Opcode::New: {
      const ClassInfo &C = P.classAt(I.A);
      auto *New = G->create<NewInstanceNode>(I.A, C.Fields.size());
      appendFixed(New);
      push(New);
      return false;
    }
    case Opcode::GetField: {
      Node *Obj = pop();
      const FieldInfo &F = P.classAt(I.A).Fields[I.B];
      auto *Load = G->create<LoadFieldNode>(I.A, I.B, F.Ty, Obj);
      appendFixed(Load);
      push(Load);
      return false;
    }
    case Opcode::PutField: {
      Node *V = pop();
      Node *Obj = pop();
      FrameStateNode *FS = makeState(Cur, Bci, /*Reexecute=*/false);
      appendFixed(G->create<StoreFieldNode>(I.A, I.B, Obj, V, FS));
      return false;
    }
    case Opcode::InstanceOf:
      push(G->create<InstanceOfNode>(I.A, /*Exact=*/false, pop()));
      return false;

    case Opcode::GetStatic: {
      auto *Load = G->create<LoadStaticNode>(I.A, P.staticAt(I.A).Ty);
      appendFixed(Load);
      push(Load);
      return false;
    }
    case Opcode::PutStatic: {
      Node *V = pop();
      FrameStateNode *FS = makeState(Cur, Bci, /*Reexecute=*/false);
      appendFixed(G->create<StoreStaticNode>(I.A, V, FS));
      return false;
    }

    case Opcode::NewArrayInt:
    case Opcode::NewArrayRef: {
      ValueType ElemTy =
          I.Op == Opcode::NewArrayInt ? ValueType::Int : ValueType::Ref;
      auto *New = G->create<NewArrayNode>(ElemTy, pop());
      appendFixed(New);
      push(New);
      return false;
    }
    case Opcode::ArrLoadInt:
    case Opcode::ArrLoadRef: {
      Node *Idx = pop();
      Node *Arr = pop();
      ValueType ElemTy =
          I.Op == Opcode::ArrLoadInt ? ValueType::Int : ValueType::Ref;
      auto *Load = G->create<LoadIndexedNode>(ElemTy, Arr, Idx);
      appendFixed(Load);
      push(Load);
      return false;
    }
    case Opcode::ArrStoreInt:
    case Opcode::ArrStoreRef: {
      Node *V = pop();
      Node *Idx = pop();
      Node *Arr = pop();
      FrameStateNode *FS = makeState(Cur, Bci, /*Reexecute=*/false);
      appendFixed(G->create<StoreIndexedNode>(Arr, Idx, V, FS));
      return false;
    }
    case Opcode::ArrLen: {
      auto *Len = G->create<ArrayLengthNode>(pop());
      appendFixed(Len);
      push(Len);
      return false;
    }

    case Opcode::InvokeStatic:
    case Opcode::InvokeVirtual:
      translateInvoke(Bci, I);
      return false;

    case Opcode::MonEnter: {
      Node *Obj = pop();
      Cur.Locks.push_back(Obj);
      FrameStateNode *FS = makeState(Cur, Bci, /*Reexecute=*/false);
      appendFixed(G->create<MonitorEnterNode>(Obj, FS));
      return false;
    }
    case Opcode::MonExit: {
      Node *Obj = pop();
      assert(!Cur.Locks.empty() && Cur.Locks.back() == Obj &&
             "unstructured monitor exit");
      Cur.Locks.pop_back();
      FrameStateNode *FS = makeState(Cur, Bci, /*Reexecute=*/false);
      appendFixed(G->create<MonitorExitNode>(Obj, FS));
      return false;
    }

    case Opcode::RetVoid:
      Tail->setNext(G->create<ReturnNode>(nullptr));
      return true;
    case Opcode::RetInt:
    case Opcode::RetRef:
      Tail->setNext(G->create<ReturnNode>(pop()));
      return true;

    case Opcode::Trap:
      Tail->setNext(G->create<UnreachableNode>());
      return true;
    }
    jvm_unreachable("unhandled opcode in the graph builder");
  }

  static ArithKind arithKindFor(Opcode Op) {
    switch (Op) {
    case Opcode::Add:
      return ArithKind::Add;
    case Opcode::Sub:
      return ArithKind::Sub;
    case Opcode::Mul:
      return ArithKind::Mul;
    case Opcode::Div:
      return ArithKind::Div;
    case Opcode::Rem:
      return ArithKind::Rem;
    case Opcode::And:
      return ArithKind::And;
    case Opcode::Or:
      return ArithKind::Or;
    case Opcode::Xor:
      return ArithKind::Xor;
    case Opcode::Shl:
      return ArithKind::Shl;
    case Opcode::Shr:
      return ArithKind::Shr;
    default:
      jvm_unreachable("not an arithmetic opcode");
    }
  }

  /// The plan's speculation of kind \p K at bytecode \p Bci, if any;
  /// \p Id receives its plan index (== the guard id it is planted with).
  const Speculation *findSpec(SpeculationKind K, int Bci, uint32_t &Id) const {
    if (!Plan)
      return nullptr;
    for (unsigned I = 0, E = Plan->Specs.size(); I != E; ++I) {
      const Speculation &S = Plan->Specs[I];
      if (S.Kind == K && S.Bci == Bci) {
        Id = I;
        return &S;
      }
    }
    return nullptr;
  }

  void translateBranch(int B, int Bci, const Instr &I) {
    // Snapshot before popping: the deopt re-executes the branch.
    BuilderState Pre = Cur;

    Node *Cond = nullptr;
    bool TakenOnTrue = true;
    switch (I.Op) {
    case Opcode::IfNull:
    case Opcode::IfNonNull: {
      Node *X = pop();
      Cond = G->create<CompareNode>(CmpKind::IsNull, X, nullptr);
      TakenOnTrue = I.Op == Opcode::IfNull;
      break;
    }
    case Opcode::IfRefEq:
    case Opcode::IfRefNe: {
      Node *Y = pop();
      Node *X = pop();
      Cond = G->create<CompareNode>(CmpKind::RefEq, X, Y);
      TakenOnTrue = I.Op == Opcode::IfRefEq;
      break;
    }
    default: {
      Node *Y = pop();
      Node *X = pop();
      CmpKind K = CmpKind::IntEq;
      switch (I.Op) {
      case Opcode::IfEq:
      case Opcode::IfNe:
        K = CmpKind::IntEq;
        TakenOnTrue = I.Op == Opcode::IfEq;
        break;
      case Opcode::IfLt:
      case Opcode::IfGe:
        K = CmpKind::IntLt;
        TakenOnTrue = I.Op == Opcode::IfLt;
        break;
      case Opcode::IfLe:
      case Opcode::IfGt:
        K = CmpKind::IntLe;
        TakenOnTrue = I.Op == Opcode::IfLe;
        break;
      default:
        jvm_unreachable("not a conditional branch");
      }
      Cond = G->create<CompareNode>(K, X, Y);
      break;
    }
    }

    // Planned branch prune: the hot direction continues as straight-line
    // code behind a GuardNode (PEA never sees a split), the cold
    // direction lives only in the guard's deopt state. This subsumes the
    // legacy If+Deoptimize diamond below for this site.
    uint32_t SpecId = NoSpeculationId;
    if (const Speculation *BS =
            findSpec(SpeculationKind::BranchPrune, Bci, SpecId)) {
      bool HotOnTrue = BS->TakenIsHot == TakenOnTrue;
      Node *GuardCond =
          HotOnTrue ? Cond
                    : G->create<CompareNode>(CmpKind::IntEq, Cond,
                                             G->intConstant(0));
      auto *FS = makeState(Pre, Bci, /*Reexecute=*/true);
      auto *Gd = G->create<GuardNode>(DeoptReason::BranchNeverTaken, GuardCond,
                                      FS, SpecId);
      appendFixed(Gd);
      int Hot = BS->TakenIsHot ? blockOf(I.A) : blockOf(Bci + 1);
      emitEdge(B, Hot, Tail, std::move(Cur));
      return;
    }

    bool PruneTaken = false, PruneFallthrough = false;
    const BranchProfile *BP = Prof ? Prof->branchAt(Bci) : nullptr;
    if (Opts.PruneColdBranches && BP && BP->total() >= Opts.PruneMinProfile) {
      PruneTaken = BP->Taken == 0;
      PruneFallthrough = BP->NotTaken == 0;
    }

    auto *If = G->create<IfNode>(Cond);
    Tail->setNext(If);
    double PTaken = BP ? BP->takenProbability() : 0.5;
    If->setTrueProbability(TakenOnTrue ? PTaken : 1.0 - PTaken);

    int TakenBlock = blockOf(I.A);
    int FallBlock = blockOf(Bci + 1);

    BeginNode *TakenBegin;
    if (PruneTaken) {
      TakenBegin = makeDeoptBranch(DeoptReason::BranchNeverTaken, Pre, Bci);
    } else {
      TakenBegin = G->create<BeginNode>();
      emitEdge(B, TakenBlock, TakenBegin, Cur);
    }
    BeginNode *FallBegin;
    if (PruneFallthrough) {
      FallBegin = makeDeoptBranch(DeoptReason::BranchNeverTaken, Pre, Bci);
    } else {
      FallBegin = G->create<BeginNode>();
      emitEdge(B, FallBlock, FallBegin, Cur);
    }

    If->setTrueSuccessor(TakenOnTrue ? TakenBegin : FallBegin);
    If->setFalseSuccessor(TakenOnTrue ? FallBegin : TakenBegin);
  }

  void translateInvoke(int Bci, const Instr &I) {
    BuilderState Pre = Cur;
    const MethodInfo &Callee = P.methodAt(I.A);
    std::vector<Node *> Args(Callee.ParamTypes.size());
    for (unsigned A = Args.size(); A-- > 0;)
      Args[A] = pop();

    MethodId Target = I.A;
    CallKind Kind = I.Op == Opcode::InvokeStatic ? CallKind::Static
                                                 : CallKind::Virtual;
    uint32_t SpecId = NoSpeculationId;
    const Speculation *Pin =
        Kind == CallKind::Virtual
            ? findSpec(SpeculationKind::ReceiverPin, Bci, SpecId)
            : nullptr;
    if (Pin) {
      // Planned receiver pin: same exact-type speculation as the legacy
      // devirtualization diamond below, but expressed as a GuardNode so
      // escape analysis sees one straight-line block, and attributable
      // to the plan on failure.
      auto *Check =
          G->create<InstanceOfNode>(Pin->Receiver, /*Exact=*/true, Args[0]);
      auto *FS = makeState(Pre, Bci, /*Reexecute=*/true);
      auto *Gd = G->create<GuardNode>(DeoptReason::TypeGuardFailed, Check, FS,
                                      SpecId);
      appendFixed(Gd);
      Target = P.resolveVirtual(I.A, Pin->Receiver);
      Kind = CallKind::Static;
    } else if (Kind == CallKind::Virtual && Opts.Devirtualize && Prof) {
      const TypeProfile *TP = Prof->receiversAt(Bci);
      ClassId Mono = TP ? TP->monomorphicClass() : NoClass;
      if (Mono != NoClass && TP->total() >= Opts.DevirtMinProfile) {
        // Exact type guard; the mismatch path deoptimizes and re-executes
        // the invoke in the interpreter.
        auto *Check = G->create<InstanceOfNode>(Mono, /*Exact=*/true, Args[0]);
        auto *If = G->create<IfNode>(Check);
        If->setTrueProbability(1.0);
        Tail->setNext(If);
        auto *Continue = G->create<BeginNode>();
        If->setTrueSuccessor(Continue);
        If->setFalseSuccessor(
            makeDeoptBranch(DeoptReason::TypeGuardFailed, Pre, Bci));
        Tail = Continue;
        Target = P.resolveVirtual(I.A, Mono);
        Kind = CallKind::Static;
      }
    }

    FrameStateNode *FS = makeState(Cur, Bci, /*Reexecute=*/false);
    auto *Invoke = G->create<InvokeNode>(Kind, Target, Callee.RetTy, Args, FS);
    appendFixed(Invoke);
    if (Callee.RetTy != ValueType::Void)
      push(Invoke);
  }

  //===------------------------------------------------------------------===//
  // Members
  //===------------------------------------------------------------------===//

  Graph *G;
  const Program &P;
  const MethodInfo &M;
  const MethodProfile *Prof;
  const CompilerOptions &Opts;
  const SpeshPlan *Plan;       ///< non-null and non-empty, or null
  const SpeshSnapshot *Spesh;  ///< OSR entry spec source (may be null)

  std::vector<Block> Blocks;
  std::vector<int> BlockIndexOf; ///< bci -> block index (leaders only)
  std::vector<int> Postorder;
  std::vector<int> Rpo;
  std::set<std::pair<int, int>> BackEdges;
  std::map<int, std::set<int>> LoopBody;

  std::map<int, std::vector<PendingEdge>> Incoming;
  std::map<int, LoopInfo> Loops;

  FixedWithNextNode *Tail = nullptr;
  BuilderState Cur;
};

} // namespace

void jvm::buildGraphInto(Graph &G, const Program &P, MethodId Method,
                         const MethodProfile *Profile,
                         const CompilerOptions &Options,
                         const SpeshPlan *Plan, const SpeshSnapshot *Spesh) {
  GraphBuilderImpl(G, P, Method, Profile, Options, Plan, Spesh).run();
}

bool jvm::osrEntrySupported(const Program &P, MethodId Method, int Bci) {
  const MethodInfo &M = P.methodAt(Method);
  if (Bci < 0 || Bci >= static_cast<int>(M.Code.size()))
    return false;
  // A frame holding monitors cannot be rebuilt from locals alone.
  for (const Instr &I : M.Code)
    if (I.Op == Opcode::MonEnter)
      return false;
  Graph Scratch(Method, M.ParamTypes);
  CompilerOptions Opts;
  return GraphBuilderImpl(Scratch, P, Method, nullptr, Opts).osrHeaderAt(Bci);
}

std::unique_ptr<Graph> jvm::buildGraph(const Program &P, MethodId Method,
                                       const MethodProfile *Profile,
                                       const CompilerOptions &Options) {
  auto G = std::make_unique<Graph>(Method, P.methodAt(Method).ParamTypes);
  buildGraphInto(*G, P, Method, Profile, Options);
  return G;
}
