//===- Phase.h - Compiler phase interface and shared context --------*- C++ -*-===//
///
/// \file
/// The declarative phase layer of the JIT pipeline, mirroring Graal's
/// phase-plan architecture: every optimization stage is a named, reusable
/// Phase object, and a PhasePlan (see PhasePlan.h) schedules them. The
/// cross-cutting concerns the stages used to duplicate — per-phase wall
/// timing, inter-phase IR verification, structured dumping — live in the
/// plan runner, not in the phases.
///
/// This header defines the pieces shared between phases and their driver:
///  - Phase: `name()` + `run(Graph&, PhaseContext&) -> bool changed`.
///    Phases are stateless and reentrant (`run` is const), so one plan
///    instance can serve every broker worker concurrently.
///  - PhaseContext: everything a phase may consult or produce — the
///    Program, the immutable ProfileSnapshot, the CompilerOptions, the
///    escape-analysis statistics, the per-phase-name timing table, and
///    the dump sinks.
///  - PhaseTimes: the per-phase-name timing table that replaces the old
///    fixed Build/Inline/GvnDce/Escape/Cleanup fields; a phase a plan
///    adds tomorrow shows up in JitMetrics without new plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_PHASE_H
#define JVM_COMPILER_PHASE_H

#include "compiler/CompilerOptions.h"
#include "interp/Profile.h"
#include "pea/PartialEscapeAnalysis.h"
#include "spesh/SpeshPlan.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace jvm {

class Graph;
class Program;
struct BlockSchedule;

/// Wall-clock nanoseconds and run counts per phase *name*. Entries keep
/// first-execution (i.e. plan) order, so printing the table reads like
/// the pipeline. Two executions of the same name — the cleanup fixpoint
/// re-running the canonicalizer, say — merge into one entry.
struct PhaseTimes {
  struct Entry {
    std::string Name;
    uint64_t Nanos = 0;
    uint64_t Runs = 0;
  };

  std::vector<Entry> Entries;

  /// The entry for \p Name, appended (zeroed) if absent.
  Entry &entryFor(std::string_view Name);

  /// Nanos charged to \p Name; 0 if the phase never ran.
  uint64_t nanosFor(std::string_view Name) const;

  /// Times a phase named \p Name ran; 0 if never.
  uint64_t runsFor(std::string_view Name) const;

  /// Sum over all entries (<= the pipeline's TotalNanos: graph
  /// construction and plan overhead are outside any phase).
  uint64_t totalNanos() const;

  /// Merges \p RHS entry by entry (by name). The single aggregation
  /// point for JitMetrics — like PEAStats::operator+=, a phase added
  /// tomorrow cannot be silently dropped from per-run sums.
  PhaseTimes &operator+=(const PhaseTimes &RHS);
};

/// One phase execution in pipeline order, kept for the compilation log:
/// unlike PhaseTimes (which merges by name), the trail preserves every
/// execution separately, with the live-node count before/after — the raw
/// material for CompileLog::PhaseRec.
struct PhaseTrailEntry {
  const char *Name = nullptr;
  uint64_t Nanos = 0;
  uint32_t NodesBefore = 0;
  uint32_t NodesAfter = 0;
  bool Changed = false;
};

/// RAII wall-clock timer: adds the scope's elapsed nanoseconds to \p Sink.
class ScopedNanoTimer {
public:
  explicit ScopedNanoTimer(uint64_t &Sink);
  ~ScopedNanoTimer();

  ScopedNanoTimer(const ScopedNanoTimer &) = delete;
  ScopedNanoTimer &operator=(const ScopedNanoTimer &) = delete;

private:
  uint64_t &Sink;
  uint64_t StartNanos;
};

/// RAII per-phase timer: on destruction, charges the elapsed wall time to
/// \p Times' entry for \p Name and counts one run.
class PhaseTimer {
public:
  PhaseTimer(PhaseTimes &Times, const char *Name);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

private:
  PhaseTimes &Times;
  const char *Name;
  uint64_t StartNanos;
};

/// Everything one compilation's phases share. The const references are
/// the compilation's immutable inputs; the value fields are its
/// accumulating outputs, harvested by the pipeline driver into a
/// CompileResult.
struct PhaseContext {
  PhaseContext(const Program &P, const ProfileSnapshot &Profiles,
               const CompilerOptions &Options, MethodId Method)
      : P(P), Profiles(Profiles), Options(Options), Method(Method) {}

  const Program &P;
  const ProfileSnapshot &Profiles;
  const CompilerOptions &Options;
  const MethodId Method;

  /// Escape-analysis work done by this compilation (escape phases add).
  PEAStats Stats;
  /// Per-phase wall time, filled by the plan runner.
  PhaseTimes Times;
  /// Fixpoint combinators that hit their round cap without converging.
  uint64_t FixpointCapHits = 0;
  /// When non-null, the plan runner appends one PhaseTrailEntry per
  /// (non-composite) phase execution — the compilation log's record of
  /// what the pipeline actually did, in order.
  std::vector<PhaseTrailEntry> *Trail = nullptr;
  /// Per-compilation speculation statistics snapshot (null: speculation
  /// off, or a legacy caller that never threads one). Input to the
  /// "spesh" planner phase and, for OSR compiles, the source of the
  /// graph builder's entry spec (OsrEntryBci / OsrLocalTypes).
  const SpeshSnapshot *Spesh = nullptr;
  /// The plan the "spesh" phase committed to: the graph-building phase
  /// consumes it (guard emission), and the pipeline driver harvests it
  /// into CompileResult so installation can map guard ids back to
  /// speculations. Empty when the planner did not run or found nothing.
  SpeshPlan SpeshOut;
  /// Block structure + floating-node placement of the final graph, set by
  /// the "schedule" phase (see compiler/Schedule.h). The backend's linear
  /// code generator consumes it; plans without the phase leave it null
  /// and the backend schedules on its own.
  std::shared_ptr<const BlockSchedule> Schedule;

  // Dump sinks (see PhasePlan.h) ----------------------------------------
  /// When non-null, the runner appends "== after <phase> ==" IR dumps
  /// here instead of writing stderr directly; the pipeline driver
  /// flushes the buffer in one write, so concurrent broker workers never
  /// interleave their dump lines.
  std::string *DumpText = nullptr;
  /// When non-empty, the runner writes one IR snapshot file per
  /// graph-changing phase execution into this directory.
  std::string DumpDir;
  /// Uniquifies DumpDir file names across compilations of one method.
  uint64_t CompileSeq = 0;
  /// Running phase-execution index within this compile (file ordering).
  unsigned DumpIndex = 0;
};

/// One named, reusable pipeline stage. Implementations must be stateless:
/// everything observable flows through the Graph and the PhaseContext, so
/// a single Phase instance may run on any number of threads at once.
class Phase {
public:
  virtual ~Phase() = default;

  /// Stable name used for timing entries, dump labels and verification
  /// attribution. Must point to storage outliving the phase (string
  /// literals, in practice).
  virtual const char *name() const = 0;

  /// Transforms \p G; returns true if the graph changed. \p G is the
  /// graph under compilation (for the graph-building phase: freshly
  /// constructed, Start and parameters only).
  virtual bool run(Graph &G, PhaseContext &Ctx) const = 0;

  /// Composite phases (FixpointPhase) schedule children through the plan
  /// runner themselves: the runner then skips its own timing/verify/dump
  /// for the wrapper so child work is attributed to the children.
  virtual bool isComposite() const { return false; }
};

} // namespace jvm

#endif // JVM_COMPILER_PHASE_H
