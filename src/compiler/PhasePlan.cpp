//===- PhasePlan.cpp - Phase schedule execution and the default plan -----------===//

#include "compiler/PhasePlan.h"

#include "compiler/Schedule.h"
#include "compiler/StandardPhases.h"
#include "ir/Graph.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "observability/Trace.h"
#include "pea/EscapePhases.h"
#include "spesh/SpeshPhases.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

using namespace jvm;

namespace {

/// Verification failure: make the culprit unmissable. The buffered dumps
/// are flushed first so the failing compile's phase trail is visible,
/// then the problems and the offending graph, then abort.
[[noreturn]] void reportBrokenGraph(const Phase &Ph, const Graph &G,
                                    const std::vector<std::string> &Problems,
                                    PhaseContext &Ctx) {
  if (Ctx.DumpText && !Ctx.DumpText->empty()) {
    std::fwrite(Ctx.DumpText->data(), 1, Ctx.DumpText->size(), stderr);
    Ctx.DumpText->clear();
  }
  std::fprintf(stderr,
               "IR verification failed after phase '%s' (method m%u):\n",
               Ph.name(), static_cast<unsigned>(G.method()));
  for (const std::string &P : Problems)
    std::fprintf(stderr, "  %s\n", P.c_str());
  std::fprintf(stderr, "%s\n", graphToString(G).c_str());
  std::abort();
}

/// Appends the textual dump and/or writes the per-(method, phase) IR
/// snapshot file for one phase execution.
void recordDumps(const Phase &Ph, const Graph &G, PhaseContext &Ctx) {
  if (!Ctx.DumpText && Ctx.DumpDir.empty())
    return;
  std::string Text = graphToString(G);
  if (Ctx.DumpText) {
    *Ctx.DumpText += "== after ";
    *Ctx.DumpText += Ph.name();
    *Ctx.DumpText += " ==\n";
    *Ctx.DumpText += Text;
    *Ctx.DumpText += "\n";
  }
  if (!Ctx.DumpDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Ctx.DumpDir, EC);
    char FileName[128];
    std::snprintf(FileName, sizeof(FileName), "m%u-c%llu-%02u-%s.ir",
                  static_cast<unsigned>(G.method()),
                  static_cast<unsigned long long>(Ctx.CompileSeq),
                  Ctx.DumpIndex, Ph.name());
    std::string Path = Ctx.DumpDir + "/" + FileName;
    if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    }
  }
}

} // namespace

bool jvm::runManagedPhase(const Phase &Ph, Graph &G, PhaseContext &Ctx) {
  // Composite phases schedule their children through runManagedPhase
  // themselves; timing/verifying/dumping the wrapper too would charge
  // every child twice and dump duplicate graphs.
  if (Ph.isComposite())
    return Ph.run(G, Ctx);

  TraceScope Span(TraceCompile, Ph.name(), "method",
                  static_cast<int64_t>(Ctx.Method));
  uint64_t StartNanos = 0;
  uint32_t NodesBefore = 0;
  if (Ctx.Trail) {
    StartNanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
    NodesBefore = G.numLiveNodes();
  }
  PhaseTimer Timer(Ctx.Times, Ph.name());
  bool Changed = Ph.run(G, Ctx);
  if (Ctx.Trail) {
    uint64_t EndNanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
    Ctx.Trail->push_back(PhaseTrailEntry{Ph.name(), EndNanos - StartNanos,
                                         NodesBefore, G.numLiveNodes(),
                                         Changed});
  }
  if (Ctx.Options.VerifyAfterEachPhase) {
    std::vector<std::string> Problems = verifyGraph(G);
    if (!Problems.empty())
      reportBrokenGraph(Ph, G, Problems, Ctx);
  }
  // Dump only executions that changed the graph: fixpoint rounds that
  // converged and no-op phases would repeat the previous snapshot.
  if (Changed)
    recordDumps(Ph, G, Ctx);
  ++Ctx.DumpIndex;
  return Changed;
}

bool PhasePlan::run(Graph &G, PhaseContext &Ctx) const {
  bool Changed = false;
  for (const std::unique_ptr<Phase> &Ph : Phases)
    Changed |= runManagedPhase(*Ph, G, Ctx);
  return Changed;
}

bool FixpointPhase::run(Graph &G, PhaseContext &Ctx) const {
  bool Any = false;
  for (unsigned Round = 0; Round != MaxRounds; ++Round) {
    bool RoundChanged = false;
    for (const std::unique_ptr<Phase> &Child : Children)
      RoundChanged |= runManagedPhase(*Child, G, Ctx);
    Any |= RoundChanged;
    if (!RoundChanged)
      return Any;
  }
  // Every round changed something: the cap cut the iteration short. The
  // graph is still correct (each child preserves semantics), but later
  // rounds might have simplified further — report instead of silently
  // stopping like the old hand-rolled loop did.
  ++Ctx.FixpointCapHits;
  if (Ctx.DumpText) {
    *Ctx.DumpText += "warning: fixpoint '";
    *Ctx.DumpText += Name;
    *Ctx.DumpText += "' hit its round cap (";
    *Ctx.DumpText += std::to_string(MaxRounds);
    *Ctx.DumpText += ") without converging\n";
  }
  return Any;
}

PhasePlan jvm::makeDefaultPhasePlan(const CompilerOptions &Options) {
  PhasePlan Plan;
  // The speculation planner runs before graph construction: the builder
  // consumes the committed plan (Ctx.SpeshOut) while translating
  // bytecode, so PEA already sees the guarded, pruned graph.
  if (Options.EnableSpesh)
    Plan.append<SpeshPlanPhase>();
  Plan.append<GraphBuildPhase>();
  Plan.append<CanonicalizerPhase>();
  if (Options.EnableInlining) {
    Plan.append<InlinerPhase>();
    Plan.append<CanonicalizerPhase>();
  }
  Plan.append<GVNPhase>();
  Plan.append<DCEPhase>();
  switch (Options.EAMode) {
  case EscapeAnalysisMode::None:
    break;
  case EscapeAnalysisMode::FlowInsensitive:
    Plan.append<FlowInsensitiveEscapePhase>();
    break;
  case EscapeAnalysisMode::Partial:
    Plan.append<PartialEscapePhase>();
    break;
  }
  // Guards stay first-class through escape analysis (PEA treats them as
  // straight-line fixed nodes); lower them to If+Deoptimize diamonds only
  // now, so the cleanup fixpoint and the backend see plain control flow.
  if (Options.EnableSpesh)
    Plan.append<LowerGuardsPhase>();
  FixpointPhase &Cleanup =
      Plan.append<FixpointPhase>("cleanup", Options.CleanupFixpointMaxRounds);
  Cleanup.append<CanonicalizerPhase>();
  Cleanup.append<GVNPhase>();
  Cleanup.append<DCEPhase>();
  // Unconditional final verification, exactly like the pre-plan pipeline
  // (redundant but cheap when VerifyAfterEachPhase already ran).
  Plan.append<VerifyPhase>();
  // Block formation + global code motion over the verified final graph;
  // the backend's linear code generator consumes the result.
  if (Options.EmitLinearCode)
    Plan.append<SchedulePhase>();
  return Plan;
}
