//===- PhasePlan.h - Ordered, composable schedules of phases --------*- C++ -*-===//
///
/// \file
/// A PhasePlan is an ordered list of Phase objects plus the manager that
/// executes them with the pipeline's cross-cutting concerns:
///
///  - **Timing.** Every phase execution is wrapped in an RAII PhaseTimer
///    feeding PhaseContext::Times, keyed by phase name.
///  - **Verification.** With CompilerOptions::VerifyAfterEachPhase (the
///    default in assertion-enabled builds, forced on in Release via
///    -DJVM_VERIFY_PHASES=ON), the IR verifier runs after every phase and
///    a broken invariant is attributed to the phase that introduced it —
///    "IR verification failed after phase 'X'" instead of a pipeline-end
///    mystery.
///  - **Dumping.** When PhaseContext::DumpText is set, "== after <phase>
///    ==" IR dumps are buffered there (flushed in one write by the
///    driver, so broker workers never interleave); when DumpDir is set,
///    each graph-changing phase execution also writes one IR snapshot
///    file `m<method>-c<seq>-<idx>-<phase>.ir`.
///
/// FixpointPhase is the combinator that replaces hand-rolled cleanup
/// loops: it re-runs its children until a full round reports no change or
/// a round cap is hit (counted in PhaseContext::FixpointCapHits, warned
/// about in the dump buffer — never a silent stop).
///
/// makeDefaultPhasePlan() maps CompilerOptions onto the standard
/// pipeline; benchmarks (bench_ablation) compose custom plans directly.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_PHASEPLAN_H
#define JVM_COMPILER_PHASEPLAN_H

#include "compiler/Phase.h"

#include <memory>
#include <utility>
#include <vector>

namespace jvm {

/// Executes one phase under the manager's timing/verification/dumping.
/// The building block both PhasePlan::run and composite phases use, so a
/// fixpoint's children are observed exactly like top-level phases.
bool runManagedPhase(const Phase &Ph, Graph &G, PhaseContext &Ctx);

/// An ordered, immutable-once-built schedule of phases. Running a plan
/// does not mutate it, so one instance (e.g. the CompileBroker's) serves
/// any number of compiler threads concurrently.
class PhasePlan {
public:
  PhasePlan() = default;
  PhasePlan(PhasePlan &&) = default;
  PhasePlan &operator=(PhasePlan &&) = default;

  /// Appends \p Ph to the schedule; returns it for further configuration.
  Phase &append(std::unique_ptr<Phase> Ph) {
    Phases.push_back(std::move(Ph));
    return *Phases.back();
  }

  /// Constructs a T in place at the end of the schedule.
  template <typename T, typename... Args> T &append(Args &&...CtorArgs) {
    auto Owned = std::make_unique<T>(std::forward<Args>(CtorArgs)...);
    T *Raw = Owned.get();
    Phases.push_back(std::move(Owned));
    return *Raw;
  }

  size_t size() const { return Phases.size(); }
  bool empty() const { return Phases.empty(); }
  const Phase &phaseAt(size_t I) const { return *Phases[I]; }

  /// Runs every phase in order against \p G. Returns true if any phase
  /// changed the graph.
  bool run(Graph &G, PhaseContext &Ctx) const;

private:
  std::vector<std::unique_ptr<Phase>> Phases;
};

/// Bounded-fixpoint combinator: re-runs its children (in order, all of
/// them each round, like the hand-rolled loop it replaces) until a full
/// round reports no change. Hitting \p MaxRounds while still changing is
/// counted in PhaseContext::FixpointCapHits and warned about in the dump
/// buffer — a bounded loss of optimization, never of correctness.
class FixpointPhase : public Phase {
public:
  FixpointPhase(const char *Name, unsigned MaxRounds)
      : Name(Name), MaxRounds(MaxRounds) {}

  Phase &append(std::unique_ptr<Phase> Ph) {
    Children.push_back(std::move(Ph));
    return *Children.back();
  }

  template <typename T, typename... Args> T &append(Args &&...CtorArgs) {
    auto Owned = std::make_unique<T>(std::forward<Args>(CtorArgs)...);
    T *Raw = Owned.get();
    Children.push_back(std::move(Owned));
    return *Raw;
  }

  unsigned maxRounds() const { return MaxRounds; }
  size_t numChildren() const { return Children.size(); }

  const char *name() const override { return Name; }
  bool isComposite() const override { return true; }
  bool run(Graph &G, PhaseContext &Ctx) const override;

private:
  const char *Name;
  unsigned MaxRounds;
  std::vector<std::unique_ptr<Phase>> Children;
};

/// The standard pipeline for \p Options, one phase per stage:
/// build, canon, [inline, canon,] gvn, dce, the escape phase EAMode
/// selects (if any), the bounded cleanup fixpoint {canon, gvn, dce}, and
/// a final verify. Call-sequence compatible with the pre-plan pipeline:
/// it produces graphs identical node for node.
PhasePlan makeDefaultPhasePlan(const CompilerOptions &Options);

} // namespace jvm

#endif // JVM_COMPILER_PHASEPLAN_H
