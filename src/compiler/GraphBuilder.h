//===- GraphBuilder.h - Bytecode to sea-of-nodes SSA ----------------*- C++ -*-===//
///
/// \file
/// Translates verified method bytecode into the SSA IR by abstract
/// interpretation over the operand stack and locals:
///  - basic blocks and loops are discovered up front (natural loops of
///    DFS back edges), merges become Merge/LoopBegin nodes with phis;
///  - side-effecting nodes get "state after" FrameStates (paper §2);
///  - with profiles, never-taken branches become Deoptimize sinks and
///    monomorphic virtual calls are devirtualized behind a type guard —
///    the speculation that makes partial escape analysis productive on
///    "escapes only in the unlikely branch" code.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_GRAPHBUILDER_H
#define JVM_COMPILER_GRAPHBUILDER_H

#include "compiler/CompilerOptions.h"
#include "interp/Profile.h"
#include "bytecode/Program.h"
#include "ir/Graph.h"

#include <memory>

namespace jvm {

/// Populates \p G — which must be freshly constructed for \p Method
/// (Start + parameters only, nothing built yet) — with the method's IR.
/// \p Profile may be null (no speculation). The method must verify.
/// This is the phase-plan entry point: GraphBuildPhase runs it on the
/// empty graph the pipeline driver allocates.
void buildGraphInto(Graph &G, const Program &P, MethodId Method,
                    const MethodProfile *Profile,
                    const CompilerOptions &Options);

/// Convenience wrapper: allocates the graph and builds into it.
std::unique_ptr<Graph> buildGraph(const Program &P, MethodId Method,
                                  const MethodProfile *Profile,
                                  const CompilerOptions &Options);

} // namespace jvm

#endif // JVM_COMPILER_GRAPHBUILDER_H
