//===- GraphBuilder.h - Bytecode to sea-of-nodes SSA ----------------*- C++ -*-===//
///
/// \file
/// Translates verified method bytecode into the SSA IR by abstract
/// interpretation over the operand stack and locals:
///  - basic blocks and loops are discovered up front (natural loops of
///    DFS back edges), merges become Merge/LoopBegin nodes with phis;
///  - side-effecting nodes get "state after" FrameStates (paper §2);
///  - with profiles, never-taken branches become Deoptimize sinks and
///    monomorphic virtual calls are devirtualized behind a type guard —
///    the speculation that makes partial escape analysis productive on
///    "escapes only in the unlikely branch" code.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_GRAPHBUILDER_H
#define JVM_COMPILER_GRAPHBUILDER_H

#include "compiler/CompilerOptions.h"
#include "interp/Profile.h"
#include "bytecode/Program.h"
#include "ir/Graph.h"
#include "spesh/SpeshPlan.h"

#include <memory>

namespace jvm {

/// Populates \p G — which must be freshly constructed for \p Method
/// (Start + parameters only, nothing built yet) — with the method's IR.
/// \p Profile may be null (no speculation). The method must verify.
/// This is the phase-plan entry point: GraphBuildPhase runs it on the
/// empty graph the pipeline driver allocates.
///
/// \p Plan, when non-null, is the committed speculation plan: the
/// builder plants one GuardNode per speculation (guard id = plan index)
/// instead of the legacy If-diamond pruning/devirtualization at those
/// sites. \p Spesh, when non-null with IsOsr set, switches to on-stack
/// replacement construction: \p G must have been created with
/// OsrLocalTypes as its parameter types, every local is seeded from the
/// matching parameter, and the entry edge flows into the loop header at
/// OsrEntryBci rather than bci 0 (preamble blocks stay unbuilt).
void buildGraphInto(Graph &G, const Program &P, MethodId Method,
                    const MethodProfile *Profile,
                    const CompilerOptions &Options,
                    const SpeshPlan *Plan = nullptr,
                    const SpeshSnapshot *Spesh = nullptr);

/// True if \p Bci can host an on-stack-replacement entry: it leads a
/// natural-loop header that is not nested inside another loop, and the
/// method takes no monitors (a frame with held locks cannot be rebuilt
/// from locals alone). Structural only — the runtime adds its own
/// conditions (empty operand stack, fully typed locals) per attempt.
bool osrEntrySupported(const Program &P, MethodId Method, int Bci);

/// Convenience wrapper: allocates the graph and builds into it.
std::unique_ptr<Graph> buildGraph(const Program &P, MethodId Method,
                                  const MethodProfile *Profile,
                                  const CompilerOptions &Options);

} // namespace jvm

#endif // JVM_COMPILER_GRAPHBUILDER_H
