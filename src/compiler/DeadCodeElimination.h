//===- DeadCodeElimination.h - Remove unused nodes ------------------*- C++ -*-===//
///
/// \file
/// Deletes floating nodes without usages and unlinks side-effect-free
/// fixed nodes (loads, array lengths, allocations) whose results are
/// unused. The latter is where scalar replacement finally pays off: once
/// escape analysis rewrote all usages of an allocation, DCE removes the
/// NewInstance itself.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_DEADCODEELIMINATION_H
#define JVM_COMPILER_DEADCODEELIMINATION_H

namespace jvm {

class Graph;

/// Returns true if anything was removed.
bool eliminateDeadCode(Graph &G);

} // namespace jvm

#endif // JVM_COMPILER_DEADCODEELIMINATION_H
