//===- Canonicalizer.cpp - Constant folding and local simplification ----------===//

#include "compiler/Canonicalizer.h"

#include "bytecode/Program.h"
#include "compiler/CompilerOptions.h"
#include "ir/Graph.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

using namespace jvm;

const char *jvm::escapeAnalysisModeName(EscapeAnalysisMode M) {
  switch (M) {
  case EscapeAnalysisMode::None:
    return "none";
  case EscapeAnalysisMode::FlowInsensitive:
    return "equi-escape-sets";
  case EscapeAnalysisMode::Partial:
    return "partial-escape-analysis";
  }
  jvm_unreachable("unknown escape analysis mode");
}

namespace {

int64_t foldArith(ArithKind Op, int64_t X, int64_t Y) {
  switch (Op) {
  case ArithKind::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(X) +
                                static_cast<uint64_t>(Y));
  case ArithKind::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(X) -
                                static_cast<uint64_t>(Y));
  case ArithKind::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(X) *
                                static_cast<uint64_t>(Y));
  case ArithKind::Div:
    return Y == 0 ? 0 : X / Y;
  case ArithKind::Rem:
    return Y == 0 ? 0 : X % Y;
  case ArithKind::And:
    return X & Y;
  case ArithKind::Or:
    return X | Y;
  case ArithKind::Xor:
    return X ^ Y;
  case ArithKind::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(X) << (Y & 63));
  case ArithKind::Shr:
    return X >> (Y & 63);
  }
  jvm_unreachable("unknown arithmetic kind");
}

/// True if \p N can never be null at runtime.
bool isKnownNonNull(const Node *N) {
  return isa<NewInstanceNode, NewArrayNode, AllocatedObjectNode>(N);
}

/// The exact dynamic class of \p N if statically known, else NoClass.
/// Arrays report NoClass (they have no user-visible class).
ClassId exactClassOf(const Node *N) {
  if (const auto *NI = dyn_cast<NewInstanceNode>(N))
    return NI->instanceClass();
  if (const auto *AO = dyn_cast<AllocatedObjectNode>(N)) {
    const VirtualObjectNode *VO =
        AO->commit()->objectAt(AO->objectIndex());
    return VO->isArray() ? NoClass : VO->objectClass();
  }
  return NoClass;
}

bool isKnownArray(const Node *N) {
  if (isa<NewArrayNode>(N))
    return true;
  if (const auto *AO = dyn_cast<AllocatedObjectNode>(N))
    return AO->commit()->objectAt(AO->objectIndex())->isArray();
  return false;
}

class CanonicalizerImpl {
public:
  CanonicalizerImpl(Graph &G, const Program &P) : G(G), P(P) {}

  bool run() {
    bool EverChanged = false;
    for (unsigned Round = 0; Round != 50; ++Round) {
      bool Changed = false;
      for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id) {
        Node *N = G.nodeAt(Id);
        if (!N)
          continue;
        Changed |= visit(N);
      }
      if (FoldedAnIf) {
        G.sweepUnreachable();
        FoldedAnIf = false;
        Changed = true;
      }
      if (!Changed)
        return EverChanged;
      EverChanged = true;
    }
    return EverChanged;
  }

private:
  /// Replaces \p N by \p Repl everywhere and deletes it if fully detached.
  bool replace(Node *N, Node *Repl) {
    assert(!N->isFixed() && "only floating nodes are value-replaced here");
    N->replaceAtAllUsages(Repl);
    G.deleteNode(N);
    return true;
  }

  bool visit(Node *N) {
    // Orphans of swept regions can have nulled-out inputs; they are dead
    // and get collected by DCE, not simplified.
    for (const Node *In : N->inputs())
      if (!In)
        return false;
    switch (N->kind()) {
    case NodeKind::Arith:
      return visitArith(cast<ArithNode>(N));
    case NodeKind::Compare:
      return visitCompare(cast<CompareNode>(N));
    case NodeKind::InstanceOf:
      return visitInstanceOf(cast<InstanceOfNode>(N));
    case NodeKind::Phi:
      return visitPhi(cast<PhiNode>(N));
    case NodeKind::If:
      return visitIf(cast<IfNode>(N));
    case NodeKind::Guard:
      return visitGuard(cast<GuardNode>(N));
    default:
      return false;
    }
  }

  bool visitArith(ArithNode *N) {
    auto *CX = dyn_cast<ConstantIntNode>(N->x());
    auto *CY = dyn_cast<ConstantIntNode>(N->y());
    if (CX && CY)
      return replace(N, G.intConstant(foldArith(N->op(), CX->value(),
                                                CY->value())));
    Node *X = N->x();
    Node *Y = N->y();
    switch (N->op()) {
    case ArithKind::Add:
      if (CY && CY->value() == 0)
        return replace(N, X);
      if (CX && CX->value() == 0)
        return replace(N, Y);
      break;
    case ArithKind::Sub:
      if (CY && CY->value() == 0)
        return replace(N, X);
      if (X == Y)
        return replace(N, G.intConstant(0));
      break;
    case ArithKind::Mul:
      if (CY && CY->value() == 1)
        return replace(N, X);
      if (CX && CX->value() == 1)
        return replace(N, Y);
      if ((CY && CY->value() == 0) || (CX && CX->value() == 0))
        return replace(N, G.intConstant(0));
      break;
    case ArithKind::Div:
      if (CY && CY->value() == 1)
        return replace(N, X);
      break;
    case ArithKind::And:
    case ArithKind::Or:
      if (X == Y)
        return replace(N, X);
      break;
    case ArithKind::Xor:
      if (X == Y)
        return replace(N, G.intConstant(0));
      break;
    case ArithKind::Shl:
    case ArithKind::Shr:
      if (CY && CY->value() == 0)
        return replace(N, X);
      break;
    default:
      break;
    }
    return false;
  }

  bool visitCompare(CompareNode *N) {
    Node *X = N->x();
    switch (N->op()) {
    case CmpKind::IsNull:
      if (isa<ConstantNullNode>(X))
        return replace(N, G.intConstant(1));
      if (isKnownNonNull(X))
        return replace(N, G.intConstant(0));
      return false;
    case CmpKind::RefEq: {
      Node *Y = N->y();
      if (X == Y)
        return replace(N, G.intConstant(1));
      bool XNull = isa<ConstantNullNode>(X);
      bool YNull = isa<ConstantNullNode>(Y);
      if ((XNull && isKnownNonNull(Y)) || (YNull && isKnownNonNull(X)))
        return replace(N, G.intConstant(0));
      // Two distinct allocations in the same compilation scope can never
      // be the same object.
      if (isa<NewInstanceNode, NewArrayNode>(X) &&
          isa<NewInstanceNode, NewArrayNode>(Y))
        return replace(N, G.intConstant(0));
      return false;
    }
    case CmpKind::IntEq:
    case CmpKind::IntLt:
    case CmpKind::IntLe: {
      Node *Y = N->y();
      auto *CX = dyn_cast<ConstantIntNode>(X);
      auto *CY = dyn_cast<ConstantIntNode>(Y);
      if (CX && CY) {
        bool V = N->op() == CmpKind::IntEq   ? CX->value() == CY->value()
                 : N->op() == CmpKind::IntLt ? CX->value() < CY->value()
                                             : CX->value() <= CY->value();
        return replace(N, G.intConstant(V ? 1 : 0));
      }
      if (X == Y)
        return replace(N, G.intConstant(N->op() == CmpKind::IntLt ? 0 : 1));
      return false;
    }
    }
    jvm_unreachable("unknown compare kind");
  }

  bool visitInstanceOf(InstanceOfNode *N) {
    Node *Obj = N->object();
    if (isa<ConstantNullNode>(Obj))
      return replace(N, G.intConstant(0));
    if (isKnownArray(Obj))
      return replace(N, G.intConstant(0));
    ClassId Exact = exactClassOf(Obj);
    if (Exact == NoClass)
      return false;
    bool Result = N->isExact() ? Exact == N->testedClass()
                               : P.isSubclassOf(Exact, N->testedClass());
    return replace(N, G.intConstant(Result ? 1 : 0));
  }

  bool visitPhi(PhiNode *N) {
    // A phi is trivial if all operands are itself or one distinct value.
    Node *Distinct = nullptr;
    for (unsigned I = 0, E = N->numValues(); I != E; ++I) {
      Node *V = N->valueAt(I);
      if (V == N || V == Distinct)
        continue;
      if (Distinct)
        return false;
      Distinct = V;
    }
    if (!Distinct)
      return false; // Degenerate self-only phi; left to the DCE sweep.
    return replace(N, Distinct);
  }

  /// A guard whose condition proved constant-true always passes: unlink
  /// it from the fixed chain. (Constant-false guards are left alone —
  /// LowerGuardsPhase turns them into an If(0) that visitIf folds to the
  /// unconditional Deoptimize.)
  bool visitGuard(GuardNode *N) {
    auto *C = dyn_cast<ConstantIntNode>(N->condition());
    if (!C || C->value() == 0)
      return false;
    FixedNode *Next = N->next();
    auto *Pred = cast<FixedWithNextNode>(N->predecessor());
    N->setNext(nullptr);
    Pred->setNext(nullptr);
    Pred->setNext(Next);
    G.deleteNode(N); // Clears the condition and state inputs.
    return true;
  }

  bool visitIf(IfNode *N) {
    auto *C = dyn_cast<ConstantIntNode>(N->condition());
    if (!C)
      return false;
    FixedNode *Taken =
        C->value() != 0 ? N->trueSuccessor() : N->falseSuccessor();
    auto *Pred = cast<FixedWithNextNode>(N->predecessor());
    N->setTrueSuccessor(nullptr);
    N->setFalseSuccessor(nullptr);
    Pred->setNext(nullptr);
    Pred->setNext(Taken);
    G.deleteNode(N); // Clears the condition input.
    FoldedAnIf = true;
    return true;
  }

  Graph &G;
  const Program &P;
  bool FoldedAnIf = false;
};

} // namespace

bool jvm::canonicalize(Graph &G, const Program &P) {
  return CanonicalizerImpl(G, P).run();
}
