//===- CompilerOptions.h - Knobs for the JIT pipeline ---------------*- C++ -*-===//
///
/// \file
/// Configuration shared by the graph builder and the optimization phases,
/// including which escape analysis (if any) runs — the independent
/// variable of the paper's evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_COMPILER_COMPILEROPTIONS_H
#define JVM_COMPILER_COMPILEROPTIONS_H

#include <cstdint>

namespace jvm {

/// Which escape analysis the pipeline runs.
enum class EscapeAnalysisMode : uint8_t {
  None,          ///< Baseline Graal: no escape analysis at all.
  FlowInsensitive, ///< Equi-escape-sets, all-or-nothing (HotSpot-server-like).
  Partial,       ///< The paper's control-flow-sensitive partial EA.
};

const char *escapeAnalysisModeName(EscapeAnalysisMode M);

struct CompilerOptions {
  EscapeAnalysisMode EAMode = EscapeAnalysisMode::Partial;

  /// Replace never-taken branches with Deoptimize sinks (needs profiles).
  bool PruneColdBranches = true;
  /// Minimum profile count before a branch may be pruned.
  uint64_t PruneMinProfile = 20;

  /// Devirtualize monomorphic call sites behind a type guard.
  bool Devirtualize = true;
  uint64_t DevirtMinProfile = 20;

  /// Run the speculation planner (spesh/): profile-driven receiver
  /// pinning, observed-constant arguments and branch pruning expressed
  /// as explicit GuardNodes in the IR. Off by default; JVM_SPESH=1
  /// enables it through VMOptions.
  bool EnableSpesh = false;
  /// Minimum observation weight before the planner commits a speculation.
  uint64_t SpeshMinProfile = 20;

  /// Inliner limits.
  bool EnableInlining = true;
  unsigned InlineMaxCalleeCodeSize = 80; ///< bytecodes
  unsigned InlineMaxDepth = 5;
  unsigned InlineBudgetNodes = 2500; ///< max live nodes after inlining

  /// Iterations of the PEA loop fixpoint before giving up and
  /// materializing everything at the loop entry (paper Section 5.4).
  unsigned PeaMaxLoopIterations = 10;

  /// Rounds of the post-EA canon+gvn+dce cleanup fixpoint before the
  /// plan stops and reports a cap hit (JitMetrics::FixpointCapHits).
  unsigned CleanupFixpointMaxRounds = 4;

  /// Translate the optimized graph to register-based linear code at the
  /// end of the pipeline (the default execution tier). Off: only the
  /// graph is installed and the walker executes it (debug aid).
  bool EmitLinearCode = true;

  /// Run verifyGraph() after every phase of a plan and abort with the
  /// culprit phase's name on failure. Defaults on wherever assertions
  /// are on (this repo keeps them on in every build type) or when the
  /// build sets -DJVM_VERIFY_PHASES=ON.
#if !defined(NDEBUG) || defined(JVM_VERIFY_PHASES)
  bool VerifyAfterEachPhase = true;
#else
  bool VerifyAfterEachPhase = false;
#endif

  // Ablation switches (see DESIGN.md Section 5 and bench_ablation) -------
  /// Create loop phis for fields that change across iterations while the
  /// object stays virtual. Off: such objects materialize at the loop
  /// entry instead (loses the accumulator-object pattern).
  bool PeaLoopFieldPhis = true;
  /// Drop objects that no unprocessed code can observe at merges instead
  /// of materializing them ("at least one common alias", Section 5.3).
  /// Off: every mixed-state merge materializes, even for dead objects.
  bool PeaMergeLivenessPruning = true;
};

} // namespace jvm

#endif // JVM_COMPILER_COMPILEROPTIONS_H
