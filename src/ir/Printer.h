//===- Printer.h - Textual IR dump --------------------------------*- C++ -*-===//
///
/// \file
/// Prints a Graph in a deterministic one-node-per-line format, used by the
/// examples, the figure-regeneration bench and the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_IR_PRINTER_H
#define JVM_IR_PRINTER_H

#include <string>

namespace jvm {

class Graph;
class Node;

/// Renders \p N as `%id` plus kind and attributes (no inputs).
std::string nodeLabel(const Node *N);

/// Renders one line describing \p N: label, inputs, successors.
std::string nodeToString(const Node *N);

/// Renders the whole graph: fixed nodes in control-flow order, floating
/// nodes where first referenced, deterministic across runs.
std::string graphToString(const Graph &G);

/// Renders the graph in Graphviz DOT format, in the visual style of the
/// paper's Figure 2: bold edges for control flow (downwards), thin edges
/// for data dependencies, dashed boxes for frame states.
std::string graphToDot(const Graph &G);

} // namespace jvm

#endif // JVM_IR_PRINTER_H
