//===- Verifier.cpp - IR structural invariant checks ------------------------===//

#include "ir/Verifier.h"

#include "ir/Graph.h"
#include "ir/Printer.h"
#include "support/Casting.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

using namespace jvm;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Graph &G) : G(G) {}

  std::vector<std::string> run() {
    computeLive();
    for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id) {
      Node *N = G.nodeAt(Id);
      if (!N)
        continue;
      checkEdgeSymmetry(N);
      checkNodeInvariants(N);
    }
    return std::move(Problems);
  }

private:
  /// Live = fixed nodes reachable from Start by successor edges, plus
  /// everything they transitively consume through inputs. Checks that
  /// express "no live code depends on X" consult this set so that dead
  /// clusters awaiting dead-code elimination (the normal state between
  /// two phases of a plan) do not raise false alarms.
  void computeLive() {
    std::vector<Node *> Worklist{G.start()};
    while (!Worklist.empty()) {
      Node *N = Worklist.back();
      Worklist.pop_back();
      if (!N || !Live.insert(N).second)
        continue;
      for (Node *In : N->inputs())
        Worklist.push_back(In);
      if (auto *If = dyn_cast<IfNode>(N)) {
        Worklist.push_back(If->trueSuccessor());
        Worklist.push_back(If->falseSuccessor());
      } else if (auto *End = dyn_cast<EndNode>(N)) {
        Worklist.push_back(End->merge());
      } else if (auto *FN = dyn_cast<FixedWithNextNode>(N)) {
        Worklist.push_back(FN->next());
      }
    }
  }
  void problem(const Node *N, const std::string &Msg) {
    std::ostringstream OS;
    OS << nodeLabel(N) << ": " << Msg;
    Problems.push_back(OS.str());
  }

  void checkEdgeSymmetry(Node *N) {
    // Every input occurrence must appear once in the input's usage list.
    std::map<Node *, int> Expected;
    for (Node *In : N->inputs()) {
      if (!In)
        continue;
      if (In->isDeleted())
        problem(N, "references a deleted node");
      ++Expected[In];
    }
    for (auto &[In, Count] : Expected) {
      int Found = 0;
      for (Node *U : In->usages())
        if (U == N)
          ++Found;
      if (Found != Count)
        problem(N, "usage list of input %" + std::to_string(In->id()) +
                       " is out of sync");
    }
  }

  void checkNodeInvariants(Node *N) {
    if (auto *FN = dyn_cast<FixedWithNextNode>(N)) {
      if (FN->next() && FN->next()->predecessor() != FN)
        problem(N, "successor's predecessor back-pointer is wrong");
    }
    if (auto *If = dyn_cast<IfNode>(N)) {
      if (!If->trueSuccessor() || !If->falseSuccessor())
        problem(N, "If with missing successor");
      else {
        if (If->trueSuccessor()->predecessor() != If)
          problem(N, "true successor's predecessor is wrong");
        if (If->falseSuccessor()->predecessor() != If)
          problem(N, "false successor's predecessor is wrong");
        if (!isa<BeginNode>(If->trueSuccessor()) ||
            !isa<BeginNode>(If->falseSuccessor()))
          problem(N, "If successors must be Begin nodes");
      }
      if (!If->condition() || If->condition()->type() != ValueType::Int)
        problem(N, "If condition must be an Int value");
    }
    if (auto *M = dyn_cast<MergeNode>(N)) {
      bool IsLoop = isa<LoopBeginNode>(M);
      if (M->numEnds() == 0)
        problem(N, "merge without ends");
      for (unsigned I = 0, E = M->numEnds(); I != E; ++I) {
        Node *End = M->input(I);
        if (!End) {
          problem(N, "null end");
          continue;
        }
        if (IsLoop) {
          if (I == 0 && !isa<EndNode>(End))
            problem(N, "loop forward end must be an End");
          if (I > 0 && !isa<LoopEndNode>(End))
            problem(N, "loop back edge must be a LoopEnd");
        } else if (!isa<EndNode>(End)) {
          problem(N, "merge input is not an End");
        }
      }
      for (PhiNode *Phi : M->phis())
        if (Phi->numValues() != M->numEnds())
          problem(Phi, "phi operand count does not match merge ends");
    }
    if (auto *LE = dyn_cast<LoopEndNode>(N)) {
      if (!LE->loopBegin() || LE->loopBegin()->indexOfEnd(LE) < 0)
        problem(N, "loop end not registered with its loop");
    }
    if (auto *Phi = dyn_cast<PhiNode>(N)) {
      // Orphaned phis of swept or folded regions can lose their merge
      // anchor while they (and their users) wait for dead-code
      // elimination; only phis that live code still consumes must be
      // anchored. (A phi is in Live exactly when something reachable
      // transitively uses it — phis are never inputs of their merge.)
      if (!isa_and_nonnull<MergeNode>(Phi->input(0)) && Live.count(Phi))
        problem(N, "used phi without a merge anchor");
    }
    if (auto *FS = dyn_cast<FrameStateNode>(N)) {
      unsigned Fixed = 1 + FS->numLocals() + FS->numStack() + FS->numLocks();
      unsigned MappingInputs = 0;
      for (unsigned I = 0, E = FS->numVirtualMappings(); I != E; ++I) {
        const auto &M = FS->virtualMapping(I);
        MappingInputs += 1 + M.NumEntries;
        if (M.InputOffset >= FS->numInputs() ||
            !isa_and_nonnull<VirtualObjectNode>(FS->input(M.InputOffset)))
          problem(N, "virtual mapping does not reference a VirtualObject");
      }
      if (FS->numInputs() != Fixed + MappingInputs)
        problem(N, "frame state input count does not match its layout");
      if (FS->outer() && !isa<FrameStateNode>(FS->input(0)))
        problem(N, "outer state is not a FrameState");
    }
    if (auto *SN = dyn_cast<StatefulNode>(N)) {
      Node *S = SN->input(SN->numInputs() - 1);
      if (S && !isa<FrameStateNode>(S))
        problem(N, "last input of a stateful node must be a FrameState");
    }
    if (auto *Ret = dyn_cast<ReturnNode>(N)) {
      if (Ret->hasValue() && !Ret->value())
        problem(N, "return with null value");
    }
    if (auto *Gd = dyn_cast<GuardNode>(N)) {
      if (!Gd->condition() || Gd->condition()->type() != ValueType::Int)
        problem(N, "guard condition must be an Int value");
      if (!Gd->state())
        problem(N, "guard without a frame state");
      else if (!Gd->state()->isReexecute())
        problem(N, "guard state must re-execute the guarded instruction");
    }
  }

  const Graph &G;
  std::set<Node *> Live;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> jvm::verifyGraph(const Graph &G) {
  return VerifierImpl(G).run();
}

void jvm::verifyGraphOrDie(const Graph &G) {
  std::vector<std::string> Problems = verifyGraph(G);
  if (Problems.empty())
    return;
  std::fprintf(stderr, "malformed graph (method %d):\n", G.method());
  for (const std::string &P : Problems)
    std::fprintf(stderr, "  %s\n", P.c_str());
  std::fprintf(stderr, "%s\n", graphToString(G).c_str());
  std::abort();
}
