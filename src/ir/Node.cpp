//===- Node.cpp - Node edge management ------------------------------------===//

#include "ir/Node.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace jvm;

Node::~Node() = default;

const char *jvm::nodeKindName(NodeKind K) {
  switch (K) {
  case NodeKind::ConstantInt:
    return "ConstantInt";
  case NodeKind::ConstantNull:
    return "ConstantNull";
  case NodeKind::Parameter:
    return "Parameter";
  case NodeKind::Phi:
    return "Phi";
  case NodeKind::Arith:
    return "Arith";
  case NodeKind::Compare:
    return "Compare";
  case NodeKind::InstanceOf:
    return "InstanceOf";
  case NodeKind::AllocatedObject:
    return "AllocatedObject";
  case NodeKind::VirtualObject:
    return "VirtualObject";
  case NodeKind::FrameState:
    return "FrameState";
  case NodeKind::End:
    return "End";
  case NodeKind::LoopEnd:
    return "LoopEnd";
  case NodeKind::Return:
    return "Return";
  case NodeKind::Deoptimize:
    return "Deoptimize";
  case NodeKind::Unreachable:
    return "Unreachable";
  case NodeKind::If:
    return "If";
  case NodeKind::Start:
    return "Start";
  case NodeKind::Begin:
    return "Begin";
  case NodeKind::LoopExit:
    return "LoopExit";
  case NodeKind::Merge:
    return "Merge";
  case NodeKind::LoopBegin:
    return "LoopBegin";
  case NodeKind::NewInstance:
    return "NewInstance";
  case NodeKind::NewArray:
    return "NewArray";
  case NodeKind::LoadField:
    return "LoadField";
  case NodeKind::StoreField:
    return "StoreField";
  case NodeKind::LoadIndexed:
    return "LoadIndexed";
  case NodeKind::StoreIndexed:
    return "StoreIndexed";
  case NodeKind::ArrayLength:
    return "ArrayLength";
  case NodeKind::LoadStatic:
    return "LoadStatic";
  case NodeKind::StoreStatic:
    return "StoreStatic";
  case NodeKind::MonitorEnter:
    return "MonitorEnter";
  case NodeKind::MonitorExit:
    return "MonitorExit";
  case NodeKind::Invoke:
    return "Invoke";
  case NodeKind::Materialize:
    return "Materialize";
  case NodeKind::Guard:
    return "Guard";
  }
  jvm_unreachable("unknown node kind");
}

void Node::setInput(unsigned I, Node *NewInput) {
  assert(I < Inputs.size() && "input index out of range");
  Node *Old = Inputs[I];
  if (Old == NewInput)
    return;
  if (Old)
    Old->removeUsage(this);
  Inputs[I] = NewInput;
  if (NewInput)
    NewInput->addUsage(this);
}

void Node::appendInput(Node *NewInput) {
  Inputs.push_back(NewInput);
  if (NewInput)
    NewInput->addUsage(this);
}

void Node::removeInput(unsigned I) {
  assert(I < Inputs.size() && "input index out of range");
  if (Node *Old = Inputs[I])
    Old->removeUsage(this);
  Inputs.erase(Inputs.begin() + I);
}

void Node::replaceAllInputs(Node *OldInput, Node *NewInput) {
  for (unsigned I = 0, E = Inputs.size(); I != E; ++I)
    if (Inputs[I] == OldInput)
      setInput(I, NewInput);
}

void Node::replaceAtAllUsages(Node *Replacement) {
  assert(Replacement != this && "cannot replace a node with itself");
  // Each setInput call removes one usage entry, so drain from the back.
  while (!Usages.empty()) {
    Node *User = Usages.back();
    User->replaceAllInputs(this, Replacement);
  }
}

void Node::removeUsage(Node *User) {
  auto It = std::find(Usages.begin(), Usages.end(), User);
  assert(It != Usages.end() && "usage list out of sync");
  Usages.erase(It);
}

void Node::clearInputs() {
  for (Node *&In : Inputs) {
    if (In)
      In->removeUsage(this);
    In = nullptr;
  }
  Inputs.clear();
}
