//===- Cloning.h - Copying nodes between graphs ---------------------*- C++ -*-===//
///
/// \file
/// Clones all live nodes of one graph into another, remapping data and
/// control edges. Used by the inliner to splice callee graphs into their
/// callers. Parameters are not cloned; they map to caller-provided
/// argument nodes. Constants are deduplicated against the destination
/// graph's constant cache. The source Start node maps to a fresh Begin.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_IR_CLONING_H
#define JVM_IR_CLONING_H

#include <map>
#include <vector>

namespace jvm {

class Graph;
class Node;

/// Clones \p Src into \p Dest. \p ArgsForParams[i] substitutes parameter i.
/// Returns the old-node -> new-node map (parameters and constants map to
/// their substitutes).
std::map<const Node *, Node *>
cloneGraphInto(Graph &Dest, const Graph &Src,
               const std::vector<Node *> &ArgsForParams);

} // namespace jvm

#endif // JVM_IR_CLONING_H
