//===- Node.h - Sea-of-nodes IR node base classes -----------------*- C++ -*-===//
///
/// \file
/// The node base classes of our Graal-style sea-of-nodes SSA IR.
///
/// The IR distinguishes two families of nodes:
///  - *Fixed* nodes are anchored in control flow. Every fixed node except
///    control sinks and control splits has a unique successor (`next`), and
///    every fixed node reachable from Start has a unique predecessor, except
///    merges, whose predecessors are the End nodes listed as their inputs.
///  - *Floating* nodes (constants, arithmetic, phis, frame states, virtual
///    objects) have only data dependencies and no position in control flow.
///
/// All data dependencies are expressed uniformly through the `Inputs` list;
/// reverse edges are maintained automatically in `Usages`. Control-flow
/// successor edges are separate from inputs and maintain a `Pred`
/// back-pointer.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_IR_NODE_H
#define JVM_IR_NODE_H

#include "ir/Ids.h"
#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace jvm {

class Graph;
class FixedNode;

/// Discriminator for the Node class hierarchy (LLVM-style RTTI).
/// The enumerator order encodes the class ranges used by `classof`:
/// everything from FirstFixed on is a FixedNode, everything from
/// FirstFixedWithNext on also has a `next` successor.
enum class NodeKind : uint8_t {
  // Floating value nodes.
  ConstantInt,
  ConstantNull,
  Parameter,
  Phi,
  Arith,
  Compare,
  InstanceOf,
  AllocatedObject,
  VirtualObject,
  FrameState,
  // Fixed nodes without a next successor.
  End,
  LoopEnd,
  Return,
  Deoptimize,
  Unreachable,
  If,
  // Fixed nodes with a next successor.
  Start,
  Begin,
  LoopExit,
  Merge,
  LoopBegin,
  NewInstance,
  NewArray,
  LoadField,
  StoreField,
  LoadIndexed,
  StoreIndexed,
  ArrayLength,
  LoadStatic,
  StoreStatic,
  MonitorEnter,
  MonitorExit,
  Invoke,
  Materialize,
  Guard,
};

constexpr NodeKind FirstFixedKind = NodeKind::End;
constexpr NodeKind FirstFixedWithNextKind = NodeKind::Start;
constexpr NodeKind LastNodeKind = NodeKind::Guard;

/// Returns a short printable mnemonic for \p K.
const char *nodeKindName(NodeKind K);

/// Base class of all IR nodes.
///
/// Nodes are owned by their Graph and identified by a small dense id.
/// Deleting a node marks it dead without reclaiming storage, so ids stay
/// stable for the lifetime of a graph.
class Node {
public:
  NodeKind kind() const { return Kind; }
  unsigned id() const { return Id; }
  Graph *graph() const { return Parent; }
  ValueType type() const { return Ty; }
  bool isDeleted() const { return Deleted; }

  /// Data dependencies. Entries may be null (e.g. dead local slots in
  /// frame states); null entries carry no usage edge.
  const std::vector<Node *> &inputs() const { return Inputs; }
  unsigned numInputs() const { return Inputs.size(); }
  Node *input(unsigned I) const {
    assert(I < Inputs.size() && "input index out of range");
    return Inputs[I];
  }

  /// Replaces input \p I with \p NewInput, updating usage lists.
  void setInput(unsigned I, Node *NewInput);

  /// Appends \p NewInput as a new trailing input.
  void appendInput(Node *NewInput);

  /// Removes input \p I, shifting later inputs down.
  void removeInput(unsigned I);

  /// Replaces every occurrence of \p OldInput in the input list.
  void replaceAllInputs(Node *OldInput, Node *NewInput);

  /// Reverse data edges: every node that lists this node as an input
  /// appears here once per occurrence.
  const std::vector<Node *> &usages() const { return Usages; }
  bool hasUsages() const { return !Usages.empty(); }
  unsigned numUsages() const { return Usages.size(); }

  /// Returns the single usage of this node; asserts there is exactly one.
  Node *singleUsage() const {
    assert(Usages.size() == 1 && "expected exactly one usage");
    return Usages.front();
  }

  /// Rewrites every usage of this node to use \p Replacement instead.
  /// Afterwards this node has no usages. Control-flow successor edges are
  /// unaffected.
  void replaceAtAllUsages(Node *Replacement);

  /// True for nodes anchored in control flow.
  bool isFixed() const { return Kind >= FirstFixedKind; }

  Node(const Node &) = delete;
  Node &operator=(const Node &) = delete;

  /// Virtual anchor; nodes are owned polymorphically by their Graph.
  virtual ~Node();

protected:
  Node(NodeKind K, ValueType Ty) : Kind(K), Ty(Ty) {}

  void setType(ValueType NewTy) { Ty = NewTy; }

private:
  friend class Graph;

  void addUsage(Node *User) { Usages.push_back(User); }
  void removeUsage(Node *User);

  /// Detaches all inputs (dropping this node from their usage lists).
  void clearInputs();

  NodeKind Kind;
  ValueType Ty;
  bool Deleted = false;
  unsigned Id = 0;
  Graph *Parent = nullptr;
  std::vector<Node *> Inputs;
  std::vector<Node *> Usages;
};

/// A node with a position in control flow.
///
/// Every fixed node that is reachable and is not a merge has exactly one
/// predecessor, reachable via `predecessor()`. Successor edges live in the
/// concrete subclasses (IfNode, FixedWithNextNode).
class FixedNode : public Node {
public:
  FixedNode *predecessor() const { return Pred; }

  static bool classof(const Node *N) { return N->kind() >= FirstFixedKind; }

protected:
  FixedNode(NodeKind K, ValueType Ty) : Node(K, Ty) {}

  friend class FixedWithNextNode;
  friend class IfNode;
  friend class Graph;

  void setPred(FixedNode *P) {
    assert((!P || !Pred || Pred == P) &&
           "fixed node already has a different predecessor");
    Pred = P;
  }

private:
  FixedNode *Pred = nullptr;
};

/// A fixed node with a unique control-flow successor.
class FixedWithNextNode : public FixedNode {
public:
  FixedNode *next() const { return Next; }

  /// Sets the successor edge, maintaining the predecessor back-pointer.
  void setNext(FixedNode *N) {
    if (Next)
      Next->Pred = nullptr;
    Next = N;
    if (N) {
      assert(!N->Pred && "successor already linked to another predecessor");
      N->Pred = this;
    }
  }

  static bool classof(const Node *N) {
    return N->kind() >= FirstFixedWithNextKind;
  }

protected:
  FixedWithNextNode(NodeKind K, ValueType Ty) : FixedNode(K, Ty) {}

private:
  FixedNode *Next = nullptr;
};

} // namespace jvm

#endif // JVM_IR_NODE_H
