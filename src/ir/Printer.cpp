//===- Printer.cpp - Textual IR dump ---------------------------------------===//

#include "ir/Printer.h"

#include "ir/Graph.h"
#include "support/Casting.h"

#include <set>
#include <sstream>

using namespace jvm;

std::string jvm::nodeLabel(const Node *N) {
  std::ostringstream OS;
  OS << '%' << N->id() << ':' << nodeKindName(N->kind());
  switch (N->kind()) {
  case NodeKind::ConstantInt:
    OS << '(' << cast<ConstantIntNode>(N)->value() << ')';
    break;
  case NodeKind::Parameter:
    OS << '(' << cast<ParameterNode>(N)->index() << ')';
    break;
  case NodeKind::Arith:
    OS << '(' << arithKindName(cast<ArithNode>(N)->op()) << ')';
    break;
  case NodeKind::Compare:
    OS << '(' << cmpKindName(cast<CompareNode>(N)->op()) << ')';
    break;
  case NodeKind::InstanceOf: {
    const auto *IO = cast<InstanceOfNode>(N);
    OS << "(cls=" << IO->testedClass() << (IO->isExact() ? ",exact" : "")
       << ')';
    break;
  }
  case NodeKind::VirtualObject: {
    const auto *VO = cast<VirtualObjectNode>(N);
    if (VO->isArray())
      OS << "(arr[" << VO->numEntries() << "])";
    else
      OS << "(cls=" << VO->objectClass() << ",fields=" << VO->numEntries()
         << ')';
    break;
  }
  case NodeKind::AllocatedObject:
    OS << "(#" << cast<AllocatedObjectNode>(N)->objectIndex() << ')';
    break;
  case NodeKind::FrameState: {
    const auto *FS = cast<FrameStateNode>(N);
    OS << "(m" << FS->method() << "@" << FS->bci()
       << (FS->isReexecute() ? ",reexec" : "") << ')';
    break;
  }
  case NodeKind::NewInstance:
    OS << "(cls=" << cast<NewInstanceNode>(N)->instanceClass() << ')';
    break;
  case NodeKind::NewArray:
    OS << '(' << valueTypeName(cast<NewArrayNode>(N)->elementType()) << "[])";
    break;
  case NodeKind::LoadField:
    OS << "(f" << cast<LoadFieldNode>(N)->field() << ')';
    break;
  case NodeKind::StoreField:
    OS << "(f" << cast<StoreFieldNode>(N)->field() << ')';
    break;
  case NodeKind::LoadStatic:
    OS << "(g" << cast<LoadStaticNode>(N)->index() << ')';
    break;
  case NodeKind::StoreStatic:
    OS << "(g" << cast<StoreStaticNode>(N)->index() << ')';
    break;
  case NodeKind::Invoke: {
    const auto *Call = cast<InvokeNode>(N);
    OS << '(' << (Call->callKind() == CallKind::Static ? "static" : "virtual")
       << " m" << Call->callee() << ')';
    break;
  }
  case NodeKind::Deoptimize: {
    const auto *D = cast<DeoptimizeNode>(N);
    OS << '(' << deoptReasonName(D->reason());
    if (D->speculationId() != NoSpeculationId)
      OS << ",spec=" << D->speculationId();
    OS << ')';
    break;
  }
  case NodeKind::Guard: {
    const auto *Gd = cast<GuardNode>(N);
    OS << '(' << deoptReasonName(Gd->reason());
    if (Gd->speculationId() != NoSpeculationId)
      OS << ",spec=" << Gd->speculationId();
    OS << ')';
    break;
  }
  default:
    break;
  }
  return OS.str();
}

std::string jvm::nodeToString(const Node *N) {
  std::ostringstream OS;
  OS << nodeLabel(N);
  if (N->numInputs() > 0) {
    OS << " [";
    for (unsigned I = 0, E = N->numInputs(); I != E; ++I) {
      if (I)
        OS << ", ";
      Node *In = N->input(I);
      if (!In) {
        OS << '_';
        continue;
      }
      OS << '%' << In->id();
    }
    OS << ']';
  }
  if (const auto *If = dyn_cast<IfNode>(N)) {
    OS << " ? %" << If->trueSuccessor()->id() << " : %"
       << If->falseSuccessor()->id();
  } else if (const auto *FN = dyn_cast<FixedWithNextNode>(N)) {
    if (FN->next())
      OS << " -> %" << FN->next()->id();
  }
  return OS.str();
}

namespace {

/// Prints floating inputs (recursively) before the node that uses them, so
/// the dump reads roughly like a schedule.
class GraphPrinter {
public:
  explicit GraphPrinter(const Graph &G) : G(G) {}

  std::string run() {
    OS << "graph method=" << G.method() << " params=" << G.numParams()
       << "\n";
    // Control-flow order: depth-first over successors, false branch last so
    // the true branch prints first.
    std::vector<const FixedNode *> Stack{G.start()};
    std::set<const FixedNode *> Visited;
    while (!Stack.empty()) {
      const FixedNode *N = Stack.back();
      Stack.pop_back();
      if (!Visited.insert(N).second)
        continue;
      printFloatingInputs(N);
      OS << "  " << nodeToString(N) << "\n";
      if (const auto *If = dyn_cast<IfNode>(N)) {
        Stack.push_back(If->falseSuccessor());
        Stack.push_back(If->trueSuccessor());
      } else if (const auto *End = dyn_cast<EndNode>(N)) {
        if (const MergeNode *M = End->merge())
          if (allEndsVisited(M, Visited))
            Stack.push_back(M);
      } else if (const auto *FN = dyn_cast<FixedWithNextNode>(N)) {
        if (FN->next())
          Stack.push_back(FN->next());
      }
    }
    return OS.str();
  }

private:
  bool allEndsVisited(const MergeNode *M,
                      const std::set<const FixedNode *> &Visited) {
    // Loop back edges are intentionally ignored: a LoopBegin is entered
    // once its forward end is seen.
    if (isa<LoopBeginNode>(M))
      return Visited.count(M->endAt(0)) != 0;
    for (unsigned I = 0, E = M->numEnds(); I != E; ++I)
      if (!Visited.count(M->endAt(I)))
        return false;
    return true;
  }

  void printFloatingInputs(const Node *N) {
    for (unsigned I = 0, E = N->numInputs(); I != E; ++I) {
      const Node *In = N->input(I);
      if (!In || In->isFixed() || !PrintedFloating.insert(In).second)
        continue;
      printFloatingInputs(In);
      OS << "    " << nodeToString(In) << "\n";
    }
  }

  const Graph &G;
  std::ostringstream OS;
  std::set<const Node *> PrintedFloating;
};

} // namespace

std::string jvm::graphToString(const Graph &G) {
  return GraphPrinter(G).run();
}

std::string jvm::graphToDot(const Graph &G) {
  std::ostringstream OS;
  OS << "digraph method_" << G.method() << " {\n"
     << "  node [shape=box, fontname=\"Helvetica\"];\n";
  // Nodes.
  for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id) {
    const Node *N = G.nodeAt(Id);
    if (!N)
      continue;
    OS << "  n" << Id << " [label=\"" << nodeLabel(N) << "\"";
    if (isa<FrameStateNode>(N))
      OS << ", style=dashed";
    else if (isa<VirtualObjectNode>(N))
      OS << ", style=rounded";
    else if (!N->isFixed())
      OS << ", shape=oval";
    OS << "];\n";
  }
  // Data edges (thin, pointing from user to input, as in the paper).
  for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id) {
    const Node *N = G.nodeAt(Id);
    if (!N)
      continue;
    for (const Node *In : N->inputs())
      if (In)
        OS << "  n" << Id << " -> n" << In->id()
           << " [color=gray, arrowsize=0.6];\n";
  }
  // Control-flow edges (bold, downwards).
  for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id) {
    const Node *N = G.nodeAt(Id);
    if (!N)
      continue;
    if (const auto *If = dyn_cast<IfNode>(N)) {
      OS << "  n" << Id << " -> n" << If->trueSuccessor()->id()
         << " [style=bold, label=\"T\"];\n";
      OS << "  n" << Id << " -> n" << If->falseSuccessor()->id()
         << " [style=bold, label=\"F\"];\n";
    } else if (const auto *FN = dyn_cast<FixedWithNextNode>(N)) {
      if (FN->next())
        OS << "  n" << Id << " -> n" << FN->next()->id()
           << " [style=bold];\n";
    } else if (const auto *End = dyn_cast<EndNode>(N)) {
      if (const MergeNode *M = End->merge())
        OS << "  n" << Id << " -> n" << M->id() << " [style=bold];\n";
    } else if (const auto *LE = dyn_cast<LoopEndNode>(N)) {
      OS << "  n" << Id << " -> n" << LE->loopBegin()->id()
         << " [style=bold, constraint=false];\n";
    }
  }
  OS << "}\n";
  return OS.str();
}
