//===- Verifier.h - IR structural invariant checks ----------------*- C++ -*-===//
///
/// \file
/// Checks the structural invariants of a Graph: edge symmetry, control-flow
/// linkage, merge/phi consistency and frame-state layout. Run after every
/// phase in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_IR_VERIFIER_H
#define JVM_IR_VERIFIER_H

#include <string>
#include <vector>

namespace jvm {

class Graph;

/// Returns a list of human-readable problems; empty means the graph is
/// well-formed.
std::vector<std::string> verifyGraph(const Graph &G);

/// Aborts with a diagnostic if \p G is malformed.
void verifyGraphOrDie(const Graph &G);

} // namespace jvm

#endif // JVM_IR_VERIFIER_H
