//===- Cloning.cpp - Copying nodes between graphs ------------------------------===//

#include "ir/Cloning.h"

#include "ir/Graph.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

using namespace jvm;

namespace {

/// Creates a shell of the same kind/attributes as \p N in \p Dest. Data
/// inputs temporarily reference the *source* nodes (or are null for
/// layout-managed kinds); the caller rewires them afterwards.
Node *cloneShell(Graph &Dest, const Node *N) {
  switch (N->kind()) {
  case NodeKind::Phi: {
    const auto *Phi = cast<PhiNode>(N);
    // Temporarily anchored to the source merge; rewired in pass 2.
    return Dest.create<PhiNode>(Phi->merge(), Phi->type());
  }
  case NodeKind::Arith: {
    const auto *A = cast<ArithNode>(N);
    return Dest.create<ArithNode>(A->op(), A->x(), A->y());
  }
  case NodeKind::Compare: {
    const auto *C = cast<CompareNode>(N);
    return Dest.create<CompareNode>(
        C->op(), C->x(), C->op() == CmpKind::IsNull ? nullptr : C->y());
  }
  case NodeKind::InstanceOf: {
    const auto *IO = cast<InstanceOfNode>(N);
    return Dest.create<InstanceOfNode>(IO->testedClass(), IO->isExact(),
                                       IO->object());
  }
  case NodeKind::VirtualObject: {
    const auto *VO = cast<VirtualObjectNode>(N);
    return Dest.create<VirtualObjectNode>(VO->objectClass(), VO->isArray(),
                                          VO->elementType(),
                                          VO->numEntries());
  }
  case NodeKind::AllocatedObject: {
    const auto *AO = cast<AllocatedObjectNode>(N);
    return Dest.create<AllocatedObjectNode>(AO->commit(), AO->objectIndex());
  }
  case NodeKind::FrameState: {
    const auto *FS = cast<FrameStateNode>(N);
    // Base layout only; virtual mappings are re-added in pass 2.
    return Dest.create<FrameStateNode>(FS->method(), FS->bci(),
                                       FS->isReexecute(), FS->numLocals(),
                                       FS->numStack(), FS->numLocks());
  }
  case NodeKind::Start:
    // The entry marker of the spliced region.
    return Dest.create<BeginNode>();
  case NodeKind::Begin:
    return Dest.create<BeginNode>();
  case NodeKind::End:
    return Dest.create<EndNode>();
  case NodeKind::LoopEnd:
    return Dest.create<LoopEndNode>(cast<LoopEndNode>(N)->loopBegin());
  case NodeKind::Return:
    return Dest.create<ReturnNode>(cast<ReturnNode>(N)->hasValue()
                                       ? cast<ReturnNode>(N)->value()
                                       : nullptr);
  case NodeKind::Deoptimize: {
    const auto *D = cast<DeoptimizeNode>(N);
    return Dest.create<DeoptimizeNode>(D->reason(), D->state(),
                                       D->speculationId());
  }
  case NodeKind::Guard: {
    const auto *Gd = cast<GuardNode>(N);
    return Dest.create<GuardNode>(Gd->reason(), Gd->condition(), Gd->state(),
                                  Gd->speculationId());
  }
  case NodeKind::Unreachable:
    return Dest.create<UnreachableNode>();
  case NodeKind::If: {
    const auto *If = cast<IfNode>(N);
    auto *Clone = Dest.create<IfNode>(If->condition());
    Clone->setTrueProbability(If->trueProbability());
    return Clone;
  }
  case NodeKind::LoopExit:
    return Dest.create<LoopExitNode>(cast<LoopExitNode>(N)->loopBegin());
  case NodeKind::Merge:
    return Dest.create<MergeNode>();
  case NodeKind::LoopBegin:
    return Dest.create<LoopBeginNode>();
  case NodeKind::NewInstance: {
    const auto *NI = cast<NewInstanceNode>(N);
    return Dest.create<NewInstanceNode>(NI->instanceClass(),
                                        NI->numFields());
  }
  case NodeKind::NewArray: {
    const auto *NA = cast<NewArrayNode>(N);
    return Dest.create<NewArrayNode>(NA->elementType(), NA->length());
  }
  case NodeKind::LoadField: {
    const auto *L = cast<LoadFieldNode>(N);
    return Dest.create<LoadFieldNode>(L->fieldClass(), L->field(), L->type(),
                                      L->object());
  }
  case NodeKind::StoreField: {
    const auto *S = cast<StoreFieldNode>(N);
    return Dest.create<StoreFieldNode>(S->fieldClass(), S->field(),
                                       S->object(), S->value(), S->state());
  }
  case NodeKind::LoadIndexed: {
    const auto *L = cast<LoadIndexedNode>(N);
    return Dest.create<LoadIndexedNode>(L->type(), L->array(), L->index());
  }
  case NodeKind::StoreIndexed: {
    const auto *S = cast<StoreIndexedNode>(N);
    return Dest.create<StoreIndexedNode>(S->array(), S->index(), S->value(),
                                         S->state());
  }
  case NodeKind::ArrayLength:
    return Dest.create<ArrayLengthNode>(cast<ArrayLengthNode>(N)->array());
  case NodeKind::LoadStatic: {
    const auto *L = cast<LoadStaticNode>(N);
    return Dest.create<LoadStaticNode>(L->index(), L->type());
  }
  case NodeKind::StoreStatic: {
    const auto *S = cast<StoreStaticNode>(N);
    return Dest.create<StoreStaticNode>(S->index(), S->value(), S->state());
  }
  case NodeKind::MonitorEnter: {
    const auto *ME = cast<MonitorEnterNode>(N);
    return Dest.create<MonitorEnterNode>(ME->object(), ME->state());
  }
  case NodeKind::MonitorExit: {
    const auto *ME = cast<MonitorExitNode>(N);
    return Dest.create<MonitorExitNode>(ME->object(), ME->state());
  }
  case NodeKind::Invoke: {
    const auto *Call = cast<InvokeNode>(N);
    std::vector<Node *> Args;
    for (unsigned I = 0, E = Call->numArgs(); I != E; ++I)
      Args.push_back(Call->argAt(I));
    return Dest.create<InvokeNode>(Call->callKind(), Call->callee(),
                                   Call->type(), Args, Call->state());
  }
  case NodeKind::Materialize:
    // Objects and entries are re-added in pass 2.
    return Dest.create<MaterializeNode>(cast<MaterializeNode>(N)->state());
  case NodeKind::ConstantInt:
  case NodeKind::ConstantNull:
  case NodeKind::Parameter:
    jvm_unreachable("constants and parameters are mapped, not cloned");
  }
  jvm_unreachable("unknown node kind in cloneShell");
}

} // namespace

std::map<const Node *, Node *>
jvm::cloneGraphInto(Graph &Dest, const Graph &Src,
                    const std::vector<Node *> &ArgsForParams) {
  std::map<const Node *, Node *> Map;

  // Pass 0: mapped-only nodes.
  for (unsigned Id = 0, E = Src.nodeIdBound(); Id != E; ++Id) {
    const Node *N = Src.nodeAt(Id);
    if (!N)
      continue;
    if (const auto *C = dyn_cast<ConstantIntNode>(N))
      Map[N] = Dest.intConstant(C->value());
    else if (isa<ConstantNullNode>(N))
      Map[N] = Dest.nullConstant();
    else if (const auto *Param = dyn_cast<ParameterNode>(N))
      Map[N] = ArgsForParams[Param->index()];
  }

  // Pass 1: shells for everything else.
  for (unsigned Id = 0, E = Src.nodeIdBound(); Id != E; ++Id) {
    const Node *N = Src.nodeAt(Id);
    if (!N || Map.count(N))
      continue;
    Map[N] = cloneShell(Dest, N);
  }

  auto MapOf = [&Map](const Node *N) -> Node * {
    if (!N)
      return nullptr;
    auto It = Map.find(N);
    assert(It != Map.end() && "unmapped node during cloning");
    return It->second;
  };

  // Pass 2: rewire data inputs. Shells of most kinds were constructed
  // with source-graph inputs in the right slots; phis, merges, frame
  // states and commits manage their own variable-length layouts and are
  // (re)filled here instead.
  for (const auto &[Old, New] : Map) {
    if (isa<ConstantIntNode, ConstantNullNode, ParameterNode>(Old))
      continue;
    if (const auto *Phi = dyn_cast<PhiNode>(Old)) {
      auto *NewPhi = cast<PhiNode>(New);
      NewPhi->setInput(0, MapOf(Phi->merge()));
      for (unsigned I = 0, E = Phi->numValues(); I != E; ++I)
        NewPhi->appendValue(MapOf(Phi->valueAt(I)));
      continue;
    }
    if (isa<MergeNode>(Old)) {
      for (unsigned I = 0, E = Old->numInputs(); I != E; ++I)
        New->appendInput(MapOf(Old->input(I)));
      continue;
    }
    if (const auto *FS = dyn_cast<FrameStateNode>(Old)) {
      auto *NewFS = cast<FrameStateNode>(New);
      unsigned Base = 1 + FS->numLocals() + FS->numStack() + FS->numLocks();
      for (unsigned I = 0; I != Base; ++I)
        NewFS->setInput(I, MapOf(FS->input(I)));
      for (unsigned MI = 0, ME = FS->numVirtualMappings(); MI != ME; ++MI) {
        const auto &VM = FS->virtualMapping(MI);
        std::vector<Node *> Entries;
        for (unsigned EI = 0; EI != VM.NumEntries; ++EI)
          Entries.push_back(MapOf(FS->mappedEntry(MI, EI)));
        NewFS->addVirtualMapping(
            cast<VirtualObjectNode>(MapOf(FS->mappedObject(MI))), Entries,
            VM.LockDepth);
      }
      continue;
    }
    if (const auto *Commit = dyn_cast<MaterializeNode>(Old)) {
      auto *NewCommit = cast<MaterializeNode>(New);
      NewCommit->setState(cast<FrameStateNode>(MapOf(Commit->state())));
      for (unsigned OI = 0, OE = Commit->numObjects(); OI != OE; ++OI) {
        auto *VO = cast<VirtualObjectNode>(MapOf(Commit->objectAt(OI)));
        std::vector<Node *> Entries;
        for (unsigned EI = 0; EI != VO->numEntries(); ++EI)
          Entries.push_back(MapOf(Commit->entryOf(OI, EI)));
        NewCommit->addObject(VO, Entries, Commit->lockDepthOf(OI));
      }
      continue;
    }
    for (unsigned I = 0, E = New->numInputs(); I != E; ++I)
      New->setInput(I, MapOf(Old->input(I)));
  }

  // Pass 3: control successors.
  for (const auto &[Old, New] : Map) {
    if (const auto *If = dyn_cast<IfNode>(Old)) {
      auto *NewIf = cast<IfNode>(New);
      NewIf->setTrueSuccessor(
          cast<FixedNode>(MapOf(If->trueSuccessor())));
      NewIf->setFalseSuccessor(
          cast<FixedNode>(MapOf(If->falseSuccessor())));
      continue;
    }
    if (const auto *FN = dyn_cast<FixedWithNextNode>(Old)) {
      if (FN->next())
        cast<FixedWithNextNode>(New)->setNext(
            cast<FixedNode>(MapOf(FN->next())));
    }
  }
  return Map;
}
