//===- Ids.h - Shared identifier types for the IR ----------------*- C++ -*-===//
///
/// \file
/// Plain identifier types used by the IR to reference entities owned by the
/// bytecode program model (classes, methods, fields, statics). The IR layer
/// treats them as opaque; only the graph builder, the optimizer phases and
/// the VM resolve them against a Program.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_IR_IDS_H
#define JVM_IR_IDS_H

#include <cstdint>

namespace jvm {

using ClassId = int32_t;
using MethodId = int32_t;
using FieldIndex = int32_t;
using StaticIndex = int32_t;

constexpr ClassId NoClass = -1;
constexpr MethodId NoMethod = -1;

/// The two runtime value kinds of our mini-Java: 64-bit integers and
/// object references. Void is used for methods without a result.
enum class ValueType : uint8_t { Void, Int, Ref };

/// Returns a printable name for \p Ty.
inline const char *valueTypeName(ValueType Ty) {
  switch (Ty) {
  case ValueType::Void:
    return "void";
  case ValueType::Int:
    return "int";
  case ValueType::Ref:
    return "ref";
  }
  return "?";
}

} // namespace jvm

#endif // JVM_IR_IDS_H
