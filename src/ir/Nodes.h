//===- Nodes.h - Concrete IR node classes -------------------------*- C++ -*-===//
///
/// \file
/// All concrete node classes of the IR. See Node.h for the edge model.
///
/// Input-slot layouts are documented per class. Frame states use the layout
/// described in FrameStateNode; effectful nodes keep their frame state in a
/// dedicated trailing input slot so that the single `Inputs`/`Usages`
/// mechanism covers all dependencies (including the deoptimization metadata
/// the paper's Section 5.5 rewrites).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_IR_NODES_H
#define JVM_IR_NODES_H

#include "ir/Node.h"

#include <string>

namespace jvm {

class MergeNode;
class LoopBeginNode;
class FrameStateNode;

//===----------------------------------------------------------------------===//
// Floating value nodes
//===----------------------------------------------------------------------===//

/// A compile-time 64-bit integer constant.
class ConstantIntNode : public Node {
public:
  explicit ConstantIntNode(int64_t Value)
      : Node(NodeKind::ConstantInt, ValueType::Int), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::ConstantInt;
  }

private:
  int64_t Value;
};

/// The null reference constant.
class ConstantNullNode : public Node {
public:
  ConstantNullNode() : Node(NodeKind::ConstantNull, ValueType::Ref) {}

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::ConstantNull;
  }
};

/// The value of the I-th incoming method parameter.
class ParameterNode : public Node {
public:
  ParameterNode(unsigned Index, ValueType Ty)
      : Node(NodeKind::Parameter, Ty), Index(Index) {}

  unsigned index() const { return Index; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Parameter;
  }

private:
  unsigned Index;
};

/// SSA phi. Input 0 is the associated merge; inputs 1..N correspond
/// positionally to the merge's predecessor End/LoopEnd inputs.
class PhiNode : public Node {
public:
  PhiNode(MergeNode *Merge, ValueType Ty);

  MergeNode *merge() const;

  unsigned numValues() const { return numInputs() - 1; }
  Node *valueAt(unsigned I) const { return input(I + 1); }
  void setValueAt(unsigned I, Node *V) { setInput(I + 1, V); }
  void appendValue(Node *V) { appendInput(V); }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Phi; }
};

/// Binary integer arithmetic. Inputs: [X, Y]. Division and remainder by
/// zero are defined to produce zero (our mini-Java has no exceptions).
enum class ArithKind : uint8_t { Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr };

const char *arithKindName(ArithKind K);

class ArithNode : public Node {
public:
  ArithNode(ArithKind Op, Node *X, Node *Y)
      : Node(NodeKind::Arith, ValueType::Int), Op(Op) {
    appendInput(X);
    appendInput(Y);
  }

  ArithKind op() const { return Op; }
  Node *x() const { return input(0); }
  Node *y() const { return input(1); }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Arith; }

private:
  ArithKind Op;
};

/// Comparison producing an Int 0/1. Inputs: [X, Y] for binary kinds,
/// [X] for IsNull. RefEq compares object identity.
enum class CmpKind : uint8_t { IntEq, IntLt, IntLe, RefEq, IsNull };

const char *cmpKindName(CmpKind K);

class CompareNode : public Node {
public:
  CompareNode(CmpKind Op, Node *X, Node *Y)
      : Node(NodeKind::Compare, ValueType::Int), Op(Op) {
    appendInput(X);
    if (Op != CmpKind::IsNull) {
      assert(Y && "binary compare needs two operands");
      appendInput(Y);
    } else {
      assert(!Y && "IsNull takes a single operand");
    }
  }

  CmpKind op() const { return Op; }
  Node *x() const { return input(0); }
  Node *y() const { return input(1); }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Compare; }

private:
  CmpKind Op;
};

/// Dynamic type test producing Int 0/1. Input: [Object]. With `isExact`,
/// tests for the precise class (used by devirtualization guards);
/// otherwise tests the subtype relation. Null is never an instance.
class InstanceOfNode : public Node {
public:
  InstanceOfNode(ClassId TestedClass, bool Exact, Node *Object)
      : Node(NodeKind::InstanceOf, ValueType::Int), TestedClass(TestedClass),
        Exact(Exact) {
    appendInput(Object);
  }

  ClassId testedClass() const { return TestedClass; }
  bool isExact() const { return Exact; }
  Node *object() const { return input(0); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::InstanceOf;
  }

private:
  ClassId TestedClass;
  bool Exact;
};

/// The identity of one allocation tracked by (partial) escape analysis —
/// the paper's `Id` objects (Listing 7). Created by the analysis; appears
/// as an input of frame states (Section 5.5) and of Materialize nodes.
///
/// For object allocations, entries correspond to instance fields in
/// declaration order; for array allocations, to the elements of a
/// compile-time-constant-length array.
class VirtualObjectNode : public Node {
public:
  /// Creates a virtual instance of class \p Cls with \p NumFields fields.
  static VirtualObjectNode forInstance(ClassId Cls, unsigned NumFields) {
    return VirtualObjectNode(Cls, false, ValueType::Void, NumFields);
  }

  VirtualObjectNode(ClassId Cls, bool IsArray, ValueType ElemTy,
                    unsigned NumEntries)
      : Node(NodeKind::VirtualObject, ValueType::Ref), Cls(Cls),
        IsArray(IsArray), ElemTy(ElemTy), NumEntries(NumEntries) {}

  ClassId objectClass() const { return Cls; }
  bool isArray() const { return IsArray; }
  ValueType elementType() const { return ElemTy; }
  unsigned numEntries() const { return NumEntries; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::VirtualObject;
  }

private:
  ClassId Cls;
  bool IsArray;
  ValueType ElemTy;
  unsigned NumEntries;
};

/// Deoptimization metadata: maps a point in optimized code back to
/// interpreter state (method, bci, locals, expression stack, held locks).
///
/// Input layout:
///   [0]                      outer frame state or null
///   [1 .. NumLocals]         local variable values (null = dead slot)
///   [.. + NumStack]          expression stack values
///   [.. + NumLocks]          locked objects, innermost last
///   [.. + mappings]          virtual object mappings appended by escape
///                            analysis: for each mapping, the
///                            VirtualObjectNode followed by its entries.
///
/// `isReexecute()` distinguishes the two resume semantics: re-execute the
/// instruction at bci (states attached to Deoptimize sinks), or continue
/// after it with the callee result (outer states at call sites).
class FrameStateNode : public Node {
public:
  FrameStateNode(MethodId Method, int Bci, bool Reexecute, unsigned NumLocals,
                 unsigned NumStack, unsigned NumLocks)
      : Node(NodeKind::FrameState, ValueType::Void), Method(Method), Bci(Bci),
        Reexecute(Reexecute), NumLocals(NumLocals), NumStack(NumStack),
        NumLocks(NumLocks) {
    for (unsigned I = 0, E = 1 + NumLocals + NumStack + NumLocks; I != E; ++I)
      appendInput(nullptr);
  }

  MethodId method() const { return Method; }
  int bci() const { return Bci; }
  bool isReexecute() const { return Reexecute; }

  FrameStateNode *outer() const;
  void setOuter(FrameStateNode *Outer);

  unsigned numLocals() const { return NumLocals; }
  unsigned numStack() const { return NumStack; }
  unsigned numLocks() const { return NumLocks; }

  Node *localAt(unsigned I) const { return input(1 + I); }
  void setLocalAt(unsigned I, Node *V) { setInput(1 + I, V); }
  Node *stackAt(unsigned I) const { return input(1 + NumLocals + I); }
  void setStackAt(unsigned I, Node *V) { setInput(1 + NumLocals + I, V); }
  Node *lockAt(unsigned I) const { return input(1 + NumLocals + NumStack + I); }
  void setLockAt(unsigned I, Node *V) {
    setInput(1 + NumLocals + NumStack + I, V);
  }

  /// One scalar-replaced allocation recorded in this frame state. Entries
  /// are stored as inputs starting at InputOffset: the VirtualObjectNode
  /// itself, then NumEntries field/element values.
  struct VirtualMapping {
    unsigned InputOffset;
    unsigned NumEntries;
    int LockDepth;
  };

  unsigned numVirtualMappings() const { return Mappings.size(); }
  const VirtualMapping &virtualMapping(unsigned I) const {
    return Mappings[I];
  }

  VirtualObjectNode *mappedObject(unsigned I) const;
  Node *mappedEntry(unsigned MappingIndex, unsigned EntryIndex) const {
    const VirtualMapping &M = Mappings[MappingIndex];
    assert(EntryIndex < M.NumEntries && "entry index out of range");
    return input(M.InputOffset + 1 + EntryIndex);
  }

  /// Records that \p Object is scalar-replaced at this point, with the
  /// given field/element values and elided lock depth.
  void addVirtualMapping(VirtualObjectNode *Object,
                         const std::vector<Node *> &Entries, int LockDepth);

  /// Returns the mapping index for \p Object, or -1 if absent.
  int findVirtualMapping(const VirtualObjectNode *Object) const;

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::FrameState;
  }

private:
  MethodId Method;
  int Bci;
  bool Reexecute;
  unsigned NumLocals;
  unsigned NumStack;
  unsigned NumLocks;
  std::vector<VirtualMapping> Mappings;
};

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

/// The unique entry of a graph.
class StartNode : public FixedWithNextNode {
public:
  StartNode() : FixedWithNextNode(NodeKind::Start, ValueType::Void) {}

  static bool classof(const Node *N) { return N->kind() == NodeKind::Start; }
};

/// Marks the begin of a block after a control split.
class BeginNode : public FixedWithNextNode {
public:
  BeginNode() : FixedWithNextNode(NodeKind::Begin, ValueType::Void) {}

  static bool classof(const Node *N) { return N->kind() == NodeKind::Begin; }
};

/// Two-way control split. Input: [Condition] (Int; nonzero = true).
/// Successors: trueSuccessor / falseSuccessor.
class IfNode : public FixedNode {
public:
  explicit IfNode(Node *Condition)
      : FixedNode(NodeKind::If, ValueType::Void) {
    appendInput(Condition);
  }

  Node *condition() const { return input(0); }
  void setCondition(Node *C) { setInput(0, C); }

  FixedNode *trueSuccessor() const { return TrueSucc; }
  FixedNode *falseSuccessor() const { return FalseSucc; }

  void setTrueSuccessor(FixedNode *N) {
    if (TrueSucc)
      TrueSucc->setPred(nullptr);
    TrueSucc = N;
    if (N)
      N->setPred(this);
  }

  void setFalseSuccessor(FixedNode *N) {
    if (FalseSucc)
      FalseSucc->setPred(nullptr);
    FalseSucc = N;
    if (N)
      N->setPred(this);
  }

  /// Estimated probability that the true successor is taken (from
  /// interpreter profiles; 0.5 when unknown).
  double trueProbability() const { return TrueProb; }
  void setTrueProbability(double P) { TrueProb = P; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::If; }

private:
  FixedNode *TrueSucc = nullptr;
  FixedNode *FalseSucc = nullptr;
  double TrueProb = 0.5;
};

/// Jump to a merge. The merge lists its Ends as inputs; the End's
/// position in that list defines the phi operand index.
class EndNode : public FixedNode {
public:
  EndNode() : FixedNode(NodeKind::End, ValueType::Void) {}

  /// The merge this end jumps to (its single usage).
  MergeNode *merge() const;

  static bool classof(const Node *N) { return N->kind() == NodeKind::End; }
};

/// Back-edge jump to a loop header. Input: [LoopBegin].
class LoopEndNode : public FixedNode {
public:
  explicit LoopEndNode(LoopBeginNode *Loop);

  LoopBeginNode *loopBegin() const;

  static bool classof(const Node *N) { return N->kind() == NodeKind::LoopEnd; }
};

/// Join point of several forward control-flow paths. Inputs: the
/// predecessor End nodes in phi-operand order.
class MergeNode : public FixedWithNextNode {
public:
  MergeNode() : FixedWithNextNode(NodeKind::Merge, ValueType::Void) {}

  unsigned numEnds() const { return numInputs(); }
  FixedNode *endAt(unsigned I) const {
    return static_cast<FixedNode *>(input(I));
  }

  void addEnd(EndNode *End) { appendInput(End); }

  /// Returns the phi operand index of \p End, or -1 if it is not an end
  /// of this merge.
  int indexOfEnd(const FixedNode *End) const;

  /// Collects all phis attached to this merge (usages of kind Phi whose
  /// merge input is this node).
  std::vector<PhiNode *> phis() const;

  /// Non-allocating variant: clears \p Out and fills it with the phis of
  /// this merge. Lets hot callers reuse one scratch vector.
  void phis(std::vector<PhiNode *> &Out) const;

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Merge || N->kind() == NodeKind::LoopBegin;
  }

protected:
  MergeNode(NodeKind K) : FixedWithNextNode(K, ValueType::Void) {}
};

/// Loop header. Input 0 is the forward entry End; inputs 1..N are the
/// LoopEnd back edges. Phi operand order follows the input order.
class LoopBeginNode : public MergeNode {
public:
  LoopBeginNode() : MergeNode(NodeKind::LoopBegin) {}

  EndNode *forwardEnd() const;
  unsigned numBackEdges() const { return numInputs() - 1; }
  LoopEndNode *backEdgeAt(unsigned I) const;

  void addBackEdge(LoopEndNode *End) { appendInput(End); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::LoopBegin;
  }
};

/// Marks control flow leaving a loop. Input: [LoopBegin].
class LoopExitNode : public FixedWithNextNode {
public:
  explicit LoopExitNode(LoopBeginNode *Loop)
      : FixedWithNextNode(NodeKind::LoopExit, ValueType::Void) {
    appendInput(Loop);
  }

  LoopBeginNode *loopBegin() const {
    return static_cast<LoopBeginNode *>(input(0));
  }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::LoopExit;
  }
};

/// Method return. Inputs: [Value] for non-void methods, none otherwise.
class ReturnNode : public FixedNode {
public:
  explicit ReturnNode(Node *Value)
      : FixedNode(NodeKind::Return, ValueType::Void) {
    if (Value)
      appendInput(Value);
  }

  bool hasValue() const { return numInputs() == 1; }
  Node *value() const { return input(0); }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Return; }
};

/// Why a Deoptimize sink was inserted.
enum class DeoptReason : uint8_t {
  BranchNeverTaken, ///< Profile-pruned branch was reached after all.
  TypeGuardFailed,  ///< Speculatively devirtualized receiver had another type.
  ValueGuardFailed, ///< Speculated constant value was different after all.
};

const char *deoptReasonName(DeoptReason R);

/// Marks a Deoptimize/Guard that was not planted by the speculation
/// planner (builder-inserted branch pruning and devirtualization guards).
/// Planner speculations carry their index into the method's SpeshPlan so
/// guard failures can be attributed and blocklisted.
constexpr uint32_t NoSpeculationId = ~0u;

/// Control sink transferring execution back to the interpreter using the
/// attached frame state. Inputs: [FrameState].
class DeoptimizeNode : public FixedNode {
public:
  DeoptimizeNode(DeoptReason Reason, FrameStateNode *State,
                 uint32_t SpeculationId = NoSpeculationId)
      : FixedNode(NodeKind::Deoptimize, ValueType::Void), Reason(Reason),
        SpecId(SpeculationId) {
    appendInput(State);
  }

  DeoptReason reason() const { return Reason; }
  /// Index into the method's speculation plan, or NoSpeculationId.
  uint32_t speculationId() const { return SpecId; }
  FrameStateNode *state() const {
    return static_cast<FrameStateNode *>(input(0));
  }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Deoptimize;
  }

private:
  DeoptReason Reason;
  uint32_t SpecId;
};

/// Control sink for paths that must never execute (verifier-provable dead
/// code). Reaching it at runtime is a VM bug.
class UnreachableNode : public FixedNode {
public:
  UnreachableNode() : FixedNode(NodeKind::Unreachable, ValueType::Void) {}

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Unreachable;
  }
};

//===----------------------------------------------------------------------===//
// Effectful fixed nodes
//===----------------------------------------------------------------------===//

/// Mixin-style base for fixed nodes that carry a frame state in their last
/// input slot ("state after" in the paper's terminology).
class StatefulNode : public FixedWithNextNode {
public:
  FrameStateNode *state() const {
    Node *S = input(numInputs() - 1);
    return static_cast<FrameStateNode *>(S);
  }
  void setState(FrameStateNode *S);

  static bool classof(const Node *N) {
    switch (N->kind()) {
    case NodeKind::StoreField:
    case NodeKind::StoreIndexed:
    case NodeKind::StoreStatic:
    case NodeKind::MonitorEnter:
    case NodeKind::MonitorExit:
    case NodeKind::Invoke:
    case NodeKind::Materialize:
    case NodeKind::Guard:
      return true;
    default:
      return false;
    }
  }

protected:
  StatefulNode(NodeKind K, ValueType Ty) : FixedWithNextNode(K, Ty) {}
};

/// Heap allocation of a class instance; fields start out zero/null.
/// Allocation is re-executable and therefore carries no frame state.
class NewInstanceNode : public FixedWithNextNode {
public:
  NewInstanceNode(ClassId Cls, unsigned NumFields)
      : FixedWithNextNode(NodeKind::NewInstance, ValueType::Ref), Cls(Cls),
        NumFields(NumFields) {}

  ClassId instanceClass() const { return Cls; }
  unsigned numFields() const { return NumFields; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::NewInstance;
  }

private:
  ClassId Cls;
  unsigned NumFields;
};

/// Heap allocation of an array. Inputs: [Length].
class NewArrayNode : public FixedWithNextNode {
public:
  NewArrayNode(ValueType ElemTy, Node *Length)
      : FixedWithNextNode(NodeKind::NewArray, ValueType::Ref), ElemTy(ElemTy) {
    appendInput(Length);
  }

  ValueType elementType() const { return ElemTy; }
  Node *length() const { return input(0); }

  static bool classof(const Node *N) { return N->kind() == NodeKind::NewArray; }

private:
  ValueType ElemTy;
};

/// Field read. Inputs: [Object].
class LoadFieldNode : public FixedWithNextNode {
public:
  LoadFieldNode(ClassId Cls, FieldIndex Field, ValueType Ty, Node *Object)
      : FixedWithNextNode(NodeKind::LoadField, Ty), Cls(Cls), Field(Field) {
    appendInput(Object);
  }

  ClassId fieldClass() const { return Cls; }
  FieldIndex field() const { return Field; }
  Node *object() const { return input(0); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::LoadField;
  }

private:
  ClassId Cls;
  FieldIndex Field;
};

/// Field write (side effect). Inputs: [Object, Value, FrameState].
class StoreFieldNode : public StatefulNode {
public:
  StoreFieldNode(ClassId Cls, FieldIndex Field, Node *Object, Node *Value,
                 FrameStateNode *State)
      : StatefulNode(NodeKind::StoreField, ValueType::Void), Cls(Cls),
        Field(Field) {
    appendInput(Object);
    appendInput(Value);
    appendInput(State);
  }

  ClassId fieldClass() const { return Cls; }
  FieldIndex field() const { return Field; }
  Node *object() const { return input(0); }
  Node *value() const { return input(1); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::StoreField;
  }

private:
  ClassId Cls;
  FieldIndex Field;
};

/// Array element read. Inputs: [Array, Index]. Out-of-bounds access is a
/// VM trap (no exception model).
class LoadIndexedNode : public FixedWithNextNode {
public:
  LoadIndexedNode(ValueType ElemTy, Node *Array, Node *Index)
      : FixedWithNextNode(NodeKind::LoadIndexed, ElemTy) {
    appendInput(Array);
    appendInput(Index);
  }

  Node *array() const { return input(0); }
  Node *index() const { return input(1); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::LoadIndexed;
  }
};

/// Array element write (side effect). Inputs: [Array, Index, Value, State].
class StoreIndexedNode : public StatefulNode {
public:
  StoreIndexedNode(Node *Array, Node *Index, Node *Value,
                   FrameStateNode *State)
      : StatefulNode(NodeKind::StoreIndexed, ValueType::Void) {
    appendInput(Array);
    appendInput(Index);
    appendInput(Value);
    appendInput(State);
  }

  Node *array() const { return input(0); }
  Node *index() const { return input(1); }
  Node *value() const { return input(2); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::StoreIndexed;
  }
};

/// Array length read. Inputs: [Array].
class ArrayLengthNode : public FixedWithNextNode {
public:
  explicit ArrayLengthNode(Node *Array)
      : FixedWithNextNode(NodeKind::ArrayLength, ValueType::Int) {
    appendInput(Array);
  }

  Node *array() const { return input(0); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::ArrayLength;
  }
};

/// Static (global) variable read. Kept fixed for ordering against writes.
class LoadStaticNode : public FixedWithNextNode {
public:
  LoadStaticNode(StaticIndex Index, ValueType Ty)
      : FixedWithNextNode(NodeKind::LoadStatic, Ty), Index(Index) {}

  StaticIndex index() const { return Index; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::LoadStatic;
  }

private:
  StaticIndex Index;
};

/// Static variable write (side effect). Inputs: [Value, State].
class StoreStaticNode : public StatefulNode {
public:
  StoreStaticNode(StaticIndex Index, Node *Value, FrameStateNode *State)
      : StatefulNode(NodeKind::StoreStatic, ValueType::Void), Index(Index) {
    appendInput(Value);
    appendInput(State);
  }

  StaticIndex index() const { return Index; }
  Node *value() const { return input(0); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::StoreStatic;
  }

private:
  StaticIndex Index;
};

/// Monitor acquisition (side effect). Inputs: [Object, State].
class MonitorEnterNode : public StatefulNode {
public:
  MonitorEnterNode(Node *Object, FrameStateNode *State)
      : StatefulNode(NodeKind::MonitorEnter, ValueType::Void) {
    appendInput(Object);
    appendInput(State);
  }

  Node *object() const { return input(0); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MonitorEnter;
  }
};

/// Monitor release (side effect). Inputs: [Object, State].
class MonitorExitNode : public StatefulNode {
public:
  MonitorExitNode(Node *Object, FrameStateNode *State)
      : StatefulNode(NodeKind::MonitorExit, ValueType::Void) {
    appendInput(Object);
    appendInput(State);
  }

  Node *object() const { return input(0); }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MonitorExit;
  }
};

/// How an Invoke dispatches.
enum class CallKind : uint8_t {
  Static, ///< Direct call to `callee()`.
  Virtual ///< Dispatch on the receiver's dynamic class at runtime.
};

/// Method call (side effect). Inputs: [Args..., State]. For instance
/// calls the receiver is argument 0.
class InvokeNode : public StatefulNode {
public:
  InvokeNode(CallKind Kind, MethodId Callee, ValueType RetTy,
             const std::vector<Node *> &Args, FrameStateNode *State)
      : StatefulNode(NodeKind::Invoke, RetTy), Kind(Kind), Callee(Callee) {
    for (Node *A : Args)
      appendInput(A);
    appendInput(State);
  }

  CallKind callKind() const { return Kind; }
  void setCallKind(CallKind K) { Kind = K; }
  MethodId callee() const { return Callee; }
  void setCallee(MethodId M) { Callee = M; }

  unsigned numArgs() const { return numInputs() - 1; }
  Node *argAt(unsigned I) const {
    assert(I < numArgs() && "argument index out of range");
    return input(I);
  }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Invoke; }

private:
  CallKind Kind;
  MethodId Callee;
};

/// Commits a group of virtual objects to the heap at one control-flow
/// point (Graal's CommitAllocationNode). Inserted by partial escape
/// analysis where an object must exist ("materialization", Section 4).
///
/// Input layout:
///   [0 .. NumObjects-1]   the VirtualObjectNodes being committed
///   [...]                 the concatenated entry values of each object;
///                         an entry may reference a VirtualObjectNode of
///                         the same commit (cyclic structures)
///   [last]                frame state
///
/// Per-object lock depths record how many elided monitor acquisitions
/// must be performed on the fresh object.
class MaterializeNode : public StatefulNode {
public:
  explicit MaterializeNode(FrameStateNode *State)
      : StatefulNode(NodeKind::Materialize, ValueType::Void) {
    appendInput(State);
  }

  unsigned numObjects() const { return LockDepths.size(); }

  VirtualObjectNode *objectAt(unsigned I) const;
  Node *entryOf(unsigned ObjectIndex, unsigned EntryIndex) const;
  void setEntryOf(unsigned ObjectIndex, unsigned EntryIndex, Node *V);
  int lockDepthOf(unsigned I) const { return LockDepths[I]; }

  /// Adds \p Object with the given entries; returns its object index.
  /// Must be called before the node is otherwise mutated; all objects of
  /// a commit are added up front by the analysis.
  unsigned addObject(VirtualObjectNode *Object,
                     const std::vector<Node *> &Entries, int LockDepth);

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Materialize;
  }

private:
  unsigned entryBase(unsigned ObjectIndex) const;

  std::vector<int> LockDepths;
  std::vector<unsigned> EntryCounts;
};

/// Speculation guard: deoptimizes to the interpreter when Condition
/// evaluates to zero. Inputs: [Condition, FrameState]; the frame state is
/// a Reexecute state at the guarded bytecode, so a failing guard re-runs
/// the instruction unspeculated. Guards are planted by the spesh planner
/// (and the graph builder, for plan-driven specializations) before escape
/// analysis; LowerGuardsPhase expands each one to If/Begin/Deoptimize
/// after PEA, so schedulers, executors and backends never see one.
class GuardNode : public StatefulNode {
public:
  GuardNode(DeoptReason Reason, Node *Condition, FrameStateNode *State,
            uint32_t SpeculationId = NoSpeculationId)
      : StatefulNode(NodeKind::Guard, ValueType::Void), Reason(Reason),
        SpecId(SpeculationId) {
    appendInput(Condition);
    appendInput(State);
  }

  Node *condition() const { return input(0); }
  DeoptReason reason() const { return Reason; }
  /// Index into the method's speculation plan, or NoSpeculationId.
  uint32_t speculationId() const { return SpecId; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Guard; }

private:
  DeoptReason Reason;
  uint32_t SpecId;
};

/// The runtime object produced for one virtual object by a Materialize
/// node (Graal's AllocatedObjectNode). Inputs: [Commit]. The projected
/// object is identified by its index within the commit.
class AllocatedObjectNode : public Node {
public:
  AllocatedObjectNode(MaterializeNode *Commit, unsigned ObjectIndex)
      : Node(NodeKind::AllocatedObject, ValueType::Ref),
        ObjectIndex(ObjectIndex) {
    appendInput(Commit);
  }

  MaterializeNode *commit() const {
    return static_cast<MaterializeNode *>(input(0));
  }
  unsigned objectIndex() const { return ObjectIndex; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::AllocatedObject;
  }

private:
  unsigned ObjectIndex;
};

} // namespace jvm

#endif // JVM_IR_NODES_H
