//===- Nodes.cpp - Concrete node implementations ---------------------------===//

#include "ir/Nodes.h"

#include "support/Casting.h"
#include "support/ErrorHandling.h"

using namespace jvm;

const char *jvm::arithKindName(ArithKind K) {
  switch (K) {
  case ArithKind::Add:
    return "+";
  case ArithKind::Sub:
    return "-";
  case ArithKind::Mul:
    return "*";
  case ArithKind::Div:
    return "/";
  case ArithKind::Rem:
    return "%";
  case ArithKind::And:
    return "&";
  case ArithKind::Or:
    return "|";
  case ArithKind::Xor:
    return "^";
  case ArithKind::Shl:
    return "<<";
  case ArithKind::Shr:
    return ">>";
  }
  jvm_unreachable("unknown arithmetic kind");
}

const char *jvm::cmpKindName(CmpKind K) {
  switch (K) {
  case CmpKind::IntEq:
    return "==";
  case CmpKind::IntLt:
    return "<";
  case CmpKind::IntLe:
    return "<=";
  case CmpKind::RefEq:
    return "ref==";
  case CmpKind::IsNull:
    return "isnull";
  }
  jvm_unreachable("unknown compare kind");
}

const char *jvm::deoptReasonName(DeoptReason R) {
  switch (R) {
  case DeoptReason::BranchNeverTaken:
    return "branch-never-taken";
  case DeoptReason::TypeGuardFailed:
    return "type-guard-failed";
  case DeoptReason::ValueGuardFailed:
    return "value-guard-failed";
  }
  jvm_unreachable("unknown deopt reason");
}

//===----------------------------------------------------------------------===//
// PhiNode
//===----------------------------------------------------------------------===//

PhiNode::PhiNode(MergeNode *Merge, ValueType Ty) : Node(NodeKind::Phi, Ty) {
  appendInput(Merge);
}

MergeNode *PhiNode::merge() const { return cast<MergeNode>(input(0)); }

//===----------------------------------------------------------------------===//
// FrameStateNode
//===----------------------------------------------------------------------===//

FrameStateNode *FrameStateNode::outer() const {
  return static_cast<FrameStateNode *>(input(0));
}

void FrameStateNode::setOuter(FrameStateNode *Outer) { setInput(0, Outer); }

VirtualObjectNode *FrameStateNode::mappedObject(unsigned I) const {
  return cast<VirtualObjectNode>(input(Mappings[I].InputOffset));
}

void FrameStateNode::addVirtualMapping(VirtualObjectNode *Object,
                                       const std::vector<Node *> &Entries,
                                       int LockDepth) {
  assert(findVirtualMapping(Object) < 0 && "object already mapped");
  assert(Entries.size() == Object->numEntries() &&
         "entry count does not match the virtual object");
  VirtualMapping M;
  M.InputOffset = numInputs();
  M.NumEntries = Entries.size();
  M.LockDepth = LockDepth;
  appendInput(Object);
  for (Node *E : Entries)
    appendInput(E);
  Mappings.push_back(M);
}

int FrameStateNode::findVirtualMapping(const VirtualObjectNode *Object) const {
  for (unsigned I = 0, E = Mappings.size(); I != E; ++I)
    if (input(Mappings[I].InputOffset) == Object)
      return static_cast<int>(I);
  return -1;
}

//===----------------------------------------------------------------------===//
// Merge / loop structure
//===----------------------------------------------------------------------===//

MergeNode *EndNode::merge() const {
  for (Node *U : usages())
    if (auto *M = dyn_cast<MergeNode>(U))
      return M;
  return nullptr;
}

int MergeNode::indexOfEnd(const FixedNode *End) const {
  for (unsigned I = 0, E = numInputs(); I != E; ++I)
    if (input(I) == End)
      return static_cast<int>(I);
  return -1;
}

std::vector<PhiNode *> MergeNode::phis() const {
  std::vector<PhiNode *> Result;
  phis(Result);
  return Result;
}

void MergeNode::phis(std::vector<PhiNode *> &Out) const {
  Out.clear();
  for (Node *U : usages())
    if (auto *Phi = dyn_cast<PhiNode>(U))
      if (Phi->input(0) == this) {
        // A phi lists its merge exactly once; guard against the usage
        // list containing this merge multiple times for other reasons.
        bool Seen = false;
        for (PhiNode *Existing : Out)
          Seen |= Existing == Phi;
        if (!Seen)
          Out.push_back(Phi);
      }
}

LoopEndNode::LoopEndNode(LoopBeginNode *Loop)
    : FixedNode(NodeKind::LoopEnd, ValueType::Void) {
  appendInput(Loop);
}

LoopBeginNode *LoopEndNode::loopBegin() const {
  return cast<LoopBeginNode>(input(0));
}

EndNode *LoopBeginNode::forwardEnd() const { return cast<EndNode>(input(0)); }

LoopEndNode *LoopBeginNode::backEdgeAt(unsigned I) const {
  return cast<LoopEndNode>(input(1 + I));
}

//===----------------------------------------------------------------------===//
// StatefulNode
//===----------------------------------------------------------------------===//

void StatefulNode::setState(FrameStateNode *S) {
  setInput(numInputs() - 1, S);
}

//===----------------------------------------------------------------------===//
// MaterializeNode
//===----------------------------------------------------------------------===//

unsigned MaterializeNode::entryBase(unsigned ObjectIndex) const {
  assert(ObjectIndex < numObjects() && "object index out of range");
  unsigned Base = numObjects();
  for (unsigned I = 0; I != ObjectIndex; ++I)
    Base += EntryCounts[I];
  return Base;
}

VirtualObjectNode *MaterializeNode::objectAt(unsigned I) const {
  assert(I < numObjects() && "object index out of range");
  return cast<VirtualObjectNode>(input(I));
}

Node *MaterializeNode::entryOf(unsigned ObjectIndex,
                               unsigned EntryIndex) const {
  assert(EntryIndex < EntryCounts[ObjectIndex] && "entry index out of range");
  return input(entryBase(ObjectIndex) + EntryIndex);
}

void MaterializeNode::setEntryOf(unsigned ObjectIndex, unsigned EntryIndex,
                                 Node *V) {
  assert(EntryIndex < EntryCounts[ObjectIndex] && "entry index out of range");
  setInput(entryBase(ObjectIndex) + EntryIndex, V);
}

unsigned MaterializeNode::addObject(VirtualObjectNode *Object,
                                    const std::vector<Node *> &Entries,
                                    int LockDepth) {
  assert(Entries.size() == Object->numEntries() &&
         "entry count does not match the virtual object");
  // Input layout is [objects..., entries..., state]; splice the new
  // object in front of the first entry and the entries before the state.
  unsigned Index = numObjects();
  unsigned StateSlot = numInputs() - 1;
  FrameStateNode *State = static_cast<FrameStateNode *>(input(StateSlot));
  // Rebuild: simplest correct approach given the interleaved layout.
  std::vector<Node *> Objects;
  std::vector<Node *> AllEntries;
  unsigned Slot = 0;
  for (unsigned I = 0; I != Index; ++I)
    Objects.push_back(input(Slot++));
  for (unsigned I = 0; I != Index; ++I)
    for (unsigned E = 0; E != EntryCounts[I]; ++E)
      AllEntries.push_back(input(Slot++));
  assert(Slot == StateSlot && "unexpected materialize input layout");
  Objects.push_back(Object);
  for (Node *E : Entries)
    AllEntries.push_back(E);
  while (numInputs() > 0)
    removeInput(numInputs() - 1);
  for (Node *O : Objects)
    appendInput(O);
  for (Node *E : AllEntries)
    appendInput(E);
  appendInput(State);
  LockDepths.push_back(LockDepth);
  EntryCounts.push_back(Entries.size());
  return Index;
}
