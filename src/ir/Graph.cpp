//===- Graph.cpp - IR graph container and structural utilities ------------===//

#include "ir/Graph.h"

#include "support/Casting.h"
#include "support/Debug.h"
#include "support/ErrorHandling.h"

#include <set>

using namespace jvm;

Graph::Graph(MethodId Method, std::vector<ValueType> ParamTypes)
    : Method(Method), ParamTypes(std::move(ParamTypes)) {
  Start = create<StartNode>();
  for (unsigned I = 0, E = this->ParamTypes.size(); I != E; ++I)
    Params.push_back(create<ParameterNode>(I, this->ParamTypes[I]));
}

void Graph::registerNode(std::unique_ptr<Node> Owned) {
  Node *N = Owned.get();
  N->Id = Nodes.size();
  N->Parent = this;
  Nodes.push_back(std::move(Owned));
  ++LiveNodes;
}

ConstantIntNode *Graph::intConstant(int64_t Value) {
  ConstantIntNode *&Slot = IntConstants[Value];
  if (!Slot)
    Slot = create<ConstantIntNode>(Value);
  return Slot;
}

ConstantNullNode *Graph::nullConstant() {
  if (!NullConstant)
    NullConstant = create<ConstantNullNode>();
  return NullConstant;
}

void Graph::deleteNode(Node *N) {
  assert(!N->isDeleted() && "node deleted twice");
  assert(!N->hasUsages() && "deleting a node that still has usages");
  if (auto *F = dyn_cast<FixedNode>(N))
    assert(!F->predecessor() && "deleting a fixed node still in control flow");
  if (auto *FN = dyn_cast<FixedWithNextNode>(N))
    assert(!FN->next() && "deleting a fixed node with a successor");
  if (auto *If = dyn_cast<IfNode>(N)) {
    assert(!If->trueSuccessor() && !If->falseSuccessor() &&
           "deleting an If with successors");
    (void)If;
  }
  // Unique-constant cache entries must not dangle.
  if (auto *CI = dyn_cast<ConstantIntNode>(N)) {
    auto It = IntConstants.find(CI->value());
    if (It != IntConstants.end() && It->second == CI)
      IntConstants.erase(It);
  }
  if (N == NullConstant)
    NullConstant = nullptr;
  N->clearInputs();
  N->Deleted = true;
  assert(LiveNodes > 0 && "live node count out of sync");
  --LiveNodes;
}

void Graph::unlinkFixed(FixedWithNextNode *N) {
  FixedNode *Succ = N->next();
  FixedNode *Pred = N->predecessor();
  assert(Pred && "unlinking a node without predecessor");
  N->setNext(nullptr);
  if (auto *PN = dyn_cast<FixedWithNextNode>(Pred)) {
    PN->setNext(Succ);
  } else if (auto *If = dyn_cast<IfNode>(Pred)) {
    // Only Begin nodes follow an If by construction, but be permissive:
    // re-route whichever successor pointed here.
    if (If->trueSuccessor() == N)
      If->setTrueSuccessor(Succ);
    else
      If->setFalseSuccessor(Succ);
  } else {
    jvm_unreachable("unexpected predecessor kind while unlinking");
  }
}

void Graph::removeFixed(FixedWithNextNode *N) {
  unlinkFixed(N);
  deleteNode(N);
}

void Graph::insertBefore(FixedWithNextNode *NewNode, FixedNode *Point) {
  auto *Pred = cast<FixedWithNextNode>(Point->predecessor());
  Pred->setNext(nullptr);
  NewNode->setNext(Point);
  Pred->setNext(NewNode);
}

void Graph::collapseSingleEndMerge(MergeNode *Merge) {
  assert(Merge->numEnds() == 1 && "merge is not degenerate");
  assert(!isa<LoopBeginNode>(Merge) && "use the loop collapse path");
  auto *End = cast<EndNode>(Merge->endAt(0));
  for (PhiNode *Phi : Merge->phis()) {
    Node *Value = Phi->valueAt(0);
    assert(Value != Phi && "degenerate phi references itself");
    Phi->replaceAtAllUsages(Value);
    deleteNode(Phi);
  }
  FixedNode *Succ = Merge->next();
  auto *Pred = cast<FixedWithNextNode>(End->predecessor());
  Merge->setNext(nullptr);
  Merge->removeInput(0); // Drop the end.
  Pred->setNext(nullptr);
  deleteNode(End);
  Pred->setNext(Succ);
  deleteNode(Merge);
}

/// Collects the fixed nodes reachable from \p Start by successor edges.
static std::set<FixedNode *> reachableFixed(StartNode *Start) {
  std::set<FixedNode *> Seen;
  std::vector<FixedNode *> Worklist{Start};
  while (!Worklist.empty()) {
    FixedNode *N = Worklist.back();
    Worklist.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (auto *If = dyn_cast<IfNode>(N)) {
      if (If->trueSuccessor())
        Worklist.push_back(If->trueSuccessor());
      if (If->falseSuccessor())
        Worklist.push_back(If->falseSuccessor());
      continue;
    }
    if (auto *End = dyn_cast<EndNode>(N)) {
      if (MergeNode *M = End->merge())
        Worklist.push_back(M);
      continue;
    }
    // LoopEnd: its LoopBegin is necessarily already reachable (the loop
    // body is dominated by it). Sinks have no successors.
    if (auto *FN = dyn_cast<FixedWithNextNode>(N))
      if (FN->next())
        Worklist.push_back(FN->next());
  }
  return Seen;
}

bool Graph::sweepUnreachable() {
  std::set<FixedNode *> Reachable = reachableFixed(Start);

  // Pass 1: repair reachable merges that lost predecessor ends.
  bool Changed = false;
  std::vector<MergeNode *> Merges;
  for (FixedNode *N : Reachable)
    if (auto *M = dyn_cast<MergeNode>(N))
      Merges.push_back(M);

  for (MergeNode *M : Merges) {
    for (int I = static_cast<int>(M->numEnds()) - 1; I >= 0; --I) {
      FixedNode *End = M->endAt(I);
      if (Reachable.count(End))
        continue;
      Changed = true;
      for (PhiNode *Phi : M->phis())
        Phi->removeInput(1 + I);
      M->removeInput(I);
    }
  }

  // Pass 2: collapse degenerate merges and loops.
  for (MergeNode *M : Merges) {
    if (auto *Loop = dyn_cast<LoopBeginNode>(M)) {
      if (Loop->numBackEdges() != 0)
        continue;
      if (Loop->numEnds() == 0)
        continue; // Entirely unreachable; pass 3 deletes it.
      Changed = true;
      // All back edges vanished: the loop runs at most once. Phis take
      // their forward value; loop exits become pass-throughs.
      for (PhiNode *Phi : Loop->phis()) {
        Phi->replaceAtAllUsages(Phi->valueAt(0));
        deleteNode(Phi);
      }
      std::vector<LoopExitNode *> Exits;
      for (Node *U : Loop->usages())
        if (auto *Exit = dyn_cast<LoopExitNode>(U))
          Exits.push_back(Exit);
      for (LoopExitNode *Exit : Exits) {
        if (Reachable.count(Exit)) {
          unlinkFixed(Exit);
          Exit->replaceAllInputs(Loop, nullptr);
          deleteNode(Exit);
        } else {
          Exit->replaceAllInputs(Loop, nullptr);
        }
      }
      auto *End = cast<EndNode>(Loop->endAt(0));
      FixedNode *Succ = Loop->next();
      auto *Pred = cast<FixedWithNextNode>(End->predecessor());
      Loop->setNext(nullptr);
      Loop->removeInput(0);
      Pred->setNext(nullptr);
      deleteNode(End);
      Pred->setNext(Succ);
      // Remaining usages can only come from unreachable nodes (dead
      // LoopExits or LoopEnds); detach them so the loop header can go.
      while (Loop->hasUsages())
        Loop->usages().back()->replaceAllInputs(Loop, nullptr);
      deleteNode(Loop);
      continue;
    }
    if (M->numEnds() == 1 && Reachable.count(M)) {
      Changed = true;
      collapseSingleEndMerge(M);
    }
  }

  // Pass 3: physically delete unreachable fixed nodes.
  std::vector<FixedNode *> Dead;
  for (unsigned Id = 0, E = Nodes.size(); Id != E; ++Id) {
    Node *N = nodeAt(Id);
    if (!N || !N->isFixed())
      continue;
    auto *F = cast<FixedNode>(N);
    if (!Reachable.count(F))
      Dead.push_back(F);
  }
  if (Dead.empty())
    return Changed;

  for (FixedNode *F : Dead) {
    // Detach successor edges.
    if (auto *If = dyn_cast<IfNode>(F)) {
      If->setTrueSuccessor(nullptr);
      If->setFalseSuccessor(nullptr);
    } else if (auto *FN = dyn_cast<FixedWithNextNode>(F)) {
      FN->setNext(nullptr);
    }
    F->setPred(nullptr);
    F->clearInputs();
  }
  for (FixedNode *F : Dead) {
    // Inputs of dead nodes were already cleared above, so any remaining
    // usages come from floating metadata (frame states, phis of other
    // dead regions); null them out.
    while (F->hasUsages()) {
      Node *User = F->usages().back();
      User->replaceAllInputs(F, nullptr);
    }
    deleteNode(F);
  }
  return true;
}
