//===- Graph.h - IR graph container and structural utilities ------*- C++ -*-===//
///
/// \file
/// The Graph owns all nodes of one compiled method. Besides node creation
/// it provides the structural editing utilities the optimizer phases rely
/// on: splicing fixed nodes in and out of control flow and sweeping
/// control-flow regions that became unreachable after branch folding.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_IR_GRAPH_H
#define JVM_IR_GRAPH_H

#include "ir/Nodes.h"

#include <map>
#include <memory>
#include <vector>

namespace jvm {

/// Owns the nodes of one method's IR. Node ids are dense and stable;
/// deleted nodes keep their slot as tombstones.
class Graph {
public:
  /// Creates a graph for \p Method with the given parameter types.
  Graph(MethodId Method, std::vector<ValueType> ParamTypes);

  MethodId method() const { return Method; }
  unsigned numParams() const { return ParamTypes.size(); }
  ValueType paramType(unsigned I) const { return ParamTypes[I]; }

  StartNode *start() const { return Start; }
  ParameterNode *param(unsigned I) const { return Params[I]; }

  /// Creates and registers a node. Example:
  ///   auto *Add = G.create<ArithNode>(ArithKind::Add, X, Y);
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    auto Owned = std::make_unique<T>(std::forward<Args>(CtorArgs)...);
    T *N = Owned.get();
    registerNode(std::move(Owned));
    return N;
  }

  /// Returns the unique ConstantIntNode for \p Value.
  ConstantIntNode *intConstant(int64_t Value);

  /// Returns the unique null constant.
  ConstantNullNode *nullConstant();

  /// One past the largest node id ever allocated.
  unsigned nodeIdBound() const { return Nodes.size(); }

  /// The node with id \p Id, or null for tombstones.
  Node *nodeAt(unsigned Id) const {
    Node *N = Nodes[Id].get();
    return (N && N->isDeleted()) ? nullptr : N;
  }

  /// Number of live (non-deleted) nodes.
  unsigned numLiveNodes() const { return LiveNodes; }

  /// Marks \p N dead. The node must be fully detached: no usages, and for
  /// fixed nodes no predecessor/successor links.
  void deleteNode(Node *N);

  /// Unlinks the fixed node \p N from control flow, connecting its
  /// predecessor directly to its successor. Data edges are untouched.
  void unlinkFixed(FixedWithNextNode *N);

  /// Unlinks \p N from control flow and deletes it. \p N must have no
  /// usages left.
  void removeFixed(FixedWithNextNode *N);

  /// Inserts \p NewNode into control flow immediately before \p Point.
  /// \p Point's predecessor must be a FixedWithNextNode.
  void insertBefore(FixedWithNextNode *NewNode, FixedNode *Point);

  /// Deletes every fixed node not reachable from Start, repairing merges
  /// that lost predecessor ends and collapsing degenerate merges/loops.
  /// Returns true if anything changed. Floating nodes orphaned by the
  /// sweep are left to dead-code elimination.
  bool sweepUnreachable();

  /// Collapses a merge with exactly one remaining end: phis are replaced
  /// by their single operand and the control flow is spliced through.
  void collapseSingleEndMerge(MergeNode *Merge);

  Graph(const Graph &) = delete;
  Graph &operator=(const Graph &) = delete;

private:
  void registerNode(std::unique_ptr<Node> Owned);

  MethodId Method;
  std::vector<ValueType> ParamTypes;
  StartNode *Start = nullptr;
  std::vector<ParameterNode *> Params;
  std::vector<std::unique_ptr<Node>> Nodes;
  unsigned LiveNodes = 0;
  std::map<int64_t, ConstantIntNode *> IntConstants;
  ConstantNullNode *NullConstant = nullptr;
};

} // namespace jvm

#endif // JVM_IR_GRAPH_H
