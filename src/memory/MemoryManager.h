//===- MemoryManager.h - Region-based generational memory manager ----*- C++ -*-===//
///
/// \file
/// The allocation and collection engine behind jvm::Heap: a bump
/// allocator over fixed-size regions with a generational copying
/// collector, a card-table remembered set, and a parallel scavenge
/// copy phase.
///
/// **Allocation.** The mutator owns one TLAB — a bump window over the
/// current young region. The fast path is a pointer compare and add;
/// refills take whole regions. Objects larger than half a region are
/// born in the old space (bump-allocated too); objects larger than a
/// region get a dedicated humongous region and never move. Deopt
/// rematerialization and interpreter/executor `new` all funnel through
/// this path.
///
/// **Write barrier.** Every mutator reference store (all four execution
/// tiers plus runtime helpers) goes through `Heap::write`, which lands
/// in `writeBarrier` here: an inline filter (store target old? value a
/// young reference?) in front of an out-of-line slow path that dirties
/// the card of the *holder's header* in the CardTable. That remembered
/// set is what lets a scavenge find old-to-young references without
/// touching the rest of the old space — the PR 5 design scanned every
/// old object per scavenge, making young-GC pause O(old space).
///
/// **Scavenge (young collection).** Three phases under one pause:
/// root-slot collection (serial), dirty-card collection (serial,
/// consumes and clears the remembered set), then a copy phase that
/// evacuates live young objects — to a survivor region, or, once their
/// age reaches `PromoteAge`, to the old space — over a static task
/// array (root chunks + cards) drained by `JVM_GC_WORKERS` workers with
/// per-worker copy buffers, local gray stacks with a shared overflow
/// queue, and claim-then-copy forwarding (a CAS on the forwarding
/// pointer elects the copier). Cards whose objects still hold young
/// references after forwarding are re-dirtied, as are promoted objects
/// that retain young references — the remembered set is rebuilt by the
/// scan itself. `JVM_GC_STRESS` forces one worker so promotion order is
/// reproducible; `JVM_GC_SCAN_OLD=1` restores the full old-space scan
/// (the bench_gc_oldspace "before" mode).
///
/// **Pause budget.** `JVM_GC_PAUSE_BUDGET_US` turns the young-space
/// capacity into a control variable: an over-budget scavenge halves it
/// (less to copy next time), comfortably-under-budget scavenges grow it
/// back one region at a time toward the configured capacity.
///
/// **Full collection.** Triggered by old-space growth (or
/// Heap::collect): evacuates *all* live young+old objects into fresh
/// regions (copying compaction), marks and sweeps humongous regions in
/// place, and rebuilds the card table from scratch. Serial: full GCs
/// are rare and wholesale.
///
/// **Observability.** Per-phase TraceScope spans (scavenge-roots /
/// scavenge-cards / scavenge-copy), cards-dirtied/scanned counters,
/// per-worker copied bytes, pause-time log2 histograms, exact
/// per-collection records (gcRecords()), and a per-collection log
/// appended to `$JVM_GC_LOG` at destruction. `JVM_VERIFY_HEAP=1` walks
/// the whole heap after every collection and aborts on a stale
/// reference, a surviving forwarding pointer, or an old→young
/// reference on a clean card.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_MEMORY_MEMORYMANAGER_H
#define JVM_MEMORY_MEMORYMANAGER_H

#include "memory/CardTable.h"
#include "memory/MemoryConfig.h"
#include "memory/Object.h"
#include "memory/Region.h"
#include "observability/Metrics.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace jvm {
namespace memory {

class GcWorkerPool;

class MemoryManager {
public:
  explicit MemoryManager(const MemoryConfig &Config);
  ~MemoryManager();

  // Allocation ---------------------------------------------------------------
  HeapObject *allocateInstance(ClassId Cls,
                               const std::vector<ValueType> &FieldTypes);
  HeapObject *allocateArray(ValueType ElemTy, int64_t Length);

  // Write barrier ------------------------------------------------------------
  /// Post-store barrier: after `O->setSlot(I, V)` the mutator must call
  /// this (via Heap::write) so a scavenge can find the reference without
  /// scanning the old space. The inline filter dismisses the common
  /// cases — young holder, non-reference value, null, old value — and
  /// only an actual old→young store reaches the card mark.
  void writeBarrier(HeapObject *O, const Value &V) {
    if (!(O->Flags & (HeapObject::FlagOld | HeapObject::FlagHumongous)))
      return; // young holder: the scavenge visits it anyway
    if (!V.isRef())
      return;
    HeapObject *T = V.asRef();
    if (!T || (T->Flags & (HeapObject::FlagOld | HeapObject::FlagHumongous)))
      return; // null or old-to-old: no generation boundary crossed
    writeBarrierSlow(O);
  }

  /// True if the card covering \p O's header is dirty (tests, verifier).
  /// Always false for young objects (they have no cards).
  bool cardIsDirty(const HeapObject *O) const {
    return Cards.isDirty(reinterpret_cast<const char *>(O));
  }

  // Roots --------------------------------------------------------------------
  /// Registers an updating root enumerator; the token removes it again
  /// (executors are created and destroyed under one heap, e.g. in tests).
  uint64_t addRootProvider(RootProvider Provider);
  void removeRootProvider(uint64_t Token);

  // Collection ---------------------------------------------------------------
  /// Young collection: evacuate live young objects, recycle from-space.
  void scavenge();
  /// Full collection: copying compaction of young + old, humongous sweep.
  void collectFull();

  // Metrics ------------------------------------------------------------------
  uint64_t allocationCount() const { return AllocCount; }
  uint64_t allocatedBytes() const { return AllocBytes; }
  uint64_t scavenges() const { return Scavenges; }
  uint64_t fullGcs() const { return FullGcs; }
  uint64_t gcRuns() const { return Scavenges + FullGcs; }
  uint64_t bytesCopied() const { return BytesCopied; }
  uint64_t bytesPromoted() const { return BytesPromoted; }
  uint64_t liveObjects() const { return YoungCount + OldCount; }

  /// Cards dirtied by write barriers and GC re-marks since construction
  /// (or the last metrics reset).
  uint64_t cardsDirtied() const {
    return Cards.cardsDirtied() - CardsDirtiedAtReset;
  }
  /// Dirty cards consumed (scanned) by scavenges.
  uint64_t cardsScanned() const { return CardsScannedTotal; }
  /// Copy-phase worker count of the most recent scavenge.
  unsigned lastGcWorkers() const { return LastWorkers; }
  /// Current (possibly budget-adapted) young-generation capacity.
  size_t youngCapacityBytes() const { return CurYoungCapBytes; }
  /// Lifetime bytes copied+promoted per scavenge worker (index = worker).
  std::vector<uint64_t> workerCopiedBytes() const;

  /// Current occupancy (allocated bytes actually holding objects).
  size_t youngOccupancyBytes() const;
  size_t oldOccupancyBytes() const { return OldBytes; }

  const MetricHistogram &scavengePauses() const { return ScavengePauseNs; }
  const MetricHistogram &fullGcPauses() const { return FullGcPauseNs; }

  /// Clears the whole GC metric window: counts, bytes, pause histograms.
  /// Occupancy and live-object figures describe current state and stay.
  void resetMetrics();

  // GC log -------------------------------------------------------------------
  struct GcRecord {
    uint64_t Seq = 0;
    bool Full = false;
    uint64_t PauseNanos = 0;
    uint64_t Copied = 0;   ///< bytes evacuated within the young space
    uint64_t Promoted = 0; ///< bytes moved young -> old
    uint64_t YoungBefore = 0, YoungAfter = 0;
    uint64_t OldBefore = 0, OldAfter = 0;
    uint64_t CardsScanned = 0; ///< dirty cards consumed this scavenge
    unsigned Workers = 1;      ///< copy-phase workers used
  };

  /// Exact per-collection records since construction (or the last
  /// reset): pause percentile computation without histogram bucketing
  /// (bench_gc_oldspace needs real values, not log2 upper bounds).
  const std::vector<GcRecord> &gcRecords() const { return GcLog; }

  /// One line per collection since construction (or the last reset):
  /// kind, pause, bytes copied/promoted, occupancy before/after.
  std::string renderGcLog() const;

  const MemoryConfig &config() const { return Cfg; }

  /// Tags this heap's GC trace spans with the owning isolate's id (the
  /// tracer is process-wide; without the tag, concurrent tenants' GC
  /// spans would be indistinguishable). 0 = untagged (standalone heaps
  /// in tests). Set once right after construction, before any mutator
  /// runs.
  void setTraceIsolateId(uint32_t Id) { TraceIsolateId = Id; }

  MemoryManager(const MemoryManager &) = delete;
  MemoryManager &operator=(const MemoryManager &) = delete;

private:
  /// Per-worker scavenge state. The old-space PLAB persists across
  /// scavenges (bounding per-collection region waste); everything else
  /// is reset per collection. Lifetime copy bytes feed the per-worker
  /// metrics.
  struct WorkerState {
    std::vector<HeapObject *> Gray; ///< local gray stack (unsynchronized)
    Region *Survivor = nullptr;     ///< current survivor copy buffer
    Region *OldPlab = nullptr;      ///< promotion buffer, persists
    uint64_t Copied = 0, Promoted = 0; ///< bytes, current scavenge
    uint64_t YoungCount = 0, OldCount = 0;
    uint64_t LifetimeCopied = 0;
  };

  /// One unit of the copy phase's static (pre-built, serially known)
  /// work: a chunk of root slots, one dirty card, one old region range
  /// (JVM_GC_SCAN_OLD fallback), or one humongous object (ditto).
  struct StaticTask {
    enum Kind : uint8_t { Roots, Card, Range, Hum } K = Roots;
    size_t Begin = 0, End = 0;                  ///< Roots: RootSlots slice
    CardTable::ScanItem Item{};                 ///< Card
    char *RBase = nullptr, *REnd = nullptr;     ///< Range
    HeapObject *H = nullptr;                    ///< Hum
  };

  /// The out-of-line card mark behind the inline writeBarrier filter.
  void writeBarrierSlow(HeapObject *O);

  /// The allocation slow/fast path shared by instances and arrays.
  HeapObject *allocateRaw(uint32_t NumSlots);
  void initObject(HeapObject *O, ClassId Cls, bool IsArray, ValueType ElemTy,
                  uint32_t NumSlots, uint8_t Flags);
  /// Grabs a fresh young region for the TLAB, scavenging first when the
  /// young space is at capacity.
  void refillTlab(size_t NeedBytes);
  /// Retires the TLAB's bump pointer into its region's Top.
  void flushTlab();
  /// Young capacity in whole regions at the current (budget-adapted)
  /// setting; >= 2 so a scavenge always has survivor headroom.
  size_t curYoungRegionCount() const;
  /// Bump-allocates \p Bytes in the old space (new region as needed);
  /// tracks new regions in the card table and records object starts.
  char *oldSpaceBump(size_t Bytes);
  /// Allocates an oversized object in its own dedicated region.
  HeapObject *allocateHumongous(uint32_t NumSlots);

  // Scavenge machinery -------------------------------------------------------
  /// True if \p O lies in one of the captured from-space ranges.
  bool inFromSpace(const HeapObject *O) const;
  void visitRoots(const RootVisitor &V);
  /// Copy-phase workers for this scavenge: forced by config, 1 under
  /// GC stress, else adaptive on the previous scavenge's copy volume.
  unsigned decideWorkers() const;
  /// The copy-phase worker loop: drain local gray, claim static tasks,
  /// steal from the overflow queue, exit when the pending count hits 0.
  void copyWorker(unsigned Wi);
  void processStatic(const StaticTask &T, WorkerState &W);
  /// Forwards one from-space object: claim-then-copy (CAS the forwarding
  /// pointer to a busy sentinel, copy privately, publish). Returns the
  /// to-space address; safe to race from any worker.
  HeapObject *forwardObject(HeapObject *O, WorkerState &W);
  /// Forwards every reference slot of \p O in place; returns true if any
  /// slot still holds a young reference afterwards.
  bool forwardSlots(HeapObject *O, WorkerState &W);
  /// Scans a gray to-space object; re-dirties its card if it was
  /// promoted and retains young references.
  void scanGray(HeapObject *O, WorkerState &W);
  void pushGray(WorkerState &W, HeapObject *O);
  bool grabOverflow(WorkerState &W);
  /// Per-worker bump allocation during the copy phase. Region
  /// acquisition synchronizes on GcAllocMutex; the bump itself is on a
  /// worker-exclusive region.
  char *workerSurvivorBump(WorkerState &W, size_t Bytes);
  char *workerOldBump(WorkerState &W, size_t Bytes);
  GcWorkerPool &pool();

  // Full-GC machinery --------------------------------------------------------
  void forwardFull(Value &V);
  /// Serial survivor bump for the full collection.
  char *survivorBump(size_t Bytes);
  void drainWorklist(const RootVisitor &V);

  /// JVM_VERIFY_HEAP: whole-heap walk after a collection. Aborts on the
  /// first stale reference, surviving forwarding pointer, or old→young
  /// reference whose holder's card is clean.
  void verifyHeap(const char *Phase);

  void recordGc(GcRecord R);

  MemoryConfig Cfg;
  uint32_t TraceIsolateId = 0;
  RegionAllocator Regions;
  CardTable Cards;

  // Young space: the regions allocated since the last scavenge. The last
  // one backs the TLAB; its Top lags the TLAB bump pointer until flush.
  std::vector<Region *> YoungRegions;
  char *TlabCur = nullptr;
  char *TlabEnd = nullptr;
  size_t CurYoungCapBytes; ///< pause-budget-adapted young capacity

  // Old space: bump-filled regions; the last one is the open one.
  std::vector<Region *> OldRegions;
  size_t OldBytes = 0; ///< object bytes in old regions + humongous
  size_t NextFullGcBytes;

  // Humongous objects: one per dedicated region, never moved.
  std::vector<std::pair<Region *, HeapObject *>> Humongous;

  std::vector<std::pair<uint64_t, RootProvider>> RootProviders;
  uint64_t NextRootToken = 1;

  // In-flight collection state.
  bool InGc = false;
  std::vector<std::pair<const char *, const char *>> FromRanges;
  const char *FromLo = nullptr, *FromHi = nullptr;
  std::vector<HeapObject *> Worklist; ///< full GC only (serial)
  std::vector<Region *> SurvivorRegions; ///< scavenge/full-GC to-space
  uint64_t GcCopied = 0, GcPromoted = 0; ///< bytes, current collection

  // Parallel copy-phase state (valid during a scavenge's copy phase).
  std::vector<WorkerState> Workers;
  unsigned NumGcWorkers = 1;
  std::vector<Value *> RootSlots; ///< deduped root slots, reused buffer
  std::vector<CardTable::ScanItem> CardItems;
  std::vector<StaticTask> StaticTasks;
  std::atomic<size_t> StaticNext{0};
  std::atomic<int64_t> GcPending{0}; ///< unfinished tasks + gray objects
  std::vector<HeapObject *> GrayOverflow;
  std::mutex OverflowMutex;
  std::mutex GcAllocMutex; ///< worker region acquisition
  std::unique_ptr<GcWorkerPool> Pool;
  uint64_t LastScavengeVolume = 0; ///< copied+promoted bytes last time

  // Metrics.
  uint64_t AllocCount = 0;
  uint64_t AllocBytes = 0;
  uint64_t Scavenges = 0;
  uint64_t FullGcs = 0;
  uint64_t BytesCopied = 0;
  uint64_t BytesPromoted = 0;
  uint64_t YoungCount = 0; ///< live-object estimate, exact right after GC
  uint64_t OldCount = 0;
  uint64_t CardsScannedTotal = 0;
  uint64_t CardsDirtiedAtReset = 0;
  unsigned LastWorkers = 1;
  MetricHistogram ScavengePauseNs;
  MetricHistogram FullGcPauseNs;

  std::vector<GcRecord> GcLog;
  uint64_t GcSeq = 0;
};

} // namespace memory
} // namespace jvm

#endif // JVM_MEMORY_MEMORYMANAGER_H
