//===- MemoryManager.h - Region-based generational memory manager ----*- C++ -*-===//
///
/// \file
/// The allocation and collection engine behind jvm::Heap: a bump
/// allocator over fixed-size regions with a generational copying
/// collector.
///
/// **Allocation.** The mutator owns one TLAB — a bump window over the
/// current young region. The fast path is a pointer compare and add;
/// refills take whole regions. Objects larger than half a region are
/// born in the old space (bump-allocated too); objects larger than a
/// region get a dedicated humongous region and never move. Deopt
/// rematerialization and interpreter/executor `new` all funnel through
/// this path.
///
/// **Scavenge (young collection).** Cheney-style copying: when the young
/// space is at capacity (or `JVM_GC_STRESS` forces it), live young
/// objects are evacuated — to a fresh survivor region, or, once their
/// age reaches `PromoteAge`, to the old space — leaving a forwarding
/// pointer; from-space regions are then recycled wholesale. Roots come
/// from the registered updating RootProviders *plus a linear scan of
/// every old-space and humongous object*: we are write-barrier-free by
/// design (builder's choice, documented in DESIGN.md §10) — the old
/// space is small in our workloads, and scanning it beats threading
/// card-marking through every setSlot in two executor tiers.
///
/// **Full collection.** Triggered by old-space growth (or Heap::collect):
/// evacuates *all* live young+old objects into fresh regions (copying
/// compaction), marks and sweeps humongous regions in place.
///
/// **Observability.** Scavenge/full-GC TraceScope spans with bytes
/// copied/promoted payloads, pause-time log2 histograms, and a
/// per-collection log appended to `$JVM_GC_LOG` at destruction.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_MEMORY_MEMORYMANAGER_H
#define JVM_MEMORY_MEMORYMANAGER_H

#include "memory/MemoryConfig.h"
#include "memory/Object.h"
#include "memory/Region.h"
#include "observability/Metrics.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jvm {
namespace memory {

class MemoryManager {
public:
  explicit MemoryManager(const MemoryConfig &Config);
  ~MemoryManager();

  // Allocation ---------------------------------------------------------------
  HeapObject *allocateInstance(ClassId Cls,
                               const std::vector<ValueType> &FieldTypes);
  HeapObject *allocateArray(ValueType ElemTy, int64_t Length);

  // Roots --------------------------------------------------------------------
  /// Registers an updating root enumerator; the token removes it again
  /// (executors are created and destroyed under one heap, e.g. in tests).
  uint64_t addRootProvider(RootProvider Provider);
  void removeRootProvider(uint64_t Token);

  // Collection ---------------------------------------------------------------
  /// Young collection: evacuate live young objects, recycle from-space.
  void scavenge();
  /// Full collection: copying compaction of young + old, humongous sweep.
  void collectFull();

  // Metrics ------------------------------------------------------------------
  uint64_t allocationCount() const { return AllocCount; }
  uint64_t allocatedBytes() const { return AllocBytes; }
  uint64_t scavenges() const { return Scavenges; }
  uint64_t fullGcs() const { return FullGcs; }
  uint64_t gcRuns() const { return Scavenges + FullGcs; }
  uint64_t bytesCopied() const { return BytesCopied; }
  uint64_t bytesPromoted() const { return BytesPromoted; }
  uint64_t liveObjects() const { return YoungCount + OldCount; }

  /// Current occupancy (allocated bytes actually holding objects).
  size_t youngOccupancyBytes() const;
  size_t oldOccupancyBytes() const { return OldBytes; }

  const MetricHistogram &scavengePauses() const { return ScavengePauseNs; }
  const MetricHistogram &fullGcPauses() const { return FullGcPauseNs; }

  /// Clears the whole GC metric window: counts, bytes, pause histograms.
  /// Occupancy and live-object figures describe current state and stay.
  void resetMetrics();

  // GC log -------------------------------------------------------------------
  /// One line per collection since construction (or the last reset):
  /// kind, pause, bytes copied/promoted, occupancy before/after.
  std::string renderGcLog() const;

  const MemoryConfig &config() const { return Cfg; }

  /// Tags this heap's GC trace spans with the owning isolate's id (the
  /// tracer is process-wide; without the tag, concurrent tenants' GC
  /// spans would be indistinguishable). 0 = untagged (standalone heaps
  /// in tests). Set once right after construction, before any mutator
  /// runs.
  void setTraceIsolateId(uint32_t Id) { TraceIsolateId = Id; }

  MemoryManager(const MemoryManager &) = delete;
  MemoryManager &operator=(const MemoryManager &) = delete;

private:
  struct GcRecord {
    uint64_t Seq = 0;
    bool Full = false;
    uint64_t PauseNanos = 0;
    uint64_t Copied = 0;   ///< bytes evacuated within the young space
    uint64_t Promoted = 0; ///< bytes moved young -> old
    uint64_t YoungBefore = 0, YoungAfter = 0;
    uint64_t OldBefore = 0, OldAfter = 0;
  };

  /// The allocation slow/fast path shared by instances and arrays.
  HeapObject *allocateRaw(uint32_t NumSlots);
  void initObject(HeapObject *O, ClassId Cls, bool IsArray, ValueType ElemTy,
                  uint32_t NumSlots, uint8_t Flags);
  /// Grabs a fresh young region for the TLAB, scavenging first when the
  /// young space is at capacity.
  void refillTlab(size_t NeedBytes);
  /// Retires the TLAB's bump pointer into its region's Top.
  void flushTlab();
  /// Bump-allocates \p Bytes in the old space (new region as needed).
  char *oldSpaceBump(size_t Bytes);
  /// Allocates an oversized object in its own dedicated region.
  HeapObject *allocateHumongous(uint32_t NumSlots);

  // Scavenge machinery -------------------------------------------------------
  /// True if \p O lies in one of the captured from-space ranges.
  bool inFromSpace(const HeapObject *O) const;
  /// Evacuates (or re-reads the forwarding of) a young \p V in place.
  void forwardIfYoung(Value &V);
  /// Copies \p O out of the young from-space; survivor or promotion.
  HeapObject *evacuateYoung(HeapObject *O);
  /// Bump-allocates \p Bytes in the current survivor (to-space) region.
  char *survivorBump(size_t Bytes);
  /// Scans every old-space and humongous object's slots with \p V — the
  /// write-barrier-free substitute for a remembered set. Snapshots the
  /// region list first: promotions during the scan grow the old space,
  /// and those copies are handled by the worklist instead.
  void scanOldSpace(const RootVisitor &V);
  void visitRoots(const RootVisitor &V);
  void drainWorklist(const RootVisitor &V);

  // Full-GC machinery --------------------------------------------------------
  void forwardFull(Value &V);

  void recordGc(GcRecord R);

  MemoryConfig Cfg;
  uint32_t TraceIsolateId = 0;
  RegionAllocator Regions;

  // Young space: the regions allocated since the last scavenge. The last
  // one backs the TLAB; its Top lags the TLAB bump pointer until flush.
  std::vector<Region *> YoungRegions;
  char *TlabCur = nullptr;
  char *TlabEnd = nullptr;
  size_t YoungUsedBytes = 0; ///< bytes bumped in retired young regions

  // Old space: bump-filled regions; the last one is the open one.
  std::vector<Region *> OldRegions;
  size_t OldBytes = 0; ///< object bytes in old regions + humongous
  size_t NextFullGcBytes;

  // Humongous objects: one per dedicated region, never moved.
  std::vector<std::pair<Region *, HeapObject *>> Humongous;

  std::vector<std::pair<uint64_t, RootProvider>> RootProviders;
  uint64_t NextRootToken = 1;

  // In-flight collection state.
  bool InGc = false;
  std::vector<std::pair<const char *, const char *>> FromRanges;
  const char *FromLo = nullptr, *FromHi = nullptr;
  std::vector<HeapObject *> Worklist;
  std::vector<Region *> SurvivorRegions; ///< scavenge to-space (young)
  uint64_t GcCopied = 0, GcPromoted = 0; ///< bytes, current collection

  // Metrics.
  uint64_t AllocCount = 0;
  uint64_t AllocBytes = 0;
  uint64_t Scavenges = 0;
  uint64_t FullGcs = 0;
  uint64_t BytesCopied = 0;
  uint64_t BytesPromoted = 0;
  uint64_t YoungCount = 0; ///< live-object estimate, exact right after GC
  uint64_t OldCount = 0;
  MetricHistogram ScavengePauseNs;
  MetricHistogram FullGcPauseNs;

  std::vector<GcRecord> GcLog;
  uint64_t GcSeq = 0;
};

} // namespace memory
} // namespace jvm

#endif // JVM_MEMORY_MEMORYMANAGER_H
