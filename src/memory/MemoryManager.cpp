//===- MemoryManager.cpp - Region-based generational memory manager -----------===//

#include "memory/MemoryManager.h"

#include "observability/Profiler.h"
#include "observability/Trace.h"
#include "support/Debug.h"
#include "support/Env.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>
#include <type_traits>

using namespace jvm;
using namespace jvm::memory;

// One memcpy must relocate an object: header and slots alike.
static_assert(std::is_trivially_copyable_v<Value>,
              "Value must be memcpy-relocatable");

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Claim sentinel for forwarding pointers: "a worker is copying this
/// object right now". Never a valid object address.
HeapObject *const FwdBusy = reinterpret_cast<HeapObject *>(1);

/// A local gray stack longer than this donates half to the shared
/// overflow queue so idle workers find work.
constexpr size_t GrayDonateThreshold = 64;
/// Root slots per static copy-phase task.
constexpr size_t RootChunkSlots = 128;
/// Adaptive mode goes parallel only when the previous scavenge copied
/// at least this much: below it, waking workers costs more than the
/// copies (typical all-young-dies scavenges finish in single-digit µs).
constexpr uint64_t AdaptiveParallelBytes = 256 << 10;

} // namespace

namespace jvm {
namespace memory {

/// Lazily-spawned, condvar-parked scavenge worker threads. The caller
/// always executes worker 0 itself; pool threads take indices 1..N-1.
/// Threads persist across scavenges (spawn cost would dwarf a pause)
/// and park between jobs.
class GcWorkerPool {
public:
  ~GcWorkerPool() {
    {
      std::lock_guard<std::mutex> L(M);
      Shutdown = true;
    }
    Cv.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  void run(unsigned N, const std::function<void(unsigned)> &Fn) {
    assert(N > 1 && "serial jobs do not need the pool");
    {
      std::lock_guard<std::mutex> L(M);
      while (Threads.size() < N - 1)
        spawn();
      Job = &Fn;
      JobWorkers = N;
      Remaining = N - 1;
      ++JobSeq;
    }
    Cv.notify_all();
    Fn(0);
    std::unique_lock<std::mutex> L(M);
    DoneCv.wait(L, [this] { return Remaining == 0; });
    Job = nullptr;
  }

private:
  void spawn() {
    unsigned Idx = static_cast<unsigned>(Threads.size());
    Threads.emplace_back([this, Idx] {
      uint64_t Seen = 0;
      std::unique_lock<std::mutex> L(M);
      for (;;) {
        Cv.wait(L, [&] { return Shutdown || JobSeq != Seen; });
        if (Shutdown)
          return;
        Seen = JobSeq;
        if (Idx + 1 >= JobWorkers)
          continue; // pool is larger than this job
        const std::function<void(unsigned)> *F = Job;
        L.unlock();
        (*F)(Idx + 1);
        L.lock();
        if (--Remaining == 0)
          DoneCv.notify_all();
      }
    });
  }

  std::mutex M;
  std::condition_variable Cv, DoneCv;
  std::vector<std::thread> Threads;
  const std::function<void(unsigned)> *Job = nullptr;
  unsigned JobWorkers = 0;
  unsigned Remaining = 0;
  uint64_t JobSeq = 0;
  bool Shutdown = false;
};

} // namespace memory
} // namespace jvm

MemoryManager::MemoryManager(const MemoryConfig &Config)
    : Cfg(Config), Regions(Config.RegionBytes), Cards(Config.CardBytes),
      CurYoungCapBytes(Config.YoungBytes),
      NextFullGcBytes(Config.FullGcThresholdBytes) {
  if (Cfg.PromoteAge == 0)
    Cfg.PromoteAge = 1; // age 0 objects may not skip the young space
}

MemoryManager::~MemoryManager() {
  Pool.reset(); // joins worker threads before any region dies
  if (const char *Path = EnvSnapshot::process().GcLog;
      EnvSnapshot::isSet(Path)) {
    if (std::FILE *F = std::fopen(Path, "a")) {
      std::string Text = renderGcLog();
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    }
  }
  for (Region *R : YoungRegions)
    Regions.release(R);
  for (Region *R : OldRegions)
    Regions.release(R);
  for (auto &[R, O] : Humongous)
    Regions.release(R);
}

GcWorkerPool &MemoryManager::pool() {
  if (!Pool)
    Pool = std::make_unique<GcWorkerPool>();
  return *Pool;
}

// Write barrier --------------------------------------------------------------

void MemoryManager::writeBarrierSlow(HeapObject *O) {
  Cards.mark(reinterpret_cast<const char *>(O));
}

// Allocation -----------------------------------------------------------------

void MemoryManager::initObject(HeapObject *O, ClassId Cls, bool IsArray,
                               ValueType ElemTy, uint32_t NumSlots,
                               uint8_t Flags) {
  O->Forward = nullptr;
  O->Cls = Cls;
  O->NumSlots = NumSlots;
  O->LockCount = 0;
  O->ElemTy = ElemTy;
  O->Flags = Flags | (IsArray ? HeapObject::FlagArray : 0);
  O->Age = 0;
  O->Pad = 0;
  ++AllocCount;
  size_t Size = HeapObject::allocationSize(NumSlots);
  AllocBytes += Size;
  // Allocation-site sampling: one relaxed load when off. Only genuine
  // births come through here — GC copies bump no budgets — so the
  // sampled stream is mutator allocation, which is what the residual-
  // allocation report attributes. Arrays sample with class -1.
  if (profWantsAllocSamples())
    profNoteAllocation(IsArray ? -1 : int32_t(Cls), uint32_t(Size));
}

HeapObject *MemoryManager::allocateRaw(uint32_t NumSlots) {
  // The GC-stress knob collects *before* the bump, never between an
  // object's birth and the caller rooting it: a just-allocated object is
  // unreferenced by definition and must not move before it is published.
  if (Cfg.StressGc && !InGc)
    scavenge();
  size_t Size = HeapObject::allocationSize(NumSlots);
  if (Size > Cfg.largeObjectBytes()) {
    if (Size > Cfg.RegionBytes)
      return allocateHumongous(NumSlots);
    // Born old: copying region-sized objects through survivor space
    // would dominate scavenge cost.
    auto *O = reinterpret_cast<HeapObject *>(oldSpaceBump(Size));
    O->Flags = HeapObject::FlagOld; // placement flag; initObject keeps it
    OldBytes += Size;
    ++OldCount;
    return O;
  }
  if (TlabCur + Size > TlabEnd || !TlabCur)
    refillTlab(Size);
  auto *O = reinterpret_cast<HeapObject *>(TlabCur);
  TlabCur += Size;
  O->Flags = 0;
  ++YoungCount;
  return O;
}

HeapObject *MemoryManager::allocateInstance(
    ClassId Cls, const std::vector<ValueType> &FieldTypes) {
  auto *O = allocateRaw(static_cast<uint32_t>(FieldTypes.size()));
  initObject(O, Cls, /*IsArray=*/false, ValueType::Void, FieldTypes.size(),
             O->Flags);
  Value *Slots = O->slots();
  for (unsigned I = 0, E = FieldTypes.size(); I != E; ++I)
    Slots[I] = Value::defaultOf(FieldTypes[I]);
  return O;
}

HeapObject *MemoryManager::allocateArray(ValueType ElemTy, int64_t Length) {
  assert(Length >= 0 && "negative array length");
  auto *O = allocateRaw(static_cast<uint32_t>(Length));
  initObject(O, NoClass, /*IsArray=*/true, ElemTy,
             static_cast<uint32_t>(Length), O->Flags);
  Value *Slots = O->slots();
  Value Default = Value::defaultOf(ElemTy);
  for (int64_t I = 0; I != Length; ++I)
    Slots[I] = Default;
  return O;
}

size_t MemoryManager::curYoungRegionCount() const {
  size_t N = CurYoungCapBytes / Cfg.RegionBytes;
  return N < 2 ? 2 : N;
}

void MemoryManager::refillTlab(size_t NeedBytes) {
  flushTlab();
  if (YoungRegions.size() >= curYoungRegionCount())
    scavenge();
  // After a scavenge the survivors may still fill the young space (live
  // set ~ capacity); allocate anyway — promotion drains them over the
  // next PromoteAge scavenges, so progress is guaranteed.
  Region *R = Regions.allocate(Cfg.RegionBytes);
  YoungRegions.push_back(R);
  TlabCur = R->Base;
  TlabEnd = R->end();
  assert(NeedBytes <= Cfg.RegionBytes && "TLAB object exceeds a region");
  (void)NeedBytes;
}

void MemoryManager::flushTlab() {
  if (!TlabCur)
    return;
  // The TLAB always bumps the youngest region.
  YoungRegions.back()->Top = TlabCur;
  TlabCur = TlabEnd = nullptr;
}

char *MemoryManager::oldSpaceBump(size_t Bytes) {
  assert(Bytes <= Cfg.RegionBytes && "old-space object exceeds a region");
  Region *R = OldRegions.empty() ? nullptr : OldRegions.back();
  if (!R || R->Top + Bytes > R->end()) {
    R = Regions.allocate(Cfg.RegionBytes);
    OldRegions.push_back(R);
    Cards.trackRegion(R);
  }
  char *P = R->Top;
  R->Top += Bytes;
  Cards.recordObjectStart(P);
  return P;
}

HeapObject *MemoryManager::allocateHumongous(uint32_t NumSlots) {
  size_t Size = HeapObject::allocationSize(NumSlots);
  Region *R = Regions.allocate(std::max(Size, Cfg.RegionBytes));
  R->Top = R->Base + Size;
  auto *O = reinterpret_cast<HeapObject *>(R->Base);
  O->Flags = HeapObject::FlagHumongous; // read back by allocate{Instance,Array}
  Humongous.emplace_back(R, O);
  Cards.trackRegion(R);
  Cards.recordObjectStart(R->Base);
  OldBytes += Size;
  ++OldCount;
  return O;
}

size_t MemoryManager::youngOccupancyBytes() const {
  size_t Sum = 0;
  for (const Region *R : YoungRegions)
    Sum += R->used();
  if (TlabCur) {
    // The open TLAB's region Top lags the bump pointer until flush.
    const Region *R = YoungRegions.back();
    Sum += static_cast<size_t>(TlabCur - R->Base) - R->used();
  }
  return Sum;
}

// Roots ----------------------------------------------------------------------

uint64_t MemoryManager::addRootProvider(RootProvider Provider) {
  uint64_t Token = NextRootToken++;
  RootProviders.emplace_back(Token, std::move(Provider));
  return Token;
}

void MemoryManager::removeRootProvider(uint64_t Token) {
  for (auto It = RootProviders.begin(); It != RootProviders.end(); ++It) {
    if (It->first == Token) {
      RootProviders.erase(It);
      return;
    }
  }
  assert(false && "removing an unregistered root provider");
}

void MemoryManager::visitRoots(const RootVisitor &V) {
  for (auto &[Token, Provider] : RootProviders)
    Provider(V);
}

// Scavenge -------------------------------------------------------------------

bool MemoryManager::inFromSpace(const HeapObject *O) const {
  const char *P = reinterpret_cast<const char *>(O);
  if (P < FromLo || P >= FromHi)
    return false;
  auto It = std::upper_bound(
      FromRanges.begin(), FromRanges.end(), P,
      [](const char *P, const std::pair<const char *, const char *> &R) {
        return P < R.first;
      });
  if (It == FromRanges.begin())
    return false;
  --It;
  return P < It->second;
}

unsigned MemoryManager::decideWorkers() const {
  if (Cfg.StressGc)
    return 1; // reproducible promotion order under stress runs
  if (Cfg.GcWorkers)
    return Cfg.GcWorkers; // forced (already clamped to [1, 16])
  unsigned HW = std::thread::hardware_concurrency();
  if (HW < 2 || LastScavengeVolume < AdaptiveParallelBytes)
    return 1; // waking workers would cost more than the copies
  return std::min(4u, HW);
}

char *MemoryManager::workerSurvivorBump(WorkerState &W, size_t Bytes) {
  Region *R = W.Survivor;
  if (!R || R->Top + Bytes > R->end()) {
    std::lock_guard<std::mutex> L(GcAllocMutex);
    R = Regions.allocate(Cfg.RegionBytes);
    SurvivorRegions.push_back(R);
    W.Survivor = R;
  }
  char *P = R->Top;
  R->Top += Bytes;
  return P;
}

char *MemoryManager::workerOldBump(WorkerState &W, size_t Bytes) {
  assert(Bytes <= Cfg.RegionBytes && "promoted object exceeds a region");
  Region *R = W.OldPlab;
  if (!R || R->Top + Bytes > R->end()) {
    std::lock_guard<std::mutex> L(GcAllocMutex);
    R = Regions.allocate(Cfg.RegionBytes);
    OldRegions.push_back(R);
    Cards.trackRegion(R);
    W.OldPlab = R;
  }
  char *P = R->Top;
  R->Top += Bytes;
  Cards.recordObjectStart(P);
  return P;
}

void MemoryManager::pushGray(WorkerState &W, HeapObject *O) {
  W.Gray.push_back(O);
  if (NumGcWorkers > 1 && W.Gray.size() > GrayDonateThreshold) {
    // Donate the older half so idle workers share the graph walk.
    std::lock_guard<std::mutex> L(OverflowMutex);
    size_t Half = W.Gray.size() / 2;
    GrayOverflow.insert(GrayOverflow.end(), W.Gray.begin(),
                        W.Gray.begin() + Half);
    W.Gray.erase(W.Gray.begin(), W.Gray.begin() + Half);
  }
}

bool MemoryManager::grabOverflow(WorkerState &W) {
  std::lock_guard<std::mutex> L(OverflowMutex);
  if (GrayOverflow.empty())
    return false;
  size_t N = std::min<size_t>(GrayOverflow.size(), 32);
  W.Gray.insert(W.Gray.end(), GrayOverflow.end() - N, GrayOverflow.end());
  GrayOverflow.erase(GrayOverflow.end() - N, GrayOverflow.end());
  return true;
}

HeapObject *MemoryManager::forwardObject(HeapObject *O, WorkerState &W) {
  // Claim-then-copy: exactly one worker CASes the null forwarding
  // pointer to the busy sentinel and copies; racers spin on the
  // sentinel until the winner publishes the to-space address. No
  // speculative copies to throw away, and the payload memcpy is always
  // single-writer.
  HeapObject *F = __atomic_load_n(&O->Forward, __ATOMIC_ACQUIRE);
  for (;;) {
    if (F == FwdBusy) {
      std::this_thread::yield();
      F = __atomic_load_n(&O->Forward, __ATOMIC_ACQUIRE);
      continue;
    }
    if (F)
      return F;
    HeapObject *Expected = nullptr;
    if (__atomic_compare_exchange_n(&O->Forward, &Expected, FwdBusy,
                                    /*weak=*/false, __ATOMIC_ACQ_REL,
                                    __ATOMIC_ACQUIRE))
      break; // claimed
    F = Expected;
  }
  size_t Size = O->sizeInBytes();
  HeapObject *To;
  if (O->Age + 1u >= Cfg.PromoteAge) {
    To = reinterpret_cast<HeapObject *>(workerOldBump(W, Size));
    std::memcpy(To, O, Size);
    To->Flags |= HeapObject::FlagOld;
    W.Promoted += Size;
    ++W.OldCount;
  } else {
    To = reinterpret_cast<HeapObject *>(workerSurvivorBump(W, Size));
    std::memcpy(To, O, Size);
    ++To->Age;
    W.Copied += Size;
    ++W.YoungCount;
  }
  To->Forward = nullptr; // memcpy brought the busy sentinel along
  GcPending.fetch_add(1, std::memory_order_relaxed);
  pushGray(W, To);
  __atomic_store_n(&O->Forward, To, __ATOMIC_RELEASE);
  return To;
}

bool MemoryManager::forwardSlots(HeapObject *O, WorkerState &W) {
  bool AnyYoung = false;
  Value *Slots = O->slots();
  for (uint32_t I = 0, E = O->NumSlots; I != E; ++I) {
    Value &V = Slots[I];
    if (!V.isRef())
      continue;
    HeapObject *T = V.asRef();
    if (!T)
      continue;
    if (inFromSpace(T)) {
      T = forwardObject(T, W);
      V = Value::makeRef(T);
    }
    // Check the *final* referent: a slot may already point at a
    // to-space survivor another task forwarded first.
    if (!(T->Flags & (HeapObject::FlagOld | HeapObject::FlagHumongous)))
      AnyYoung = true;
  }
  return AnyYoung;
}

void MemoryManager::scanGray(HeapObject *O, WorkerState &W) {
  bool AnyYoung = forwardSlots(O, W);
  // A promoted object retaining young references enters the remembered
  // set here — the next scavenge must find it without a mutator store.
  if (AnyYoung &&
      (O->Flags & (HeapObject::FlagOld | HeapObject::FlagHumongous)))
    Cards.mark(reinterpret_cast<const char *>(O));
}

void MemoryManager::processStatic(const StaticTask &T, WorkerState &W) {
  switch (T.K) {
  case StaticTask::Roots:
    for (size_t I = T.Begin; I != T.End; ++I) {
      Value &V = *RootSlots[I];
      if (!V.isRef())
        continue;
      HeapObject *O = V.asRef();
      if (!O || !inFromSpace(O))
        continue;
      V = Value::makeRef(forwardObject(O, W));
    }
    break;
  case StaticTask::Card: {
    // Walk the objects *starting* in this card (their slots may extend
    // past it — card marks cover the holder's header). TopSnap bounds
    // the walk to pre-scavenge allocations; in-scavenge promotions into
    // the same region are scanned as gray objects instead.
    char *P = T.Item.First;
    char *End = std::min(T.Item.CardEnd, T.Item.TopSnap);
    bool AnyYoung = false;
    while (P < End) {
      auto *O = reinterpret_cast<HeapObject *>(P);
      if (forwardSlots(O, W))
        AnyYoung = true;
      P += O->sizeInBytes();
    }
    if (AnyYoung)
      CardTable::remark(T.Item);
    break;
  }
  case StaticTask::Range:
    // JVM_GC_SCAN_OLD fallback: the PR 5 whole-old-space scan.
    for (char *P = T.RBase; P < T.REnd;) {
      auto *O = reinterpret_cast<HeapObject *>(P);
      forwardSlots(O, W);
      P += O->sizeInBytes();
    }
    break;
  case StaticTask::Hum:
    forwardSlots(T.H, W);
    break;
  }
}

void MemoryManager::copyWorker(unsigned Wi) {
  WorkerState &W = Workers[Wi];
  bool StaticsDone = false;
  for (;;) {
    if (!W.Gray.empty()) {
      HeapObject *O = W.Gray.back();
      W.Gray.pop_back();
      scanGray(O, W);
      GcPending.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (!StaticsDone) {
      size_t T = StaticNext.fetch_add(1, std::memory_order_relaxed);
      if (T < StaticTasks.size()) {
        processStatic(StaticTasks[T], W);
        GcPending.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      StaticsDone = true;
    }
    if (NumGcWorkers > 1 && grabOverflow(W))
      continue;
    // Termination: every static task and every gray object is counted
    // in GcPending (incremented before publication, decremented after
    // its scan). Zero pending ⇒ no work exists anywhere.
    if (GcPending.load(std::memory_order_acquire) == 0)
      return;
    std::this_thread::yield();
  }
}

void MemoryManager::scavenge() {
  if (InGc)
    return;
  InGc = true;
  uint64_t Start = nowNanos();
  flushTlab();
  GcRecord Rec;
  Rec.YoungBefore = youngOccupancyBytes();
  Rec.OldBefore = OldBytes;
  TraceScope Span(TraceGc, "scavenge", "young_bytes",
                  static_cast<int64_t>(Rec.YoungBefore), "isolate",
                  static_cast<int64_t>(TraceIsolateId));

  std::vector<Region *> FromRegions = std::move(YoungRegions);
  YoungRegions.clear();
  FromRanges.clear();
  for (Region *R : FromRegions)
    FromRanges.emplace_back(R->Base, R->Top);
  std::sort(FromRanges.begin(), FromRanges.end());
  FromLo = FromRanges.empty() ? nullptr : FromRanges.front().first;
  FromHi = FromRanges.empty() ? nullptr : FromRanges.back().second;

  SurvivorRegions.clear();
  YoungCount = 0;
  GcCopied = GcPromoted = 0;

  // Phase 1 (serial): collect root slots. Providers enumerate live
  // Value storage; dedup by address so two providers reporting the same
  // slot can't race to forward through it in the copy phase.
  {
    TraceScope RootSpan(TraceGc, "scavenge-roots", "isolate",
                        static_cast<int64_t>(TraceIsolateId));
    RootSlots.clear();
    visitRoots([this](Value &V) {
      if (V.isRef() && V.asRef())
        RootSlots.push_back(&V);
    });
    std::sort(RootSlots.begin(), RootSlots.end());
    RootSlots.erase(std::unique(RootSlots.begin(), RootSlots.end()),
                    RootSlots.end());
  }

  // Phase 2 (serial): consume the remembered set (or snapshot the whole
  // old space in the JVM_GC_SCAN_OLD fallback).
  StaticTasks.clear();
  for (size_t I = 0; I < RootSlots.size(); I += RootChunkSlots) {
    StaticTask T;
    T.K = StaticTask::Roots;
    T.Begin = I;
    T.End = std::min(I + RootChunkSlots, RootSlots.size());
    StaticTasks.push_back(T);
  }
  {
    TraceScope CardSpan(TraceGc, "scavenge-cards", "isolate",
                        static_cast<int64_t>(TraceIsolateId));
    CardItems.clear();
    if (Cfg.ScanOldFallback) {
      for (Region *R : OldRegions) {
        StaticTask T;
        T.K = StaticTask::Range;
        T.RBase = R->Base;
        T.REnd = R->Top;
        StaticTasks.push_back(T);
      }
      for (auto &[R, O] : Humongous) {
        StaticTask T;
        T.K = StaticTask::Hum;
        T.H = O;
        StaticTasks.push_back(T);
      }
    } else {
      Cards.takeDirtyCards(CardItems);
      for (const CardTable::ScanItem &I : CardItems) {
        StaticTask T;
        T.K = StaticTask::Card;
        T.Item = I;
        StaticTasks.push_back(T);
      }
    }
  }
  Rec.CardsScanned = CardItems.size();
  CardsScannedTotal += CardItems.size();

  // Phase 3: the copy phase — parallel when it pays.
  NumGcWorkers = decideWorkers();
  if (Workers.size() < NumGcWorkers)
    Workers.resize(NumGcWorkers);
  for (WorkerState &W : Workers) {
    W.Gray.clear();
    W.Survivor = nullptr;
    W.Copied = W.Promoted = 0;
    W.YoungCount = W.OldCount = 0;
  }
  GrayOverflow.clear();
  StaticNext.store(0, std::memory_order_relaxed);
  GcPending.store(static_cast<int64_t>(StaticTasks.size()),
                  std::memory_order_relaxed);
  {
    TraceScope CopySpan(TraceGc, "scavenge-copy", "workers",
                        static_cast<int64_t>(NumGcWorkers), "isolate",
                        static_cast<int64_t>(TraceIsolateId));
    if (NumGcWorkers == 1)
      copyWorker(0);
    else
      pool().run(NumGcWorkers, [this](unsigned Wi) { copyWorker(Wi); });
  }
  LastWorkers = NumGcWorkers;
  assert(GrayOverflow.empty() && "copy phase terminated with shared work");
  for (unsigned I = 0; I != NumGcWorkers; ++I) {
    WorkerState &W = Workers[I];
    assert(W.Gray.empty() && "copy phase terminated with local work");
    GcCopied += W.Copied;
    GcPromoted += W.Promoted;
    YoungCount += W.YoungCount;
    OldCount += W.OldCount;
    OldBytes += W.Promoted;
    W.LifetimeCopied += W.Copied + W.Promoted;
    W.Survivor = nullptr; // survivor regions never persist across GCs
  }
  LastScavengeVolume = GcCopied + GcPromoted;

  for (Region *R : FromRegions)
    Regions.release(R);
  YoungRegions = std::move(SurvivorRegions);
  SurvivorRegions.clear();
  FromRanges.clear();
  FromLo = FromHi = nullptr;

  ++Scavenges;
  BytesCopied += GcCopied;
  BytesPromoted += GcPromoted;
  Rec.Seq = ++GcSeq;
  Rec.Copied = GcCopied;
  Rec.Promoted = GcPromoted;
  Rec.Workers = NumGcWorkers;
  Rec.YoungAfter = youngOccupancyBytes();
  Rec.OldAfter = OldBytes;
  Rec.PauseNanos = nowNanos() - Start;
  ScavengePauseNs.record(Rec.PauseNanos);
  recordGc(Rec);

  // Pause-budget controller: shrink the young space after an
  // over-budget pause (less live data to copy next time), grow it back
  // one region at a time while pauses stay at < half budget.
  if (Cfg.PauseBudgetUs) {
    uint64_t PauseUs = Rec.PauseNanos / 1000;
    if (PauseUs > Cfg.PauseBudgetUs)
      CurYoungCapBytes = std::max(2 * Cfg.RegionBytes, CurYoungCapBytes / 2);
    else if (PauseUs * 2 < Cfg.PauseBudgetUs &&
             CurYoungCapBytes < Cfg.YoungBytes)
      CurYoungCapBytes += Cfg.RegionBytes;
  }

  if (traceWants(TraceGc))
    Tracer::get().instant(TraceGc, "scavenge-stats", "bytes_copied",
                          static_cast<int64_t>(GcCopied), "bytes_promoted",
                          static_cast<int64_t>(GcPromoted));
  JVM_DEBUG("scavenge #" << Rec.Seq << ": " << Rec.YoungBefore << " -> "
                         << Rec.YoungAfter << " young bytes, promoted "
                         << GcPromoted << ", cards " << Rec.CardsScanned
                         << ", workers " << NumGcWorkers);
  if (Cfg.VerifyHeap)
    verifyHeap("scavenge");
  InGc = false;

  if (OldBytes >= NextFullGcBytes)
    collectFull();
}

// Full collection ------------------------------------------------------------

char *MemoryManager::survivorBump(size_t Bytes) {
  Region *R = SurvivorRegions.empty() ? nullptr : SurvivorRegions.back();
  if (!R || R->Top + Bytes > R->end()) {
    R = Regions.allocate(Cfg.RegionBytes);
    SurvivorRegions.push_back(R);
  }
  char *P = R->Top;
  R->Top += Bytes;
  return P;
}

void MemoryManager::forwardFull(Value &V) {
  if (!V.isRef())
    return;
  HeapObject *O = V.asRef();
  if (!O)
    return;
  if (O->Flags & HeapObject::FlagHumongous) {
    // Humongous objects never move; mark-and-scan in place.
    if (!(O->Flags & HeapObject::FlagMarked)) {
      O->Flags |= HeapObject::FlagMarked;
      ++OldCount;
      Worklist.push_back(O);
    }
    return;
  }
  if (!inFromSpace(O))
    return; // an evacuated to-space copy reached through a second root
  if (!O->Forward) {
    size_t Size = O->sizeInBytes();
    HeapObject *To;
    if ((O->Flags & HeapObject::FlagOld) || O->Age + 1u >= Cfg.PromoteAge) {
      To = reinterpret_cast<HeapObject *>(oldSpaceBump(Size));
      std::memcpy(To, O, Size);
      OldBytes += Size;
      ++OldCount;
      if (O->Flags & HeapObject::FlagOld)
        GcCopied += Size;
      else {
        To->Flags |= HeapObject::FlagOld;
        GcPromoted += Size;
      }
    } else {
      To = reinterpret_cast<HeapObject *>(survivorBump(Size));
      std::memcpy(To, O, Size);
      ++To->Age;
      ++YoungCount;
      GcCopied += Size;
    }
    To->Forward = nullptr;
    O->Forward = To;
    Worklist.push_back(To);
  }
  V = Value::makeRef(O->Forward);
}

void MemoryManager::drainWorklist(const RootVisitor &V) {
  while (!Worklist.empty()) {
    HeapObject *O = Worklist.back();
    Worklist.pop_back();
    bool AnyYoung = false;
    Value *Slots = O->slots();
    for (uint32_t I = 0, E = O->NumSlots; I != E; ++I) {
      V(Slots[I]);
      if (Slots[I].isRef()) {
        HeapObject *T = Slots[I].asRef();
        if (T &&
            !(T->Flags & (HeapObject::FlagOld | HeapObject::FlagHumongous)))
          AnyYoung = true;
      }
    }
    // Rebuild the remembered set for the compacted old space: old
    // copies that reference young survivors must start out dirty.
    if (AnyYoung &&
        (O->Flags & (HeapObject::FlagOld | HeapObject::FlagHumongous)))
      Cards.mark(reinterpret_cast<const char *>(O));
  }
}

void MemoryManager::collectFull() {
  if (InGc)
    return;
  InGc = true;
  uint64_t Start = nowNanos();
  flushTlab();
  GcRecord Rec;
  Rec.Full = true;
  Rec.YoungBefore = youngOccupancyBytes();
  Rec.OldBefore = OldBytes;
  TraceScope Span(TraceGc, "full-gc", "old_bytes",
                  static_cast<int64_t>(Rec.OldBefore), "isolate",
                  static_cast<int64_t>(TraceIsolateId));

  // Worker promotion buffers live inside OldRegions, which all die now.
  for (WorkerState &W : Workers)
    W.OldPlab = nullptr;

  // From-space is everything that moves: all young and old regions.
  std::vector<Region *> FromRegions = std::move(YoungRegions);
  YoungRegions.clear();
  FromRegions.insert(FromRegions.end(), OldRegions.begin(), OldRegions.end());
  OldRegions.clear();
  FromRanges.clear();
  for (Region *R : FromRegions)
    FromRanges.emplace_back(R->Base, R->Top);
  std::sort(FromRanges.begin(), FromRanges.end());
  FromLo = FromRanges.empty() ? nullptr : FromRanges.front().first;
  FromHi = FromRanges.empty() ? nullptr : FromRanges.back().second;

  // The card table is rebuilt from scratch: surviving humongous spans
  // stay tracked (those objects don't move), compacted old regions are
  // re-tracked as oldSpaceBump creates them, and drainWorklist re-marks
  // whatever still holds young references.
  Cards.untrackAll();

  SurvivorRegions.clear();
  // Live figures are rebuilt from scratch; humongous bytes re-enter
  // OldBytes only if their object is marked live below.
  YoungCount = OldCount = 0;
  OldBytes = 0;
  GcCopied = GcPromoted = 0;
  for (auto &[R, O] : Humongous) {
    O->Flags &= ~HeapObject::FlagMarked;
    Cards.trackRegion(R);
    Cards.recordObjectStart(R->Base);
  }

  RootVisitor Forward = [this](Value &V) { forwardFull(V); };
  visitRoots(Forward);
  drainWorklist(Forward);

  // Sweep humongous regions: unmarked ones die in place.
  std::vector<std::pair<Region *, HeapObject *>> LiveHumongous;
  for (auto &[R, O] : Humongous) {
    if (O->Flags & HeapObject::FlagMarked) {
      O->Flags &= ~HeapObject::FlagMarked;
      OldBytes += O->sizeInBytes();
      LiveHumongous.emplace_back(R, O);
    } else {
      Cards.untrackRegion(R);
      Regions.release(R);
    }
  }
  Humongous = std::move(LiveHumongous);

  for (Region *R : FromRegions)
    Regions.release(R);
  YoungRegions = std::move(SurvivorRegions);
  SurvivorRegions.clear();
  FromRanges.clear();
  FromLo = FromHi = nullptr;

  NextFullGcBytes = std::max(
      Cfg.FullGcThresholdBytes,
      static_cast<size_t>(static_cast<double>(OldBytes) *
                          Cfg.FullGcGrowthFactor));

  ++FullGcs;
  BytesCopied += GcCopied;
  BytesPromoted += GcPromoted;
  Rec.Seq = ++GcSeq;
  Rec.Copied = GcCopied;
  Rec.Promoted = GcPromoted;
  Rec.YoungAfter = youngOccupancyBytes();
  Rec.OldAfter = OldBytes;
  Rec.PauseNanos = nowNanos() - Start;
  FullGcPauseNs.record(Rec.PauseNanos);
  recordGc(Rec);
  if (traceWants(TraceGc))
    Tracer::get().instant(TraceGc, "full-gc-stats", "bytes_copied",
                          static_cast<int64_t>(GcCopied), "bytes_promoted",
                          static_cast<int64_t>(GcPromoted));
  JVM_DEBUG("full gc #" << Rec.Seq << ": old " << Rec.OldBefore << " -> "
                        << Rec.OldAfter << " bytes");
  if (Cfg.VerifyHeap)
    verifyHeap("full-gc");
  InGc = false;
}

// Heap verifier --------------------------------------------------------------

void MemoryManager::verifyHeap(const char *Phase) {
  // Collect every live object address. The TLAB is flushed at this
  // point (verify runs inside a collection), so region Tops are exact.
  std::vector<const HeapObject *> Live;
  auto WalkRegion = [&](const Region *R) {
    for (const char *P = R->Base; P < R->Top;) {
      auto *O = reinterpret_cast<const HeapObject *>(P);
      Live.push_back(O);
      P += O->sizeInBytes();
    }
  };
  for (const Region *R : YoungRegions)
    WalkRegion(R);
  for (const Region *R : OldRegions)
    WalkRegion(R);
  for (auto &[R, O] : Humongous)
    Live.push_back(O);
  std::sort(Live.begin(), Live.end());
  auto IsLive = [&](const HeapObject *O) {
    return std::binary_search(Live.begin(), Live.end(), O);
  };
  auto Fatal = [&](const char *Msg, const void *At) {
    std::fprintf(stderr,
                 "JVM_VERIFY_HEAP: %s after %s (object %p) — aborting\n", Msg,
                 Phase, At);
    std::abort();
  };

  for (const HeapObject *O : Live) {
    if (__atomic_load_n(&O->Forward, __ATOMIC_RELAXED) != nullptr)
      Fatal("live object still carries a forwarding pointer", O);
    bool AnyYoung = false;
    const Value *Slots = O->slots();
    for (uint32_t I = 0, E = O->NumSlots; I != E; ++I) {
      if (!Slots[I].isRef())
        continue;
      const HeapObject *T = Slots[I].asRef();
      if (!T)
        continue;
      if (!IsLive(T))
        Fatal("slot references a dead or stale (unforwarded) object", T);
      if (!(T->Flags & (HeapObject::FlagOld | HeapObject::FlagHumongous)))
        AnyYoung = true;
    }
    if (AnyYoung &&
        (O->Flags & (HeapObject::FlagOld | HeapObject::FlagHumongous)) &&
        !Cards.isDirty(reinterpret_cast<const char *>(O)))
      Fatal("old-to-young reference on a clean card (missed write barrier)",
            O);
  }
  visitRoots([&](Value &V) {
    if (V.isRef() && V.asRef() && !IsLive(V.asRef()))
      Fatal("root references a dead or stale (unforwarded) object", V.asRef());
  });
}

// Metrics and log ------------------------------------------------------------

std::vector<uint64_t> MemoryManager::workerCopiedBytes() const {
  std::vector<uint64_t> Out;
  Out.reserve(Workers.size());
  for (const WorkerState &W : Workers)
    Out.push_back(W.LifetimeCopied);
  return Out;
}

void MemoryManager::resetMetrics() {
  AllocCount = 0;
  AllocBytes = 0;
  Scavenges = 0;
  FullGcs = 0;
  BytesCopied = 0;
  BytesPromoted = 0;
  CardsScannedTotal = 0;
  CardsDirtiedAtReset = Cards.cardsDirtied();
  ScavengePauseNs.reset();
  FullGcPauseNs.reset();
  GcLog.clear();
}

void MemoryManager::recordGc(GcRecord R) { GcLog.push_back(R); }

std::string MemoryManager::renderGcLog() const {
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "=== gc log: %llu scavenges, %llu full gcs ===\n",
                (unsigned long long)Scavenges, (unsigned long long)FullGcs);
  Out += Buf;
  for (const GcRecord &R : GcLog) {
    std::snprintf(
        Buf, sizeof(Buf),
        "[gc] #%llu %-8s pause=%lluus copied=%lluB promoted=%lluB "
        "young %llu->%llu old %llu->%llu cards=%llu workers=%u\n",
        (unsigned long long)R.Seq, R.Full ? "full" : "scavenge",
        (unsigned long long)(R.PauseNanos / 1000), (unsigned long long)R.Copied,
        (unsigned long long)R.Promoted, (unsigned long long)R.YoungBefore,
        (unsigned long long)R.YoungAfter, (unsigned long long)R.OldBefore,
        (unsigned long long)R.OldAfter, (unsigned long long)R.CardsScanned,
        R.Workers);
    Out += Buf;
  }
  return Out;
}
