//===- MemoryManager.cpp - Region-based generational memory manager -----------===//

#include "memory/MemoryManager.h"

#include "observability/Trace.h"
#include "support/Debug.h"
#include "support/Env.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <type_traits>

using namespace jvm;
using namespace jvm::memory;

// One memcpy must relocate an object: header and slots alike.
static_assert(std::is_trivially_copyable_v<Value>,
              "Value must be memcpy-relocatable");

namespace {
uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

MemoryManager::MemoryManager(const MemoryConfig &Config)
    : Cfg(Config), Regions(Config.RegionBytes),
      NextFullGcBytes(Config.FullGcThresholdBytes) {
  if (Cfg.PromoteAge == 0)
    Cfg.PromoteAge = 1; // age 0 objects may not skip the young space
}

MemoryManager::~MemoryManager() {
  if (const char *Path = EnvSnapshot::process().GcLog;
      EnvSnapshot::isSet(Path)) {
    if (std::FILE *F = std::fopen(Path, "a")) {
      std::string Text = renderGcLog();
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    }
  }
  for (Region *R : YoungRegions)
    Regions.release(R);
  for (Region *R : OldRegions)
    Regions.release(R);
  for (auto &[R, O] : Humongous)
    Regions.release(R);
}

// Allocation -----------------------------------------------------------------

void MemoryManager::initObject(HeapObject *O, ClassId Cls, bool IsArray,
                               ValueType ElemTy, uint32_t NumSlots,
                               uint8_t Flags) {
  O->Forward = nullptr;
  O->Cls = Cls;
  O->NumSlots = NumSlots;
  O->LockCount = 0;
  O->ElemTy = ElemTy;
  O->Flags = Flags | (IsArray ? HeapObject::FlagArray : 0);
  O->Age = 0;
  O->Pad = 0;
  ++AllocCount;
  AllocBytes += HeapObject::allocationSize(NumSlots);
}

HeapObject *MemoryManager::allocateRaw(uint32_t NumSlots) {
  // The GC-stress knob collects *before* the bump, never between an
  // object's birth and the caller rooting it: a just-allocated object is
  // unreferenced by definition and must not move before it is published.
  if (Cfg.StressGc && !InGc)
    scavenge();
  size_t Size = HeapObject::allocationSize(NumSlots);
  if (Size > Cfg.largeObjectBytes()) {
    if (Size > Cfg.RegionBytes)
      return allocateHumongous(NumSlots);
    // Born old: copying region-sized objects through survivor space
    // would dominate scavenge cost.
    auto *O = reinterpret_cast<HeapObject *>(oldSpaceBump(Size));
    O->Flags = HeapObject::FlagOld; // placement flag; initObject keeps it
    OldBytes += Size;
    ++OldCount;
    return O;
  }
  if (TlabCur + Size > TlabEnd || !TlabCur)
    refillTlab(Size);
  auto *O = reinterpret_cast<HeapObject *>(TlabCur);
  TlabCur += Size;
  O->Flags = 0;
  ++YoungCount;
  return O;
}

HeapObject *MemoryManager::allocateInstance(
    ClassId Cls, const std::vector<ValueType> &FieldTypes) {
  auto *O = allocateRaw(static_cast<uint32_t>(FieldTypes.size()));
  initObject(O, Cls, /*IsArray=*/false, ValueType::Void, FieldTypes.size(),
             O->Flags);
  Value *Slots = O->slots();
  for (unsigned I = 0, E = FieldTypes.size(); I != E; ++I)
    Slots[I] = Value::defaultOf(FieldTypes[I]);
  return O;
}

HeapObject *MemoryManager::allocateArray(ValueType ElemTy, int64_t Length) {
  assert(Length >= 0 && "negative array length");
  auto *O = allocateRaw(static_cast<uint32_t>(Length));
  initObject(O, NoClass, /*IsArray=*/true, ElemTy,
             static_cast<uint32_t>(Length), O->Flags);
  Value *Slots = O->slots();
  Value Default = Value::defaultOf(ElemTy);
  for (int64_t I = 0; I != Length; ++I)
    Slots[I] = Default;
  return O;
}

void MemoryManager::refillTlab(size_t NeedBytes) {
  flushTlab();
  if (YoungRegions.size() >= Cfg.youngRegionCount())
    scavenge();
  // After a scavenge the survivors may still fill the young space (live
  // set ~ capacity); allocate anyway — promotion drains them over the
  // next PromoteAge scavenges, so progress is guaranteed.
  Region *R = Regions.allocate(Cfg.RegionBytes);
  YoungRegions.push_back(R);
  TlabCur = R->Base;
  TlabEnd = R->end();
  assert(NeedBytes <= Cfg.RegionBytes && "TLAB object exceeds a region");
  (void)NeedBytes;
}

void MemoryManager::flushTlab() {
  if (!TlabCur)
    return;
  // The TLAB always bumps the youngest region.
  YoungRegions.back()->Top = TlabCur;
  TlabCur = TlabEnd = nullptr;
}

char *MemoryManager::oldSpaceBump(size_t Bytes) {
  assert(Bytes <= Cfg.RegionBytes && "old-space object exceeds a region");
  Region *R = OldRegions.empty() ? nullptr : OldRegions.back();
  if (!R || R->Top + Bytes > R->end()) {
    R = Regions.allocate(Cfg.RegionBytes);
    OldRegions.push_back(R);
  }
  char *P = R->Top;
  R->Top += Bytes;
  return P;
}

HeapObject *MemoryManager::allocateHumongous(uint32_t NumSlots) {
  size_t Size = HeapObject::allocationSize(NumSlots);
  Region *R = Regions.allocate(std::max(Size, Cfg.RegionBytes));
  R->Top = R->Base + Size;
  auto *O = reinterpret_cast<HeapObject *>(R->Base);
  O->Flags = HeapObject::FlagHumongous; // read back by allocate{Instance,Array}
  Humongous.emplace_back(R, O);
  OldBytes += Size;
  ++OldCount;
  return O;
}

size_t MemoryManager::youngOccupancyBytes() const {
  size_t Sum = 0;
  for (const Region *R : YoungRegions)
    Sum += R->used();
  if (TlabCur) {
    // The open TLAB's region Top lags the bump pointer until flush.
    const Region *R = YoungRegions.back();
    Sum += static_cast<size_t>(TlabCur - R->Base) - R->used();
  }
  return Sum;
}

// Roots ----------------------------------------------------------------------

uint64_t MemoryManager::addRootProvider(RootProvider Provider) {
  uint64_t Token = NextRootToken++;
  RootProviders.emplace_back(Token, std::move(Provider));
  return Token;
}

void MemoryManager::removeRootProvider(uint64_t Token) {
  for (auto It = RootProviders.begin(); It != RootProviders.end(); ++It) {
    if (It->first == Token) {
      RootProviders.erase(It);
      return;
    }
  }
  assert(false && "removing an unregistered root provider");
}

void MemoryManager::visitRoots(const RootVisitor &V) {
  for (auto &[Token, Provider] : RootProviders)
    Provider(V);
}

// Scavenge -------------------------------------------------------------------

bool MemoryManager::inFromSpace(const HeapObject *O) const {
  const char *P = reinterpret_cast<const char *>(O);
  if (P < FromLo || P >= FromHi)
    return false;
  auto It = std::upper_bound(
      FromRanges.begin(), FromRanges.end(), P,
      [](const char *P, const std::pair<const char *, const char *> &R) {
        return P < R.first;
      });
  if (It == FromRanges.begin())
    return false;
  --It;
  return P < It->second;
}

char *MemoryManager::survivorBump(size_t Bytes) {
  Region *R = SurvivorRegions.empty() ? nullptr : SurvivorRegions.back();
  if (!R || R->Top + Bytes > R->end()) {
    R = Regions.allocate(Cfg.RegionBytes);
    SurvivorRegions.push_back(R);
  }
  char *P = R->Top;
  R->Top += Bytes;
  return P;
}

HeapObject *MemoryManager::evacuateYoung(HeapObject *O) {
  size_t Size = O->sizeInBytes();
  HeapObject *To;
  if (O->Age + 1u >= Cfg.PromoteAge) {
    To = reinterpret_cast<HeapObject *>(oldSpaceBump(Size));
    std::memcpy(To, O, Size);
    To->Flags |= HeapObject::FlagOld;
    OldBytes += Size;
    ++OldCount;
    GcPromoted += Size;
  } else {
    To = reinterpret_cast<HeapObject *>(survivorBump(Size));
    std::memcpy(To, O, Size);
    ++To->Age;
    ++YoungCount;
    GcCopied += Size;
  }
  To->Forward = nullptr;
  O->Forward = To;
  Worklist.push_back(To);
  return To;
}

void MemoryManager::forwardIfYoung(Value &V) {
  if (!V.isRef())
    return;
  HeapObject *O = V.asRef();
  if (!O || !inFromSpace(O))
    return; // old, humongous, or an already-evacuated to-space copy
  if (!O->Forward)
    evacuateYoung(O);
  V = Value::makeRef(O->Forward);
}

void MemoryManager::scanOldSpace(const RootVisitor &V) {
  // Snapshot the regions and their tops: promotions during this scan
  // grow the old space, and those fresh copies are scanned through the
  // worklist instead (their slots still point into from-space).
  std::vector<std::pair<Region *, char *>> Snapshot;
  Snapshot.reserve(OldRegions.size());
  for (Region *R : OldRegions)
    Snapshot.emplace_back(R, R->Top);
  for (auto &[R, Top] : Snapshot) {
    for (char *P = R->Base; P < Top;) {
      auto *O = reinterpret_cast<HeapObject *>(P);
      Value *Slots = O->slots();
      for (uint32_t I = 0, E = O->NumSlots; I != E; ++I)
        V(Slots[I]);
      P += O->sizeInBytes();
    }
  }
  for (auto &[R, O] : Humongous) {
    Value *Slots = O->slots();
    for (uint32_t I = 0, E = O->NumSlots; I != E; ++I)
      V(Slots[I]);
  }
}

void MemoryManager::drainWorklist(const RootVisitor &V) {
  while (!Worklist.empty()) {
    HeapObject *O = Worklist.back();
    Worklist.pop_back();
    Value *Slots = O->slots();
    for (uint32_t I = 0, E = O->NumSlots; I != E; ++I)
      V(Slots[I]);
  }
}

void MemoryManager::scavenge() {
  if (InGc)
    return;
  InGc = true;
  uint64_t Start = nowNanos();
  flushTlab();
  GcRecord Rec;
  Rec.YoungBefore = youngOccupancyBytes();
  Rec.OldBefore = OldBytes;
  TraceScope Span(TraceGc, "scavenge", "young_bytes",
                  static_cast<int64_t>(Rec.YoungBefore), "isolate",
                  static_cast<int64_t>(TraceIsolateId));

  std::vector<Region *> FromRegions = std::move(YoungRegions);
  YoungRegions.clear();
  FromRanges.clear();
  for (Region *R : FromRegions)
    FromRanges.emplace_back(R->Base, R->Top);
  std::sort(FromRanges.begin(), FromRanges.end());
  FromLo = FromRanges.empty() ? nullptr : FromRanges.front().first;
  FromHi = FromRanges.empty() ? nullptr : FromRanges.back().second;

  SurvivorRegions.clear();
  YoungCount = 0;
  GcCopied = GcPromoted = 0;
  RootVisitor Forward = [this](Value &V) { forwardIfYoung(V); };
  visitRoots(Forward);
  scanOldSpace(Forward);
  drainWorklist(Forward);

  for (Region *R : FromRegions)
    Regions.release(R);
  YoungRegions = std::move(SurvivorRegions);
  SurvivorRegions.clear();
  FromRanges.clear();
  FromLo = FromHi = nullptr;

  ++Scavenges;
  BytesCopied += GcCopied;
  BytesPromoted += GcPromoted;
  Rec.Seq = ++GcSeq;
  Rec.Copied = GcCopied;
  Rec.Promoted = GcPromoted;
  Rec.YoungAfter = youngOccupancyBytes();
  Rec.OldAfter = OldBytes;
  Rec.PauseNanos = nowNanos() - Start;
  ScavengePauseNs.record(Rec.PauseNanos);
  recordGc(Rec);
  if (traceWants(TraceGc))
    Tracer::get().instant(TraceGc, "scavenge-stats", "bytes_copied",
                          static_cast<int64_t>(GcCopied), "bytes_promoted",
                          static_cast<int64_t>(GcPromoted));
  JVM_DEBUG("scavenge #" << Rec.Seq << ": " << Rec.YoungBefore << " -> "
                         << Rec.YoungAfter << " young bytes, promoted "
                         << GcPromoted);
  InGc = false;

  if (OldBytes >= NextFullGcBytes)
    collectFull();
}

// Full collection ------------------------------------------------------------

void MemoryManager::forwardFull(Value &V) {
  if (!V.isRef())
    return;
  HeapObject *O = V.asRef();
  if (!O)
    return;
  if (O->Flags & HeapObject::FlagHumongous) {
    // Humongous objects never move; mark-and-scan in place.
    if (!(O->Flags & HeapObject::FlagMarked)) {
      O->Flags |= HeapObject::FlagMarked;
      ++OldCount;
      Worklist.push_back(O);
    }
    return;
  }
  if (!inFromSpace(O))
    return; // an evacuated to-space copy reached through a second root
  if (!O->Forward) {
    size_t Size = O->sizeInBytes();
    HeapObject *To;
    if ((O->Flags & HeapObject::FlagOld) || O->Age + 1u >= Cfg.PromoteAge) {
      To = reinterpret_cast<HeapObject *>(oldSpaceBump(Size));
      std::memcpy(To, O, Size);
      OldBytes += Size;
      ++OldCount;
      if (O->Flags & HeapObject::FlagOld)
        GcCopied += Size;
      else {
        To->Flags |= HeapObject::FlagOld;
        GcPromoted += Size;
      }
    } else {
      To = reinterpret_cast<HeapObject *>(survivorBump(Size));
      std::memcpy(To, O, Size);
      ++To->Age;
      ++YoungCount;
      GcCopied += Size;
    }
    To->Forward = nullptr;
    O->Forward = To;
    Worklist.push_back(To);
  }
  V = Value::makeRef(O->Forward);
}

void MemoryManager::collectFull() {
  if (InGc)
    return;
  InGc = true;
  uint64_t Start = nowNanos();
  flushTlab();
  GcRecord Rec;
  Rec.Full = true;
  Rec.YoungBefore = youngOccupancyBytes();
  Rec.OldBefore = OldBytes;
  TraceScope Span(TraceGc, "full-gc", "old_bytes",
                  static_cast<int64_t>(Rec.OldBefore), "isolate",
                  static_cast<int64_t>(TraceIsolateId));

  // From-space is everything that moves: all young and old regions.
  std::vector<Region *> FromRegions = std::move(YoungRegions);
  YoungRegions.clear();
  FromRegions.insert(FromRegions.end(), OldRegions.begin(), OldRegions.end());
  OldRegions.clear();
  FromRanges.clear();
  for (Region *R : FromRegions)
    FromRanges.emplace_back(R->Base, R->Top);
  std::sort(FromRanges.begin(), FromRanges.end());
  FromLo = FromRanges.empty() ? nullptr : FromRanges.front().first;
  FromHi = FromRanges.empty() ? nullptr : FromRanges.back().second;

  SurvivorRegions.clear();
  // Live figures are rebuilt from scratch; humongous bytes re-enter
  // OldBytes only if their object is marked live below.
  YoungCount = OldCount = 0;
  OldBytes = 0;
  GcCopied = GcPromoted = 0;
  for (auto &[R, O] : Humongous)
    O->Flags &= ~HeapObject::FlagMarked;

  RootVisitor Forward = [this](Value &V) { forwardFull(V); };
  visitRoots(Forward);
  drainWorklist(Forward);

  // Sweep humongous regions: unmarked ones die in place.
  std::vector<std::pair<Region *, HeapObject *>> LiveHumongous;
  for (auto &[R, O] : Humongous) {
    if (O->Flags & HeapObject::FlagMarked) {
      O->Flags &= ~HeapObject::FlagMarked;
      OldBytes += O->sizeInBytes();
      LiveHumongous.emplace_back(R, O);
    } else {
      Regions.release(R);
    }
  }
  Humongous = std::move(LiveHumongous);

  for (Region *R : FromRegions)
    Regions.release(R);
  YoungRegions = std::move(SurvivorRegions);
  SurvivorRegions.clear();
  FromRanges.clear();
  FromLo = FromHi = nullptr;

  NextFullGcBytes = std::max(
      Cfg.FullGcThresholdBytes,
      static_cast<size_t>(static_cast<double>(OldBytes) *
                          Cfg.FullGcGrowthFactor));

  ++FullGcs;
  BytesCopied += GcCopied;
  BytesPromoted += GcPromoted;
  Rec.Seq = ++GcSeq;
  Rec.Copied = GcCopied;
  Rec.Promoted = GcPromoted;
  Rec.YoungAfter = youngOccupancyBytes();
  Rec.OldAfter = OldBytes;
  Rec.PauseNanos = nowNanos() - Start;
  FullGcPauseNs.record(Rec.PauseNanos);
  recordGc(Rec);
  if (traceWants(TraceGc))
    Tracer::get().instant(TraceGc, "full-gc-stats", "bytes_copied",
                          static_cast<int64_t>(GcCopied), "bytes_promoted",
                          static_cast<int64_t>(GcPromoted));
  JVM_DEBUG("full gc #" << Rec.Seq << ": old " << Rec.OldBefore << " -> "
                        << Rec.OldAfter << " bytes");
  InGc = false;
}

// Metrics and log ------------------------------------------------------------

void MemoryManager::resetMetrics() {
  AllocCount = 0;
  AllocBytes = 0;
  Scavenges = 0;
  FullGcs = 0;
  BytesCopied = 0;
  BytesPromoted = 0;
  ScavengePauseNs.reset();
  FullGcPauseNs.reset();
}

void MemoryManager::recordGc(GcRecord R) { GcLog.push_back(R); }

std::string MemoryManager::renderGcLog() const {
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "=== gc log: %llu scavenges, %llu full gcs ===\n",
                (unsigned long long)Scavenges, (unsigned long long)FullGcs);
  Out += Buf;
  for (const GcRecord &R : GcLog) {
    std::snprintf(
        Buf, sizeof(Buf),
        "[gc] #%llu %-8s pause=%lluus copied=%lluB promoted=%lluB "
        "young %llu->%llu old %llu->%llu\n",
        (unsigned long long)R.Seq, R.Full ? "full" : "scavenge",
        (unsigned long long)(R.PauseNanos / 1000), (unsigned long long)R.Copied,
        (unsigned long long)R.Promoted, (unsigned long long)R.YoungBefore,
        (unsigned long long)R.YoungAfter, (unsigned long long)R.OldBefore,
        (unsigned long long)R.OldAfter);
    Out += Buf;
  }
  return Out;
}
