//===- CardTable.cpp - Remembered set over old-generation regions --------------===//

#include "memory/CardTable.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

using namespace jvm;
using namespace jvm::memory;

CardTable::CardTable(size_t CardBytes)
    : Bytes(CardBytes), Shift([CardBytes] {
        assert(CardBytes && (CardBytes & (CardBytes - 1)) == 0 &&
               "card size must be a power of two");
        unsigned S = 0;
        for (size_t B = CardBytes; B > 1; B >>= 1)
          ++S;
        return S;
      }()) {}

void CardTable::trackRegion(Region *R) {
  auto S = std::make_unique<Span>();
  S->Base = R->Base;
  S->R = R;
  S->NumCards = static_cast<uint32_t>((R->Bytes + Bytes - 1) >> Shift);
  S->Cards = std::make_unique<std::atomic<uint8_t>[]>(S->NumCards);
  S->FirstObj = std::make_unique<std::atomic<uint32_t>[]>(S->NumCards);
  for (uint32_t I = 0; I != S->NumCards; ++I) {
    S->Cards[I].store(0, std::memory_order_relaxed);
    S->FirstObj[I].store(NoObject, std::memory_order_relaxed);
  }
  std::unique_lock<std::shared_mutex> L(SpanLock);
  auto It = std::lower_bound(
      Spans.begin(), Spans.end(), S->Base,
      [](const std::unique_ptr<Span> &A, const char *B) { return A->Base < B; });
  Spans.insert(It, std::move(S));
}

void CardTable::untrackRegion(Region *R) {
  std::unique_lock<std::shared_mutex> L(SpanLock);
  for (auto It = Spans.begin(); It != Spans.end(); ++It)
    if ((*It)->R == R) {
      Spans.erase(It);
      return;
    }
  assert(false && "untrackRegion: region was not tracked");
}

void CardTable::untrackAll() {
  std::unique_lock<std::shared_mutex> L(SpanLock);
  Spans.clear();
}

CardTable::Span *CardTable::findSpan(const char *P) {
  // Callers hold SpanLock (shared or unique).
  auto It = std::upper_bound(
      Spans.begin(), Spans.end(), P,
      [](const char *A, const std::unique_ptr<Span> &B) { return A < B->Base; });
  if (It == Spans.begin())
    return nullptr;
  Span *S = std::prev(It)->get();
  if (P < S->Base || P >= S->Base + S->R->Bytes)
    return nullptr;
  return S;
}

void CardTable::recordObjectStart(const char *P) {
  std::shared_lock<std::shared_mutex> L(SpanLock);
  Span *S = findSpan(P);
  assert(S && "recordObjectStart outside any tracked region");
  std::atomic<uint32_t> &E = S->FirstObj[cardIndex(*S, P)];
  // First-object-wins: relaxed min-CAS, racing promotion workers may
  // record starts in the same card in any order.
  uint32_t Off = static_cast<uint32_t>(P - S->Base);
  uint32_t Cur = E.load(std::memory_order_relaxed);
  while (Off < Cur &&
         !E.compare_exchange_weak(Cur, Off, std::memory_order_relaxed))
    ;
}

void CardTable::mark(const char *P) {
  std::shared_lock<std::shared_mutex> L(SpanLock);
  Span *S = findSpan(P);
  assert(S && "write barrier on an untracked old object");
  if (!S)
    return;
  if (S->Cards[cardIndex(*S, P)].exchange(1, std::memory_order_relaxed) == 0)
    Dirtied.fetch_add(1, std::memory_order_relaxed);
}

bool CardTable::isDirty(const char *P) const {
  std::shared_lock<std::shared_mutex> L(SpanLock);
  const Span *S = findSpan(P);
  if (!S)
    return false;
  return S->Cards[cardIndex(*S, P)].load(std::memory_order_relaxed) != 0;
}

void CardTable::takeDirtyCards(std::vector<ScanItem> &Out) {
  static_assert(sizeof(std::atomic<uint8_t>) == 1,
                "word-at-a-time clean-card skip assumes packed card bytes");
  std::unique_lock<std::shared_mutex> L(SpanLock);
  for (std::unique_ptr<Span> &SP : Spans) {
    Span &S = *SP;
    char *Top = S.R->Top;
    // The sweep over the table itself is the only O(old-size) term left
    // in a scavenge; holding SpanLock exclusively means no mark() races
    // this loop, so clean stretches can be skipped a word at a time.
    const uint8_t *Raw = reinterpret_cast<const uint8_t *>(S.Cards.get());
    for (uint32_t C = 0; C != S.NumCards;) {
      if ((C & 7) == 0 && C + 8 <= S.NumCards) {
        uint64_t W;
        std::memcpy(&W, Raw + C, 8);
        if (W == 0) {
          C += 8;
          continue;
        }
      }
      if (S.Cards[C].load(std::memory_order_relaxed) == 0) {
        ++C;
        continue;
      }
      S.Cards[C].store(0, std::memory_order_relaxed);
      uint32_t First = S.FirstObj[C].load(std::memory_order_relaxed);
      if (First == NoObject)
        continue; // dirty but empty card: nothing ever started here
      char *FirstP = S.Base + First;
      if (FirstP >= Top)
        continue;
      Out.push_back(ScanItem{FirstP, S.Base + ((size_t(C) + 1) << Shift), Top,
                             &S.Cards[C]});
    }
  }
}

size_t CardTable::trackedRegions() const {
  std::shared_lock<std::shared_mutex> L(SpanLock);
  return Spans.size();
}
