//===- MemoryConfig.h - Memory-manager tuning knobs -----------------*- C++ -*-===//
///
/// \file
/// Sizing and policy knobs of the region-based memory manager, with the
/// environment-variable surface the README documents:
///
///   JVM_HEAP_YOUNG          young-space capacity (bytes; k/m/g suffixes)
///   JVM_HEAP_REGION         region size (bytes; k/m/g suffixes)
///   JVM_GC_STRESS           1 = scavenge before *every* allocation (debug)
///   JVM_GC_LOG              file the per-collection log is appended to
///   JVM_GC_CARD             card size in bytes (power of two)
///   JVM_GC_WORKERS          scavenge copy threads (0 = adaptive)
///   JVM_GC_PAUSE_BUDGET_US  auto-size young gen to this scavenge pause
///   JVM_GC_SCAN_OLD         1 = legacy full old-space scan (no remset)
///   JVM_VERIFY_HEAP         1 = walk + verify the heap after every GC
///
/// Tests construct configs directly (small young spaces force scavenges
/// deterministically); the VM default reads the environment once.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_MEMORY_MEMORYCONFIG_H
#define JVM_MEMORY_MEMORYCONFIG_H

#include <cstddef>
#include <cstdint>

namespace jvm {

struct EnvSnapshot;

namespace memory {

struct MemoryConfig {
  /// Size of one region, the granule the young and old spaces grow and
  /// shrink by. TLABs are refilled one region at a time.
  size_t RegionBytes = 256 << 10;

  /// Young-space capacity: a TLAB refill that would exceed this many
  /// bytes of young regions triggers a scavenge first.
  size_t YoungBytes = 8 << 20;

  /// Scavenges an object must survive before its next copy promotes it
  /// to the old space (HotSpot's tenuring threshold, radically shrunk:
  /// our workloads are allocation-churn loops).
  unsigned PromoteAge = 2;

  /// Old-space occupancy that triggers a full collection, re-armed after
  /// each one at max(this, live * FullGcGrowthFactor).
  size_t FullGcThresholdBytes = 16 << 20;
  double FullGcGrowthFactor = 2.0;

  /// Debug knob: run a scavenge at every allocation — i.e. at every
  /// safepoint a GC could possibly hit — so unrooted-reference bugs
  /// surface deterministically instead of at one unlucky heap size.
  /// Also forces the scavenge worker count to 1 so promotion order (and
  /// therefore old-space layout) is bit-for-bit reproducible.
  bool StressGc = false;

  /// Card granularity of the old-space remembered set: one dirty byte
  /// covers this many bytes of old storage. Smaller cards mean less
  /// scanning per old-to-young store but a bigger table. Power of two,
  /// clamped to [64, RegionBytes].
  size_t CardBytes = 512;

  /// Scavenge copy-phase worker count. 0 = adaptive: parallel only when
  /// the previous scavenge copied enough bytes for the thread wake cost
  /// to pay off, serial otherwise. A nonzero value forces that many
  /// workers (clamped to [1, 16]). StressGc overrides this to 1.
  unsigned GcWorkers = 0;

  /// Target p99 scavenge pause in microseconds; 0 = off. When set, the
  /// young-generation capacity is adapted downward after an over-budget
  /// scavenge (less to copy next time) and grows back while pauses stay
  /// comfortably under budget.
  uint64_t PauseBudgetUs = 0;

  /// Debug knob: verify the whole heap after every collection — every
  /// reachable slot points at a live object, no forwarding pointer
  /// survives, and every old→young reference is covered by a dirty
  /// card. Fatal on the first violation.
  bool VerifyHeap = false;

  /// Compatibility/benchmark knob: ignore the remembered set and find
  /// old-to-young references by scanning the entire old space, exactly
  /// like the PR 5 collector. This is the "before" configuration of
  /// bench_gc_oldspace; barriers still run (cards are still dirtied) so
  /// the comparison isolates the scan policy.
  bool ScanOldFallback = false;

  /// The config selected by the environment (see file comment), starting
  /// from the defaults above. Out-of-range values are clamped, not
  /// errors: a 4 KB floor on regions, two regions minimum young space.
  /// Reads the once-captured process EnvSnapshot, never getenv directly.
  static MemoryConfig fromEnvironment();

  /// Same derivation from an explicit snapshot (isolate construction,
  /// tests with synthetic environments).
  static MemoryConfig fromSnapshot(const jvm::EnvSnapshot &Env);

  /// Young capacity in whole regions (>= 2 so a scavenge always has a
  /// survivor region to copy into while the from-space still stands).
  size_t youngRegionCount() const {
    size_t N = (YoungBytes + RegionBytes - 1) / RegionBytes;
    return N < 2 ? 2 : N;
  }

  /// Largest object the young space accepts; bigger ones are born old
  /// (they would dominate copy cost) or, above RegionBytes, humongous.
  size_t largeObjectBytes() const { return RegionBytes / 2; }
};

} // namespace memory
} // namespace jvm

#endif // JVM_MEMORY_MEMORYCONFIG_H
