//===- MemoryConfig.h - Memory-manager tuning knobs -----------------*- C++ -*-===//
///
/// \file
/// Sizing and policy knobs of the region-based memory manager, with the
/// environment-variable surface the README documents:
///
///   JVM_HEAP_YOUNG   young-space capacity (bytes; k/m/g suffixes)
///   JVM_HEAP_REGION  region size (bytes; k/m/g suffixes)
///   JVM_GC_STRESS    1 = scavenge before *every* allocation (debug)
///   JVM_GC_LOG       file the per-collection log is appended to
///
/// Tests construct configs directly (small young spaces force scavenges
/// deterministically); the VM default reads the environment once.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_MEMORY_MEMORYCONFIG_H
#define JVM_MEMORY_MEMORYCONFIG_H

#include <cstddef>

namespace jvm {

struct EnvSnapshot;

namespace memory {

struct MemoryConfig {
  /// Size of one region, the granule the young and old spaces grow and
  /// shrink by. TLABs are refilled one region at a time.
  size_t RegionBytes = 256 << 10;

  /// Young-space capacity: a TLAB refill that would exceed this many
  /// bytes of young regions triggers a scavenge first.
  size_t YoungBytes = 8 << 20;

  /// Scavenges an object must survive before its next copy promotes it
  /// to the old space (HotSpot's tenuring threshold, radically shrunk:
  /// our workloads are allocation-churn loops).
  unsigned PromoteAge = 2;

  /// Old-space occupancy that triggers a full collection, re-armed after
  /// each one at max(this, live * FullGcGrowthFactor).
  size_t FullGcThresholdBytes = 16 << 20;
  double FullGcGrowthFactor = 2.0;

  /// Debug knob: run a scavenge at every allocation — i.e. at every
  /// safepoint a GC could possibly hit — so unrooted-reference bugs
  /// surface deterministically instead of at one unlucky heap size.
  bool StressGc = false;

  /// The config selected by the environment (see file comment), starting
  /// from the defaults above. Out-of-range values are clamped, not
  /// errors: a 4 KB floor on regions, two regions minimum young space.
  /// Reads the once-captured process EnvSnapshot, never getenv directly.
  static MemoryConfig fromEnvironment();

  /// Same derivation from an explicit snapshot (isolate construction,
  /// tests with synthetic environments).
  static MemoryConfig fromSnapshot(const jvm::EnvSnapshot &Env);

  /// Young capacity in whole regions (>= 2 so a scavenge always has a
  /// survivor region to copy into while the from-space still stands).
  size_t youngRegionCount() const {
    size_t N = (YoungBytes + RegionBytes - 1) / RegionBytes;
    return N < 2 ? 2 : N;
  }

  /// Largest object the young space accepts; bigger ones are born old
  /// (they would dominate copy cost) or, above RegionBytes, humongous.
  size_t largeObjectBytes() const { return RegionBytes / 2; }
};

} // namespace memory
} // namespace jvm

#endif // JVM_MEMORY_MEMORYCONFIG_H
