//===- Region.h - Contiguous allocation regions ---------------------*- C++ -*-===//
///
/// \file
/// The storage granule of the memory manager: a contiguous chunk of raw
/// bytes objects are bump-allocated into. Regions carry no per-object
/// bookkeeping — `Top` is the bump pointer, and because every object
/// starts with a fixed header whose `allocationSize()` is derivable from
/// it, the collector can walk a region linearly from `Base` to `Top`
/// (how the old space is scanned for young references without write
/// barriers).
///
/// The allocator recycles standard-sized regions on a free list so a
/// steady-state scavenge (release from-space, grab to-space) touches no
/// system allocator at all. Humongous regions (one oversized object
/// each) are sized exactly and never cached.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_MEMORY_REGION_H
#define JVM_MEMORY_REGION_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jvm {
namespace memory {

struct Region {
  char *Base = nullptr;
  char *Top = nullptr; ///< bump pointer; objects live in [Base, Top)
  size_t Bytes = 0;

  char *end() { return Base + Bytes; }
  size_t used() const { return static_cast<size_t>(Top - Base); }
  bool contains(const void *P) const {
    return P >= Base && P < Base + Bytes;
  }
};

class RegionAllocator {
public:
  explicit RegionAllocator(size_t StandardBytes)
      : StandardBytes(StandardBytes) {}
  ~RegionAllocator();

  /// A fresh region of \p Bytes (>= StandardBytes for humongous
  /// allocations; exactly StandardBytes otherwise), Top reset to Base.
  Region *allocate(size_t Bytes);

  /// Returns \p R to the free list (standard size) or the system.
  void release(Region *R);

  size_t standardBytes() const { return StandardBytes; }
  uint64_t regionsInUse() const { return InUse; }
  uint64_t regionsAllocated() const { return TotalAllocated; }

  RegionAllocator(const RegionAllocator &) = delete;
  RegionAllocator &operator=(const RegionAllocator &) = delete;

private:
  const size_t StandardBytes;
  std::vector<Region *> FreeList; ///< standard-sized regions only
  uint64_t InUse = 0;
  uint64_t TotalAllocated = 0;
};

} // namespace memory
} // namespace jvm

#endif // JVM_MEMORY_REGION_H
