//===- CardTable.h - Remembered set over old-generation regions -----*- C++ -*-===//
///
/// \file
/// The card-table remembered set that replaces the PR 5 "scan the whole
/// old space every scavenge" design. Every old-generation region (bump
/// regions and humongous regions alike) is *tracked*: it gets a span of
/// card bytes, one per `CardBytes` of storage, plus a first-object
/// table so a dirty card can be decoded back into objects.
///
/// **Card semantics.** A card is dirtied for the card containing an
/// object's *header*, never for the card of the written slot. A dirty
/// card therefore means "some object starting in this card may hold a
/// young reference", and scanning it walks the objects that *start*
/// inside the card (found via the first-object table, then linearly by
/// `sizeInBytes()`), visiting all their slots — including slots that
/// physically live in later cards. This keeps the first-object table
/// trivially maintainable at allocation time and makes a card scan
/// self-contained: no backward search for a preceding object header.
///
/// **Why spans, not one flat table.** Regions are independent
/// `operator new` chunks, so there is no contiguous heap to index with
/// a single shifted pointer. Instead each tracked region owns its card
/// arrays and the barrier slow path binary-searches a sorted span index
/// — acceptable because old-to-young stores are the rare case the
/// inline barrier filter already screened for.
///
/// **Thread safety.** Card bytes and first-object entries are relaxed
/// atomics: parallel scavenge workers re-mark cards and record promoted
/// object starts concurrently. The span index itself is guarded by a
/// shared mutex (readers: mark/record/isDirty; writers: track/untrack,
/// which also happen mid-scavenge when promotion opens a new region).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_MEMORY_CARDTABLE_H
#define JVM_MEMORY_CARDTABLE_H

#include "memory/Region.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

namespace jvm {
namespace memory {

class CardTable {
public:
  explicit CardTable(size_t CardBytes);

  size_t cardBytes() const { return Bytes; }

  /// Starts tracking \p R as old-generation storage: allocates clean
  /// cards and an empty first-object table for it.
  void trackRegion(Region *R);

  /// Stops tracking \p R (humongous death at full GC).
  void untrackRegion(Region *R);

  /// Drops every span (full GC rebuilds the old space from scratch).
  void untrackAll();

  /// Records that an object was just bump-allocated at \p P inside a
  /// tracked region, so card scans know where decoding starts. Safe
  /// from concurrent scavenge workers (atomic min on the entry).
  void recordObjectStart(const char *P);

  /// Dirties the card containing the object header at \p P. Safe from
  /// any thread; counts a newly-dirtied card once.
  void mark(const char *P);

  /// True if the card containing the header at \p P is dirty (verifier
  /// and test introspection).
  bool isDirty(const char *P) const;

  /// One dirty card, decoded and ready to scan: walk objects starting
  /// at First while their start stays below both CardEnd and TopSnap.
  /// The card bit was already cleared; re-dirty via remark() if young
  /// references survive the scan.
  struct ScanItem {
    char *First;   ///< first object starting in the card
    char *CardEnd; ///< card limit: objects starting at/after it belong
                   ///< to the next card's scan
    char *TopSnap; ///< region Top at snapshot time; later allocations
                   ///< (in-scavenge promotions) are scanned as gray
                   ///< objects instead
    std::atomic<uint8_t> *CardByte; ///< for remark()
  };

  /// Collects every dirty card into \p Out, clearing the bits: the
  /// remembered set is consumed by the scavenge and rebuilt from what
  /// the scan (and the mutator, afterwards) finds still old-to-young.
  /// Serial (runs before the parallel copy phase).
  void takeDirtyCards(std::vector<ScanItem> &Out);

  /// Re-dirties a card taken by takeDirtyCards (young refs survived).
  static void remark(const ScanItem &I) {
    I.CardByte->store(1, std::memory_order_relaxed);
  }

  /// Cards dirtied since construction (mutator barriers + GC re-marks).
  uint64_t cardsDirtied() const {
    return Dirtied.load(std::memory_order_relaxed);
  }

  size_t trackedRegions() const;

  CardTable(const CardTable &) = delete;
  CardTable &operator=(const CardTable &) = delete;

private:
  /// Per-region card state. unique_ptr keeps Span storage stable while
  /// the index vector grows (scan items point into Cards mid-scavenge).
  struct Span {
    char *Base;
    Region *R;
    uint32_t NumCards;
    std::unique_ptr<std::atomic<uint8_t>[]> Cards;
    /// Byte offset of the first object *starting* in each card;
    /// NoObject if no object starts there.
    std::unique_ptr<std::atomic<uint32_t>[]> FirstObj;
  };
  static constexpr uint32_t NoObject = ~0u;

  Span *findSpan(const char *P);
  const Span *findSpan(const char *P) const {
    return const_cast<CardTable *>(this)->findSpan(P);
  }
  uint32_t cardIndex(const Span &S, const char *P) const {
    return static_cast<uint32_t>(static_cast<size_t>(P - S.Base) >> Shift);
  }

  const size_t Bytes;   ///< card granularity (power of two)
  const unsigned Shift; ///< log2(Bytes)
  /// Sorted by Base for binary search.
  std::vector<std::unique_ptr<Span>> Spans;
  mutable std::shared_mutex SpanLock;
  std::atomic<uint64_t> Dirtied{0};
};

} // namespace memory
} // namespace jvm

#endif // JVM_MEMORY_CARDTABLE_H
