//===- Object.h - Moving-safe heap object layout --------------------*- C++ -*-===//
///
/// \file
/// The heap cell layout of the region-based memory manager: a fixed
/// 24-byte header followed by the value slots *inline* in the same
/// allocation. The old layout (header + std::vector<Value>) pinned the
/// slot storage on the C++ heap, which a copying collector cannot move;
/// here one memcpy of `sizeInBytes()` bytes relocates the whole object,
/// and regions can be freed wholesale without running destructors
/// (everything is trivially copyable).
///
/// Header fields the collector uses:
///  - `Forward`: the forwarding pointer. Null outside a collection;
///    during one, non-null means "already evacuated, the copy lives
///    there". Cleared in the to-space copy at evacuation time.
///  - `Flags` bit 0: array bit. Bit 1: humongous (region-sized objects
///    that never move; full GC marks and sweeps them in place, bit 2 is
///    the mark).
///  - `Age`: scavenges survived; at `MemoryConfig::PromoteAge` the next
///    copy goes to the old space instead of a survivor region.
///
/// Root enumeration is *updating*: visitors receive `Value &` so the
/// collector can overwrite relocated references in place. Every
/// component holding references in C++-side storage (interpreter frames,
/// executor environments, the statics table, deopt scratch vectors)
/// registers a RootProvider and must visit each live slot as an lvalue.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_MEMORY_OBJECT_H
#define JVM_MEMORY_OBJECT_H

#include "runtime/Value.h"

#include <cstddef>
#include <cstdint>
#include <functional>

namespace jvm {

namespace memory {
class MemoryManager;
} // namespace memory

/// A heap cell: class instance or array. Always allocated by the memory
/// manager inside a region; never constructed on the C++ heap.
class HeapObject {
public:
  ClassId objectClass() const { return Cls; }
  bool isArray() const { return Flags & FlagArray; }
  ValueType elementType() const { return ElemTy; }

  unsigned numSlots() const { return NumSlots; }
  int64_t length() const {
    assert(isArray() && "length of a non-array");
    return static_cast<int64_t>(NumSlots);
  }

  const Value &slot(unsigned I) const {
    assert(I < NumSlots && "slot index out of range");
    return slots()[I];
  }

  void setSlot(unsigned I, const Value &V) {
    assert(I < NumSlots && "slot index out of range");
    slots()[I] = V;
  }

  /// Recursive monitor state (single-threaded VM: a counter).
  int lockCount() const { return LockCount; }

  /// The object's real footprint: the 24-byte header plus 16 bytes per
  /// slot — exactly the bytes the allocator bumped for it, and exactly
  /// what the allocation-bytes metric accounts.
  size_t sizeInBytes() const { return allocationSize(NumSlots); }

  /// Bytes a \p NumSlots-slot object occupies in a region. The header is
  /// 8-aligned and Value is 16 bytes, so the sum needs no padding.
  static size_t allocationSize(uint32_t NumSlots) {
    return sizeof(HeapObject) + size_t(NumSlots) * sizeof(Value);
  }

  // Monitor transitions are counted by the Runtime, which owns the
  // metrics; see Runtime::monitorEnter/monitorExit.
  void rawLock() { ++LockCount; }
  void rawUnlock() {
    assert(LockCount > 0 && "monitor exit without matching enter");
    --LockCount;
  }

private:
  friend class memory::MemoryManager;
  /// The native tier bakes header offsets (NumSlots, inline slot base)
  /// into machine code; jit/NativeLayout.h asserts what it assumes.
  friend struct NativeLayout;

  enum : uint8_t {
    FlagArray = 1u << 0,
    FlagHumongous = 1u << 1,
    FlagMarked = 1u << 2, ///< full-GC mark; humongous objects only
    FlagOld = 1u << 3,    ///< lives in the old space (promoted or born old)
  };

  /// The inline slot array starts right after the header.
  Value *slots() { return reinterpret_cast<Value *>(this + 1); }
  const Value *slots() const {
    return reinterpret_cast<const Value *>(this + 1);
  }

  HeapObject() = delete; ///< placement-initialized by the manager only

  HeapObject *Forward;  ///< forwarding pointer; null outside collections
  ClassId Cls;
  uint32_t NumSlots;
  int32_t LockCount;
  ValueType ElemTy;
  uint8_t Flags;
  uint8_t Age;
  uint8_t Pad = 0;
};

static_assert(sizeof(HeapObject) == 24, "object header grew");
static_assert(alignof(HeapObject) <= alignof(Value),
              "slots would need padding after the header");

/// Visits one GC root *slot*. The reference is live storage: a moving
/// collection overwrites it with the relocated address.
using RootVisitor = std::function<void(Value &)>;

/// Enumerates GC roots by invoking the visitor on every root slot.
using RootProvider = std::function<void(const RootVisitor &)>;

} // namespace jvm

#endif // JVM_MEMORY_OBJECT_H
