//===- MemoryConfig.cpp - Memory-manager tuning knobs -------------------------===//

#include "memory/MemoryConfig.h"

#include "support/Env.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace jvm::memory;

namespace {

/// Parses "4096", "256k", "8m", "1g" (case-insensitive suffix). Returns
/// false on malformed input (which warns and keeps the default).
bool parseSize(const char *S, size_t &Out) {
  char *End = nullptr;
  unsigned long long N = std::strtoull(S, &End, 10);
  if (End == S)
    return false;
  size_t Mult = 1;
  if (*End == 'k' || *End == 'K')
    Mult = 1ull << 10, ++End;
  else if (*End == 'm' || *End == 'M')
    Mult = 1ull << 20, ++End;
  else if (*End == 'g' || *End == 'G')
    Mult = 1ull << 30, ++End;
  if (*End != '\0')
    return false;
  Out = static_cast<size_t>(N * Mult);
  return true;
}

void readSizeValue(const char *Name, const char *E, size_t &Out) {
  if (!E || !*E)
    return;
  size_t V;
  if (parseSize(E, V))
    Out = V;
  else
    std::fprintf(stderr, "warning: malformed %s='%s' ignored\n", Name, E);
}

} // namespace

MemoryConfig MemoryConfig::fromSnapshot(const jvm::EnvSnapshot &Env) {
  MemoryConfig C;
  readSizeValue("JVM_HEAP_REGION", Env.HeapRegion, C.RegionBytes);
  readSizeValue("JVM_HEAP_YOUNG", Env.HeapYoung, C.YoungBytes);
  if (C.RegionBytes < 4096)
    C.RegionBytes = 4096;
  if (C.YoungBytes < 2 * C.RegionBytes)
    C.YoungBytes = 2 * C.RegionBytes;
  if (jvm::EnvSnapshot::isOn(Env.GcStress))
    C.StressGc = true;

  readSizeValue("JVM_GC_CARD", Env.GcCard, C.CardBytes);
  if (C.CardBytes < 64)
    C.CardBytes = 64;
  if (C.CardBytes > C.RegionBytes)
    C.CardBytes = C.RegionBytes;
  // Round down to a power of two (card index is a shift).
  while (C.CardBytes & (C.CardBytes - 1))
    C.CardBytes &= C.CardBytes - 1;

  if (Env.GcWorkers && *Env.GcWorkers) {
    unsigned long W = std::strtoul(Env.GcWorkers, nullptr, 10);
    C.GcWorkers = W > 16 ? 16 : static_cast<unsigned>(W);
  }
  if (Env.GcPauseBudget && *Env.GcPauseBudget)
    C.PauseBudgetUs = std::strtoull(Env.GcPauseBudget, nullptr, 10);
  if (jvm::EnvSnapshot::isOn(Env.VerifyHeap))
    C.VerifyHeap = true;
  if (jvm::EnvSnapshot::isOn(Env.GcScanOld))
    C.ScanOldFallback = true;
  return C;
}

MemoryConfig MemoryConfig::fromEnvironment() {
  return fromSnapshot(jvm::EnvSnapshot::process());
}
