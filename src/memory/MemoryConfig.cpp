//===- MemoryConfig.cpp - Memory-manager tuning knobs -------------------------===//

#include "memory/MemoryConfig.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace jvm::memory;

namespace {

/// Parses "4096", "256k", "8m", "1g" (case-insensitive suffix). Returns
/// false on malformed input (which warns and keeps the default).
bool parseSize(const char *S, size_t &Out) {
  char *End = nullptr;
  unsigned long long N = std::strtoull(S, &End, 10);
  if (End == S)
    return false;
  size_t Mult = 1;
  if (*End == 'k' || *End == 'K')
    Mult = 1ull << 10, ++End;
  else if (*End == 'm' || *End == 'M')
    Mult = 1ull << 20, ++End;
  else if (*End == 'g' || *End == 'G')
    Mult = 1ull << 30, ++End;
  if (*End != '\0')
    return false;
  Out = static_cast<size_t>(N * Mult);
  return true;
}

void readSizeEnv(const char *Name, size_t &Out) {
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return;
  size_t V;
  if (parseSize(E, V))
    Out = V;
  else
    std::fprintf(stderr, "warning: malformed %s='%s' ignored\n", Name, E);
}

} // namespace

MemoryConfig MemoryConfig::fromEnvironment() {
  MemoryConfig C;
  readSizeEnv("JVM_HEAP_REGION", C.RegionBytes);
  readSizeEnv("JVM_HEAP_YOUNG", C.YoungBytes);
  if (C.RegionBytes < 4096)
    C.RegionBytes = 4096;
  if (C.YoungBytes < 2 * C.RegionBytes)
    C.YoungBytes = 2 * C.RegionBytes;
  if (const char *E = std::getenv("JVM_GC_STRESS"); E && *E && *E != '0')
    C.StressGc = true;
  return C;
}
