//===- Region.cpp - Contiguous allocation regions -----------------------------===//

#include "memory/Region.h"

#include <cassert>
#include <new>

using namespace jvm::memory;

RegionAllocator::~RegionAllocator() {
  assert(InUse == 0 && "regions leaked past the manager's destructor");
  for (Region *R : FreeList) {
    ::operator delete(R->Base);
    delete R;
  }
}

Region *RegionAllocator::allocate(size_t Bytes) {
  assert(Bytes >= StandardBytes && "undersized region request");
  ++InUse;
  if (Bytes == StandardBytes && !FreeList.empty()) {
    Region *R = FreeList.back();
    FreeList.pop_back();
    R->Top = R->Base;
    return R;
  }
  ++TotalAllocated;
  Region *R = new Region();
  // operator new returns max_align_t-aligned storage, enough for the
  // 8-aligned object headers bumped into it.
  R->Base = static_cast<char *>(::operator new(Bytes));
  R->Top = R->Base;
  R->Bytes = Bytes;
  return R;
}

void RegionAllocator::release(Region *R) {
  assert(InUse > 0 && "release without allocate");
  --InUse;
  if (R->Bytes == StandardBytes) {
    FreeList.push_back(R);
    return;
  }
  ::operator delete(R->Base);
  delete R;
}
