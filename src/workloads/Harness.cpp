//===- Harness.cpp - Benchmark measurement and Table 1 formatting -------------===//

#include "workloads/Harness.h"

#include "jit/NativeCode.h"
#include "support/Env.h"
#include "support/ErrorHandling.h"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace jvm;
using namespace jvm::workloads;

HarnessOptions HarnessOptions::fromEnvironment() {
  const EnvSnapshot &Env = EnvSnapshot::process();
  HarnessOptions O;
  if (const char *E = Env.BenchWarmup)
    O.WarmupIters = std::atoi(E);
  if (const char *E = Env.BenchMeasure)
    O.MeasureIters = std::atoi(E);
  if (const char *E = Env.BenchRepeats)
    O.Repeats = std::atoi(E);
  return O;
}

RowMeasurement jvm::workloads::measureRow(const BenchmarkSet &Set,
                                          const BenchmarkRow &Row,
                                          EscapeAnalysisMode Mode,
                                          const HarnessOptions &Opts) {
  VMOptions VO = Opts.VM;
  VO.Compiler.EAMode = Mode;
  VirtualMachine VM(Set.WP.P, VO);
  VM.call(Set.WP.Setup, {});

  RowMeasurement M;
  std::vector<Value> Args{Value::makeInt(Row.Scale)};
  for (unsigned I = 0; I != Opts.WarmupIters; ++I)
    VM.call(Row.Driver, Args);
  // Warmup ends at peak: everything the workload made hot is installed
  // before the measured phase, whatever CompilerThreads is.
  VM.waitForCompilerIdle();

  // The escape-analysis decisions are made at compile time — i.e. during
  // warmup — so they are harvested before the reset; anything compiled
  // during the measured window (deopt-triggered recompiles) adds its
  // share below. Everything else (runtime counters, JitMetrics, the
  // registry's histograms, per-call compiled/interpreted op counts)
  // resets so the measured window carries no warmup noise.
  M.Escape += VM.jitMetrics().EscapeStats;
  // Speculation activity is compile-time work too: harvest the warmup
  // window before the reset, the measured window after it (below).
  M.SpeshOn = VO.Compiler.EnableSpesh;
  M.SpeshPlans += VM.isolate().speshMetrics().Plans;
  M.SpeshGuardFailures += VM.isolate().speshMetrics().GuardFailures;
  M.OsrEntries += VM.isolate().speshMetrics().OsrEntries;
  M.OsrEscape += VM.isolate().speshMetrics().OsrEscapeStats;
  VM.resetMetrics();
  double BestSeconds = 0;
  unsigned Repeats = Opts.Repeats ? Opts.Repeats : 1;
  for (unsigned R = 0; R != Repeats; ++R) {
    auto Start = std::chrono::steady_clock::now();
    int64_t Sum = 0;
    for (unsigned I = 0; I != Opts.MeasureIters; ++I)
      Sum += VM.call(Row.Driver, Args).asInt();
    auto End = std::chrono::steady_clock::now();
    double Seconds = std::chrono::duration<double>(End - Start).count();
    if (R == 0 || Seconds < BestSeconds)
      BestSeconds = Seconds;
    M.Checksum = Sum;
  }
  double Seconds = BestSeconds;
  // Quiesce before reading metrics: recompiles triggered by measured-phase
  // deopts may still be in flight.
  VM.waitForCompilerIdle();
  const Runtime &RT = VM.runtime();
  double Iters = static_cast<double>(Opts.MeasureIters) * Repeats;
  M.KBPerIter = RT.heap().allocatedBytes() / 1024.0 / Iters;
  M.KAllocsPerIter = RT.heap().allocationCount() / 1000.0 / Iters;
  M.MonitorOpsPerIter = RT.metrics().MonitorOps / Iters;
  M.ItersPerMinute =
      Seconds > 0 ? Opts.MeasureIters * 60.0 / Seconds : 0;
  M.Deopts = RT.metrics().Deopts;
  M.Scavenges = RT.heap().scavenges();
  M.FullGcs = RT.heap().fullGcs();
  M.BytesPromoted = RT.heap().bytesPromoted();
  M.GcPauseP50Ns = RT.heap().scavengePauses().percentileUpperBound(0.5);
  M.GcPauseP99Ns = RT.heap().scavengePauses().percentileUpperBound(0.99);
  // Measured-window values only: recompiles forced by measured-phase
  // deopts, not the warmup's initial compilations.
  M.Compilations = VM.jitMetrics().Compilations;
  M.Invalidations = VM.jitMetrics().Invalidations;
  M.Escape += VM.jitMetrics().EscapeStats;
  M.SpeshPlans += VM.isolate().speshMetrics().Plans;
  M.SpeshGuardFailures += VM.isolate().speshMetrics().GuardFailures;
  M.OsrEntries += VM.isolate().speshMetrics().OsrEntries;
  M.OsrEscape += VM.isolate().speshMetrics().OsrEscapeStats;
  if (EnvSnapshot::process().BenchDiag) {
    // The unified registry is the diagnostic surface: one coherent table
    // instead of a hand-picked fprintf subset.
    std::fprintf(stderr, "  [diag] %s / %s (measured window)\n%s",
                 Row.Name.c_str(), escapeAnalysisModeName(Mode),
                 VM.dumpMetricsText().c_str());
  }
  return M;
}

std::vector<RowComparison>
jvm::workloads::runSuite(const BenchmarkSet &Set, const std::string &Suite,
                         EscapeAnalysisMode Base, EscapeAnalysisMode Mode,
                         const HarnessOptions &Opts) {
  std::vector<RowComparison> Result;
  for (const BenchmarkRow &Row : Set.Rows) {
    if (Row.Suite != Suite)
      continue;
    RowComparison C;
    C.Row = &Row;
    C.Without = measureRow(Set, Row, Base, Opts);
    C.With = measureRow(Set, Row, Mode, Opts);
    if (C.Without.Checksum != C.With.Checksum)
      jvm_unreachable("benchmark checksum differs between EA modes");
    Result.push_back(C);
    std::fprintf(stderr, "  [measured] %-12s done\n", Row.Name.c_str());
  }
  return Result;
}

std::vector<RowComparison>
jvm::workloads::runSuiteSpesh(const BenchmarkSet &Set,
                              const std::string &Suite,
                              EscapeAnalysisMode Mode,
                              const HarnessOptions &Opts) {
  std::vector<RowComparison> Result;
  HarnessOptions Off = Opts;
  Off.VM.Compiler.EnableSpesh = false;
  HarnessOptions On = Opts;
  On.VM.Compiler.EnableSpesh = true;
  for (const BenchmarkRow &Row : Set.Rows) {
    if (Row.Suite != Suite)
      continue;
    RowComparison C;
    C.Row = &Row;
    C.Without = measureRow(Set, Row, Mode, Off);
    C.With = measureRow(Set, Row, Mode, On);
    // Speculation is an optimization, never a semantic: any checksum
    // divergence means a guard resumed into the wrong state.
    if (C.Without.Checksum != C.With.Checksum)
      jvm_unreachable("benchmark checksum differs with speculation on");
    Result.push_back(C);
    std::fprintf(stderr, "  [measured] %-12s spesh on/off done\n",
                 Row.Name.c_str());
  }
  return Result;
}

std::vector<TierComparison>
jvm::workloads::runSuiteTiers(const BenchmarkSet &Set,
                              const std::string &Suite,
                              EscapeAnalysisMode Mode,
                              const HarnessOptions &Opts) {
  HarnessOptions GraphOpts = Opts;
  GraphOpts.VM.Exec = ExecMode::Graph;
  HarnessOptions LinearOpts = Opts;
  LinearOpts.VM.Exec = ExecMode::Linear;
  // Measuring the linear tier with the native tier disabled keeps the
  // comparison honest: both columns pay identical compile costs and the
  // only variable is which installed artifact executes.
  LinearOpts.VM.EnableNativeTier = false;
  HarnessOptions NativeOpts = Opts;
  NativeOpts.VM.Exec = ExecMode::Native;
  const bool HasNative = nativeBackendSupported();
  std::vector<TierComparison> Result;
  for (const BenchmarkRow &Row : Set.Rows) {
    if (Row.Suite != Suite)
      continue;
    TierComparison C;
    C.Row = &Row;
    C.HasNative = HasNative;
    C.Graph = measureRow(Set, Row, Mode, GraphOpts);
    C.Linear = measureRow(Set, Row, Mode, LinearOpts);
    if (C.Graph.Checksum != C.Linear.Checksum)
      jvm_unreachable("benchmark checksum differs between execution tiers");
    if (HasNative) {
      C.Native = measureRow(Set, Row, Mode, NativeOpts);
      if (C.Native.Checksum != C.Linear.Checksum)
        jvm_unreachable("benchmark checksum differs between execution tiers");
    }
    Result.push_back(C);
    std::fprintf(stderr, "  [tiers]    %-12s done\n", Row.Name.c_str());
  }
  return Result;
}

std::string
jvm::workloads::formatTierTable(const std::vector<TierComparison> &Rows) {
  const bool HasNative = !Rows.empty() && Rows.front().HasNative;
  std::ostringstream OS;
  char Buf[192];
  unsigned Width = HasNative ? 59 : 48;
  std::snprintf(Buf, sizeof(Buf), "%-14s | %*s\n", "execution tier",
                Width - 17, "Iterations / Minute");
  OS << Buf;
  if (HasNative)
    std::snprintf(Buf, sizeof(Buf), "%-14s | %10s %10s %10s %8s\n", "",
                  "graph", "linear", "native", "nat/lin");
  else
    std::snprintf(Buf, sizeof(Buf), "%-14s | %10s %10s %8s\n", "",
                  "graph", "linear", "lin/gr");
  OS << Buf;
  OS << std::string(Width, '-') << '\n';
  double SumLogSpeed = 0;
  unsigned NumSpeed = 0;
  for (const TierComparison &C : Rows) {
    if (HasNative) {
      double Ratio = C.Linear.ItersPerMinute > 0
                         ? C.Native.ItersPerMinute / C.Linear.ItersPerMinute
                         : 0;
      if (Ratio > 0) {
        SumLogSpeed += std::log(Ratio);
        ++NumSpeed;
      }
      std::snprintf(Buf, sizeof(Buf),
                    "%-14s | %10.1f %10.1f %10.1f %7.2fx\n",
                    C.Row->Name.c_str(), C.Graph.ItersPerMinute,
                    C.Linear.ItersPerMinute, C.Native.ItersPerMinute, Ratio);
    } else {
      double Ratio = C.Graph.ItersPerMinute > 0
                         ? C.Linear.ItersPerMinute / C.Graph.ItersPerMinute
                         : 0;
      if (Ratio > 0) {
        SumLogSpeed += std::log(Ratio);
        ++NumSpeed;
      }
      std::snprintf(Buf, sizeof(Buf), "%-14s | %10.1f %10.1f %7.2fx\n",
                    C.Row->Name.c_str(), C.Graph.ItersPerMinute,
                    C.Linear.ItersPerMinute, Ratio);
    }
    OS << Buf;
  }
  if (NumSpeed) {
    OS << std::string(Width, '-') << '\n';
    std::snprintf(Buf, sizeof(Buf), "%-14s | %*s %7.2fx\n", "geomean",
                  Width - 26, HasNative ? "(native over linear)"
                                        : "(linear over graph)",
                  std::exp(SumLogSpeed / NumSpeed));
    OS << Buf;
  }
  return OS.str();
}

std::string
jvm::workloads::formatSpeshTable(const std::vector<RowComparison> &Rows) {
  std::ostringstream OS;
  char Buf[224];
  std::snprintf(Buf, sizeof(Buf), "%-14s | %28s | %21s | %24s\n",
                "speculation", "Iterations / Minute",
                "Materialize Sites", "Speculation Activity");
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "%-14s | %9s %9s %8s | %10s %10s | %7s %7s %8s\n", "", "off",
                "on", "delta", "off", "on", "plans", "fails", "osr");
  OS << Buf;
  OS << std::string(96, '-') << '\n';
  for (const RowComparison &C : Rows) {
    // Method-entry compiles only (Escape minus the OSR loop versions'
    // share): the off column has no OSR compiles, so including them
    // would charge speculation for compiles the baseline never ran.
    std::snprintf(Buf, sizeof(Buf),
                  "%-14s | %9.1f %9.1f %+7.1f%% | %10llu %10llu | "
                  "%7llu %7llu %8llu\n",
                  C.Row->Name.c_str(), C.Without.ItersPerMinute,
                  C.With.ItersPerMinute,
                  percentDelta(C.Without.ItersPerMinute,
                               C.With.ItersPerMinute),
                  (unsigned long long)(C.Without.Escape.MaterializeSites -
                                       C.Without.OsrEscape.MaterializeSites),
                  (unsigned long long)(C.With.Escape.MaterializeSites -
                                       C.With.OsrEscape.MaterializeSites),
                  (unsigned long long)C.With.SpeshPlans,
                  (unsigned long long)C.With.SpeshGuardFailures,
                  (unsigned long long)C.With.OsrEntries);
    OS << Buf;
  }
  return OS.str();
}

std::string jvm::workloads::table1JsonPath() {
  if (const char *E = EnvSnapshot::process().BenchJson)
    return E;
  return "BENCH_table1.json";
}

namespace {

/// One JSON record; \p Ea and \p Exec say which configuration produced
/// \p M.
std::string jsonRecord(const std::string &Suite, const std::string &Name,
                       const char *Ea, const char *Exec,
                       const RowMeasurement &M) {
  char Buf[768];
  std::snprintf(Buf, sizeof(Buf),
                "{\"suite\": \"%s\", \"benchmark\": \"%s\", "
                "\"ea\": \"%s\", \"exec_mode\": \"%s\", "
                "\"mb_per_iter\": %.6f, \"allocs_per_iter\": %.1f, "
                "\"iters_per_min\": %.2f, \"monitor_ops_per_iter\": %.1f, "
                "\"deopts\": %llu, "
                "\"scavenges\": %llu, \"full_gcs\": %llu, "
                "\"bytes_promoted\": %llu, "
                "\"gc_pause_p50_ns\": %llu, \"gc_pause_p99_ns\": %llu, "
                "\"spesh\": %s, \"materialize_sites\": %llu, "
                "\"osr_materialize_sites\": %llu, "
                "\"spesh_plans\": %llu, \"guard_failures\": %llu, "
                "\"osr_entries\": %llu}",
                Suite.c_str(), Name.c_str(), Ea, Exec,
                M.KBPerIter / 1024.0, M.KAllocsPerIter * 1000.0,
                M.ItersPerMinute, M.MonitorOpsPerIter,
                (unsigned long long)M.Deopts,
                (unsigned long long)M.Scavenges,
                (unsigned long long)M.FullGcs,
                (unsigned long long)M.BytesPromoted,
                (unsigned long long)M.GcPauseP50Ns,
                (unsigned long long)M.GcPauseP99Ns,
                M.SpeshOn ? "true" : "false",
                (unsigned long long)(M.Escape.MaterializeSites -
                                     M.OsrEscape.MaterializeSites),
                (unsigned long long)M.OsrEscape.MaterializeSites,
                (unsigned long long)M.SpeshPlans,
                (unsigned long long)M.SpeshGuardFailures,
                (unsigned long long)M.OsrEntries);
  return Buf;
}

} // namespace

void jvm::workloads::appendTable1Json(const std::string &Suite,
                                      const std::vector<RowComparison> &PeaRows,
                                      ExecMode PeaExec,
                                      const std::vector<TierComparison> &TierRows,
                                      const std::vector<RowComparison> &SpeshRows) {
  std::vector<std::string> Records;
  const char *Exec = execModeName(PeaExec);
  for (const RowComparison &C : PeaRows) {
    Records.push_back(jsonRecord(Suite, C.Row->Name, "none", Exec, C.Without));
    Records.push_back(jsonRecord(Suite, C.Row->Name, "partial", Exec, C.With));
  }
  for (const TierComparison &C : TierRows) {
    Records.push_back(
        jsonRecord(Suite, C.Row->Name, "partial", "graph", C.Graph));
    Records.push_back(
        jsonRecord(Suite, C.Row->Name, "partial", "linear", C.Linear));
    if (C.HasNative)
      Records.push_back(
          jsonRecord(Suite, C.Row->Name, "partial", "native", C.Native));
  }
  // Speculation off/on pairs (both PEA partial): the "spesh" field
  // inside each record distinguishes the two columns.
  for (const RowComparison &C : SpeshRows) {
    Records.push_back(
        jsonRecord(Suite, C.Row->Name, "partial", Exec, C.Without));
    Records.push_back(jsonRecord(Suite, C.Row->Name, "partial", Exec, C.With));
  }

  // Keep the file one valid JSON array across binaries: splice new
  // records in front of the closing bracket of any existing array.
  std::string Path = table1JsonPath();
  std::string Existing;
  if (FILE *In = std::fopen(Path.c_str(), "rb")) {
    char Chunk[4096];
    size_t N;
    while ((N = std::fread(Chunk, 1, sizeof(Chunk), In)) > 0)
      Existing.append(Chunk, N);
    std::fclose(In);
  }
  std::string Inner;
  size_t Open = Existing.find('['), Close = Existing.rfind(']');
  if (Open != std::string::npos && Close != std::string::npos && Open < Close) {
    Inner = Existing.substr(Open + 1, Close - Open - 1);
    while (!Inner.empty() && (std::isspace((unsigned char)Inner.back()) ||
                              Inner.back() == ','))
      Inner.pop_back();
  }

  FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(Out, "[");
  const char *Sep = "\n";
  if (!Inner.empty()) {
    std::fprintf(Out, "%s", Inner.c_str());
    Sep = ",\n";
  }
  for (const std::string &R : Records) {
    std::fprintf(Out, "%s%s", Sep, R.c_str());
    Sep = ",\n";
  }
  std::fprintf(Out, "\n]\n");
  std::fclose(Out);
}

double jvm::workloads::percentDelta(double Without, double With) {
  if (Without == 0)
    return 0;
  return (With - Without) / Without * 100.0;
}

std::string
jvm::workloads::formatTable1Block(const std::string &Title,
                                  const std::vector<RowComparison> &Rows) {
  std::ostringstream OS;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%-14s | %27s | %27s | %27s\n", Title.c_str(),
                "KB / Iteration", "kAllocs / Iteration",
                "Iterations / Minute");
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "%-14s | %9s %9s %7s | %9s %9s %7s | %9s %9s %7s\n", "",
                "without", "with", "delta", "without", "with", "delta",
                "without", "with", "speedup");
  OS << Buf;
  OS << std::string(104, '-') << '\n';

  double SumDBytes = 0, SumDAllocs = 0, SumDSpeed = 0;
  for (const RowComparison &C : Rows) {
    SumDBytes += percentDelta(C.Without.KBPerIter, C.With.KBPerIter);
    SumDAllocs +=
        percentDelta(C.Without.KAllocsPerIter, C.With.KAllocsPerIter);
    SumDSpeed +=
        percentDelta(C.Without.ItersPerMinute, C.With.ItersPerMinute);
    if (C.Row->OmittedInPaper)
      continue; // Listed only in the average, as in the paper.
    std::snprintf(
        Buf, sizeof(Buf),
        "%-14s | %9.1f %9.1f %+6.1f%% | %9.2f %9.2f %+6.1f%% | %9.1f %9.1f %+6.1f%%\n",
        C.Row->Name.c_str(), C.Without.KBPerIter, C.With.KBPerIter,
        percentDelta(C.Without.KBPerIter, C.With.KBPerIter),
        C.Without.KAllocsPerIter, C.With.KAllocsPerIter,
        percentDelta(C.Without.KAllocsPerIter, C.With.KAllocsPerIter),
        C.Without.ItersPerMinute, C.With.ItersPerMinute,
        percentDelta(C.Without.ItersPerMinute, C.With.ItersPerMinute));
    OS << Buf;
  }
  if (!Rows.empty()) {
    OS << std::string(104, '-') << '\n';
    std::snprintf(Buf, sizeof(Buf),
                  "%-14s | %19s %+6.1f%% | %19s %+6.1f%% | %19s %+6.1f%%\n",
                  "average", "", SumDBytes / Rows.size(), "",
                  SumDAllocs / Rows.size(), "", SumDSpeed / Rows.size());
    OS << Buf;
  }
  return OS.str();
}

std::string
jvm::workloads::formatLockTable(const std::vector<RowComparison> &Rows) {
  std::ostringstream OS;
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf), "%-14s | %14s | %14s | %9s\n", "benchmark",
                "locks w/o EA", "locks w/ PEA", "delta");
  OS << Buf;
  OS << std::string(62, '-') << '\n';
  for (const RowComparison &C : Rows) {
    std::snprintf(Buf, sizeof(Buf), "%-14s | %14.0f | %14.0f | %+8.1f%%\n",
                  C.Row->Name.c_str(), C.Without.MonitorOpsPerIter,
                  C.With.MonitorOpsPerIter,
                  percentDelta(C.Without.MonitorOpsPerIter,
                               C.With.MonitorOpsPerIter));
    OS << Buf;
  }
  return OS.str();
}
