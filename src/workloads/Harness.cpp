//===- Harness.cpp - Benchmark measurement and Table 1 formatting -------------===//

#include "workloads/Harness.h"

#include "support/ErrorHandling.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace jvm;
using namespace jvm::workloads;

HarnessOptions HarnessOptions::fromEnvironment() {
  HarnessOptions O;
  if (const char *E = std::getenv("JVM_BENCH_WARMUP"))
    O.WarmupIters = std::atoi(E);
  if (const char *E = std::getenv("JVM_BENCH_MEASURE"))
    O.MeasureIters = std::atoi(E);
  if (const char *E = std::getenv("JVM_BENCH_REPEATS"))
    O.Repeats = std::atoi(E);
  return O;
}

RowMeasurement jvm::workloads::measureRow(const BenchmarkSet &Set,
                                          const BenchmarkRow &Row,
                                          EscapeAnalysisMode Mode,
                                          const HarnessOptions &Opts) {
  VMOptions VO = Opts.VM;
  VO.Compiler.EAMode = Mode;
  VirtualMachine VM(Set.WP.P, VO);
  VM.call(Set.WP.Setup, {});

  RowMeasurement M;
  std::vector<Value> Args{Value::makeInt(Row.Scale)};
  for (unsigned I = 0; I != Opts.WarmupIters; ++I)
    VM.call(Row.Driver, Args);
  // Warmup ends at peak: everything the workload made hot is installed
  // before the measured phase, whatever CompilerThreads is.
  VM.waitForCompilerIdle();

  VM.runtime().resetMetrics();
  double BestSeconds = 0;
  unsigned Repeats = Opts.Repeats ? Opts.Repeats : 1;
  for (unsigned R = 0; R != Repeats; ++R) {
    auto Start = std::chrono::steady_clock::now();
    int64_t Sum = 0;
    for (unsigned I = 0; I != Opts.MeasureIters; ++I)
      Sum += VM.call(Row.Driver, Args).asInt();
    auto End = std::chrono::steady_clock::now();
    double Seconds = std::chrono::duration<double>(End - Start).count();
    if (R == 0 || Seconds < BestSeconds)
      BestSeconds = Seconds;
    M.Checksum = Sum;
  }
  double Seconds = BestSeconds;
  // Quiesce before reading metrics: recompiles triggered by measured-phase
  // deopts may still be in flight.
  VM.waitForCompilerIdle();
  const Runtime &RT = VM.runtime();
  double Iters = static_cast<double>(Opts.MeasureIters) * Repeats;
  M.KBPerIter = RT.heap().allocatedBytes() / 1024.0 / Iters;
  M.KAllocsPerIter = RT.heap().allocationCount() / 1000.0 / Iters;
  M.MonitorOpsPerIter = RT.metrics().MonitorOps / Iters;
  M.ItersPerMinute =
      Seconds > 0 ? Opts.MeasureIters * 60.0 / Seconds : 0;
  M.Deopts = RT.metrics().Deopts;
  M.Compilations = VM.jitMetrics().Compilations;
  M.Invalidations = VM.jitMetrics().Invalidations;
  M.Escape += VM.jitMetrics().EscapeStats;
  if (std::getenv("JVM_BENCH_DIAG"))
    std::fprintf(stderr,
                 "  [diag] %-12s %-22s deopts=%llu compiles=%llu "
                 "invalidations=%llu gcs=%llu interpOps=%llu "
                 "compiledOps=%llu\n",
                 Row.Name.c_str(), escapeAnalysisModeName(Mode),
                 (unsigned long long)M.Deopts,
                 (unsigned long long)M.Compilations,
                 (unsigned long long)M.Invalidations,
                 (unsigned long long)RT.heap().gcRuns(),
                 (unsigned long long)RT.metrics().InterpretedOps,
                 (unsigned long long)RT.metrics().CompiledOps);
  return M;
}

std::vector<RowComparison>
jvm::workloads::runSuite(const BenchmarkSet &Set, const std::string &Suite,
                         EscapeAnalysisMode Base, EscapeAnalysisMode Mode,
                         const HarnessOptions &Opts) {
  std::vector<RowComparison> Result;
  for (const BenchmarkRow &Row : Set.Rows) {
    if (Row.Suite != Suite)
      continue;
    RowComparison C;
    C.Row = &Row;
    C.Without = measureRow(Set, Row, Base, Opts);
    C.With = measureRow(Set, Row, Mode, Opts);
    if (C.Without.Checksum != C.With.Checksum)
      jvm_unreachable("benchmark checksum differs between EA modes");
    Result.push_back(C);
    std::fprintf(stderr, "  [measured] %-12s done\n", Row.Name.c_str());
  }
  return Result;
}

double jvm::workloads::percentDelta(double Without, double With) {
  if (Without == 0)
    return 0;
  return (With - Without) / Without * 100.0;
}

std::string
jvm::workloads::formatTable1Block(const std::string &Title,
                                  const std::vector<RowComparison> &Rows) {
  std::ostringstream OS;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%-14s | %27s | %27s | %27s\n", Title.c_str(),
                "KB / Iteration", "kAllocs / Iteration",
                "Iterations / Minute");
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "%-14s | %9s %9s %7s | %9s %9s %7s | %9s %9s %7s\n", "",
                "without", "with", "delta", "without", "with", "delta",
                "without", "with", "speedup");
  OS << Buf;
  OS << std::string(104, '-') << '\n';

  double SumDBytes = 0, SumDAllocs = 0, SumDSpeed = 0;
  for (const RowComparison &C : Rows) {
    SumDBytes += percentDelta(C.Without.KBPerIter, C.With.KBPerIter);
    SumDAllocs +=
        percentDelta(C.Without.KAllocsPerIter, C.With.KAllocsPerIter);
    SumDSpeed +=
        percentDelta(C.Without.ItersPerMinute, C.With.ItersPerMinute);
    if (C.Row->OmittedInPaper)
      continue; // Listed only in the average, as in the paper.
    std::snprintf(
        Buf, sizeof(Buf),
        "%-14s | %9.1f %9.1f %+6.1f%% | %9.2f %9.2f %+6.1f%% | %9.1f %9.1f %+6.1f%%\n",
        C.Row->Name.c_str(), C.Without.KBPerIter, C.With.KBPerIter,
        percentDelta(C.Without.KBPerIter, C.With.KBPerIter),
        C.Without.KAllocsPerIter, C.With.KAllocsPerIter,
        percentDelta(C.Without.KAllocsPerIter, C.With.KAllocsPerIter),
        C.Without.ItersPerMinute, C.With.ItersPerMinute,
        percentDelta(C.Without.ItersPerMinute, C.With.ItersPerMinute));
    OS << Buf;
  }
  if (!Rows.empty()) {
    OS << std::string(104, '-') << '\n';
    std::snprintf(Buf, sizeof(Buf),
                  "%-14s | %19s %+6.1f%% | %19s %+6.1f%% | %19s %+6.1f%%\n",
                  "average", "", SumDBytes / Rows.size(), "",
                  SumDAllocs / Rows.size(), "", SumDSpeed / Rows.size());
    OS << Buf;
  }
  return OS.str();
}

std::string
jvm::workloads::formatLockTable(const std::vector<RowComparison> &Rows) {
  std::ostringstream OS;
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf), "%-14s | %14s | %14s | %9s\n", "benchmark",
                "locks w/o EA", "locks w/ PEA", "delta");
  OS << Buf;
  OS << std::string(62, '-') << '\n';
  for (const RowComparison &C : Rows) {
    std::snprintf(Buf, sizeof(Buf), "%-14s | %14.0f | %14.0f | %+8.1f%%\n",
                  C.Row->Name.c_str(), C.Without.MonitorOpsPerIter,
                  C.With.MonitorOpsPerIter,
                  percentDelta(C.Without.MonitorOpsPerIter,
                               C.With.MonitorOpsPerIter));
    OS << Buf;
  }
  return OS.str();
}
