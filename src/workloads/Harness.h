//===- Harness.h - Benchmark measurement and Table 1 formatting -----*- C++ -*-===//
///
/// \file
/// Runs benchmark rows under a given escape-analysis mode in a fresh VM
/// and reports the paper's metrics: allocated bytes per iteration,
/// allocations per iteration, iterations per minute and monitor
/// operations per iteration. Formatting mirrors Table 1 (scaled to this
/// simulator: KB and thousands of allocations instead of MB/millions).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_WORKLOADS_HARNESS_H
#define JVM_WORKLOADS_HARNESS_H

#include "vm/VirtualMachine.h"
#include "workloads/Suites.h"

#include <string>
#include <vector>

namespace jvm {
namespace workloads {

struct HarnessOptions {
  unsigned WarmupIters = 12;
  unsigned MeasureIters = 10;
  /// Timing repetitions; the fastest one is reported (standard defense
  /// against scheduler/frequency noise on shared machines).
  unsigned Repeats = 3;
  VMOptions VM;

  HarnessOptions() {
    // High enough that call-heavy library methods (getValue, equals)
    // collect mature receiver/branch profiles before compiling; loop
    // kernels reach it via backedge hotness within their first run.
    VM.CompileThreshold = 500;
    // Table 1 replication compares exact allocation counts per measured
    // iteration, so tier-up must complete at deterministic call indices:
    // compile synchronously. Benches that measure the background broker
    // itself (bench_compile_latency) override this per configuration.
    VM.CompilerThreads = 0;
  }

  /// Reads JVM_BENCH_WARMUP / JVM_BENCH_MEASURE overrides from the
  /// environment (smoke-testing the benches cheaply).
  static HarnessOptions fromEnvironment();
};

struct RowMeasurement {
  double KBPerIter = 0;
  double KAllocsPerIter = 0;
  double ItersPerMinute = 0;
  double MonitorOpsPerIter = 0;
  uint64_t Deopts = 0;
  uint64_t Compilations = 0;
  uint64_t Invalidations = 0;
  // Memory behaviour of the measured window (PR 5): the generational
  // collector's activity and pause-time percentiles.
  uint64_t Scavenges = 0;
  uint64_t FullGcs = 0;
  uint64_t BytesPromoted = 0;
  uint64_t GcPauseP50Ns = 0;
  uint64_t GcPauseP99Ns = 0;
  PEAStats Escape; ///< escape-analysis work over all row compilations
  /// The share of Escape contributed by OSR loop versions — extra
  /// compiles a speculation-off run never performs. The spesh on/off
  /// table and JSON report Escape minus this, so "materialize sites"
  /// compares the same set of method-entry compilations on both sides.
  PEAStats OsrEscape;
  int64_t Checksum = 0; ///< sum of driver results (cross-mode validation)
  // Speculation subsystem activity (PR 10), summed over warmup and the
  // measured window (plans are made at compile time, like Escape).
  bool SpeshOn = false; ///< was Compiler.EnableSpesh set for this run
  uint64_t SpeshPlans = 0;
  uint64_t SpeshGuardFailures = 0;
  uint64_t OsrEntries = 0;
};

struct RowComparison {
  const BenchmarkRow *Row = nullptr;
  RowMeasurement Without; ///< baseline mode
  RowMeasurement With;    ///< comparison mode
};

/// One row measured once per execution tier (all with PEA on). Native is
/// only populated when the copy-and-patch backend runs on this host
/// (HasNative); elsewhere the column is omitted from tables and JSON.
struct TierComparison {
  const BenchmarkRow *Row = nullptr;
  RowMeasurement Graph;
  RowMeasurement Linear;
  RowMeasurement Native;
  bool HasNative = false;
};

/// Runs \p Row for \p MeasureIters iterations after warmup in a fresh VM.
RowMeasurement measureRow(const BenchmarkSet &Set, const BenchmarkRow &Row,
                          EscapeAnalysisMode Mode,
                          const HarnessOptions &Opts);

/// Measures every row of \p Suite under \p Base and \p Mode.
std::vector<RowComparison> runSuite(const BenchmarkSet &Set,
                                    const std::string &Suite,
                                    EscapeAnalysisMode Base,
                                    EscapeAnalysisMode Mode,
                                    const HarnessOptions &Opts);

/// Measures every row of \p Suite under \p Mode once per execution
/// tier: graph walker, linear code, and — when the backend supports
/// this host — native machine code.
std::vector<TierComparison> runSuiteTiers(const BenchmarkSet &Set,
                                          const std::string &Suite,
                                          EscapeAnalysisMode Mode,
                                          const HarnessOptions &Opts);

/// Renders the execution-tier comparison (iterations per minute, graph
/// walker vs linear vs native; the speedup column and the geomean in
/// the footer compare native against linear).
std::string formatTierTable(const std::vector<TierComparison> &Rows);

/// Measures every row of \p Suite under \p Mode with speculation off
/// (Without) vs on (With) — the planner's guards, despecialization and
/// OSR against the identical configuration without them. Checksums must
/// agree exactly (speculation is an optimization, never a semantic).
std::vector<RowComparison> runSuiteSpesh(const BenchmarkSet &Set,
                                         const std::string &Suite,
                                         EscapeAnalysisMode Mode,
                                         const HarnessOptions &Opts);

/// Renders the speculation on/off comparison: throughput, materialize
/// sites (the PEA win speculation unlocks), and the plan/guard/OSR
/// activity of the speculated column.
std::string formatSpeshTable(const std::vector<RowComparison> &Rows);

/// Where appendTable1Json writes: $JVM_BENCH_JSON, default
/// "BENCH_table1.json" in the working directory.
std::string table1JsonPath();

/// Appends machine-readable per-row records to table1JsonPath(),
/// keeping the file one valid JSON array across the three Table 1
/// binaries: MB/iteration, allocations/iteration, iterations/minute,
/// with the escape-analysis mode and execution tier that produced them.
/// \p PeaRows compare EA off/on under \p PeaExec; \p TierRows compare
/// the graph, linear and (when measured) native tiers (all PEA);
/// \p SpeshRows compare speculation off/on (both PEA, both \p PeaExec —
/// each record's "spesh" field says which column it is).
void appendTable1Json(const std::string &Suite,
                      const std::vector<RowComparison> &PeaRows,
                      ExecMode PeaExec,
                      const std::vector<TierComparison> &TierRows,
                      const std::vector<RowComparison> &SpeshRows = {});

/// Renders one Table 1 block. Rows the paper omits are excluded from the
/// listing but included in the averages, exactly like the original.
std::string formatTable1Block(const std::string &Title,
                              const std::vector<RowComparison> &Rows);

/// Renders the Section 6.1 lock-operation comparison for \p Rows.
std::string formatLockTable(const std::vector<RowComparison> &Rows);

/// Percentage change from \p Without to \p With (negative = reduction).
double percentDelta(double Without, double With);

} // namespace workloads
} // namespace jvm

#endif // JVM_WORKLOADS_HARNESS_H
