//===- StdLib.cpp - Allocation-pattern kernels for the benchmarks -------------===//

#include "workloads/StdLib.h"

#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"

using namespace jvm;
using namespace jvm::workloads;

namespace {

void buildKeyEquals(WorkloadProgram &W) {
  CodeBuilder C(W.P, W.KeyEquals);
  unsigned Result = C.newLocal();
  Label NotEqual = C.newLabel(), Done = C.newLabel();
  C.load(0).monEnter();
  C.load(0).getField(W.Key, W.KeyIdx);
  C.load(1).getField(W.Key, W.KeyIdx);
  C.ifNe(NotEqual);
  C.load(0).getField(W.Key, W.KeyRef);
  C.load(1).getField(W.Key, W.KeyRef);
  C.ifRefNe(NotEqual);
  C.constI(1).store(Result).gotoL(Done);
  C.bind(NotEqual);
  C.constI(0).store(Result);
  C.bind(Done);
  C.load(0).monExit();
  C.load(Result).retInt();
  C.finish();
}

void buildCreateValue(WorkloadProgram &W) {
  CodeBuilder C(W.P, W.CreateValue);
  unsigned B = C.newLocal();
  C.newObj(W.Box).store(B);
  C.load(B).load(0).putField(W.Box, W.BoxVal);
  C.load(B).retRef();
  C.finish();
}

void buildGetValue(WorkloadProgram &W) {
  // The paper's Listing 4: key escapes into the cache on misses only.
  CodeBuilder C(W.P, W.GetValue);
  unsigned KeyL = C.newLocal(), TmpL = C.newLocal(), ValL = C.newLocal();
  Label Miss = C.newLabel();
  C.newObj(W.Key).store(KeyL);
  C.load(KeyL).load(0).putField(W.Key, W.KeyIdx);
  C.load(KeyL).load(1).putField(W.Key, W.KeyRef);
  C.getStatic(W.CacheKey).store(TmpL);
  C.load(TmpL).ifNull(Miss);
  C.load(KeyL).load(TmpL).invokeVirtual(W.KeyEquals);
  C.constI(0).ifEq(Miss);
  C.getStatic(W.CacheValue).retRef();
  C.bind(Miss);
  C.load(KeyL).putStatic(W.CacheKey);
  C.load(0).invokeStatic(W.CreateValue).store(ValL);
  C.load(ValL).putStatic(W.CacheValue);
  C.load(ValL).retRef();
  C.finish();
}

void buildIterMethods(WorkloadProgram &W) {
  {
    CodeBuilder C(W.P, W.IterHasNext);
    Label Yes = C.newLabel();
    C.load(0).getField(W.Iter, W.IterPos);
    C.load(0).getField(W.Iter, W.IterArr).arrLen();
    C.ifLt(Yes);
    C.constI(0).retInt();
    C.bind(Yes);
    C.constI(1).retInt();
    C.finish();
  }
  {
    CodeBuilder C(W.P, W.IterNext);
    unsigned V = C.newLocal();
    C.load(0).getField(W.Iter, W.IterArr);
    C.load(0).getField(W.Iter, W.IterPos);
    C.arrLoadInt().store(V);
    C.load(0).load(0).getField(W.Iter, W.IterPos).constI(1).add();
    C.putField(W.Iter, W.IterPos);
    C.load(V).retInt();
    C.finish();
  }
}

void buildOrderValidate(WorkloadProgram &W) {
  CodeBuilder C(W.P, W.OrderValidate);
  unsigned T = C.newLocal();
  C.load(0).monEnter();
  C.load(0).getField(W.Order, W.OrderQty).constI(3).mul();
  C.load(0).getField(W.Order, W.OrderId).constI(7).rem().add();
  C.store(T);
  C.load(0).load(T).putField(W.Order, W.OrderTotal);
  C.load(0).monExit();
  C.load(T).retInt();
  C.finish();
}

void buildCacheLookup(WorkloadProgram &W) {
  // (n, hitMod): each key value repeats hitMod times, so roughly
  // (hitMod-1)/hitMod of the lookups hit.
  CodeBuilder C(W.P, W.CacheLookup);
  unsigned Sum = C.newLocal(), I = C.newLocal();
  Label Head = C.newLabel(), Exit = C.newLabel();
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.load(I).load(1).div().constI(8).rem();
  C.constNull();
  C.invokeStatic(W.GetValue);
  C.getField(W.Box, W.BoxVal);
  C.load(Sum).add().store(Sum);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Sum).retInt();
  C.finish();
}

void buildBoxedSum(WorkloadProgram &W) {
  // (n, escMod): box per element; 1-in-escMod escapes to the sink.
  CodeBuilder C(W.P, W.BoxedSum);
  unsigned Sum = C.newLocal(), I = C.newLocal(), B = C.newLocal();
  Label Head = C.newLabel(), Exit = C.newLabel(), NoEsc = C.newLabel();
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.newObj(W.Box).store(B);
  C.load(B).load(I).constI(3).mul().constI(1).add().putField(W.Box, W.BoxVal);
  C.load(Sum).load(B).getField(W.Box, W.BoxVal).add().store(Sum);
  C.load(I).load(1).rem().constI(0).ifNe(NoEsc);
  C.load(B).putStatic(W.GlobalSink);
  C.bind(NoEsc);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Sum).retInt();
  C.finish();
}

void buildPairChurn(WorkloadProgram &W) {
  // (n, escMod): two chained temporaries per element.
  CodeBuilder C(W.P, W.PairChurn);
  unsigned Sum = C.newLocal(), I = C.newLocal();
  unsigned Pl = C.newLocal(), Q = C.newLocal();
  Label Head = C.newLabel(), Exit = C.newLabel(), NoEsc = C.newLabel();
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.newObj(W.Pair).store(Pl);
  C.load(Pl).load(I).putField(W.Pair, W.PairA);
  C.load(Pl).load(I).constI(2).mul().putField(W.Pair, W.PairB);
  C.newObj(W.Pair).store(Q);
  C.load(Q).load(Pl).getField(W.Pair, W.PairA)
      .load(Pl).getField(W.Pair, W.PairB).add().putField(W.Pair, W.PairA);
  C.load(Q).load(Pl).getField(W.Pair, W.PairA)
      .load(Pl).getField(W.Pair, W.PairB).sub().putField(W.Pair, W.PairB);
  C.load(Sum).load(Q).getField(W.Pair, W.PairA).add()
      .load(Q).getField(W.Pair, W.PairB).add().store(Sum);
  C.load(I).load(1).rem().constI(0).ifNe(NoEsc);
  C.load(Q).putStatic(W.GlobalSink);
  C.bind(NoEsc);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Sum).retInt();
  C.finish();
}

void buildIterSum(WorkloadProgram &W) {
  // (n, m): one backing array of length m, one iterator object per outer
  // round. The iterator never escapes: removable by both analyses.
  CodeBuilder C(W.P, W.IterSum);
  unsigned Sum = C.newLocal(), I = C.newLocal(), Arr = C.newLocal();
  unsigned It = C.newLocal(), J = C.newLocal();
  Label Fill = C.newLabel(), FillX = C.newLabel();
  Label Head = C.newLabel(), Exit = C.newLabel();
  Label Inner = C.newLabel(), InnerX = C.newLabel();
  C.load(1).newArrayInt().store(Arr);
  C.constI(0).store(J);
  C.bind(Fill);
  C.load(J).load(1).ifGe(FillX);
  C.load(Arr).load(J).load(J).constI(5).mul().arrStoreInt();
  C.load(J).constI(1).add().store(J);
  C.gotoL(Fill);
  C.bind(FillX);
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.newObj(W.Iter).store(It);
  C.load(It).load(Arr).putField(W.Iter, W.IterArr);
  C.load(It).constI(0).putField(W.Iter, W.IterPos);
  C.bind(Inner);
  C.load(It).invokeVirtual(W.IterHasNext).constI(0).ifEq(InnerX);
  C.load(Sum).load(It).invokeVirtual(W.IterNext).add().store(Sum);
  C.gotoL(Inner);
  C.bind(InnerX);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Sum).retInt();
  C.finish();
}

void buildBuilderFill(WorkloadProgram &W) {
  // (n, m): per round, a dynamically sized array (stays) wrapped in a
  // builder object (removable by both analyses).
  CodeBuilder C(W.P, W.BuilderFill);
  unsigned Sum = C.newLocal(), I = C.newLocal();
  unsigned Arr = C.newLocal(), Wr = C.newLocal(), J = C.newLocal();
  Label Head = C.newLabel(), Exit = C.newLabel();
  Label Inner = C.newLabel(), InnerX = C.newLabel();
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.load(1).load(I).constI(7).bitAnd().add().newArrayInt().store(Arr);
  C.newObj(W.Iter).store(Wr);
  C.load(Wr).load(Arr).putField(W.Iter, W.IterArr);
  C.load(Wr).constI(0).putField(W.Iter, W.IterPos);
  C.constI(0).store(J);
  C.bind(Inner);
  C.load(J).load(1).ifGe(InnerX);
  C.load(Wr).getField(W.Iter, W.IterArr);
  C.load(Wr).getField(W.Iter, W.IterPos);
  C.load(I).load(J).add().arrStoreInt();
  C.load(Wr).load(Wr).getField(W.Iter, W.IterPos).constI(1).add();
  C.putField(W.Iter, W.IterPos);
  C.load(J).constI(1).add().store(J);
  C.gotoL(Inner);
  C.bind(InnerX);
  C.load(Sum).load(Wr).getField(W.Iter, W.IterPos).add();
  C.load(Arr).constI(0).arrLoadInt().add().store(Sum);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Sum).retInt();
  C.finish();
}

void buildTransactions(WorkloadProgram &W) {
  // (n, escMod): an order per element, validated under its own monitor,
  // escaping into the warehouse 1-in-escMod times.
  CodeBuilder C(W.P, W.Transactions);
  unsigned Sum = C.newLocal(), I = C.newLocal(), O = C.newLocal();
  unsigned Wh = C.newLocal();
  Label Head = C.newLabel(), Exit = C.newLabel(), NoEsc = C.newLabel();
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.newObj(W.Order).store(O);
  C.load(O).load(I).putField(W.Order, W.OrderId);
  C.load(O).load(I).constI(5).rem().constI(1).add()
      .putField(W.Order, W.OrderQty);
  C.load(Sum).load(O).invokeVirtual(W.OrderValidate).add().store(Sum);
  C.load(I).load(1).rem().constI(0).ifNe(NoEsc);
  C.getStatic(W.Warehouse).store(Wh);
  C.load(Wh).load(I).load(Wh).arrLen().rem().load(O).arrStoreRef();
  C.bind(NoEsc);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Sum).retInt();
  C.finish();
}

void buildFlatWork(WorkloadProgram &W) {
  // (n, m): array arithmetic without small-object allocation.
  CodeBuilder C(W.P, W.FlatWork);
  unsigned Sum = C.newLocal(), I = C.newLocal(), Arr = C.newLocal();
  Label Head = C.newLabel(), Exit = C.newLabel();
  C.load(1).newArrayInt().store(Arr);
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.load(Arr).load(I).load(1).rem();
  C.load(Arr).load(I).constI(1).add().load(1).rem().arrLoadInt();
  C.constI(3).mul().load(I).add().arrStoreInt();
  C.load(Sum).load(Arr).load(I).load(1).rem().arrLoadInt().bitXor()
      .store(Sum);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Sum).retInt();
  C.finish();
}

void buildPhaseShift(WorkloadProgram &W) {
  // (n, escMod): the escape condition depends on a phase counter that
  // advances every call, so branch profiles collected during warmup go
  // stale — speculation keeps failing (the jython analog).
  CodeBuilder C(W.P, W.PhaseShift);
  unsigned Sum = C.newLocal(), I = C.newLocal(), O = C.newLocal();
  unsigned Ph = C.newLocal();
  Label Head = C.newLabel(), Exit = C.newLabel(), NoEsc = C.newLabel();
  C.getStatic(W.Phase).store(Ph);
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.newObj(W.Pair).store(O);
  C.load(O).load(I).putField(W.Pair, W.PairA);
  C.load(O).load(Ph).putField(W.Pair, W.PairB);
  C.load(I).load(Ph).constI(17).mul().add().load(1).rem();
  C.constI(0).ifNe(NoEsc);
  C.load(O).putStatic(W.GlobalSink);
  C.bind(NoEsc);
  C.load(Sum).load(O).getField(W.Pair, W.PairA).add().store(Sum);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Ph).constI(1).add().putStatic(W.Phase);
  C.load(Sum).retInt();
  C.finish();
}

void buildSyncWork(WorkloadProgram &W) {
  // (n, m): n monitor round-trips on the warehouse array object plus a
  // little arithmetic; these locks can never be elided.
  CodeBuilder C(W.P, W.SyncWork);
  unsigned Sum = C.newLocal(), I = C.newLocal(), O = C.newLocal();
  Label Head = C.newLabel(), Exit = C.newLabel();
  C.getStatic(W.Warehouse).store(O);
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.load(O).monEnter();
  C.load(Sum).load(I).load(1).rem().add().store(Sum);
  C.load(O).monExit();
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Sum).retInt();
  C.finish();
}

void buildSetup(WorkloadProgram &W) {
  CodeBuilder C(W.P, W.Setup);
  C.constI(64).newArrayRef().putStatic(W.Warehouse);
  C.constNull().putStatic(W.CacheKey);
  C.constNull().putStatic(W.CacheValue);
  C.constNull().putStatic(W.GlobalSink);
  C.constI(0).putStatic(W.Phase);
  C.retVoid();
  C.finish();
}

} // namespace

WorkloadProgram jvm::workloads::buildWorkloadProgram() {
  WorkloadProgram W;
  Program &P = W.P;

  W.Key = P.addClass("Key");
  W.KeyIdx = P.addField(W.Key, "idx", ValueType::Int);
  W.KeyRef = P.addField(W.Key, "ref", ValueType::Ref);
  W.Box = P.addClass("Box");
  W.BoxVal = P.addField(W.Box, "val", ValueType::Int);
  W.Pair = P.addClass("Pair");
  W.PairA = P.addField(W.Pair, "a", ValueType::Int);
  W.PairB = P.addField(W.Pair, "b", ValueType::Int);
  W.Iter = P.addClass("Iter");
  W.IterArr = P.addField(W.Iter, "arr", ValueType::Ref);
  W.IterPos = P.addField(W.Iter, "pos", ValueType::Int);
  W.Order = P.addClass("Order");
  W.OrderId = P.addField(W.Order, "id", ValueType::Int);
  W.OrderQty = P.addField(W.Order, "qty", ValueType::Int);
  W.OrderTotal = P.addField(W.Order, "total", ValueType::Int);

  W.CacheKey = P.addStatic("cacheKey", ValueType::Ref);
  W.CacheValue = P.addStatic("cacheValue", ValueType::Ref);
  W.GlobalSink = P.addStatic("globalSink", ValueType::Ref);
  W.Warehouse = P.addStatic("warehouse", ValueType::Ref);
  W.Phase = P.addStatic("phase", ValueType::Int);

  using VT = ValueType;
  W.KeyEquals =
      P.addMethod("Key.equals", W.Key, {VT::Ref, VT::Ref}, VT::Int);
  W.CreateValue = P.addMethod("createValue", NoClass, {VT::Int}, VT::Ref);
  W.GetValue =
      P.addMethod("getValue", NoClass, {VT::Int, VT::Ref}, VT::Ref);
  W.IterHasNext = P.addMethod("Iter.hasNext", W.Iter, {VT::Ref}, VT::Int);
  W.IterNext = P.addMethod("Iter.next", W.Iter, {VT::Ref}, VT::Int);
  W.OrderValidate =
      P.addMethod("Order.validate", W.Order, {VT::Ref}, VT::Int);

  W.CacheLookup =
      P.addMethod("cacheLookup", NoClass, {VT::Int, VT::Int}, VT::Int);
  W.BoxedSum = P.addMethod("boxedSum", NoClass, {VT::Int, VT::Int}, VT::Int);
  W.PairChurn =
      P.addMethod("pairChurn", NoClass, {VT::Int, VT::Int}, VT::Int);
  W.IterSum = P.addMethod("iterSum", NoClass, {VT::Int, VT::Int}, VT::Int);
  W.BuilderFill =
      P.addMethod("builderFill", NoClass, {VT::Int, VT::Int}, VT::Int);
  W.Transactions =
      P.addMethod("transactions", NoClass, {VT::Int, VT::Int}, VT::Int);
  W.FlatWork = P.addMethod("flatWork", NoClass, {VT::Int, VT::Int}, VT::Int);
  W.PhaseShift =
      P.addMethod("phaseShift", NoClass, {VT::Int, VT::Int}, VT::Int);
  W.SyncWork = P.addMethod("syncWork", NoClass, {VT::Int, VT::Int}, VT::Int);
  W.Setup = P.addMethod("setup", NoClass, {}, VT::Void);

  buildKeyEquals(W);
  buildCreateValue(W);
  buildGetValue(W);
  buildIterMethods(W);
  buildOrderValidate(W);
  buildCacheLookup(W);
  buildBoxedSum(W);
  buildPairChurn(W);
  buildIterSum(W);
  buildBuilderFill(W);
  buildTransactions(W);
  buildFlatWork(W);
  buildPhaseShift(W);
  buildSyncWork(W);
  buildSetup(W);

  verifyProgramOrDie(P);
  return W;
}
