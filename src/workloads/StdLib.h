//===- StdLib.h - Allocation-pattern kernels for the benchmarks -----*- C++ -*-===//
///
/// \file
/// The mini-Java "standard library" all synthetic benchmarks are composed
/// from. Each kernel reproduces one allocation-pattern *class* that the
/// paper's evaluation suites exhibit; the per-benchmark drivers in
/// Suites.cpp mix them with different weights (see DESIGN.md).
///
/// Kernels and their escape-analysis sensitivity:
///   cacheLookup   paper's Key cache: key escapes only on misses; PEA
///                 removes allocation+lock on hits, EES removes nothing.
///   boxedSum      boxing churn escaping 1-in-M times (Scala-style);
///                 PEA removes (M-1)/M, EES nothing.
///   pairChurn     two chained temporary tuples per element, rare escape.
///   iterSum       iterator object over an array; never escapes: both
///                 analyses remove it (the array itself stays).
///   builderFill   wrapper around a dynamically sized array; the wrapper
///                 is removable by both analyses, the array by neither.
///   transactions  order objects validated under their monitor, escaping
///                 1-in-M into a warehouse; PEA elides all validate locks.
///   flatWork      arithmetic/array work with no small-object allocation.
///   phaseShift    workload whose branch behaviour changes over time,
///                 defeating speculation (the jython-regression analog).
///   syncWork      monitor enter/exit on a long-lived escaped object;
///                 never elidable — the baseline lock traffic that makes
///                 the paper's lock reductions small percentages (§6.1).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_WORKLOADS_STDLIB_H
#define JVM_WORKLOADS_STDLIB_H

#include "bytecode/Program.h"

namespace jvm {
namespace workloads {

/// The shared program all benchmark drivers are added to.
struct WorkloadProgram {
  Program P;

  // Classes and fields.
  ClassId Key = NoClass;
  FieldIndex KeyIdx = -1, KeyRef = -1;
  ClassId Box = NoClass;
  FieldIndex BoxVal = -1;
  ClassId Pair = NoClass;
  FieldIndex PairA = -1, PairB = -1;
  ClassId Iter = NoClass;
  FieldIndex IterArr = -1, IterPos = -1;
  ClassId Order = NoClass;
  FieldIndex OrderId = -1, OrderQty = -1, OrderTotal = -1;

  // Statics.
  StaticIndex CacheKey = -1, CacheValue = -1;
  StaticIndex GlobalSink = -1;
  StaticIndex Warehouse = -1; ///< ref array of escaped orders
  StaticIndex Phase = -1;     ///< counter driving phaseShift behaviour

  // Library methods.
  MethodId KeyEquals = NoMethod;   ///< synchronized equals (paper Listing 1)
  MethodId GetValue = NoMethod;    ///< paper's getValue (Listing 4 shape)
  MethodId CreateValue = NoMethod;
  MethodId IterHasNext = NoMethod;
  MethodId IterNext = NoMethod;
  MethodId OrderValidate = NoMethod; ///< synchronized total computation

  // Kernels: all are `(n: int, m: int) -> int`.
  MethodId CacheLookup = NoMethod;
  MethodId BoxedSum = NoMethod;
  MethodId PairChurn = NoMethod;
  MethodId IterSum = NoMethod;
  MethodId BuilderFill = NoMethod;
  MethodId Transactions = NoMethod;
  MethodId FlatWork = NoMethod;
  MethodId PhaseShift = NoMethod;
  MethodId SyncWork = NoMethod; ///< monitor traffic on an escaped object

  /// One-time initialization (allocates the warehouse array).
  MethodId Setup = NoMethod;
};

/// Builds the shared kernel program. The result verifies.
WorkloadProgram buildWorkloadProgram();

} // namespace workloads
} // namespace jvm

#endif // JVM_WORKLOADS_STDLIB_H
