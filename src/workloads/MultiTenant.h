//===- MultiTenant.h - Multi-isolate throughput driver --------------*- C++ -*-===//
///
/// \file
/// Drives N isolates × M app threads over the Table 1 workloads in ONE
/// process, exercising exactly what the isolate refactor shares and
/// what it doesn't: every isolate gets its own heap, profiles and
/// installed-code tables, while all of them compile through the
/// process-wide CompileBroker and install native code into the process
/// CodeCache.
///
/// Each isolate keeps the VM's single-mutator contract by serializing
/// its app threads behind a per-isolate mutex — threads interleave
/// *operations*, never VM internals. Scaling therefore comes from
/// isolates (independent heaps run truly concurrently), which is the
/// multi-tenant deployment shape this models: many small tenants, one
/// JIT substrate.
///
/// Determinism for cross-checking: thread t of an isolate runs a fixed
/// op sequence (row (t + k) mod |rows| at step k), so the multiset of
/// operations an isolate performs — and hence its result checksum — is
/// independent of thread interleaving. expectedChecksum() replays the
/// same multiset on a plain single VirtualMachine; a 1-isolate run must
/// match it exactly (acceptance criterion: multi-tenant plumbing does
/// not change single-tenant behavior).
///
/// Telemetry: per-op latency is recorded into a wait-free shared
/// MetricHistogram (p50/p99 in the result), throughput is total ops
/// over wall time, and the broker worker count is reported so callers
/// can assert it stays constant as isolates scale.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_WORKLOADS_MULTITENANT_H
#define JVM_WORKLOADS_MULTITENANT_H

#include "vm/Isolate.h"
#include "workloads/Suites.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jvm {
namespace workloads {

struct MultiTenantOptions {
  unsigned Isolates = 2;
  unsigned ThreadsPerIsolate = 2;
  /// Driver calls each app thread performs (one call = one "op").
  uint64_t OpsPerThread = 64;
  /// An op runs its row's driver at Scale / ScaleDivisor (min 1): a
  /// full Table 1 iteration is a batch sized for per-minute throughput
  /// numbers, far too coarse for per-op latency percentiles.
  int64_t ScaleDivisor = 16;
  /// Row names from the benchmark set each thread cycles through.
  /// Empty = a default mix of allocation-, call- and lock-heavy Table 1
  /// rows (see defaultRowMix).
  std::vector<std::string> RowNames;
  /// Per-isolate VM configuration. Defaults to asynchronous compilation
  /// (the shared broker) with the harness's compile threshold; tests
  /// override fields (e.g. Memory for GC stress, CompilerThreads = 0
  /// for synchronous cross-checks).
  VMOptions VM;

  MultiTenantOptions() {
    // Same threshold rationale as HarnessOptions: profiles must mature
    // before compiling. Unlike the Table 1 harness this driver wants
    // the *shared broker* in the picture, so compilation stays async.
    VM.CompileThreshold = 500;
  }
};

/// The workload mix used when MultiTenantOptions::RowNames is empty.
std::vector<std::string> defaultRowMix();

struct MultiTenantResult {
  unsigned Isolates = 0;
  unsigned ThreadsPerIsolate = 0;
  uint64_t TotalOps = 0;
  uint64_t WallNanos = 0;
  double OpsPerSecond = 0;
  /// Per-op latency percentiles over all isolates and threads (log2
  /// histogram upper bounds, like every histogram metric in the VM).
  uint64_t OpLatencyP50Ns = 0;
  uint64_t OpLatencyP99Ns = 0;
  uint64_t OpLatencyMaxNs = 0;
  /// Worker threads in the process-wide broker (0 = synchronous mode).
  /// Constant across points however many isolates run — the property
  /// bench_multitenant exists to demonstrate.
  unsigned BrokerThreads = 0;
  /// Process-wide compile queue high water over the run.
  uint64_t QueueDepthHighWater = 0;

  struct IsolateStats {
    uint32_t Id = 0;       ///< process-unique isolate id
    uint64_t Ops = 0;
    int64_t Checksum = 0;  ///< sum of driver results (order-independent)
    uint64_t Compilations = 0;
    uint64_t CompilesDiscarded = 0;
    uint64_t HeapAllocations = 0;
    uint64_t GcRuns = 0;
    uint64_t Deopts = 0;
    /// Young-collection pause percentiles from this isolate's heap
    /// histogram (0 when the tenant never scavenged).
    uint64_t GcPauseP50Ns = 0;
    uint64_t GcPauseP99Ns = 0;
    /// Sampling-profiler self-time by tier for this isolate (tick
    /// counts; all zero when the profiler is off). Per-isolate
    /// attribution is the property under test: N isolates × M threads
    /// share the SIGPROF handler and the per-thread rings, yet every
    /// sample lands on the isolate whose call was executing.
    uint64_t ProfSamplesInterp = 0;
    uint64_t ProfSamplesGraph = 0;
    uint64_t ProfSamplesLinear = 0;
    uint64_t ProfSamplesNative = 0;
    uint64_t ProfAllocSamples = 0;
  };
  std::vector<IsolateStats> PerIsolate;
};

/// Runs the configured isolates × threads matrix to completion and
/// reports throughput, latency percentiles and per-isolate stats.
/// Isolates are created at the start and destroyed (unregistering from
/// the broker) before returning.
MultiTenantResult runMultiTenant(const BenchmarkSet &Set,
                                 const MultiTenantOptions &Opts);

/// The checksum every isolate in a runMultiTenant(Set, Opts) run must
/// produce, computed by replaying one isolate's op multiset on a plain
/// single-tenant VirtualMachine with the same VM options.
int64_t expectedChecksum(const BenchmarkSet &Set,
                         const MultiTenantOptions &Opts);

/// Renders \p R as one JSON object (the schema scripts/
/// check_multitenant.py lints): configuration, throughput, latency
/// percentiles, broker stats and a per_isolate array.
std::string multiTenantJson(const MultiTenantResult &R);

} // namespace workloads
} // namespace jvm

#endif // JVM_WORKLOADS_MULTITENANT_H
