//===- MultiTenant.cpp - Multi-isolate throughput driver -----------------------===//

#include "workloads/MultiTenant.h"

#include "observability/Metrics.h"
#include "observability/Profiler.h"
#include "support/ErrorHandling.h"
#include "vm/CompileBroker.h"
#include "vm/VirtualMachine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

using namespace jvm;
using namespace jvm::workloads;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const BenchmarkRow &findRowOrDie(const BenchmarkSet &Set,
                                 const std::string &Name) {
  if (const BenchmarkRow *R = Set.find(Name))
    return *R;
  std::fprintf(stderr, "multitenant: unknown benchmark row '%s'\n",
               Name.c_str());
  jvm_unreachable("unknown benchmark row in multi-tenant mix");
}

int64_t opScale(const BenchmarkRow &Row, const MultiTenantOptions &Opts) {
  int64_t Div = Opts.ScaleDivisor > 0 ? Opts.ScaleDivisor : 1;
  int64_t S = Row.Scale / Div;
  return S > 0 ? S : 1;
}

} // namespace

std::vector<std::string> jvm::workloads::defaultRowMix() {
  // One allocation-churn row, one transaction/lock row, the headline
  // PEA row and a cache/monitor row: together they exercise the heap,
  // the compile pipeline, deopt machinery and monitors per tenant.
  return {"sunflow", "h2", "factorie", "tomcat"};
}

MultiTenantResult
jvm::workloads::runMultiTenant(const BenchmarkSet &Set,
                               const MultiTenantOptions &Opts) {
  const std::vector<std::string> Names =
      Opts.RowNames.empty() ? defaultRowMix() : Opts.RowNames;
  std::vector<const BenchmarkRow *> Rows;
  Rows.reserve(Names.size());
  for (const std::string &N : Names)
    Rows.push_back(&findRowOrDie(Set, N));

  MultiTenantResult R;
  R.Isolates = Opts.Isolates;
  R.ThreadsPerIsolate = Opts.ThreadsPerIsolate;
  R.BrokerThreads = (Opts.VM.EnableJit && Opts.VM.CompilerThreads > 0)
                        ? CompileBroker::process().numThreads()
                        : 0;

  // All tenants run the same immutable Program; per-tenant mutable state
  // (heap, profiles, code tables) lives inside each Isolate.
  struct Tenant {
    explicit Tenant(const BenchmarkSet &Set, const VMOptions &VM)
        : Iso(Set.WP.P, VM) {}
    Isolate Iso;
    /// Serializes app threads: the VM keeps its single-mutator contract,
    /// threads interleave whole operations.
    std::mutex CallMutex;
    std::mutex StatMutex;
    int64_t Checksum = 0;
    uint64_t Ops = 0;
  };
  std::vector<std::unique_ptr<Tenant>> Tenants;
  Tenants.reserve(Opts.Isolates);
  for (unsigned I = 0; I != Opts.Isolates; ++I) {
    Tenants.push_back(std::make_unique<Tenant>(Set, Opts.VM));
    // Workload globals (shared tables the kernels read) are heap state,
    // so each tenant initializes its own copy.
    Tenants.back()->Iso.call(Set.WP.Setup, {});
  }

  // Shared wait-free telemetry: every op's wall latency, as observed by
  // the issuing app thread (queueing behind the tenant's mutex counts —
  // that wait is real latency to a tenant's request).
  MetricHistogram OpLatency;

  // Start barrier so thread-spawn overhead stays out of the measured
  // window; wall time covers first op issued -> last op retired.
  std::mutex StartMutex;
  std::condition_variable StartCv;
  bool Go = false;

  std::vector<std::thread> Threads;
  Threads.reserve(size_t(Opts.Isolates) * Opts.ThreadsPerIsolate);
  for (unsigned I = 0; I != Opts.Isolates; ++I) {
    for (unsigned T = 0; T != Opts.ThreadsPerIsolate; ++T) {
      Tenant *Ten = Tenants[I].get();
      Threads.emplace_back([&, Ten, T] {
        {
          std::unique_lock<std::mutex> L(StartMutex);
          StartCv.wait(L, [&] { return Go; });
        }
        int64_t Sum = 0;
        // Fixed per-thread sequence: row (T + K) mod |rows| at step K.
        // The multiset of ops a tenant performs is therefore identical
        // whatever the interleaving, making the tenant checksum (a
        // commutative sum) deterministic and cross-checkable.
        for (uint64_t K = 0; K != Opts.OpsPerThread; ++K) {
          const BenchmarkRow &Row = *Rows[(T + K) % Rows.size()];
          std::vector<Value> Args{Value::makeInt(opScale(Row, Opts))};
          uint64_t T0 = nowNanos();
          Value V;
          {
            std::lock_guard<std::mutex> L(Ten->CallMutex);
            V = Ten->Iso.call(Row.Driver, std::move(Args));
          }
          OpLatency.record(nowNanos() - T0);
          Sum += V.asInt();
        }
        std::lock_guard<std::mutex> L(Ten->StatMutex);
        Ten->Checksum += Sum;
        Ten->Ops += Opts.OpsPerThread;
      });
    }
  }

  uint64_t Start;
  {
    std::lock_guard<std::mutex> L(StartMutex);
    Go = true;
    Start = nowNanos();
  }
  StartCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
  R.WallNanos = nowNanos() - Start;

  R.TotalOps =
      uint64_t(Opts.Isolates) * Opts.ThreadsPerIsolate * Opts.OpsPerThread;
  R.OpsPerSecond =
      R.WallNanos ? double(R.TotalOps) * 1e9 / double(R.WallNanos) : 0;
  // Percentiles are log2-bucket upper bounds; the max is exact. Clamp
  // so p50 <= p99 <= max holds (a bucket bound can overshoot the max).
  R.OpLatencyMaxNs = OpLatency.max();
  R.OpLatencyP99Ns =
      std::min<uint64_t>(OpLatency.percentileUpperBound(0.99), R.OpLatencyMaxNs);
  R.OpLatencyP50Ns =
      std::min<uint64_t>(OpLatency.percentileUpperBound(0.5), R.OpLatencyP99Ns);

  for (std::unique_ptr<Tenant> &Ten : Tenants) {
    // Quiesce this tenant's broker work so its counters are settled
    // (other tenants' compiles may still be running — waitForCompilerIdle
    // is per-client by design).
    Ten->Iso.waitForCompilerIdle();
    MultiTenantResult::IsolateStats S;
    S.Id = Ten->Iso.id();
    S.Ops = Ten->Ops;
    S.Checksum = Ten->Checksum;
    S.Compilations = Ten->Iso.jitMetrics().Compilations;
    S.CompilesDiscarded = Ten->Iso.jitMetrics().CompilesDiscarded;
    S.HeapAllocations = Ten->Iso.runtime().heap().allocationCount();
    S.GcRuns = Ten->Iso.runtime().heap().gcRuns();
    S.Deopts = Ten->Iso.runtime().metrics().Deopts;
    // Same clamp as the op-latency percentiles: bucket upper bounds
    // must not overshoot each other (p50 <= p99 <= max).
    const MetricHistogram &Pauses = Ten->Iso.runtime().heap().scavengePauses();
    S.GcPauseP99Ns =
        std::min<uint64_t>(Pauses.percentileUpperBound(0.99), Pauses.max());
    S.GcPauseP50Ns =
        std::min<uint64_t>(Pauses.percentileUpperBound(0.5), S.GcPauseP99Ns);
    // Per-isolate sampled self-time. Zero when the profiler is off;
    // under JVM_PROF the split proves tick attribution follows the
    // isolate across shared mutator threads.
    Profiler &Prof = Profiler::get();
    S.ProfSamplesInterp = Prof.samplesForIsolate(S.Id, ProfTierInterp);
    S.ProfSamplesGraph = Prof.samplesForIsolate(S.Id, ProfTierGraph);
    S.ProfSamplesLinear = Prof.samplesForIsolate(S.Id, ProfTierLinear);
    S.ProfSamplesNative = Prof.samplesForIsolate(S.Id, ProfTierNative);
    S.ProfAllocSamples = Prof.allocSamplesForIsolate(S.Id);
    R.QueueDepthHighWater =
        std::max(R.QueueDepthHighWater,
                 Ten->Iso.jitMetrics().QueueDepthHighWater);
    R.PerIsolate.push_back(S);
  }

  // Tenants (and their broker registrations) die here; the process
  // broker, code cache and tracer live on for the next point.
  return R;
}

int64_t jvm::workloads::expectedChecksum(const BenchmarkSet &Set,
                                         const MultiTenantOptions &Opts) {
  const std::vector<std::string> Names =
      Opts.RowNames.empty() ? defaultRowMix() : Opts.RowNames;
  std::vector<const BenchmarkRow *> Rows;
  for (const std::string &N : Names)
    Rows.push_back(&findRowOrDie(Set, N));

  // A plain single-tenant VM replays one isolate's op multiset on one
  // thread. Results are deterministic per (driver, scale) whatever the
  // tier or compilation timing, so this is THE value every isolate of a
  // runMultiTenant with the same options must report.
  VirtualMachine VM(Set.WP.P, Opts.VM);
  VM.call(Set.WP.Setup, {});
  int64_t Sum = 0;
  for (unsigned T = 0; T != Opts.ThreadsPerIsolate; ++T)
    for (uint64_t K = 0; K != Opts.OpsPerThread; ++K) {
      const BenchmarkRow &Row = *Rows[(T + K) % Rows.size()];
      Sum += VM.call(Row.Driver, {Value::makeInt(opScale(Row, Opts))}).asInt();
    }
  return Sum;
}

std::string jvm::workloads::multiTenantJson(const MultiTenantResult &R) {
  char Buf[256];
  std::string J = "{";
  auto Num = [&](const char *Key, double V, bool First = false) {
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %.2f", First ? "" : ", ", Key,
                  V);
    J += Buf;
  };
  auto Int = [&](const char *Key, uint64_t V) {
    std::snprintf(Buf, sizeof(Buf), ", \"%s\": %llu", Key,
                  static_cast<unsigned long long>(V));
    J += Buf;
  };
  Num("isolates", R.Isolates, /*First=*/true);
  Int("threads_per_isolate", R.ThreadsPerIsolate);
  Int("total_ops", R.TotalOps);
  Int("wall_nanos", R.WallNanos);
  Num("ops_per_sec", R.OpsPerSecond);
  Int("op_p50_ns", R.OpLatencyP50Ns);
  Int("op_p99_ns", R.OpLatencyP99Ns);
  Int("op_max_ns", R.OpLatencyMaxNs);
  Int("broker_threads", R.BrokerThreads);
  Int("queue_depth_high_water", R.QueueDepthHighWater);
  J += ", \"per_isolate\": [";
  for (size_t I = 0; I != R.PerIsolate.size(); ++I) {
    const MultiTenantResult::IsolateStats &S = R.PerIsolate[I];
    if (I)
      J += ", ";
    char IsoBuf[640];
    std::snprintf(IsoBuf, sizeof(IsoBuf),
                  "{\"id\": %u, \"ops\": %llu, \"checksum\": %lld, "
                  "\"compilations\": %llu, \"compiles_discarded\": %llu, "
                  "\"heap_allocations\": %llu, \"gc_runs\": %llu, "
                  "\"deopts\": %llu, \"gc_pause_p50_ns\": %llu, "
                  "\"gc_pause_p99_ns\": %llu, "
                  "\"prof_samples_interp\": %llu, "
                  "\"prof_samples_graph\": %llu, "
                  "\"prof_samples_linear\": %llu, "
                  "\"prof_samples_native\": %llu, "
                  "\"prof_alloc_samples\": %llu}",
                  S.Id, static_cast<unsigned long long>(S.Ops),
                  static_cast<long long>(S.Checksum),
                  static_cast<unsigned long long>(S.Compilations),
                  static_cast<unsigned long long>(S.CompilesDiscarded),
                  static_cast<unsigned long long>(S.HeapAllocations),
                  static_cast<unsigned long long>(S.GcRuns),
                  static_cast<unsigned long long>(S.Deopts),
                  static_cast<unsigned long long>(S.GcPauseP50Ns),
                  static_cast<unsigned long long>(S.GcPauseP99Ns),
                  static_cast<unsigned long long>(S.ProfSamplesInterp),
                  static_cast<unsigned long long>(S.ProfSamplesGraph),
                  static_cast<unsigned long long>(S.ProfSamplesLinear),
                  static_cast<unsigned long long>(S.ProfSamplesNative),
                  static_cast<unsigned long long>(S.ProfAllocSamples));
    J += IsoBuf;
  }
  J += "]}";
  return J;
}
