//===- Suites.h - Synthetic benchmark suites -------------------------*- C++ -*-===//
///
/// \file
/// One synthetic workload per benchmark row of the paper's Table 1:
/// the 14 DaCapo benchmarks, the 12 ScalaDaCapo benchmarks and
/// SPECjbb2005. Each row is a driver method over the StdLib kernels with
/// a row-specific mix; the mapping rationale is documented per row in
/// Suites.cpp and in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_WORKLOADS_SUITES_H
#define JVM_WORKLOADS_SUITES_H

#include "workloads/StdLib.h"

#include <string>
#include <vector>

namespace jvm {
namespace workloads {

struct BenchmarkRow {
  std::string Suite; ///< "dacapo", "scaladacapo", "specjbb2005"
  std::string Name;
  MethodId Driver = NoMethod; ///< `(scale: int) -> int`
  int64_t Scale = 0;          ///< elements per iteration
  /// Rows the paper omits from Table 1 ("no significant change").
  bool OmittedInPaper = false;
};

/// Everything the benchmark harness needs.
struct BenchmarkSet {
  WorkloadProgram WP;
  std::vector<BenchmarkRow> Rows;

  const BenchmarkRow *find(const std::string &Name) const {
    for (const BenchmarkRow &R : Rows)
      if (R.Name == Name)
        return &R;
    return nullptr;
  }
};

/// Builds the shared program plus all suite rows. The program verifies.
BenchmarkSet buildBenchmarkSet();

} // namespace workloads
} // namespace jvm

#endif // JVM_WORKLOADS_SUITES_H
