//===- Suites.cpp - Synthetic benchmark suites ---------------------------------===//
//
// Row mapping rationale (allocation-pattern classes, not application
// logic): the DaCapo rows lean on array/builder/transaction patterns
// with modest shares of PEA-only opportunities; the ScalaDaCapo rows are
// dominated by boxing/tuple churn (the extra abstraction layers the
// paper highlights), with factorie as the extreme case; SPECjbb2005 is
// transaction processing with monitors. The "no significant change"
// DaCapo rows are flat array/arithmetic work.
//
//===----------------------------------------------------------------------===//

#include "workloads/Suites.h"

#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"

using namespace jvm;
using namespace jvm::workloads;

namespace {

/// One kernel invocation inside a row driver: kernel(scale/Div, M).
struct Mix {
  MethodId Kernel;
  int Div;
  int M;
};

MethodId addRowDriver(WorkloadProgram &W, const std::string &Name,
                      const std::vector<Mix> &Mixes) {
  MethodId Driver = W.P.addMethod("row_" + Name, NoClass, {ValueType::Int},
                                  ValueType::Int);
  CodeBuilder C(W.P, Driver);
  unsigned Sum = C.newLocal();
  C.constI(0).store(Sum);
  for (const Mix &Mx : Mixes) {
    C.load(0).constI(Mx.Div).div();
    C.constI(Mx.M);
    C.invokeStatic(Mx.Kernel);
    C.load(Sum).add().store(Sum);
  }
  C.load(Sum).retInt();
  C.finish();
  return Driver;
}

} // namespace

BenchmarkSet jvm::workloads::buildBenchmarkSet() {
  BenchmarkSet Set;
  Set.WP = buildWorkloadProgram();
  WorkloadProgram &W = Set.WP;

  auto Row = [&](const char *Suite, const char *Name, int64_t Scale,
                 std::vector<Mix> Mixes, bool Omitted = false) {
    BenchmarkRow R;
    R.Suite = Suite;
    R.Name = Name;
    R.Scale = Scale;
    R.OmittedInPaper = Omitted;
    R.Driver = addRowDriver(W, Name, Mixes);
    Set.Rows.push_back(std::move(R));
  };

  //===--------------------------------------------------------------------===//
  // DaCapo. Each row combines a removable churn part, a surviving part
  // (always-escaping boxes plus builder arrays) and flat work, with the
  // shares solved against the paper's per-row byte/allocation reductions
  // (see the "paper" comments; EXPERIMENTS.md tabulates both sides).
  //===--------------------------------------------------------------------===//
  // fop: paper -3.5% bytes / -5.6% allocs / +14.4% speed.
  Row("dacapo", "fop", 24000,
      {{W.PairChurn, 32, 4096}, {W.BoxedSum, 1, 1},
       {W.BuilderFill, 17, 64}, {W.FlatWork, 1, 64}});
  // h2: paper -5.2% / -5.9% / +2.9%.
  Row("dacapo", "h2", 24000,
      {{W.Transactions, 16, 4096}, {W.BoxedSum, 1, 1},
       {W.BuilderFill, 23, 64}, {W.FlatWork, 1, 64}, {W.SyncWork, 4, 16}});
  // jython: paper -8.3% / -15.2% / -2.1% — phase-shifting behaviour keeps
  // invalidating speculative code; PEA pays without winning much.
  Row("dacapo", "jython", 24000,
      {{W.PhaseShift, 1, 512}, {W.BuilderFill, 48, 16}, {W.FlatWork, 4, 64}});
  // sunflow: paper -25.7% / -30.6% / +1.6%.
  Row("dacapo", "sunflow", 24000,
      {{W.PairChurn, 8, 4096}, {W.BoxedSum, 2, 1},
       {W.BuilderFill, 53, 64}, {W.FlatWork, 1, 64}});
  // tomcat: paper -0.8% / -2.4% / +4.4%, and Section 6.1's -4% locks.
  Row("dacapo", "tomcat", 24000,
      {{W.CacheLookup, 32, 8}, {W.BoxedSum, 1, 1}, {W.BuilderFill, 5, 64},
       {W.FlatWork, 1, 64}, {W.SyncWork, 2, 13}});
  // tradebeans: paper -7.8% / -11.1% / +6.4%.
  Row("dacapo", "tradebeans", 24000,
      {{W.Transactions, 8, 4096}, {W.BoxedSum, 1, 1},
       {W.BuilderFill, 14, 64}, {W.FlatWork, 1, 64}});
  // xalan: paper -1.4% / -2.2% / +1.9%.
  Row("dacapo", "xalan", 24000,
      {{W.BuilderFill, 64, 24}, {W.BoxedSum, 2, 1}, {W.BuilderFill, 27, 64},
       {W.FlatWork, 1, 64}});
  // The rows Table 1 omits ("no significant change in performance").
  Row("dacapo", "avrora", 24000,
      {{W.FlatWork, 1, 32}, {W.IterSum, 48, 32}}, /*Omitted=*/true);
  Row("dacapo", "batik", 24000,
      {{W.FlatWork, 1, 64}, {W.BuilderFill, 96, 64}}, true);
  Row("dacapo", "eclipse", 24000,
      {{W.FlatWork, 1, 48}, {W.SyncWork, 4, 16}}, true);
  Row("dacapo", "luindex", 24000,
      {{W.FlatWork, 1, 96}, {W.IterSum, 96, 48}}, true);
  Row("dacapo", "lusearch", 24000,
      {{W.FlatWork, 1, 24}, {W.BuilderFill, 96, 32}}, true);
  Row("dacapo", "pmd", 24000,
      {{W.FlatWork, 1, 40}, {W.IterSum, 64, 64}}, true);
  Row("dacapo", "tradesoap", 24000,
      {{W.FlatWork, 1, 56}, {W.SyncWork, 3, 8}}, true);

  //===--------------------------------------------------------------------===//
  // ScalaDaCapo: boxing and tuple churn from the Scala compiler's
  // abstraction layers; same calibration scheme.
  //===--------------------------------------------------------------------===//
  // actors: paper -17.0% / -18.5% / +10.0%.
  Row("scaladacapo", "actors", 24000,
      {{W.PairChurn, 16, 4096}, {W.BoxedSum, 2, 1},
       {W.BuilderFill, 80, 64}, {W.FlatWork, 1, 64}});
  // apparat: paper -3.3% / -5.5% / +13.7%.
  Row("scaladacapo", "apparat", 24000,
      {{W.BoxedSum, 32, 4096}, {W.BoxedSum, 2, 1},
       {W.BuilderFill, 55, 64}, {W.FlatWork, 1, 64}});
  // factorie: paper -58.5% / -60.9% / +33.0% — the headline row.
  Row("scaladacapo", "factorie", 24000,
      {{W.PairChurn, 8, 4096}, {W.BoxedSum, 6, 1},
       {W.BuilderFill, 276, 64}, {W.FlatWork, 1, 64}});
  // kiama: paper -6.6% / -11.2% / +16.5%.
  Row("scaladacapo", "kiama", 24000,
      {{W.PairChurn, 16, 4096}, {W.BoxedSum, 1, 1},
       {W.BuilderFill, 15, 64}, {W.FlatWork, 1, 64}});
  // scalac: paper -14.5% / -22.6% / +4.4%.
  Row("scaladacapo", "scalac", 24000,
      {{W.BoxedSum, 8, 4096}, {W.BoxedSum, 2, 1}, {W.BuilderFill, 68, 64},
       {W.FlatWork, 1, 64}});
  // scaladoc: paper -12.0% / -24.0% / +3.0%.
  Row("scaladacapo", "scaladoc", 24000,
      {{W.BoxedSum, 8, 4096}, {W.BoxedSum, 3, 1}, {W.BuilderFill, 40, 64},
       {W.FlatWork, 1, 64}});
  // scalap: paper -8.8% / -12.5% / +17.6%.
  Row("scaladacapo", "scalap", 24000,
      {{W.BoxedSum, 8, 4096}, {W.BoxedSum, 1, 1}, {W.BuilderFill, 50, 64},
       {W.FlatWork, 1, 64}});
  // scalariform: paper -13.3% / -16.5% / +7.8%.
  Row("scaladacapo", "scalariform", 24000,
      {{W.PairChurn, 16, 4096}, {W.BoxedSum, 2, 1},
       {W.BuilderFill, 46, 64}, {W.FlatWork, 1, 64}});
  // scalatest: paper -1.0% / -2.4% / +7.1%.
  Row("scaladacapo", "scalatest", 24000,
      {{W.BoxedSum, 64, 4096}, {W.BoxedSum, 2, 1}, {W.BuilderFill, 23, 64},
       {W.FlatWork, 1, 64}});
  // scalaxb: paper -5.9% / -13.8% / +4.7%.
  Row("scaladacapo", "scalaxb", 24000,
      {{W.BoxedSum, 8, 4096}, {W.BoxedSum, 1, 1}, {W.BuilderFill, 17, 64},
       {W.FlatWork, 1, 64}});
  // specs: paper -38.4% bytes but -72.0% allocs (the survivors are
  // arrays) / +4.0%.
  Row("scaladacapo", "specs", 24000,
      {{W.BoxedSum, 8, 4096}, {W.BoxedSum, 24, 1}, {W.BuilderFill, 138, 64},
       {W.FlatWork, 1, 64}});
  // tmt: paper -3.6% / -12.2% / +3.3%.
  Row("scaladacapo", "tmt", 24000,
      {{W.PairChurn, 16, 4096}, {W.BoxedSum, 1, 1}, {W.BuilderFill, 6, 64},
       {W.FlatWork, 1, 64}});

  //===--------------------------------------------------------------------===//
  // SPECjbb2005: paper -16.1% / -38.1% / +8.7%, and Section 6.1's -3.8%
  // locks (the commit-log monitor traffic stays, the per-order validate
  // locks go).
  //===--------------------------------------------------------------------===//
  Row("specjbb2005", "specjbb2005", 24000,
      {{W.Transactions, 16, 4096}, {W.BoxedSum, 12, 1},
       {W.BuilderFill, 48, 64}, {W.FlatWork, 1, 64}, {W.FlatWork, 1, 48},
       {W.SyncWork, 1, 4}});

  verifyProgramOrDie(W.P);
  return Set;
}
