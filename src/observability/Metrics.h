//===- Metrics.h - Unified VM metrics registry ----------------------*- C++ -*-===//
///
/// \file
/// One registry of named, typed metrics for the whole VM, replacing the
/// disconnected ad-hoc counter structs (RuntimeMetrics, JitMetrics,
/// PEAStats) as the *reporting* surface: the structs keep their cheap
/// plain-field updates on the hot paths, and the registry exposes them
/// through three metric kinds:
///
///  - **Counter**: an owned atomic monotonic count, updated through the
///    registry (used where no legacy struct exists, e.g. tracer drops).
///  - **Gauge**: a callback evaluated at dump time — how the legacy
///    structs register their fields without paying for indirection on
///    every increment.
///  - **Histogram**: fixed log2 buckets (bucket i counts values whose
///    bit width is i, i.e. [2^(i-1), 2^i)), recorded live on the paths
///    that need distributions, not just sums: enqueue-to-install latency
///    and mutator compile stalls.
///
/// dumpText() renders one coherent table; dumpJson() one JSON object —
/// what `VirtualMachine::dumpMetrics*` and the Table 1 benches consume
/// instead of each bench hand-formatting its own block.
///
/// Thread safety: registration and rendering take the registry mutex;
/// Counter/Histogram updates are lock-free relaxed atomics on stable
/// addresses. Gauge callbacks are evaluated on the dumping thread — dump
/// from the mutator after waitForCompilerIdle() for consistent values.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_OBSERVABILITY_METRICS_H
#define JVM_OBSERVABILITY_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jvm {

/// Monotonic atomic counter owned by the registry.
class MetricCounter {
public:
  void add(uint64_t Delta = 1) {
    V.fetch_add(Delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Fixed-bucket log2 histogram: 65 buckets, bucket 0 holds the value 0
/// and bucket i (1..64) holds values of bit width i, i.e. [2^(i-1), 2^i).
/// Recording is wait-free (relaxed adds + a CAS loop for the max).
class MetricHistogram {
public:
  static constexpr unsigned NumBuckets = 65;

  /// The bucket \p V falls into: 0 for 0, otherwise bit_width(V).
  static unsigned bucketFor(uint64_t V) {
    unsigned W = 0;
    while (V) {
      ++W;
      V >>= 1;
    }
    return W;
  }

  /// Smallest value belonging to bucket \p I (0, 1, 2, 4, 8, ...).
  static uint64_t bucketLowerBound(unsigned I) {
    return I == 0 ? 0 : uint64_t(1) << (I - 1);
  }

  void record(uint64_t V) {
    Buckets[bucketFor(V)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    uint64_t Prev = Max.load(std::memory_order_relaxed);
    while (V > Prev &&
           !Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed))
      ;
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t mean() const {
    uint64_t N = count();
    return N ? sum() / N : 0;
  }
  uint64_t bucketCount(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Upper bound (exclusive, as a bucket boundary) of the first bucket
  /// at which the cumulative count reaches \p P in [0,1] of the total;
  /// 0 when empty. Coarse by construction (log2 buckets).
  uint64_t percentileUpperBound(double P) const;

  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

class MetricsRegistry {
public:
  /// Evaluated at dump time; must be callable until the registry dies.
  using GaugeFn = std::function<uint64_t()>;
  /// Emits extra (name, value) pairs at dump time — for sources whose
  /// metric names are dynamic, like the per-phase-name timing table.
  using ProviderFn =
      std::function<void(const std::function<void(const std::string &Name,
                                                  uint64_t Value)> &Emit)>;

  /// The counter named \p Name, created on first use. Addresses are
  /// stable for the registry's lifetime. Fatal if \p Name already names
  /// a metric of a different kind.
  MetricCounter &counter(const std::string &Name);

  /// The histogram named \p Name, created on first use (same contract).
  MetricHistogram &histogram(const std::string &Name);

  /// Registers a dump-time gauge. Fatal on any name collision: gauges
  /// have no owned state, so a duplicate is always a wiring bug.
  void gauge(const std::string &Name, GaugeFn Read);

  /// Registers a dynamic multi-metric provider.
  void provider(ProviderFn Emit);

  /// True if \p Name names any registered metric (not provider output).
  bool has(const std::string &Name) const;
  size_t size() const;

  /// One row per metric, registration order, histograms expanded to
  /// count/mean/max/p90. Gauges and providers are evaluated now.
  std::string dumpText() const;

  /// One flat JSON object {"name": value, ...}; histograms contribute
  /// name.count / name.sum / name.max / name.p90 keys.
  std::string dumpJson() const;

  /// Zeroes owned counters and histograms (measurement windows; the
  /// bench harness resets between warmup and measured iterations).
  /// Gauges read live sources and are unaffected.
  void reset();

private:
  enum class Kind : uint8_t { Counter, Gauge, Histogram };
  struct Entry {
    std::string Name;
    Kind K;
    std::unique_ptr<MetricCounter> C;
    std::unique_ptr<MetricHistogram> H;
    GaugeFn G;
  };

  Entry *find(const std::string &Name);
  const Entry *find(const std::string &Name) const;
  /// Renders every metric in registration order via \p Row.
  void forEachValue(
      const std::function<void(const std::string &, uint64_t)> &Row) const;

  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<Entry>> Entries;
  std::vector<ProviderFn> Providers;
};

} // namespace jvm

#endif // JVM_OBSERVABILITY_METRICS_H
