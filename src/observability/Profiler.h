//===- Profiler.h - Sampling profiler with four-tier attribution ----*- C++ -*-===//
///
/// \file
/// A SIGPROF/itimer tick-based sampling profiler that attributes CPU
/// samples to (isolate, tier, method) across all four execution tiers —
/// interpreter, graph walker, linear register dispatch, and the native
/// copy-and-patch tier — plus allocation-site sampling hooked into the
/// TLAB fast path, folded-stack (flamegraph) export, and drained-sample
/// instants in the Chrome trace.
///
/// Signal-safety rules (the whole design falls out of these):
///
///  1. **The tick handler computes, it never acquires.** No malloc, no
///     mutex, no Tracer::record (whose first use takes a lock). The
///     handler reads the calling thread's *shadow stack* — a fixed array
///     of (tier, method, bci) frames each tier entry point pushes via
///     ProfScope — and appends one fixed-size ProfSample to the thread's
///     pre-allocated ring. Publication is a single release store of the
///     ring count, exactly the tracer's never-wrap discipline.
///  2. **Frames are whole before they are visible.** Push writes the
///     frame fields, issues a signal fence, then increments the depth;
///     pop decrements the depth first. The handler (which runs on the
///     same thread it samples) therefore never observes a half-written
///     frame. All stores are relaxed atomics — plain movs on x86-64.
///  3. **Native PCs resolve through an injected lookup.** The
///     observability layer sits below the JIT in the link order, so the
///     CodeCache installs a PC-resolver function pointer at startup
///     (setPcResolver); the resolver itself is a per-slot seqlock scan
///     that *skips* inconsistent slots rather than retrying (a handler
///     must never spin on a writer it interrupted). A native-tier sample
///     whose PC does not resolve (the thread was inside a C++ runtime
///     helper called from native code) still attributes to the shadow
///     frame's method; it is counted in prof.native_pc_miss.
///
/// Allocation sampling: every ~JVM_PROF_ALLOC_BYTES bytes of new-object
/// allocation (default 64 KB), the allocating thread records one alloc
/// sample carrying the leaf frame's method+bci and the object's class
/// and size, weighted by the sampling period (each sample statistically
/// represents `period` bytes). The inter-sample budget is `period/2 +
/// uniform(0, period)` from a per-thread xorshift64 stream — mean
/// `period`, jittered so fixed-stride allocation loops cannot alias the
/// sampler, deterministic under JVM_PROF_SEED.
///
/// Cost when disabled: one relaxed atomic load (profWantsSamples /
/// profWantsAllocSamples) per gate, verified by bench_phase_overhead.
/// Frames entered while the profiler is off are not on the shadow stack;
/// enabling mid-run attributes only frames entered afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_OBSERVABILITY_PROFILER_H
#define JVM_OBSERVABILITY_PROFILER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jvm {

struct ProfTlsReleaser; // recycles a thread's state at thread exit

/// Execution tier a sample attributes to. Values 0..3 match the VM's
/// tier numbering (TracedTier); Runtime is the pseudo-tier for samples
/// taken with no shadow frame on the stack (driver code, compile broker
/// workers, GC threads).
enum ProfTier : uint8_t {
  ProfTierInterp = 0,
  ProfTierGraph = 1,
  ProfTierLinear = 2,
  ProfTierNative = 3,
  ProfTierRuntime = 4,
  ProfNumTiers = 5,
};

/// Short name of \p T ("interp", "graph", ...).
const char *profTierName(ProfTier T);

/// Frame-name suffix in folded output ("_[i]", "_[g]", "_[l]", "_[n]").
const char *profTierSuffix(ProfTier T);

/// One shadow-stack frame. Owner-thread written (relaxed stores), read
/// by the SIGPROF handler on the same thread.
struct ProfShadowFrame {
  std::atomic<int32_t> Method{-1};
  std::atomic<int32_t> Bci{-1};
  std::atomic<uint8_t> Tier{ProfTierRuntime};
};

/// One recorded sample, fixed size (the handler cannot allocate).
/// FrameMethod/FrameTier hold the shadow stack root-first, leaf last; a
/// stack deeper than StackCap keeps the leaf-most frames and sets
/// FlagTruncated.
struct ProfSample {
  static constexpr unsigned StackCap = 16;
  static constexpr uint8_t KindTick = 0;
  static constexpr uint8_t KindAlloc = 1;
  static constexpr uint8_t FlagPcResolved = 1; ///< native PC hit the index
  static constexpr uint8_t FlagPcMiss = 2;     ///< native-tier, PC unresolved
  static constexpr uint8_t FlagTruncated = 4;  ///< stack deeper than StackCap

  uint64_t TimeNanos = 0; ///< absolute CLOCK_MONOTONIC
  uint32_t Isolate = 0;
  uint8_t Kind = KindTick;
  uint8_t Tier = ProfTierRuntime; ///< leaf tier (Runtime = no frames)
  uint8_t NumFrames = 0;
  uint8_t Flags = 0;
  int32_t Method = -1; ///< leaf method (-1 = none)
  int32_t Bci = -1;    ///< leaf bytecode index (-1 = not interpreter-precise)
  int32_t Class = -1;  ///< alloc samples: class id (-1 = array/none)
  uint32_t Size = 0;   ///< alloc samples: object bytes
  uint64_t Weight = 0; ///< alloc samples: bytes this sample represents
  int32_t FrameMethod[StackCap] = {};
  uint8_t FrameTier[StackCap] = {};
};

/// Per-thread profiler state: the shadow stack the tiers maintain and
/// the sample ring the handler appends to. Owned by the Profiler (states
/// of exited threads are recycled for new threads — undrained samples
/// carry their isolate, so ownership handoff needs no flush).
struct ProfThreadState {
  static constexpr unsigned MaxDepth = 64;

  ProfShadowFrame Frames[MaxDepth];
  /// Frames [0, Depth) are valid. Owner-incremented after the frame is
  /// whole (signal fence in between); decrement-first on pop.
  std::atomic<uint32_t> Depth{0};
  /// Isolate currently executing on this thread (Isolate::call sets it).
  std::atomic<uint32_t> Isolate{0};

  /// Sample ring: never wraps; when full, new samples are counted in
  /// Dropped. Slots below Count are immutable until drained.
  std::vector<ProfSample> Ring;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Dropped{0};
  std::atomic<uint64_t> Truncated{0};
  /// Consumed by the drain thread only, under the profiler's drain lock.
  uint64_t DrainedTo = 0;

  // Allocation-sampling state: owner-thread only, never touched by the
  // handler (a tick interrupting an alloc-sample append sees a fully
  // written slot N and both writers store Count = N+1 — one tick is
  // statistically lost, the ring stays consistent).
  int64_t AllocBudget = 0;
  uint64_t Rng = 0;
  /// Registration index (stable across recycling) — seeds the rng stream.
  uint32_t Index = 0;

  /// Pushes a frame; null when the stack is full (the matching pop then
  /// does nothing — Depth only moves when a frame was actually pushed).
  ProfShadowFrame *push(ProfTier T, int32_t Method) {
    uint32_t D = Depth.load(std::memory_order_relaxed);
    if (D >= MaxDepth) {
      Truncated.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    ProfShadowFrame &F = Frames[D];
    F.Method.store(Method, std::memory_order_relaxed);
    F.Bci.store(-1, std::memory_order_relaxed);
    F.Tier.store(uint8_t(T), std::memory_order_relaxed);
    std::atomic_signal_fence(std::memory_order_release);
    Depth.store(D + 1, std::memory_order_relaxed);
    return &F;
  }

  void pop() {
    Depth.store(Depth.load(std::memory_order_relaxed) - 1,
                std::memory_order_relaxed);
    std::atomic_signal_fence(std::memory_order_release);
  }
};

namespace prof_detail {
/// Nonzero = profiler recording. The only word a disabled tier entry
/// ever touches.
extern std::atomic<uint32_t> Active;
/// Nonzero = allocation sampling armed (the period in bytes). The only
/// word the disabled allocation fast path ever touches.
extern std::atomic<uint64_t> AllocPeriod;
/// The calling thread's state; registered on first use (takes the
/// profiler mutex — mutator paths only, never the signal handler).
ProfThreadState *threadState();
extern thread_local ProfThreadState *TlsState;
} // namespace prof_detail

/// True if CPU sampling is on: one relaxed atomic load.
inline bool profWantsSamples() {
  return prof_detail::Active.load(std::memory_order_relaxed) != 0;
}

/// True if allocation sampling is armed: one relaxed atomic load.
inline bool profWantsAllocSamples() {
  return prof_detail::AllocPeriod.load(std::memory_order_relaxed) != 0;
}

/// Marks the calling thread as executing isolate \p Id (Isolate::call).
/// Cheap and idempotent; callers gate on profWantsSamples().
void profSetCurrentIsolate(uint32_t Id);

/// Charges \p SizeBytes of allocation against the calling thread's
/// sampling budget and records an alloc sample when it crosses zero.
/// \p ClassId is -1 for arrays. Callers gate on profWantsAllocSamples().
void profNoteAllocation(int32_t ClassId, uint32_t SizeBytes);

/// RAII shadow-stack frame for one tier-entry. When the profiler is off
/// at entry this is a relaxed load + branch and nothing else.
class ProfScope {
public:
  ProfScope(ProfTier T, uint32_t Method) {
    if (!profWantsSamples())
      return;
    S = prof_detail::threadState();
    F = S->push(T, int32_t(Method));
  }
  ~ProfScope() {
    if (F)
      S->pop();
  }

  /// Updates the frame's bytecode index (interpreter loop head). A test
  /// + store when profiling; compiled away to a test + branch when the
  /// scope was entered disabled.
  void setBci(int32_t Bci) {
    if (F)
      F->Bci.store(Bci, std::memory_order_relaxed);
  }

  ProfScope(const ProfScope &) = delete;
  ProfScope &operator=(const ProfScope &) = delete;

private:
  ProfThreadState *S = nullptr;
  ProfShadowFrame *F = nullptr;
};

class Profiler {
public:
  /// Resolves a native-tier PC to (method, isolate). Must be
  /// async-signal-safe. Installed by the CodeCache (setPcResolver).
  using PcResolverFn = bool (*)(uintptr_t Pc, uint32_t &MethodOut,
                                uint32_t &IsolateOut);

  /// Aggregated leaf-method self-time.
  struct MethodSamples {
    int32_t Method;
    uint64_t Count;
  };

  /// Aggregated allocation site.
  struct AllocSite {
    int32_t Method;
    int32_t Bci;
    int32_t Class; ///< -1 = array
    uint64_t Count;
    uint64_t Bytes;   ///< sum of sample weights (estimated bytes)
    uint64_t SizeSum; ///< sum of sampled object sizes
  };

  /// The process-global profiler (leaked; the atexit folded-stack writer
  /// and trace flush run after static destructors may have started).
  static Profiler &get();

  // Configuration (set before start(); a running profiler ignores them
  // until the next start()).
  void setRateHz(unsigned Hz) { RateHz = Hz; }           ///< 0 = no timer
  void setAllocPeriodBytes(uint64_t B) { AllocBytes = B; } ///< 0 = off
  void setSeed(uint64_t S) { Seed = S; }
  void setRingCapacity(size_t N);
  unsigned rateHz() const { return RateHz; }
  size_t ringCapacity() const;

  /// Arms the itimer (unless rate is 0) and opens the sampling gates.
  /// Also re-seeds every registered thread's allocation-sampling stream
  /// so fixed-seed runs are deterministic regardless of prior history.
  void start();
  /// Disarms the timer and closes the gates; buffered samples stay.
  void stop();
  bool enabled() const { return profWantsSamples(); }

  /// Installs the native-PC resolver (CodeCache startup).
  static void setPcResolver(PcResolverFn Fn);

  /// Snapshots \p MethodNames for isolate \p Id (index = method id) so
  /// reports can symbolize after the isolate dies. Ids are never reused.
  void registerIsolate(uint32_t Id, std::vector<std::string> MethodNames);

  /// The registered name of method \p Method in isolate \p Iso, or
  /// "m<id>" when unknown.
  std::string methodName(uint32_t Iso, int32_t Method) const;

  // Queries (each drains buffered samples first; dump after
  // waitForCompilerIdle for consistent values).
  uint64_t samplesForIsolate(uint32_t Iso, ProfTier T);
  uint64_t totalSamples();
  uint64_t allocSamplesForIsolate(uint32_t Iso);
  std::vector<MethodSamples> topMethods(uint32_t Iso, size_t N);
  std::vector<AllocSite> allocSites(uint32_t Iso);

  // Introspection counters (process-lifetime, like the tracer's).
  uint64_t droppedSamples() const;
  uint64_t highWater() const;
  uint64_t truncatedPushes() const;
  uint64_t otherThreadSamples() const;
  uint64_t pcResolved() {
    return counterAfterDrain(PcResolvedCount);
  }
  uint64_t pcMisses() { return counterAfterDrain(PcMissCount); }
  /// Samples with neither a shadow frame nor a resolved PC.
  uint64_t unattributedSamples() {
    return counterAfterDrain(UnattributedCount);
  }

  /// Folded-stack (flamegraph.pl collapsed) rendering of everything
  /// sampled: "isolate-<id>;name_[i];name_[n] 42\n" per distinct stack.
  std::string renderFolded();
  bool writeFolded(const std::string &Path);

  /// Synthesizes every drained tick/alloc sample as a TraceProf instant
  /// (Tracer::recordPrestamped), globally time-sorted. One shot: a
  /// second call emits nothing (samples drained after the first flush
  /// could carry timestamps older than instants already emitted, which
  /// would break the trace buffer's time-ordering invariant).
  void flushToTrace();

  /// Discards drained aggregates and pending ring contents (tests).
  void clear();

private:
  Profiler() = default;

  struct IsoTierKey {
    uint32_t Iso;
    uint8_t Tier;
    bool operator<(const IsoTierKey &O) const {
      return Iso != O.Iso ? Iso < O.Iso : Tier < O.Tier;
    }
  };
  struct LeafKey {
    uint32_t Iso;
    int32_t Method;
    bool operator<(const LeafKey &O) const {
      return Iso != O.Iso ? Iso < O.Iso : Method < O.Method;
    }
  };
  struct SiteKey {
    uint32_t Iso;
    int32_t Method;
    int32_t Bci;
    int32_t Class;
    bool operator<(const SiteKey &O) const {
      if (Iso != O.Iso)
        return Iso < O.Iso;
      if (Method != O.Method)
        return Method < O.Method;
      if (Bci != O.Bci)
        return Bci < O.Bci;
      return Class < O.Class;
    }
  };
  struct SiteAgg {
    uint64_t Count = 0;
    uint64_t Bytes = 0;
    uint64_t SizeSum = 0;
  };

  friend ProfThreadState *prof_detail::threadState();
  friend void profNoteAllocation(int32_t, uint32_t);
  friend struct ProfTlsReleaser;

  ProfThreadState *acquireThreadState();
  void releaseThreadState(ProfThreadState *S);
  /// Moves new ring contents into the aggregates (DrainMutex held).
  void drainLocked();
  uint64_t counterAfterDrain(uint64_t &C) {
    std::lock_guard<std::mutex> L(DrainMutex);
    drainLocked();
    return C;
  }
  void resetAllocStream(ProfThreadState &S);
  static int64_t nextAllocBudget(uint64_t &Rng, uint64_t Period);

  // Configuration.
  unsigned RateHz = 1000;
  uint64_t AllocBytes = 64 * 1024;
  uint64_t Seed = 0x5EED;
  std::atomic<size_t> RingCap{size_t(1) << 13};

  // Thread states: owned here, recycled through FreeStates when a
  // thread exits (its TLS destructor), so a grid of short-lived worker
  // threads does not grow rings without bound.
  mutable std::mutex StateMutex;
  std::vector<std::unique_ptr<ProfThreadState>> States;
  std::vector<ProfThreadState *> FreeStates;
  uint32_t NextIndex = 0;
  bool TimerArmed = false;
  bool HandlerInstalled = false;

  // Drained data (DrainMutex).
  mutable std::mutex DrainMutex;
  std::vector<ProfSample> Drained; ///< raw, for the one-shot trace flush
  bool TraceFlushed = false;
  std::map<IsoTierKey, uint64_t> TierCounts;
  std::map<LeafKey, uint64_t> LeafCounts;
  std::map<SiteKey, SiteAgg> Sites;
  std::map<std::string, uint64_t> FoldedCounts;
  uint64_t TotalTicks = 0;
  uint64_t TotalAllocSamples = 0;
  uint64_t PcResolvedCount = 0;
  uint64_t PcMissCount = 0;
  uint64_t UnattributedCount = 0;

  // Name tables (NameMutex; queried by reports after isolates die).
  mutable std::mutex NameMutex;
  std::map<uint32_t, std::vector<std::string>> IsoMethodNames;
};

} // namespace jvm

#endif // JVM_OBSERVABILITY_PROFILER_H
