//===- Trace.h - Low-overhead VM event tracing ----------------------*- C++ -*-===//
///
/// \file
/// The VM-wide event tracer: every layer of the VM (compile pipeline,
/// code installation, tier transitions, deoptimization, escape-analysis
/// materialization, monitors) records scoped spans and instant events
/// into per-thread append-only ring buffers, exportable as Chrome
/// `trace_event` JSON (load the file in chrome://tracing or Perfetto).
///
/// Design constraints, in order:
///
///  1. **Near-zero cost when off.** Tracing is compiled in but disabled
///     by default; the disabled fast path is ONE relaxed atomic load of
///     a process-global category mask (`traceWants`), verified by
///     bench_phase_overhead. No singleton init guard, no function call.
///  2. **Lock-free recording.** Each thread owns its buffer: the owner
///     appends with plain stores and publishes with one release store of
///     the count; readers (export/snapshot) acquire the count and never
///     race the writer. Buffers never wrap — when full, new events are
///     counted as dropped (never silently lost) and the drop counter is
///     surfaced through the metrics registry.
///  3. **Static strings only.** Event names, categories and argument
///     names must point to storage that outlives the tracer (string
///     literals in practice); dynamic payloads travel as integer args.
///
/// Enabling: set `JVM_TRACE=<file>` to trace from startup and write the
/// JSON at process exit, or call `Tracer::get().setEnabled(true)`
/// programmatically (tests). `JVM_TRACE_CATEGORIES` selects categories
/// ("all", or a comma list of compile,code,tier,deopt,pea,monitor,gc); the
/// high-frequency "pea" (runtime materialization sites) and "monitor"
/// categories are off by default, like Chrome's disabled-by-default
/// categories. `JVM_TRACE_RING` overrides the per-thread capacity.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_OBSERVABILITY_TRACE_H
#define JVM_OBSERVABILITY_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jvm {

/// Event categories, one bit each (JVM_TRACE_CATEGORIES selects a mask).
enum TraceCategory : uint32_t {
  TraceCompile = 1u << 0, ///< pipeline spans + per-phase spans, enqueue
  TraceCode = 1u << 1,    ///< install / invalidate / discard
  TraceTier = 1u << 2,    ///< interpreter->compiled, graph<->linear
  TraceDeopt = 1u << 3,   ///< deoptimizations (reason + remat payload)
  TracePea = 1u << 4,     ///< runtime materialization sites (high freq)
  TraceMonitor = 1u << 5, ///< monitor enter/exit (high freq)
  TraceGc = 1u << 6,      ///< scavenge / full-GC spans with byte payloads
  TraceProf = 1u << 7,    ///< profiler samples (instants, drained at export)
};

/// Categories traced when JVM_TRACE is set without JVM_TRACE_CATEGORIES:
/// everything except the per-operation high-frequency ones. GC spans are
/// per-collection (rare), so they are on by default; profiler samples
/// only exist when JVM_PROF is also set, so the category costs nothing
/// in an untraced-profiler or unprofiled-trace run.
constexpr uint32_t TraceDefaultCategories =
    TraceCompile | TraceCode | TraceTier | TraceDeopt | TraceGc | TraceProf;

/// Short name of \p C ("compile", "code", ...).
const char *traceCategoryName(TraceCategory C);

namespace trace_detail {
/// Bit i set = category i currently recording; 0 = tracing disabled.
/// The only word a disabled hot path ever touches.
extern std::atomic<uint32_t> ActiveMask;
} // namespace trace_detail

/// True if an event of category \p C would be recorded right now. The
/// hot-path gate: one relaxed atomic load, nothing else.
inline bool traceWants(TraceCategory C) {
  return (trace_detail::ActiveMask.load(std::memory_order_relaxed) & C) != 0;
}

/// One buffered event. All pointers must reference static storage.
struct TraceEvent {
  const char *Name = nullptr;
  const char *Cat = nullptr;
  char Ph = 'I';          ///< 'B' begin / 'E' end / 'I' instant
  uint32_t Tid = 0;       ///< tracer-assigned thread id
  uint64_t TimeNanos = 0; ///< steady clock, relative to tracer start
  // Up to three integer args and one static-string arg, rendered into
  // the Chrome "args" object. Null name = absent. The third slot exists
  // so multi-tenant events can carry an "isolate" id next to their
  // method/version payload without displacing either.
  const char *Arg0Name = nullptr;
  int64_t Arg0 = 0;
  const char *Arg1Name = nullptr;
  int64_t Arg1 = 0;
  const char *Arg2Name = nullptr;
  int64_t Arg2 = 0;
  const char *StrArgName = nullptr;
  const char *StrArg = nullptr;
};

class Tracer {
public:
  /// The process-global tracer (never destroyed; the JVM_TRACE exit hook
  /// must be able to export after static destructors start running).
  static Tracer &get();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Enables/disables recording (the category mask is preserved across
  /// toggles). Thread-safe; events already buffered are kept.
  void setEnabled(bool On);

  /// Replaces the category mask (TraceCategory bits).
  void setCategories(uint32_t Mask);
  uint32_t categories() const { return Mask.load(std::memory_order_relaxed); }

  /// Copies \p E into the calling thread's buffer (timestamp and tid are
  /// filled in here). Callers gate on traceWants() first.
  void record(TraceEvent E);

  /// Like record(), but keeps \p E's TimeNanos (which must already be
  /// relative to startNanos()). For events observed at one time and
  /// drained into the trace later — the profiler's signal-tick samples
  /// are stamped in the handler (where Tracer::record would not be
  /// signal-safe) and synthesized into instants at export time.
  void recordPrestamped(TraceEvent E);

  /// The steady-clock nanosecond the tracer's timeline starts at; callers
  /// holding absolute steady_clock stamps subtract this before
  /// recordPrestamped().
  uint64_t startNanos() const { return StartNanos; }

  /// Names the calling thread in exported traces (static string).
  void setCurrentThreadName(const char *Name);

  /// Installs a hook invoked right before the JVM_TRACE atexit export —
  /// how late drainers (the profiler) get their prestamped instants into
  /// the file without depending on atexit registration order between
  /// translation units. One hook; last install wins.
  static void setAtExitFlushHook(void (*Hook)());

  // Convenience recorders (still check nothing — gate with traceWants).
  // The trailing Arg2 pair sits after the string arg so pre-existing
  // positional call sites keep their meaning.
  void instant(TraceCategory C, const char *Name,
               const char *Arg0Name = nullptr, int64_t Arg0 = 0,
               const char *Arg1Name = nullptr, int64_t Arg1 = 0,
               const char *StrArgName = nullptr, const char *StrArg = nullptr,
               const char *Arg2Name = nullptr, int64_t Arg2 = 0);
  void begin(TraceCategory C, const char *Name,
             const char *Arg0Name = nullptr, int64_t Arg0 = 0,
             const char *Arg1Name = nullptr, int64_t Arg1 = 0);
  void end(TraceCategory C, const char *Name);

  // Introspection ------------------------------------------------------------
  /// Events dropped because a thread's buffer was full (never silent:
  /// surface this through the metrics registry and assert on it in
  /// perf-smoke runs).
  uint64_t droppedEvents() const;
  /// Largest number of events any thread ever buffered.
  uint64_t highWater() const;
  size_t ringCapacity() const { return Capacity; }

  /// All buffered events since the last clear(), buffer by buffer (each
  /// buffer's events in record order). Safe to call concurrently with
  /// recording; events being appended concurrently may or may not be
  /// included.
  std::vector<TraceEvent> snapshot() const;

  /// Logically discards buffered events and drop counts (tests re-use
  /// the process-global tracer). Buffers are floored, not rewound, so a
  /// concurrently recording thread is never raced; capacity consumed
  /// before the clear stays consumed.
  void clear();

  /// Renders everything buffered as a Chrome trace_event JSON object.
  std::string exportJson() const;

  /// Writes exportJson() to \p Path; false (with a warning) on I/O error.
  bool writeJson(const std::string &Path) const;

private:
  Tracer();

  struct ThreadBuffer {
    explicit ThreadBuffer(size_t Cap, uint32_t Tid) : Tid(Tid) {
      Events.resize(Cap);
    }
    std::vector<TraceEvent> Events;
    /// Committed events; owner-written (release), reader-acquired. The
    /// buffer never wraps, so slots below Count are immutable.
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> Dropped{0};
    /// snapshot()/export read from Floor instead of 0 after a clear().
    std::atomic<uint64_t> Floor{0};
    std::atomic<uint64_t> DroppedFloor{0};
    std::atomic<const char *> Name{nullptr};
    const uint32_t Tid;
  };

  ThreadBuffer &localBuffer();
  /// The dedicated buffer prestamped (drained) events land in: they carry
  /// historic timestamps, and appending them to the draining thread's own
  /// buffer would break that buffer's time-ordering invariant. One
  /// drainer at a time (the profiler's flush paths are serialized).
  ThreadBuffer &prestampedBuffer();

  const size_t Capacity;
  const uint64_t StartNanos;
  std::atomic<bool> Enabled{false};
  std::atomic<uint32_t> Mask{TraceDefaultCategories};
  mutable std::mutex RegistryMutex; ///< guards Buffers growth
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  std::atomic<ThreadBuffer *> Prestamped{nullptr};
  uint32_t NextTid = 1;
};

/// RAII span: records a 'B' event on construction and the matching 'E'
/// on destruction. The enabled decision is captured at construction so
/// pairs stay matched even if tracing toggles mid-scope.
class TraceScope {
public:
  TraceScope(TraceCategory C, const char *Name,
             const char *Arg0Name = nullptr, int64_t Arg0 = 0,
             const char *Arg1Name = nullptr, int64_t Arg1 = 0)
      : Cat(C), Name(Name) {
    Active = traceWants(C);
    if (Active)
      Tracer::get().begin(C, Name, Arg0Name, Arg0, Arg1Name, Arg1);
  }
  ~TraceScope() {
    if (Active)
      Tracer::get().end(Cat, Name);
  }

  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  TraceCategory Cat;
  const char *Name;
  bool Active;
};

} // namespace jvm

#endif // JVM_OBSERVABILITY_TRACE_H
