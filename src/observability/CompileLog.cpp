//===- CompileLog.cpp - Per-method structured compilation log ------------------===//

#include "observability/CompileLog.h"

#include <cstdio>

using namespace jvm;

void CompileLog::addRecord(unsigned Method, Record R) {
  std::lock_guard<std::mutex> L(Mutex);
  PerMethod[Method].push_back(std::move(R));
}

void CompileLog::addDeopt(unsigned Method, const char *Reason,
                          uint32_t Rematerialized, uint32_t GuardId) {
  std::lock_guard<std::mutex> L(Mutex);
  std::vector<Record> &Hist = PerMethod[Method];
  for (auto It = Hist.rbegin(); It != Hist.rend(); ++It) {
    if (!It->Installed)
      continue;
    It->Deopts.push_back(DeoptRec{Reason, Rematerialized, GuardId});
    return;
  }
}

std::vector<CompileLog::Record> CompileLog::recordsFor(unsigned Method) const {
  std::lock_guard<std::mutex> L(Mutex);
  return PerMethod[Method];
}

uint64_t CompileLog::numRecords() const {
  std::lock_guard<std::mutex> L(Mutex);
  uint64_t N = 0;
  for (const auto &Hist : PerMethod)
    N += Hist.size();
  return N;
}

std::string CompileLog::renderText() const {
  std::lock_guard<std::mutex> L(Mutex);
  std::string Out;
  char Buf[256];
  for (unsigned M = 0, E = PerMethod.size(); M != E; ++M) {
    if (PerMethod[M].empty())
      continue;
    std::snprintf(Buf, sizeof(Buf), "method m%u: %zu compilation(s)\n", M,
                  PerMethod[M].size());
    Out += Buf;
    for (const Record &R : PerMethod[M]) {
      std::snprintf(Buf, sizeof(Buf),
                    "  compile #%llu hotness=%llu %s version=%llu "
                    "total=%lluus enqueue-to-install=%lluus nodes=%u\n",
                    static_cast<unsigned long long>(R.CompileSeq),
                    static_cast<unsigned long long>(R.Hotness),
                    R.Installed ? "installed" : "DISCARDED",
                    static_cast<unsigned long long>(R.Version),
                    static_cast<unsigned long long>(R.TotalNanos / 1000),
                    static_cast<unsigned long long>(
                        R.EnqueueToInstallNanos / 1000),
                    R.FinalNodes);
      Out += Buf;
      for (const PhaseRec &P : R.Phases) {
        std::snprintf(Buf, sizeof(Buf),
                      "    phase %-16s %8lluus nodes %u -> %u%s\n",
                      P.Name.c_str(),
                      static_cast<unsigned long long>(P.Nanos / 1000),
                      P.NodesBefore, P.NodesAfter,
                      P.Changed ? "" : " (no change)");
        Out += Buf;
      }
      if (R.Escape.VirtualizedAllocations || R.Escape.MaterializeSites ||
          R.Escape.ElidedMonitorOps || R.Escape.VirtualizedStates) {
        std::snprintf(Buf, sizeof(Buf),
                      "    pea virtualized=%u materialize-sites=%u "
                      "elided-monitors=%u rewritten-states=%u\n",
                      R.Escape.VirtualizedAllocations,
                      R.Escape.MaterializeSites, R.Escape.ElidedMonitorOps,
                      R.Escape.VirtualizedStates);
        Out += Buf;
      }
      if (R.NativeBytes) {
        std::snprintf(Buf, sizeof(Buf), "    native emit=%lluus bytes=%llu\n",
                      static_cast<unsigned long long>(R.NativeEmitNanos / 1000),
                      static_cast<unsigned long long>(R.NativeBytes));
        Out += Buf;
      }
      for (size_t I = 0; I != R.Speculations.size(); ++I) {
        const SpeshRec &S = R.Speculations[I];
        std::snprintf(Buf, sizeof(Buf),
                      "    spesh guard=%zu kind=%s site=%d %s\n", I,
                      S.Kind.c_str(), S.Site, S.Detail.c_str());
        Out += Buf;
      }
      for (const DeoptRec &D : R.Deopts) {
        if (D.GuardId == NoGuard)
          std::snprintf(Buf, sizeof(Buf),
                        "    deopt reason=%s rematerialized=%u\n",
                        D.Reason.c_str(), D.Rematerialized);
        else
          std::snprintf(Buf, sizeof(Buf),
                        "    deopt reason=%s rematerialized=%u guard=%u\n",
                        D.Reason.c_str(), D.Rematerialized, D.GuardId);
        Out += Buf;
      }
    }
  }
  return Out;
}
