//===- CompileLog.h - Per-method structured compilation log ---------*- C++ -*-===//
///
/// \file
/// A structured per-method compilation history, in the spirit of
/// HotSpot's -XX:+LogCompilation: for every pipeline run the VM records
/// the hotness that triggered it, each phase executed with its wall time
/// and live-node count before/after, the escape-analysis decisions
/// (allocations virtualized, materialize sites inserted, states
/// rewritten), whether the result installed (and as which code version)
/// or was discarded stale, the enqueue-to-install latency — and, after
/// installation, every deoptimization the code takes with its reason and
/// how many scalar-replaced virtual objects had to be rematerialized.
///
/// Tests query it through VirtualMachine::compileLog(); setting
/// `JVM_COMPILE_LOG=<file>` makes every VM append its rendered log there
/// at destruction.
///
/// Thread safety: records are added by broker workers (install path) and
/// the mutator (deopts) under an internal mutex; reads from the mutator
/// after waitForCompilerIdle() observe a consistent history.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_OBSERVABILITY_COMPILELOG_H
#define JVM_OBSERVABILITY_COMPILELOG_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace jvm {

class CompileLog {
public:
  /// One phase execution inside one pipeline run.
  struct PhaseRec {
    std::string Name;
    uint64_t Nanos = 0;
    uint32_t NodesBefore = 0;
    uint32_t NodesAfter = 0;
    bool Changed = false;
  };

  /// GuardId sentinel for deopts not tied to a speculation-plan guard
  /// (mirrors NoSpeculationId; the log layer has no IR dependency).
  static constexpr uint32_t NoGuard = ~0u;

  /// One deoptimization taken by installed code.
  struct DeoptRec {
    std::string Reason;
    uint32_t Rematerialized = 0; ///< virtual objects rebuilt on the heap
    /// Speculation-plan index of the failing guard, or NoGuard for
    /// builder-inserted deopts (legacy branch pruning / devirt).
    uint32_t GuardId = NoGuard;
  };

  /// One speculation the planner committed to in one pipeline run.
  /// Index in the Speculations vector == the guard id failing deopts
  /// report, so the log alone links a guard-fail back to its decision.
  struct SpeshRec {
    std::string Kind; ///< "receiver-pin" / "arg-const" / "branch-prune"
    int Site = 0;     ///< bci (receiver-pin, branch-prune) or arg index
    std::string Detail; ///< pinned class / constant value / direction
  };

  /// PEA work done by one pipeline run (mirrors PEAStats, flattened so
  /// the log has no compiler dependencies).
  struct EscapeRec {
    uint32_t VirtualizedAllocations = 0;
    uint32_t MaterializeSites = 0;
    uint32_t ElidedMonitorOps = 0;
    uint32_t VirtualizedStates = 0;
  };

  /// One pipeline run of one method.
  struct Record {
    uint64_t CompileSeq = 0; ///< process-wide compile ordinal
    uint64_t Hotness = 0;    ///< hotness at enqueue/trigger time
    bool Installed = false;  ///< false: discarded stale (version raced)
    uint64_t Version = 0;    ///< code version installed as (if Installed)
    uint64_t TotalNanos = 0;
    uint64_t EnqueueToInstallNanos = 0;
    uint32_t FinalNodes = 0;
    EscapeRec Escape;
    uint64_t NativeEmitNanos = 0; ///< copy-and-patch emit time (0: no native)
    uint64_t NativeBytes = 0;     ///< installed machine-code bytes (0: fell
                                  ///< back to the linear tier)
    std::vector<PhaseRec> Phases;
    /// The speculation plan this compile was built with (guard id space).
    std::vector<SpeshRec> Speculations;
    std::vector<DeoptRec> Deopts; ///< appended while this code is live
  };

  explicit CompileLog(unsigned NumMethods) : PerMethod(NumMethods) {}

  /// Appends \p R to \p Method's history.
  void addRecord(unsigned Method, Record R);

  /// Attributes a deoptimization to \p Method's latest installed record
  /// (no-op if the method has none — e.g. its code was logged before an
  /// invalidation raced the log, or compilation was synchronous-legacy).
  void addDeopt(unsigned Method, const char *Reason, uint32_t Rematerialized,
                uint32_t GuardId = NoGuard);

  /// Copy of \p Method's history (copied under the lock; cheap at test
  /// scale, race-free at broker scale).
  std::vector<Record> recordsFor(unsigned Method) const;

  /// Total pipeline runs logged over all methods.
  uint64_t numRecords() const;

  /// Human-readable rendering of the whole log; one block per compiled
  /// method, pipeline runs in compile order.
  std::string renderText() const;

private:
  mutable std::mutex Mutex;
  std::vector<std::vector<Record>> PerMethod;
};

} // namespace jvm

#endif // JVM_OBSERVABILITY_COMPILELOG_H
