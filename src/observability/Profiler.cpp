//===- Profiler.cpp - Sampling profiler implementation --------------------------===//

#include "observability/Profiler.h"

#include "observability/Trace.h"
#include "support/Env.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/time.h>
#define JVM_PROF_HAVE_ITIMER 1
#endif
#if defined(__linux__) && defined(__x86_64__)
#include <ucontext.h>
#define JVM_PROF_HAVE_PC 1
#endif

using namespace jvm;

namespace jvm {
namespace prof_detail {
std::atomic<uint32_t> Active{0};
std::atomic<uint64_t> AllocPeriod{0};
thread_local ProfThreadState *TlsState = nullptr;
} // namespace prof_detail
} // namespace jvm

namespace {

/// The singleton, raw (the handler must reach it without the function-
/// local-static guard in Profiler::get(), which is not signal-safe the
/// first time through).
std::atomic<Profiler *> GProfiler{nullptr};

/// Handler-touched globals live here, not in the class: the handler
/// performs only loads/stores on process-lifetime atomics.
std::atomic<Profiler::PcResolverFn> GPcResolver{nullptr};
std::atomic<uint64_t> GOtherThreadSamples{0};

uint64_t nowNanos() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts); // async-signal-safe per POSIX
  return uint64_t(Ts.tv_sec) * 1000000000ull + uint64_t(Ts.tv_nsec);
}

uint64_t xorshift64(uint64_t &X) {
  X ^= X << 13;
  X ^= X >> 7;
  X ^= X << 17;
  return X;
}

/// Copies the shadow stack into \p Smp (frames root-first, leaf-most
/// ProfSample::StackCap kept) and fills the leaf attribution. Runs in
/// the handler and on the mutator alloc path — loads and stores only.
void fillFromShadowStack(ProfThreadState &S, ProfSample &Smp, uintptr_t Pc) {
  uint32_t D = S.Depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (D == 0) {
    Smp.Tier = ProfTierRuntime;
    return;
  }
  if (D > ProfThreadState::MaxDepth) // cannot happen; belt and braces
    D = ProfThreadState::MaxDepth;
  uint32_t Start = 0;
  if (D > ProfSample::StackCap) {
    Start = D - ProfSample::StackCap;
    Smp.Flags |= ProfSample::FlagTruncated;
  }
  unsigned K = 0;
  for (uint32_t I = Start; I < D; ++I, ++K) {
    Smp.FrameMethod[K] = S.Frames[I].Method.load(std::memory_order_relaxed);
    Smp.FrameTier[K] = S.Frames[I].Tier.load(std::memory_order_relaxed);
  }
  Smp.NumFrames = uint8_t(K);
  const ProfShadowFrame &Leaf = S.Frames[D - 1];
  Smp.Method = Leaf.Method.load(std::memory_order_relaxed);
  Smp.Bci = Leaf.Bci.load(std::memory_order_relaxed);
  Smp.Tier = Leaf.Tier.load(std::memory_order_relaxed);
  if (Smp.Tier == ProfTierNative) {
    Profiler::PcResolverFn Fn = GPcResolver.load(std::memory_order_relaxed);
    uint32_t M = 0, Iso = 0;
    if (Fn && Pc && Fn(Pc, M, Iso))
      Smp.Flags |= ProfSample::FlagPcResolved;
    else
      Smp.Flags |= ProfSample::FlagPcMiss;
  }
}

/// Appends \p Smp to \p S's ring: never wraps, drop-newest when full,
/// one release store publishes. Safe against a tick interrupting a
/// mutator alloc-sample append: both writers fully fill slot N and both
/// store Count = N+1 — one tick is statistically lost, the ring stays
/// consistent.
void appendSample(ProfThreadState &S, const ProfSample &Smp) {
  uint64_t N = S.Count.load(std::memory_order_relaxed);
  if (N >= S.Ring.size()) {
    S.Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  S.Ring[N] = Smp;
  S.Count.store(N + 1, std::memory_order_release);
}

#ifdef JVM_PROF_HAVE_ITIMER
void profSignalHandler(int /*Sig*/, siginfo_t * /*Info*/, void *Uc) {
  int SavedErrno = errno;
  uintptr_t Pc = 0;
#ifdef JVM_PROF_HAVE_PC
  if (Uc)
    Pc = uintptr_t(
        static_cast<ucontext_t *>(Uc)->uc_mcontext.gregs[REG_RIP]);
#else
  (void)Uc;
#endif
  ProfThreadState *S = prof_detail::TlsState;
  if (!S) {
    // Broker / GC worker / dying thread: counted, runtime pseudo-tier.
    GOtherThreadSamples.fetch_add(1, std::memory_order_relaxed);
    errno = SavedErrno;
    return;
  }
  ProfSample Smp;
  Smp.TimeNanos = nowNanos();
  Smp.Isolate = S->Isolate.load(std::memory_order_relaxed);
  Smp.Kind = ProfSample::KindTick;
  fillFromShadowStack(*S, Smp, Pc);
  appendSample(*S, Smp);
  errno = SavedErrno;
}
#endif // JVM_PROF_HAVE_ITIMER

/// Folded frame names may not contain the format's separators.
void appendSanitized(std::string &Out, const std::string &Name) {
  for (char C : Name)
    Out += (C == ';' || C == ' ' || C == '\n' || C == '\t') ? '_' : C;
}

unsigned parseUnsigned(const char *V, unsigned Default, unsigned Lo,
                       unsigned Hi) {
  if (!V || !*V)
    return Default;
  char *End = nullptr;
  unsigned long N = std::strtoul(V, &End, 10);
  if (End == V)
    return Default;
  if (N < Lo)
    N = Lo;
  if (N > Hi)
    N = Hi;
  return unsigned(N);
}

void profAtExit();
void profTraceFlushHook();

bool initFromEnvironment(Profiler &P) {
  const EnvSnapshot &E = EnvSnapshot::process();
  if (E.ProfHz)
    P.setRateHz(parseUnsigned(E.ProfHz, 1000, 0, 10000));
  if (E.ProfAllocBytes)
    P.setAllocPeriodBytes(
        parseUnsigned(E.ProfAllocBytes, 64 * 1024, 0, 1u << 30));
  if (E.ProfSeed)
    P.setSeed(std::strtoull(E.ProfSeed, nullptr, 10));
  if (E.ProfRing)
    P.setRingCapacity(parseUnsigned(E.ProfRing, 1u << 13, 256, 1u << 20));
  if (EnvSnapshot::isSet(E.Prof)) {
    std::atexit(profAtExit);
    Tracer::setAtExitFlushHook(&profTraceFlushHook);
    P.start();
  }
  return true;
}

struct ProfEagerInit {
  ProfEagerInit() { Profiler::get(); }
} EagerInit;

} // namespace

namespace jvm {

/// Returns the calling thread's state to the profiler's free list when
/// the thread exits, so worker-thread churn (the multi-tenant grid)
/// re-uses rings instead of growing them without bound.
struct ProfTlsReleaser {
  ~ProfTlsReleaser() {
    ProfThreadState *S = prof_detail::TlsState;
    if (!S)
      return;
    prof_detail::TlsState = nullptr;
    std::atomic_signal_fence(std::memory_order_seq_cst);
    if (Profiler *P = GProfiler.load(std::memory_order_acquire))
      P->releaseThreadState(S);
  }
};

const char *profTierName(ProfTier T) {
  switch (T) {
  case ProfTierInterp:
    return "interp";
  case ProfTierGraph:
    return "graph";
  case ProfTierLinear:
    return "linear";
  case ProfTierNative:
    return "native";
  default:
    return "runtime";
  }
}

const char *profTierSuffix(ProfTier T) {
  switch (T) {
  case ProfTierInterp:
    return "_[i]";
  case ProfTierGraph:
    return "_[g]";
  case ProfTierLinear:
    return "_[l]";
  case ProfTierNative:
    return "_[n]";
  default:
    return "";
  }
}

ProfThreadState *prof_detail::threadState() {
  if (ProfThreadState *S = TlsState)
    return S;
  ProfThreadState *S = Profiler::get().acquireThreadState();
  TlsState = S;
  static thread_local ProfTlsReleaser Releaser;
  (void)Releaser;
  return S;
}

void profSetCurrentIsolate(uint32_t Id) {
  prof_detail::threadState()->Isolate.store(Id, std::memory_order_relaxed);
}

void profNoteAllocation(int32_t ClassId, uint32_t SizeBytes) {
  ProfThreadState *S = prof_detail::threadState();
  S->AllocBudget -= int64_t(SizeBytes);
  if (S->AllocBudget > 0)
    return;
  uint64_t Period = prof_detail::AllocPeriod.load(std::memory_order_relaxed);
  if (!Period) {
    S->AllocBudget = 1 << 30;
    return;
  }
  ProfSample Smp;
  Smp.TimeNanos = nowNanos();
  Smp.Isolate = S->Isolate.load(std::memory_order_relaxed);
  Smp.Kind = ProfSample::KindAlloc;
  fillFromShadowStack(*S, Smp, 0);
  Smp.Class = ClassId;
  Smp.Size = SizeBytes;
  Smp.Weight = Period;
  appendSample(*S, Smp);
  S->AllocBudget = Profiler::nextAllocBudget(S->Rng, Period);
}

Profiler &Profiler::get() {
  // Leaked on purpose: the atexit folded writer and the tracer's
  // pre-export flush hook run after static destruction may have begun.
  static Profiler *P = new Profiler();
  static bool Registered =
      (GProfiler.store(P, std::memory_order_release), true);
  (void)Registered;
  static bool EnvInit = initFromEnvironment(*P);
  (void)EnvInit;
  return *P;
}

void Profiler::setPcResolver(PcResolverFn Fn) {
  GPcResolver.store(Fn, std::memory_order_relaxed);
}

void Profiler::setRingCapacity(size_t N) {
  if (N < 256)
    N = 256;
  if (N > (size_t(1) << 20))
    N = size_t(1) << 20;
  RingCap.store(N, std::memory_order_relaxed);
}

size_t Profiler::ringCapacity() const {
  return RingCap.load(std::memory_order_relaxed);
}

int64_t Profiler::nextAllocBudget(uint64_t &Rng, uint64_t Period) {
  // Mean = Period, jittered so fixed-stride allocation loops cannot
  // alias the sampler; deterministic for a fixed seed.
  return int64_t(Period / 2 + xorshift64(Rng) % (Period | 1));
}

void Profiler::resetAllocStream(ProfThreadState &S) {
  S.Rng = (Seed ^ 0x9E3779B97F4A7C15ull) +
          0x9E3779B97F4A7C15ull * (uint64_t(S.Index) + 1);
  if (!S.Rng)
    S.Rng = 1;
  S.AllocBudget = nextAllocBudget(S.Rng, AllocBytes ? AllocBytes : 1);
}

ProfThreadState *Profiler::acquireThreadState() {
  std::lock_guard<std::mutex> L(StateMutex);
  ProfThreadState *S;
  if (!FreeStates.empty()) {
    S = FreeStates.back();
    FreeStates.pop_back();
  } else {
    States.push_back(std::make_unique<ProfThreadState>());
    S = States.back().get();
    S->Index = NextIndex++;
    S->Ring.resize(RingCap.load(std::memory_order_relaxed));
  }
  resetAllocStream(*S);
  return S;
}

void Profiler::releaseThreadState(ProfThreadState *S) {
  std::lock_guard<std::mutex> L(StateMutex);
  // Undrained samples stay in the ring (they carry their isolate); the
  // next owner simply keeps appending.
  S->Depth.store(0, std::memory_order_relaxed);
  FreeStates.push_back(S);
}

void Profiler::start() {
  {
    std::lock_guard<std::mutex> L(StateMutex);
    for (auto &S : States)
      resetAllocStream(*S);
  }
  prof_detail::AllocPeriod.store(AllocBytes, std::memory_order_relaxed);
  prof_detail::Active.store(1, std::memory_order_relaxed);
#ifdef JVM_PROF_HAVE_ITIMER
  if (RateHz) {
    std::lock_guard<std::mutex> L(StateMutex);
    if (!HandlerInstalled) {
      struct sigaction Sa;
      std::memset(&Sa, 0, sizeof(Sa));
      Sa.sa_sigaction = profSignalHandler;
      Sa.sa_flags = SA_SIGINFO | SA_RESTART;
      sigemptyset(&Sa.sa_mask);
      if (sigaction(SIGPROF, &Sa, nullptr) != 0) {
        std::fprintf(stderr, "warning: profiler sigaction failed: %s\n",
                     std::strerror(errno));
        return;
      }
      HandlerInstalled = true;
    }
    long IntervalUs = long(1000000 / RateHz);
    if (IntervalUs <= 0)
      IntervalUs = 1;
    itimerval Tv;
    Tv.it_interval.tv_sec = 0;
    Tv.it_interval.tv_usec = IntervalUs;
    Tv.it_value = Tv.it_interval;
    if (setitimer(ITIMER_PROF, &Tv, nullptr) != 0)
      std::fprintf(stderr, "warning: profiler setitimer failed: %s\n",
                   std::strerror(errno));
    else
      TimerArmed = true;
  }
#endif
}

void Profiler::stop() {
#ifdef JVM_PROF_HAVE_ITIMER
  {
    std::lock_guard<std::mutex> L(StateMutex);
    if (TimerArmed) {
      itimerval Tv;
      std::memset(&Tv, 0, sizeof(Tv));
      setitimer(ITIMER_PROF, &Tv, nullptr);
      TimerArmed = false;
    }
  }
#endif
  prof_detail::Active.store(0, std::memory_order_relaxed);
  prof_detail::AllocPeriod.store(0, std::memory_order_relaxed);
}

void Profiler::registerIsolate(uint32_t Id,
                               std::vector<std::string> MethodNames) {
  std::lock_guard<std::mutex> L(NameMutex);
  IsoMethodNames[Id] = std::move(MethodNames);
}

std::string Profiler::methodName(uint32_t Iso, int32_t Method) const {
  if (Method >= 0) {
    std::lock_guard<std::mutex> L(NameMutex);
    auto It = IsoMethodNames.find(Iso);
    if (It != IsoMethodNames.end() && size_t(Method) < It->second.size() &&
        !It->second[size_t(Method)].empty())
      return It->second[size_t(Method)];
  }
  return "m" + std::to_string(Method);
}

void Profiler::drainLocked() {
  std::lock_guard<std::mutex> L(StateMutex);
  for (auto &SP : States) {
    ProfThreadState &S = *SP;
    uint64_t N = S.Count.load(std::memory_order_acquire);
    for (uint64_t I = S.DrainedTo; I < N; ++I) {
      const ProfSample &Smp = S.Ring[I];
      Drained.push_back(Smp);
      if (Smp.Kind == ProfSample::KindAlloc) {
        ++TotalAllocSamples;
        SiteAgg &A = Sites[{Smp.Isolate, Smp.Method, Smp.Bci, Smp.Class}];
        ++A.Count;
        A.Bytes += Smp.Weight;
        A.SizeSum += Smp.Size;
        continue;
      }
      ++TotalTicks;
      ++TierCounts[{Smp.Isolate, Smp.Tier}];
      if (Smp.Flags & ProfSample::FlagPcResolved)
        ++PcResolvedCount;
      if (Smp.Flags & ProfSample::FlagPcMiss)
        ++PcMissCount;
      if (Smp.NumFrames == 0) {
        ++FoldedCounts["runtime"];
        continue;
      }
      if (Smp.Method < 0 && !(Smp.Flags & ProfSample::FlagPcResolved))
        ++UnattributedCount;
      ++LeafCounts[{Smp.Isolate, Smp.Method}];
      std::string Key = "isolate-" + std::to_string(Smp.Isolate);
      for (unsigned F = 0; F < Smp.NumFrames; ++F) {
        Key += ';';
        appendSanitized(Key, methodName(Smp.Isolate, Smp.FrameMethod[F]));
        Key += profTierSuffix(ProfTier(Smp.FrameTier[F]));
      }
      ++FoldedCounts[Key];
    }
    S.DrainedTo = N;
  }
}

uint64_t Profiler::samplesForIsolate(uint32_t Iso, ProfTier T) {
  std::lock_guard<std::mutex> L(DrainMutex);
  drainLocked();
  auto It = TierCounts.find({Iso, uint8_t(T)});
  return It == TierCounts.end() ? 0 : It->second;
}

uint64_t Profiler::totalSamples() {
  std::lock_guard<std::mutex> L(DrainMutex);
  drainLocked();
  return TotalTicks;
}

uint64_t Profiler::allocSamplesForIsolate(uint32_t Iso) {
  std::lock_guard<std::mutex> L(DrainMutex);
  drainLocked();
  uint64_t N = 0;
  for (const auto &KV : Sites)
    if (KV.first.Iso == Iso)
      N += KV.second.Count;
  return N;
}

std::vector<Profiler::MethodSamples> Profiler::topMethods(uint32_t Iso,
                                                          size_t N) {
  std::lock_guard<std::mutex> L(DrainMutex);
  drainLocked();
  std::vector<MethodSamples> All;
  for (const auto &KV : LeafCounts)
    if (KV.first.Iso == Iso)
      All.push_back({KV.first.Method, KV.second});
  std::sort(All.begin(), All.end(),
            [](const MethodSamples &A, const MethodSamples &B) {
              return A.Count != B.Count ? A.Count > B.Count
                                        : A.Method < B.Method;
            });
  if (All.size() > N)
    All.resize(N);
  return All;
}

std::vector<Profiler::AllocSite> Profiler::allocSites(uint32_t Iso) {
  std::lock_guard<std::mutex> L(DrainMutex);
  drainLocked();
  std::vector<AllocSite> Out;
  for (const auto &KV : Sites)
    if (KV.first.Iso == Iso)
      Out.push_back({KV.first.Method, KV.first.Bci, KV.first.Class,
                     KV.second.Count, KV.second.Bytes, KV.second.SizeSum});
  std::sort(Out.begin(), Out.end(), [](const AllocSite &A, const AllocSite &B) {
    return A.Bytes != B.Bytes ? A.Bytes > B.Bytes
                              : (A.Method != B.Method ? A.Method < B.Method
                                                      : A.Bci < B.Bci);
  });
  return Out;
}

uint64_t Profiler::droppedSamples() const {
  std::lock_guard<std::mutex> L(StateMutex);
  uint64_t N = 0;
  for (const auto &S : States)
    N += S->Dropped.load(std::memory_order_relaxed);
  return N;
}

uint64_t Profiler::highWater() const {
  std::lock_guard<std::mutex> L(StateMutex);
  uint64_t N = 0;
  for (const auto &S : States)
    N = std::max(N, S->Count.load(std::memory_order_relaxed));
  return N;
}

uint64_t Profiler::truncatedPushes() const {
  std::lock_guard<std::mutex> L(StateMutex);
  uint64_t N = 0;
  for (const auto &S : States)
    N += S->Truncated.load(std::memory_order_relaxed);
  return N;
}

uint64_t Profiler::otherThreadSamples() const {
  return GOtherThreadSamples.load(std::memory_order_relaxed);
}

std::string Profiler::renderFolded() {
  std::lock_guard<std::mutex> L(DrainMutex);
  drainLocked();
  std::string Out;
  uint64_t Runtime = GOtherThreadSamples.load(std::memory_order_relaxed);
  for (const auto &KV : FoldedCounts) {
    if (KV.first == "runtime") {
      Runtime += KV.second;
      continue;
    }
    Out += KV.first;
    Out += ' ';
    Out += std::to_string(KV.second);
    Out += '\n';
  }
  if (Runtime) {
    Out += "runtime ";
    Out += std::to_string(Runtime);
    Out += '\n';
  }
  return Out;
}

bool Profiler::writeFolded(const std::string &Path) {
  std::string Body = renderFolded();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write folded profile to %s: %s\n",
                 Path.c_str(), std::strerror(errno));
    return false;
  }
  bool Ok = std::fwrite(Body.data(), 1, Body.size(), F) == Body.size();
  if (std::fclose(F) != 0)
    Ok = false;
  return Ok;
}

void Profiler::flushToTrace() {
  std::lock_guard<std::mutex> L(DrainMutex);
  drainLocked();
  if (TraceFlushed || !traceWants(TraceProf))
    return;
  TraceFlushed = true;
  std::vector<size_t> Order(Drained.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [this](size_t A, size_t B) {
    return Drained[A].TimeNanos < Drained[B].TimeNanos;
  });
  Tracer &T = Tracer::get();
  uint64_t Start = T.startNanos();
  for (size_t I : Order) {
    const ProfSample &Smp = Drained[I];
    TraceEvent E;
    E.Name = Smp.Kind == ProfSample::KindAlloc ? "prof-alloc" : "prof-sample";
    E.Cat = traceCategoryName(TraceProf);
    E.Ph = 'I';
    E.TimeNanos = Smp.TimeNanos > Start ? Smp.TimeNanos - Start : 0;
    E.Arg0Name = "isolate";
    E.Arg0 = Smp.Isolate;
    E.Arg1Name = "method";
    E.Arg1 = Smp.Method;
    E.Arg2Name = "tier";
    E.Arg2 = Smp.Tier;
    T.recordPrestamped(E);
  }
}

void Profiler::clear() {
  std::lock_guard<std::mutex> L(DrainMutex);
  {
    std::lock_guard<std::mutex> L2(StateMutex);
    for (auto &S : States) {
      S->DrainedTo = S->Count.load(std::memory_order_acquire);
      S->Dropped.store(0, std::memory_order_relaxed);
      S->Truncated.store(0, std::memory_order_relaxed);
    }
  }
  Drained.clear();
  TierCounts.clear();
  LeafCounts.clear();
  Sites.clear();
  FoldedCounts.clear();
  TotalTicks = TotalAllocSamples = 0;
  PcResolvedCount = PcMissCount = UnattributedCount = 0;
  TraceFlushed = false;
  GOtherThreadSamples.store(0, std::memory_order_relaxed);
}

} // namespace jvm

namespace {

void profTraceFlushHook() {
  if (Profiler *P = GProfiler.load(std::memory_order_acquire))
    P->flushToTrace();
}

void profAtExit() {
  Profiler &P = Profiler::get();
  P.stop();
  const EnvSnapshot &E = EnvSnapshot::process();
  if (EnvSnapshot::isSet(E.ProfFolded))
    P.writeFolded(E.ProfFolded);
}

} // namespace
