//===- Metrics.cpp - Unified VM metrics registry -------------------------------===//

#include "observability/Metrics.h"

#include "support/ErrorHandling.h"

#include <cstdio>

using namespace jvm;

uint64_t MetricHistogram::percentileUpperBound(double P) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  uint64_t Need = static_cast<uint64_t>(P * Total);
  if (Need < 1)
    Need = 1;
  uint64_t Seen = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Seen += bucketCount(I);
    if (Seen >= Need)
      return I == 64 ? UINT64_MAX : (uint64_t(1) << I);
  }
  return UINT64_MAX;
}

MetricsRegistry::Entry *MetricsRegistry::find(const std::string &Name) {
  for (auto &E : Entries)
    if (E->Name == Name)
      return E.get();
  return nullptr;
}

const MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &Name) const {
  for (const auto &E : Entries)
    if (E->Name == Name)
      return E.get();
  return nullptr;
}

MetricCounter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mutex);
  if (Entry *E = find(Name)) {
    if (E->K != Kind::Counter)
      reportFatalError(
          ("metric name registered with a different kind: " + Name).c_str(),
          __FILE__, __LINE__);
    return *E->C;
  }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->K = Kind::Counter;
  E->C = std::make_unique<MetricCounter>();
  Entries.push_back(std::move(E));
  return *Entries.back()->C;
}

MetricHistogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mutex);
  if (Entry *E = find(Name)) {
    if (E->K != Kind::Histogram)
      reportFatalError(
          ("metric name registered with a different kind: " + Name).c_str(),
          __FILE__, __LINE__);
    return *E->H;
  }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->K = Kind::Histogram;
  E->H = std::make_unique<MetricHistogram>();
  Entries.push_back(std::move(E));
  return *Entries.back()->H;
}

void MetricsRegistry::gauge(const std::string &Name, GaugeFn Read) {
  std::lock_guard<std::mutex> L(Mutex);
  if (find(Name))
    reportFatalError(("duplicate gauge registration: " + Name).c_str(),
                     __FILE__, __LINE__);
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->K = Kind::Gauge;
  E->G = std::move(Read);
  Entries.push_back(std::move(E));
}

void MetricsRegistry::provider(ProviderFn Emit) {
  std::lock_guard<std::mutex> L(Mutex);
  Providers.push_back(std::move(Emit));
}

bool MetricsRegistry::has(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mutex);
  return find(Name) != nullptr;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> L(Mutex);
  return Entries.size();
}

void MetricsRegistry::forEachValue(
    const std::function<void(const std::string &, uint64_t)> &Row) const {
  // Callbacks (gauges, providers) must not re-enter the registry.
  std::lock_guard<std::mutex> L(Mutex);
  for (const auto &E : Entries) {
    switch (E->K) {
    case Kind::Counter:
      Row(E->Name, E->C->value());
      break;
    case Kind::Gauge:
      Row(E->Name, E->G());
      break;
    case Kind::Histogram:
      Row(E->Name + ".count", E->H->count());
      Row(E->Name + ".sum", E->H->sum());
      Row(E->Name + ".mean", E->H->mean());
      Row(E->Name + ".max", E->H->max());
      Row(E->Name + ".p90", E->H->percentileUpperBound(0.90));
      break;
    }
  }
  for (const ProviderFn &P : Providers)
    P(Row);
}

std::string MetricsRegistry::dumpText() const {
  std::string Out;
  forEachValue([&](const std::string &Name, uint64_t V) {
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf), "%-44s %20llu\n", Name.c_str(),
                  static_cast<unsigned long long>(V));
    Out += Buf;
  });
  return Out;
}

std::string MetricsRegistry::dumpJson() const {
  std::string Out = "{";
  bool First = true;
  forEachValue([&](const std::string &Name, uint64_t V) {
    char Buf[224];
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %llu", First ? "" : ", ",
                  Name.c_str(), static_cast<unsigned long long>(V));
    Out += Buf;
    First = false;
  });
  Out += "}";
  return Out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> L(Mutex);
  for (auto &E : Entries) {
    if (E->C)
      E->C->reset();
    if (E->H)
      E->H->reset();
  }
}
