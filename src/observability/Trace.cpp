//===- Trace.cpp - Low-overhead VM event tracing -------------------------------===//

#include "observability/Trace.h"

#include "support/Env.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace jvm;

std::atomic<uint32_t> jvm::trace_detail::ActiveMask{0};

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t ringCapacityFromEnv() {
  if (const char *E = EnvSnapshot::process().TraceRing)
    if (long N = std::atol(E); N > 0)
      return static_cast<size_t>(N);
  return 1 << 16; // 65536 events/thread; ~5 MB worst case per thread
}

uint32_t categoryMaskFromEnv() {
  const char *E = EnvSnapshot::process().TraceCategories;
  if (!E || !*E)
    return TraceDefaultCategories;
  if (std::strcmp(E, "all") == 0)
    return TraceCompile | TraceCode | TraceTier | TraceDeopt | TracePea |
           TraceMonitor | TraceGc | TraceProf;
  uint32_t Mask = 0;
  std::string S(E);
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Comma = S.find(',', Pos);
    std::string Tok = S.substr(Pos, Comma == std::string::npos
                                        ? std::string::npos
                                        : Comma - Pos);
    if (Tok == "compile")
      Mask |= TraceCompile;
    else if (Tok == "code")
      Mask |= TraceCode;
    else if (Tok == "tier")
      Mask |= TraceTier;
    else if (Tok == "deopt")
      Mask |= TraceDeopt;
    else if (Tok == "pea")
      Mask |= TracePea;
    else if (Tok == "monitor")
      Mask |= TraceMonitor;
    else if (Tok == "gc")
      Mask |= TraceGc;
    else if (Tok == "prof")
      Mask |= TraceProf;
    else if (!Tok.empty())
      std::fprintf(stderr,
                   "warning: unknown JVM_TRACE_CATEGORIES token '%s'\n",
                   Tok.c_str());
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Mask ? Mask : TraceDefaultCategories;
}

/// Where JVM_TRACE exports at process exit (empty = no exit hook).
std::string &exitTracePath() {
  static std::string Path;
  return Path;
}

/// The pre-export flush hook (see Tracer::setAtExitFlushHook). Stored in
/// a function-local static so install order vs. this TU's statics never
/// matters.
std::atomic<void (*)()> &atExitFlushHook() {
  static std::atomic<void (*)()> H{nullptr};
  return H;
}

void writeTraceAtExit() {
  if (void (*Hook)() = atExitFlushHook().load(std::memory_order_acquire))
    Hook();
  const std::string &Path = exitTracePath();
  if (!Path.empty())
    Tracer::get().writeJson(Path);
}

/// Reads JVM_TRACE once, before main() runs in practice (first Tracer
/// use). Registered as a static initializer side effect of get().
bool initFromEnvironment(Tracer &T) {
  T.setCategories(categoryMaskFromEnv());
  if (const char *E = EnvSnapshot::process().Trace; E && *E) {
    exitTracePath() = E;
    T.setEnabled(true);
    std::atexit(writeTraceAtExit);
  }
  return true;
}

/// Minimal JSON string escaping for names (static strings; control
/// characters and quotes only).
void appendJsonString(std::string &Out, const char *S) {
  Out += '"';
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  Out += '"';
}

thread_local void *LocalBuffer = nullptr;

} // namespace

const char *jvm::traceCategoryName(TraceCategory C) {
  switch (C) {
  case TraceCompile:
    return "compile";
  case TraceCode:
    return "code";
  case TraceTier:
    return "tier";
  case TraceDeopt:
    return "deopt";
  case TracePea:
    return "pea";
  case TraceMonitor:
    return "monitor";
  case TraceGc:
    return "gc";
  case TraceProf:
    return "prof";
  }
  return "unknown";
}

Tracer::Tracer() : Capacity(ringCapacityFromEnv()), StartNanos(nowNanos()) {}

namespace {
/// Forces the singleton (and with it the JVM_TRACE environment hookup)
/// into existence before main(): the hot paths only ever consult the
/// ActiveMask word through traceWants() and would otherwise never
/// construct the tracer in a run where nothing enables it explicitly.
struct TraceEagerInit {
  TraceEagerInit() { Tracer::get(); }
} EagerInit;
} // namespace

Tracer &Tracer::get() {
  // Leaked on purpose: the atexit JSON writer and late-destroyed VMs may
  // record or export after static destruction began.
  static Tracer *T = new Tracer();
  static bool EnvInit = initFromEnvironment(*T);
  (void)EnvInit;
  return *T;
}

void Tracer::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
  trace_detail::ActiveMask.store(
      On ? Mask.load(std::memory_order_relaxed) : 0,
      std::memory_order_relaxed);
}

void Tracer::setCategories(uint32_t NewMask) {
  Mask.store(NewMask, std::memory_order_relaxed);
  if (enabled())
    trace_detail::ActiveMask.store(NewMask, std::memory_order_relaxed);
}

Tracer::ThreadBuffer &Tracer::localBuffer() {
  if (LocalBuffer)
    return *static_cast<ThreadBuffer *>(LocalBuffer);
  std::lock_guard<std::mutex> L(RegistryMutex);
  Buffers.push_back(std::make_unique<ThreadBuffer>(Capacity, NextTid++));
  LocalBuffer = Buffers.back().get();
  return *Buffers.back();
}

void Tracer::record(TraceEvent E) {
  ThreadBuffer &B = localBuffer();
  uint64_t N = B.Count.load(std::memory_order_relaxed);
  if (N >= B.Events.size()) {
    B.Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  E.Tid = B.Tid;
  E.TimeNanos = nowNanos() - StartNanos;
  B.Events[N] = E;
  // Publish after the slot is fully written; snapshot() acquires Count
  // and therefore only reads committed slots (the buffer never wraps).
  B.Count.store(N + 1, std::memory_order_release);
}

void Tracer::setAtExitFlushHook(void (*Hook)()) {
  atExitFlushHook().store(Hook, std::memory_order_release);
}

Tracer::ThreadBuffer &Tracer::prestampedBuffer() {
  if (ThreadBuffer *B = Prestamped.load(std::memory_order_acquire))
    return *B;
  std::lock_guard<std::mutex> L(RegistryMutex);
  if (ThreadBuffer *B = Prestamped.load(std::memory_order_relaxed))
    return *B;
  Buffers.push_back(std::make_unique<ThreadBuffer>(Capacity, NextTid++));
  Buffers.back()->Name.store("prof-samples", std::memory_order_relaxed);
  Prestamped.store(Buffers.back().get(), std::memory_order_release);
  return *Buffers.back();
}

void Tracer::recordPrestamped(TraceEvent E) {
  ThreadBuffer &B = prestampedBuffer();
  uint64_t N = B.Count.load(std::memory_order_relaxed);
  if (N >= B.Events.size()) {
    B.Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  E.Tid = B.Tid;
  B.Events[N] = E;
  B.Count.store(N + 1, std::memory_order_release);
}

void Tracer::setCurrentThreadName(const char *Name) {
  localBuffer().Name.store(Name, std::memory_order_relaxed);
}

void Tracer::instant(TraceCategory C, const char *Name, const char *Arg0Name,
                     int64_t Arg0, const char *Arg1Name, int64_t Arg1,
                     const char *StrArgName, const char *StrArg,
                     const char *Arg2Name, int64_t Arg2) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = traceCategoryName(C);
  E.Ph = 'I';
  E.Arg0Name = Arg0Name;
  E.Arg0 = Arg0;
  E.Arg1Name = Arg1Name;
  E.Arg1 = Arg1;
  E.Arg2Name = Arg2Name;
  E.Arg2 = Arg2;
  E.StrArgName = StrArgName;
  E.StrArg = StrArg;
  record(E);
}

void Tracer::begin(TraceCategory C, const char *Name, const char *Arg0Name,
                   int64_t Arg0, const char *Arg1Name, int64_t Arg1) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = traceCategoryName(C);
  E.Ph = 'B';
  E.Arg0Name = Arg0Name;
  E.Arg0 = Arg0;
  E.Arg1Name = Arg1Name;
  E.Arg1 = Arg1;
  record(E);
}

void Tracer::end(TraceCategory C, const char *Name) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = traceCategoryName(C);
  E.Ph = 'E';
  record(E);
}

uint64_t Tracer::droppedEvents() const {
  std::lock_guard<std::mutex> L(RegistryMutex);
  uint64_t Sum = 0;
  for (const auto &B : Buffers)
    Sum += B->Dropped.load(std::memory_order_relaxed) -
           B->DroppedFloor.load(std::memory_order_relaxed);
  return Sum;
}

uint64_t Tracer::highWater() const {
  std::lock_guard<std::mutex> L(RegistryMutex);
  uint64_t Max = 0;
  for (const auto &B : Buffers)
    Max = std::max(Max, B->Count.load(std::memory_order_relaxed));
  return Max;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> L(RegistryMutex);
  std::vector<TraceEvent> Out;
  for (const auto &B : Buffers) {
    uint64_t N = std::min<uint64_t>(B->Count.load(std::memory_order_acquire),
                                    B->Events.size());
    for (uint64_t I = B->Floor.load(std::memory_order_relaxed); I < N; ++I)
      Out.push_back(B->Events[I]);
  }
  return Out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> L(RegistryMutex);
  for (const auto &B : Buffers) {
    B->Floor.store(B->Count.load(std::memory_order_acquire),
                   std::memory_order_relaxed);
    B->DroppedFloor.store(B->Dropped.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
}

std::string Tracer::exportJson() const {
  std::string Out;
  Out += "{\"traceEvents\":[\n";
  bool First = true;
  {
    std::lock_guard<std::mutex> L(RegistryMutex);
    for (const auto &B : Buffers) {
      if (const char *Name = B->Name.load(std::memory_order_relaxed)) {
        char Buf[160];
        std::snprintf(Buf, sizeof(Buf),
                      "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                      First ? "" : ",\n", B->Tid, Name);
        Out += Buf;
        First = false;
      }
      uint64_t N = std::min<uint64_t>(
          B->Count.load(std::memory_order_acquire), B->Events.size());
      for (uint64_t I = B->Floor.load(std::memory_order_relaxed); I < N;
           ++I) {
        const TraceEvent &E = B->Events[I];
        if (!First)
          Out += ",\n";
        First = false;
        Out += "{\"name\":";
        appendJsonString(Out, E.Name);
        Out += ",\"cat\":";
        appendJsonString(Out, E.Cat ? E.Cat : "vm");
        char Buf[128];
        std::snprintf(Buf, sizeof(Buf),
                      ",\"ph\":\"%c\",\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                      E.Ph, E.Tid, E.TimeNanos / 1000.0);
        Out += Buf;
        if (E.Arg0Name || E.Arg1Name || E.Arg2Name || E.StrArgName) {
          Out += ",\"args\":{";
          bool FirstArg = true;
          auto IntArg = [&](const char *AN, int64_t V) {
            if (!AN)
              return;
            if (!FirstArg)
              Out += ',';
            FirstArg = false;
            appendJsonString(Out, AN);
            std::snprintf(Buf, sizeof(Buf), ":%lld",
                          static_cast<long long>(V));
            Out += Buf;
          };
          IntArg(E.Arg0Name, E.Arg0);
          IntArg(E.Arg1Name, E.Arg1);
          IntArg(E.Arg2Name, E.Arg2);
          if (E.StrArgName) {
            if (!FirstArg)
              Out += ',';
            appendJsonString(Out, E.StrArgName);
            Out += ':';
            appendJsonString(Out, E.StrArg ? E.StrArg : "");
          }
          Out += '}';
        }
        Out += '}';
      }
    }
  }
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"droppedEvents\":%llu,\"highWater\":%llu,"
                "\"ringCapacity\":%llu}}\n",
                static_cast<unsigned long long>(droppedEvents()),
                static_cast<unsigned long long>(highWater()),
                static_cast<unsigned long long>(Capacity));
  Out += Buf;
  return Out;
}

bool Tracer::writeJson(const std::string &Path) const {
  std::string Json = exportJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write trace file %s\n",
                 Path.c_str());
    return false;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  return true;
}
