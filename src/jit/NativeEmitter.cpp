//===- NativeEmitter.cpp - Copy-and-patch x86-64 over linear code --------------===//
///
/// Maps each LOp of a method's linear stream to a pre-baked x86-64
/// template and patches the variable parts: register-frame slot
/// displacements, pooled constants (imm64), intra-method branch targets
/// (rel32 against the per-instruction native-offset table) and helper /
/// side-table addresses (imm64). Register conventions inside a method:
///
///   rbx  register-frame base (Value* — GC-rooted, stable)   callee-saved
///   r12  NativeContext*                                     callee-saved
///   r13  &per-call ops counter                              callee-saved
///   rax, rcx, rdx, xmm0   template scratch
///
/// Values are never cached in machine registers across a helper call:
/// anything the GC must see lives in the rooted frame, and collections
/// can only start inside helpers, so a raw object pointer loaded by a
/// template is dead again before any safepoint can move the object.
///
/// Every template begins by bumping the ops counter through r13, so
/// native execution reports the exact instruction counts of the linear
/// dispatcher (the differential oracle compares them).
///
//===----------------------------------------------------------------------===//

#include "jit/NativeCode.h"
#include "jit/NativeHelpers.h"
#include "jit/NativeLayout.h"

#include <chrono>
#include <cstring>
#include <limits>
#include <vector>

using namespace jvm;

bool jvm::nativeBackendSupported() {
#if defined(JVM_ENABLE_NATIVE) && JVM_ENABLE_NATIVE && defined(__x86_64__) && \
    (defined(__unix__) || defined(__APPLE__))
  return true;
#else
  return false;
#endif
}

#if defined(JVM_ENABLE_NATIVE) && JVM_ENABLE_NATIVE && defined(__x86_64__) && \
    (defined(__unix__) || defined(__APPLE__))

namespace {

/// x86 condition-code nibbles (used in 0F 8x jcc and 0F 9x setcc).
enum Cc : uint8_t {
  CcB = 0x2,  ///< unsigned <
  CcAe = 0x3, ///< unsigned >=
  CcE = 0x4,
  CcNe = 0x5,
  CcL = 0xC, ///< signed <
  CcLe = 0xE,
};

class Emitter {
public:
  Emitter(const LinearCode &L, const NativeCode *NC, Value *MoveScratch)
      : L(L), NC(NC), Scratch(MoveScratch) {}

  bool run(std::string *Why);
  const std::vector<uint8_t> &code() const { return B; }

private:
  // --- raw byte plumbing -------------------------------------------------
  void u8(uint8_t X) { B.push_back(X); }
  void u32(uint32_t X) {
    for (int K = 0; K != 4; ++K)
      B.push_back(static_cast<uint8_t>(X >> (8 * K)));
  }
  void u64(uint64_t X) {
    for (int K = 0; K != 8; ++K)
      B.push_back(static_cast<uint8_t>(X >> (8 * K)));
  }
  size_t pos() const { return B.size(); }
  void patch32(size_t At, int32_t V) { std::memcpy(&B[At], &V, 4); }

  // --- branch bookkeeping ------------------------------------------------
  /// Where a pending rel32 resolves to once all offsets are known.
  enum class Target : uint8_t { Inst, Epilogue, TrapNull, TrapOob };
  struct Fixup {
    size_t Rel32At;
    Target T;
    uint32_t Pc; ///< for Target::Inst
  };

  /// jcc rel32 to a not-yet-known target.
  void jcc(Cc C, Target T, uint32_t Pc = 0) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 | C));
    Fixups.push_back({pos(), T, Pc});
    u32(0);
  }
  void jmp(Target T, uint32_t Pc = 0) {
    u8(0xE9);
    Fixups.push_back({pos(), T, Pc});
    u32(0);
  }
  /// Intra-template forward jump: returns the rel32 position to bind().
  size_t jccLocal(Cc C) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 | C));
    size_t At = pos();
    u32(0);
    return At;
  }
  size_t jmpLocal() {
    u8(0xE9);
    size_t At = pos();
    u32(0);
    return At;
  }
  void bind(size_t Rel32At) {
    patch32(Rel32At, static_cast<int32_t>(pos() - (Rel32At + 4)));
  }

  // --- frame accessors (rbx = Value* frame base) -------------------------
  static int32_t tagDisp(uint32_t Vr) {
    return static_cast<int32_t>(Vr * NativeLayout::ValueSize +
                                NativeLayout::ValueTag);
  }
  static int32_t payDisp(uint32_t Vr) {
    return static_cast<int32_t>(Vr * NativeLayout::ValueSize +
                                NativeLayout::ValuePayload);
  }

  /// mov <r64>, qword [rbx+disp32] — R is the 0..2 encoding of rax/rcx/rdx.
  void loadPay(uint8_t R, uint32_t Vr) {
    u8(0x48);
    u8(0x8B);
    u8(static_cast<uint8_t>(0x83 | (R << 3)));
    u32(static_cast<uint32_t>(payDisp(Vr)));
  }
  /// mov qword [rbx+disp32], <r64>
  void storePay(uint8_t R, uint32_t Vr) {
    u8(0x48);
    u8(0x89);
    u8(static_cast<uint8_t>(0x83 | (R << 3)));
    u32(static_cast<uint32_t>(payDisp(Vr)));
  }
  /// mov byte [rbx+disp32], tag
  void storeTag(uint32_t Vr, ValueType Ty) {
    u8(0xC6);
    u8(0x83);
    u32(static_cast<uint32_t>(tagDisp(Vr)));
    u8(static_cast<uint8_t>(Ty));
  }
  /// movups xmm0, [rbx+disp32] — whole 16-byte slot (tag + payload).
  void loadSlot(uint32_t Vr) {
    u8(0x0F);
    u8(0x10);
    u8(0x83);
    u32(static_cast<uint32_t>(Vr * NativeLayout::ValueSize));
  }
  /// movups [rbx+disp32], xmm0
  void storeSlot(uint32_t Vr) {
    u8(0x0F);
    u8(0x11);
    u8(0x83);
    u32(static_cast<uint32_t>(Vr * NativeLayout::ValueSize));
  }

  // --- misc encodings ----------------------------------------------------
  void incOps() { // inc qword [r13] — one linear instruction executed
    u8(0x49);
    u8(0xFF);
    u8(0x45);
    u8(0x00);
  }
  void movRaxImm64(uint64_t V) {
    u8(0x48);
    u8(0xB8);
    u64(V);
  }
  void testRaxRax() {
    u8(0x48);
    u8(0x85);
    u8(0xC0);
  }
  /// Loads the object's slot count: mov edx, dword [rax+NumSlots].
  void loadNumSlotsEdx() {
    u8(0x8B);
    u8(0x50);
    u8(static_cast<uint8_t>(NativeLayout::ObjectNumSlots));
  }
  void setccMovzxRax(Cc C) { // setcc al; movzx eax, al
    u8(0x0F);
    u8(static_cast<uint8_t>(0x90 | C));
    u8(0xC0);
    u8(0x0F);
    u8(0xB6);
    u8(0xC0);
  }

  /// The uniform call-out: mov rdi,r12; mov rsi,rbx; mov rdx,imm64(NC);
  /// mov ecx,imm32; mov rax,imm64(helper); call rax. Stack is 16-aligned
  /// here (entry rsp%16==8, prologue pushed three words).
  void callHelper(const void *Fn, uint32_t Imm) {
    u8(0x4C);
    u8(0x89);
    u8(0xE7); // mov rdi, r12
    u8(0x48);
    u8(0x89);
    u8(0xDE); // mov rsi, rbx
    u8(0x48);
    u8(0xBA); // mov rdx, imm64
    u64(reinterpret_cast<uint64_t>(NC));
    u8(0xB9); // mov ecx, imm32
    u32(Imm);
    movRaxImm64(reinterpret_cast<uint64_t>(Fn));
    u8(0xFF);
    u8(0xD0); // call rax
  }

  /// Null check on the object pointer in rax.
  void trapIfRaxNull() {
    testRaxRax();
    jcc(CcE, Target::TrapNull);
  }

  /// Generational write-barrier filter, emitted right after a field or
  /// element store while rax still holds the holder object. Young
  /// holders (the common case), non-reference values, null, and
  /// old-to-old references all resolve inline; only a potential
  /// old->young edge falls through to the card-marking helper.
  void emitWriteBarrier(uint32_t ValVr, uint32_t Pc) {
    u8(0x0F);
    u8(0xB6);
    u8(0x50); // movzx edx, byte [rax + Flags]
    u8(static_cast<uint8_t>(NativeLayout::ObjectFlags));
    u8(0xF6);
    u8(0xC2); // test dl, old-mask
    u8(NativeLayout::ObjectOldMask);
    size_t YoungHolder = jccLocal(CcE);
    u8(0x80);
    u8(0xBB); // cmp byte [rbx + val.tag], Ref
    u32(static_cast<uint32_t>(tagDisp(ValVr)));
    u8(static_cast<uint8_t>(ValueType::Ref));
    size_t NotRef = jccLocal(CcNe);
    loadPay(2, ValVr); // rdx = stored object
    u8(0x48);
    u8(0x85);
    u8(0xD2); // test rdx, rdx
    size_t NullVal = jccLocal(CcE);
    u8(0x0F);
    u8(0xB6);
    u8(0x52); // movzx edx, byte [rdx + Flags]
    u8(static_cast<uint8_t>(NativeLayout::ObjectFlags));
    u8(0xF6);
    u8(0xC2); // test dl, old-mask — an old value cannot be a young target
    u8(NativeLayout::ObjectOldMask);
    size_t OldValue = jccLocal(CcNe);
    callHelper(reinterpret_cast<const void *>(&jvmNativeWriteBarrier), Pc);
    bind(YoungHolder);
    bind(NotRef);
    bind(NullVal);
    bind(OldValue);
  }

  void emitArith(ArithKind Op);
  bool emitInst(uint32_t Pc, const LInst &I, std::string *Why);

  const LinearCode &L;
  const NativeCode *NC;
  Value *Scratch;
  std::vector<uint8_t> B;
  std::vector<size_t> InstOff;
  std::vector<Fixup> Fixups;
  size_t EpilogueOff = 0;
  size_t TrapNullOff = 0;
  size_t TrapOobOff = 0;
};

void Emitter::emitArith(ArithKind Op) {
  // Operands: rax = X, rcx = Y; result must end in rax. Semantics are
  // applyArith's exactly — including the div/rem guards for Y == 0 and
  // Y == -1, which idiv would fault on (#DE) instead of wrapping.
  switch (Op) {
  case ArithKind::Add:
    u8(0x48);
    u8(0x01);
    u8(0xC8); // add rax, rcx
    return;
  case ArithKind::Sub:
    u8(0x48);
    u8(0x29);
    u8(0xC8); // sub rax, rcx
    return;
  case ArithKind::Mul:
    u8(0x48);
    u8(0x0F);
    u8(0xAF);
    u8(0xC1); // imul rax, rcx
    return;
  case ArithKind::And:
    u8(0x48);
    u8(0x21);
    u8(0xC8);
    return;
  case ArithKind::Or:
    u8(0x48);
    u8(0x09);
    u8(0xC8);
    return;
  case ArithKind::Xor:
    u8(0x48);
    u8(0x31);
    u8(0xC8);
    return;
  case ArithKind::Shl:
    u8(0x48);
    u8(0xD3);
    u8(0xE0); // shl rax, cl (hardware masks cl to 6 bits = Y & 63)
    return;
  case ArithKind::Shr:
    u8(0x48);
    u8(0xD3);
    u8(0xF8); // sar rax, cl
    return;
  case ArithKind::Div: {
    u8(0x48);
    u8(0x85);
    u8(0xC9); // test rcx, rcx
    size_t Zero = jccLocal(CcE);
    u8(0x48);
    u8(0x83);
    u8(0xF9);
    u8(0xFF); // cmp rcx, -1
    size_t Neg = jccLocal(CcE);
    u8(0x48);
    u8(0x99); // cqo
    u8(0x48);
    u8(0xF7);
    u8(0xF9); // idiv rcx
    size_t Done1 = jmpLocal();
    bind(Neg);
    u8(0x48);
    u8(0xF7);
    u8(0xD8); // neg rax (wrapping 0 - X)
    size_t Done2 = jmpLocal();
    bind(Zero);
    u8(0x31);
    u8(0xC0); // xor eax, eax
    bind(Done1);
    bind(Done2);
    return;
  }
  case ArithKind::Rem: {
    u8(0x48);
    u8(0x85);
    u8(0xC9); // test rcx, rcx
    size_t Zero = jccLocal(CcE);
    u8(0x48);
    u8(0x83);
    u8(0xF9);
    u8(0xFF); // cmp rcx, -1
    size_t One = jccLocal(CcE);
    u8(0x48);
    u8(0x99); // cqo
    u8(0x48);
    u8(0xF7);
    u8(0xF9); // idiv rcx
    u8(0x48);
    u8(0x89);
    u8(0xD0); // mov rax, rdx (remainder)
    size_t Done = jmpLocal();
    bind(Zero);
    bind(One);
    u8(0x31);
    u8(0xC0); // xor eax, eax
    bind(Done);
    return;
  }
  }
  jvm_unreachable("unknown arithmetic kind");
}

bool Emitter::emitInst(uint32_t Pc, const LInst &I, std::string *Why) {
  incOps();
  switch (I.Op) {
  case LOp::ConstInt:
    movRaxImm64(static_cast<uint64_t>(L.IntPool[I.A]));
    storeTag(I.Dst, ValueType::Int);
    storePay(0, I.Dst);
    return true;

  case LOp::ConstNull:
    storeTag(I.Dst, ValueType::Ref);
    u8(0x48);
    u8(0xC7);
    u8(0x83); // mov qword [rbx+disp32], 0
    u32(static_cast<uint32_t>(payDisp(I.Dst)));
    u32(0);
    return true;

  case LOp::Arith:
    loadPay(0, I.A); // rax = X
    loadPay(1, I.B); // rcx = Y
    emitArith(static_cast<ArithKind>(I.Sub));
    storeTag(I.Dst, ValueType::Int);
    storePay(0, I.Dst);
    return true;

  case LOp::Compare: {
    switch (static_cast<CmpKind>(I.Sub)) {
    case CmpKind::IsNull:
      loadPay(0, I.A);
      testRaxRax();
      setccMovzxRax(CcE);
      break;
    case CmpKind::IntEq:
    case CmpKind::RefEq:
      loadPay(0, I.A);
      loadPay(1, I.B);
      u8(0x48);
      u8(0x39);
      u8(0xC8); // cmp rax, rcx
      setccMovzxRax(CcE);
      break;
    case CmpKind::IntLt:
      loadPay(0, I.A);
      loadPay(1, I.B);
      u8(0x48);
      u8(0x39);
      u8(0xC8);
      setccMovzxRax(CcL);
      break;
    case CmpKind::IntLe:
      loadPay(0, I.A);
      loadPay(1, I.B);
      u8(0x48);
      u8(0x39);
      u8(0xC8);
      setccMovzxRax(CcLe);
      break;
    default:
      if (Why)
        *Why = "unknown compare kind";
      return false;
    }
    storeTag(I.Dst, ValueType::Int);
    storePay(0, I.Dst);
    return true;
  }

  case LOp::Branch:
    // cmp qword [rbx + A.payload], 0
    u8(0x48);
    u8(0x83);
    u8(0xBB);
    u32(static_cast<uint32_t>(payDisp(I.A)));
    u8(0x00);
    if (I.B == Pc + 1) {
      jcc(CcE, Target::Inst, I.C); // fall through to the true target
    } else {
      jcc(CcNe, Target::Inst, I.B);
      if (I.C != Pc + 1)
        jmp(Target::Inst, I.C);
    }
    return true;

  case LOp::Jump: {
    const LinearCode::MoveList &ML = L.MoveLists[I.B];
    const LinearCode::PhiMove *Mv = L.Moves.data() + ML.First;
    if (ML.Count == 1) {
      // A single move cannot self-interfere; copy directly.
      loadSlot(Mv[0].Src);
      storeSlot(Mv[0].Dst);
    } else if (ML.Count > 1) {
      // Parallel semantics via the per-code staging buffer (rdx): all
      // sources out first, then all destinations — phis may permute.
      u8(0x48);
      u8(0xBA); // mov rdx, imm64(scratch)
      u64(reinterpret_cast<uint64_t>(Scratch));
      for (uint32_t K = 0; K != ML.Count; ++K) {
        loadSlot(Mv[K].Src);
        u8(0x0F);
        u8(0x11);
        u8(0x82); // movups [rdx+disp32], xmm0
        u32(static_cast<uint32_t>(K * NativeLayout::ValueSize));
      }
      for (uint32_t K = 0; K != ML.Count; ++K) {
        u8(0x0F);
        u8(0x10);
        u8(0x82); // movups xmm0, [rdx+disp32]
        u32(static_cast<uint32_t>(K * NativeLayout::ValueSize));
        storeSlot(Mv[K].Dst);
      }
    }
    if (I.A != Pc + 1)
      jmp(Target::Inst, I.A);
    return true;
  }

  case LOp::Ret:
    // Return the full Value in rax:rdx (tag word, payload word).
    u8(0x0F);
    u8(0xB6);
    u8(0x83); // movzx eax, byte [rbx + A.tag]
    u32(static_cast<uint32_t>(tagDisp(I.A)));
    u8(0x48);
    u8(0x8B);
    u8(0x93); // mov rdx, [rbx + A.payload]
    u32(static_cast<uint32_t>(payDisp(I.A)));
    jmp(Target::Epilogue);
    return true;

  case LOp::RetVoid:
    u8(0x31);
    u8(0xC0); // xor eax, eax (ValueType::Void)
    u8(0x31);
    u8(0xD2); // xor edx, edx
    jmp(Target::Epilogue);
    return true;

  case LOp::LoadField:
    loadPay(0, I.A);
    trapIfRaxNull();
    u8(0x0F);
    u8(0x10);
    u8(0x80); // movups xmm0, [rax+disp32]
    u32(static_cast<uint32_t>(NativeLayout::ObjectSlots +
                              I.B * NativeLayout::ValueSize));
    storeSlot(I.Dst);
    return true;

  case LOp::StoreField:
    loadPay(0, I.A);
    trapIfRaxNull();
    loadSlot(I.C);
    u8(0x0F);
    u8(0x11);
    u8(0x80); // movups [rax+disp32], xmm0
    u32(static_cast<uint32_t>(NativeLayout::ObjectSlots +
                              I.B * NativeLayout::ValueSize));
    emitWriteBarrier(I.C, Pc);
    return true;

  case LOp::LoadIndexed:
  case LOp::StoreIndexed:
    loadPay(0, I.A); // rax = array
    trapIfRaxNull();
    loadPay(1, I.B); // rcx = index
    loadNumSlotsEdx();
    u8(0x48);
    u8(0x39);
    u8(0xD1); // cmp rcx, rdx — unsigned: negative indexes are huge
    jcc(CcAe, Target::TrapOob);
    u8(0x48);
    u8(0xC1);
    u8(0xE1);
    u8(0x04); // shl rcx, 4 (index -> slot byte offset)
    if (I.Op == LOp::LoadIndexed) {
      u8(0x0F);
      u8(0x10);
      u8(0x44);
      u8(0x08); // movups xmm0, [rax+rcx+slots]
      u8(static_cast<uint8_t>(NativeLayout::ObjectSlots));
      storeSlot(I.Dst);
    } else {
      loadSlot(I.C);
      u8(0x0F);
      u8(0x11);
      u8(0x44);
      u8(0x08); // movups [rax+rcx+slots], xmm0
      u8(static_cast<uint8_t>(NativeLayout::ObjectSlots));
      emitWriteBarrier(I.C, Pc);
    }
    return true;

  case LOp::ArrayLength:
    loadPay(0, I.A);
    trapIfRaxNull();
    u8(0x8B);
    u8(0x40); // mov eax, dword [rax+NumSlots] (zero-extends)
    u8(static_cast<uint8_t>(NativeLayout::ObjectNumSlots));
    storeTag(I.Dst, ValueType::Int);
    storePay(0, I.Dst);
    return true;

  // Allocation, statics, monitors, calls and the PEA commit/deopt paths
  // go through the uniform helper template: the C++ side re-reads the
  // LInst and shares the linear tier's implementation (and safety net)
  // verbatim.
  case LOp::NewInstance:
    callHelper(reinterpret_cast<const void *>(&jvmNativeNewInstance), Pc);
    return true;
  case LOp::NewArray:
    callHelper(reinterpret_cast<const void *>(&jvmNativeNewArray), Pc);
    return true;
  case LOp::LoadStatic:
    callHelper(reinterpret_cast<const void *>(&jvmNativeLoadStatic), Pc);
    return true;
  case LOp::StoreStatic:
    callHelper(reinterpret_cast<const void *>(&jvmNativeStoreStatic), Pc);
    return true;
  case LOp::MonitorEnter:
    callHelper(reinterpret_cast<const void *>(&jvmNativeMonitorEnter), Pc);
    return true;
  case LOp::MonitorExit:
    callHelper(reinterpret_cast<const void *>(&jvmNativeMonitorExit), Pc);
    return true;
  case LOp::InstanceOf:
    callHelper(reinterpret_cast<const void *>(&jvmNativeInstanceOf), Pc);
    return true;
  case LOp::Invoke:
    callHelper(reinterpret_cast<const void *>(&jvmNativeInvoke), Pc);
    return true;
  case LOp::Materialize:
    callHelper(reinterpret_cast<const void *>(&jvmNativeMaterialize), Pc);
    return true;

  case LOp::Deopt:
    // The helper rebuilds the DeoptRequest from the shared side tables
    // and returns the interpreter's result in rax:rdx — forward it.
    callHelper(reinterpret_cast<const void *>(&jvmNativeDeopt), Pc);
    jmp(Target::Epilogue);
    return true;

  case LOp::Trap:
    callHelper(reinterpret_cast<const void *>(&jvmNativeTrap), 2);
    u8(0x0F);
    u8(0x0B); // ud2 — the helper never returns
    return true;
  }
  if (Why)
    *Why = "linear opcode without a native template";
  return false;
}

bool Emitter::run(std::string *Why) {
  // All frame accesses use disp32; an absurdly large frame would wrap.
  if (static_cast<uint64_t>(L.numRegs()) * NativeLayout::ValueSize >
      static_cast<uint64_t>(std::numeric_limits<int32_t>::max()) / 2) {
    if (Why)
      *Why = "register frame too large for disp32 addressing";
    return false;
  }

  // Prologue: save rbx/r12/r13 (rsp: 8 -> 32 mod 16 == 0, so helper
  // call sites meet the ABI's 16-byte alignment with no extra padding),
  // then establish the method-wide registers.
  u8(0x53); // push rbx
  u8(0x41);
  u8(0x54); // push r12
  u8(0x41);
  u8(0x55); // push r13
  u8(0x49);
  u8(0x89);
  u8(0xFC); // mov r12, rdi (context)
  u8(0x48);
  u8(0x89);
  u8(0xF3); // mov rbx, rsi (frame)
  u8(0x4C);
  u8(0x8B);
  u8(0x6F); // mov r13, [rdi + Ops]
  u8(static_cast<uint8_t>(offsetof(NativeContext, Ops)));

  InstOff.resize(L.Insts.size());
  for (uint32_t Pc = 0; Pc != L.Insts.size(); ++Pc) {
    InstOff[Pc] = pos();
    if (!emitInst(Pc, L.Insts[Pc], Why))
      return false;
  }

  EpilogueOff = pos();
  u8(0x41);
  u8(0x5D); // pop r13
  u8(0x41);
  u8(0x5C); // pop r12
  u8(0x5B); // pop rbx
  u8(0xC3); // ret

  // Shared trap exits; reached from any failed null/bounds check.
  TrapNullOff = pos();
  callHelper(reinterpret_cast<const void *>(&jvmNativeTrap), 0);
  u8(0x0F);
  u8(0x0B);
  TrapOobOff = pos();
  callHelper(reinterpret_cast<const void *>(&jvmNativeTrap), 1);
  u8(0x0F);
  u8(0x0B);

  for (const Fixup &F : Fixups) {
    size_t To = F.T == Target::Inst       ? InstOff[F.Pc]
                : F.T == Target::Epilogue ? EpilogueOff
                : F.T == Target::TrapNull ? TrapNullOff
                                          : TrapOobOff;
    patch32(F.Rel32At,
            static_cast<int32_t>(static_cast<int64_t>(To) -
                                 static_cast<int64_t>(F.Rel32At + 4)));
  }
  return true;
}

} // namespace

std::unique_ptr<NativeCode> jvm::emitNativeCode(const LinearCode &L,
                                                CodeCache &Cache,
                                                std::string *Why) {
  auto Start = std::chrono::steady_clock::now();
  std::unique_ptr<NativeCode> N(new NativeCode(L, Cache));
  if (L.maxMoves() > 0)
    N->MoveScratch = std::make_unique<Value[]>(L.maxMoves());
  Emitter E(L, N.get(), N->MoveScratch.get());
  if (!E.run(Why))
    return nullptr;
  N->Span = Cache.install(E.code().data(), E.code().size());
  if (!N->Span) {
    if (Why)
      *Why = "executable memory unavailable";
    return nullptr;
  }
  N->Entry = reinterpret_cast<NativeCode::EntryFn>(N->Span.Ptr);
  N->EmitNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  return N;
}

#else // stub backend: keeps non-x86-64 builds green

std::unique_ptr<NativeCode> jvm::emitNativeCode(const LinearCode &L,
                                                CodeCache &Cache,
                                                std::string *Why) {
  (void)L;
  (void)Cache;
  if (Why)
    *Why = "native backend not built for this host";
  return nullptr;
}

#endif
